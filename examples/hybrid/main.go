// Hybrid: the paper §5.2 production flow — optimized random patterns
// detect almost everything cheaply; PODEM generates deterministic
// top-off patterns for the stragglers; an MISR compacts the responses
// so the whole test runs as self test with one signature compare.
//
//	go run ./examples/hybrid
package main

import (
	"context"
	"fmt"
	"log"

	"optirand"
)

func main() {
	ctx := context.Background()
	r := optirand.NewRunner(optirand.WithSeed(42))
	defer r.Close()

	bench, _ := optirand.BenchmarkByName("s1")
	c := bench.Build()
	faults := optirand.CollapsedFaults(c)

	// Phase 1+2: optimized random + deterministic top-off.
	res, err := r.Optimize(ctx, optirand.OptimizeSpec{
		Circuit: c, Faults: faults,
		Options: optirand.OptimizeOptions{Quantize: 0.05},
	})
	if err != nil {
		log.Fatal(err)
	}
	hybrid := optirand.HybridTest(c, faults, res.Weights, 2000, 42, 4096)
	fmt.Printf("random phase:   %d patterns detect %d/%d faults\n",
		hybrid.RandomPatterns, hybrid.RandomDetected, hybrid.TotalFaults)
	fmt.Printf("top-off phase:  %d deterministic patterns detect the remaining %d\n",
		hybrid.TopOffPatterns, hybrid.TopOffDetected)
	fmt.Printf("proven redundant: %d, aborted: %d, final coverage: %.2f%%\n",
		hybrid.Redundant, hybrid.Aborted, 100*hybrid.Coverage())

	// For comparison: conventional random needs ~7e8 patterns for the
	// same circuit (Table 1), and even 12,000 reach only ~48%.
	conv, err := r.Campaign(ctx, optirand.CampaignSpec{
		Circuit: c, Faults: faults,
		Source:   optirand.Weights(optirand.UniformWeights(c)),
		Patterns: 12000,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reference: conventional random @ 12,000 patterns: %.1f%%\n\n",
		100*conv.Coverage())

	// Signature compaction: compress all three outputs of every pattern
	// into one 24-bit MISR signature. A fault is caught iff its
	// signature differs from the fault-free one.
	fmt.Println("signature self-test (MISR compaction of the random phase):")
	good := signature(c, res.Weights, 2000, nil)
	caught, tried := 0, 0
	for i, f := range faults {
		if i%7 != 0 { // sample the fault list to keep the demo quick
			continue
		}
		tried++
		if signature(c, res.Weights, 2000, &f) != good {
			caught++
		}
	}
	fmt.Printf("  fault-free signature: %06x\n", good)
	fmt.Printf("  %d/%d sampled faults change the signature\n", caught, tried)
	fmt.Printf("  (aliasing bound per detected fault: 2^-24 ≈ %.1e)\n",
		optirand.NewMISR(24).AliasingBound())
}

// signature runs nPatterns weighted patterns and compacts all primary
// outputs into a 24-bit MISR; if f is non-nil the run simulates the
// faulty machine (via the campaign API's external-source hook).
func signature(c *optirand.Circuit, weights []float64, nPatterns int, f *optirand.Fault) uint64 {
	m := optirand.NewMISR(24)
	src := optirand.NewWeightedLFSR(weights, 99)
	words := make([]uint64, c.NumInputs())
	in := make([]bool, c.NumInputs())
	for applied := 0; applied < nPatterns; applied += 64 {
		src.NextWords(words)
		batch := min(64, nPatterns-applied)
		for k := 0; k < batch; k++ {
			for i := range in {
				in[i] = words[i]>>uint(k)&1 == 1
			}
			var outs []bool
			if f == nil {
				outs = c.EvalOutputs(in)
			} else {
				outs = optirand.EvalOutputsWithFault(c, *f, in)
			}
			var vec uint64
			for i, o := range outs {
				if o {
					vec |= 1 << uint(i)
				}
			}
			m.Clock(vec)
		}
	}
	return m.Signature()
}
