// Service: the same SweepSpec on two Runners — one in-process, one
// pointed at an optirandd daemon — produces bit-identical results;
// re-submitting the sweep is answered from the daemon's
// content-addressed result cache. SweepEach streams each campaign as
// it lands — here over the wire, as the daemon's NDJSON sweep
// response — and the shared circuit travels once (content-addressed
// interning), not once per task.
//
//	go run ./examples/service
//
// The example hosts the daemon in-process on a loopback listener; the
// flow is identical with a real `optirandd` on another machine:
// swapping backends is the Runner constructor, nothing else.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"reflect"
	"time"

	"optirand"
	"optirand/internal/dist"
)

func main() {
	ctx := context.Background()

	// 1. Start the daemon: a bounded worker fleet behind
	//    /v1/{optimize,campaign,sweep}, with a content-addressed
	//    result cache and in-flight dedup.
	srv := dist.NewServer(dist.ServerOptions{Workers: 4, CacheSize: 256})
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	fmt.Printf("optirandd serving on %s\n", ln.Addr())

	// 2. Describe a sweep: circuits × weightings × seeds. Task seeds
	//    derive from task identity, so the grid is reproducible
	//    wherever and in whatever order it executes.
	sweep := optirand.SweepSpec{BaseSeed: 1987, Repetitions: 3, Patterns: 1000}
	for _, name := range []string{"c432", "c880"} {
		b, _ := optirand.BenchmarkByName(name)
		c := b.Build()
		sweep.Circuits = append(sweep.Circuits, optirand.SweepCircuit{
			Name:    name,
			Circuit: c,
			Faults:  optirand.CollapsedFaults(c),
			Weightings: []optirand.SweepWeighting{
				{Name: "conventional", Source: optirand.Weights(optirand.UniformWeights(c))},
			},
		})
	}

	// 3. A remote Runner submits it to the service as one streaming
	//    /v1/sweep request: the daemon's fleet fans the batch out, and
	//    each campaign crosses the network the moment it finishes
	//    (cold cache). The circuit and fault list are interned by
	//    content address — uploaded once, referenced by hash in every
	//    task.
	remote := optirand.NewRunner(optirand.WithRemote(ln.Addr().String()), optirand.WithRemoteStreaming())
	defer remote.Close()
	var cold []optirand.TaskResult
	start := time.Now()
	streamed := 0
	err = remote.SweepEach(ctx, sweep, func(i int, res optirand.TaskResult) {
		streamed++
		for len(cold) <= i {
			cold = append(cold, optirand.TaskResult{})
		}
		cold[i] = res
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cold sweep: %d campaigns streamed in %s\n",
		streamed, time.Since(start).Round(time.Millisecond))

	// 4. Re-submit: the daemon answers the whole sweep from its
	//    content-addressed cache, byte for byte.
	start = time.Now()
	warm, err := remote.Sweep(ctx, sweep)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("warm sweep: %d campaigns in %s (served from the result cache)\n",
		len(warm), time.Since(start).Round(time.Millisecond))

	// 5. The equivalence contract: daemon results — cold or warm —
	//    are bit-identical to an in-process Runner.
	local := optirand.NewRunner(optirand.WithWorkers(0))
	defer local.Close()
	ref, err := local.Sweep(ctx, sweep)
	if err != nil {
		log.Fatal(err)
	}
	identical := true
	for i := range ref {
		identical = identical &&
			reflect.DeepEqual(ref[i].Campaign, cold[i].Campaign) &&
			reflect.DeepEqual(ref[i].Campaign, warm[i].Campaign)
	}
	fmt.Printf("remote == local, cold == warm: %v\n", identical)
	for _, r := range ref[:2] {
		fmt.Printf("  %-22s coverage %.1f %%\n", r.Task.Label, 100*r.Campaign.Coverage())
	}

	// 6. /v1/stats shows what the transport saved: the grid's two
	//    circuits and fault lists live in the blob store (uploaded
	//    once each), and the warm sweep was pure cache hits.
	resp, err := http.Get("http://" + ln.Addr().String() + "/v1/stats")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Cache *dist.CacheStats `json:"cache"`
		Blobs *dist.BlobStats  `json:"blobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("daemon stats: %d interned blobs (%d bytes), %d cache hits / %d entries\n",
		stats.Blobs.Entries, stats.Blobs.Bytes, stats.Cache.Hits, stats.Cache.Entries)
}
