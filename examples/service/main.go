// Service: run a campaign sweep through the optirandd daemon and
// watch the distributed backend keep the engine's equivalence
// contract — then re-submit and read the whole sweep back from the
// content-addressed result cache.
//
//	go run ./examples/service
//
// The example hosts the daemon in-process on a loopback listener; the
// flow is identical with a real `optirandd` on another machine and
// `-remote host:port` on faultsim/experiments.
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"
	"reflect"
	"time"

	"optirand"
	"optirand/internal/dist"
	"optirand/internal/engine"
)

func main() {
	// 1. Start the daemon: a bounded worker fleet behind
	//    /v1/{optimize,campaign,sweep}, with a content-addressed
	//    result cache.
	srv := dist.NewServer(dist.ServerOptions{Workers: 4, CacheSize: 256})
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	fmt.Printf("optirandd serving on %s\n", ln.Addr())

	// 2. Describe a sweep: circuits × weightings × seeds. Task seeds
	//    derive from task identity, so the grid is reproducible
	//    wherever and in whatever order it executes.
	sweep := &engine.Sweep{BaseSeed: 1987, Repetitions: 3, Patterns: 1000}
	for _, name := range []string{"c432", "c880"} {
		b, _ := optirand.BenchmarkByName(name)
		c := b.Build()
		sweep.Circuits = append(sweep.Circuits, engine.SweepCircuit{
			Name:    name,
			Circuit: c,
			Faults:  optirand.CollapsedFaults(c),
			Weightings: []engine.Weighting{
				{Name: "conventional", Sets: [][]float64{optirand.UniformWeights(c)}},
			},
		})
	}
	tasks := sweep.Tasks()

	// 3. Submit it to the service (cold cache: every campaign is
	//    executed by the daemon's fleet).
	client := dist.NewClient(ln.Addr().String())
	start := time.Now()
	cold, hits, err := client.Sweep(tasks)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cold sweep: %d tasks in %s (%d cache hits)\n",
		len(cold), time.Since(start).Round(time.Millisecond), hits)

	// 4. Re-submit: the daemon answers the whole sweep from its
	//    content-addressed cache, byte for byte.
	start = time.Now()
	warm, hits, err := client.Sweep(tasks)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("warm sweep: %d tasks in %s (%d cache hits)\n",
		len(warm), time.Since(start).Round(time.Millisecond), hits)

	// 5. The equivalence contract: daemon results — cold or warm —
	//    are bit-identical to the in-process engine.
	local, err := engine.Run(tasks, 0)
	if err != nil {
		log.Fatal(err)
	}
	identical := reflect.DeepEqual(cold, warm)
	for i := range local {
		identical = identical && reflect.DeepEqual(local[i].Campaign, cold[i])
	}
	fmt.Printf("remote == local, cold == warm: %v\n", identical)
	for i, r := range local[:2] {
		fmt.Printf("  %-22s coverage %.1f %%\n", tasks[i].Label, 100*r.Campaign.Coverage())
	}
}
