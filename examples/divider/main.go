// Divider: the paper's S2 case study — the combinational part of a
// 32/16 restoring array divider — including the §5.3 extension the
// paper proposes but left unimplemented: partitioning the fault set and
// computing one optimized distribution per part, because a divider
// contains pairs of hard faults whose test sets are far apart.
//
//	go run ./examples/divider
package main

import (
	"context"
	"fmt"
	"log"

	"optirand"
)

func main() {
	ctx := context.Background()
	r := optirand.NewRunner(optirand.WithSeed(11))
	defer r.Close()

	bench, _ := optirand.BenchmarkByName("s2")
	c := bench.Build()
	fmt.Printf("%s: %d gates, depth %d (an array divider is deep and narrow)\n",
		c.Name, c.NumGates(), c.Stats().Depth)

	// Exclude faults the analysis proves undetectable (dangling top
	// sum bits of the subtractor rows are unobservable by design).
	all := optirand.CollapsedFaults(c)
	probs := optirand.EstimateDetectProbs(c, all, optirand.UniformWeights(c))
	var faults []optirand.Fault
	for i, f := range all {
		if probs[i] > 0 {
			faults = append(faults, f)
		}
	}
	fmt.Printf("faults: %d collapsed, %d provably undetectable excluded\n",
		len(all), len(all)-len(faults))

	// Single-distribution optimization (the paper's Table 3 row).
	res, err := r.Optimize(ctx, optirand.OptimizeSpec{Circuit: c, Faults: faults})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("single distribution: N %.3g -> %.3g\n", res.InitialN, res.FinalN)
	fmt.Println("optimized divisor-input probabilities (the optimizer drives the")
	fmt.Println("divisor low so the early quotient rows actually subtract):")
	for i := 32; i < 48; i++ {
		fmt.Printf("  %-4s %.2f", c.GateName(c.Inputs[i]), res.Weights[i])
		if (i-31)%8 == 0 {
			fmt.Println()
		}
	}

	// §5.3 extension: multiple distributions for partitioned faults.
	m, err := optirand.OptimizeMultiDistribution(c, faults, 3, optirand.OptimizeOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("multi-distribution: %d part(s), estimated N %.3g -> %.3g\n",
		m.Parts(), m.SingleN, m.MixtureN)

	// Confirm by simulation: three pattern sources — uniform weights,
	// optimized weights, and the §5.3 mixture — as one Runner batch.
	sims, err := r.Batch(ctx, []optirand.CampaignSpec{
		{Label: "conventional", Circuit: c, Faults: faults, Source: optirand.Weights(optirand.UniformWeights(c)), Patterns: 12000},
		{Label: "optimized", Circuit: c, Faults: faults, Source: optirand.Weights(res.Weights), Patterns: 12000},
		{Label: "mixture", Circuit: c, Faults: faults, Source: optirand.Mixture(m.WeightSets...), Patterns: 12000},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated coverage at 12,000 patterns: conventional %.1f%%, optimized %.1f%%, mixture %.1f%%\n",
		100*sims[0].Campaign.Coverage(), 100*sims[1].Campaign.Coverage(), 100*sims[2].Campaign.Coverage())
}
