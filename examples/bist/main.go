// BIST: a hardware-faithful weighted-random self-test session. The
// optimized probabilities are quantized to the 1/16 grid a BILBO-style
// weighting network can realize, patterns come from LFSRs (not from a
// software PRNG), and the resulting coverage is compared against the
// ideal-weights simulation — the deployment scenario of the paper's
// §5.2 ([Wu86]/[Wu87]).
//
//	go run ./examples/bist
package main

import (
	"context"
	"fmt"
	"log"

	"optirand"
)

func main() {
	ctx := context.Background()
	r := optirand.NewRunner(optirand.WithSeed(5))
	defer r.Close()

	bench, _ := optirand.BenchmarkByName("c2670")
	c := bench.Build()
	faults := optirand.CollapsedFaults(c)

	res, err := r.Optimize(ctx, optirand.OptimizeSpec{Circuit: c, Faults: faults})
	if err != nil {
		log.Fatal(err)
	}

	// Quantize to what the weighting hardware can produce.
	quantized := make([]float64, len(res.Weights))
	for i, w := range res.Weights {
		quantized[i] = optirand.QuantizeWeight(w)
	}
	fmt.Println("input  ideal  hardware(k/16)")
	for i := range quantized {
		if i%10 == 0 { // sample a few rows; 60 inputs would be noisy
			fmt.Printf("%-6s %.3f  %.4f\n",
				c.GateName(c.Inputs[i]), res.Weights[i], quantized[i])
		}
	}

	const patterns = 4000
	// The three pattern sources of the comparison are three
	// CampaignSpec.Source values on one Runner: ideal software
	// Bernoulli weights, the hardware LFSR stream, and unweighted
	// reference patterns.
	campaign := func(src optirand.PatternSource) *optirand.CampaignResult {
		res, err := r.Campaign(ctx, optirand.CampaignSpec{
			Circuit: c, Faults: faults, Source: src, Patterns: patterns,
		})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}
	// Software ideal: SplitMix64-driven Bernoulli sources.
	ideal := campaign(optirand.Weights(res.Weights))
	// Hardware model: per-input 32-bit LFSRs + 4-bit weighting network
	// (a Stream source — process-local by nature, so it always runs
	// serially in this process).
	src := optirand.NewWeightedLFSR(res.Weights, 5)
	hw := campaign(optirand.Stream(src.NextWords))
	// Conventional BIST without weighting, for reference.
	conv := campaign(optirand.Weights(optirand.UniformWeights(c)))

	fmt.Printf("\ncoverage after %d patterns:\n", patterns)
	fmt.Printf("  unweighted LFSR (conventional BIST): %.1f%%\n", 100*conv.Coverage())
	fmt.Printf("  optimized weights, ideal source:     %.1f%%\n", 100*ideal.Coverage())
	fmt.Printf("  optimized weights, LFSR + 1/16 grid: %.1f%%\n", 100*hw.Coverage())
	fmt.Println("\nthe 1/16 quantization costs little — weighting hardware suffices")
}
