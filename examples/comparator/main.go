// Comparator: a walk-through of the paper's S1 case study using the
// public circuit-construction API — build a magnitude comparator from
// scratch, find its hardest faults, optimize, and reproduce the
// Figure-2 coverage curves.
//
//	go run ./examples/comparator
package main

import (
	"context"
	"fmt"
	"log"

	"optirand"
)

// buildEquality constructs a width-bit equality comparator with the
// public Builder API: eq = AND of per-bit XNORs.
func buildEquality(width int) *optirand.Circuit {
	b := optirand.NewBuilder(fmt.Sprintf("eq%d", width))
	var xnors []int
	for i := 0; i < width; i++ {
		a := b.Input(fmt.Sprintf("a%d", i))
		x := b.Input(fmt.Sprintf("b%d", i))
		xnors = append(xnors, b.Xnor(fmt.Sprintf("m%d", i), a, x))
	}
	b.Output("eq", b.And("eq", xnors...))
	c, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	return c
}

func main() {
	ctx := context.Background()
	r := optirand.NewRunner(optirand.WithSeed(7))
	defer r.Close()

	// Part 1: a hand-built equality comparator shows the mechanics.
	c := buildEquality(16)
	faults := optirand.CollapsedFaults(c)
	an := optirand.NewAnalyzer(c)
	an.Run(optirand.UniformWeights(c))
	fmt.Printf("%s: %d faults\n", c.Name, len(faults))

	// The hardest fault is eq stuck-at-0: it needs all 16 matches.
	worstP, worstI := 1.0, -1
	for i, f := range faults {
		if p := an.DetectProb(f); p < worstP {
			worstP, worstI = p, i
		}
	}
	fmt.Printf("hardest fault: %s with p = %.3g (= 2^-16)\n",
		faults[worstI].Describe(c), worstP)

	res, err := r.Optimize(ctx, optirand.OptimizeSpec{Circuit: c, Faults: faults})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimization: N %.3g -> %.3g\n\n", res.InitialN, res.FinalN)

	// Part 2: the real S1 (six cascaded SN7485 slices) and its
	// Figure-2 coverage curves, both weightings as one Runner batch.
	bench, _ := optirand.BenchmarkByName("s1")
	s1 := bench.Build()
	s1Faults := optirand.CollapsedFaults(s1)
	s1Res, err := r.Optimize(ctx, optirand.OptimizeSpec{
		Circuit: s1, Faults: s1Faults,
		Options: optirand.OptimizeOptions{Quantize: 0.05},
	})
	if err != nil {
		log.Fatal(err)
	}
	curves, err := r.Batch(ctx, []optirand.CampaignSpec{
		{Circuit: s1, Faults: s1Faults, Source: optirand.Weights(optirand.UniformWeights(s1)), Patterns: 12000, CurveStep: 2000},
		{Circuit: s1, Faults: s1Faults, Source: optirand.Weights(s1Res.Weights), Patterns: 12000, CurveStep: 2000},
	})
	if err != nil {
		log.Fatal(err)
	}
	conv, opt := curves[0].Campaign, curves[1].Campaign
	fmt.Println("S1 fault coverage vs. pattern count (paper Figure 2):")
	fmt.Println("patterns  conventional  optimized")
	oi := 0
	for _, p := range conv.Curve {
		for oi < len(opt.Curve)-1 && opt.Curve[oi].Patterns < p.Patterns {
			oi++
		}
		fmt.Printf("%8d  %11.1f%%  %8.1f%%\n", p.Patterns, 100*p.Coverage, 100*opt.Curve[oi].Coverage)
	}
}
