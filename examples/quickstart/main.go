// Quickstart: optimize the input probabilities of a random-pattern-
// resistant circuit and watch the required test length collapse.
//
// Everything runs through a Runner — the execution handle whose
// backend (serial, worker pool, result cache, remote service) is a
// constructor argument, never a code change:
//
//	optirand.NewRunner()                               // serial, in-process
//	optirand.NewRunner(optirand.WithWorkers(8))        // worker pool
//	optirand.NewRunner(optirand.WithRemote("host:8417")) // optirandd service
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"optirand"
)

func main() {
	ctx := context.Background()
	r := optirand.NewRunner(optirand.WithWorkers(0)) // 0 = GOMAXPROCS
	defer r.Close()

	// S1 is the paper's motivating circuit: a 24-bit comparator whose
	// A=B output needs all 24 bit-equalities at once — hopeless for
	// conventional (p = 0.5) random patterns.
	bench, _ := optirand.BenchmarkByName("s1")
	c := bench.Build()
	faults := optirand.CollapsedFaults(c)
	fmt.Printf("circuit %s: %d gates, %d inputs, %d collapsed stuck-at faults\n",
		c.Name, c.NumGates(), c.NumInputs(), len(faults))

	// How long would a conventional random test have to be?
	uniform := optirand.UniformWeights(c)
	probs := optirand.EstimateDetectProbs(c, faults, uniform)
	before := optirand.RequiredTestLength(probs, optirand.DefaultConfidence)
	fmt.Printf("conventional random test: %.3g patterns needed\n", before.N)

	// Optimize one probability per input (the paper's contribution).
	res, err := r.Optimize(ctx, optirand.OptimizeSpec{Circuit: c, Faults: faults})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimized random test:    %.3g patterns needed (gain %.0fx, %d sweeps)\n",
		res.FinalN, res.Gain(), res.Sweeps)

	// Confirm by fault simulation: 12,000 patterns, both weightings,
	// fanned out as one batch on the Runner's pool.
	sims, err := r.Batch(ctx, []optirand.CampaignSpec{
		{Label: "conventional", Circuit: c, Faults: faults, Source: optirand.Weights(uniform), Patterns: 12000},
		{Label: "optimized", Circuit: c, Faults: faults, Source: optirand.Weights(res.Weights), Patterns: 12000},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated coverage at 12,000 patterns: conventional %.1f%%, optimized %.1f%%\n",
		100*sims[0].Campaign.Coverage(), 100*sims[1].Campaign.Coverage())
}
