// Quickstart: optimize the input probabilities of a random-pattern-
// resistant circuit and watch the required test length collapse.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"optirand"
)

func main() {
	// S1 is the paper's motivating circuit: a 24-bit comparator whose
	// A=B output needs all 24 bit-equalities at once — hopeless for
	// conventional (p = 0.5) random patterns.
	bench, _ := optirand.BenchmarkByName("s1")
	c := bench.Build()
	faults := optirand.CollapsedFaults(c)
	fmt.Printf("circuit %s: %d gates, %d inputs, %d collapsed stuck-at faults\n",
		c.Name, c.NumGates(), c.NumInputs(), len(faults))

	// How long would a conventional random test have to be?
	uniform := optirand.UniformWeights(c)
	probs := optirand.EstimateDetectProbs(c, faults, uniform)
	before := optirand.RequiredTestLength(probs, optirand.DefaultConfidence)
	fmt.Printf("conventional random test: %.3g patterns needed\n", before.N)

	// Optimize one probability per input (the paper's contribution).
	res, err := optirand.OptimizeWeights(c, faults, optirand.OptimizeOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimized random test:    %.3g patterns needed (gain %.0fx, %d sweeps)\n",
		res.FinalN, res.Gain(), res.Sweeps)

	// Confirm by fault simulation: 12,000 patterns, both weightings.
	conv := optirand.SimulateRandomTest(c, faults, uniform, 12000, 1, 0)
	opt := optirand.SimulateRandomTest(c, faults, res.Weights, 12000, 1, 0)
	fmt.Printf("simulated coverage at 12,000 patterns: conventional %.1f%%, optimized %.1f%%\n",
		100*conv.Coverage(), 100*opt.Coverage())
}
