# Build/test entry points. `make test` is the tier-1 gate; `make
# test-race` additionally certifies the parallel and distributed
# engine (fault-sharded campaigns, pattern-range sharding, the shared
# good machine, concurrent PREPARE, the sweep orchestrator, the dist
# queue/dispatcher/daemon) under the race detector; `make bench` runs
# the Go benchmarks; `make parbench` / `make servebench` /
# `make internbench` / `make simbench` / `make sweepbench` emit the
# machine-readable performance summaries BENCH_parallel.json /
# BENCH_service.json / BENCH_intern.json / BENCH_sim.json /
# BENCH_sweep.json ; `make fedbench` benchmarks a federated daemon
# tree (1-leaf vs N-leaf, route affinity, leaf-kill requeue) into
# BENCH_fed.json; `make adaptbench` compares closed-loop (adaptive)
# campaigns against the static optimum into BENCH_adapt.json;
# `make serve` starts the optirandd HTTP daemon.

GO ?= go

.PHONY: all build test test-race cover bench parbench serve servebench internbench simbench sweepbench fedbench adaptbench chaos fuzz-smoke vet fmt clean

all: build test

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

# The sim differential suites run full uncollapsed fault universes;
# under the race detector on a small runner that can exceed go test's
# default 10-minute per-package timeout, so give it headroom.
test-race: build
	$(GO) test -race -timeout 30m ./...

# Coverage profile over every package with tests, plus the
# per-function summary CI uploads as a job artifact.
cover: build
	$(GO) test -coverprofile=coverage.out -covermode=atomic ./...
	$(GO) tool cover -func=coverage.out | tee coverage.txt
	@tail -1 coverage.txt

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

parbench:
	$(GO) run ./cmd/benchgen -parbench

serve:
	$(GO) run ./cmd/optirandd

servebench:
	$(GO) run ./cmd/benchgen -servebench

internbench:
	$(GO) run ./cmd/benchgen -internbench

simbench:
	$(GO) run ./cmd/benchgen -simbench

sweepbench:
	$(GO) run ./cmd/benchgen -sweepbench

fedbench:
	$(GO) run ./cmd/benchgen -fedbench

adaptbench:
	$(GO) run ./cmd/benchgen -adaptbench

# The chaos equivalence suite: seeded fault-injection scenarios that
# must end byte-identical to serial, run under the race detector.
chaos: build
	$(GO) test -race -timeout 30m ./internal/chaos/

# A short coverage-guided run per fuzzer — enough to catch an instant
# decoder or framing regression without tying up CI. The committed
# corpora under testdata/fuzz run on every plain `make test` already.
FUZZTIME ?= 10s
fuzz-smoke: build
	$(GO) test ./internal/wire/ -run '^$$' -fuzz FuzzTaskDecode -fuzztime $(FUZZTIME)
	$(GO) test ./internal/wire/ -run '^$$' -fuzz FuzzCircuitDecode -fuzztime $(FUZZTIME)
	$(GO) test ./internal/dist/ -run '^$$' -fuzz FuzzJournalScan -fuzztime $(FUZZTIME)

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

clean:
	$(GO) clean ./...
	rm -f BENCH_parallel.json BENCH_service.json BENCH_intern.json BENCH_sim.json BENCH_sweep.json BENCH_fed.json BENCH_adapt.json coverage.out coverage.txt
