# Build/test entry points. `make test` is the tier-1 gate; `make
# test-race` additionally certifies the parallel engine (fault-sharded
# campaigns, concurrent PREPARE, the sweep orchestrator) under the race
# detector; `make bench` runs the Go benchmarks; `make parbench` emits
# the machine-readable serial-vs-parallel summary BENCH_parallel.json.

GO ?= go

.PHONY: all build test test-race bench parbench vet fmt clean

all: build test

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

test-race: build
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

parbench:
	$(GO) run ./cmd/benchgen -parbench

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

clean:
	$(GO) clean ./...
	rm -f BENCH_parallel.json
