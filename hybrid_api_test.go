package optirand_test

import (
	"testing"

	"optirand"
)

// TestHybridAPIEndToEnd exercises the §5.2 extension surface: ATPG,
// hybrid top-off, MISR signatures and the STAFAN estimator.
func TestHybridAPIEndToEnd(t *testing.T) {
	bench, _ := optirand.BenchmarkByName("s1")
	c := bench.Build()
	faults := optirand.CollapsedFaults(c)

	// Single-fault ATPG.
	p, st := optirand.GenerateTest(c, faults[0], 0)
	if st != optirand.ATPGSuccess || p == nil {
		t.Fatalf("GenerateTest: %v", st)
	}
	if p.Specified() == 0 {
		t.Error("pattern specifies nothing")
	}

	// Batch ATPG.
	res := optirand.GenerateTests(c, faults[:40], 0)
	if res.Detected == 0 {
		t.Error("batch ATPG found nothing")
	}

	// Hybrid flow with uniform weights.
	h := optirand.HybridTest(c, faults, optirand.UniformWeights(c), 1000, 7, 4096)
	if h.Coverage() < 0.99 {
		t.Errorf("hybrid coverage %v", h.Coverage())
	}
	if h.RandomPatterns != 1000 {
		t.Errorf("RandomPatterns = %d", h.RandomPatterns)
	}

	// MISR signatures distinguish good from faulty responses.
	good := optirand.NewMISR(24)
	bad := optirand.NewMISR(24)
	in := make([]bool, c.NumInputs())
	for k := 0; k < 256; k++ { // k=255 gives A==B==all-ones: detects A0 s-a-0
		for i := range in {
			in[i] = (k>>uint(i%8))&1 == 1
		}
		pack := func(bits []bool) uint64 {
			var v uint64
			for i, o := range bits {
				if o {
					v |= 1 << uint(i)
				}
			}
			return v
		}
		good.Clock(pack(c.EvalOutputs(in)))
		bad.Clock(pack(optirand.EvalOutputsWithFault(c, faults[0], in)))
	}
	if good.Signature() == bad.Signature() {
		t.Error("faulty signature aliased with the fault-free one")
	}
}

// TestStafanFacade: the counting estimator is reachable and sane
// through the facade.
func TestStafanFacade(t *testing.T) {
	bench, _ := optirand.BenchmarkByName("c432")
	c := bench.Build()
	faults := optirand.CollapsedFaults(c)
	est := optirand.NewStafanEstimator(c, 64, 3)
	probs := est.DetectProbs(optirand.UniformWeights(c), faults)
	if len(probs) != len(faults) {
		t.Fatalf("got %d probs for %d faults", len(probs), len(faults))
	}
	nonzero := 0
	for _, p := range probs {
		if p < 0 || p > 1 {
			t.Fatalf("probability %v out of range", p)
		}
		if p > 0 {
			nonzero++
		}
	}
	if nonzero < len(faults)/2 {
		t.Errorf("only %d/%d faults measurable", nonzero, len(faults))
	}
}

// TestHybridWithOptimizedWeightsBeatsUniform: fewer top-off patterns
// are needed after weight optimization — the two halves of the paper's
// §5.2 story compose.
func TestHybridWithOptimizedWeightsBeatsUniform(t *testing.T) {
	bench, _ := optirand.BenchmarkByName("c7552")
	c := bench.Build()
	faults := optirand.CollapsedFaults(c)
	// Exclude proven-undetectable faults so ATPG time is not wasted
	// proving redundancies.
	probs := optirand.EstimateDetectProbs(c, faults, optirand.UniformWeights(c))
	var live []optirand.Fault
	for i, f := range faults {
		if probs[i] > 0 {
			live = append(live, f)
		}
	}
	opt, err := optirand.OptimizeWeights(c, live, optirand.OptimizeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	uni := optirand.HybridTest(c, live, optirand.UniformWeights(c), 1500, 11, 20000)
	wtd := optirand.HybridTest(c, live, opt.Weights, 1500, 11, 20000)
	if wtd.RandomDetected <= uni.RandomDetected {
		t.Errorf("optimized random phase detected %d, uniform %d",
			wtd.RandomDetected, uni.RandomDetected)
	}
	if wtd.Coverage() < uni.Coverage() {
		t.Errorf("optimized hybrid coverage %v below uniform %v",
			wtd.Coverage(), uni.Coverage())
	}
}
