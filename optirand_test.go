package optirand_test

import (
	"math"
	"strings"
	"testing"

	"optirand"
)

// TestPublicAPIEndToEnd exercises the documented flow of the package
// comment: parse/build, fault extraction, analysis, optimization,
// simulation — all through the public facade.
func TestPublicAPIEndToEnd(t *testing.T) {
	bench, ok := optirand.BenchmarkByName("s1")
	if !ok {
		t.Fatal("built-in s1 missing")
	}
	c := bench.Build()
	faults := optirand.CollapsedFaults(c)
	if len(faults) == 0 {
		t.Fatal("no faults")
	}

	uniform := optirand.UniformWeights(c)
	probs := optirand.EstimateDetectProbs(c, faults, uniform)
	before := optirand.RequiredTestLength(probs, optirand.DefaultConfidence)
	if before.N < 1e7 {
		t.Errorf("S1 conventional N = %v, expected random-pattern resistance (>1e7)", before.N)
	}

	res, err := optirand.OptimizeWeights(c, faults, optirand.OptimizeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalN >= before.N/100 {
		t.Errorf("optimization gain too small: %v -> %v", before.N, res.FinalN)
	}

	conv := optirand.SimulateRandomTest(c, faults, uniform, 4000, 1, 0)
	opt := optirand.SimulateRandomTest(c, faults, res.Weights, 4000, 1, 0)
	if opt.Coverage() <= conv.Coverage() {
		t.Errorf("optimized coverage %v not above conventional %v", opt.Coverage(), conv.Coverage())
	}
}

func TestPublicAPIBenchRoundTrip(t *testing.T) {
	b := optirand.NewBuilder("tiny")
	x := b.Input("x")
	y := b.Input("y")
	b.Output("o", b.Nand("o", x, y))
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := optirand.WriteBench(&sb, c); err != nil {
		t.Fatal(err)
	}
	back, err := optirand.ParseBenchString(sb.String())
	if err != nil {
		t.Fatal(err)
	}
	if back.NumGates() != c.NumGates() {
		t.Errorf("round trip changed gate count: %d vs %d", back.NumGates(), c.NumGates())
	}
}

func TestPublicAPIExactMatchesEstimateOnTree(t *testing.T) {
	b := optirand.NewBuilder("tree")
	var xn []int
	for i := 0; i < 4; i++ {
		a := b.Input("a" + string(rune('0'+i)))
		x := b.Input("b" + string(rune('0'+i)))
		xn = append(xn, b.Xnor("", a, x))
	}
	b.Output("eq", b.And("eq", xn...))
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	faults := optirand.CollapsedFaults(c)
	w := optirand.UniformWeights(c)
	est := optirand.EstimateDetectProbs(c, faults, w)
	exact := optirand.ExactDetectProbs(c, faults, w)
	for i := range est {
		if math.Abs(est[i]-exact[i]) > 1e-12 {
			t.Errorf("fault %d: estimate %v != exact %v on a tree", i, est[i], exact[i])
		}
	}
}

func TestPublicAPIWeightedLFSR(t *testing.T) {
	src := optirand.NewWeightedLFSR([]float64{0.25, 0.75}, 3)
	dst := make([]uint64, 2)
	src.NextWords(dst)
	q := src.Weights()
	if q[0] != 0.25 || q[1] != 0.75 {
		t.Errorf("quantized weights = %v", q)
	}
	if got := optirand.QuantizeWeight(0.99); got != 15.0/16 {
		t.Errorf("QuantizeWeight(0.99) = %v", got)
	}
}

func TestPublicAPIMixtureSimulation(t *testing.T) {
	bench, _ := optirand.BenchmarkByName("c432")
	c := bench.Build()
	faults := optirand.CollapsedFaults(c)
	sets := [][]float64{optirand.UniformWeights(c), optirand.UniformWeights(c)}
	res := optirand.SimulateRandomTestMixture(c, faults, sets, 2000, 5, 0)
	if res.Coverage() <= 0.5 {
		t.Errorf("mixture campaign coverage %v suspiciously low", res.Coverage())
	}
}

func TestPublicAPISimulateWithSource(t *testing.T) {
	bench, _ := optirand.BenchmarkByName("c432")
	c := bench.Build()
	faults := optirand.CollapsedFaults(c)
	src := optirand.NewWeightedLFSR(optirand.UniformWeights(c), 9)
	res := optirand.SimulateWithSource(c, faults, src.NextWords, 2000, 0)
	if res.Coverage() <= 0.5 {
		t.Errorf("LFSR campaign coverage %v suspiciously low", res.Coverage())
	}
}

func TestPublicAPIExpectedCoverage(t *testing.T) {
	cov := optirand.ExpectedCoverage([]float64{0.5}, 10)
	want := 1 - math.Pow(0.5, 10)
	if math.Abs(cov-want) > 1e-12 {
		t.Errorf("ExpectedCoverage = %v, want %v", cov, want)
	}
}

func TestBenchmarkRegistryThroughFacade(t *testing.T) {
	if len(optirand.Benchmarks()) != 12 {
		t.Error("expected 12 built-in circuits")
	}
	if len(optirand.MarkedBenchmarks()) != 4 {
		t.Error("expected 4 marked circuits")
	}
	if _, ok := optirand.BenchmarkByName("bogus"); ok {
		t.Error("bogus circuit found")
	}
}
