package prob

import (
	"math"
	"testing"
	"testing/quick"

	"optirand/internal/circuit"
	"optirand/internal/fault"
	"optirand/internal/prng"
	"optirand/internal/sim"
)

func treeCircuit() *circuit.Circuit {
	// Fanout-free: COP and cutting bounds must both be exact here.
	b := circuit.NewBuilder("tree")
	in := b.Inputs("x", 6)
	g1 := b.And("g1", in[0], in[1])
	g2 := b.Or("g2", in[2], in[3])
	g3 := b.Xor("g3", in[4], in[5])
	g4 := b.Nand("g4", g1, g2)
	g5 := b.Xnor("g5", g4, g3)
	b.Output("o", g5)
	return b.MustBuild()
}

func reconvergent() *circuit.Circuit {
	b := circuit.NewBuilder("recon")
	a := b.Input("a")
	x := b.Input("b")
	n := b.Not("n", a)
	g1 := b.And("g1", n, x)
	g2 := b.Or("g2", n, x)
	o := b.And("o", g1, g2) // reconverges at o
	b.Output("o", o)
	return b.MustBuild()
}

func TestSignalExactOnTree(t *testing.T) {
	c := treeCircuit()
	w := []float64{0.1, 0.9, 0.3, 0.5, 0.75, 0.2}
	cop := Signal(c, w)
	exact := Exact(c, w)
	for g := range cop {
		if math.Abs(cop[g]-exact[g]) > 1e-12 {
			t.Errorf("gate %d: COP=%v exact=%v (tree must be exact)", g, cop[g], exact[g])
		}
	}
}

func TestSignalKnownValues(t *testing.T) {
	b := circuit.NewBuilder("known")
	in := b.Inputs("x", 3)
	and := b.And("and", in[0], in[1], in[2])
	or := b.Or("or", in[0], in[1], in[2])
	xor := b.Xor("xor", in[0], in[1], in[2])
	b.Output("a", and)
	b.Output("o", or)
	b.Output("x", xor)
	c := b.MustBuild()
	w := []float64{0.5, 0.5, 0.5}
	p := Signal(c, w)
	if math.Abs(p[and]-0.125) > 1e-12 {
		t.Errorf("P(and3) = %v, want 0.125", p[and])
	}
	if math.Abs(p[or]-0.875) > 1e-12 {
		t.Errorf("P(or3) = %v, want 0.875", p[or])
	}
	if math.Abs(p[xor]-0.5) > 1e-12 {
		t.Errorf("P(xor3) = %v, want 0.5", p[xor])
	}
}

// TestExactMatchesMonteCarlo: exact signal probabilities agree with
// simulation-based frequencies on a reconvergent circuit (where COP is
// allowed to be wrong, but Exact is not).
func TestExactMatchesMonteCarlo(t *testing.T) {
	c := reconvergent()
	w := []float64{0.3, 0.7}
	exact := Exact(c, w)
	s := sim.NewSimulator(c)
	rng := prng.New(17)
	words := make([]uint64, 2)
	const batches = 3000
	ones := make([]int, c.NumGates())
	for k := 0; k < batches; k++ {
		rng.WeightedWords(words, w)
		s.SetInputs(words)
		s.Run()
		for g := 0; g < c.NumGates(); g++ {
			ones[g] += onesCount(s.Value(g))
		}
	}
	for g := 0; g < c.NumGates(); g++ {
		freq := float64(ones[g]) / (64 * batches)
		if math.Abs(freq-exact[g]) > 0.01 {
			t.Errorf("gate %d: exact=%v simulated=%v", g, exact[g], freq)
		}
	}
}

func onesCount(w uint64) int {
	n := 0
	for w != 0 {
		w &= w - 1
		n++
	}
	return n
}

// TestCOPBiasOnReconvergence documents the known COP limitation: on the
// reconvergent example, o = (!a&b)|(... ) actually equals b XOR' ...;
// here o = AND(g1,g2) where g1=n&b, g2=n|b; true function is n&b = g1.
// COP multiplies correlated terms and underestimates.
func TestCOPBiasOnReconvergence(t *testing.T) {
	c := reconvergent()
	w := []float64{0.5, 0.5}
	cop := Signal(c, w)
	exact := Exact(c, w)
	o := c.Outputs[0]
	if math.Abs(cop[o]-exact[o]) < 1e-9 {
		t.Errorf("expected COP bias on reconvergent circuit, got none (both %v)", cop[o])
	}
	// exact: P(n&b) = P(a=0)*P(b=1) = 0.25
	if math.Abs(exact[o]-0.25) > 1e-12 {
		t.Errorf("exact = %v, want 0.25", exact[o])
	}
}

// TestCutBoundsContainExact: the cutting algorithm's intervals must
// always contain the exact probability, on random circuits with random
// weights.
func TestCutBoundsContainExact(t *testing.T) {
	rng := prng.New(33)
	for trial := 0; trial < 20; trial++ {
		c := randomCircuit(rng, 5, 18)
		w := make([]float64, c.NumInputs())
		for i := range w {
			w[i] = rng.Float64()
		}
		exact := Exact(c, w)
		bounds := CutBounds(c, w)
		for g := 0; g < c.NumGates(); g++ {
			if !bounds[g].Contains(exact[g], 1e-9) {
				t.Fatalf("trial %d gate %d: exact %v outside bounds [%v,%v]",
					trial, g, exact[g], bounds[g].Lo, bounds[g].Hi)
			}
		}
	}
}

// TestCutBoundsExactOnTree: with no fanout, no cut is made, so the
// intervals are points equal to the exact probabilities.
func TestCutBoundsExactOnTree(t *testing.T) {
	c := treeCircuit()
	w := []float64{0.1, 0.9, 0.3, 0.5, 0.75, 0.2}
	exact := Exact(c, w)
	bounds := CutBounds(c, w)
	for g := 0; g < c.NumGates(); g++ {
		if bounds[g].Width() > 1e-12 {
			t.Errorf("gate %d: non-degenerate interval on a tree: %+v", g, bounds[g])
		}
		if math.Abs(bounds[g].Lo-exact[g]) > 1e-12 {
			t.Errorf("gate %d: point %v != exact %v", g, bounds[g].Lo, exact[g])
		}
	}
}

func randomCircuit(rng *prng.SplitMix64, nIn, nGates int) *circuit.Circuit {
	b := circuit.NewBuilder("rand")
	ids := b.Inputs("x", nIn)
	types := []circuit.GateType{circuit.And, circuit.Nand, circuit.Or,
		circuit.Nor, circuit.Xor, circuit.Xnor, circuit.Not}
	for i := 0; i < nGates; i++ {
		ty := types[rng.Intn(len(types))]
		if ty == circuit.Not {
			ids = append(ids, b.Add(ty, "", ids[rng.Intn(len(ids))]))
			continue
		}
		k := 2 + rng.Intn(2)
		fan := make([]int, k)
		for j := range fan {
			fan[j] = ids[rng.Intn(len(ids))]
		}
		ids = append(ids, b.Add(ty, "", fan...))
	}
	b.Output("", ids[len(ids)-1])
	b.Output("", ids[len(ids)-2])
	return b.MustBuild()
}

// TestExactDetectProbMatchesEnumeration validates the BDD-based fault
// detection probability against exhaustive scalar simulation.
func TestExactDetectProbMatchesEnumeration(t *testing.T) {
	rng := prng.New(44)
	for trial := 0; trial < 8; trial++ {
		c := randomCircuit(rng, 5, 12)
		u := fault.New(c)
		w := make([]float64, c.NumInputs())
		for i := range w {
			w[i] = 0.2 + 0.6*rng.Float64()
		}
		want := sim.ExactDetectProbs(c, u.Reps, w)
		for i, f := range u.Reps {
			got := ExactDetectProb(c, f, w)
			if math.Abs(got-want[i]) > 1e-9 {
				t.Fatalf("trial %d fault %v: bdd=%v enum=%v", trial, f.Describe(c), got, want[i])
			}
		}
	}
}

// TestExactMultilinearity: the true signal probability is affine in
// each single input weight (Shannon expansion; Lemma 1 of the paper),
// even on reconvergent circuits.
func TestExactMultilinearity(t *testing.T) {
	c := reconvergent()
	f := func(w1raw uint16, yraw uint16) bool {
		w1 := float64(w1raw) / 65535
		y := float64(yraw) / 65535
		o := c.Outputs[0]
		p0 := Exact(c, []float64{0, w1})[o]
		p1 := Exact(c, []float64{1, w1})[o]
		py := Exact(c, []float64{y, w1})[o]
		return math.Abs(py-(p0+y*(p1-p0))) <= 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestSignalMultilinearOnTree: on fanout-free circuits the COP
// estimator coincides with the exact probability and is therefore
// affine in each weight. (On reconvergent circuits COP is NOT
// multilinear — an input with fanout > 1 enters the product formula
// more than once. The optimizer's PREPARE/MINIMIZE steps use the
// affine model of the paper regardless; the outer re-ANALYSIS absorbs
// the resulting error, exactly as in PROTEST.)
func TestSignalMultilinearOnTree(t *testing.T) {
	c := treeCircuit()
	base := []float64{0.1, 0.9, 0.3, 0.5, 0.75, 0.2}
	o := c.Outputs[0]
	for i := range base {
		w := append([]float64(nil), base...)
		w[i] = 0
		p0 := Signal(c, w)[o]
		w[i] = 1
		p1 := Signal(c, w)[o]
		for _, y := range []float64{0.12, 0.4, 0.77} {
			w[i] = y
			py := Signal(c, w)[o]
			if math.Abs(py-(p0+y*(p1-p0))) > 1e-12 {
				t.Errorf("input %d not affine at y=%v", i, y)
			}
		}
	}
}

func TestGateProbConstAndBuf(t *testing.T) {
	b := circuit.NewBuilder("cb")
	a := b.Input("a")
	z := b.Const0("z")
	o := b.Const1("o")
	bf := b.Buf("bf", a)
	g := b.Or("g", z, o, bf)
	b.Output("out", g)
	c := b.MustBuild()
	p := Signal(c, []float64{0.37})
	if p[z] != 0 || p[o] != 1 {
		t.Errorf("const probs: %v %v", p[z], p[o])
	}
	if p[bf] != 0.37 {
		t.Errorf("buf prob = %v", p[bf])
	}
	if p[g] != 1 {
		t.Errorf("or with const1 = %v, want 1", p[g])
	}
}
