package prob

import (
	"fmt"

	"optirand/internal/circuit"
)

// Interval is a closed probability interval [Lo, Hi].
type Interval struct {
	Lo, Hi float64
}

// Point returns the degenerate interval [p,p].
func Point(p float64) Interval { return Interval{p, p} }

// Contains reports whether p lies in the interval, within eps slack.
func (iv Interval) Contains(p, eps float64) bool {
	return p >= iv.Lo-eps && p <= iv.Hi+eps
}

// Width returns Hi - Lo.
func (iv Interval) Width() float64 { return iv.Hi - iv.Lo }

// CutBounds computes guaranteed lower and upper bounds on every gate's
// signal probability using the cutting algorithm [BDS84]: every branch
// of a multi-fanout stem is cut and replaced by the full interval [0,1],
// which turns the network into a forest where interval propagation is
// sound (each deterministic assignment of the cut lines is a corner of
// the leaf box, and the propagated interval contains every corner value,
// hence every mixture of them). Keeping one branch uncut would be
// unsound: with o = a XOR a and P(a)=0.5 it would yield the degenerate
// interval [0.5,0.5] although the true probability is 0. On fanout-free
// circuits no cut is made and the bounds collapse to the exact
// probabilities.
func CutBounds(c *circuit.Circuit, weights []float64) []Interval {
	if len(weights) != c.NumInputs() {
		panic(fmt.Sprintf("prob: CutBounds: got %d weights, want %d", len(weights), c.NumInputs()))
	}
	iv := make([]Interval, c.NumGates())
	for pos, g := range c.Inputs {
		iv[g] = Point(weights[pos])
	}
	full := Interval{0, 1}
	for _, g := range c.TopoOrder() {
		gate := &c.Gates[g]
		if gate.Type == circuit.Input {
			continue
		}
		in := make([]Interval, len(gate.Fanin))
		for pin, d := range gate.Fanin {
			if c.FanoutCount(d) > 1 {
				in[pin] = full
			} else {
				in[pin] = iv[d]
			}
		}
		iv[g] = gateInterval(gate.Type, in)
	}
	return iv
}

func gateInterval(t circuit.GateType, in []Interval) Interval {
	switch t {
	case circuit.Buf:
		return in[0]
	case circuit.Not:
		return Interval{1 - in[0].Hi, 1 - in[0].Lo}
	case circuit.And, circuit.Nand:
		lo, hi := 1.0, 1.0
		for _, x := range in {
			lo *= x.Lo
			hi *= x.Hi
		}
		if t == circuit.Nand {
			return Interval{1 - hi, 1 - lo}
		}
		return Interval{lo, hi}
	case circuit.Or, circuit.Nor:
		qlo, qhi := 1.0, 1.0 // probability all-zero, bounds
		for _, x := range in {
			qlo *= 1 - x.Hi
			qhi *= 1 - x.Lo
		}
		if t == circuit.Nor {
			return Interval{qlo, qhi}
		}
		return Interval{1 - qhi, 1 - qlo}
	case circuit.Xor, circuit.Xnor:
		// Fold pairwise; P(a⊕b) = a + b - 2ab is bilinear, so extrema
		// over a box are attained at its corners.
		acc := in[0]
		for _, x := range in[1:] {
			corners := [4]float64{
				xor2(acc.Lo, x.Lo), xor2(acc.Lo, x.Hi),
				xor2(acc.Hi, x.Lo), xor2(acc.Hi, x.Hi),
			}
			lo, hi := corners[0], corners[0]
			for _, v := range corners[1:] {
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
			acc = Interval{lo, hi}
		}
		if t == circuit.Xnor {
			return Interval{1 - acc.Hi, 1 - acc.Lo}
		}
		return acc
	case circuit.Const0:
		return Point(0)
	case circuit.Const1:
		return Point(1)
	}
	panic(fmt.Sprintf("prob: gateInterval: unexpected gate type %v", t))
}

func xor2(a, b float64) float64 { return a + b - 2*a*b }
