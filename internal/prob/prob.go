// Package prob computes signal probabilities of combinational networks:
// the probability that each gate output is 1 when the primary inputs are
// independent Bernoulli sources.
//
// Three computations are provided, mirroring the toolbox the paper's
// introduction surveys:
//
//   - Signal: the fast estimator under the input-independence assumption
//     (exact on fanout-free circuits; the approach of PROTEST/COP).
//   - Exact: the Parker–McCluskey exact computation [McPa75] via BDD
//     weighted model counting (exponential worst case).
//   - CutBounds: the cutting algorithm's guaranteed lower/upper bounds
//     [BDS84], obtained by cutting fanout branches and propagating
//     intervals.
package prob

import (
	"fmt"

	"optirand/internal/bdd"
	"optirand/internal/circuit"
	"optirand/internal/fault"
)

// Signal computes per-gate signal probabilities under the independence
// assumption, in topological order. weights[i] is P(input i = 1).
// The result is exact when no gate's fanins share support (e.g. trees).
func Signal(c *circuit.Circuit, weights []float64) []float64 {
	p := make([]float64, c.NumGates())
	SignalInto(c, weights, p)
	return p
}

// SignalInto is Signal writing into a caller-provided slice to avoid
// allocation in inner optimization loops.
func SignalInto(c *circuit.Circuit, weights []float64, p []float64) {
	if len(weights) != c.NumInputs() {
		panic(fmt.Sprintf("prob: Signal: got %d weights, want %d", len(weights), c.NumInputs()))
	}
	if len(p) != c.NumGates() {
		panic("prob: SignalInto: bad destination length")
	}
	for pos, g := range c.Inputs {
		p[g] = weights[pos]
	}
	for _, g := range c.TopoOrder() {
		gate := &c.Gates[g]
		if gate.Type == circuit.Input {
			continue
		}
		p[g] = GateProb(gate.Type, gate.Fanin, p)
	}
}

// GateProb computes the output-1 probability of one gate from its fanin
// probabilities under the independence assumption.
func GateProb(t circuit.GateType, fanin []int, p []float64) float64 {
	switch t {
	case circuit.Buf:
		return p[fanin[0]]
	case circuit.Not:
		return 1 - p[fanin[0]]
	case circuit.And, circuit.Nand:
		v := 1.0
		for _, f := range fanin {
			v *= p[f]
		}
		if t == circuit.Nand {
			return 1 - v
		}
		return v
	case circuit.Or, circuit.Nor:
		v := 1.0
		for _, f := range fanin {
			v *= 1 - p[f]
		}
		if t == circuit.Nor {
			return v
		}
		return 1 - v
	case circuit.Xor, circuit.Xnor:
		// Parity probability folds pairwise: P(a⊕b) = a(1-b)+b(1-a).
		v := 0.0
		first := true
		for _, f := range fanin {
			if first {
				v = p[f]
				first = false
				continue
			}
			v = v*(1-p[f]) + p[f]*(1-v)
		}
		if t == circuit.Xnor {
			return 1 - v
		}
		return v
	case circuit.Const0:
		return 0
	case circuit.Const1:
		return 1
	}
	panic(fmt.Sprintf("prob: GateProb: unexpected gate type %v", t))
}

// Exact computes the exact per-gate signal probabilities by building
// BDDs over the primary inputs (Parker–McCluskey). Worst-case
// exponential; intended for validation and small circuits.
func Exact(c *circuit.Circuit, weights []float64) []float64 {
	m := bdd.NewManager(c.NumInputs())
	refs := bdd.FromCircuit(m, c)
	p := make([]float64, c.NumGates())
	for g, r := range refs {
		p[g] = m.Prob(r, weights)
	}
	return p
}

// ExactDetectProb computes the exact detection probability of fault f:
// the probability that at least one primary output of the faulty
// machine differs from the good machine, under independent inputs with
// the given weights. Implemented as BDD weighted counting of
// OR_o(good_o XOR faulty_o).
func ExactDetectProb(c *circuit.Circuit, f fault.Fault, weights []float64) float64 {
	m := bdd.NewManager(c.NumInputs())
	good := bdd.FromCircuit(m, c)
	bad := faultyRefs(m, c, f, good)
	diff := bdd.False
	for _, o := range c.Outputs {
		diff = m.Or(diff, m.Xor(good[o], bad[o]))
	}
	return m.Prob(diff, weights)
}

// ExactDetectProbs computes ExactDetectProb for a list of faults sharing
// one manager (cheaper: the good-machine BDDs are reused).
func ExactDetectProbs(c *circuit.Circuit, faults []fault.Fault, weights []float64) []float64 {
	m := bdd.NewManager(c.NumInputs())
	good := bdd.FromCircuit(m, c)
	out := make([]float64, len(faults))
	for i, f := range faults {
		bad := faultyRefs(m, c, f, good)
		diff := bdd.False
		for _, o := range c.Outputs {
			diff = m.Or(diff, m.Xor(good[o], bad[o]))
		}
		out[i] = m.Prob(diff, weights)
	}
	return out
}

// faultyRefs rebuilds gate BDDs with fault f injected, reusing good refs
// outside the fault's forward cone.
func faultyRefs(m *bdd.Manager, c *circuit.Circuit, f fault.Fault, good []bdd.Ref) []bdd.Ref {
	bad := make([]bdd.Ref, len(good))
	copy(bad, good)
	forcedRef := m.Const(f.Stuck == 1)

	inCone := make(map[int]bool)
	var coneRoot int
	if f.IsStem() {
		coneRoot = f.Gate
	} else {
		coneRoot = f.Gate // effect starts at the gate reading the branch
	}
	for _, g := range c.ForwardCone(coneRoot) {
		inCone[g] = true
	}

	if f.IsStem() {
		bad[f.Gate] = forcedRef
	}
	for _, g := range c.TopoOrder() {
		if !inCone[g] {
			continue
		}
		if f.IsStem() && g == f.Gate {
			continue // already forced
		}
		gate := &c.Gates[g]
		if gate.Type == circuit.Input {
			continue
		}
		in := func(pin int) bdd.Ref {
			if !f.IsStem() && g == f.Gate && pin == f.Pin {
				return forcedRef
			}
			return bad[gate.Fanin[pin]]
		}
		var r bdd.Ref
		switch gate.Type {
		case circuit.Buf:
			r = in(0)
		case circuit.Not:
			r = m.Not(in(0))
		case circuit.And, circuit.Nand:
			r = bdd.True
			for pin := range gate.Fanin {
				r = m.And(r, in(pin))
			}
			if gate.Type == circuit.Nand {
				r = m.Not(r)
			}
		case circuit.Or, circuit.Nor:
			r = bdd.False
			for pin := range gate.Fanin {
				r = m.Or(r, in(pin))
			}
			if gate.Type == circuit.Nor {
				r = m.Not(r)
			}
		case circuit.Xor, circuit.Xnor:
			r = bdd.False
			for pin := range gate.Fanin {
				r = m.Xor(r, in(pin))
			}
			if gate.Type == circuit.Xnor {
				r = m.Not(r)
			}
		case circuit.Const0:
			r = bdd.False
		case circuit.Const1:
			r = bdd.True
		}
		bad[g] = r
	}
	return bad
}
