package core

import (
	"errors"
	"math"

	"optirand/internal/circuit"
	"optirand/internal/fault"
	"optirand/internal/testability"
	"optirand/internal/testlen"
)

// MultiResult reports a multi-distribution optimization (the extension
// the paper's §5.3 proposes for "pathological" circuits: pairs of hard
// faults whose test sets are far apart in Hamming distance cannot be
// served by one distribution; the fault set is partitioned and each
// part gets its own optimized input probabilities).
type MultiResult struct {
	// WeightSets holds one optimized probability tuple per partition.
	WeightSets [][]float64
	// Rounds holds the per-partition optimizer reports.
	Rounds []*Result
	// PartSizes[i] is the number of faults partition i was optimized
	// for (partition 0 is the full fault set).
	PartSizes []int
	// SingleN is the required test length with WeightSets[0] alone;
	// MixtureN is the required length when patterns are drawn from the
	// equal mixture of all weight sets. MixtureN ≤ SingleN·k would be
	// break-even; in the pathological cases it is far smaller.
	SingleN, MixtureN float64
}

// Parts returns the number of distributions computed.
func (m *MultiResult) Parts() int { return len(m.WeightSets) }

// OptimizeMulti runs the paper's §5.3 extension: it first optimizes one
// distribution for the whole fault set, then repeatedly collects the
// faults still hard under *every* distribution found so far (detection
// probability below hardThreshold·(best fault's probability scale)) and
// optimizes a dedicated distribution for them, up to maxParts
// distributions. Applying the test draws patterns from the equal
// mixture of the distributions.
func OptimizeMulti(c *circuit.Circuit, faults []fault.Fault, maxParts int, o Options) (*MultiResult, error) {
	if maxParts < 1 {
		return nil, errors.New("core: OptimizeMulti: maxParts must be >= 1")
	}
	opt := o.withDefaults()
	first, err := Optimize(c, faults, o)
	if err != nil {
		return nil, err
	}
	m := &MultiResult{
		WeightSets: [][]float64{first.Weights},
		Rounds:     []*Result{first},
		PartSizes:  []int{len(faults)},
		SingleN:    first.FinalN,
	}

	an := testability.NewAnalyzer(c)
	probsFor := func(w []float64) []float64 {
		probs := make([]float64, len(faults))
		an.Run(w)
		an.DetectProbsInto(faults, probs)
		return probs
	}
	// perSet[r][f] = p_f(X_r); best[f] = max over sets.
	perSet := [][]float64{probsFor(first.Weights)}
	best := make([]float64, len(faults))
	copy(best, perSet[0])

	mixtureN := func(sets [][]float64) float64 {
		mean := make([]float64, len(faults))
		for _, probs := range sets {
			for i, p := range probs {
				mean[i] += p
			}
		}
		k := float64(len(sets))
		for i := range mean {
			mean[i] /= k
		}
		return testlen.Normalize(mean, opt.Confidence).N
	}
	curN := mixtureN(perSet)

	// Growth phase: repeatedly cluster around the hardest fault not yet
	// served by any distribution and optimize a dedicated distribution
	// for the cluster. No acceptance test here — with symmetric
	// opposed cones the first extra part transiently worsens the
	// mixture (dilution) and only the complementary part recovers it,
	// so acceptance is deferred to the pruning phase.
	for len(m.WeightSets) < maxParts {
		bestOf := make([]float64, len(best))
		copy(bestOf, best)
		norm := testlen.Normalize(bestOf, opt.Confidence)
		if math.IsInf(norm.N, 1) || norm.N == 0 {
			break
		}
		// Faults still hard under every distribution found so far:
		// detection probability below a few times the rate p_ideal
		// that would exactly fit the best-of-distributions length.
		threshold := math.Log(1/(-math.Log(opt.Confidence))) / norm.N * 4
		seed := -1
		for i, p := range best {
			if p > opt.RedundancyFloor && p < threshold && (seed < 0 || p < best[seed]) {
				seed = i
			}
		}
		if seed < 0 {
			break
		}
		// The cluster: hard faults actually helped by a distribution
		// dedicated to the seed fault — the paper's partition is such
		// a test-set compatibility class.
		seedRes, err := Optimize(c, []fault.Fault{faults[seed]}, o)
		if err != nil {
			return nil, err
		}
		seedProbs := probsFor(seedRes.Weights)
		var cluster []fault.Fault
		for i, p := range best {
			if p > opt.RedundancyFloor && p < threshold && seedProbs[i] > p {
				cluster = append(cluster, faults[i])
			}
		}
		res := seedRes
		candProbs := seedProbs
		if len(cluster) > 1 {
			if refined, err2 := Optimize(c, cluster, o); err2 == nil {
				refProbs := probsFor(refined.Weights)
				if mixtureN(append(append([][]float64{}, perSet...), refProbs)) <
					mixtureN(append(append([][]float64{}, perSet...), seedProbs)) {
					res, candProbs = refined, refProbs
				}
			}
		} else {
			cluster = []fault.Fault{faults[seed]}
		}
		improved := false
		for i, p := range candProbs {
			if p > best[i] {
				best[i] = p
				improved = true
			}
		}
		if !improved {
			break // the new distribution serves nothing new
		}
		perSet = append(perSet, candProbs)
		m.WeightSets = append(m.WeightSets, res.Weights)
		m.Rounds = append(m.Rounds, res)
		m.PartSizes = append(m.PartSizes, len(cluster))
	}

	// Pruning phase: greedily drop parts whose removal improves the
	// mixture length (each part dilutes the others' pattern share; a
	// compromise part often becomes dead weight once dedicated parts
	// exist). At least one part always remains.
	kept := make([]int, len(perSet))
	for i := range kept {
		kept[i] = i
	}
	curN = mixtureN(perSet)
	for len(kept) > 1 {
		bestDrop, bestN := -1, curN
		for d := range kept {
			var trial [][]float64
			for j, idx := range kept {
				if j != d {
					trial = append(trial, perSet[idx])
				}
			}
			if n := mixtureN(trial); n < bestN {
				bestDrop, bestN = d, n
			}
		}
		if bestDrop < 0 {
			break
		}
		kept = append(kept[:bestDrop], kept[bestDrop+1:]...)
		curN = bestN
	}
	// Greedy pruning can stop in a local minimum; the single original
	// distribution is always a valid fallback and bounds MixtureN by
	// SingleN.
	if singleN := mixtureN(perSet[:1]); singleN < curN {
		kept = []int{0}
		curN = singleN
	}
	if len(kept) != len(perSet) {
		var ws [][]float64
		var rounds []*Result
		var sizes []int
		for _, idx := range kept {
			ws = append(ws, m.WeightSets[idx])
			rounds = append(rounds, m.Rounds[idx])
			sizes = append(sizes, m.PartSizes[idx])
		}
		m.WeightSets, m.Rounds, m.PartSizes = ws, rounds, sizes
	}
	m.MixtureN = curN
	return m, nil
}
