package core

import (
	"math"
	"testing"

	"optirand/internal/circuit"
	"optirand/internal/fault"
	"optirand/internal/prng"
	"optirand/internal/testability"
	"optirand/internal/testlen"
)

// randMixedCircuit builds random circuits biased toward AND/OR cones so
// the optimizer has something to chew on.
func randMixedCircuit(seed uint64) *circuit.Circuit {
	rng := prng.New(seed)
	b := circuit.NewBuilder("randmix")
	ids := b.Inputs("x", 6+rng.Intn(4))
	types := []circuit.GateType{circuit.And, circuit.And, circuit.Or,
		circuit.Nand, circuit.Nor, circuit.Xor, circuit.Not}
	for i := 0; i < 20+rng.Intn(15); i++ {
		ty := types[rng.Intn(len(types))]
		if ty == circuit.Not {
			ids = append(ids, b.Add(ty, "", ids[rng.Intn(len(ids))]))
			continue
		}
		fan := make([]int, 2+rng.Intn(3))
		for j := range fan {
			fan[j] = ids[rng.Intn(len(ids))]
		}
		ids = append(ids, b.Add(ty, "", fan...))
	}
	b.Output("", ids[len(ids)-1])
	b.Output("", ids[len(ids)-2])
	b.Output("", ids[len(ids)-3])
	return b.MustBuild()
}

// TestOptimizeNeverRegresses: on arbitrary circuits the reported final
// test length never exceeds the initial one (the optimizer tracks the
// best sweep), and the reported numbers are consistent with an
// independent re-analysis at the returned weights.
func TestOptimizeNeverRegresses(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		c := randMixedCircuit(seed)
		u := fault.New(c)
		res, err := Optimize(c, u.Reps, Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.FinalN > res.InitialN*(1+1e-9) {
			t.Errorf("seed %d: FinalN %v > InitialN %v", seed, res.FinalN, res.InitialN)
		}
		// Cross-check FinalN: re-run ANALYSIS at the returned weights.
		an := testability.NewAnalyzer(c)
		probs := an.DetectProbs(res.Weights, u.Reps)
		var live []float64
		for _, p := range probs {
			if p > 1e-18 {
				live = append(live, p)
			}
		}
		n := testlen.Normalize(live, testlen.DefaultConfidence).N
		if res.FinalN > 0 && math.Abs(n-res.FinalN)/res.FinalN > 1e-6 {
			t.Errorf("seed %d: reported FinalN %v, independent recomputation %v",
				seed, res.FinalN, n)
		}
		for i, w := range res.Weights {
			if w < 0.02-1e-12 || w > 0.98+1e-12 {
				t.Errorf("seed %d: weight %d = %v outside default clamp", seed, i, w)
			}
		}
	}
}

// TestOptimizeHistoryConsistent: History[0] is the initial state and
// the recorded best matches the minimum over history when no
// quantization is applied.
func TestOptimizeHistoryConsistent(t *testing.T) {
	c := eqComparator(9)
	u := fault.New(c)
	res, err := Optimize(c, u.Reps, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.History[0].N != res.InitialN {
		t.Errorf("History[0].N = %v, InitialN = %v", res.History[0].N, res.InitialN)
	}
	best := math.Inf(1)
	for _, h := range res.History {
		if h.N < best {
			best = h.N
		}
	}
	if math.Abs(best-res.FinalN)/best > 1e-9 {
		t.Errorf("FinalN %v != best-of-history %v (no quantization requested)", res.FinalN, best)
	}
	if res.Analyses <= 0 || res.Elapsed <= 0 {
		t.Errorf("bookkeeping missing: analyses=%d elapsed=%v", res.Analyses, res.Elapsed)
	}
}

// TestOptimizeWithUndetectableFaults: faults with estimate 0 must be
// excluded and reported, not break the optimization.
func TestOptimizeWithUndetectableFaults(t *testing.T) {
	b := circuit.NewBuilder("dead")
	a := b.Input("a")
	x := b.Input("b")
	one := b.Const1("one")
	g := b.And("g", a, x)
	dead := b.Or("dead", g, one) // constant 1: g unobservable through it
	live := b.Xor("live", a, x)
	b.Output("o1", dead)
	b.Output("o2", live)
	c := b.MustBuild()
	u := fault.New(c)
	res, err := Optimize(c, u.Reps, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.SuspectedRedundant == 0 {
		t.Error("expected suspected-redundant faults behind the constant OR")
	}
	if math.IsInf(res.FinalN, 1) || math.IsNaN(res.FinalN) {
		t.Errorf("FinalN = %v", res.FinalN)
	}
}

// TestOptimizeAllUndetectable: when the supplied fault list consists
// only of masked faults, Optimize must fail cleanly instead of
// dividing by zero or looping.
func TestOptimizeAllUndetectable(t *testing.T) {
	b := circuit.NewBuilder("alldead")
	a := b.Input("a")
	one := b.Const1("one")
	g := b.And("g", a, one)
	o := b.Or("o", g, one) // constant 1 masks everything upstream
	b.Output("o", o)
	c := b.MustBuild()
	// Faults on a and g are unobservable through the constant OR.
	masked := []fault.Fault{
		{Gate: a, Pin: fault.StemPin, Stuck: 0},
		{Gate: a, Pin: fault.StemPin, Stuck: 1},
		{Gate: g, Pin: fault.StemPin, Stuck: 0},
		{Gate: g, Pin: fault.StemPin, Stuck: 1},
	}
	if _, err := Optimize(c, masked, Options{}); err == nil {
		t.Error("expected an error when every supplied fault is suspected redundant")
	}
}
