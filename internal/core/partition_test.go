package core

import (
	"math"
	"testing"

	"optirand/internal/circuit"
	"optirand/internal/fault"
)

// opposedCones builds the pathological structure of the paper's §5.3:
// two wide cones whose test sets are maximally distant — one needs
// a == b (all bits matching), the other needs a == ^b (all bits
// differing). No single product distribution serves both.
func opposedCones(k int) *circuit.Circuit {
	b := circuit.NewBuilder("opposed")
	as := b.Inputs("a", k)
	bs := b.Inputs("b", k)
	xn := make([]int, k)
	xr := make([]int, k)
	for i := 0; i < k; i++ {
		xn[i] = b.Xnor("", as[i], bs[i])
		xr[i] = b.Xor("", as[i], bs[i])
	}
	b.Output("eq", b.And("eq", xn...))
	b.Output("ne", b.And("ne", xr...))
	return b.MustBuild()
}

func TestOptimizeMultiOnPathologicalCircuit(t *testing.T) {
	c := opposedCones(10)
	u := fault.New(c)
	m, err := OptimizeMulti(c, u.Reps, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Parts() < 2 {
		t.Fatalf("expected the pathological circuit to trigger partitioning, got %d part(s)", m.Parts())
	}
	if !(m.MixtureN < m.SingleN) {
		t.Errorf("mixture N %v not better than single-distribution N %v", m.MixtureN, m.SingleN)
	}
	// The mixture must beat the single distribution by a wide margin:
	// one distribution can favor only one of the two opposed cones.
	if m.SingleN/m.MixtureN < 4 {
		t.Errorf("mixture gain %v, want >= 4 on opposed cones", m.SingleN/m.MixtureN)
	}
}

// TestOptimizeMultiAcceptance: every accepted partition must improve
// the mixture test length (the acceptance rule), so MixtureN <= SingleN
// always, and partition sizes never exceed the full fault set.
func TestOptimizeMultiAcceptance(t *testing.T) {
	for _, c := range []*circuit.Circuit{eqComparator(8), opposedCones(6)} {
		u := fault.New(c)
		m, err := OptimizeMulti(c, u.Reps, 4, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if m.MixtureN > m.SingleN*(1+1e-9) {
			t.Errorf("%s: MixtureN %v worse than SingleN %v", c.Name, m.MixtureN, m.SingleN)
		}
		for i, s := range m.PartSizes {
			if s < 1 || s > len(u.Reps) {
				t.Errorf("%s: partition %d has size %d (fault count %d)", c.Name, i, s, len(u.Reps))
			}
		}
		if m.Parts() > 4 {
			t.Errorf("%s: %d parts exceeds maxParts", c.Name, m.Parts())
		}
		if math.IsNaN(m.MixtureN) {
			t.Errorf("%s: MixtureN is NaN", c.Name)
		}
	}
}

func TestOptimizeMultiErrors(t *testing.T) {
	c := eqComparator(4)
	u := fault.New(c)
	if _, err := OptimizeMulti(c, u.Reps, 0, Options{}); err == nil {
		t.Error("maxParts=0 accepted")
	}
	if _, err := OptimizeMulti(c, nil, 2, Options{}); err == nil {
		t.Error("empty fault list accepted")
	}
}
