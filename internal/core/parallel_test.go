package core

import (
	"reflect"
	"runtime"
	"testing"

	"optirand/internal/fault"
	"optirand/internal/gen"
)

// optimizeWorkerCounts mirrors the campaign equivalence matrix. Values
// above 2 exercise the API contract (effective PREPARE parallelism caps
// at 2) without changing results.
func optimizeWorkerCounts() []int {
	return []int{1, 2, 7, runtime.GOMAXPROCS(0)}
}

// equalOptimize fails unless a and b agree on everything the optimizer
// promises to keep deterministic: weights, test lengths, sweep history,
// and the redundancy count. Analyses and Elapsed are measurements of
// the execution strategy, not of the optimization, and are excluded.
func equalOptimize(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if !reflect.DeepEqual(a.Weights, b.Weights) {
		t.Errorf("%s: weights differ\nserial:   %v\nparallel: %v", label, a.Weights, b.Weights)
	}
	if a.InitialN != b.InitialN || a.FinalN != b.FinalN {
		t.Errorf("%s: test lengths differ: serial (%v, %v), parallel (%v, %v)",
			label, a.InitialN, a.FinalN, b.InitialN, b.FinalN)
	}
	if a.Sweeps != b.Sweeps || !reflect.DeepEqual(a.History, b.History) {
		t.Errorf("%s: sweep history differs:\nserial:   %+v\nparallel: %+v",
			label, a.History, b.History)
	}
	if a.SuspectedRedundant != b.SuspectedRedundant {
		t.Errorf("%s: redundancy counts differ: %d vs %d",
			label, a.SuspectedRedundant, b.SuspectedRedundant)
	}
}

// TestOptimizeWorkersEquivalence asserts that the parallel-PREPARE
// optimizer returns bit-identical results to the serial one on every
// generated benchmark circuit, for every tested worker count. Sweeps
// are capped to keep the full 12-circuit matrix fast; equivalence is
// per-sweep, so a capped run that matches certifies the full run.
func TestOptimizeWorkersEquivalence(t *testing.T) {
	opts := Options{MaxSweeps: 2, Quantize: 0.05}
	for _, b := range gen.Benchmarks() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			c := b.Build()
			faults := fault.New(c).Reps
			ref, err := Optimize(c, faults, opts)
			if err != nil {
				t.Fatalf("serial optimize: %v", err)
			}
			for _, w := range optimizeWorkerCounts() {
				o := opts
				o.Workers = w
				got, err := Optimize(c, faults, o)
				if err != nil {
					t.Fatalf("workers=%d: %v", w, err)
				}
				equalOptimize(t, b.Name, ref, got)
				if t.Failed() {
					t.Fatalf("workers=%d diverged from serial", w)
				}
			}
		})
	}
}

// TestOptimizeWorkersRepeatable re-runs the parallel optimizer and
// demands identical results — the determinism property test for the
// concurrent PREPARE path (meaningful under -race).
func TestOptimizeWorkersRepeatable(t *testing.T) {
	b, _ := gen.ByName("s1")
	c := b.Build()
	faults := fault.New(c).Reps
	var ref *Result
	for rep := 0; rep < 3; rep++ {
		got, err := Optimize(c, faults, Options{MaxSweeps: 3, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = got
			continue
		}
		equalOptimize(t, "s1-repeat", ref, got)
	}
}

// TestOptimizeWorkersFullRun removes the sweep cap on one resistant
// circuit: the complete optimization (default convergence criterion,
// quantized grid) must agree between serial and parallel.
func TestOptimizeWorkersFullRun(t *testing.T) {
	b, _ := gen.ByName("s1")
	c := b.Build()
	faults := fault.New(c).Reps
	ref, err := Optimize(c, faults, Options{Quantize: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Optimize(c, faults, Options{Quantize: 0.05, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	equalOptimize(t, "s1-full", ref, got)
	if ref.FinalN >= ref.InitialN {
		t.Errorf("optimization did not shrink the test length: %v -> %v", ref.InitialN, ref.FinalN)
	}
}
