package core

import (
	"math"
	"testing"

	"optirand/internal/fault"
	"optirand/internal/gen"
	"optirand/internal/testability"
)

// TestOptimizedWeightsMonteCarloCheck is the optimizer's sampling
// cross-check on the compiled simulation kernel: the Monte-Carlo
// estimator (which drives sim.DetectWord for every fault of every
// batch — the hot path this PR compiled) must deterministically
// reproduce itself and broadly agree with the analytic estimator the
// optimizer trusts, at the optimized weight vector where the two
// matter most.
func TestOptimizedWeightsMonteCarloCheck(t *testing.T) {
	b, ok := gen.ByName("c880")
	if !ok {
		t.Fatal("missing benchmark c880")
	}
	c := b.Build()
	faults := fault.New(c).Reps

	res, err := Optimize(c, faults, Options{MaxSweeps: 2})
	if err != nil {
		t.Fatal(err)
	}

	mc := &testability.MonteCarlo{Circuit: c, Words: 512, Seed: 77}
	got := mc.DetectProbs(res.Weights, faults)
	again := mc.DetectProbs(res.Weights, faults)
	for i := range got {
		if got[i] != again[i] {
			t.Fatalf("Monte-Carlo estimate not deterministic at fault %d: %v vs %v", i, got[i], again[i])
		}
	}

	// Agreement with the analytic estimator: same scale for the
	// readily detectable faults (the analytic estimator ignores
	// reconvergence correlations, so only a loose band is meaningful).
	an := testability.NewAnalyzer(c)
	analytic := an.DetectProbs(res.Weights, faults)
	disagree := 0
	for i := range got {
		if analytic[i] < 0.05 {
			continue // below sampling resolution at 512 words
		}
		if math.Abs(got[i]-analytic[i]) > 0.35 {
			disagree++
		}
	}
	if frac := float64(disagree) / float64(len(faults)); frac > 0.10 {
		t.Errorf("%.1f%% of faults disagree between Monte-Carlo and analytic estimates", 100*frac)
	}
}
