package core

import (
	"math"
	"testing"

	"optirand/internal/circuit"
	"optirand/internal/fault"
	"optirand/internal/prob"
	"optirand/internal/testability"
	"optirand/internal/testlen"
)

// eqComparator builds a k-bit equality comparator: AND of k XNORs — the
// paper's motivating random-pattern-resistant structure.
func eqComparator(k int) *circuit.Circuit {
	b := circuit.NewBuilder("eq")
	as := b.Inputs("a", k)
	bs := b.Inputs("b", k)
	xn := make([]int, k)
	for i := 0; i < k; i++ {
		xn[i] = b.Xnor("", as[i], bs[i])
	}
	eq := b.And("eq", xn...)
	b.Output("eq", eq)
	return b.MustBuild()
}

func TestOptimizeEqualityComparator(t *testing.T) {
	c := eqComparator(12)
	u := fault.New(c)
	res, err := Optimize(c, u.Reps, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Conventional test length for a 2^-12 hard fault is ~2.8e4;
	// optimization must cut it by well over an order of magnitude.
	if res.InitialN < 1e4 {
		t.Errorf("InitialN = %v, expected ~3e4 for 12-bit equality", res.InitialN)
	}
	if res.Gain() < 10 {
		t.Errorf("gain = %v (InitialN=%v FinalN=%v), want >= 10",
			res.Gain(), res.InitialN, res.FinalN)
	}
	// The optimum biases every input toward 1 or toward 0 consistently
	// per XNOR pair; per-bit match probability must beat 0.5 clearly.
	for i := 0; i < 12; i++ {
		a, bw := res.Weights[i], res.Weights[12+i]
		match := a*bw + (1-a)*(1-bw)
		if match < 0.6 {
			t.Errorf("bit %d: match probability %v, want > 0.6 (a=%v b=%v)", i, match, a, bw)
		}
	}
}

func TestOptimizeImprovesMonotonically(t *testing.T) {
	c := eqComparator(8)
	u := fault.New(c)
	res, err := Optimize(c, u.Reps, Options{Alpha: 0.001, MaxSweeps: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) < 2 {
		t.Fatalf("history too short: %+v", res.History)
	}
	// The recorded best must never exceed the initial estimate, and
	// history entries carry their sweep indices in order.
	if res.FinalN > res.InitialN {
		t.Errorf("FinalN %v > InitialN %v", res.FinalN, res.InitialN)
	}
	for i, h := range res.History {
		if h.Sweep != i {
			t.Errorf("history[%d].Sweep = %d", i, h.Sweep)
		}
	}
}

func TestOptimizeWeightsWithinClamp(t *testing.T) {
	c := eqComparator(6)
	u := fault.New(c)
	opt := Options{MinWeight: 0.1, MaxWeight: 0.9}
	res, err := Optimize(c, u.Reps, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range res.Weights {
		if w < 0.1-1e-12 || w > 0.9+1e-12 {
			t.Errorf("weight %d = %v outside clamp", i, w)
		}
	}
}

func TestOptimizeQuantize(t *testing.T) {
	c := eqComparator(6)
	u := fault.New(c)
	res, err := Optimize(c, u.Reps, Options{Quantize: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range res.Weights {
		q := math.Round(w/0.05) * 0.05
		if math.Abs(w-q) > 1e-9 {
			t.Errorf("weight %d = %v not on 0.05 grid", i, w)
		}
	}
}

func TestOptimizeInitialWeights(t *testing.T) {
	c := eqComparator(6)
	u := fault.New(c)
	init := make([]float64, c.NumInputs())
	for i := range init {
		init[i] = 0.8
	}
	res, err := Optimize(c, u.Reps, Options{InitialWeights: init, MaxSweeps: 1})
	if err != nil {
		t.Fatal(err)
	}
	// InitialN must reflect the supplied starting vector, which for the
	// equality comparator is already much better than 0.5 everywhere.
	probs := testability.NewAnalyzer(c).DetectProbs(init, u.Reps)
	want := testlen.Normalize(probs, testlen.DefaultConfidence).N
	if math.Abs(res.InitialN-want)/want > 1e-9 {
		t.Errorf("InitialN = %v, want %v (from supplied init)", res.InitialN, want)
	}
}

func TestOptimizeErrors(t *testing.T) {
	c := eqComparator(4)
	u := fault.New(c)
	if _, err := Optimize(c, nil, Options{}); err == nil {
		t.Error("empty fault list accepted")
	}
	if _, err := Optimize(c, u.Reps, Options{MinWeight: 0.9, MaxWeight: 0.1}); err == nil {
		t.Error("inverted clamp accepted")
	}
	if _, err := Optimize(c, u.Reps, Options{InitialWeights: []float64{0.5}}); err == nil {
		t.Error("wrong-length initial weights accepted")
	}
}

// TestMinimizeConvexAgreement: Newton (eq. 15) and plain bisection must
// find the same coordinate minimum — both exploit strict convexity
// (Lemma 3).
func TestMinimizeConvexAgreement(t *testing.T) {
	opt := Options{}.withDefaultsForTest()
	p0 := []float64{0.001, 0.3, 0.0005}
	p1 := []float64{0.2, 0.1, 0.0005}
	n := 500.0
	newton := minimize(p0, p1, n, 0.5, opt)
	optB := opt
	optB.UseBisection = true
	bisect := minimize(p0, p1, n, 0.5, optB)
	if math.Abs(newton-bisect) > 1e-6 {
		t.Errorf("newton=%v bisection=%v", newton, bisect)
	}
	// Verify it is a minimum: g(y*) below neighbors.
	g := func(y float64) float64 {
		s := 0.0
		for k := range p0 {
			s += math.Exp(-n * (p0[k] + y*(p1[k]-p0[k])))
		}
		return s
	}
	for _, d := range []float64{-0.05, 0.05} {
		y := newton + d
		if y >= opt.MinWeight && y <= opt.MaxWeight && g(y) < g(newton)-1e-12 {
			t.Errorf("g(%v)=%v < g(y*=%v)=%v", y, g(y), newton, g(newton))
		}
	}
}

// withDefaultsForTest exposes option defaulting for direct minimize
// tests.
func (o Options) withDefaultsForTest() Options { return o.withDefaults() }

func TestMinimizeBoundaryCases(t *testing.T) {
	opt := Options{}.withDefaultsForTest()
	// All faults get easier as y grows -> minimum at the upper clamp.
	y := minimize([]float64{0.001}, []float64{0.5}, 1000, 0.5, opt)
	if y != opt.MaxWeight {
		t.Errorf("increasing-benefit case: y=%v, want MaxWeight", y)
	}
	// All faults get harder as y grows -> minimum at the lower clamp.
	y = minimize([]float64{0.5}, []float64{0.001}, 1000, 0.5, opt)
	if y != opt.MinWeight {
		t.Errorf("decreasing-benefit case: y=%v, want MinWeight", y)
	}
	// Insensitive coordinate: derivative identically zero -> any point;
	// must return a value in range without dividing by zero.
	y = minimize([]float64{0.1}, []float64{0.1}, 1000, 0.37, opt)
	if y < opt.MinWeight || y > opt.MaxWeight {
		t.Errorf("insensitive case: y=%v out of range", y)
	}
}

// TestMinimizeMatchesExactObjective: on a tree circuit where the
// analyzer is exact, the coordinate minimum found via the affine model
// must match a fine grid search of the true objective.
func TestMinimizeMatchesExactObjective(t *testing.T) {
	c := eqComparator(5)
	u := fault.New(c)
	an := testability.NewAnalyzer(c)
	x := make([]float64, c.NumInputs())
	for i := range x {
		x[i] = 0.5
	}
	probs := an.DetectProbs(x, u.Reps)
	norm := testlen.Normalize(probs, testlen.DefaultConfidence)
	n := norm.N

	// PREPARE for input 0.
	p0 := make([]float64, len(u.Reps))
	p1 := make([]float64, len(u.Reps))
	x[0] = 0
	an.Run(x)
	an.DetectProbsInto(u.Reps, p0)
	x[0] = 1
	an.Run(x)
	an.DetectProbsInto(u.Reps, p1)
	x[0] = 0.5

	opt := Options{}.withDefaultsForTest()
	y := minimize(p0, p1, n, 0.5, opt)

	// Grid search of the true J_N (estimator re-run per point).
	bestY, bestJ := 0.0, math.Inf(1)
	for yy := opt.MinWeight; yy <= opt.MaxWeight+1e-9; yy += 0.002 {
		x[0] = yy
		pr := an.DetectProbs(x, u.Reps)
		j := testlen.Objective(pr, n)
		if j < bestJ {
			bestJ, bestY = j, yy
		}
	}
	if math.Abs(y-bestY) > 0.02 {
		t.Errorf("minimize=%v grid search=%v", y, bestY)
	}
}

// TestOptimizeAgainstExactSmall: end-to-end on a small circuit, the
// optimized weights must reduce the exact (BDD-computed) required test
// length, not merely the estimator's view of it.
func TestOptimizeAgainstExactSmall(t *testing.T) {
	c := eqComparator(7)
	u := fault.New(c)
	res, err := Optimize(c, u.Reps, Options{})
	if err != nil {
		t.Fatal(err)
	}
	half := make([]float64, c.NumInputs())
	for i := range half {
		half[i] = 0.5
	}
	before := prob.ExactDetectProbs(c, u.Reps, half)
	after := prob.ExactDetectProbs(c, u.Reps, res.Weights)
	nBefore := testlen.Normalize(before, testlen.DefaultConfidence).N
	nAfter := testlen.Normalize(after, testlen.DefaultConfidence).N
	if nAfter >= nBefore {
		t.Errorf("exact N: before=%v after=%v — no true improvement", nBefore, nAfter)
	}
	// For eq(7) the optimum is bounded by the opposing XNOR faults
	// (p = (1-q)·q^6 at per-bit match q), which caps the exact gain
	// near 5; require a factor 3 to allow convergence slack.
	if nBefore/nAfter < 3 {
		t.Errorf("exact gain %v, want >= 3", nBefore/nAfter)
	}
}

// TestOptimizeDeterministic: same inputs, same result.
func TestOptimizeDeterministic(t *testing.T) {
	c := eqComparator(6)
	u := fault.New(c)
	a, err := Optimize(c, u.Reps, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Optimize(c, u.Reps, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Weights {
		if a.Weights[i] != b.Weights[i] {
			t.Fatalf("weights differ at %d: %v vs %v", i, a.Weights[i], b.Weights[i])
		}
	}
	if a.FinalN != b.FinalN || a.Sweeps != b.Sweeps {
		t.Errorf("results differ: %+v vs %+v", a, b)
	}
}

// TestOptimizeIncrementalMatchesFull: the incremental-analysis fast
// path must not change the outcome.
func TestOptimizeIncrementalMatchesFull(t *testing.T) {
	c := eqComparator(6)
	u := fault.New(c)
	inc, err := Optimize(c, u.Reps, Options{})
	if err != nil {
		t.Fatal(err)
	}
	full, err := Optimize(c, u.Reps, Options{DisableIncremental: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range inc.Weights {
		if math.Abs(inc.Weights[i]-full.Weights[i]) > 1e-9 {
			t.Fatalf("weights differ at %d: %v vs %v", i, inc.Weights[i], full.Weights[i])
		}
	}
}

// TestOptimizeMixedStructure: a circuit with an equality cone AND an
// inequality cone: the optimizer must balance, not saturate.
func TestOptimizeMixedStructure(t *testing.T) {
	b := circuit.NewBuilder("mixed")
	as := b.Inputs("a", 8)
	bs := b.Inputs("b", 8)
	xn := make([]int, 8)
	xr := make([]int, 8)
	for i := 0; i < 8; i++ {
		xn[i] = b.Xnor("", as[i], bs[i])
		xr[i] = b.Xor("", as[i], bs[i])
	}
	eq := b.And("eq", xn...)
	ne := b.And("ne", xr...) // needs ALL bits to differ: pulls the other way
	b.Output("eq", eq)
	b.Output("ne", ne)
	c := b.MustBuild()
	u := fault.New(c)
	res, err := Optimize(c, u.Reps, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalN > res.InitialN {
		t.Errorf("optimization made things worse: %v -> %v", res.InitialN, res.FinalN)
	}
	// Opposing cones: weights must stay strictly interior.
	for i, w := range res.Weights {
		if w <= 0.02+1e-9 || w >= 0.98-1e-9 {
			t.Errorf("weight %d saturated at %v despite opposing cones", i, w)
		}
	}
}
