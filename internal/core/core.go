// Package core implements the paper's contribution: computing optimized
// input probabilities for random tests (Wunderlich, DAC 1987).
//
// The objective function is
//
//	J_N(X) = Σ_{f∈F} exp(-N·p_f(X))                    (eq. 9/10)
//
// over the tuple X of per-primary-input 1-probabilities. J_N is smooth
// and multi-extremal in general, but strictly convex in each single
// coordinate (Lemma 3), because p_f is affine in each coordinate
// (Lemma 1, Shannon expansion):
//
//	p_f(X,y|i) = p_f(X,0|i) + y·(p_f(X,1|i) − p_f(X,0|i))   (eq. 13)
//
// The optimizer is therefore a coordinate descent (the paper's OPTIMIZE
// procedure): for each input i, PREPARE computes p_f(X,0|i) and
// p_f(X,1|i) for the relevant hard faults, and MINIMIZE finds the unique
// coordinate minimum by a safeguarded Newton iteration (eq. 15). After
// each sweep, ANALYSIS/SORT/NORMALIZE recompute the test length N; the
// loop stops when N no longer improves by the relative threshold α.
package core

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"optirand/internal/circuit"
	"optirand/internal/fault"
	"optirand/internal/testability"
	"optirand/internal/testlen"
)

// Options configures Optimize. The zero value selects the defaults
// documented on each field.
type Options struct {
	// Confidence is the target probability ε that N patterns detect
	// every fault (default 0.999; Q = -ln ε).
	Confidence float64
	// Alpha is the relative improvement threshold of the outer loop:
	// iteration stops when (N_old − N_new) ≤ Alpha·N_old (the paper's
	// user-defined α; default 0.005). Coordinate descent creeps out of
	// near-symmetric regions slowly — per-sweep improvements of a few
	// percent can persist for many sweeps before the big drop — so the
	// default is deliberately small.
	Alpha float64
	// MaxSweeps caps the number of coordinate-descent sweeps
	// (default 30).
	MaxSweeps int
	// MinWeight/MaxWeight clamp every optimized probability into
	// [MinWeight, MaxWeight] (defaults 0.02/0.98). Lemma 2: at the
	// boundary a primary-input stuck-at fault becomes undetectable and
	// J_N diverges, so the true minima are interior; clamping guards
	// the estimator's numerics.
	MinWeight, MaxWeight float64
	// InitialWeights optionally sets the starting vector (default: all
	// 0.5, the conventional random test).
	InitialWeights []float64
	// Quantize, if positive, snaps the final weights to multiples of
	// this grid (the paper's appendix uses 0.05).
	Quantize float64
	// HardFaultFloor is the minimum size of the hard-fault set F̂ used
	// during a sweep (default 32). NORMALIZE returns the numerically
	// relevant count nf; because "the order of the detection
	// probabilities may change during optimization" (paper §4), F̂ is
	// padded to at least this size and to PadFactor·nf.
	HardFaultFloor int
	// PadFactor multiplies nf when selecting F̂ (default 2).
	PadFactor int
	// RedundancyFloor: faults whose estimated detection probability
	// stays at or below this are excluded as suspected redundant
	// (default 1e-18; exact zeros are redundancy proofs, cf. paper §1).
	RedundancyFloor float64
	// NewtonIters caps the per-coordinate iteration count (default 40).
	NewtonIters int
	// Jitter breaks symmetry in the default starting vector: inputs
	// start at 0.5 ± Jitter in a deterministic alternating pattern
	// (default 0.02; set negative to disable). At the exactly
	// equiprobable point, perfectly symmetric structures (an equality
	// comparator's XNOR pairs) make J_N stationary in every single
	// coordinate — changing one input of a pair whose partner sits at
	// 0.5 cannot change any detection probability — and coordinate
	// descent would not move. The paper's industrial netlists are
	// asymmetric enough not to exhibit this; clean synthetic analogues
	// need the nudge. Ignored when InitialWeights is set.
	Jitter float64
	// UseBisection replaces the Newton iteration of eq. 15 with plain
	// bisection on the derivative — the ablation baseline; both find
	// the same unique minimum, Newton in fewer analyses.
	UseBisection bool
	// DisableIncremental turns off the cone-limited incremental
	// signal-probability updates in ANALYSIS (ablation baseline).
	DisableIncremental bool
	// Workers bounds the number of concurrent testability analyses in
	// the PREPARE step. 0 and 1 select the serial path; values < 0
	// select GOMAXPROCS. Note the deliberate difference from the
	// campaign APIs' workers argument (where 0 also selects
	// GOMAXPROCS): like every other Options field, the zero value
	// keeps the paper's default — the serial OPTIMIZE procedure, whose
	// analysis accounting (Result.Analyses, Table 5) the parallel path
	// intentionally improves on. Each coordinate exposes exactly two
	// independent analyses (x_i = 0 and x_i = 1), so effective
	// parallelism caps at 2; coordinate updates themselves are
	// inherently sequential (x_i's optimum feeds x_{i+1}'s PREPARE).
	// Every per-gate probability is a pure function of the weight
	// vector, so the parallel path is bit-identical to the serial one.
	Workers int
}

func (o *Options) withDefaults() Options {
	opt := *o
	if opt.Confidence == 0 {
		opt.Confidence = testlen.DefaultConfidence
	}
	if opt.Alpha == 0 {
		opt.Alpha = 0.005
	}
	if opt.MaxSweeps == 0 {
		opt.MaxSweeps = 30
	}
	if opt.MinWeight == 0 {
		opt.MinWeight = 0.02
	}
	if opt.MaxWeight == 0 {
		opt.MaxWeight = 0.98
	}
	if opt.HardFaultFloor == 0 {
		opt.HardFaultFloor = 32
	}
	if opt.PadFactor == 0 {
		opt.PadFactor = 2
	}
	if opt.RedundancyFloor == 0 {
		opt.RedundancyFloor = 1e-18
	}
	if opt.NewtonIters == 0 {
		opt.NewtonIters = 40
	}
	if opt.Jitter == 0 {
		opt.Jitter = 0.02
	} else if opt.Jitter < 0 {
		opt.Jitter = 0
	}
	return opt
}

// SweepStat records the state after one coordinate-descent sweep.
type SweepStat struct {
	Sweep      int
	N          float64 // required test length after the sweep
	HardFaults int     // nf reported by NORMALIZE
}

// Result reports an optimization run.
type Result struct {
	// Weights is the optimized input-probability tuple X, one entry
	// per primary input.
	Weights []float64
	// InitialN is the required test length at the starting vector
	// (Table 1 of the paper); FinalN at Weights (Table 3).
	InitialN, FinalN float64
	// Sweeps is the number of completed coordinate sweeps.
	Sweeps int
	// History holds per-sweep statistics.
	History []SweepStat
	// SuspectedRedundant counts faults excluded because their estimate
	// never rose above Options.RedundancyFloor.
	SuspectedRedundant int
	// Analyses is the number of testability-analysis passes consumed
	// (the dominant cost; paper §5.1).
	Analyses int
	// Elapsed is the wall-clock optimization time (paper Table 5).
	Elapsed time.Duration
}

// Gain returns InitialN / FinalN, the test-length reduction factor.
func (r *Result) Gain() float64 {
	if r.FinalN == 0 {
		return math.Inf(1)
	}
	return r.InitialN / r.FinalN
}

// Optimize computes optimized input probabilities for the fault list
// faults (typically fault.New(c).Reps) on circuit c. It never modifies
// its inputs.
func Optimize(c *circuit.Circuit, faults []fault.Fault, o Options) (*Result, error) {
	opt := o.withDefaults()
	if len(faults) == 0 {
		return nil, errors.New("core: Optimize: empty fault list")
	}
	if opt.MinWeight <= 0 || opt.MaxWeight >= 1 || opt.MinWeight >= opt.MaxWeight {
		return nil, fmt.Errorf("core: Optimize: invalid weight clamp [%v,%v]", opt.MinWeight, opt.MaxWeight)
	}
	nIn := c.NumInputs()
	x := make([]float64, nIn)
	if opt.InitialWeights != nil {
		if len(opt.InitialWeights) != nIn {
			return nil, fmt.Errorf("core: Optimize: got %d initial weights, want %d", len(opt.InitialWeights), nIn)
		}
		for i, w := range opt.InitialWeights {
			x[i] = clamp(w, opt.MinWeight, opt.MaxWeight)
		}
	} else {
		for i := range x {
			if i%2 == 0 {
				x[i] = 0.5 + opt.Jitter
			} else {
				x[i] = 0.5 - opt.Jitter
			}
		}
	}

	workers := opt.Workers
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	start := time.Now()
	an := testability.NewAnalyzer(c)
	an.SetIncremental(!opt.DisableIncremental)
	var prep *prepPool
	if workers > 1 {
		prep = newPrepPool(c, !opt.DisableIncremental)
	}

	res := &Result{Weights: x}

	// ANALYSIS + SORT + NORMALIZE at the starting vector.
	probs := make([]float64, len(faults))
	an.Run(x)
	an.DetectProbsInto(faults, probs)
	live, dropped := filterDetectable(faults, probs, opt.RedundancyFloor)
	res.SuspectedRedundant = dropped
	if len(live) == 0 {
		return nil, errors.New("core: Optimize: every fault is suspected redundant")
	}
	norm := normalizeFor(an, live, x, opt.Confidence)
	res.InitialN = norm.N
	nCur := norm.N
	res.History = append(res.History, SweepStat{Sweep: 0, N: nCur, HardFaults: norm.HardFaults})

	bestX := append([]float64(nil), x...)
	bestN := nCur

	p0 := make([]float64, 0, 1024)
	p1 := make([]float64, 0, 1024)

	for sweep := 1; sweep <= opt.MaxSweeps; sweep++ {
		// Select the hard-fault subset F̂ for this sweep: the nf
		// hardest under the current probabilities, padded.
		hard := selectHard(an, live, x, norm.HardFaults, opt)

		for i := 0; i < nIn; i++ {
			p0 = grow(p0, len(hard))
			p1 = grow(p1, len(hard))
			if prep != nil {
				// PREPARE, parallel: the two single-coordinate
				// analyses run concurrently on dedicated analyzers.
				prep.prepare(x, i, hard, p0, p1)
			} else {
				// PREPARE: three single-coordinate analyses (paper §5.1).
				xi := x[i]
				an.Run(x) // restore current X (single-coordinate delta)
				x[i] = 0
				an.Run(x)
				an.DetectProbsInto(hard, p0)
				x[i] = 1
				an.Run(x)
				an.DetectProbsInto(hard, p1)
				x[i] = xi
			}

			// MINIMIZE: unique minimum of the coordinate objective.
			y := minimize(p0, p1, nCur, x[i], opt)
			x[i] = y
		}

		// ANALYSIS + SORT + NORMALIZE after the sweep.
		nOld := nCur
		norm = normalizeFor(an, live, x, opt.Confidence)
		nCur = norm.N
		res.Sweeps = sweep
		res.History = append(res.History, SweepStat{Sweep: sweep, N: nCur, HardFaults: norm.HardFaults})
		if nCur < bestN {
			bestN = nCur
			copy(bestX, x)
		}
		if nOld-nCur <= opt.Alpha*nOld {
			break
		}
	}

	copy(x, bestX)
	nCur = bestN
	if opt.Quantize > 0 {
		quantize(x, opt.Quantize, opt.MinWeight, opt.MaxWeight)
		norm = normalizeFor(an, live, x, opt.Confidence)
		nCur = norm.N
	}
	res.Weights = x
	res.FinalN = nCur
	res.Analyses = an.Analyses()
	if prep != nil {
		res.Analyses += prep.analyses()
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// prepPool runs the two cofactor analyses of PREPARE concurrently: for
// coordinate i it evaluates the detection probabilities of the hard
// faults at X with x_i = 0 and at X with x_i = 1 on two dedicated
// analyzers. Each analyzer sees a two-coordinate change between
// consecutive coordinates (x_{i-1} restored, x_i forced), so it
// recomputes in full — but one full pass per cofactor replaces the
// serial path's three analysis passes, and the two cofactors overlap.
// Signal probabilities and observabilities are pure per-gate functions
// of the weight vector, so p0/p1 — and hence the optimized weights —
// are bit-identical to the serial path's.
type prepPool struct {
	an  [2]*testability.Analyzer
	buf [2][]float64 // per-worker weight-vector scratch
}

func newPrepPool(c *circuit.Circuit, incremental bool) *prepPool {
	p := &prepPool{}
	for k := 0; k < 2; k++ {
		p.an[k] = testability.NewAnalyzer(c)
		p.an[k].SetIncremental(incremental)
		p.buf[k] = make([]float64, c.NumInputs())
	}
	return p
}

// prepare fills p0 and p1 with the hard faults' detection probabilities
// at the two cofactors of coordinate i. x itself is only read.
func (p *prepPool) prepare(x []float64, i int, hard []fault.Fault, p0, p1 []float64) {
	var wg sync.WaitGroup
	for k := 0; k < 2; k++ {
		k := k
		out := p0
		if k == 1 {
			out = p1
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			xb := p.buf[k]
			copy(xb, x)
			xb[i] = float64(k)
			p.an[k].Run(xb)
			p.an[k].DetectProbsInto(hard, out)
		}()
	}
	wg.Wait()
}

// analyses reports the analysis passes consumed by the pool.
func (p *prepPool) analyses() int {
	return p.an[0].Analyses() + p.an[1].Analyses()
}

// normalizeFor runs ANALYSIS at x and NORMALIZE over the live faults.
func normalizeFor(an *testability.Analyzer, live []fault.Fault, x []float64, confidence float64) testlen.Result {
	probs := make([]float64, len(live))
	an.Run(x)
	an.DetectProbsInto(live, probs)
	return testlen.Normalize(probs, confidence)
}

// selectHard returns the nf hardest faults under the current weights,
// padded per the options ("the order of the detection probabilities may
// change during optimization", paper §4).
func selectHard(an *testability.Analyzer, live []fault.Fault, x []float64, nf int, opt Options) []fault.Fault {
	n := nf * opt.PadFactor
	if n < opt.HardFaultFloor {
		n = opt.HardFaultFloor
	}
	if n > len(live) {
		n = len(live)
	}
	probs := make([]float64, len(live))
	an.Run(x)
	an.DetectProbsInto(live, probs)
	_, idx := testlen.SortWithIndex(probs)
	hard := make([]fault.Fault, n)
	for k := 0; k < n; k++ {
		hard[k] = live[idx[k]]
	}
	return hard
}

// filterDetectable drops faults whose estimate is at or below floor.
func filterDetectable(faults []fault.Fault, probs []float64, floor float64) ([]fault.Fault, int) {
	live := make([]fault.Fault, 0, len(faults))
	dropped := 0
	for i, f := range faults {
		if probs[i] > floor {
			live = append(live, f)
		} else {
			dropped++
		}
	}
	return live, dropped
}

// minimize finds the unique minimizer of
//
//	g(y) = Σ_k exp(-N·(a_k + y·b_k)),  a_k = p0[k], b_k = p1[k]-p0[k]
//
// over [opt.MinWeight, opt.MaxWeight]. g is strictly convex (Lemma 3),
// so g' is increasing; a safeguarded Newton iteration (eq. 15) with a
// bisection bracket always converges. y0 seeds the iteration.
func minimize(p0, p1 []float64, n, y0 float64, opt Options) float64 {
	lo, hi := opt.MinWeight, opt.MaxWeight

	// derivs returns g'(y) and g''(y).
	derivs := func(y float64) (d1, d2 float64) {
		for k := range p0 {
			b := p1[k] - p0[k]
			if b == 0 {
				continue
			}
			e := math.Exp(-n * (p0[k] + y*b))
			d1 += -n * b * e
			d2 += n * n * b * b * e
		}
		return d1, d2
	}

	dLo, _ := derivs(lo)
	if dLo >= 0 {
		return lo // g increasing on the whole interval
	}
	dHi, _ := derivs(hi)
	if dHi <= 0 {
		return hi // g decreasing on the whole interval
	}

	y := clamp(y0, lo, hi)
	for iter := 0; iter < opt.NewtonIters; iter++ {
		d1, d2 := derivs(y)
		if d1 < 0 {
			lo = y
		} else if d1 > 0 {
			hi = y
		} else {
			return y
		}
		var next float64
		if !opt.UseBisection && d2 > 0 {
			next = y - d1/d2 // eq. (15)
			if next <= lo || next >= hi {
				next = (lo + hi) / 2 // safeguard: keep the bracket
			}
		} else {
			next = (lo + hi) / 2
		}
		if math.Abs(next-y) < 1e-9 {
			return next
		}
		y = next
	}
	return y
}

func quantize(x []float64, grid, lo, hi float64) {
	for i, v := range x {
		q := math.Round(v/grid) * grid
		if q < grid {
			q = grid
		}
		if q > 1-grid {
			q = 1 - grid
		}
		x[i] = clamp(q, lo, hi)
	}
}

// grow returns s resized to n entries, reallocating when the capacity
// is insufficient (contents need not survive).
func grow(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
