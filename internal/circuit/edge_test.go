package circuit

import "testing"

func TestBuilderConvenienceGates(t *testing.T) {
	b := NewBuilder("conv")
	a := b.Input("a")
	x := b.Input("b")
	z := b.Const0("zero")
	o := b.Const1("one")
	bf := b.Buf("bf", a)
	nd := b.Nand("nd", a, x)
	nr := b.Nor("nr", a, x)
	xn := b.Xnor("xn", a, x)
	big := b.Or("big", z, o, bf, nd, nr, xn)
	b.Output("o", big)
	if b.Err() != nil {
		t.Fatalf("unexpected builder error: %v", b.Err())
	}
	if b.NumGates() != 9 {
		t.Errorf("NumGates = %d, want 9", b.NumGates())
	}
	if got := b.Gate("nd"); got != nd {
		t.Errorf("Gate(nd) = %d, want %d", got, nd)
	}
	if got := b.Gate("ghost"); got != -1 {
		t.Errorf("Gate(ghost) = %d, want -1", got)
	}
	c := b.MustBuild()
	// Semantics of each convenience gate.
	for v := 0; v < 4; v++ {
		av, xv := v&1 == 1, v&2 == 2
		val := c.Eval([]bool{av, xv})
		if val[z] != false || val[o] != true {
			t.Fatal("constants wrong")
		}
		if val[bf] != av {
			t.Errorf("BUF(%v) = %v", av, val[bf])
		}
		if val[nd] != !(av && xv) {
			t.Errorf("NAND(%v,%v) = %v", av, xv, val[nd])
		}
		if val[nr] != !(av || xv) {
			t.Errorf("NOR(%v,%v) = %v", av, xv, val[nr])
		}
		if val[xn] != (av == xv) {
			t.Errorf("XNOR(%v,%v) = %v", av, xv, val[xn])
		}
	}
}

func TestMustBuildPanicsOnError(t *testing.T) {
	b := NewBuilder("bad")
	b.Input("a")
	defer func() {
		if recover() == nil {
			t.Error("MustBuild did not panic on invalid circuit")
		}
	}()
	b.MustBuild() // no outputs
}

func TestInvertingAndFaninLimits(t *testing.T) {
	inverting := map[GateType]bool{
		Not: true, Nand: true, Nor: true, Xnor: true,
		And: false, Or: false, Xor: false, Buf: false,
		Input: false, Const0: false, Const1: false,
	}
	for ty, want := range inverting {
		if got := ty.Inverting(); got != want {
			t.Errorf("%v.Inverting() = %v, want %v", ty, got, want)
		}
	}
	if Input.MaxFanin() != 0 || Not.MaxFanin() != 1 || And.MaxFanin() != -1 {
		t.Error("MaxFanin values wrong")
	}
	if got := GateType(99).String(); got != "GateType(99)" {
		t.Errorf("unknown type String = %q", got)
	}
}

func TestIsOutputAndNumLines(t *testing.T) {
	b := NewBuilder("io")
	a := b.Input("a")
	x := b.Input("b")
	g := b.And("g", a, x)
	b.Output("g", g)
	c := b.MustBuild()
	if !c.IsOutput(g) {
		t.Error("IsOutput(g) = false")
	}
	if c.IsOutput(a) {
		t.Error("IsOutput(a) = true")
	}
	// 3 stems + 2 input pins.
	if got := c.NumLines(); got != 5 {
		t.Errorf("NumLines = %d, want 5", got)
	}
}

func TestNewConstructor(t *testing.T) {
	// Forward references: gate 0 reads gate 2 (legal for New).
	gates := []Gate{
		{Name: "o", Type: Not, Fanin: []int{2}},
		{Name: "a", Type: Input},
		{Name: "m", Type: Buf, Fanin: []int{1}},
	}
	c, err := New("fwd", gates, []int{1}, []int{0})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	out := c.EvalOutputs([]bool{true})
	if out[0] != false {
		t.Errorf("NOT(BUF(1)) = %v", out[0])
	}

	// Error paths.
	if _, err := New("badout", gates, []int{1}, []int{9}); err == nil {
		t.Error("out-of-range output accepted")
	}
	if _, err := New("badin", gates, []int{9}, []int{0}); err == nil {
		t.Error("out-of-range input accepted")
	}
	if _, err := New("notinput", gates, []int{2}, []int{0}); err == nil {
		t.Error("non-INPUT gate accepted as input")
	}
	dup := []Gate{{Name: "a", Type: Input}}
	if _, err := New("dupin", dup, []int{0, 0}, []int{0}); err == nil {
		t.Error("duplicate input accepted")
	}
	orphan := []Gate{{Name: "a", Type: Input}, {Name: "b", Type: Input}}
	if _, err := New("orphan", orphan, []int{0}, []int{1}); err == nil {
		t.Error("INPUT gate missing from Inputs accepted")
	}
	badFanin := []Gate{{Name: "a", Type: Input}, {Name: "g", Type: Not, Fanin: []int{7}}}
	if _, err := New("badfanin", badFanin, []int{0}, []int{1}); err == nil {
		t.Error("dangling fanin accepted")
	}
	badType := []Gate{{Name: "a", Type: Input}, {Name: "g", Type: GateType(77), Fanin: []int{0}}}
	if _, err := New("badtype", badType, []int{0}, []int{1}); err == nil {
		t.Error("invalid gate type accepted")
	}
}

func TestEvalPanics(t *testing.T) {
	b := NewBuilder("p")
	a := b.Input("a")
	b.Output("o", b.Not("n", a))
	c := b.MustBuild()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Eval with wrong input count did not panic")
			}
		}()
		c.Eval([]bool{true, false})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("EvalGate(Input) did not panic")
			}
		}()
		EvalGate(Input, nil)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("EvalGate(invalid) did not panic")
			}
		}()
		EvalGate(GateType(88), []bool{true})
	}()
}

func TestOutputNamingConflict(t *testing.T) {
	b := NewBuilder("oc")
	a := b.Input("a")
	g := b.Add(And, "", a, a) // anonymous
	b.Output("a", g)          // name already taken by the input
	if _, err := b.Build(); err == nil {
		t.Error("output name collision accepted")
	}
}

func TestOutputOfExistingNamedGate(t *testing.T) {
	b := NewBuilder("named")
	a := b.Input("a")
	g := b.Not("inv", a)
	b.Output("out", g) // gate already named "inv": name is kept
	c := b.MustBuild()
	if c.GateName(g) != "inv" {
		t.Errorf("GateName = %q, want inv", c.GateName(g))
	}
}
