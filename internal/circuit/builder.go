package circuit

import "fmt"

// Builder constructs circuits incrementally. Gate methods return the
// index of the created gate so netlists read naturally:
//
//	b := circuit.NewBuilder("half-adder")
//	a, x := b.Input("a"), b.Input("b")
//	sum := b.Xor("sum", a, x)
//	b.Output("sum", sum)
//	c, err := b.Build()
//
// Fanins must refer to gates already created, which keeps the network
// acyclic by construction. Builder is not safe for concurrent use.
type Builder struct {
	c     *Circuit
	err   error
	names map[string]int
}

// NewBuilder returns an empty builder for a circuit with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{
		c:     &Circuit{Name: name},
		names: make(map[string]int),
	}
}

// Err returns the first construction error, if any.
func (b *Builder) Err() error { return b.err }

// NumGates returns the number of gates added so far.
func (b *Builder) NumGates() int { return len(b.c.Gates) }

func (b *Builder) fail(format string, args ...any) int {
	if b.err == nil {
		b.err = fmt.Errorf("builder %s: %s", b.c.Name, fmt.Sprintf(format, args...))
	}
	return -1
}

// Add appends a gate of the given type. Name may be empty; if non-empty
// it must be unique. Returns the gate index, or -1 after an error.
func (b *Builder) Add(t GateType, name string, fanin ...int) int {
	if b.err != nil {
		return -1
	}
	if name != "" {
		if prev, dup := b.names[name]; dup {
			return b.fail("duplicate gate name %q (gate %d)", name, prev)
		}
	}
	if min := t.MinFanin(); len(fanin) < min {
		return b.fail("gate %q: %s needs at least %d fanins, got %d", name, t, min, len(fanin))
	}
	if max := t.MaxFanin(); max >= 0 && len(fanin) > max {
		return b.fail("gate %q: %s allows at most %d fanins, got %d", name, t, max, len(fanin))
	}
	id := len(b.c.Gates)
	for _, f := range fanin {
		if f < 0 || f >= id {
			return b.fail("gate %q: fanin %d does not exist yet", name, f)
		}
	}
	cp := make([]int, len(fanin))
	copy(cp, fanin)
	b.c.Gates = append(b.c.Gates, Gate{Name: name, Type: t, Fanin: cp})
	if name != "" {
		b.names[name] = id
	}
	if t == Input {
		b.c.Inputs = append(b.c.Inputs, id)
	}
	return id
}

// Input adds a primary input gate.
func (b *Builder) Input(name string) int { return b.Add(Input, name) }

// Inputs adds n primary inputs named prefix0..prefix(n-1) and returns
// their indices.
func (b *Builder) Inputs(prefix string, n int) []int {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = b.Input(fmt.Sprintf("%s%d", prefix, i))
	}
	return ids
}

// Const0 adds a constant-false gate.
func (b *Builder) Const0(name string) int { return b.Add(Const0, name) }

// Const1 adds a constant-true gate.
func (b *Builder) Const1(name string) int { return b.Add(Const1, name) }

// Buf adds an identity gate.
func (b *Builder) Buf(name string, in int) int { return b.Add(Buf, name, in) }

// Not adds an inverter.
func (b *Builder) Not(name string, in int) int { return b.Add(Not, name, in) }

// And adds an n-ary AND gate.
func (b *Builder) And(name string, in ...int) int { return b.Add(And, name, in...) }

// Nand adds an n-ary NAND gate.
func (b *Builder) Nand(name string, in ...int) int { return b.Add(Nand, name, in...) }

// Or adds an n-ary OR gate.
func (b *Builder) Or(name string, in ...int) int { return b.Add(Or, name, in...) }

// Nor adds an n-ary NOR gate.
func (b *Builder) Nor(name string, in ...int) int { return b.Add(Nor, name, in...) }

// Xor adds an n-ary XOR (parity) gate.
func (b *Builder) Xor(name string, in ...int) int { return b.Add(Xor, name, in...) }

// Xnor adds an n-ary XNOR gate.
func (b *Builder) Xnor(name string, in ...int) int { return b.Add(Xnor, name, in...) }

// Output marks gate g as a primary output. The name is stored on the
// gate if the gate is unnamed; outputs may share gates.
func (b *Builder) Output(name string, g int) {
	if b.err != nil {
		return
	}
	if g < 0 || g >= len(b.c.Gates) {
		b.fail("output %q: gate %d does not exist", name, g)
		return
	}
	if name != "" && b.c.Gates[g].Name == "" {
		if prev, dup := b.names[name]; dup {
			b.fail("output %q: name already used by gate %d", name, prev)
			return
		}
		b.c.Gates[g].Name = name
		b.names[name] = g
	}
	b.c.Outputs = append(b.c.Outputs, g)
}

// Gate returns the index of the named gate, or -1 if absent.
func (b *Builder) Gate(name string) int {
	if id, ok := b.names[name]; ok {
		return id
	}
	return -1
}

// Build finalizes the circuit: derives fanout, levels and topological
// order, and validates the structure. The builder must not be used
// afterwards.
func (b *Builder) Build() (*Circuit, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.c.Inputs) == 0 {
		return nil, fmt.Errorf("builder %s: circuit has no primary inputs", b.c.Name)
	}
	if len(b.c.Outputs) == 0 {
		return nil, fmt.Errorf("builder %s: circuit has no primary outputs", b.c.Name)
	}
	if err := b.c.finish(); err != nil {
		return nil, err
	}
	c := b.c
	b.c = nil
	return c, nil
}

// MustBuild is Build, panicking on error. Intended for the built-in
// generators whose structure is fixed at compile time.
func (b *Builder) MustBuild() *Circuit {
	c, err := b.Build()
	if err != nil {
		panic(err)
	}
	return c
}
