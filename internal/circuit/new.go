package circuit

// New assembles a circuit from raw parts, validating structure, deriving
// fanout, levels and topological order. Unlike Builder, it accepts gates
// in any order (fanins may refer forward), which the bench parser needs.
// The slices are owned by the circuit afterwards.
func New(name string, gates []Gate, inputs, outputs []int) (*Circuit, error) {
	c := &Circuit{Name: name, Gates: gates, Inputs: inputs, Outputs: outputs}
	if err := c.finish(); err != nil {
		return nil, err
	}
	return c, nil
}
