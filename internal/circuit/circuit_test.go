package circuit

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func buildHalfAdder(t *testing.T) *Circuit {
	t.Helper()
	b := NewBuilder("half-adder")
	a := b.Input("a")
	x := b.Input("b")
	sum := b.Xor("sum", a, x)
	carry := b.And("carry", a, x)
	b.Output("sum", sum)
	b.Output("carry", carry)
	c, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return c
}

func TestBuilderHalfAdder(t *testing.T) {
	c := buildHalfAdder(t)
	if got, want := c.NumGates(), 4; got != want {
		t.Errorf("NumGates = %d, want %d", got, want)
	}
	if got, want := c.NumInputs(), 2; got != want {
		t.Errorf("NumInputs = %d, want %d", got, want)
	}
	if got, want := c.NumOutputs(), 2; got != want {
		t.Errorf("NumOutputs = %d, want %d", got, want)
	}
	for a := 0; a < 2; a++ {
		for x := 0; x < 2; x++ {
			out := c.EvalOutputs([]bool{a == 1, x == 1})
			if out[0] != (a != x) {
				t.Errorf("sum(%d,%d) = %v", a, x, out[0])
			}
			if out[1] != (a == 1 && x == 1) {
				t.Errorf("carry(%d,%d) = %v", a, x, out[1])
			}
		}
	}
}

func TestBuilderErrors(t *testing.T) {
	t.Run("duplicate name", func(t *testing.T) {
		b := NewBuilder("dup")
		b.Input("a")
		b.Input("a")
		if _, err := b.Build(); err == nil {
			t.Error("Build accepted duplicate gate name")
		}
	})
	t.Run("bad fanin", func(t *testing.T) {
		b := NewBuilder("bad")
		a := b.Input("a")
		b.And("g", a, 99)
		if _, err := b.Build(); err == nil {
			t.Error("Build accepted dangling fanin")
		}
	})
	t.Run("too few fanins", func(t *testing.T) {
		b := NewBuilder("few")
		a := b.Input("a")
		b.And("g", a)
		if _, err := b.Build(); err == nil {
			t.Error("Build accepted 1-input AND")
		}
	})
	t.Run("no outputs", func(t *testing.T) {
		b := NewBuilder("noout")
		b.Input("a")
		if _, err := b.Build(); err == nil {
			t.Error("Build accepted circuit without outputs")
		}
	})
	t.Run("no inputs", func(t *testing.T) {
		b := NewBuilder("noin")
		g := b.Const1("one")
		b.Output("o", g)
		if _, err := b.Build(); err == nil {
			t.Error("Build accepted circuit without inputs")
		}
	})
	t.Run("not after first error", func(t *testing.T) {
		b := NewBuilder("chain")
		a := b.Input("a")
		bad := b.And("g", a) // error: too few fanins
		if bad != -1 {
			t.Errorf("And after error = %d, want -1", bad)
		}
		if next := b.Not("h", a); next != -1 {
			t.Errorf("gate added after error = %d, want -1", next)
		}
	})
}

func TestGateTypeString(t *testing.T) {
	cases := map[GateType]string{
		Input: "INPUT", And: "AND", Nand: "NAND", Or: "OR", Nor: "NOR",
		Xor: "XOR", Xnor: "XNOR", Not: "NOT", Buf: "BUF",
		Const0: "CONST0", Const1: "CONST1",
	}
	for ty, want := range cases {
		if got := ty.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", ty, got, want)
		}
	}
	if GateType(200).Valid() {
		t.Error("GateType(200).Valid() = true")
	}
}

func TestLevelsAndOrder(t *testing.T) {
	b := NewBuilder("chain")
	a := b.Input("a")
	n1 := b.Not("n1", a)
	n2 := b.Not("n2", n1)
	n3 := b.Not("n3", n2)
	b.Output("o", n3)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	wantLevels := []int{0, 1, 2, 3}
	for g, want := range wantLevels {
		if got := c.Level(g); got != want {
			t.Errorf("Level(%d) = %d, want %d", g, got, want)
		}
	}
	if got, want := c.Depth(), 3; got != want {
		t.Errorf("Depth = %d, want %d", got, want)
	}
	// Topological order: each gate after all its fanins.
	pos := make([]int, c.NumGates())
	for i, g := range c.TopoOrder() {
		pos[g] = i
	}
	for g := range c.Gates {
		for _, f := range c.Gates[g].Fanin {
			if pos[f] >= pos[g] {
				t.Errorf("gate %d precedes its fanin %d in TopoOrder", g, f)
			}
		}
	}
}

func TestFanoutAndCones(t *testing.T) {
	b := NewBuilder("recon")
	a := b.Input("a")
	x := b.Input("b")
	n := b.Not("n", a)
	g1 := b.And("g1", n, x)
	g2 := b.Or("g2", n, x)
	o := b.Xor("o", g1, g2)
	b.Output("o", o)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := c.FanoutCount(n); got != 2 {
		t.Errorf("FanoutCount(n) = %d, want 2", got)
	}
	fo := c.Fanout(n)
	if len(fo) != 2 || fo[0].Gate != g1 || fo[1].Gate != g2 {
		t.Errorf("Fanout(n) = %v", fo)
	}
	cone := c.ForwardCone(n)
	want := []int{n, g1, g2, o}
	if len(cone) != len(want) {
		t.Fatalf("ForwardCone(n) = %v, want %v", cone, want)
	}
	for i := range want {
		if cone[i] != want[i] {
			t.Fatalf("ForwardCone(n) = %v, want %v", cone, want)
		}
	}
	back := c.BackwardCone(o)
	if len(back) != 6 {
		t.Errorf("BackwardCone(o) = %v, want all 6 gates", back)
	}
	sup := c.SupportInputs(g1)
	if len(sup) != 2 || sup[0] != 0 || sup[1] != 1 {
		t.Errorf("SupportInputs(g1) = %v, want [0 1]", sup)
	}
	if got := c.InputIndex(a); got != 0 {
		t.Errorf("InputIndex(a) = %d, want 0", got)
	}
	if got := c.InputIndex(o); got != -1 {
		t.Errorf("InputIndex(o) = %d, want -1", got)
	}
}

func TestStats(t *testing.T) {
	c := buildHalfAdder(t)
	s := c.Stats()
	if s.Gates != 4 || s.Inputs != 2 || s.Outputs != 2 {
		t.Errorf("Stats = %+v", s)
	}
	if s.ByType["XOR"] != 1 || s.ByType["AND"] != 1 || s.ByType["INPUT"] != 2 {
		t.Errorf("ByType = %v", s.ByType)
	}
	if s.Lines != 4+4 {
		t.Errorf("Lines = %d, want 8", s.Lines)
	}
	if s.FanoutMax != 2 { // each input feeds XOR and AND
		t.Errorf("FanoutMax = %d, want 2", s.FanoutMax)
	}
	if s.Reconverge != 2 {
		t.Errorf("Reconverge = %d, want 2", s.Reconverge)
	}
}

// TestEvalGateProperties checks algebraic identities of the gate
// evaluator with random fanin vectors.
func TestEvalGateProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	randIn := func() []bool {
		in := make([]bool, 2+rng.Intn(5))
		for i := range in {
			in[i] = rng.Intn(2) == 1
		}
		return in
	}
	for trial := 0; trial < 200; trial++ {
		in := randIn()
		if EvalGate(Nand, in) != !EvalGate(And, in) {
			t.Fatalf("NAND != !AND on %v", in)
		}
		if EvalGate(Nor, in) != !EvalGate(Or, in) {
			t.Fatalf("NOR != !OR on %v", in)
		}
		if EvalGate(Xnor, in) != !EvalGate(Xor, in) {
			t.Fatalf("XNOR != !XOR on %v", in)
		}
		// De Morgan: AND(in) == !OR(!in)
		neg := make([]bool, len(in))
		for i := range in {
			neg[i] = !in[i]
		}
		if EvalGate(And, in) != !EvalGate(Or, neg) {
			t.Fatalf("De Morgan violated on %v", in)
		}
		// XOR == parity
		par := false
		for _, v := range in {
			if v {
				par = !par
			}
		}
		if EvalGate(Xor, in) != par {
			t.Fatalf("XOR != parity on %v", in)
		}
	}
}

// TestEvalXorChainProperty: an XOR chain equals an n-ary XOR gate.
func TestEvalXorChainProperty(t *testing.T) {
	f := func(bits []bool) bool {
		if len(bits) < 2 {
			return true
		}
		bld := NewBuilder("xorchain")
		ins := make([]int, len(bits))
		for i := range bits {
			ins[i] = bld.Inputs("x"+string(rune('a'+i)), 1)[0]
		}
		wide := bld.Xor("wide", ins...)
		acc := ins[0]
		for i := 1; i < len(ins); i++ {
			acc = bld.Add(Xor, "", acc, ins[i])
		}
		bld.Output("wide", wide)
		bld.Output("chain", acc)
		c, err := bld.Build()
		if err != nil {
			return false
		}
		out := c.EvalOutputs(bits)
		return out[0] == out[1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCycleDetection(t *testing.T) {
	// Build a cyclic structure directly (bypassing the Builder, which
	// prevents cycles by construction) and check finish rejects it.
	c := &Circuit{
		Name: "cyclic",
		Gates: []Gate{
			{Name: "a", Type: Input},
			{Name: "g1", Type: And, Fanin: []int{0, 2}},
			{Name: "g2", Type: Buf, Fanin: []int{1}},
		},
		Inputs:  []int{0},
		Outputs: []int{2},
	}
	if err := c.finish(); err == nil {
		t.Error("finish accepted a cyclic circuit")
	}
}

func TestGateNameFallback(t *testing.T) {
	b := NewBuilder("anon")
	a := b.Input("a")
	x := b.Input("b")
	g := b.Add(And, "", a, x)
	b.Output("o", g)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Output naming assigned the name "o" to the anonymous AND gate.
	if got := c.GateName(g); got != "o" {
		t.Errorf("GateName = %q, want %q", got, "o")
	}
	if got := c.FindGate("o"); got != g {
		t.Errorf("FindGate(o) = %d, want %d", got, g)
	}
	if got := c.FindGate("zzz"); got != -1 {
		t.Errorf("FindGate(zzz) = %d, want -1", got)
	}
}

// TestFingerprint pins the compile-cache key's contract: structure
// determines the fingerprint, names do not, and any structural edit —
// gate type, wiring, output list — changes it.
func TestFingerprint(t *testing.T) {
	build := func(name, gateName string, tp GateType, output bool) *Circuit {
		b := NewBuilder(name)
		ins := b.Inputs("x", 2)
		g := b.Add(tp, gateName, ins[0], ins[1])
		b.Output("y", g)
		if output {
			b.Output("z", ins[0])
		}
		return b.MustBuild()
	}
	base := build("a", "g", And, false)
	if got := build("b", "renamed", And, false).Fingerprint(); got != base.Fingerprint() {
		t.Error("renaming circuit and gates changed the fingerprint")
	}
	if got := build("a", "g", Nand, false).Fingerprint(); got == base.Fingerprint() {
		t.Error("changing a gate type kept the fingerprint")
	}
	if got := build("a", "g", And, true).Fingerprint(); got == base.Fingerprint() {
		t.Error("adding an output kept the fingerprint")
	}
	if base.Fingerprint() != base.Fingerprint() {
		t.Error("fingerprint not stable across calls")
	}
}
