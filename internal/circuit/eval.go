package circuit

import "fmt"

// EvalGate computes the boolean function of a gate type over the given
// fanin values. It is the reference semantics; the word-parallel
// simulator in internal/sim must agree with it bit for bit.
func EvalGate(t GateType, in []bool) bool {
	switch t {
	case Buf:
		return in[0]
	case Not:
		return !in[0]
	case And, Nand:
		v := true
		for _, x := range in {
			v = v && x
		}
		if t == Nand {
			return !v
		}
		return v
	case Or, Nor:
		v := false
		for _, x := range in {
			v = v || x
		}
		if t == Nor {
			return !v
		}
		return v
	case Xor, Xnor:
		v := false
		for _, x := range in {
			v = v != x
		}
		if t == Xnor {
			return !v
		}
		return v
	case Const0:
		return false
	case Const1:
		return true
	case Input:
		panic("circuit: EvalGate called on INPUT")
	}
	panic(fmt.Sprintf("circuit: EvalGate: unknown gate type %d", t))
}

// Eval computes all gate values for one input assignment, in topological
// order. inputs[i] drives Inputs[i]. The returned slice is indexed by
// gate. This scalar evaluator is the semantic reference for tests and
// exact analyses; performance-critical paths use internal/sim.
func (c *Circuit) Eval(inputs []bool) []bool {
	if len(inputs) != len(c.Inputs) {
		panic(fmt.Sprintf("circuit %s: Eval: got %d inputs, want %d", c.Name, len(inputs), len(c.Inputs)))
	}
	val := make([]bool, len(c.Gates))
	for pos, g := range c.Inputs {
		val[g] = inputs[pos]
	}
	scratch := make([]bool, 0, 8)
	for _, g := range c.order {
		gate := &c.Gates[g]
		if gate.Type == Input {
			continue
		}
		scratch = scratch[:0]
		for _, f := range gate.Fanin {
			scratch = append(scratch, val[f])
		}
		val[g] = EvalGate(gate.Type, scratch)
	}
	return val
}

// EvalOutputs evaluates the circuit and returns just the primary output
// values, in Outputs order.
func (c *Circuit) EvalOutputs(inputs []bool) []bool {
	val := c.Eval(inputs)
	out := make([]bool, len(c.Outputs))
	for i, g := range c.Outputs {
		out[i] = val[g]
	}
	return out
}
