// Package circuit models gate-level combinational networks.
//
// A Circuit is a directed acyclic graph of gates. Primary inputs are
// gates of type Input; primary outputs are designated gate outputs.
// Gates may have arbitrary fanin (XOR/XNOR are n-ary parity functions).
// The package provides construction (Builder), structural queries
// (levels, fanout, cones), and validation. It deliberately knows nothing
// about faults, probabilities or simulation; those live in sibling
// packages layered on top.
package circuit

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"
)

// GateType enumerates the supported combinational gate functions.
type GateType uint8

const (
	// Input marks a primary input; it has no fanin.
	Input GateType = iota
	// Buf is the identity function of one fanin.
	Buf
	// Not is the complement of one fanin.
	Not
	// And is the n-ary conjunction.
	And
	// Nand is the complemented n-ary conjunction.
	Nand
	// Or is the n-ary disjunction.
	Or
	// Nor is the complemented n-ary disjunction.
	Nor
	// Xor is the n-ary parity (odd number of ones).
	Xor
	// Xnor is the complemented n-ary parity.
	Xnor
	// Const0 is the constant false; it has no fanin.
	Const0
	// Const1 is the constant true; it has no fanin.
	Const1
	numGateTypes
)

var gateTypeNames = [numGateTypes]string{
	Input: "INPUT", Buf: "BUF", Not: "NOT",
	And: "AND", Nand: "NAND", Or: "OR", Nor: "NOR",
	Xor: "XOR", Xnor: "XNOR", Const0: "CONST0", Const1: "CONST1",
}

// String returns the conventional upper-case name of the gate type.
func (t GateType) String() string {
	if int(t) < len(gateTypeNames) {
		return gateTypeNames[t]
	}
	return fmt.Sprintf("GateType(%d)", uint8(t))
}

// Valid reports whether t is one of the defined gate types.
func (t GateType) Valid() bool { return t < numGateTypes }

// MinFanin returns the minimum legal number of fanins for the type.
func (t GateType) MinFanin() int {
	switch t {
	case Input, Const0, Const1:
		return 0
	case Buf, Not:
		return 1
	default:
		return 2
	}
}

// MaxFanin returns the maximum legal number of fanins for the type
// (-1 means unbounded).
func (t GateType) MaxFanin() int {
	switch t {
	case Input, Const0, Const1:
		return 0
	case Buf, Not:
		return 1
	default:
		return -1
	}
}

// Inverting reports whether the gate complements its base function
// (NAND, NOR, XNOR, NOT).
func (t GateType) Inverting() bool {
	switch t {
	case Not, Nand, Nor, Xnor:
		return true
	}
	return false
}

// Gate is a single node of the network. Fanin holds the indices of the
// driving gates in Circuit.Gates, in pin order.
type Gate struct {
	Name  string
	Type  GateType
	Fanin []int
}

// Pin identifies a fanout connection: gate Gate reads the signal on its
// input pin Pin.
type Pin struct {
	Gate int
	Pin  int
}

// Circuit is an immutable combinational network. Construct one with a
// Builder or the bench parser; after Build/Parse the structure must not
// be mutated.
type Circuit struct {
	Name    string
	Gates   []Gate
	Inputs  []int // gate indices of primary inputs, in declaration order
	Outputs []int // gate indices observed as primary outputs

	fanout   [][]Pin // consumers of each gate's output
	outCount []int   // number of times each gate appears in Outputs
	level    []int   // longest path from any input/constant
	order    []int   // topological order (levelized)
	inputPos map[int]int

	fpOnce sync.Once
	fp     string
}

// NumGates returns the total number of gates including primary inputs.
func (c *Circuit) NumGates() int { return len(c.Gates) }

// NumInputs returns the number of primary inputs.
func (c *Circuit) NumInputs() int { return len(c.Inputs) }

// NumOutputs returns the number of primary outputs.
func (c *Circuit) NumOutputs() int { return len(c.Outputs) }

// NumLines returns the number of fault sites: one stem per gate output
// plus one branch per gate input pin.
func (c *Circuit) NumLines() int {
	n := len(c.Gates)
	for i := range c.Gates {
		n += len(c.Gates[i].Fanin)
	}
	return n
}

// Fanout returns the consumers of gate g's output. The returned slice
// must not be modified.
func (c *Circuit) Fanout(g int) []Pin { return c.fanout[g] }

// FanoutCount returns the number of gate input pins driven by g, not
// counting primary-output observation.
func (c *Circuit) FanoutCount(g int) int { return len(c.fanout[g]) }

// IsOutput reports whether gate g's output is a primary output.
func (c *Circuit) IsOutput(g int) bool { return c.outCount[g] > 0 }

// Level returns the levelization of gate g: 0 for inputs and constants,
// 1 + max(fanin levels) otherwise.
func (c *Circuit) Level(g int) int { return c.level[g] }

// Depth returns the maximum level over all gates (0 for an empty or
// input-only circuit).
func (c *Circuit) Depth() int {
	d := 0
	for _, l := range c.level {
		if l > d {
			d = l
		}
	}
	return d
}

// TopoOrder returns the gate indices in a topological (levelized) order:
// every gate appears after all of its fanins. The returned slice must
// not be modified.
func (c *Circuit) TopoOrder() []int { return c.order }

// InputIndex returns the position of gate g in Inputs, or -1 if g is not
// a primary input.
func (c *Circuit) InputIndex(g int) int {
	if p, ok := c.inputPos[g]; ok {
		return p
	}
	return -1
}

// GateName returns a stable human-readable name for gate g (its declared
// name, or a synthesized one).
func (c *Circuit) GateName(g int) string {
	if n := c.Gates[g].Name; n != "" {
		return n
	}
	return fmt.Sprintf("g%d", g)
}

// FindGate returns the index of the gate with the given name, or -1.
func (c *Circuit) FindGate(name string) int {
	for i := range c.Gates {
		if c.Gates[i].Name == name {
			return i
		}
	}
	return -1
}

// ForwardCone returns the set of gates reachable from gate g (including
// g itself), as a sorted slice of gate indices. It is the region whose
// values can change when g's output changes.
func (c *Circuit) ForwardCone(g int) []int {
	seen := make(map[int]bool)
	stack := []int{g}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[x] {
			continue
		}
		seen[x] = true
		for _, p := range c.fanout[x] {
			if !seen[p.Gate] {
				stack = append(stack, p.Gate)
			}
		}
	}
	cone := make([]int, 0, len(seen))
	for x := range seen {
		cone = append(cone, x)
	}
	sort.Ints(cone)
	return cone
}

// BackwardCone returns the set of gates on which gate g depends
// (including g itself), as a sorted slice of gate indices.
func (c *Circuit) BackwardCone(g int) []int {
	seen := make(map[int]bool)
	stack := []int{g}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[x] {
			continue
		}
		seen[x] = true
		for _, f := range c.Gates[x].Fanin {
			if !seen[f] {
				stack = append(stack, f)
			}
		}
	}
	cone := make([]int, 0, len(seen))
	for x := range seen {
		cone = append(cone, x)
	}
	sort.Ints(cone)
	return cone
}

// SupportInputs returns the primary inputs in the backward cone of gate
// g, as positions into Inputs, sorted ascending.
func (c *Circuit) SupportInputs(g int) []int {
	var sup []int
	for _, x := range c.BackwardCone(g) {
		if p, ok := c.inputPos[x]; ok {
			sup = append(sup, p)
		}
	}
	sort.Ints(sup)
	return sup
}

// Fingerprint returns the canonical content address of the circuit's
// structure: a hex SHA-256 over gate types, fanin lists, input order,
// and the output list. Names are excluded — they cannot influence
// simulation — so two same-structure circuits decoded independently
// (an engine task and a wire-decoded copy on a dist worker) share one
// fingerprint and therefore one compiled-simulation artifact. Computed
// once and cached; circuits are immutable after construction.
func (c *Circuit) Fingerprint() string {
	c.fpOnce.Do(func() {
		h := sha256.New()
		var buf [binary.MaxVarintLen64]byte
		put := func(v int) {
			n := binary.PutUvarint(buf[:], uint64(v))
			h.Write(buf[:n])
		}
		put(len(c.Gates))
		for g := range c.Gates {
			gate := &c.Gates[g]
			put(int(gate.Type))
			put(len(gate.Fanin))
			for _, f := range gate.Fanin {
				put(f)
			}
		}
		put(len(c.Inputs))
		for _, g := range c.Inputs {
			put(g)
		}
		put(len(c.Outputs))
		for _, g := range c.Outputs {
			put(g)
		}
		c.fp = hex.EncodeToString(h.Sum(nil))
	})
	return c.fp
}

// Stats summarizes the structural properties of a circuit.
type Stats struct {
	Gates      int // total gates including inputs and constants
	Inputs     int
	Outputs    int
	Depth      int
	Lines      int            // fault sites (stems + branches)
	FanoutMax  int            // widest fanout
	ByType     map[string]int // gate count per type name
	Reconverge int            // gates with fanout > 1 (potential reconvergence stems)
}

// Stats computes structural statistics for the circuit.
func (c *Circuit) Stats() Stats {
	s := Stats{
		Gates:   len(c.Gates),
		Inputs:  len(c.Inputs),
		Outputs: len(c.Outputs),
		Depth:   c.Depth(),
		Lines:   c.NumLines(),
		ByType:  make(map[string]int),
	}
	for g := range c.Gates {
		s.ByType[c.Gates[g].Type.String()]++
		if n := len(c.fanout[g]); n > s.FanoutMax {
			s.FanoutMax = n
		}
		if len(c.fanout[g]) > 1 {
			s.Reconverge++
		}
	}
	return s
}

// finish derives fanout, levels and topological order, and validates the
// structure. It is called by Builder.Build and the bench parser.
func (c *Circuit) finish() error {
	n := len(c.Gates)
	c.fanout = make([][]Pin, n)
	c.outCount = make([]int, n)
	indeg := make([]int, n)
	for g := range c.Gates {
		gate := &c.Gates[g]
		if !gate.Type.Valid() {
			return fmt.Errorf("circuit %s: gate %d (%s): invalid type", c.Name, g, c.GateName(g))
		}
		if min := gate.Type.MinFanin(); len(gate.Fanin) < min {
			return fmt.Errorf("circuit %s: gate %d (%s): %s needs at least %d fanins, has %d",
				c.Name, g, c.GateName(g), gate.Type, min, len(gate.Fanin))
		}
		if max := gate.Type.MaxFanin(); max >= 0 && len(gate.Fanin) > max {
			return fmt.Errorf("circuit %s: gate %d (%s): %s allows at most %d fanins, has %d",
				c.Name, g, c.GateName(g), gate.Type, max, len(gate.Fanin))
		}
		indeg[g] = len(gate.Fanin)
		for pin, f := range gate.Fanin {
			if f < 0 || f >= n {
				return fmt.Errorf("circuit %s: gate %d (%s): fanin %d out of range", c.Name, g, c.GateName(g), f)
			}
			c.fanout[f] = append(c.fanout[f], Pin{Gate: g, Pin: pin})
		}
	}
	for _, o := range c.Outputs {
		if o < 0 || o >= n {
			return fmt.Errorf("circuit %s: output gate %d out of range", c.Name, o)
		}
		c.outCount[o]++
	}
	c.inputPos = make(map[int]int, len(c.Inputs))
	for pos, g := range c.Inputs {
		if g < 0 || g >= n {
			return fmt.Errorf("circuit %s: input gate %d out of range", c.Name, g)
		}
		if c.Gates[g].Type != Input {
			return fmt.Errorf("circuit %s: gate %d (%s) listed as input but has type %s",
				c.Name, g, c.GateName(g), c.Gates[g].Type)
		}
		if _, dup := c.inputPos[g]; dup {
			return fmt.Errorf("circuit %s: gate %d (%s) listed as input twice", c.Name, g, c.GateName(g))
		}
		c.inputPos[g] = pos
	}
	for g := range c.Gates {
		if c.Gates[g].Type == Input {
			if _, ok := c.inputPos[g]; !ok {
				return fmt.Errorf("circuit %s: gate %d (%s) has type INPUT but is not in Inputs",
					c.Name, g, c.GateName(g))
			}
		}
	}

	// Kahn's algorithm: levelized topological order + cycle detection.
	c.level = make([]int, n)
	c.order = make([]int, 0, n)
	queue := make([]int, 0, n)
	for g := 0; g < n; g++ {
		if indeg[g] == 0 {
			queue = append(queue, g)
		}
	}
	for len(queue) > 0 {
		g := queue[0]
		queue = queue[1:]
		c.order = append(c.order, g)
		for _, p := range c.fanout[g] {
			if l := c.level[g] + 1; l > c.level[p.Gate] {
				c.level[p.Gate] = l
			}
			indeg[p.Gate]--
			if indeg[p.Gate] == 0 {
				queue = append(queue, p.Gate)
			}
		}
	}
	if len(c.order) != n {
		return fmt.Errorf("circuit %s: combinational loop detected (%d of %d gates ordered)",
			c.Name, len(c.order), n)
	}
	return nil
}
