package chaos

import (
	"fmt"
	"sync"
	"syscall"

	"optirand/internal/dist"
)

// JournalFaults configures file-layer injection for WrapJournal.
// Counts are in successful record appends (WriteAt calls past the
// header), so a scenario can say "tear the 5th append" exactly.
type JournalFaults struct {
	// TornAfter, when > 0, lets that many appends through and then
	// tears the next one: half its bytes reach the file and the write
	// fails — the on-disk shape of a crash mid-append, which the next
	// OpenJournal must truncate away. Later writes fail cleanly.
	TornAfter int
	// ENOSPCAfter, when > 0, lets that many appends through and then
	// fails every later one with ENOSPC, no bytes written — the disk
	// filled up. Torn wins if both trigger on the same write.
	ENOSPCAfter int
	// FlipBitInWrite, when > 0, flips one bit of the Nth append's
	// payload on its way to disk (the write succeeds) — silent media
	// corruption that the journal's CRC must catch loudly on reopen.
	FlipBitInWrite int
}

// faultJournalIO wraps a dist.JournalIO with scheduled write faults.
type faultJournalIO struct {
	dist.JournalIO
	s *Schedule
	f JournalFaults

	mu     sync.Mutex
	writes int  // record appends observed (header write excluded)
	dead   bool // a torn/ENOSPC fault has fired; writes keep failing
}

// WrapJournal returns the wrap function dist.OpenJournalIO accepts,
// injecting f's faults into the journal's writes. Reads, truncation,
// and scanning stay real — the point is to feed the real recovery
// code a damaged file.
func (s *Schedule) WrapJournal(f JournalFaults) func(dist.JournalIO) dist.JournalIO {
	return func(io dist.JournalIO) dist.JournalIO {
		return &faultJournalIO{JournalIO: io, s: s, f: f}
	}
}

func (j *faultJournalIO) WriteAt(p []byte, off int64) (int, error) {
	if off == 0 {
		// The magic header of a fresh file: not an append, let it be.
		return j.JournalIO.WriteAt(p, off)
	}
	j.mu.Lock()
	j.writes++
	n := j.writes
	dead := j.dead
	tear := !dead && j.f.TornAfter > 0 && n > j.f.TornAfter
	nospc := !dead && !tear && j.f.ENOSPCAfter > 0 && n > j.f.ENOSPCAfter
	flip := !dead && !tear && !nospc && j.f.FlipBitInWrite > 0 && n == j.f.FlipBitInWrite
	if tear || nospc {
		j.dead = true
	}
	j.mu.Unlock()

	switch {
	case dead:
		return 0, fmt.Errorf("%w: journal write after device failure", ErrInjected)
	case tear:
		cut := len(p) / 2
		j.s.note("journal.torn")
		if cut > 0 {
			j.JournalIO.WriteAt(p[:cut], off) //nolint:errcheck // the tear is the outcome either way
		}
		return cut, fmt.Errorf("%w: torn write (%d of %d bytes)", ErrInjected, cut, len(p))
	case nospc:
		j.s.note("journal.enospc")
		return 0, fmt.Errorf("%w: write: %w", ErrInjected, syscall.ENOSPC)
	case flip:
		bit := j.s.Intn("journal.flipbit", 1000, len(p)*8)
		cp := append([]byte(nil), p...)
		if bit >= 0 && len(cp) > 0 {
			cp[bit/8] ^= 1 << (bit % 8)
		}
		return j.JournalIO.WriteAt(cp, off)
	default:
		return j.JournalIO.WriteAt(p, off)
	}
}
