// Package chaos is a deterministic, seed-scripted fault injector for
// the dist layer. It wraps the seams the real system already exposes —
// dist.Executor (task-level delays, transient errors, duplicate
// deliveries), http.RoundTripper under a dist.Client (connection
// resets, 5xx bursts with Retry-After, truncated response bodies,
// corrupted blob uploads), http.Handler over a dist.Server (leaf-side
// error bursts), and dist.JournalIO (torn writes, ENOSPC, bit flips) —
// and drives every injection decision from one SplitMix64 stream
// seeded by (seed, scenario).
//
// Determinism is the point: the schedule's decision stream is a pure
// function of its seed and scenario name, so any failure a chaos run
// flushes out replays from two small values. Under concurrency the
// mapping of decisions to calls follows goroutine interleaving — what
// stays fixed is the stream itself and, by the repo's equivalence
// contract, the final results: every scenario must end byte-identical
// to a serial in-process run, whatever was injected along the way.
//
// Every decision is recorded in the schedule's log (site, draw index,
// outcome), so a test can assert both that faults actually fired and
// that replaying a seed reproduces the identical injection schedule.
package chaos

import (
	"fmt"
	"hash/fnv"
	"sync"
	"time"
)

// Decision is one recorded injection decision: the draw index in the
// schedule's stream, the site label that consumed it, and the outcome.
type Decision struct {
	// Index is the decision's position in the schedule's stream,
	// starting at 0.
	Index uint64
	// Site labels the seam and fault that drew it, e.g.
	// "executor.err" or "transport.truncate".
	Site string
	// Hit reports whether the fault fired.
	Hit bool
	// Arg carries the fault's parameter when it has one (delay in
	// nanoseconds, truncation offset, flipped bit index); 0 otherwise.
	Arg int64
}

func (d Decision) String() string {
	return fmt.Sprintf("#%d %s hit=%v arg=%d", d.Index, d.Site, d.Hit, d.Arg)
}

// Schedule is a deterministic injection-decision stream: a SplitMix64
// generator seeded from (seed, scenario), advanced one 64-bit draw per
// decision, with every decision logged. A Schedule is safe for
// concurrent use; each decision is atomic, so the stream never tears.
type Schedule struct {
	seed     uint64
	scenario string

	mu    sync.Mutex
	state uint64
	n     uint64
	log   []Decision
	hits  map[string]int
}

// NewSchedule builds the decision stream for (seed, scenario). Equal
// arguments yield an identical stream — that is the replay contract.
func NewSchedule(seed uint64, scenario string) *Schedule {
	h := fnv.New64a()
	h.Write([]byte(scenario)) //nolint:errcheck // fnv never fails
	return &Schedule{
		seed:     seed,
		scenario: scenario,
		state:    seed ^ h.Sum64(),
		hits:     make(map[string]int),
	}
}

// Seed and Scenario echo the schedule's identity, for failure messages.
func (s *Schedule) Seed() uint64     { return s.seed }
func (s *Schedule) Scenario() string { return s.scenario }

// splitmix64 is the SplitMix64 step: state += golden gamma, output the
// finalized mix. Tiny, full-period, and statistically clean enough for
// fault scheduling.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// decide draws one value, maps it through draw, and logs the decision.
func (s *Schedule) decide(site string, draw func(uint64) (bool, int64)) (bool, int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v := splitmix64(&s.state)
	h, a := draw(v)
	s.log = append(s.log, Decision{Index: s.n, Site: site, Hit: h, Arg: a})
	s.n++
	if h {
		s.hits[site]++
	}
	return h, a
}

// Hit decides one permille-weighted fault: true with probability
// permille/1000 (0 never, >= 1000 always). One draw is consumed even
// when permille is 0, so adding or removing a fault's configuration
// never shifts the rest of the schedule.
func (s *Schedule) Hit(site string, permille int) bool {
	h, _ := s.decide(site, func(v uint64) (bool, int64) {
		return int(v%1000) < permille, 0
	})
	return h
}

// Duration decides a delay fault: with probability permille/1000 a
// uniformly drawn duration in (0, max]; 0 otherwise (and when max <= 0).
func (s *Schedule) Duration(site string, permille int, max time.Duration) time.Duration {
	_, a := s.decide(site, func(v uint64) (bool, int64) {
		if int(v%1000) >= permille || max <= 0 {
			return false, 0
		}
		// Reuse the draw's high bits for the magnitude so one decision
		// stays one draw.
		return true, 1 + int64((v>>10)%uint64(max))
	})
	return time.Duration(a)
}

// Intn decides a fault parameter: with probability permille/1000 a
// uniform value in [0, n); -1 otherwise (and when n <= 0).
func (s *Schedule) Intn(site string, permille int, n int) int64 {
	_, a := s.decide(site, func(v uint64) (bool, int64) {
		if int(v%1000) >= permille || n <= 0 {
			return false, -1
		}
		return true, int64((v >> 10) % uint64(n))
	})
	return a
}

// note records a fault firing that was decided by configuration (a
// counted fault like "tear the Nth write") rather than a draw: it
// shows up in Hits but neither consumes nor shifts the decision
// stream.
func (s *Schedule) note(site string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hits[site]++
}

// Log returns a copy of the decisions made so far, in draw order.
func (s *Schedule) Log() []Decision {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Decision(nil), s.log...)
}

// Hits reports how many times the fault at site fired — the assertion
// a scenario uses to prove it actually injected something.
func (s *Schedule) Hits(site string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits[site]
}

// TotalHits reports fault firings across all sites.
func (s *Schedule) TotalHits() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, c := range s.hits {
		n += c
	}
	return n
}
