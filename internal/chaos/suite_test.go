// Chaos equivalence suite: every scenario injects a deterministic,
// seed-scripted fault schedule into one backend composition and then
// asserts the strongest property the repo has — the final results are
// byte-identical to a serial in-process run. Faults may reorder,
// retry, duplicate, truncate, and corrupt along the way; they may
// never change a byte of the answer.
package chaos_test

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"strings"
	"syscall"
	"testing"
	"time"

	"optirand"
	"optirand/internal/chaos"
	"optirand/internal/dist"
	"optirand/internal/engine"
	"optirand/internal/fault"
	"optirand/internal/gen"
	"optirand/internal/sim"
)

// chaosSeed scripts every scenario in this file; change it and every
// scenario replays a different — equally deterministic — fault
// history.
const chaosSeed = 1987

// chaosTasks expands the suite's circuits × weightings × seeds grid
// (27 tasks over three generated circuits — the same shape the dist
// equivalence tests use).
func chaosTasks(t *testing.T) []*engine.Task {
	t.Helper()
	sweep := &engine.Sweep{
		BaseSeed:    1987,
		Repetitions: 3,
		Patterns:    320,
		CurveStep:   100,
	}
	for _, name := range []string{"c432", "c880", "c1908"} {
		b, ok := gen.ByName(name)
		if !ok {
			t.Fatalf("missing benchmark %s", name)
		}
		c := b.Build()
		faults := fault.New(c).Reps
		n := c.NumInputs()
		uniform := make([]float64, n)
		skewed := make([]float64, n)
		for i := range uniform {
			uniform[i] = 0.5
			skewed[i] = 0.1 + 0.8*float64(i)/float64(n)
		}
		sweep.Circuits = append(sweep.Circuits, engine.SweepCircuit{
			Name:    name,
			Circuit: c,
			Faults:  faults,
			Weightings: []engine.Weighting{
				{Name: "uniform", Sets: [][]float64{uniform}},
				{Name: "skewed", Sets: [][]float64{skewed}},
				{Name: "mixture", Sets: [][]float64{uniform, skewed}},
			},
		})
	}
	return sweep.Tasks()
}

// serialRef runs the grid serially in-process: the byte-identity
// reference every scenario compares against.
func serialRef(t *testing.T, tasks []*engine.Task) []*sim.CampaignResult {
	t.Helper()
	ref, err := engine.Run(context.Background(), tasks, 1)
	if err != nil {
		t.Fatal(err)
	}
	return campaignsOf(ref)
}

// campaignsOf projects results onto their deterministic payload.
func campaignsOf(results []engine.TaskResult) []*sim.CampaignResult {
	out := make([]*sim.CampaignResult, len(results))
	for i, r := range results {
		out[i] = r.Campaign
	}
	return out
}

// mustIdentical fails the scenario unless got is byte-identical to
// the serial reference.
func mustIdentical(t *testing.T, sched *chaos.Schedule, ref, got []*sim.CampaignResult) {
	t.Helper()
	if !reflect.DeepEqual(ref, got) {
		t.Fatalf("results diverge from serial under chaos (seed=%d scenario=%q, %d injections)",
			sched.Seed(), sched.Scenario(), sched.TotalHits())
	}
}

// mustInject fails the scenario unless the fault at site actually
// fired — a scenario that injected nothing proved nothing.
func mustInject(t *testing.T, sched *chaos.Schedule, site string) {
	t.Helper()
	if sched.Hits(site) == 0 {
		t.Fatalf("scenario %q injected no %s faults: schedule too quiet to prove anything (seed=%d)",
			sched.Scenario(), site, sched.Seed())
	}
}

// TestChaosDuplicateDelivery drives the dispatcher with an executor
// that randomly stalls, fails transiently, and delivers tasks TWICE —
// the at-least-once residue of requeue races. Retry absorbs the
// failures, the identity contract absorbs the duplicates, and the
// batch must come out byte-identical to serial.
func TestChaosDuplicateDelivery(t *testing.T) {
	tasks := chaosTasks(t)
	ref := serialRef(t, tasks)

	sched := chaos.NewSchedule(chaosSeed, "duplicate-delivery")
	exec := sched.WrapExecutor(dist.LocalExecutor, chaos.ExecutorFaults{
		ErrPermille:   300,
		DupPermille:   300,
		DelayPermille: 300,
		MaxDelay:      2 * time.Millisecond,
	})
	d := dist.NewDispatcher(exec, dist.Options{Workers: 8, MaxAttempts: 10, RetryDelay: time.Millisecond})
	defer d.Close()

	results, err := d.Run(context.Background(), tasks)
	if err != nil {
		t.Fatalf("batch failed under chaos (seed=%d): %v", chaosSeed, err)
	}
	mustInject(t, sched, "executor.dup")
	mustInject(t, sched, "executor.err")
	mustIdentical(t, sched, ref, campaignsOf(results))
}

// TestChaos5xxBurst puts a scripted 503 burst (with Retry-After)
// between a dispatcher-backed remote client and a real daemon. The
// client must classify the bursts retryable, honor the advertised
// delay inside its capped backoff, and finish byte-identical.
func TestChaos5xxBurst(t *testing.T) {
	tasks := chaosTasks(t)
	ref := serialRef(t, tasks)

	srv := dist.NewServer(dist.ServerOptions{Workers: 4})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	sched := chaos.NewSchedule(chaosSeed, "5xx-burst")
	cl := dist.NewClient(ts.URL)
	cl.HTTP.Transport = sched.WrapTransport(nil, chaos.TransportFaults{
		Code5xxPermille: 250,
		RetryAfter:      time.Second, // capped by the dispatcher's RetryMaxDelay below
		ResetPermille:   50,
	})
	d := dist.NewDispatcher(dist.RemoteExecutor(cl), dist.Options{
		Workers:     8,
		MaxAttempts: 12,
		RetryDelay:  time.Millisecond, // RetryMaxDelay defaults to 32×: the 1s hint is capped to 32ms
	})
	defer d.Close()

	results, err := d.Run(context.Background(), tasks)
	if err != nil {
		t.Fatalf("batch failed under 5xx burst (seed=%d): %v", chaosSeed, err)
	}
	mustInject(t, sched, "transport.5xx")
	mustIdentical(t, sched, ref, campaignsOf(results))
}

// TestChaosStreamTruncation cuts the daemon's NDJSON sweep stream
// short at scripted offsets. A truncated stream must fail loudly
// (never deliver a partial batch as complete), and a retried sweep —
// served warm from the daemon's cache — must come out byte-identical.
func TestChaosStreamTruncation(t *testing.T) {
	tasks := chaosTasks(t)
	ref := serialRef(t, tasks)

	srv := dist.NewServer(dist.ServerOptions{Workers: 4})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	sched := chaos.NewSchedule(chaosSeed, "stream-truncation")
	cl := dist.NewClient(ts.URL)
	cl.HTTP.Transport = sched.WrapTransport(nil, chaos.TransportFaults{TruncatePermille: 400})

	var got []*sim.CampaignResult
	var lastErr error
	for attempt := 0; attempt < 100; attempt++ {
		batch := make([]*sim.CampaignResult, len(tasks))
		_, err := cl.SweepEach(context.Background(), tasks, func(i int, res *sim.CampaignResult, _ bool, _ time.Duration) {
			batch[i] = res
		})
		if err == nil {
			got = batch
			break
		}
		lastErr = err
	}
	if got == nil {
		t.Fatalf("no clean sweep in 100 attempts (seed=%d): last error: %v", chaosSeed, lastErr)
	}
	mustInject(t, sched, "transport.truncate")
	mustIdentical(t, sched, ref, got)
}

// TestChaosCorruptBlob flips one bit in every blob upload. The
// daemon's content-address verification must reject the damaged
// bytes, the client must quarantine-and-continue — tasks stay inline
// — and the sweep must come out byte-identical anyway.
func TestChaosCorruptBlob(t *testing.T) {
	tasks := chaosTasks(t)
	ref := serialRef(t, tasks)

	srv := dist.NewServer(dist.ServerOptions{Workers: 4})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	sched := chaos.NewSchedule(chaosSeed, "corrupt-blob")
	cl := dist.NewClient(ts.URL)
	cl.HTTP.Transport = sched.WrapTransport(nil, chaos.TransportFaults{CorruptPutPermille: 1000})

	results, hits, err := cl.Sweep(context.Background(), tasks)
	if err != nil {
		t.Fatalf("sweep failed under blob corruption (seed=%d): %v", chaosSeed, err)
	}
	_ = hits
	mustInject(t, sched, "transport.corruptput")
	mustIdentical(t, sched, ref, results)
}

// TestChaosTornJournalResume tears the journal mid-append (the
// on-disk shape of a crash) during a first sweep, then resumes from
// the damaged file: the first sweep must finish byte-identical with
// durability degraded (sticky append error), the reopen must truncate
// the torn tail, and the resumed sweep must replay the surviving
// records and come out byte-identical too.
func TestChaosTornJournalResume(t *testing.T) {
	tasks := chaosTasks(t)
	ref := serialRef(t, tasks)
	path := filepath.Join(t.TempDir(), "sweep.journal")

	sched := chaos.NewSchedule(chaosSeed, "torn-journal")
	j, err := dist.OpenJournalIO(path, sched.WrapJournal(chaos.JournalFaults{TornAfter: 5}))
	if err != nil {
		t.Fatal(err)
	}
	d := dist.NewDispatcher(dist.LocalExecutor, dist.Options{Workers: 4, Journal: j})
	results, err := d.Run(context.Background(), tasks)
	d.Close()
	if err != nil {
		t.Fatalf("batch failed under journal tear (seed=%d): %v", chaosSeed, err)
	}
	mustIdentical(t, sched, ref, campaignsOf(results))
	mustInject(t, sched, "journal.torn")
	if jerr := j.Err(); !errors.Is(jerr, chaos.ErrInjected) {
		t.Fatalf("journal error = %v, want the injected torn-write error (sticky)", jerr)
	}
	j.Close()

	// Reopen clean: the torn record must be truncated away, the five
	// whole ones must survive and replay.
	j2, err := dist.OpenJournal(path)
	if err != nil {
		t.Fatalf("reopening the torn journal: %v (the torn tail must be absorbed, not rejected)", err)
	}
	defer j2.Close()
	if n := j2.Len(); n != 5 {
		t.Fatalf("journal replayed %d records after the tear, want 5 (the appends before it)", n)
	}
	d2 := dist.NewDispatcher(dist.LocalExecutor, dist.Options{Workers: 4, Journal: j2})
	defer d2.Close()
	resumed, err := d2.Run(context.Background(), tasks)
	if err != nil {
		t.Fatal(err)
	}
	mustIdentical(t, sched, ref, campaignsOf(resumed))
	if st := j2.Stats(); st.Replays < 5 || st.Entries != len(tasks) {
		t.Fatalf("resume stats = %+v, want >=5 replays and %d entries", st, len(tasks))
	}
}

// TestChaosJournalENOSPC fills the disk under the journal after three
// appends: durability must degrade (sticky ENOSPC), execution must
// not — the sweep finishes byte-identical and the three durable
// records survive a clean reopen.
func TestChaosJournalENOSPC(t *testing.T) {
	tasks := chaosTasks(t)
	ref := serialRef(t, tasks)
	path := filepath.Join(t.TempDir(), "sweep.journal")

	sched := chaos.NewSchedule(chaosSeed, "journal-enospc")
	j, err := dist.OpenJournalIO(path, sched.WrapJournal(chaos.JournalFaults{ENOSPCAfter: 3}))
	if err != nil {
		t.Fatal(err)
	}
	d := dist.NewDispatcher(dist.LocalExecutor, dist.Options{Workers: 4, Journal: j})
	results, err := d.Run(context.Background(), tasks)
	d.Close()
	if err != nil {
		t.Fatalf("batch failed under ENOSPC (seed=%d): %v", chaosSeed, err)
	}
	mustIdentical(t, sched, ref, campaignsOf(results))
	if jerr := j.Err(); !errors.Is(jerr, syscall.ENOSPC) {
		t.Fatalf("journal error = %v, want ENOSPC", jerr)
	}
	j.Close()

	j2, err := dist.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if n := j2.Len(); n != 3 {
		t.Fatalf("journal holds %d records after ENOSPC, want the 3 durable ones", n)
	}
}

// TestChaosJournalBitFlip flips one bit of a record on its way to
// disk. The write "succeeds" — silent media corruption — and the next
// open must reject the file loudly at its CRC rather than replay
// damaged results.
func TestChaosJournalBitFlip(t *testing.T) {
	tasks := chaosTasks(t)[:4]
	path := filepath.Join(t.TempDir(), "sweep.journal")

	sched := chaos.NewSchedule(chaosSeed, "journal-bitflip")
	j, err := dist.OpenJournalIO(path, sched.WrapJournal(chaos.JournalFaults{FlipBitInWrite: 2}))
	if err != nil {
		t.Fatal(err)
	}
	d := dist.NewDispatcher(dist.LocalExecutor, dist.Options{Workers: 1, Journal: j})
	if _, err := d.Run(context.Background(), tasks); err != nil {
		t.Fatal(err)
	}
	d.Close()
	j.Close()

	_, err = dist.OpenJournal(path)
	if err == nil {
		t.Fatal("reopening a bit-flipped journal succeeded: silent corruption would replay damaged results")
	}
	if !strings.Contains(err.Error(), "checksum") && !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("reopen error = %v, want a loud checksum/corruption rejection", err)
	}
}

// TestChaosLeafFlap runs the full tree — client → front → three real
// leaf daemons — with scripted 500 bursts at every leaf. The front
// must mark flapping leaves down, fail over, route back as the health
// checker restores them, and the sweep must come out byte-identical.
func TestChaosLeafFlap(t *testing.T) {
	tasks := chaosTasks(t)
	ref := serialRef(t, tasks)

	sched := chaos.NewSchedule(chaosSeed, "leaf-flap")
	var upstreams []string
	for i := 0; i < 3; i++ {
		leaf := dist.NewServer(dist.ServerOptions{Workers: 2, Role: dist.RoleLeaf})
		defer leaf.Close()
		lts := httptest.NewServer(sched.WrapHandler(leaf, chaos.HandlerFaults{Code5xxPermille: 150}))
		defer lts.Close()
		upstreams = append(upstreams, lts.URL)
	}
	front := dist.NewServer(dist.ServerOptions{
		Workers:        8,
		Upstreams:      upstreams,
		HealthInterval: 25 * time.Millisecond,
		MaxAttempts:    10,
		RetryDelay:     2 * time.Millisecond,
	})
	defer front.Close()
	fts := httptest.NewServer(front)
	defer fts.Close()

	cl := dist.NewClient(fts.URL)
	results, _, err := cl.Sweep(context.Background(), tasks)
	if err != nil {
		t.Fatalf("tree sweep failed under leaf flap (seed=%d): %v", chaosSeed, err)
	}
	mustInject(t, sched, "handler.5xx")
	mustIdentical(t, sched, ref, results)

	// The flap must be visible in the front's stats: failures counted,
	// and the per-leaf consecutive-failure gauge present in the wire
	// shape (zeroed again wherever a later success landed).
	var stats struct {
		Federation *dist.FederationStats `json:"federation"`
	}
	resp, err := http.Get(fts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Federation == nil || stats.Federation.Failures == 0 {
		t.Fatalf("federation stats = %+v, want visible routed failures after a flap", stats.Federation)
	}
	if len(stats.Federation.PerLeaf) != 3 {
		t.Fatalf("per-leaf stats for %d leaves, want 3", len(stats.Federation.PerLeaf))
	}
}

// TestChaosOverloadShedAndDrain is the overload acceptance scenario:
// a daemon with a tiny admission watermark sheds a saturating batch
// with 429 + Retry-After, the backing-off client still completes the
// sweep byte-identically, a drain then flips healthz and sheds with
// 503 — and nothing leaks a goroutine once everything is closed.
func TestChaosOverloadShedAndDrain(t *testing.T) {
	tasks := chaosTasks(t)
	ref := serialRef(t, tasks)
	before := chaos.Goroutines()

	srv := dist.NewServer(dist.ServerOptions{Workers: 1, QueueLimit: 1})
	ts := httptest.NewServer(srv)
	cl := dist.NewClient(ts.URL)
	d := dist.NewDispatcher(dist.RemoteExecutor(cl), dist.Options{
		Workers:     8,
		MaxAttempts: 50,
		RetryDelay:  2 * time.Millisecond, // caps the daemon's 1s Retry-After at 64ms
	})

	results, err := d.Run(context.Background(), tasks)
	if err != nil {
		t.Fatalf("saturating batch failed: %v", err)
	}
	mustIdentical(t, chaos.NewSchedule(0, "overload"), ref, campaignsOf(results))

	var stats struct {
		Overload *dist.OverloadStats `json:"overload"`
	}
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Overload == nil || stats.Overload.Shed429 == 0 || stats.Overload.RetryAfterIssued == 0 {
		t.Fatalf("overload stats = %+v, want shed 429s with Retry-After after a saturating batch", stats.Overload)
	}

	// Drain: healthz flips, new work is shed with 503 + Retry-After.
	srv.BeginDrain()
	h, err := cl.Healthz(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if h.Ready || h.Status != "draining" {
		t.Fatalf("healthz during drain = %+v, want status draining / not ready", h)
	}
	post, err := http.Post(ts.URL+"/v1/campaign", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("campaign during drain answered %d, want 503", post.StatusCode)
	}
	if post.Header.Get("Retry-After") == "" {
		t.Fatal("drain shed without a Retry-After header")
	}

	// Full teardown must release every goroutine the stack spawned.
	d.Close()
	ts.Close()
	srv.Close()
	if err := chaos.CheckGoroutines(before, 3*time.Second); err != nil {
		t.Fatal(err)
	}
}

// TestChaosRunnerCloseNoLeak asserts the public Runner's fleet
// teardown releases its goroutines — the library-embedding shape of
// the same drain guarantee the daemon test proves.
func TestChaosRunnerCloseNoLeak(t *testing.T) {
	before := chaos.Goroutines()
	r := optirand.NewRunner(optirand.WithWorkers(8), optirand.WithCache(64))
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if err := chaos.CheckGoroutines(before, 3*time.Second); err != nil {
		t.Fatal(err)
	}
}

// TestChaosScheduleReplay proves the replay contract: two schedules
// built from the same (seed, scenario) and driven through the same
// serial call sequence produce the identical injection log, decision
// by decision.
func TestChaosScheduleReplay(t *testing.T) {
	drive := func() []chaos.Decision {
		sched := chaos.NewSchedule(42, "replay")
		exec := sched.WrapExecutor(
			func(context.Context, *engine.Task) (*sim.CampaignResult, error) {
				return &sim.CampaignResult{}, nil
			},
			chaos.ExecutorFaults{ErrPermille: 300, DupPermille: 300, DelayPermille: 200, MaxDelay: time.Microsecond},
		)
		for i := 0; i < 40; i++ {
			exec(context.Background(), nil) //nolint:errcheck // decisions are the output
		}
		rt := sched.WrapTransport(stubTransport{}, chaos.TransportFaults{
			ResetPermille:      200,
			Code5xxPermille:    200,
			TruncatePermille:   200,
			CorruptPutPermille: 500,
			SlowPermille:       100,
			MaxDelay:           time.Microsecond,
		})
		for i := 0; i < 40; i++ {
			method, path := http.MethodPost, "/v1/sweep"
			if i%3 == 0 {
				method, path = http.MethodPut, "/v1/blobs/deadbeef"
			}
			req, err := http.NewRequest(method, "http://chaos.invalid"+path, strings.NewReader("payload"))
			if err != nil {
				t.Fatal(err)
			}
			if resp, err := rt.RoundTrip(req); err == nil {
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}
		return sched.Log()
	}
	a, b := drive(), drive()
	if len(a) == 0 {
		t.Fatal("empty injection log: the drive sequence made no decisions")
	}
	if !reflect.DeepEqual(a, b) {
		for i := range a {
			if i < len(b) && a[i] != b[i] {
				t.Fatalf("injection schedules diverge at decision %d: %v vs %v", i, a[i], b[i])
			}
		}
		t.Fatalf("injection schedules differ in length: %d vs %d", len(a), len(b))
	}
}

// stubTransport answers every round trip with a small 200.
type stubTransport struct{}

func (stubTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if req.Body != nil {
		_, _ = io.Copy(io.Discard, req.Body)
		req.Body.Close()
	}
	body := strings.Repeat("x", 256)
	return &http.Response{
		Status:     "200 OK",
		StatusCode: http.StatusOK,
		Proto:      "HTTP/1.1",
		ProtoMajor: 1, ProtoMinor: 1,
		Header:        make(http.Header),
		Body:          io.NopCloser(strings.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}, nil
}
