package chaos

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// TransportFaults configures HTTP-level injection for WrapTransport.
// All rates are permille per round trip; decisions are drawn in a
// fixed order per call (slow, reset, 5xx, corrupt-put, truncate), one
// draw each whether or not the fault is configured, so a scenario's
// schedule never shifts when a rate is zeroed.
type TransportFaults struct {
	// ResetPermille fails the round trip before it starts — the
	// client-visible shape of a connection reset.
	ResetPermille int
	// Code5xxPermille short-circuits the round trip with a synthesized
	// 503 Service Unavailable carrying Retry-After (see RetryAfter) —
	// a load-shedding burst without the server's involvement.
	Code5xxPermille int
	// RetryAfter is the synthesized 503's Retry-After value, rounded
	// up to whole seconds (0 selects 1s).
	RetryAfter time.Duration
	// CorruptPutPermille flips one scheduled bit in the body of a blob
	// upload (PUT /v1/blobs/...), exercising the server's
	// content-address verification; other requests are untouched.
	CorruptPutPermille int
	// TruncatePermille cuts the response body short at a scheduled
	// offset — a mid-stream disconnect for NDJSON sweeps, a partial
	// body for batch responses.
	TruncatePermille int
	// SlowPermille stalls the round trip by a scheduled duration in
	// (0, MaxDelay] before it starts.
	SlowPermille int
	// MaxDelay bounds injected stalls (0 disables SlowPermille).
	MaxDelay time.Duration
}

// faultTransport implements http.RoundTripper over a schedule.
type faultTransport struct {
	base http.RoundTripper
	s    *Schedule
	f    TransportFaults
}

// WrapTransport wraps base (nil selects http.DefaultTransport) with
// scheduled HTTP faults. Install it as the Transport of a
// dist.Client's HTTP client.
func (s *Schedule) WrapTransport(base http.RoundTripper, f TransportFaults) http.RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	return &faultTransport{base: base, s: s, f: f}
}

func (t *faultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if d := t.s.Duration("transport.slow", t.f.SlowPermille, t.f.MaxDelay); d > 0 {
		select {
		case <-time.After(d):
		case <-req.Context().Done():
			closeBody(req)
			return nil, req.Context().Err()
		}
	}
	if t.s.Hit("transport.reset", t.f.ResetPermille) {
		closeBody(req)
		return nil, fmt.Errorf("%w: connection reset by peer (%s %s)", ErrInjected, req.Method, req.URL.Path)
	}
	if t.s.Hit("transport.5xx", t.f.Code5xxPermille) {
		closeBody(req)
		return t.synth503(req), nil
	}
	if bit := t.s.Intn("transport.corruptput", t.putCorruptPermille(req), 1<<20); bit >= 0 {
		if err := corruptBody(req, bit); err != nil {
			return nil, err
		}
	}
	cut := t.s.Intn("transport.truncate", t.f.TruncatePermille, 8<<10)

	resp, err := t.base.RoundTrip(req)
	if err != nil || cut < 0 {
		return resp, err
	}
	resp.Body = &truncatingBody{rc: resp.Body, left: 64 + cut}
	return resp, nil
}

// putCorruptPermille narrows blob-upload corruption to blob PUTs; all
// other requests draw with rate 0, keeping the stream aligned.
func (t *faultTransport) putCorruptPermille(req *http.Request) int {
	if req.Method == http.MethodPut && strings.Contains(req.URL.Path, "/v1/blobs/") {
		return t.f.CorruptPutPermille
	}
	return 0
}

// synth503 fabricates the load-shed answer a draining or saturated
// daemon would send.
func (t *faultTransport) synth503(req *http.Request) *http.Response {
	secs := int((t.f.RetryAfter + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	body := "chaos: injected 503 burst"
	h := make(http.Header)
	h.Set("Retry-After", strconv.Itoa(secs))
	h.Set("Content-Type", "text/plain; charset=utf-8")
	return &http.Response{
		Status:        "503 Service Unavailable",
		StatusCode:    http.StatusServiceUnavailable,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        h,
		Body:          io.NopCloser(strings.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}

// corruptBody reads the request body, flips bit (modulo the body's
// size), and reinstalls it. The Content-Length is unchanged — the
// bytes are the same count, just wrong.
func corruptBody(req *http.Request, bit int64) error {
	if req.Body == nil {
		return nil
	}
	data, err := io.ReadAll(req.Body)
	req.Body.Close()
	if err != nil {
		return fmt.Errorf("chaos: corrupt-put read: %w", err)
	}
	if len(data) > 0 {
		i := bit % int64(len(data)*8)
		data[i/8] ^= 1 << (i % 8)
	}
	req.Body = io.NopCloser(bytes.NewReader(data))
	return nil
}

// truncatingBody delivers at most left bytes, then fails the read the
// way a dropped connection does.
type truncatingBody struct {
	rc   io.ReadCloser
	left int64
}

func (b *truncatingBody) Read(p []byte) (int, error) {
	if b.left <= 0 {
		return 0, fmt.Errorf("%w: response body truncated", ErrInjected)
	}
	if int64(len(p)) > b.left {
		p = p[:b.left]
	}
	n, err := b.rc.Read(p)
	b.left -= int64(n)
	return n, err
}

func (b *truncatingBody) Close() error { return b.rc.Close() }

func closeBody(req *http.Request) {
	if req.Body != nil {
		req.Body.Close()
	}
}

// HandlerFaults configures server-side injection for WrapHandler.
type HandlerFaults struct {
	// Code5xxPermille answers a work request (POST — campaign, sweep,
	// optimize) with 500 Internal Server Error before the wrapped
	// handler sees it. GET/HEAD traffic — health probes, blob reads,
	// stats — passes through untouched, so an injected-flapping leaf
	// still answers its health checker and rejoins the ring.
	Code5xxPermille int
}

// WrapHandler wraps h (e.g. a dist.Server) with scheduled
// request-level faults — the leaf-side half of a federation flap
// scenario: the front sees real 500s from a real daemon and must mark
// it down, fail over, and route back when the burst passes.
func (s *Schedule) WrapHandler(h http.Handler, f HandlerFaults) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && s.Hit("handler.5xx", f.Code5xxPermille) {
			http.Error(w, "chaos: injected leaf failure", http.StatusInternalServerError)
			return
		}
		h.ServeHTTP(w, r)
	})
}
