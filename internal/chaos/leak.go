package chaos

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"
)

// Goroutines snapshots the live goroutines as normalized-stack →
// count. Normalization drops the goroutine header (ID and state),
// argument values, and code offsets, keeping only the frame function
// names and call sites — so two goroutines parked in the same place
// compare equal whatever their IDs or stack arguments.
//
// Use with CheckGoroutines to assert a component's Close actually
// releases its workers:
//
//	before := chaos.Goroutines()
//	... start and Close the component ...
//	if err := chaos.CheckGoroutines(before, time.Second); err != nil { t.Fatal(err) }
func Goroutines() map[string]int {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	counts := make(map[string]int)
	for _, g := range strings.Split(string(buf), "\n\n") {
		key := normalizeStack(g)
		if key == "" {
			continue
		}
		counts[key]++
	}
	return counts
}

// normalizeStack reduces one goroutine dump block to its comparable
// key; "" means the goroutine should be ignored (the snapshotting
// goroutine itself, or momentarily running scheduler internals).
func normalizeStack(g string) string {
	lines := strings.Split(strings.TrimSpace(g), "\n")
	if len(lines) < 2 || !strings.HasPrefix(lines[0], "goroutine ") {
		return ""
	}
	if strings.Contains(lines[0], "[running]") {
		// The only goroutine reliably running during the snapshot is the
		// one taking it; transiently running goroutines churn the
		// comparison, and a LEAK is by definition parked, not running.
		return ""
	}
	var frames []string
	for _, ln := range lines[1:] {
		if strings.HasPrefix(ln, "\t") {
			// File:line — keep it, minus the volatile +0x offset.
			if i := strings.LastIndex(ln, " +0x"); i >= 0 {
				ln = ln[:i]
			}
			frames = append(frames, strings.TrimSpace(ln))
			continue
		}
		// Function call — drop the argument values.
		if i := strings.LastIndex(ln, "("); i >= 0 && !strings.HasPrefix(ln, "created by") {
			ln = ln[:i]
		}
		frames = append(frames, ln)
	}
	return strings.Join(frames, "|")
}

// CheckGoroutines compares the current goroutine population against a
// before-snapshot, retrying until it settles or wait elapses: nil when
// every goroutine count is back at (or below) its before level, else
// an error naming the leaked stacks. The retry absorbs benign
// shutdown races — goroutines that are finished but not yet reaped.
func CheckGoroutines(before map[string]int, wait time.Duration) error {
	deadline := time.Now().Add(wait)
	var leaks []string
	for {
		leaks = leaks[:0]
		after := Goroutines()
		for key, n := range after {
			if n > before[key] {
				leaks = append(leaks, fmt.Sprintf("%d leaked at %s", n-before[key], strings.ReplaceAll(key, "|", "\n\t")))
			}
		}
		if len(leaks) == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			sort.Strings(leaks)
			return fmt.Errorf("chaos: %d goroutine stack(s) leaked after %v:\n%s",
				len(leaks), wait, strings.Join(leaks, "\n"))
		}
		time.Sleep(10 * time.Millisecond)
	}
}
