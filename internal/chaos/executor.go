package chaos

import (
	"context"
	"errors"
	"fmt"
	"time"

	"optirand/internal/dist"
	"optirand/internal/engine"
	"optirand/internal/sim"
)

// ErrInjected is the root of every error the chaos layer fabricates;
// test assertions use errors.Is to tell injected failures from real
// ones.
var ErrInjected = errors.New("chaos: injected fault")

// ExecutorFaults configures task-level injection for WrapExecutor.
// All rates are permille (out of 1000) per executed task.
type ExecutorFaults struct {
	// ErrPermille fails the attempt with a transient (retryable)
	// injected error, without running the underlying executor.
	ErrPermille int
	// DupPermille delivers the task twice: the underlying executor
	// runs to completion two times and the second result is returned —
	// the at-least-once delivery a requeue race can produce, which the
	// equivalence contract must absorb (equal tasks yield equal bytes).
	DupPermille int
	// DelayPermille stalls the attempt by a scheduled duration in
	// (0, MaxDelay] before executing, reshuffling completion order —
	// which must not reshuffle results.
	DelayPermille int
	// MaxDelay bounds injected stalls (0 disables DelayPermille).
	MaxDelay time.Duration
}

// WrapExecutor wraps exec with scheduled task-level faults. Decisions
// are drawn in a fixed order per call (delay, error, duplicate), so a
// scenario's schedule is reproducible from its seed.
func (s *Schedule) WrapExecutor(exec dist.Executor, f ExecutorFaults) dist.Executor {
	return func(ctx context.Context, t *engine.Task) (*sim.CampaignResult, error) {
		if d := s.Duration("executor.delay", f.DelayPermille, f.MaxDelay); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		if s.Hit("executor.err", f.ErrPermille) {
			return nil, fmt.Errorf("%w: executor attempt dropped", ErrInjected)
		}
		dup := s.Hit("executor.dup", f.DupPermille)
		res, err := exec(ctx, t)
		if err != nil || !dup {
			return res, err
		}
		return exec(ctx, t)
	}
}
