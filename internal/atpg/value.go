// Package atpg implements deterministic test pattern generation for
// single stuck-at faults: a PODEM-style path-oriented decision
// algorithm over the five-valued D-calculus.
//
// Its role in this library is the hybrid flow of the paper's §5.2: an
// optimized random test detects almost every fault cheaply, and the
// few residual faults get deterministic top-off patterns ("fault
// simulation of optimized patterns can provide nearly complete fault
// coverage in economical time" — with ATPG closing the remainder).
package atpg

import "optirand/internal/circuit"

// Value is one element of the five-valued D-calculus: a pair
// (good-machine value, faulty-machine value) plus "unassigned".
type Value uint8

const (
	// X is unassigned/unknown.
	X Value = iota
	// Zero is 0 in both machines.
	Zero
	// One is 1 in both machines.
	One
	// D is 1 in the good machine, 0 in the faulty machine.
	D
	// Dbar is 0 in the good machine, 1 in the faulty machine.
	Dbar
)

// String renders the conventional symbol.
func (v Value) String() string {
	switch v {
	case X:
		return "X"
	case Zero:
		return "0"
	case One:
		return "1"
	case D:
		return "D"
	case Dbar:
		return "D'"
	}
	return "?"
}

// Good returns the good-machine component (0, 1) and ok=false for X.
func (v Value) Good() (bool, bool) {
	switch v {
	case Zero, Dbar:
		return false, true
	case One, D:
		return true, true
	}
	return false, false
}

// Faulty returns the faulty-machine component and ok=false for X.
func (v Value) Faulty() (bool, bool) {
	switch v {
	case Zero, D:
		return false, true
	case One, Dbar:
		return true, true
	}
	return false, false
}

// IsError reports whether the value carries a fault effect (D or D').
func (v Value) IsError() bool { return v == D || v == Dbar }

// Not complements a value in both machines.
func (v Value) Not() Value {
	switch v {
	case Zero:
		return One
	case One:
		return Zero
	case D:
		return Dbar
	case Dbar:
		return D
	}
	return X
}

// fromPair composes a Value from known good/faulty bits.
func fromPair(good, faulty bool) Value {
	switch {
	case good && faulty:
		return One
	case !good && !faulty:
		return Zero
	case good && !faulty:
		return D
	default:
		return Dbar
	}
}

// and2 is the 5-valued AND. A known 0 on either side dominates X.
func and2(a, b Value) Value {
	if a == Zero || b == Zero {
		return Zero
	}
	if a == X || b == X {
		return X
	}
	ag, _ := a.Good()
	bg, _ := b.Good()
	af, _ := a.Faulty()
	bf, _ := b.Faulty()
	return fromPair(ag && bg, af && bf)
}

// or2 is the 5-valued OR. A known 1 on either side dominates X.
func or2(a, b Value) Value {
	if a == One || b == One {
		return One
	}
	if a == X || b == X {
		return X
	}
	ag, _ := a.Good()
	bg, _ := b.Good()
	af, _ := a.Faulty()
	bf, _ := b.Faulty()
	return fromPair(ag || bg, af || bf)
}

// xor2 is the 5-valued XOR; any X makes the result X.
func xor2(a, b Value) Value {
	if a == X || b == X {
		return X
	}
	ag, _ := a.Good()
	bg, _ := b.Good()
	af, _ := a.Faulty()
	bf, _ := b.Faulty()
	return fromPair(ag != bg, af != bf)
}

// evalGate folds the 5-valued gate function over fanin values.
func evalGate(t circuit.GateType, in []Value) Value {
	switch t {
	case circuit.Buf:
		return in[0]
	case circuit.Not:
		return in[0].Not()
	case circuit.And, circuit.Nand:
		v := One
		for _, x := range in {
			v = and2(v, x)
		}
		if t == circuit.Nand {
			return v.Not()
		}
		return v
	case circuit.Or, circuit.Nor:
		v := Zero
		for _, x := range in {
			v = or2(v, x)
		}
		if t == circuit.Nor {
			return v.Not()
		}
		return v
	case circuit.Xor, circuit.Xnor:
		v := Zero
		for _, x := range in {
			v = xor2(v, x)
		}
		if t == circuit.Xnor {
			return v.Not()
		}
		return v
	case circuit.Const0:
		return Zero
	case circuit.Const1:
		return One
	}
	return X
}
