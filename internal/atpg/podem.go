package atpg

import (
	"fmt"

	"optirand/internal/circuit"
	"optirand/internal/fault"
	"optirand/internal/prng"
)

// Status reports the outcome of a generation attempt.
type Status int

const (
	// Success: a detecting pattern was found.
	Success Status = iota
	// Untestable: the search space was exhausted — the fault is
	// provably redundant.
	Untestable
	// Aborted: the backtrack limit was hit before a decision.
	Aborted
)

// String renders the status.
func (s Status) String() string {
	switch s {
	case Success:
		return "success"
	case Untestable:
		return "untestable"
	case Aborted:
		return "aborted"
	}
	return "?"
}

// Pattern is a (partially specified) test pattern: Bits[i] is the value
// of primary input i, meaningful only where Care[i] is set. Don't-care
// positions may be filled freely (Fill).
type Pattern struct {
	Bits []bool
	Care []bool
}

// Fill returns a fully specified copy with don't-cares drawn from rng
// (pass nil to fill with zeros).
func (p *Pattern) Fill(rng *prng.SplitMix64) []bool {
	out := make([]bool, len(p.Bits))
	for i := range out {
		switch {
		case p.Care[i]:
			out[i] = p.Bits[i]
		case rng != nil:
			out[i] = rng.Bernoulli(0.5)
		}
	}
	return out
}

// Specified counts the care bits.
func (p *Pattern) Specified() int {
	n := 0
	for _, c := range p.Care {
		if c {
			n++
		}
	}
	return n
}

// Generator runs PODEM on one circuit. It is reusable across faults
// and not safe for concurrent use.
type Generator struct {
	// MaxBacktracks bounds the search (default 4096). When the limit
	// is hit the fault is reported Aborted, not Untestable.
	MaxBacktracks int

	c   *circuit.Circuit
	val []Value
	flt fault.Fault

	backtracks int
}

// NewGenerator creates a PODEM generator for c.
func NewGenerator(c *circuit.Circuit) *Generator {
	return &Generator{
		MaxBacktracks: 4096,
		c:             c,
		val:           make([]Value, c.NumGates()),
	}
}

// Generate searches for a pattern detecting f.
func (g *Generator) Generate(f fault.Fault) (*Pattern, Status) {
	g.flt = f
	g.backtracks = 0
	for i := range g.val {
		g.val[i] = X
	}
	assigned := make(map[int]Value) // PI gate -> value
	g.imply(assigned)

	type decision struct {
		pi      int
		value   Value
		flipped bool
	}
	var stack []decision

	for {
		if g.detected() {
			return g.pattern(assigned), Success
		}
		pi, v, ok := g.nextObjective(assigned)
		if ok {
			stack = append(stack, decision{pi: pi, value: v})
			assigned[pi] = v
			g.imply(assigned)
			continue
		}
		// No progress possible: backtrack.
		for {
			if len(stack) == 0 {
				return nil, Untestable
			}
			g.backtracks++
			if g.backtracks > g.MaxBacktracks {
				return nil, Aborted
			}
			top := &stack[len(stack)-1]
			if !top.flipped {
				top.flipped = true
				top.value = top.value.Not()
				assigned[top.pi] = top.value
				g.imply(assigned)
				break
			}
			delete(assigned, top.pi)
			stack = stack[:len(stack)-1]
			g.imply(assigned)
		}
	}
}

// pattern extracts the PI assignment.
func (g *Generator) pattern(assigned map[int]Value) *Pattern {
	p := &Pattern{
		Bits: make([]bool, g.c.NumInputs()),
		Care: make([]bool, g.c.NumInputs()),
	}
	for pi, v := range assigned {
		pos := g.c.InputIndex(pi)
		good, ok := v.Good()
		if pos >= 0 && ok {
			p.Bits[pos] = good
			p.Care[pos] = true
		}
	}
	return p
}

// imply recomputes all values by 5-valued forward simulation with the
// fault inserted. Full recomputation keeps the code simple; the
// circuits here are small enough that PODEM spends its time in search,
// not implication.
func (g *Generator) imply(assigned map[int]Value) {
	c := g.c
	for _, gate := range c.Inputs {
		if v, ok := assigned[gate]; ok {
			g.val[gate] = v
		} else {
			g.val[gate] = X
		}
	}
	scratch := make([]Value, 0, 8)
	for _, id := range c.TopoOrder() {
		gate := &c.Gates[id]
		if gate.Type != circuit.Input {
			scratch = scratch[:0]
			for pin, f := range gate.Fanin {
				v := g.val[f]
				if !g.flt.IsStem() && g.flt.Gate == id && g.flt.Pin == pin {
					v = g.forceBranch(v)
				}
				scratch = append(scratch, v)
			}
			g.val[id] = evalGate(gate.Type, scratch)
		}
		if g.flt.IsStem() && g.flt.Gate == id {
			g.val[id] = g.forceStem(g.val[id])
		}
	}
}

// forceStem applies a stem fault to the computed good value: the
// faulty component is pinned to the stuck value.
func (g *Generator) forceStem(v Value) Value {
	stuck := g.flt.Stuck == 1
	good, ok := v.Good()
	if !ok {
		return X // good machine unknown: activation undecided
	}
	return fromPair(good, stuck)
}

// forceBranch applies a branch fault to the value read by the faulted
// pin.
func (g *Generator) forceBranch(v Value) Value {
	stuck := g.flt.Stuck == 1
	good, ok := v.Good()
	if !ok {
		return X
	}
	return fromPair(good, stuck)
}

// detected reports whether a fault effect has reached a primary output.
func (g *Generator) detected() bool {
	for _, o := range g.c.Outputs {
		if g.val[o].IsError() {
			return true
		}
	}
	return false
}

// nextObjective chooses the next (PI, value) decision: first activate
// the fault, then extend the D-frontier; each objective is backtraced
// through X-valued lines to an unassigned primary input.
func (g *Generator) nextObjective(assigned map[int]Value) (pi int, v Value, ok bool) {
	line, want, ok := g.objective()
	if !ok {
		return 0, X, false
	}
	return g.backtrace(line, want, assigned)
}

// objective returns a (gate line, desired good-machine value) pair.
func (g *Generator) objective() (line int, want bool, ok bool) {
	c := g.c
	site := g.flt.Gate
	if !g.flt.IsStem() {
		// Branch fault: the driven line is the driver's output.
		site = c.Gates[g.flt.Gate].Fanin[g.flt.Pin]
	}
	// Activation: the faulted line's good value must be the opposite
	// of the stuck value. While it is X, that is the objective.
	if _, known := g.val[site].Good(); !known {
		return site, g.flt.Stuck == 0, true
	}
	if !g.activated() {
		return 0, false, false // activation contradicted: dead end
	}
	// Propagation: pick the lowest-level D-frontier gate and demand a
	// non-controlling value on one of its X inputs.
	bestGate, bestPin := -1, -1
	for id := range c.Gates {
		gate := &c.Gates[id]
		if gate.Type == circuit.Input || g.val[id] != X {
			continue
		}
		hasErr, xPin := false, -1
		for pin, f := range gate.Fanin {
			v := g.val[f]
			if !g.flt.IsStem() && g.flt.Gate == id && g.flt.Pin == pin {
				v = g.forceBranch(v)
			}
			if v.IsError() {
				hasErr = true
			} else if v == X && xPin < 0 {
				xPin = pin
			}
		}
		if hasErr && xPin >= 0 {
			if bestGate < 0 || c.Level(id) < c.Level(bestGate) {
				bestGate, bestPin = id, xPin
			}
		}
	}
	if bestGate < 0 {
		return 0, false, false
	}
	gate := &g.c.Gates[bestGate]
	switch gate.Type {
	case circuit.And, circuit.Nand:
		return gate.Fanin[bestPin], true, true
	case circuit.Or, circuit.Nor:
		return gate.Fanin[bestPin], false, true
	default: // XOR/XNOR propagate regardless; pin down the X side input
		return gate.Fanin[bestPin], false, true
	}
}

// activated reports whether the fault site currently carries an error
// or still can (good value matches the activation requirement or X).
func (g *Generator) activated() bool {
	if !g.flt.IsStem() {
		d := g.c.Gates[g.flt.Gate].Fanin[g.flt.Pin]
		v := g.forceBranch(g.val[d])
		return v.IsError() || v == X
	}
	return g.val[g.flt.Gate].IsError() || g.val[g.flt.Gate] == X
}

// backtrace walks an objective through X-valued gates to an unassigned
// primary input, flipping the wanted value through inversions.
func (g *Generator) backtrace(line int, want bool, assigned map[int]Value) (int, Value, bool) {
	c := g.c
	for steps := 0; steps <= c.NumGates(); steps++ {
		gate := &c.Gates[line]
		if gate.Type == circuit.Input {
			if _, done := assigned[line]; done {
				return 0, X, false // objective rests on a decided PI: dead end
			}
			if want {
				return line, One, true
			}
			return line, Zero, true
		}
		if gate.Type == circuit.Const0 || gate.Type == circuit.Const1 {
			return 0, X, false
		}
		if gate.Type.Inverting() {
			want = !want
		}
		// Choose an X-valued fanin to pursue; prefer the lowest level
		// (shortest path to a PI).
		next := -1
		for _, f := range gate.Fanin {
			if g.val[f] == X {
				if next < 0 || c.Level(f) < c.Level(next) {
					next = f
				}
			}
		}
		if next < 0 {
			return 0, X, false
		}
		line = next
	}
	return 0, X, false
}

// Result summarizes a batch run over a fault list.
type Result struct {
	Patterns   []*Pattern
	PerFault   []Status
	Detected   int
	Redundant  int
	AbortCount int
}

// GenerateAll runs PODEM for every fault, returning per-fault status
// and the set of generated patterns.
func GenerateAll(c *circuit.Circuit, faults []fault.Fault, maxBacktracks int) *Result {
	g := NewGenerator(c)
	if maxBacktracks > 0 {
		g.MaxBacktracks = maxBacktracks
	}
	res := &Result{PerFault: make([]Status, len(faults))}
	for i, f := range faults {
		p, st := g.Generate(f)
		res.PerFault[i] = st
		switch st {
		case Success:
			res.Patterns = append(res.Patterns, p)
			res.Detected++
		case Untestable:
			res.Redundant++
		case Aborted:
			res.AbortCount++
		}
	}
	return res
}

// String summarizes the batch outcome.
func (r *Result) String() string {
	return fmt.Sprintf("atpg: %d detected, %d redundant, %d aborted",
		r.Detected, r.Redundant, r.AbortCount)
}
