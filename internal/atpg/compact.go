package atpg

import (
	"optirand/internal/circuit"
	"optirand/internal/fault"
	"optirand/internal/sim"
)

// Compact performs reverse-order test-set compaction: patterns are
// fault-simulated in reverse generation order with fault dropping, and
// patterns that detect no still-undetected fault are discarded. Because
// later PODEM patterns target the residue of earlier ones, reverse
// order retains the specific late patterns and drops early ones whose
// faults they cover incidentally — the classic static compaction pass.
//
// Patterns are fully specified before simulation via Fill(nil)
// (zero-filled don't-cares), matching how a tester would store them.
// The returned indices (into patterns) are the kept set, in original
// order; detected reports how many of the faults the kept set covers.
func Compact(c *circuit.Circuit, faults []fault.Fault, patterns []*Pattern) (keep []int, detected int) {
	if len(patterns) == 0 {
		return nil, 0
	}
	filled := make([][]bool, len(patterns))
	for i, p := range patterns {
		filled[i] = p.Fill(nil)
	}
	covered := make([]bool, len(faults))
	for i := len(patterns) - 1; i >= 0; i-- {
		useful := false
		for fi, f := range faults {
			if covered[fi] {
				continue
			}
			if sim.DetectsScalar(c, f, filled[i]) {
				covered[fi] = true
				detected++
				useful = true
			}
		}
		if useful {
			keep = append(keep, i)
		}
	}
	// Restore original order.
	for l, r := 0, len(keep)-1; l < r; l, r = l+1, r-1 {
		keep[l], keep[r] = keep[r], keep[l]
	}
	return keep, detected
}
