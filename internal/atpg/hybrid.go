package atpg

import (
	"optirand/internal/circuit"
	"optirand/internal/fault"
	"optirand/internal/prng"
	"optirand/internal/sim"
)

// HybridResult reports the §5.2 hybrid flow: weighted random patterns
// first, deterministic top-off patterns for the residual faults.
type HybridResult struct {
	// RandomPatterns / RandomDetected summarize the random phase.
	RandomPatterns int
	RandomDetected int
	// TopOffPatterns is the number of deterministic patterns added;
	// TopOffDetected the number of residual faults they detect
	// (verified by simulation, not just claimed by the generator).
	TopOffPatterns int
	TopOffDetected int
	// Redundant counts residual faults PODEM proved untestable;
	// Aborted counts faults abandoned at the backtrack limit.
	Redundant int
	Aborted   int
	// TotalFaults is the campaign fault count; Coverage the final
	// detected fraction over the non-redundant faults.
	TotalFaults int
	// Patterns holds the deterministic top-off patterns.
	Patterns []*Pattern
}

// Coverage returns detected / (total - proven redundant).
func (h *HybridResult) Coverage() float64 {
	den := h.TotalFaults - h.Redundant
	if den <= 0 {
		return 1
	}
	return float64(h.RandomDetected+h.TopOffDetected) / float64(den)
}

// TopOff runs nRandom weighted random patterns, then PODEM on every
// fault the random phase missed, and verifies each generated pattern by
// simulation. Don't-care bits of deterministic patterns are filled
// randomly (they often detect further residual faults for free, which
// the verification pass credits).
func TopOff(c *circuit.Circuit, faults []fault.Fault, weights []float64,
	nRandom int, seed uint64, maxBacktracks int) *HybridResult {

	res := &HybridResult{TotalFaults: len(faults)}
	camp := sim.RunCampaign(c, faults, weights, nRandom, seed, 0)
	res.RandomPatterns = camp.Patterns
	res.RandomDetected = camp.Detected

	var residual []fault.Fault
	for i, fd := range camp.FirstDetected {
		if fd == 0 {
			residual = append(residual, faults[i])
		}
	}
	if len(residual) == 0 {
		return res
	}

	g := NewGenerator(c)
	if maxBacktracks > 0 {
		g.MaxBacktracks = maxBacktracks
	}
	rng := prng.New(seed ^ 0xa5a5a5a5a5a5a5a5)
	detected := make([]bool, len(residual))

	for i, f := range residual {
		if detected[i] {
			continue
		}
		p, st := g.Generate(f)
		switch st {
		case Untestable:
			res.Redundant++
			continue
		case Aborted:
			res.Aborted++
			continue
		}
		res.Patterns = append(res.Patterns, p)
		res.TopOffPatterns++
		bits := p.Fill(rng)
		// Credit every residual fault this pattern detects.
		for j, fj := range residual {
			if !detected[j] && sim.DetectsScalar(c, fj, bits) {
				detected[j] = true
				res.TopOffDetected++
			}
		}
		if !detected[i] && st == Success {
			// The generator claimed success but simulation disagrees —
			// that would be a soundness bug; surface it loudly.
			panic("atpg: generated pattern does not detect its target fault: " +
				f.Describe(c))
		}
	}
	return res
}
