package atpg

import (
	"testing"

	"optirand/internal/bench"
	"optirand/internal/circuit"
	"optirand/internal/fault"
	"optirand/internal/gen"
	"optirand/internal/prng"
	"optirand/internal/sim"
)

const c17Src = `
# name: c17
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
`

func mustC17(t *testing.T) *circuit.Circuit {
	t.Helper()
	c, err := bench.ParseString(c17Src)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestValueAlgebra checks the 5-valued tables against the pairwise
// (good, faulty) semantics.
func TestValueAlgebra(t *testing.T) {
	known := []Value{Zero, One, D, Dbar}
	for _, a := range known {
		for _, b := range known {
			ag, _ := a.Good()
			bg, _ := b.Good()
			af, _ := a.Faulty()
			bf, _ := b.Faulty()
			if got := and2(a, b); got != fromPair(ag && bg, af && bf) {
				t.Errorf("and2(%v,%v) = %v", a, b, got)
			}
			if got := or2(a, b); got != fromPair(ag || bg, af || bf) {
				t.Errorf("or2(%v,%v) = %v", a, b, got)
			}
			if got := xor2(a, b); got != fromPair(ag != bg, af != bf) {
				t.Errorf("xor2(%v,%v) = %v", a, b, got)
			}
		}
		if a.Not().Not() != a {
			t.Errorf("double negation of %v", a)
		}
	}
	// X dominance rules.
	if and2(X, Zero) != Zero || and2(Zero, X) != Zero {
		t.Error("AND with known 0 must be 0")
	}
	if and2(X, One) != X {
		t.Error("AND with X and 1 must stay X")
	}
	if or2(X, One) != One || or2(One, X) != One {
		t.Error("OR with known 1 must be 1")
	}
	if or2(X, Zero) != X {
		t.Error("OR with X and 0 must stay X")
	}
	if xor2(X, One) != X || xor2(D, X) != X {
		t.Error("XOR with X must be X")
	}
	if X.Not() != X {
		t.Error("NOT X must be X")
	}
	if !D.IsError() || !Dbar.IsError() || One.IsError() {
		t.Error("IsError wrong")
	}
}

// TestC17AllFaultsTestable: c17 is fully testable; PODEM must find a
// verified pattern for every collapsed fault.
func TestC17AllFaultsTestable(t *testing.T) {
	c := mustC17(t)
	u := fault.New(c)
	g := NewGenerator(c)
	for _, f := range u.Reps {
		p, st := g.Generate(f)
		if st != Success {
			t.Errorf("fault %v: status %v", f.Describe(c), st)
			continue
		}
		bits := p.Fill(nil) // zero-fill the don't-cares
		if !sim.DetectsScalar(c, f, bits) {
			t.Errorf("fault %v: pattern %v does not detect", f.Describe(c), bits)
		}
		// Any fill must detect: also verify with ones-fill.
		ones := make([]bool, len(p.Bits))
		for i := range ones {
			if p.Care[i] {
				ones[i] = p.Bits[i]
			} else {
				ones[i] = true
			}
		}
		if !sim.DetectsScalar(c, f, ones) {
			t.Errorf("fault %v: ones-filled pattern does not detect", f.Describe(c))
		}
	}
}

// TestRedundantFaultProven: a fault in logic masked by reconvergence
// must be proven untestable, not aborted.
func TestRedundantFaultProven(t *testing.T) {
	// o = (a AND b) OR (a AND NOT b) OR a  ==  a. The first two terms
	// are functionally dominated by the third; e.g. t1 s-a-0 is
	// undetectable at o.
	b := circuit.NewBuilder("red")
	a := b.Input("a")
	x := b.Input("b")
	nb := b.Not("nb", x)
	t1 := b.And("t1", a, x)
	t2 := b.And("t2", a, nb)
	o := b.Or("o", t1, t2, a)
	b.Output("o", o)
	c := b.MustBuild()
	g := NewGenerator(c)
	_, st := g.Generate(fault.Fault{Gate: t1, Pin: fault.StemPin, Stuck: 0})
	if st != Untestable {
		t.Errorf("t1 s-a-0: status %v, want untestable", st)
	}
	// A testable fault in the same circuit still succeeds.
	p, st := g.Generate(fault.Fault{Gate: a, Pin: fault.StemPin, Stuck: 0})
	if st != Success {
		t.Fatalf("a s-a-0: status %v", st)
	}
	if !sim.DetectsScalar(c, fault.Fault{Gate: a, Pin: fault.StemPin, Stuck: 0}, p.Fill(nil)) {
		t.Error("a s-a-0 pattern does not detect")
	}
}

// TestGenerateMatchesSimulation is the soundness property on random
// circuits: every Success pattern detects its fault under arbitrary
// don't-care fill; every Untestable verdict is confirmed by exhaustive
// enumeration.
func TestGenerateMatchesSimulation(t *testing.T) {
	rng := prng.New(77)
	for trial := 0; trial < 12; trial++ {
		c := randCircuit(rng, 5, 14)
		u := fault.New(c)
		g := NewGenerator(c)
		fillRng := prng.New(uint64(trial))
		for _, f := range u.Reps {
			p, st := g.Generate(f)
			switch st {
			case Success:
				for k := 0; k < 4; k++ {
					bits := p.Fill(fillRng)
					if !sim.DetectsScalar(c, f, bits) {
						t.Fatalf("trial %d fault %v: fill %d not detecting",
							trial, f.Describe(c), k)
					}
				}
			case Untestable:
				// Exhaustive confirmation.
				n := c.NumInputs()
				in := make([]bool, n)
				for v := 0; v < 1<<uint(n); v++ {
					for i := range in {
						in[i] = v>>uint(i)&1 == 1
					}
					if sim.DetectsScalar(c, f, in) {
						t.Fatalf("trial %d fault %v: claimed untestable but pattern %b detects",
							trial, f.Describe(c), v)
					}
				}
			case Aborted:
				// Allowed (bounded search), but should be rare on
				// 5-input circuits with the default limit.
			}
		}
	}
}

// TestGenerateOnComparator: PODEM must crack the 2^-16 equality cone
// instantly — the deterministic counterpart of the paper's story.
func TestGenerateOnComparator(t *testing.T) {
	b := circuit.NewBuilder("eq16")
	var xn []int
	as := b.Inputs("a", 16)
	bs := b.Inputs("b", 16)
	for i := 0; i < 16; i++ {
		xn = append(xn, b.Xnor("", as[i], bs[i]))
	}
	eq := b.And("eq", xn...)
	b.Output("eq", eq)
	c := b.MustBuild()
	g := NewGenerator(c)
	f := fault.Fault{Gate: eq, Pin: fault.StemPin, Stuck: 0}
	p, st := g.Generate(f)
	if st != Success {
		t.Fatalf("status %v", st)
	}
	if !sim.DetectsScalar(c, f, p.Fill(nil)) {
		t.Error("pattern does not detect eq s-a-0")
	}
}

// TestGenerateAllOnS1: batch generation over the real S1 comparator —
// every collapsed fault is either detected or aborted (none should be
// proven redundant; the LSB-slice simplification removed them).
func TestGenerateAllOnS1(t *testing.T) {
	c := gen.S1Comparator()
	u := fault.New(c)
	res := GenerateAll(c, u.Reps, 2000)
	if res.Redundant != 0 {
		t.Errorf("S1 reports %d redundant faults, expected 0", res.Redundant)
	}
	if res.Detected < len(u.Reps)*9/10 {
		t.Errorf("S1: only %d/%d faults got patterns", res.Detected, len(u.Reps))
	}
	if res.String() == "" {
		t.Error("empty result summary")
	}
}

// TestTopOffHybridS1: the §5.2 hybrid flow — optimized random phase
// plus deterministic top-off — must reach full coverage of the
// non-redundant faults on S1 with a tiny deterministic pattern count.
func TestTopOffHybridS1(t *testing.T) {
	c := gen.S1Comparator()
	u := fault.New(c)
	w := make([]float64, c.NumInputs())
	for i := range w {
		w[i] = 0.5
	}
	res := TopOff(c, u.Reps, w, 2000, 3, 4096)
	if res.Aborted > 0 {
		t.Errorf("%d aborted faults", res.Aborted)
	}
	if res.Coverage() < 1.0 {
		t.Errorf("hybrid coverage %.4f, want 1.0 (detected %d+%d of %d, %d redundant)",
			res.Coverage(), res.RandomDetected, res.TopOffDetected,
			res.TotalFaults, res.Redundant)
	}
	if res.TopOffPatterns == 0 {
		t.Error("expected deterministic top-off patterns for the deep cascade faults")
	}
	// Conventional random at 2000 patterns leaves many faults behind;
	// the whole point of top-off is covering them with few patterns.
	if res.TopOffPatterns >= res.TotalFaults/2 {
		t.Errorf("top-off used %d patterns for %d faults — no compaction at all",
			res.TopOffPatterns, res.TotalFaults)
	}
}

func TestPatternHelpers(t *testing.T) {
	p := &Pattern{Bits: []bool{true, false, true}, Care: []bool{true, false, true}}
	if p.Specified() != 2 {
		t.Errorf("Specified = %d", p.Specified())
	}
	zero := p.Fill(nil)
	if zero[0] != true || zero[1] != false || zero[2] != true {
		t.Errorf("zero fill = %v", zero)
	}
	if Success.String() != "success" || Untestable.String() != "untestable" ||
		Aborted.String() != "aborted" || Status(9).String() != "?" {
		t.Error("Status.String wrong")
	}
	if Value(9).String() != "?" || D.String() != "D" || Dbar.String() != "D'" {
		t.Error("Value.String wrong")
	}
}

func randCircuit(rng *prng.SplitMix64, nIn, nGates int) *circuit.Circuit {
	b := circuit.NewBuilder("rand")
	ids := b.Inputs("x", nIn)
	types := []circuit.GateType{circuit.And, circuit.Nand, circuit.Or,
		circuit.Nor, circuit.Xor, circuit.Xnor, circuit.Not}
	for i := 0; i < nGates; i++ {
		ty := types[rng.Intn(len(types))]
		if ty == circuit.Not {
			ids = append(ids, b.Add(ty, "", ids[rng.Intn(len(ids))]))
			continue
		}
		fan := make([]int, 2+rng.Intn(2))
		for j := range fan {
			fan[j] = ids[rng.Intn(len(ids))]
		}
		ids = append(ids, b.Add(ty, "", fan...))
	}
	b.Output("", ids[len(ids)-1])
	b.Output("", ids[len(ids)-2])
	return b.MustBuild()
}
