package atpg

import (
	"testing"

	"optirand/internal/fault"
	"optirand/internal/sim"
)

// TestCompactPreservesCoverage: compaction must never lose coverage,
// and must actually drop patterns when the set is redundant.
func TestCompactPreservesCoverage(t *testing.T) {
	c := mustC17(t)
	u := fault.New(c)
	full := GenerateAll(c, u.Reps, 0)
	if full.Detected != len(u.Reps) {
		t.Fatalf("c17 not fully covered by ATPG: %v", full)
	}
	// Duplicate the pattern set to guarantee redundancy.
	doubled := append(append([]*Pattern{}, full.Patterns...), full.Patterns...)
	keep, detected := Compact(c, u.Reps, doubled)
	if detected != len(u.Reps) {
		t.Errorf("compaction lost coverage: %d/%d", detected, len(u.Reps))
	}
	if len(keep) >= len(doubled) {
		t.Errorf("compaction kept all %d patterns of an obviously redundant set", len(keep))
	}
	// Verify the kept set really covers everything, via simulation.
	covered := make([]bool, len(u.Reps))
	for _, ki := range keep {
		bits := doubled[ki].Fill(nil)
		for fi, f := range u.Reps {
			if !covered[fi] && sim.DetectsScalar(c, f, bits) {
				covered[fi] = true
			}
		}
	}
	for fi, ok := range covered {
		if !ok {
			t.Errorf("fault %v uncovered after compaction", u.Reps[fi].Describe(c))
		}
	}
}

func TestCompactKeepsOrder(t *testing.T) {
	c := mustC17(t)
	u := fault.New(c)
	res := GenerateAll(c, u.Reps, 0)
	keep, _ := Compact(c, u.Reps, res.Patterns)
	for i := 1; i < len(keep); i++ {
		if keep[i-1] >= keep[i] {
			t.Fatalf("keep indices not ascending: %v", keep)
		}
	}
}

func TestCompactEmpty(t *testing.T) {
	c := mustC17(t)
	u := fault.New(c)
	keep, detected := Compact(c, u.Reps, nil)
	if keep != nil || detected != 0 {
		t.Errorf("Compact(empty) = %v, %d", keep, detected)
	}
}
