package gen

import (
	"sort"

	"optirand/internal/circuit"
)

// Benchmark describes one built-in evaluation circuit and the paper
// data it reproduces.
type Benchmark struct {
	// Name is the identifier used by the CLIs ("s1", "c2670", …).
	Name string
	// PaperName is the circuit name used in the paper's tables.
	PaperName string
	// Description summarizes function and provenance.
	Description string
	// Build constructs the netlist.
	Build func() *circuit.Circuit
	// PaperT1 is the required conventional test length the paper's
	// Table 1 reports for the original circuit.
	PaperT1 float64
	// Marked reports whether the row carries the paper's (*) marker:
	// circuits whose conventional random test is impractically long.
	Marked bool
	// PaperT3 is the optimized test length from Table 3 (0 when the
	// paper does not report one).
	PaperT3 float64
	// PaperCov2 and PaperCov4 are the simulated fault coverages (%) of
	// Tables 2 and 4, with SimPatterns the pattern count used there
	// (0 when not reported).
	PaperCov2, PaperCov4 float64
	SimPatterns          int
}

var registry = []Benchmark{
	{
		Name: "s1", PaperName: "S1",
		Description: "24-bit magnitude comparator from six SN7485 slices (exact reconstruction)",
		Build:       S1Comparator,
		PaperT1:     5.6e8, Marked: true, PaperT3: 3.5e4,
		PaperCov2: 80.7, PaperCov4: 99.7, SimPatterns: 12000,
	},
	{
		Name: "s2", PaperName: "S2",
		Description: "combinational part of a 32-bit divider (32/16 restoring array)",
		Build:       S2Divider,
		PaperT1:     2.0e11, Marked: true, PaperT3: 4.0e4,
		PaperCov2: 77.2, PaperCov4: 99.7, SimPatterns: 12000,
	},
	{
		Name: "c432", PaperName: "C432",
		Description: "27-channel priority interrupt controller (functional analogue)",
		Build:       C432Like,
		PaperT1:     2.5e3,
	},
	{
		Name: "c499", PaperName: "C499",
		Description: "32-bit single-error-correcting circuit (functional analogue)",
		Build:       C499Like,
		PaperT1:     1.9e3,
	},
	{
		Name: "c880", PaperName: "C880",
		Description: "8-bit ALU (functional analogue)",
		Build:       C880Like,
		PaperT1:     3.7e4,
	},
	{
		Name: "c1355", PaperName: "C1355",
		Description: "C499 with XORs expanded to 4-NAND blocks (functional analogue)",
		Build:       C1355Like,
		PaperT1:     2.2e6,
	},
	{
		Name: "c1908", PaperName: "C1908",
		Description: "16-bit SEC/DED circuit with decode output (functional analogue)",
		Build:       C1908Like,
		PaperT1:     6.2e4,
	},
	{
		Name: "c2670", PaperName: "C2670",
		Description: "12-bit ALU + 20-bit gated comparator (functional analogue)",
		Build:       C2670Like,
		PaperT1:     1.1e7, Marked: true, PaperT3: 6.9e4,
		PaperCov2: 88.0, PaperCov4: 99.7, SimPatterns: 4000,
	},
	{
		Name: "c3540", PaperName: "C3540",
		Description: "16-bit BCD ALU with decimal-adjust chain (functional analogue)",
		Build:       C3540Like,
		PaperT1:     2.3e6,
	},
	{
		Name: "c5315", PaperName: "C5315",
		Description: "dual 9-bit enabled ALU (functional analogue)",
		Build:       C5315Like,
		PaperT1:     5.3e4,
	},
	{
		Name: "c6288", PaperName: "C6288",
		Description: "16×16 array multiplier (functional analogue)",
		Build:       C6288Like,
		PaperT1:     1.9e3,
	},
	{
		Name: "c7552", PaperName: "C7552",
		Description: "32-bit adder/comparator with command decode (functional analogue)",
		Build:       C7552Like,
		PaperT1:     4.9e11, Marked: true, PaperT3: 1.2e5,
		PaperCov2: 93.9, PaperCov4: 98.9, SimPatterns: 4096,
	},
}

// Benchmarks returns all built-in evaluation circuits in the paper's
// Table 1 order.
func Benchmarks() []Benchmark {
	out := make([]Benchmark, len(registry))
	copy(out, registry)
	return out
}

// Marked returns only the (*) circuits: the four the paper optimizes in
// Tables 2–5.
func Marked() []Benchmark {
	var out []Benchmark
	for _, b := range registry {
		if b.Marked {
			out = append(out, b)
		}
	}
	return out
}

// ByName looks a benchmark up by its CLI name (case-sensitive).
func ByName(name string) (Benchmark, bool) {
	for _, b := range registry {
		if b.Name == name {
			return b, true
		}
	}
	return Benchmark{}, false
}

// Names returns the sorted benchmark names.
func Names() []string {
	names := make([]string, len(registry))
	for i, b := range registry {
		names[i] = b.Name
	}
	sort.Strings(names)
	return names
}
