package gen

import "optirand/internal/circuit"

// cascade bundles the three chain signals between SN7485 slices.
type cascade struct {
	gt, eq, lt int
}

// comparator7485 instantiates the gate-level logic of one TI SN7485
// 4-bit magnitude comparator [TI80]: per-bit XNOR equality terms and the
// priority AND-OR networks
//
//	A>B = A3·!B3 + x3·A2·!B2 + x3·x2·A1·!B1 + x3·x2·x1·A0·!B0 + x3·x2·x1·x0·I(A>B)
//	A<B = symmetric
//	A=B = x3·x2·x1·x0·I(A=B)
//
// a and x are 4-bit operands, LSB first. casc == nil instantiates the
// least significant slice with the constant cascade (I(A>B)=0, I(A=B)=1,
// I(A<B)=0) already propagated — the redundancy removal the paper
// mentions ("where some redundancies are removed"): tying constants
// would create provably undetectable faults.
func comparator7485(b *circuit.Builder, prefix string, a, x []int, casc *cascade) cascade {
	if len(a) != 4 || len(x) != 4 {
		panic("gen: comparator7485: operands must be 4 bits")
	}
	// Per-bit equality in the datasheet's AND-OR-INVERT form:
	// x_i = NOR(a·b', a'·b), with explicit input inverters.
	eq := make([]int, 4)
	na := make([]int, 4)
	nb := make([]int, 4)
	for i := 0; i < 4; i++ {
		na[i] = b.Not(nm(prefix, "na", i), a[i])
		nb[i] = b.Not(nm(prefix, "nb", i), x[i])
		t1 := b.And(nm(prefix, "xa", i), a[i], nb[i])
		t2 := b.And(nm(prefix, "xb", i), na[i], x[i])
		eq[i] = b.Nor(nm(prefix, "x", i), t1, t2)
	}

	// Priority terms, MSB (bit 3) first.
	gtTerms := []int{
		b.And(prefix+".gt3", a[3], nb[3]),
		b.And(prefix+".gt2", eq[3], a[2], nb[2]),
		b.And(prefix+".gt1", eq[3], eq[2], a[1], nb[1]),
		b.And(prefix+".gt0", eq[3], eq[2], eq[1], a[0], nb[0]),
	}
	ltTerms := []int{
		b.And(prefix+".lt3", na[3], x[3]),
		b.And(prefix+".lt2", eq[3], na[2], x[2]),
		b.And(prefix+".lt1", eq[3], eq[2], na[1], x[1]),
		b.And(prefix+".lt0", eq[3], eq[2], eq[1], na[0], x[0]),
	}
	allEq := b.And(prefix+".alleq", eq[3], eq[2], eq[1], eq[0])

	if casc != nil {
		gtTerms = append(gtTerms, b.And(prefix+".gtc", allEq, casc.gt))
		ltTerms = append(ltTerms, b.And(prefix+".ltc", allEq, casc.lt))
	}
	out := cascade{
		gt: b.Or(prefix+".gt", gtTerms...),
		lt: b.Or(prefix+".lt", ltTerms...),
	}
	if casc != nil {
		out.eq = b.And(prefix+".eq", allEq, casc.eq)
	} else {
		out.eq = allEq
	}
	return out
}

// S1Comparator builds the paper's circuit S1: a 24-bit magnitude
// comparator constructed from six SN7485 slices in ripple cascade, the
// least significant slice simplified (redundancies removed). Inputs are
// A0..A23 then B0..B23 (LSB first); outputs are AgtB, AeqB, AltB.
//
// Its A=B path requires all 24 bit-equalities simultaneously, giving the
// hardest faults a detection probability of 2^-24 under equiprobable
// patterns — the circuit the paper uses to motivate optimized input
// probabilities (Table 1: N ≈ 5.6e8).
func S1Comparator() *circuit.Circuit {
	b := circuit.NewBuilder("S1")
	a := b.Inputs("A", 24)
	x := b.Inputs("B", 24)
	var casc *cascade
	for s := 0; s < 6; s++ {
		out := comparator7485(b, nm("", "u", s), a[4*s:4*s+4], x[4*s:4*s+4], casc)
		casc = &out
	}
	b.Output("AgtB", casc.gt)
	b.Output("AeqB", casc.eq)
	b.Output("AltB", casc.lt)
	return b.MustBuild()
}

// S1Reference is the functional model of S1.
func S1Reference(a, x uint32) (gt, eq, lt bool) {
	a &= 1<<24 - 1
	x &= 1<<24 - 1
	return a > x, a == x, a < x
}
