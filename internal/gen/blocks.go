// Package gen generates the evaluation circuits of the paper: the S1
// 24-bit comparator (six SN7485 slices, built exactly as described), the
// S2 combinational array divider, and functional analogues of the ten
// ISCAS'85 benchmarks C432–C7552 (the original netlists were distributed
// on tape and are not reproducible offline; see DESIGN.md §3 for the
// substitution rationale). Every generator has a pure-Go reference model
// against which the gate-level netlist is property-tested.
package gen

import (
	"fmt"

	"optirand/internal/circuit"
)

// nm builds hierarchical signal names: nm("u3", "sum", 4) = "u3.sum4".
func nm(prefix, base string, idx int) string {
	if prefix == "" {
		return fmt.Sprintf("%s%d", base, idx)
	}
	return fmt.Sprintf("%s.%s%d", prefix, base, idx)
}

// halfAdder returns (sum, carry) of two bits.
func halfAdder(b *circuit.Builder, prefix string, a, x int) (sum, carry int) {
	sum = b.Xor(prefix+".s", a, x)
	carry = b.And(prefix+".c", a, x)
	return sum, carry
}

// fullAdder returns (sum, carry) of three bits, in the classic 5-gate
// two-half-adder form.
func fullAdder(b *circuit.Builder, prefix string, a, x, cin int) (sum, carry int) {
	axs := b.Xor(prefix+".ax", a, x)
	sum = b.Xor(prefix+".s", axs, cin)
	c1 := b.And(prefix+".c1", a, x)
	c2 := b.And(prefix+".c2", axs, cin)
	carry = b.Or(prefix+".c", c1, c2)
	return sum, carry
}

// rippleAdder adds two equal-width vectors with carry-in, returning the
// sum vector and the carry-out. Bit 0 is least significant.
func rippleAdder(b *circuit.Builder, prefix string, a, x []int, cin int) (sum []int, cout int) {
	if len(a) != len(x) {
		panic("gen: rippleAdder: width mismatch")
	}
	sum = make([]int, len(a))
	c := cin
	for i := range a {
		sum[i], c = fullAdder(b, nm(prefix, "fa", i), a[i], x[i], c)
	}
	return sum, c
}

// rippleSubtractor computes a - x as a + ^x + 1 (two's complement),
// returning the difference and the carry-out (1 means no borrow, i.e.
// a >= x for unsigned operands).
func rippleSubtractor(b *circuit.Builder, prefix string, a, x []int) (diff []int, noBorrow int) {
	inv := make([]int, len(x))
	for i := range x {
		inv[i] = b.Not(nm(prefix, "nx", i), x[i])
	}
	one := b.Const1(prefix + ".one")
	return rippleAdder(b, prefix, a, inv, one)
}

// mux2 returns sel ? d1 : d0 in AND-OR-NOT form.
func mux2(b *circuit.Builder, prefix string, sel, d0, d1 int) int {
	ns := b.Not(prefix+".ns", sel)
	t0 := b.And(prefix+".t0", ns, d0)
	t1 := b.And(prefix+".t1", sel, d1)
	return b.Or(prefix+".o", t0, t1)
}

// mux2v muxes two equal-width vectors.
func mux2v(b *circuit.Builder, prefix string, sel int, d0, d1 []int) []int {
	if len(d0) != len(d1) {
		panic("gen: mux2v: width mismatch")
	}
	out := make([]int, len(d0))
	for i := range d0 {
		out[i] = mux2(b, nm(prefix, "m", i), sel, d0[i], d1[i])
	}
	return out
}

// reduce builds a balanced tree of 2-input gates of the given type.
func reduce(b *circuit.Builder, prefix string, t circuit.GateType, in []int) int {
	if len(in) == 0 {
		panic("gen: reduce: empty input list")
	}
	level := 0
	for len(in) > 1 {
		var next []int
		for i := 0; i+1 < len(in); i += 2 {
			next = append(next, b.Add(t, fmt.Sprintf("%s.l%dn%d", prefix, level, i/2), in[i], in[i+1]))
		}
		if len(in)%2 == 1 {
			next = append(next, in[len(in)-1])
		}
		in = next
		level++
	}
	return in[0]
}

func andTree(b *circuit.Builder, prefix string, in []int) int {
	return reduce(b, prefix, circuit.And, in)
}

func orTree(b *circuit.Builder, prefix string, in []int) int {
	return reduce(b, prefix, circuit.Or, in)
}

func xorTree(b *circuit.Builder, prefix string, in []int) int {
	return reduce(b, prefix, circuit.Xor, in)
}

// xorNand builds a 2-input XOR from four NANDs — the expansion that
// turns the C499 analogue into the C1355 analogue.
func xorNand(b *circuit.Builder, prefix string, a, x int) int {
	n1 := b.Nand(prefix+".n1", a, x)
	n2 := b.Nand(prefix+".n2", a, n1)
	n3 := b.Nand(prefix+".n3", n1, x)
	return b.Nand(prefix+".n4", n2, n3)
}

// xorTreeNand is xorTree with every XOR expanded to four NANDs.
func xorTreeNand(b *circuit.Builder, prefix string, in []int) int {
	if len(in) == 0 {
		panic("gen: xorTreeNand: empty input list")
	}
	level := 0
	for len(in) > 1 {
		var next []int
		for i := 0; i+1 < len(in); i += 2 {
			next = append(next, xorNand(b, fmt.Sprintf("%s.l%dn%d", prefix, level, i/2), in[i], in[i+1]))
		}
		if len(in)%2 == 1 {
			next = append(next, in[len(in)-1])
		}
		in = next
		level++
	}
	return in[0]
}

// eqVector returns the AND of bitwise XNORs: a == x.
func eqVector(b *circuit.Builder, prefix string, a, x []int) int {
	if len(a) != len(x) {
		panic("gen: eqVector: width mismatch")
	}
	xn := make([]int, len(a))
	for i := range a {
		xn[i] = b.Xnor(nm(prefix, "eq", i), a[i], x[i])
	}
	return andTree(b, prefix+".and", xn)
}

// decoder builds a full binary decoder: out[k] is high iff sel == k.
func decoder(b *circuit.Builder, prefix string, sel []int) []int {
	n := len(sel)
	inv := make([]int, n)
	for i, s := range sel {
		inv[i] = b.Not(nm(prefix, "n", i), s)
	}
	out := make([]int, 1<<uint(n))
	for k := range out {
		terms := make([]int, n)
		for i := 0; i < n; i++ {
			if k>>uint(i)&1 == 1 {
				terms[i] = sel[i]
			} else {
				terms[i] = inv[i]
			}
		}
		out[k] = andTree(b, nm(prefix, "d", k), terms)
	}
	return out
}

// bitsOf converts an unsigned value to bools, LSB first.
func bitsOf(v uint64, n int) []bool {
	out := make([]bool, n)
	for i := 0; i < n; i++ {
		out[i] = v>>uint(i)&1 == 1
	}
	return out
}

// valOf converts bools (LSB first) to an unsigned value.
func valOf(bits []bool) uint64 {
	var v uint64
	for i, b := range bits {
		if b {
			v |= 1 << uint(i)
		}
	}
	return v
}
