package gen

import "optirand/internal/circuit"

// C432Like builds the functional analogue of ISCAS'85 C432, a 27-channel
// priority interrupt controller: three groups of nine request lines
// share nine channel-enable lines; within a group the lowest-numbered
// active channel wins; group 0 has priority over group 1 over group 2.
// Outputs: per-group "any grant" plus the 4-bit encoded channel of the
// winning group (7 outputs, as in the original). The longest
// priority-inhibit chains give ≈2^-9 hard faults (Table 1: N ≈ 2.5e3).
func C432Like() *circuit.Circuit {
	b := circuit.NewBuilder("c432like")
	req := b.Inputs("R", 27)
	en := b.Inputs("E", 9)

	grants := make([][]int, 3) // grants[g][k]
	anys := make([]int, 3)
	for g := 0; g < 3; g++ {
		active := make([]int, 9)
		for k := 0; k < 9; k++ {
			active[k] = b.And(nm("", "act", g*9+k), req[g*9+k], en[k])
		}
		grants[g] = make([]int, 9)
		grants[g][0] = b.Buf(nm("", "gr", g*9), active[0])
		inhibit := make([]int, 9) // NOT(active[k]) chain
		for k := 0; k < 9; k++ {
			inhibit[k] = b.Not(nm("", "inh", g*9+k), active[k])
		}
		for k := 1; k < 9; k++ {
			terms := make([]int, 0, k+1)
			terms = append(terms, active[k])
			terms = append(terms, inhibit[:k]...)
			grants[g][k] = b.And(nm("", "gr", g*9+k), terms...)
		}
		anys[g] = orTree(b, nm("", "any", g), active)
	}

	// Encoded channel of each group: bit j = OR of grants with bit j set.
	enc := make([][]int, 3)
	for g := 0; g < 3; g++ {
		enc[g] = make([]int, 4)
		for j := 0; j < 4; j++ {
			var terms []int
			for k := 0; k < 9; k++ {
				if k>>uint(j)&1 == 1 {
					terms = append(terms, grants[g][k])
				}
			}
			if len(terms) == 0 {
				enc[g][j] = b.Const0(nm("", "encz", g*4+j))
			} else {
				enc[g][j] = orTree(b, nm("", "enc", g*4+j), terms)
			}
		}
	}
	// Group priority mux: group 0 wins, else group 1, else group 2.
	n0 := b.Not("nany0", anys[0])
	n1 := b.Not("nany1", anys[1])
	sel1 := b.And("sel1", n0, anys[1])
	sel2 := b.And("sel2", n0, n1, anys[2])
	for j := 0; j < 4; j++ {
		t0 := b.And(nm("", "enct0_", j), anys[0], enc[0][j])
		t1 := b.And(nm("", "enct1_", j), sel1, enc[1][j])
		t2 := b.And(nm("", "enct2_", j), sel2, enc[2][j])
		b.Output(nm("", "CH", j), b.Or(nm("", "ch", j), t0, t1, t2))
	}
	for g := 0; g < 3; g++ {
		b.Output(nm("", "ANY", g), anys[g])
	}
	return b.MustBuild()
}

// C432Reference mirrors C432Like: req is a 27-bit mask, en a 9-bit mask.
func C432Reference(req, en uint32) (ch uint8, any [3]bool) {
	grant := [3]int{-1, -1, -1}
	for g := 0; g < 3; g++ {
		for k := 0; k < 9; k++ {
			if req>>uint(g*9+k)&1 == 1 && en>>uint(k)&1 == 1 {
				any[g] = true
				if grant[g] < 0 {
					grant[g] = k
				}
			}
		}
	}
	for g := 0; g < 3; g++ {
		if any[g] {
			return uint8(grant[g]), any
		}
	}
	return 0, any
}

// C2670Like builds the functional analogue of ISCAS'85 C2670 (an ALU
// and controller with comparator): an 8-bit aluCore slice plus a 20-bit
// gated equality comparator whose TRAP output fires only when EN is
// high and the two 20-bit buses match — probability ≈ 2^-21 under
// equiprobable patterns, reproducing the severe resistance of the
// original (Table 1: N ≈ 1.1e7). The ALU is kept narrow so that after
// optimization the comparator cone, not the carry chain, remains the
// binding structure — the regime the paper's C2670 rows exhibit.
func C2670Like() *circuit.Circuit {
	b := circuit.NewBuilder("c2670like")
	a := b.Inputs("A", 8)
	x := b.Inputs("B", 8)
	op := b.Inputs("OP", 2)
	cin := b.Input("CIN")
	p := b.Inputs("P", 20)
	q := b.Inputs("Q", 20)
	en := b.Input("EN")

	u := aluCore(b, "alu", a, x, op, cin)
	for i, g := range u.out {
		b.Output(nm("", "F", i), g)
	}
	b.Output("COUT", u.cout)
	b.Output("ZERO", u.zero)

	match := eqVector(b, "cmp", p, q)
	trap := b.And("trap", en, match)
	b.Output("TRAP", trap)
	// The comparator also qualifies an ALU-zero interrupt.
	irq := b.And("irq", trap, u.zero)
	b.Output("IRQ", irq)
	return b.MustBuild()
}

// C2670Reference mirrors C2670Like.
func C2670Reference(a, x uint64, op uint8, cin bool, p, q uint32, en bool) (out uint64, cout, zero, trap, irq bool) {
	out, cout, zero, _ = ALUReference(a, x, op, cin, 8)
	trap = en && (p&0xfffff) == (q&0xfffff)
	irq = trap && zero
	return out, cout, zero, trap, irq
}

// C6288Like builds the functional analogue of ISCAS'85 C6288, a 16×16
// array multiplier: AND partial products accumulated with rows of
// ripple adders. Multiplier arrays are highly random-testable
// (Table 1: N ≈ 1.9e3).
func C6288Like() *circuit.Circuit {
	b := circuit.NewBuilder("c6288like")
	a := b.Inputs("A", 16)
	x := b.Inputs("B", 16)
	zero := b.Const0("gnd")

	// acc holds product bits; row j adds a·x_j at offset j.
	acc := make([]int, 32)
	for i := range acc {
		acc[i] = zero
	}
	for i := 0; i < 16; i++ {
		acc[i] = b.And(nm("", "pp0_", i), a[i], x[0])
	}
	for j := 1; j < 16; j++ {
		pp := make([]int, 16)
		for i := 0; i < 16; i++ {
			pp[i] = b.And(nm("", "pp", j*16+i), a[i], x[j])
		}
		sum, cout := rippleAdder(b, nm("", "row", j), acc[j:j+16], pp, zero)
		copy(acc[j:j+16], sum)
		acc[j+16] = cout
	}
	for i := 0; i < 32; i++ {
		b.Output(nm("", "P", i), acc[i])
	}
	return b.MustBuild()
}

// C6288Reference is the functional model of the multiplier.
func C6288Reference(a, x uint32) uint64 {
	return uint64(a&0xffff) * uint64(x&0xffff)
}

// C7552Like builds the functional analogue of ISCAS'85 C7552 (a 32-bit
// adder/comparator): a 32-bit ripple adder with overflow detection and a
// 32-bit equality comparator gated by a 2-bit command decode. The MATCH
// output needs SEL==3 and A==B — probability 2^-34, reproducing the
// extreme resistance of the original (Table 1: N ≈ 4.9e11, the worst of
// the whole benchmark set).
func C7552Like() *circuit.Circuit {
	b := circuit.NewBuilder("c7552like")
	a := b.Inputs("A", 32)
	x := b.Inputs("B", 32)
	sel := b.Inputs("SEL", 2)
	cin := b.Input("CIN")

	sum, cout := rippleAdder(b, "add", a, x, cin)
	for i, g := range sum {
		b.Output(nm("", "S", i), g)
	}
	b.Output("COUT", cout)
	// Signed overflow: carry into MSB xor carry out of MSB; recompute
	// carry into MSB as sum[31] ^ a[31] ^ b[31].
	cin31 := b.Xor("cin31", sum[31], a[31], x[31])
	b.Output("OVF", b.Xor("ovf", cin31, cout))

	dec := decoder(b, "seldec", sel)
	match := eqVector(b, "cmp", a, x)
	b.Output("MATCH", b.And("match", dec[3], match))
	// Parity of the sum, observable command-independently.
	b.Output("PAR", xorTree(b, "par", sum))
	return b.MustBuild()
}

// C7552Reference mirrors C7552Like.
func C7552Reference(a, x uint64, sel uint8, cin bool) (sum uint64, cout, ovf, match, par bool) {
	a &= 0xffffffff
	x &= 0xffffffff
	s := a + x
	if cin {
		s++
	}
	sum = s & 0xffffffff
	cout = s > 0xffffffff
	cin31 := (sum>>31)&1 != ((a>>31)&1 ^ (x>>31)&1)
	ovf = cin31 != cout
	match = sel&3 == 3 && a == x
	for v := sum; v != 0; v &= v - 1 {
		par = !par
	}
	return sum, cout, ovf, match, par
}
