package gen

import "optirand/internal/circuit"

// ArrayDivider builds the combinational part of a restoring array
// divider: dividend of n bits, divisor of m bits, producing an n-bit
// quotient and an m-bit remainder. Row i (from the dividend's MSB down)
// shifts the partial remainder left by one, brings in dividend bit i,
// subtracts the divisor in an (m+1)-bit ripple subtractor and keeps the
// difference iff no borrow occurred (that row's quotient bit).
//
// For divisor 0 the quotient saturates to all ones and the remainder is
// the bit-level result of the array (see DividerReference, which mirrors
// the hardware exactly).
func ArrayDivider(name string, n, m int) *circuit.Circuit {
	if n < 1 || m < 1 || m > 62 {
		panic("gen: ArrayDivider: unsupported widths")
	}
	b := circuit.NewBuilder(name)
	d := b.Inputs("D", n)   // dividend, LSB first
	v := b.Inputs("V", m)   // divisor, LSB first
	zero := b.Const0("gnd") // initial partial remainder

	r := make([]int, m) // partial remainder, m bits
	for i := range r {
		r[i] = zero
	}
	vx := make([]int, m+1) // divisor zero-extended to m+1 bits
	copy(vx, v)
	vx[m] = zero

	q := make([]int, n)
	for row := 0; row < n; row++ {
		i := n - 1 - row // dividend bit consumed by this row
		// rp = (r << 1) | D_i, m+1 bits.
		rp := make([]int, m+1)
		rp[0] = d[i]
		copy(rp[1:], r)
		prefix := nm("", "row", row)
		diff, noBorrow := rippleSubtractor(b, prefix+".sub", rp, vx)
		q[i] = b.Buf(nm("", "q", i), noBorrow)
		r = mux2v(b, prefix+".mux", noBorrow, rp[:m], diff[:m])
	}
	for i := 0; i < n; i++ {
		b.Output(nm("", "Q", i), q[i])
	}
	for i := 0; i < m; i++ {
		b.Output(nm("", "R", i), r[i])
	}
	return b.MustBuild()
}

// S2Divider builds the paper's circuit S2: the combinational part of a
// 32-bit divider [KuWu85] — here a 32/16 restoring array divider. Its
// early rows produce a quotient 1 only for very small divisors
// (probability ≈ 2^-15 and below under equiprobable inputs), making it
// severely random-pattern resistant, as in the paper's Table 1
// (N ≈ 2.0e11).
func S2Divider() *circuit.Circuit {
	return ArrayDivider("S2", 32, 16)
}

// DividerReference mirrors ArrayDivider bit-exactly (including the
// divisor-zero behaviour): it returns the quotient and remainder the
// gate-level array computes for an n-bit dividend and m-bit divisor.
// For divisor != 0 this coincides with integer division.
func DividerReference(dividend, divisor uint64, n, m int) (q, r uint64) {
	maskM := uint64(1)<<uint(m) - 1
	var rr uint64
	for row := 0; row < n; row++ {
		i := n - 1 - row
		rp := (rr << 1) | (dividend >> uint(i) & 1) // m+1 bits by invariant
		if rp >= divisor {
			q |= 1 << uint(i)
			rr = (rp - divisor) & maskM
		} else {
			rr = rp & maskM
		}
	}
	return q, rr
}
