package gen

import (
	"math/bits"
	"testing"
	"testing/quick"

	"optirand/internal/circuit"
	"optirand/internal/prng"
)

func TestS1MatchesReference(t *testing.T) {
	c := S1Comparator()
	if c.NumInputs() != 48 || c.NumOutputs() != 3 {
		t.Fatalf("S1: %d inputs, %d outputs", c.NumInputs(), c.NumOutputs())
	}
	f := func(a, x uint32) bool {
		a &= 1<<24 - 1
		x &= 1<<24 - 1
		in := append(bitsOf(uint64(a), 24), bitsOf(uint64(x), 24)...)
		out := c.EvalOutputs(in)
		gt, eq, lt := S1Reference(a, x)
		return out[0] == gt && out[1] == eq && out[2] == lt
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
	// Directed corner cases: equality requires all 24 bit matches.
	cases := []struct{ a, x uint32 }{
		{0, 0}, {1 << 23, 1 << 23}, {1<<24 - 1, 1<<24 - 1},
		{0, 1}, {1, 0}, {1 << 23, 1<<23 - 1}, {0x800001, 0x800000},
	}
	for _, tc := range cases {
		in := append(bitsOf(uint64(tc.a), 24), bitsOf(uint64(tc.x), 24)...)
		out := c.EvalOutputs(in)
		gt, eq, lt := S1Reference(tc.a, tc.x)
		if out[0] != gt || out[1] != eq || out[2] != lt {
			t.Errorf("S1(%x,%x) = %v, want %v %v %v", tc.a, tc.x, out, gt, eq, lt)
		}
	}
}

func TestComparator7485SliceExhaustive(t *testing.T) {
	// One slice with cascade: exhaustive over 4+4 data bits and the
	// three (one-hot) cascade states.
	b := circuit.NewBuilder("slice")
	a := b.Inputs("a", 4)
	x := b.Inputs("b", 4)
	ig := b.Input("igt")
	ie := b.Input("ieq")
	il := b.Input("ilt")
	out := comparator7485(b, "u", a, x, &cascade{gt: ig, eq: ie, lt: il})
	b.Output("gt", out.gt)
	b.Output("eq", out.eq)
	b.Output("lt", out.lt)
	c := b.MustBuild()

	cascades := [][3]bool{{true, false, false}, {false, true, false}, {false, false, true}}
	for av := 0; av < 16; av++ {
		for bv := 0; bv < 16; bv++ {
			for _, cs := range cascades {
				in := append(bitsOf(uint64(av), 4), bitsOf(uint64(bv), 4)...)
				in = append(in, cs[0], cs[1], cs[2])
				got := c.EvalOutputs(in)
				var want [3]bool
				switch {
				case av > bv:
					want = [3]bool{true, false, false}
				case av < bv:
					want = [3]bool{false, false, true}
				default:
					want = cs
				}
				if got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
					t.Fatalf("slice(%d,%d,casc=%v) = %v, want %v", av, bv, cs, got, want)
				}
			}
		}
	}
}

func TestS2MatchesReference(t *testing.T) {
	c := S2Divider()
	if c.NumInputs() != 48 || c.NumOutputs() != 48 {
		t.Fatalf("S2: %d inputs, %d outputs", c.NumInputs(), c.NumOutputs())
	}
	f := func(d uint32, v uint16) bool {
		in := append(bitsOf(uint64(d), 32), bitsOf(uint64(v), 16)...)
		out := c.EvalOutputs(in)
		q, r := DividerReference(uint64(d), uint64(v), 32, 16)
		return valOf(out[:32]) == q && valOf(out[32:]) == r
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestDividerReferenceIsDivision: for non-zero divisors the array
// divider is integer division.
func TestDividerReferenceIsDivision(t *testing.T) {
	f := func(d uint32, v uint16) bool {
		if v == 0 {
			q, _ := DividerReference(uint64(d), 0, 32, 16)
			return q == 1<<32-1 // saturates
		}
		q, r := DividerReference(uint64(d), uint64(v), 32, 16)
		return q == uint64(d)/uint64(v) && r == uint64(d)%uint64(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSmallDividerExhaustive(t *testing.T) {
	c := ArrayDivider("div8x4", 8, 4)
	for d := 0; d < 256; d++ {
		for v := 0; v < 16; v++ {
			in := append(bitsOf(uint64(d), 8), bitsOf(uint64(v), 4)...)
			out := c.EvalOutputs(in)
			q, r := DividerReference(uint64(d), uint64(v), 8, 4)
			if valOf(out[:8]) != q || valOf(out[8:]) != r {
				t.Fatalf("div(%d,%d) = %d rem %d, want %d rem %d",
					d, v, valOf(out[:8]), valOf(out[8:]), q, r)
			}
		}
	}
}

func TestC880MatchesReference(t *testing.T) {
	c := C880Like()
	f := func(a, x uint8, op uint8, cin bool) bool {
		in := append(bitsOf(uint64(a), 8), bitsOf(uint64(x), 8)...)
		in = append(in, op&1 == 1, op&2 == 2, cin)
		out := c.EvalOutputs(in)
		wout, wc, wz, wp := ALUReference(uint64(a), uint64(x), op&3, cin, 8)
		return valOf(out[:8]) == wout && out[8] == wc && out[9] == wz && out[10] == wp
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestC5315MatchesReference(t *testing.T) {
	c := C5315Like()
	f := func(a, x, d, e uint16, op uint8, cin0, cin1 bool, en uint8) bool {
		av, xv := uint64(a&0x1ff), uint64(x&0x1ff)
		dv, ev := uint64(d&0x1ff), uint64(e&0x1ff)
		in := append(bitsOf(av, 9), bitsOf(xv, 9)...)
		in = append(in, bitsOf(dv, 9)...)
		in = append(in, bitsOf(ev, 9)...)
		in = append(in, op&1 == 1, op&2 == 2, cin0, cin1, en&1 == 1, en&2 == 2)
		out := c.EvalOutputs(in)
		o0, c0, z0, p0 := ALUReference(av, xv, op&3, cin0, 9)
		o1, c1, z1, p1 := ALUReference(dv, ev, op&3, cin1, 9)
		f0, f1 := uint64(0), uint64(0)
		if en&1 == 1 {
			f0 = o0
		}
		if en&2 == 2 {
			f1 = o1
		}
		bz := z0 && z1 && en&3 == 3
		return valOf(out[:9]) == f0 && valOf(out[9:18]) == f1 &&
			out[18] == c0 && out[19] == c1 && out[20] == bz &&
			out[21] == p0 && out[22] == p1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestC3540MatchesReference(t *testing.T) {
	c := C3540Like()
	f := func(a, x uint16, mode, cin bool) bool {
		in := append(bitsOf(uint64(a), 16), bitsOf(uint64(x), 16)...)
		in = append(in, mode, cin)
		out := c.EvalOutputs(in)
		res, cout, nines, zero := C3540Reference(uint64(a), uint64(x), mode, cin)
		return valOf(out[:16]) == res && out[16] == cout && out[17] == nines && out[18] == zero
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestC3540BCDSemantics: in BCD mode, adding valid BCD operands yields
// the BCD sum digit by digit.
func TestC3540BCDSemantics(t *testing.T) {
	toBCD := func(v int) uint64 {
		var r uint64
		for k := 0; k < 4; k++ {
			r |= uint64(v%10) << uint(4*k)
			v /= 10
		}
		return r
	}
	for _, pair := range [][2]int{{0, 0}, {1234, 4321}, {9999, 1}, {5555, 4445}, {709, 291}} {
		a, x := pair[0], pair[1]
		res, cout, _, _ := C3540Reference(toBCD(a), toBCD(x), true, false)
		sum := a + x
		want := toBCD(sum % 10000)
		if res != want || cout != (sum >= 10000) {
			t.Errorf("BCD %d+%d: got %04x carry %v, want %04x carry %v",
				a, x, res, cout, want, sum >= 10000)
		}
	}
}

func TestC499MatchesReference(t *testing.T) {
	c := C499Like()
	f := func(data uint32, check uint8) bool {
		in := append(bitsOf(uint64(data), 32), bitsOf(uint64(check&0x3f), 6)...)
		out := c.EvalOutputs(in)
		want, _ := HammingReference(uint64(data), uint64(check&0x3f), 32, 6)
		return valOf(out) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestC499CorrectsSingleErrors: encode, flip one data bit, decode.
func TestC499CorrectsSingleErrors(t *testing.T) {
	c := C499Like()
	rng := prng.New(41)
	for trial := 0; trial < 50; trial++ {
		data := uint64(rng.Uint64()) & (1<<32 - 1)
		// Compute matching checks (syndrome 0 for clean word).
		_, syn := HammingReference(data, 0, 32, 6)
		check := syn // check such that syndrome becomes zero
		if cor, s := HammingReference(data, check, 32, 6); s != 0 || cor != data {
			t.Fatalf("clean word has syndrome %x", s)
		}
		bit := rng.Intn(32)
		bad := data ^ 1<<uint(bit)
		in := append(bitsOf(bad, 32), bitsOf(check, 6)...)
		out := c.EvalOutputs(in)
		if valOf(out) != data {
			t.Fatalf("trial %d: single-bit error at %d not corrected: got %x want %x",
				trial, bit, valOf(out), data)
		}
	}
}

// TestC1355EquivalentToC499: the NAND expansion must not change the
// function.
func TestC1355EquivalentToC499(t *testing.T) {
	a := C499Like()
	b := C1355Like()
	if b.NumGates() <= a.NumGates() {
		t.Errorf("C1355 analogue (%d gates) not larger than C499 analogue (%d)",
			b.NumGates(), a.NumGates())
	}
	rng := prng.New(4)
	for trial := 0; trial < 120; trial++ {
		data := uint64(rng.Uint64()) & (1<<32 - 1)
		check := uint64(rng.Uint64()) & 0x3f
		in := append(bitsOf(data, 32), bitsOf(check, 6)...)
		oa := a.EvalOutputs(in)
		ob := b.EvalOutputs(in)
		for i := range oa {
			if oa[i] != ob[i] {
				t.Fatalf("trial %d output %d differs", trial, i)
			}
		}
	}
}

func TestC1908MatchesReference(t *testing.T) {
	c := C1908Like()
	f := func(data uint16, check uint8, parity bool) bool {
		in := append(bitsOf(uint64(data), 16), bitsOf(uint64(check&0x1f), 5)...)
		in = append(in, parity)
		out := c.EvalOutputs(in)
		cor, valid, dbl, dec := C1908Reference(uint64(data), uint64(check&0x1f), parity)
		return valOf(out[:16]) == cor && out[16] == valid && out[17] == dbl && out[18] == dec
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestC432MatchesReference(t *testing.T) {
	c := C432Like()
	f := func(req uint32, en uint16) bool {
		req &= 1<<27 - 1
		env := uint32(en) & 0x1ff
		in := append(bitsOf(uint64(req), 27), bitsOf(uint64(env), 9)...)
		out := c.EvalOutputs(in)
		ch, any := C432Reference(req, env)
		if valOf(out[:4]) != uint64(ch) {
			return false
		}
		return out[4] == any[0] && out[5] == any[1] && out[6] == any[2]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestC2670MatchesReference(t *testing.T) {
	c := C2670Like()
	f := func(a, x uint8, op uint8, cin bool, p, q uint32, en bool) bool {
		av, xv := uint64(a), uint64(x)
		in := append(bitsOf(av, 8), bitsOf(xv, 8)...)
		in = append(in, op&1 == 1, op&2 == 2, cin)
		in = append(in, bitsOf(uint64(p&0xfffff), 20)...)
		in = append(in, bitsOf(uint64(q&0xfffff), 20)...)
		in = append(in, en)
		out := c.EvalOutputs(in)
		wout, wc, wz, wt, wi := C2670Reference(av, xv, op&3, cin, p, q, en)
		return valOf(out[:8]) == wout && out[8] == wc && out[9] == wz &&
			out[10] == wt && out[11] == wi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
	// The TRAP path must actually fire on equality.
	in := append(bitsOf(5, 8), bitsOf(7, 8)...)
	in = append(in, false, false, false)
	in = append(in, bitsOf(0xabcde, 20)...)
	in = append(in, bitsOf(0xabcde, 20)...)
	in = append(in, true)
	out := c.EvalOutputs(in)
	if !out[10] {
		t.Error("TRAP not asserted for matching buses")
	}
}

func TestC6288MatchesReference(t *testing.T) {
	c := C6288Like()
	f := func(a, x uint16) bool {
		in := append(bitsOf(uint64(a), 16), bitsOf(uint64(x), 16)...)
		out := c.EvalOutputs(in)
		return valOf(out) == C6288Reference(uint32(a), uint32(x))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
	for _, tc := range [][2]uint16{{0, 0}, {0xffff, 0xffff}, {1, 0xffff}, {0x8000, 2}} {
		in := append(bitsOf(uint64(tc[0]), 16), bitsOf(uint64(tc[1]), 16)...)
		out := c.EvalOutputs(in)
		if valOf(out) != C6288Reference(uint32(tc[0]), uint32(tc[1])) {
			t.Errorf("mult(%x,%x) = %x", tc[0], tc[1], valOf(out))
		}
	}
}

func TestC7552MatchesReference(t *testing.T) {
	c := C7552Like()
	f := func(a, x uint32, sel uint8, cin bool) bool {
		in := append(bitsOf(uint64(a), 32), bitsOf(uint64(x), 32)...)
		in = append(in, sel&1 == 1, sel&2 == 2, cin)
		out := c.EvalOutputs(in)
		sum, cout, ovf, match, par := C7552Reference(uint64(a), uint64(x), sel&3, cin)
		return valOf(out[:32]) == sum && out[32] == cout && out[33] == ovf &&
			out[34] == match && out[35] == par
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
	// MATCH requires SEL==3 and exact equality.
	in := append(bitsOf(0xdeadbeef, 32), bitsOf(0xdeadbeef, 32)...)
	in = append(in, true, true, false)
	if out := c.EvalOutputs(in); !out[34] {
		t.Error("MATCH not asserted for equal operands with SEL=3")
	}
}

func TestRegistry(t *testing.T) {
	bs := Benchmarks()
	if len(bs) != 12 {
		t.Fatalf("registry has %d entries, want 12", len(bs))
	}
	marked := Marked()
	if len(marked) != 4 {
		t.Fatalf("marked set has %d entries, want 4 (S1, S2, C2670, C7552)", len(marked))
	}
	for _, m := range marked {
		if m.PaperT3 == 0 || m.SimPatterns == 0 {
			t.Errorf("%s: marked circuit missing Table 3/2 data", m.Name)
		}
	}
	seen := map[string]bool{}
	for _, b := range bs {
		if seen[b.Name] {
			t.Errorf("duplicate name %q", b.Name)
		}
		seen[b.Name] = true
		c := b.Build()
		if c.NumGates() == 0 || c.NumInputs() == 0 || c.NumOutputs() == 0 {
			t.Errorf("%s: degenerate circuit", b.Name)
		}
		if b.PaperT1 == 0 {
			t.Errorf("%s: missing Table 1 value", b.Name)
		}
	}
	if _, ok := ByName("s1"); !ok {
		t.Error("ByName(s1) failed")
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName(nope) succeeded")
	}
	if len(Names()) != 12 {
		t.Error("Names() wrong length")
	}
}

// TestBenchmarksAreDeterministic: building twice gives identical
// structure (gate count and I/O).
func TestBenchmarksAreDeterministic(t *testing.T) {
	for _, b := range Benchmarks() {
		c1, c2 := b.Build(), b.Build()
		if c1.NumGates() != c2.NumGates() || c1.NumInputs() != c2.NumInputs() ||
			c1.NumOutputs() != c2.NumOutputs() {
			t.Errorf("%s: non-deterministic build", b.Name)
		}
	}
}

// TestXorNandBlock: the 4-NAND expansion computes XOR.
func TestXorNandBlock(t *testing.T) {
	b := circuit.NewBuilder("xn")
	p := b.Input("p")
	q := b.Input("q")
	o := xorNand(b, "x", p, q)
	b.Output("o", o)
	c := b.MustBuild()
	for v := 0; v < 4; v++ {
		pv, qv := v&1 == 1, v&2 == 2
		if got := c.EvalOutputs([]bool{pv, qv})[0]; got != (pv != qv) {
			t.Errorf("xorNand(%v,%v) = %v", pv, qv, got)
		}
	}
}

// TestBlocksAdders: ripple adder and subtractor against integers.
func TestBlocksAdders(t *testing.T) {
	b := circuit.NewBuilder("adders")
	a := b.Inputs("a", 6)
	x := b.Inputs("b", 6)
	cin := b.Input("cin")
	sum, cout := rippleAdder(b, "add", a, x, cin)
	diff, nb := rippleSubtractor(b, "sub", a, x)
	for _, g := range sum {
		b.Output("", g)
	}
	b.Output("", cout)
	for _, g := range diff {
		b.Output("", g)
	}
	b.Output("", nb)
	c := b.MustBuild()
	f := func(av, xv uint8, ci bool) bool {
		aa, xx := uint64(av&63), uint64(xv&63)
		in := append(bitsOf(aa, 6), bitsOf(xx, 6)...)
		in = append(in, ci)
		out := c.EvalOutputs(in)
		s := aa + xx
		if ci {
			s++
		}
		if valOf(out[:6]) != s&63 || out[6] != (s > 63) {
			return false
		}
		d := (aa - xx) & 63
		return valOf(out[7:13]) == d && out[13] == (aa >= xx)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestGateCountsReasonable pins rough sizes so accidental blow-ups or
// degenerate builds are caught.
func TestGateCountsReasonable(t *testing.T) {
	bounds := map[string][2]int{
		"s1":    {150, 600},
		"s2":    {3000, 9000},
		"c432":  {150, 800},
		"c499":  {200, 900},
		"c880":  {100, 900},
		"c1355": {500, 3500},
		"c1908": {150, 1000},
		"c2670": {200, 1400},
		"c3540": {150, 1000},
		"c5315": {250, 1800},
		"c6288": {1200, 6000},
		"c7552": {250, 1500},
	}
	for _, b := range Benchmarks() {
		c := b.Build()
		lo, hi := bounds[b.Name][0], bounds[b.Name][1]
		if n := c.NumGates(); n < lo || n > hi {
			t.Errorf("%s: %d gates, expected in [%d,%d]", b.Name, n, lo, hi)
		}
	}
}

var _ = bits.OnesCount64 // reserved for future structural checks
