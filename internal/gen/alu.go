package gen

import "optirand/internal/circuit"

// aluOut bundles the outputs of one ALU slice.
type aluOut struct {
	out  []int
	cout int
	zero int
	par  int
}

// aluCore builds an n-bit 4-function ALU slice: op = 00 ADD (with cin),
// 01 AND, 10 OR, 11 XOR, selected by a decoded 2-bit opcode through
// AND-OR muxes. Flags: adder carry-out, zero (wide NOR of the result)
// and parity (XOR tree of the result).
func aluCore(b *circuit.Builder, prefix string, a, x []int, op []int, cin int) aluOut {
	if len(a) != len(x) {
		panic("gen: aluCore: width mismatch")
	}
	if len(op) != 2 {
		panic("gen: aluCore: op must be 2 bits")
	}
	n := len(a)
	sum, cout := rippleAdder(b, prefix+".add", a, x, cin)
	ands := make([]int, n)
	ors := make([]int, n)
	xors := make([]int, n)
	for i := 0; i < n; i++ {
		ands[i] = b.And(nm(prefix, "and", i), a[i], x[i])
		ors[i] = b.Or(nm(prefix, "or", i), a[i], x[i])
		xors[i] = b.Xor(nm(prefix, "xor", i), a[i], x[i])
	}
	dec := decoder(b, prefix+".dec", op)
	out := make([]int, n)
	for i := 0; i < n; i++ {
		t0 := b.And(nm(prefix, "s0_", i), dec[0], sum[i])
		t1 := b.And(nm(prefix, "s1_", i), dec[1], ands[i])
		t2 := b.And(nm(prefix, "s2_", i), dec[2], ors[i])
		t3 := b.And(nm(prefix, "s3_", i), dec[3], xors[i])
		out[i] = b.Or(nm(prefix, "out", i), t0, t1, t2, t3)
	}
	zero := b.Nor(prefix+".zero", out...)
	par := xorTree(b, prefix+".par", out)
	return aluOut{out: out, cout: cout, zero: zero, par: par}
}

// ALUReference mirrors aluCore functionally. Operands are LSB-first
// values of width n.
func ALUReference(a, x uint64, op uint8, cin bool, n int) (out uint64, cout, zero, par bool) {
	mask := uint64(1)<<uint(n) - 1
	a &= mask
	x &= mask
	switch op & 3 {
	case 0:
		s := a + x
		if cin {
			s++
		}
		out = s & mask
		cout = s > mask
	case 1:
		out = a & x
	case 2:
		out = a | x
	case 3:
		out = a ^ x
	}
	if op&3 != 0 {
		// carry-out comes from the adder regardless of op selection.
		s := a + x
		if cin {
			s++
		}
		cout = s > mask
	}
	zero = out == 0
	for v := out; v != 0; v &= v - 1 {
		par = !par
	}
	return out, cout, zero, par
}

// C880Like builds the functional analogue of ISCAS'85 C880 (an 8-bit
// ALU): one aluCore slice of width 8. Inputs A0..7, B0..7, OP0..1, CIN;
// outputs the result byte plus carry/zero/parity flags. Its hardest
// faults sit on the full-length carry-propagate chain gated by the
// opcode decode (≈2^-11 under equiprobable inputs).
func C880Like() *circuit.Circuit {
	b := circuit.NewBuilder("c880like")
	a := b.Inputs("A", 8)
	x := b.Inputs("B", 8)
	op := b.Inputs("OP", 2)
	cin := b.Input("CIN")
	u := aluCore(b, "alu", a, x, op, cin)
	for i, g := range u.out {
		b.Output(nm("", "F", i), g)
	}
	b.Output("COUT", u.cout)
	b.Output("ZERO", u.zero)
	b.Output("PAR", u.par)
	return b.MustBuild()
}

// C5315Like builds the functional analogue of ISCAS'85 C5315 (a 9-bit
// ALU): two enabled 9-bit aluCore slices sharing the opcode, with a
// combined all-zero flag. The enable gating deepens the hardest cones to
// ≈2^-13.
func C5315Like() *circuit.Circuit {
	b := circuit.NewBuilder("c5315like")
	a := b.Inputs("A", 9)
	x := b.Inputs("B", 9)
	c := b.Inputs("C", 9)
	d := b.Inputs("D", 9)
	op := b.Inputs("OP", 2)
	cin0 := b.Input("CIN0")
	cin1 := b.Input("CIN1")
	en := b.Inputs("EN", 2)

	u0 := aluCore(b, "alu0", a, x, op, cin0)
	u1 := aluCore(b, "alu1", c, d, op, cin1)
	for i := range u0.out {
		b.Output(nm("", "F", i), b.And(nm("", "fo", i), en[0], u0.out[i]))
	}
	for i := range u1.out {
		b.Output(nm("", "G", i), b.And(nm("", "go", i), en[1], u1.out[i]))
	}
	b.Output("COUT0", u0.cout)
	b.Output("COUT1", u1.cout)
	bothZero := b.And("bothzero", u0.zero, u1.zero, en[0], en[1])
	b.Output("BZERO", bothZero)
	b.Output("PAR0", u0.par)
	b.Output("PAR1", u1.par)
	return b.MustBuild()
}

// bcdNibbleAdjust implements the decimal-adjust of one result nibble:
//
//	t    = carryBin | (sum > 9)
//	adj  = mode & t
//	cout = carryBin | adj
//	r    = sum + (adj ? 6 : 0)  (mod 16)
func bcdNibbleAdjust(b *circuit.Builder, prefix string, s []int, carryBin, mode int) (r []int, cout int) {
	gt9 := b.And(prefix+".gt9", s[3], b.Or(prefix+".s21", s[2], s[1]))
	t := b.Or(prefix+".t", carryBin, gt9)
	adj := b.And(prefix+".adj", mode, t)
	cout = b.Or(prefix+".cout", carryBin, adj)
	// r = s + 0b0110·adj
	r = make([]int, 4)
	r[0] = b.Buf(prefix+".r0", s[0])
	r[1] = b.Xor(prefix+".r1", s[1], adj)
	c1 := b.And(prefix+".c1", s[1], adj)
	x2 := b.Xor(prefix+".x2", s[2], adj)
	r[2] = b.Xor(prefix+".r2", x2, c1)
	c2a := b.And(prefix+".c2a", s[2], adj)
	c2b := b.And(prefix+".c2b", x2, c1)
	c2 := b.Or(prefix+".c2", c2a, c2b)
	r[3] = b.Xor(prefix+".r3", s[3], c2)
	return r, cout
}

// C3540Like builds the functional analogue of ISCAS'85 C3540 (an 8-bit
// ALU with BCD arithmetic), widened to 16 bits / four BCD nibbles: a
// binary ripple adder with a decimal-adjust chain (MODE selects BCD),
// an all-nines detector and a zero flag. The nibble-wise rare conditions
// of the decimal carry chain and the ≈10^-4 all-nines detector give the
// ≈2^-14…2^-16 hard faults that make the circuit moderately
// random-pattern resistant (paper Table 1: N ≈ 2.3e6).
func C3540Like() *circuit.Circuit {
	b := circuit.NewBuilder("c3540like")
	a := b.Inputs("A", 16)
	x := b.Inputs("B", 16)
	mode := b.Input("MODE")
	cin := b.Input("CIN")

	carry := cin
	var res []int
	for k := 0; k < 4; k++ {
		prefix := nm("", "nib", k)
		sum, cb := rippleAdder(b, prefix+".add", a[4*k:4*k+4], x[4*k:4*k+4], carry)
		r, cout := bcdNibbleAdjust(b, prefix, sum, cb, mode)
		res = append(res, r...)
		carry = cout
	}
	for i, g := range res {
		b.Output(nm("", "F", i), g)
	}
	b.Output("COUT", carry)

	nines := make([]int, 4)
	for k := 0; k < 4; k++ {
		n2 := b.Not(nm("", "nn2_", k), res[4*k+2])
		n1 := b.Not(nm("", "nn1_", k), res[4*k+1])
		nines[k] = b.And(nm("", "nine", k), res[4*k+3], n2, n1, res[4*k])
	}
	b.Output("NINES", andTree(b, "allnines", nines))
	b.Output("ZERO", b.Nor("zero", res...))
	return b.MustBuild()
}

// C3540Reference mirrors C3540Like: 16-bit operands, returns the
// adjusted result, carry-out, all-nines and zero flags.
func C3540Reference(a, x uint64, mode, cin bool) (res uint64, cout, nines, zero bool) {
	a &= 0xffff
	x &= 0xffff
	carry := cin
	nines = true
	for k := 0; k < 4; k++ {
		an := a >> uint(4*k) & 0xf
		xn := x >> uint(4*k) & 0xf
		s := an + xn
		if carry {
			s++
		}
		sum := s & 0xf
		cb := s > 0xf
		gt9 := sum>>3&1 == 1 && (sum>>2&1 == 1 || sum>>1&1 == 1)
		t := cb || gt9
		adj := mode && t
		carry = cb || adj
		r := sum
		if adj {
			r = (sum + 6) & 0xf
		}
		res |= r << uint(4*k)
		if r != 9 {
			nines = false
		}
	}
	return res, carry, nines, res == 0
}
