package gen

import (
	"strings"
	"testing"

	"optirand/internal/bench"
	"optirand/internal/fault"
	"optirand/internal/prng"
	"optirand/internal/sim"
)

// TestBenchmarksRoundTripThroughBenchFormat: every built-in circuit
// must survive serialization to the .bench format and back with its
// function intact (sampled over random input vectors via the parallel
// simulator).
func TestBenchmarksRoundTripThroughBenchFormat(t *testing.T) {
	for _, b := range Benchmarks() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			orig := b.Build()
			text := bench.String(orig)
			back, err := bench.ParseString(text)
			if err != nil {
				t.Fatalf("reparse: %v", err)
			}
			if back.NumInputs() != orig.NumInputs() || back.NumOutputs() != orig.NumOutputs() {
				t.Fatalf("I/O changed: %d/%d vs %d/%d",
					back.NumInputs(), back.NumOutputs(), orig.NumInputs(), orig.NumOutputs())
			}
			if !strings.Contains(text, "INPUT(") {
				t.Fatal("no INPUT declarations emitted")
			}
			so := sim.NewSimulator(orig)
			sb := sim.NewSimulator(back)
			rng := prng.New(1 + uint64(len(text)))
			words := make([]uint64, orig.NumInputs())
			for trial := 0; trial < 4; trial++ {
				for i := range words {
					words[i] = rng.Uint64()
				}
				so.SetInputs(words)
				so.Run()
				sb.SetInputs(words)
				sb.Run()
				for k := 0; k < orig.NumOutputs(); k++ {
					if so.OutputWord(k) != sb.OutputWord(k) {
						t.Fatalf("output %d differs after round trip", k)
					}
				}
			}
		})
	}
}

// TestS1HardestFaultNeedsFullEquality: the defining property of S1 —
// the final AeqB stem stuck-at-0 is detected exactly by patterns with
// A == B, checked at the fault level.
func TestS1HardestFaultNeedsFullEquality(t *testing.T) {
	c := S1Comparator()
	eqGate := c.FindGate("u5.eq")
	if eqGate < 0 {
		t.Fatal("u5.eq not found")
	}
	f := fault.Fault{Gate: eqGate, Pin: fault.StemPin, Stuck: 0}
	// Equal operands: fault must be detected (AeqB flips 1 -> 0).
	in := make([]bool, 48)
	for i := 0; i < 24; i++ {
		v := i%3 == 0
		in[i], in[24+i] = v, v
	}
	if !sim.DetectsScalar(c, f, in) {
		t.Error("A==B pattern does not detect AeqB s-a-0")
	}
	// Any single-bit mismatch: undetected.
	in[5] = !in[5]
	if sim.DetectsScalar(c, f, in) {
		t.Error("A!=B pattern claims to detect AeqB s-a-0")
	}
}

// TestC7552MatchFaultNeedsSelAndEquality: same directed check for the
// C7552 analogue's MATCH cone (SEL=3 and A==B), the 2^-34 structure
// behind the worst row of Table 1.
func TestC7552MatchFaultNeedsSelAndEquality(t *testing.T) {
	c := C7552Like()
	mg := c.FindGate("match")
	if mg < 0 {
		t.Fatal("match gate not found")
	}
	f := fault.Fault{Gate: mg, Pin: fault.StemPin, Stuck: 0}
	in := make([]bool, 67)
	for i := 0; i < 32; i++ {
		v := i%5 != 0
		in[i], in[32+i] = v, v
	}
	in[64], in[65] = true, true // SEL = 3
	in[66] = false              // CIN
	if !sim.DetectsScalar(c, f, in) {
		t.Error("SEL=3, A==B pattern does not detect MATCH s-a-0")
	}
	in[64] = false // SEL = 2: comparator disabled
	if sim.DetectsScalar(c, f, in) {
		t.Error("SEL!=3 pattern claims to detect MATCH s-a-0")
	}
}
