package gen

import "optirand/internal/circuit"

// hammingLayout computes the codeword geometry for d data bits and c
// check bits: dataPos[i] is the 1-based codeword position of data bit i
// (positions that are powers of two belong to the check bits).
func hammingLayout(d, c int) (dataPos []int) {
	dataPos = make([]int, 0, d)
	for pos := 1; len(dataPos) < d; pos++ {
		if pos&(pos-1) == 0 {
			continue // power of two: check-bit position
		}
		dataPos = append(dataPos, pos)
	}
	if dataPos[d-1] >= 1<<uint(c) {
		panic("gen: hammingLayout: too few check bits")
	}
	return dataPos
}

// hammingSEC builds a single-error-correcting (Hamming) decoder:
// syndrome XOR trees over the received word, a position decoder, and a
// corrector XOR per data bit. xorBlock selects the XOR implementation
// (gate-level XOR for the C499 analogue, 4-NAND expansion for C1355).
func hammingSEC(b *circuit.Builder, d, c int, xorBlock func(bb *circuit.Builder, prefix string, in []int) int) (corrected []int, syndrome []int, data, check []int) {
	data = b.Inputs("D", d)
	check = b.Inputs("C", c)
	dataPos := hammingLayout(d, c)

	syndrome = make([]int, c)
	for j := 0; j < c; j++ {
		members := []int{check[j]}
		for i, pos := range dataPos {
			if pos>>uint(j)&1 == 1 {
				members = append(members, data[i])
			}
		}
		syndrome[j] = xorBlock(b, nm("", "syn", j), members)
	}

	nsyn := make([]int, c)
	for j := 0; j < c; j++ {
		nsyn[j] = b.Not(nm("", "nsyn", j), syndrome[j])
	}
	corrected = make([]int, d)
	for i, pos := range dataPos {
		terms := make([]int, c)
		for j := 0; j < c; j++ {
			if pos>>uint(j)&1 == 1 {
				terms[j] = syndrome[j]
			} else {
				terms[j] = nsyn[j]
			}
		}
		flip := andTree(b, nm("", "flip", i), terms)
		corrected[i] = xorBlock(b, nm("", "cor", i), []int{data[i], flip})
	}
	return corrected, syndrome, data, check
}

// C499Like builds the functional analogue of ISCAS'85 C499, a 32-bit
// single-error-correcting circuit: 32 data + 6 check inputs, 32
// corrected outputs, all XOR gates. XOR-dominated logic is transparent
// to fault effects, making the circuit easily random-testable (paper
// Table 1: N ≈ 1.9e3).
func C499Like() *circuit.Circuit {
	b := circuit.NewBuilder("c499like")
	corrected, _, _, _ := hammingSEC(b, 32, 6, xorTree)
	for i, g := range corrected {
		b.Output(nm("", "O", i), g)
	}
	return b.MustBuild()
}

// C1355Like builds the functional analogue of ISCAS'85 C1355: exactly
// the C499 function with every XOR expanded into its four-NAND
// realization, which multiplies the fault population and deepens
// reconvergence (the real C1355 needs three orders of magnitude more
// random patterns than C499 — Table 1: 2.2e6 vs 1.9e3).
func C1355Like() *circuit.Circuit {
	b := circuit.NewBuilder("c1355like")
	corrected, _, _, _ := hammingSEC(b, 32, 6, xorTreeNand)
	for i, g := range corrected {
		b.Output(nm("", "O", i), g)
	}
	return b.MustBuild()
}

// C1908Like builds the functional analogue of ISCAS'85 C1908, a 16-bit
// SEC/DED circuit: Hamming correction of 16 data bits (5 check bits)
// plus an overall parity input for double-error detection, a
// codeword-valid flag, and an address-decode output over the corrected
// word whose 13-wide AND cone (≈2^-13) reproduces the moderate
// random-pattern resistance of the original (Table 1: N ≈ 6.2e4).
func C1908Like() *circuit.Circuit {
	b := circuit.NewBuilder("c1908like")
	corrected, syndrome, data, check := hammingSEC(b, 16, 5, xorTree)
	pin := b.Input("P") // received overall parity

	// Overall parity of the received word (data + checks + parity bit).
	all := make([]int, 0, 22)
	all = append(all, data...)
	all = append(all, check...)
	all = append(all, pin)
	overall := xorTree(b, "overall", all)

	synNZ := orTree(b, "synnz", syndrome)
	valid := b.Nor("valid", append([]int{}, syndrome...)...)
	nOverall := b.Not("nover", overall)
	// Double error: non-zero syndrome but even overall parity.
	dbl := b.And("dbl", synNZ, nOverall)

	for i, g := range corrected {
		b.Output(nm("", "O", i), g)
	}
	b.Output("VALID", valid)
	b.Output("DBL", dbl)
	b.Output("DECODE", andTree(b, "decode", corrected[:13]))
	return b.MustBuild()
}

// HammingReference mirrors hammingSEC: given d data bits and c received
// check bits (LSB-first packed), it returns the corrected data and the
// syndrome the circuit computes.
func HammingReference(data, check uint64, d, c int) (corrected uint64, syndrome uint64) {
	dataPos := hammingLayout(d, c)
	for j := 0; j < c; j++ {
		bit := check >> uint(j) & 1
		for i, pos := range dataPos {
			if pos>>uint(j)&1 == 1 {
				bit ^= data >> uint(i) & 1
			}
		}
		syndrome |= bit << uint(j)
	}
	corrected = data
	if syndrome != 0 {
		for i, pos := range dataPos {
			if uint64(pos) == syndrome {
				corrected ^= 1 << uint(i)
			}
		}
	}
	return corrected, syndrome
}

// C1908Reference mirrors C1908Like's flag outputs.
func C1908Reference(data, check uint64, parity bool) (corrected uint64, valid, dbl, decode bool) {
	corrected, syndrome := HammingReference(data, check, 16, 5)
	overall := parity
	for v := data & 0xffff; v != 0; v &= v - 1 {
		overall = !overall
	}
	for v := check & 0x1f; v != 0; v &= v - 1 {
		overall = !overall
	}
	valid = syndrome == 0
	dbl = syndrome != 0 && !overall
	decode = corrected&0x1fff == 0x1fff
	return corrected, valid, dbl, decode
}
