// Package testlen computes random-test lengths from fault detection
// probabilities, following Section 2 and the NORMALIZE procedure of
// Section 4 of the paper.
//
// For a fault set F with detection probabilities p_f, the probability
// that N random patterns detect every fault is approximately
//
//	e_N = Π_f (1 - (1-p_f)^N) ≈ exp(-J_N),  J_N = Σ_f exp(-N·p_f)
//
// (paper eqs. 1, 8, 9). The required test length for confidence ε is the
// minimal N with J_N ≤ Q where Q = -ln(ε).
package testlen

import (
	"math"
	"sort"
)

// DefaultConfidence is the confidence level ε used by the experiment
// harness (the paper's implied choice; Q = -ln(0.999) ≈ 1.0005e-3).
const DefaultConfidence = 0.999

// Objective computes J_N(X) = Σ_f exp(-N·p_f), the paper's objective
// function (eq. 9) for a fixed fault list.
func Objective(probs []float64, n float64) float64 {
	j := 0.0
	for _, p := range probs {
		j += math.Exp(-n * p)
	}
	return j
}

// Confidence returns exp(-J_N), the approximate probability that all
// faults are detected by N patterns.
func Confidence(probs []float64, n float64) float64 {
	return math.Exp(-Objective(probs, n))
}

// ExpectedCoverage returns the expected fraction of faults detected by
// N random patterns: (1/|F|)·Σ_f (1 - (1-p_f)^N). This predicts the
// fault-coverage columns of the paper's Tables 2 and 4.
func ExpectedCoverage(probs []float64, n float64) float64 {
	if len(probs) == 0 {
		return 1
	}
	s := 0.0
	for _, p := range probs {
		// (1-p)^N = exp(N·ln(1-p)); use Log1p for small p.
		s += 1 - math.Exp(n*math.Log1p(-p))
	}
	return s / float64(len(probs))
}

// Required returns the minimal (real-valued) N such that J_N ≤ -ln(ε),
// by direct evaluation and bisection over the full fault list. It
// returns +Inf if any probability is zero (an undetectable fault) and 0
// for an empty list. This is the O(|F|·log N) cross-check for the
// bound-based Normalize.
func Required(probs []float64, confidence float64) float64 {
	checkConfidence(confidence)
	if len(probs) == 0 {
		return 0
	}
	q := -math.Log(confidence)
	for _, p := range probs {
		if p <= 0 {
			return math.Inf(1)
		}
	}
	if Objective(probs, 0) <= q {
		return 0
	}
	hi := 1.0
	for Objective(probs, hi) > q {
		hi *= 2
		if math.IsInf(hi, 1) {
			return math.Inf(1)
		}
	}
	lo := hi / 2
	if hi == 1 {
		lo = 0
	}
	for i := 0; i < 100 && hi-lo > 1e-9*hi; i++ {
		mid := (lo + hi) / 2
		if Objective(probs, mid) <= q {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi
}

// Result reports a NORMALIZE computation.
type Result struct {
	// N is the minimal test length achieving the confidence.
	N float64
	// HardFaults is the paper's nf: the size of the prefix of the
	// sorted fault list that determines N numerically; the remaining
	// faults' contributions were bounded away.
	HardFaults int
	// Undetectable counts faults with probability ≤ 0 that were
	// excluded (N refers to the detectable remainder; the paper
	// requires F to contain only detectable faults).
	Undetectable int
}

// Normalize implements the paper's NORMALIZE procedure: given detection
// probabilities (in any order; the function sorts a copy — the paper's
// SORT step), it finds the minimal N with J_N ≤ -ln(ε) using the lower
// and upper bounds
//
//	l(z,M) = Σ_{i≤z} exp(-p_i·M)            (lower bound of J_M)
//	u(z,M) = l(z,M) + (n-z)·exp(-p_z·M)     (upper bound of J_M)
//
// evaluated on the z hardest faults only, growing z on demand. The
// returned HardFaults is the largest z needed, i.e. the set F̂ of
// relevant hard faults for the optimizer.
func Normalize(probs []float64, confidence float64) Result {
	checkConfidence(confidence)
	sorted := make([]float64, len(probs))
	copy(sorted, probs)
	sort.Float64s(sorted)
	return NormalizeSorted(sorted, confidence)
}

// NormalizeSorted is Normalize for an already ascending-sorted slice
// (not modified).
func NormalizeSorted(sorted []float64, confidence float64) Result {
	checkConfidence(confidence)
	var res Result
	for len(sorted) > 0 && sorted[0] <= 0 {
		sorted = sorted[1:]
		res.Undetectable++
	}
	n := len(sorted)
	if n == 0 {
		return res
	}
	q := -math.Log(confidence)
	maxZ := 0

	// sufficient reports whether J_M ≤ q can be proven or refuted from
	// a prefix of the sorted list; it grows the prefix until decisive.
	sufficient := func(m float64) bool {
		z := 64
		if z > n {
			z = n
		}
		l := 0.0
		zDone := 0
		for {
			for i := zDone; i < z; i++ {
				l += math.Exp(-sorted[i] * m)
			}
			zDone = z
			if z > maxZ {
				maxZ = z
			}
			if l > q {
				return false
			}
			u := l + float64(n-z)*math.Exp(-sorted[z-1]*m)
			if u <= q || z == n {
				return u <= q || l <= q
			}
			z *= 2
			if z > n {
				z = n
			}
		}
	}

	if sufficient(0) {
		return res
	}
	hi := 1.0
	for !sufficient(hi) {
		hi *= 2
		if math.IsInf(hi, 1) {
			res.N = math.Inf(1)
			res.HardFaults = maxZ
			return res
		}
	}
	lo := hi / 2
	if hi == 1 {
		lo = 0
	}
	for i := 0; i < 100 && hi-lo > 1e-9*hi; i++ {
		mid := (lo + hi) / 2
		if sufficient(mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	res.N = hi
	res.HardFaults = maxZ
	return res
}

func checkConfidence(c float64) {
	if !(c > 0 && c < 1) {
		panic("testlen: confidence must be in (0,1)")
	}
}

// SortWithIndex returns the probabilities sorted ascending together
// with the permutation idx such that sorted[k] = probs[idx[k]] — the
// paper's SORT step, keeping fault identity.
func SortWithIndex(probs []float64) (sorted []float64, idx []int) {
	idx = make([]int, len(probs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return probs[idx[a]] < probs[idx[b]] })
	sorted = make([]float64, len(probs))
	for k, i := range idx {
		sorted[k] = probs[i]
	}
	return sorted, idx
}
