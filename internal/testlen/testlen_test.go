package testlen

import (
	"math"
	"testing"
	"testing/quick"

	"optirand/internal/prng"
)

func TestObjectiveKnown(t *testing.T) {
	probs := []float64{0.5, 0.1}
	n := 10.0
	want := math.Exp(-5) + math.Exp(-1)
	if got := Objective(probs, n); math.Abs(got-want) > 1e-12 {
		t.Errorf("Objective = %v, want %v", got, want)
	}
}

func TestConfidenceMonotoneInN(t *testing.T) {
	probs := []float64{0.01, 0.2, 0.5}
	prev := -1.0
	for n := 1.0; n <= 4096; n *= 2 {
		c := Confidence(probs, n)
		if c < prev {
			t.Fatalf("confidence decreased at N=%v", n)
		}
		prev = c
	}
}

func TestRequiredSingleFault(t *testing.T) {
	// One fault with p: J_N = exp(-Np) <= Q  =>  N = ln(1/Q)/p.
	for _, p := range []float64{0.5, 1e-3, 1e-8} {
		n := Required([]float64{p}, DefaultConfidence)
		q := -math.Log(DefaultConfidence)
		want := math.Log(1/q) / p
		if math.Abs(n-want)/want > 1e-6 {
			t.Errorf("Required(p=%v) = %v, want %v", p, n, want)
		}
	}
}

func TestRequiredEdgeCases(t *testing.T) {
	if n := Required(nil, 0.999); n != 0 {
		t.Errorf("Required(empty) = %v, want 0", n)
	}
	if n := Required([]float64{0}, 0.999); !math.IsInf(n, 1) {
		t.Errorf("Required(p=0) = %v, want +Inf", n)
	}
	// A certain fault (p=1): need ln(1/Q) ≈ 6.9 patterns.
	n := Required([]float64{1}, 0.999)
	if n < 5 || n > 10 {
		t.Errorf("Required(p=1) = %v, want ~6.9", n)
	}
}

func TestRequiredPanicsOnBadConfidence(t *testing.T) {
	for _, c := range []float64{0, 1, -1, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("confidence %v did not panic", c)
				}
			}()
			Required([]float64{0.5}, c)
		}()
	}
}

// TestNormalizeMatchesRequired: the bound-based NORMALIZE must agree
// with direct evaluation on random fault lists.
func TestNormalizeMatchesRequired(t *testing.T) {
	rng := prng.New(12)
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(2000)
		probs := make([]float64, n)
		for i := range probs {
			// Log-uniform probabilities across 8 decades.
			probs[i] = math.Pow(10, -8*rng.Float64())
		}
		want := Required(probs, DefaultConfidence)
		got := Normalize(probs, DefaultConfidence)
		if math.Abs(got.N-want)/want > 1e-6 {
			t.Errorf("trial %d: Normalize=%v Required=%v", trial, got.N, want)
		}
		if got.HardFaults <= 0 || got.HardFaults > n {
			t.Errorf("trial %d: HardFaults=%d out of range", trial, got.HardFaults)
		}
	}
}

// TestNormalizeHardFaultsSmall: when one fault is much harder than the
// rest, NORMALIZE must identify a small relevant subset (the paper's
// observation (1): easy faults contribute nothing numerically).
func TestNormalizeHardFaultsSmall(t *testing.T) {
	probs := make([]float64, 10000)
	for i := range probs {
		probs[i] = 0.3 // easy
	}
	probs[0] = 1e-7 // one hard fault
	res := Normalize(probs, DefaultConfidence)
	want := math.Log(1/-math.Log(DefaultConfidence)) / 1e-7
	if math.Abs(res.N-want)/want > 1e-3 {
		t.Errorf("N = %v, want %v", res.N, want)
	}
	if res.HardFaults > 128 {
		t.Errorf("HardFaults = %d, expected the bounds to prune the 10k easy faults", res.HardFaults)
	}
}

func TestNormalizeUndetectable(t *testing.T) {
	res := Normalize([]float64{0, 0, 0.5}, DefaultConfidence)
	if res.Undetectable != 2 {
		t.Errorf("Undetectable = %d, want 2", res.Undetectable)
	}
	if math.IsInf(res.N, 1) {
		t.Error("N infinite although detectable faults remain")
	}
}

func TestNormalizeEmpty(t *testing.T) {
	res := Normalize(nil, DefaultConfidence)
	if res.N != 0 || res.HardFaults != 0 {
		t.Errorf("Normalize(empty) = %+v", res)
	}
}

// TestPaperScaleNumbers: a 2^-24 hardest fault (the S1 comparator
// structure) yields N ≈ 1.16e8·ln(1/Q) ≈ 10^8.06 — the order of
// magnitude of Table 1's S1 row (5.6e8).
func TestPaperScaleNumbers(t *testing.T) {
	p := math.Pow(2, -24)
	n := Required([]float64{p}, DefaultConfidence)
	if n < 1e8 || n > 2e9 {
		t.Errorf("Required(2^-24) = %.3g, want ~10^8", n)
	}
}

func TestExpectedCoverage(t *testing.T) {
	// With p=0.5 and N=10, each fault detected with prob 1-2^-10.
	cov := ExpectedCoverage([]float64{0.5, 0.5}, 10)
	want := 1 - math.Pow(0.5, 10)
	if math.Abs(cov-want) > 1e-12 {
		t.Errorf("ExpectedCoverage = %v, want %v", cov, want)
	}
	if got := ExpectedCoverage(nil, 5); got != 1 {
		t.Errorf("ExpectedCoverage(empty) = %v", got)
	}
	// Coverage is monotone in N.
	probs := []float64{1e-4, 0.01, 0.3}
	prev := 0.0
	for n := 1.0; n < 1e6; n *= 10 {
		c := ExpectedCoverage(probs, n)
		if c < prev {
			t.Fatalf("coverage decreased at N=%v", n)
		}
		prev = c
	}
}

func TestSortWithIndex(t *testing.T) {
	probs := []float64{0.5, 0.1, 0.9, 0.1}
	sorted, idx := SortWithIndex(probs)
	for k := 1; k < len(sorted); k++ {
		if sorted[k-1] > sorted[k] {
			t.Fatalf("not sorted: %v", sorted)
		}
	}
	for k, i := range idx {
		if probs[i] != sorted[k] {
			t.Fatalf("permutation broken at %d", k)
		}
	}
	// Stability: the two 0.1 entries keep original relative order.
	if idx[0] != 1 || idx[1] != 3 {
		t.Errorf("stable sort violated: idx=%v", idx)
	}
}

// TestRequiredQuick: J_{Required} ≤ Q ≤ J_{Required·(1-δ)} — the
// returned N is minimal up to tolerance, for random fault lists.
func TestRequiredQuick(t *testing.T) {
	q := -math.Log(DefaultConfidence)
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		probs := make([]float64, len(raw))
		for i, r := range raw {
			probs[i] = (float64(r) + 1) / 65537 // in (0,1)
		}
		n := Required(probs, DefaultConfidence)
		if n == 0 {
			return Objective(probs, 0) <= q
		}
		return Objective(probs, n) <= q*(1+1e-6) &&
			Objective(probs, n*0.999) >= q*(1-1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
