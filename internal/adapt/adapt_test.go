package adapt_test

import (
	"reflect"
	"runtime"
	"testing"

	"optirand/internal/adapt"
	"optirand/internal/circuit"
	"optirand/internal/engine"
	"optirand/internal/fault"
	"optirand/internal/gen"
	"optirand/internal/sim"
)

func buildCircuit(t *testing.T, name string) (*circuit.Circuit, []fault.Fault) {
	t.Helper()
	b, ok := gen.ByName(name)
	if !ok {
		t.Fatalf("unknown circuit %q", name)
	}
	c := b.Build()
	return c, fault.New(c).Reps
}

func uniform(c *circuit.Circuit) []float64 {
	w := make([]float64, c.NumInputs())
	for i := range w {
		w[i] = 0.5
	}
	return w
}

// biased returns a weight set with every input at p.
func biased(c *circuit.Circuit, p float64) []float64 {
	w := make([]float64, c.NumInputs())
	for i := range w {
		w[i] = p
	}
	return w
}

// TestRoundSeedMatchesTaskSeed pins the round-seed derivation to the
// engine's TaskSeed chain: adapt cannot import engine (engine imports
// adapt), so it replicates the SplitMix64 recipe — this test is the
// tripwire should either side drift.
func TestRoundSeedMatchesTaskSeed(t *testing.T) {
	for _, base := range []uint64{1, 1987, 0xdeadbeef} {
		for round := 0; round < 5; round++ {
			want := engine.TaskSeed(base, uint64(round))
			if got := adapt.RoundSeed(base, round); got != want {
				t.Fatalf("RoundSeed(%d, %d) = %#x, want TaskSeed's %#x", base, round, got, want)
			}
		}
	}
}

// TestDeterminismAcrossScheduling is the property test of the
// subsystem: with a fixed seed, the adaptive result is byte-identical
// across worker counts, pattern shards, and good-machine modes — for
// both strategies.
func TestDeterminismAcrossScheduling(t *testing.T) {
	c, faults := buildCircuit(t, "c432")
	const seed, budget = 1987, 1536

	cases := []struct {
		name string
		sets [][]float64
		cfg  adapt.Config
	}{
		{"reopt", [][]float64{uniform(c)},
			adapt.Config{Strategy: adapt.StrategyReopt, BlockPatterns: 256, ReoptMaxSweeps: 2}},
		{"bandit-ucb", [][]float64{uniform(c), biased(c, 0.3), biased(c, 0.7)},
			adapt.Config{Strategy: adapt.StrategyBandit, BlockPatterns: 192}},
		{"bandit-egreedy", [][]float64{uniform(c), biased(c, 0.25)},
			adapt.Config{Strategy: adapt.StrategyBandit, BlockPatterns: 256, Epsilon: 0.2}},
	}
	scheds := []sim.CampaignConfig{
		{Workers: 1},
		{Workers: 2},
		{Workers: runtime.GOMAXPROCS(0)},
		{Workers: 1, PatternShards: 3},
		{Workers: 2, GoodMachine: sim.GoodMachineShared},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var ref *sim.CampaignResult
			for i, sched := range scheds {
				sched.Patterns = budget
				sched.CurveStep = 128
				got := adapt.Run(c, faults, tc.sets, seed, tc.cfg, sched)
				if i == 0 {
					ref = got
					if len(got.Adaptive.Rounds) < 2 {
						t.Fatalf("want an actually adaptive run, got %d rounds", len(got.Adaptive.Rounds))
					}
					continue
				}
				if !reflect.DeepEqual(got, ref) {
					t.Fatalf("sched %+v diverges from serial reference:\n got %+v\nwant %+v", sched, got, ref)
				}
			}
		})
	}
}

// TestDeterminismRepeatable re-runs one adaptive campaign and demands
// identical results — the same-seed ⇒ same-bytes half of the property.
func TestDeterminismRepeatable(t *testing.T) {
	c, faults := buildCircuit(t, "c880")
	sets := [][]float64{uniform(c)}
	cfg := adapt.Config{Strategy: adapt.StrategyReopt, BlockPatterns: 256, ReoptMaxSweeps: 2}
	sched := sim.CampaignConfig{Patterns: 1024, CurveStep: 256, Workers: 2}
	a := adapt.Run(c, faults, sets, 7, cfg, sched)
	b := adapt.Run(c, faults, sets, 7, cfg, sched)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different results:\n%+v\nvs\n%+v", a, b)
	}
	if reflect.DeepEqual(a, adapt.Run(c, faults, sets, 8, cfg, sched)) {
		t.Fatal("different seeds produced identical campaigns")
	}
}

// TestStallTermination is the 0%-detectable edge case: weight sets
// pinned to all-zero inputs repeat one pattern forever, so after the
// first block nothing new is ever detected. The loop must terminate by
// stall detection (and, with stall detection effectively disabled, by
// the pattern budget) — never loop forever.
func TestStallTermination(t *testing.T) {
	c, faults := buildCircuit(t, "c432")
	frozen := [][]float64{biased(c, 0), biased(c, 0)} // both arms generate only the all-zero pattern

	cfg := adapt.Config{Strategy: adapt.StrategyBandit, BlockPatterns: 128, StallRounds: 2}
	res := adapt.Run(c, faults, frozen, 3, cfg, sim.CampaignConfig{Patterns: 1 << 20, Workers: 2})
	if !res.Adaptive.Stalled {
		t.Fatalf("want stall termination, got %+v", res.Adaptive)
	}
	if res.Patterns >= 1<<20 {
		t.Fatalf("stall did not save the budget: %d patterns applied", res.Patterns)
	}
	if res.Detected >= res.TotalFaults {
		t.Fatalf("frozen stream should leave faults undetected (got %d/%d)", res.Detected, res.TotalFaults)
	}

	// Stall detection out of reach: the budget must still bound the loop.
	cfg.StallRounds = 1 << 30
	res = adapt.Run(c, faults, frozen, 3, cfg, sim.CampaignConfig{Patterns: 4096, Workers: 1})
	if res.Adaptive.Stalled || res.Patterns != 4096 {
		t.Fatalf("want budget termination at 4096 patterns, got %d (stalled=%v)", res.Patterns, res.Adaptive.Stalled)
	}
}

// TestTargetCoverageStops checks early exit once the target is reached.
func TestTargetCoverageStops(t *testing.T) {
	c, faults := buildCircuit(t, "c432")
	cfg := adapt.Config{Strategy: adapt.StrategyReopt, BlockPatterns: 128, TargetCoverage: 0.5, ReoptMaxSweeps: 1}
	res := adapt.Run(c, faults, [][]float64{uniform(c)}, 1, cfg, sim.CampaignConfig{Patterns: 1 << 20, Workers: 1})
	if !res.Adaptive.TargetHit {
		t.Fatalf("want target termination, got %+v", res.Adaptive)
	}
	if res.Coverage() < 0.5 {
		t.Fatalf("target reported hit at coverage %v", res.Coverage())
	}
	if res.Patterns >= 1<<20 {
		t.Fatalf("target did not save the budget: %d patterns", res.Patterns)
	}
}

// TestProvenance sanity-checks the recorded rounds: cumulative
// patterns/detections must match the result, curve points must carry
// their round's attribution, and bandit pulls must sum to the rounds.
func TestProvenance(t *testing.T) {
	c, faults := buildCircuit(t, "c880")
	sets := [][]float64{uniform(c), biased(c, 0.3)}
	res := adapt.Run(c, faults, sets, 11,
		adapt.Config{Strategy: adapt.StrategyBandit, BlockPatterns: 192},
		sim.CampaignConfig{Patterns: 960, CurveStep: 64, Workers: 2})

	info := res.Adaptive
	if info == nil || info.Strategy != adapt.StrategyBandit {
		t.Fatalf("missing/wrong adaptive info: %+v", info)
	}
	lastRound := info.Rounds[len(info.Rounds)-1]
	if lastRound.Patterns != res.Patterns || lastRound.Detected != res.Detected {
		t.Fatalf("final round %+v does not match result (%d patterns, %d detected)",
			lastRound, res.Patterns, res.Detected)
	}
	pulls := 0
	for _, p := range info.ArmPulls {
		pulls += p
	}
	if pulls != len(info.Rounds) {
		t.Fatalf("arm pulls %v (sum %d) != %d rounds", info.ArmPulls, pulls, len(info.Rounds))
	}
	for _, p := range res.Curve {
		if p.Patterns == 0 {
			continue
		}
		round := info.Rounds[p.Round]
		if p.WeightSet != round.WeightSet {
			t.Fatalf("curve point %+v attributed to set %d, round %d ran set %d",
				p, p.WeightSet, p.Round, round.WeightSet)
		}
	}
	// FirstDetected indices are global and consistent with Detected.
	det := 0
	for _, fd := range res.FirstDetected {
		if fd < 0 || fd > res.Patterns {
			t.Fatalf("first-detection index %d out of range [0,%d]", fd, res.Patterns)
		}
		if fd > 0 {
			det++
		}
	}
	if det != res.Detected {
		t.Fatalf("FirstDetected says %d detected, result says %d", det, res.Detected)
	}
}

// TestValidate covers the config validation matrix.
func TestValidate(t *testing.T) {
	cases := []struct {
		cfg   adapt.Config
		nSets int
		ok    bool
	}{
		{adapt.Config{}, 1, true},  // defaults to reopt
		{adapt.Config{}, 3, true},  // defaults to bandit
		{adapt.Config{Strategy: adapt.StrategyReopt}, 2, false},
		{adapt.Config{Strategy: adapt.StrategyBandit}, 1, false},
		{adapt.Config{Strategy: "annealing"}, 1, false},
		{adapt.Config{Epsilon: 1.5}, 2, false},
		{adapt.Config{TargetCoverage: 2}, 1, false},
		{adapt.Config{Strategy: adapt.StrategyBandit, Epsilon: 0.1, TargetCoverage: 0.99}, 2, true},
	}
	for i, tc := range cases {
		err := tc.cfg.Validate(tc.nSets)
		if (err == nil) != tc.ok {
			t.Errorf("case %d: Validate(%+v, %d) = %v, want ok=%v", i, tc.cfg, tc.nSets, err, tc.ok)
		}
	}
}

// TestStatsCounters checks the process-wide counters move.
func TestStatsCounters(t *testing.T) {
	c, faults := buildCircuit(t, "c432")
	before := adapt.GlobalStats()
	res := adapt.Run(c, faults, [][]float64{uniform(c)}, 5,
		adapt.Config{Strategy: adapt.StrategyReopt, BlockPatterns: 128, ReoptMaxSweeps: 1},
		sim.CampaignConfig{Patterns: 512, Workers: 1})
	after := adapt.GlobalStats()
	if after.Campaigns != before.Campaigns+1 {
		t.Fatalf("campaigns %d -> %d", before.Campaigns, after.Campaigns)
	}
	if got := after.Rounds - before.Rounds; got != int64(len(res.Adaptive.Rounds)) {
		t.Fatalf("rounds counter moved %d, result has %d rounds", got, len(res.Adaptive.Rounds))
	}
	if after.Reopts-before.Reopts != int64(res.Adaptive.Reopts) {
		t.Fatalf("reopt counter moved %d, result says %d", after.Reopts-before.Reopts, res.Adaptive.Reopts)
	}
}
