// Package adapt closes the loop between fault simulation and input
// weights: a block-adaptive campaign runs a block of patterns, inspects
// the still-undetected fault residue at the block boundary, re-weights,
// and repeats until the budget is exhausted, coverage stalls, or a
// target coverage is reached.
//
// Two re-weighting strategies are provided:
//
//   - Residual re-optimization (StrategyReopt): re-run the paper's
//     PREPARE/optimize step (internal/core) restricted to the alive
//     fault set, seeding the coordinate descent from the current
//     weights. The campaign starts from a single weight set — typically
//     the static §5 optimum — and sharpens it toward whatever faults
//     the patterns so far failed to catch.
//
//   - Deterministic multi-armed bandit (StrategyBandit): the campaign's
//     weight sets are the arms; each block plays one arm and scores it
//     by detections per pattern. Arm selection is UCB1, or seeded
//     epsilon-greedy when Config.Epsilon > 0. All randomness derives
//     from the campaign seed and round index, never from a wall clock.
//
// Determinism is the package's load-bearing property: every update
// happens only at a block boundary, each block's pattern stream is
// seeded by RoundSeed(campaign seed, round), and core.Optimize is
// bit-identical for every worker count — so an adaptive campaign is a
// pure function of (circuit, faults, config, seed) and byte-identical
// across worker counts, pattern shards, good-machine modes, and every
// engine backend, exactly like an open-loop campaign.
package adapt

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"optirand/internal/circuit"
	"optirand/internal/core"
	"optirand/internal/fault"
	"optirand/internal/prng"
	"optirand/internal/sim"
)

// Strategy names. They are wire-portable identifiers (see the wire
// package's AdaptiveSpec), so renaming one is a format change.
const (
	// StrategyReopt re-optimizes the weights on the alive fault residue
	// at each block boundary. Requires exactly one starting weight set.
	StrategyReopt = "reopt"
	// StrategyBandit treats the campaign's weight sets as bandit arms
	// and plays the empirically best one per block. Requires at least
	// two weight sets.
	StrategyBandit = "bandit"
)

// Defaults applied by Run for zero-valued Config fields.
const (
	// DefaultBlockPatterns is the per-round pattern block (4×64).
	DefaultBlockPatterns = 256
	// DefaultStallRounds terminates after this many consecutive
	// zero-detection blocks.
	DefaultStallRounds = 3
	// DefaultReoptMaxSweeps caps each residual re-optimization's
	// coordinate-descent sweeps — boundaries refine, they do not
	// restart the full procedure.
	DefaultReoptMaxSweeps = 4
)

// Config selects the adaptive control loop. It is part of task
// identity: two campaigns with different configs are different
// campaigns, and the config travels over the wire with the task.
// Scheduling knobs (worker counts, shards) are NOT here — they cannot
// change a result.
type Config struct {
	// Strategy is StrategyReopt or StrategyBandit. Empty selects reopt
	// for a single weight set and bandit for several.
	Strategy string
	// BlockPatterns is the pattern budget per round; <= 0 selects
	// DefaultBlockPatterns.
	BlockPatterns int
	// StallRounds terminates the loop after this many consecutive
	// zero-detection rounds; <= 0 selects DefaultStallRounds.
	StallRounds int
	// TargetCoverage in (0,1] stops the loop once reached; 0 runs to
	// the pattern budget.
	TargetCoverage float64
	// Epsilon in (0,1) selects seeded epsilon-greedy arm selection for
	// the bandit; 0 selects UCB1. Ignored by reopt.
	Epsilon float64
	// ReoptMaxSweeps caps each residual re-optimization's sweeps; <= 0
	// selects DefaultReoptMaxSweeps. Ignored by the bandit.
	ReoptMaxSweeps int
}

// withDefaults resolves the empty strategy and zero-valued knobs.
func (cfg Config) withDefaults(nSets int) Config {
	if cfg.Strategy == "" {
		if nSets > 1 {
			cfg.Strategy = StrategyBandit
		} else {
			cfg.Strategy = StrategyReopt
		}
	}
	if cfg.BlockPatterns <= 0 {
		cfg.BlockPatterns = DefaultBlockPatterns
	}
	if cfg.StallRounds <= 0 {
		cfg.StallRounds = DefaultStallRounds
	}
	if cfg.ReoptMaxSweeps <= 0 {
		cfg.ReoptMaxSweeps = DefaultReoptMaxSweeps
	}
	return cfg
}

// Validate reports the first problem of cfg against a campaign with
// nSets weight sets.
func (cfg *Config) Validate(nSets int) error {
	switch cfg.withDefaults(nSets).Strategy {
	case StrategyReopt:
		if nSets != 1 {
			return fmt.Errorf("adapt: strategy %q wants exactly 1 starting weight set, got %d", StrategyReopt, nSets)
		}
	case StrategyBandit:
		if nSets < 2 {
			return fmt.Errorf("adapt: strategy %q wants at least 2 candidate weight sets (arms), got %d", StrategyBandit, nSets)
		}
	default:
		return fmt.Errorf("adapt: unknown strategy %q (want %q or %q)", cfg.Strategy, StrategyReopt, StrategyBandit)
	}
	if cfg.Epsilon < 0 || cfg.Epsilon >= 1 {
		return fmt.Errorf("adapt: epsilon %v out of range [0,1)", cfg.Epsilon)
	}
	if cfg.TargetCoverage < 0 || cfg.TargetCoverage > 1 {
		return fmt.Errorf("adapt: target coverage %v out of range [0,1]", cfg.TargetCoverage)
	}
	return nil
}

// RoundSeed derives block round's pattern-stream seed from the
// campaign seed by the same SplitMix64 chaining the engine uses for
// task seeds — a pure function of (campaign seed, round), so blocks
// keep their streams whatever happened in earlier rounds.
func RoundSeed(seed uint64, round int) uint64 {
	h := prng.New(seed).Uint64()
	return prng.New(h ^ (uint64(round) + 0x9e3779b97f4a7c15)).Uint64()
}

// Stats is a snapshot of the package's process-wide activity counters,
// surfaced by the daemon's /v1/stats. Counters are cumulative since
// process start; they observe execution, never influence results.
type Stats struct {
	Campaigns  int64 `json:"campaigns"`
	Rounds     int64 `json:"rounds"`
	Reopts     int64 `json:"reoptimizations"`
	ArmPulls   int64 `json:"arm_pulls"`
	ReweightNS int64 `json:"reweight_ns"`
}

var stats struct {
	campaigns, rounds, reopts, armPulls, reweightNS atomic.Int64
}

// GlobalStats snapshots the process-wide adaptive counters.
func GlobalStats() Stats {
	return Stats{
		Campaigns:  stats.campaigns.Load(),
		Rounds:     stats.rounds.Load(),
		Reopts:     stats.reopts.Load(),
		ArmPulls:   stats.armPulls.Load(),
		ReweightNS: stats.reweightNS.Load(),
	}
}

// bandit is the deterministic arm-selection state: per-arm pull counts
// and cumulative per-pattern detection rewards.
type bandit struct {
	pulls  []int
	reward []float64
	eps    float64
	seed   uint64
}

// pick selects the arm for round. The first len(arms) rounds play each
// arm once in index order (both policies need initial estimates); after
// that, UCB1 when eps == 0, seeded epsilon-greedy otherwise. Ties break
// to the lowest index, so selection is deterministic.
func (b *bandit) pick(round int) int {
	k := len(b.pulls)
	if round < k {
		return round
	}
	if b.eps > 0 {
		// The exploration coin and the explored arm derive from the
		// campaign seed and round only.
		rng := prng.New(RoundSeed(b.seed, round) ^ 0xada9d1cebaddecaf)
		if rng.Float64() < b.eps {
			return rng.Intn(k)
		}
		return b.exploit(func(a int) float64 { return b.reward[a] / float64(b.pulls[a]) })
	}
	t := float64(round)
	return b.exploit(func(a int) float64 {
		return b.reward[a]/float64(b.pulls[a]) + math.Sqrt(2*math.Log(t)/float64(b.pulls[a]))
	})
}

func (b *bandit) exploit(score func(a int) float64) int {
	best, bestScore := 0, math.Inf(-1)
	for a := range b.pulls {
		if s := score(a); s > bestScore {
			best, bestScore = a, s
		}
	}
	return best
}

// Run executes a block-adaptive campaign: weightSets are the starting
// weights (one set for reopt, the candidate arms for the bandit), seed
// roots every block's pattern stream, and sched carries the total
// pattern budget, curve sampling, and the scheduling knobs each block
// runs under. The result is a pure function of (c, faults, weightSets,
// seed, cfg) — byte-identical for every sched.Workers/PatternShards/
// GoodMachine combination — with FirstDetected holding global 1-based
// pattern indices and Curve the concatenated per-block curves, each
// point attributed to its round and weight-set id.
func Run(c *circuit.Circuit, faults []fault.Fault, weightSets [][]float64,
	seed uint64, cfg Config, sched sim.CampaignConfig) *sim.CampaignResult {

	cfg = cfg.withDefaults(len(weightSets))
	stats.campaigns.Add(1)

	total := len(faults)
	budget := sched.Patterns
	info := &sim.AdaptiveInfo{Strategy: cfg.Strategy}
	res := &sim.CampaignResult{
		TotalFaults:   total,
		FirstDetected: make([]int, total),
		Adaptive:      info,
	}
	if budget <= 0 || total == 0 {
		res.Patterns = budget
		res.Curve = append(res.Curve, sim.CoveragePoint{Patterns: 0, Detected: 0, Coverage: res.Coverage()})
		return res
	}

	isBandit := cfg.Strategy == StrategyBandit
	var arms *bandit
	var curWeights []float64
	reoptVersion := 0
	if isBandit {
		arms = &bandit{
			pulls:  make([]int, len(weightSets)),
			reward: make([]float64, len(weightSets)),
			eps:    cfg.Epsilon,
			seed:   seed,
		}
		info.ArmPulls = arms.pulls
	} else {
		curWeights = append([]float64(nil), weightSets[0]...)
	}

	alive := make([]int, total)
	for i := range alive {
		alive[i] = i
	}
	sub := make([]fault.Fault, 0, total)
	applied, detected, zeroRounds := 0, 0, 0

	for round := 0; applied < budget && len(alive) > 0; round++ {
		stats.rounds.Add(1)
		block := cfg.BlockPatterns
		if rem := budget - applied; rem < block {
			block = rem
		}

		var ws []float64
		var wsID int
		if isBandit {
			wsID = arms.pick(round)
			ws = weightSets[wsID]
			arms.pulls[wsID]++
			stats.armPulls.Add(1)
		} else {
			ws, wsID = curWeights, reoptVersion
		}

		sub = sub[:0]
		for _, fi := range alive {
			sub = append(sub, faults[fi])
		}
		blockCfg := sched
		blockCfg.Patterns = block
		blockRes := sim.RunCampaignConfig(c, sub, [][]float64{ws}, RoundSeed(seed, round), blockCfg)

		// Merge the block into the global report: local first-detection
		// indices are block-relative, global ones offset by the patterns
		// already applied; the block's curve points shift the same way
		// and carry the round's attribution.
		for _, p := range blockRes.Curve {
			if p.Patterns == 0 {
				continue
			}
			d := detected + p.Detected
			res.Curve = append(res.Curve, sim.CoveragePoint{
				Patterns:  applied + p.Patterns,
				Detected:  d,
				Coverage:  float64(d) / float64(total),
				Round:     round,
				WeightSet: wsID,
			})
		}
		blockDet := 0
		kept := alive[:0]
		for i, fi := range alive {
			if fd := blockRes.FirstDetected[i]; fd > 0 {
				res.FirstDetected[fi] = applied + fd
				blockDet++
			} else {
				kept = append(kept, fi)
			}
		}
		alive = kept
		detected += blockDet
		applied += blockRes.Patterns
		cov := float64(detected) / float64(total)

		if isBandit {
			arms.reward[wsID] += float64(blockDet) / float64(block)
		}

		stat := sim.RoundStat{
			Round: round, WeightSet: wsID,
			Patterns: applied, Detected: detected, Coverage: cov,
		}

		if cfg.TargetCoverage > 0 && cov >= cfg.TargetCoverage {
			info.TargetHit = true
			info.Rounds = append(info.Rounds, stat)
			break
		}
		if blockDet == 0 {
			zeroRounds++
		} else {
			zeroRounds = 0
		}
		if zeroRounds >= cfg.StallRounds {
			info.Stalled = true
			info.Rounds = append(info.Rounds, stat)
			break
		}

		// Residual re-optimization at the boundary, for rounds still to
		// come: restrict the optimizer to the alive residue, seeded from
		// the current weights. A residue the optimizer rejects (every
		// fault suspected redundant) keeps the current weights — the
		// stall counter bounds how long that can go on.
		if !isBandit && len(alive) > 0 && applied < budget {
			sub = sub[:0]
			for _, fi := range alive {
				sub = append(sub, faults[fi])
			}
			start := time.Now()
			opt, err := core.Optimize(c, sub, core.Options{
				MaxSweeps:      cfg.ReoptMaxSweeps,
				InitialWeights: curWeights,
				Workers:        sched.Workers,
			})
			stats.reweightNS.Add(time.Since(start).Nanoseconds())
			if err == nil {
				curWeights = opt.Weights
				reoptVersion++
				info.Reopts++
				stat.Reoptimized = true
				stats.reopts.Add(1)
			}
		}
		info.Rounds = append(info.Rounds, stat)
	}

	res.Detected = detected
	res.Patterns = applied
	last := sim.CoveragePoint{Patterns: applied, Detected: detected, Coverage: res.Coverage()}
	if n := len(info.Rounds); n > 0 {
		last.Round = info.Rounds[n-1].Round
		last.WeightSet = info.Rounds[n-1].WeightSet
	}
	if len(res.Curve) == 0 || res.Curve[len(res.Curve)-1] != last {
		res.Curve = append(res.Curve, last)
	}
	return res
}
