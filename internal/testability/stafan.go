package testability

import (
	"math/bits"

	"optirand/internal/circuit"
	"optirand/internal/fault"
	"optirand/internal/prng"
	"optirand/internal/sim"
)

// Stafan is the simulation-counting estimator of Jain & Agrawal
// ("STAFAN: An Alternative to Fault Simulation", DAC 1984), one of the
// tools the paper lists as a possible ANALYSIS provider. It measures
// per-line 1-controllabilities and per-pin sensitization frequencies by
// counting signal values during fault-free simulation of weighted
// random patterns, then combines them with COP-style observability
// recursion. Measured controllabilities capture the reconvergence
// correlations the purely analytic estimator misses; the price is
// sampling error ~1/sqrt(64·Words) that floors the resolvable
// probabilities.
type Stafan struct {
	Circuit *circuit.Circuit
	// Words is the number of 64-pattern simulation batches counted
	// (default 256 → 16384 patterns).
	Words int
	// Seed makes the measurement reproducible.
	Seed uint64
}

// DetectProbs implements Estimator.
func (s *Stafan) DetectProbs(weights []float64, faults []fault.Fault) []float64 {
	c := s.Circuit
	words := s.Words
	if words <= 0 {
		words = 256
	}
	simr := sim.NewSimulator(c)
	rng := prng.New(s.Seed)
	in := make([]uint64, c.NumInputs())

	ones := make([]int, c.NumGates())
	// sens[g][pin]: patterns where the side inputs of g hold
	// non-controlling values at pin.
	sens := make([][]int, c.NumGates())
	for g := range sens {
		sens[g] = make([]int, len(c.Gates[g].Fanin))
	}

	for w := 0; w < words; w++ {
		rng.WeightedWords(in, weights)
		simr.SetInputs(in)
		simr.Run()
		for g := 0; g < c.NumGates(); g++ {
			ones[g] += bits.OnesCount64(simr.Value(g))
			gate := &c.Gates[g]
			switch gate.Type {
			case circuit.And, circuit.Nand:
				for pin := range gate.Fanin {
					mask := ^uint64(0)
					for k, f := range gate.Fanin {
						if k != pin {
							mask &= simr.Value(f)
						}
					}
					sens[g][pin] += bits.OnesCount64(mask)
				}
			case circuit.Or, circuit.Nor:
				for pin := range gate.Fanin {
					mask := ^uint64(0)
					for k, f := range gate.Fanin {
						if k != pin {
							mask &= ^simr.Value(f)
						}
					}
					sens[g][pin] += bits.OnesCount64(mask)
				}
			case circuit.Xor, circuit.Xnor, circuit.Not, circuit.Buf:
				for pin := range gate.Fanin {
					sens[g][pin] += 64
				}
			}
		}
	}

	total := float64(64 * words)
	c1 := make([]float64, c.NumGates())
	for g := range c1 {
		c1[g] = float64(ones[g]) / total
	}
	sensP := func(g, pin int) float64 {
		return float64(sens[g][pin]) / total
	}

	// Observability recursion on measured sensitizations.
	obs := make([]float64, c.NumGates())
	topo := c.TopoOrder()
	for i := len(topo) - 1; i >= 0; i-- {
		g := topo[i]
		if c.IsOutput(g) {
			obs[g] = 1
			continue
		}
		noObs := 1.0
		for _, p := range c.Fanout(g) {
			noObs *= 1 - sensP(p.Gate, p.Pin)*obs[p.Gate]
		}
		obs[g] = 1 - noObs
	}

	out := make([]float64, len(faults))
	for i, f := range faults {
		if f.IsStem() {
			act := c1[f.Gate]
			if f.Stuck == 1 {
				act = 1 - act
			}
			out[i] = act * obs[f.Gate]
			continue
		}
		d := c.Gates[f.Gate].Fanin[f.Pin]
		act := c1[d]
		if f.Stuck == 1 {
			act = 1 - act
		}
		out[i] = act * sensP(f.Gate, f.Pin) * obs[f.Gate]
	}
	return out
}

var _ Estimator = (*Stafan)(nil)
