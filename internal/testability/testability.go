// Package testability estimates fault detection probabilities of
// combinational circuits under weighted random patterns — the ANALYSIS
// step of the paper, reimplementing the estimation layer of PROTEST
// [Wu85].
//
// The production estimator (Analyzer) propagates signal probabilities
// forward under the input-independence assumption and COP-style
// observabilities backward; the detection probability of a stuck-at
// fault is activation × sensitization × observability. It is exact on
// fanout-free circuits and an estimate elsewhere. Monte-Carlo and
// exact-BDD estimators implement the same interface for validation.
package testability

import (
	"fmt"

	"optirand/internal/circuit"
	"optirand/internal/fault"
	"optirand/internal/prob"
	"optirand/internal/sim"
)

// Estimator computes detection probabilities for a list of faults under
// per-input 1-probabilities.
type Estimator interface {
	// DetectProbs returns p_f for each fault, in order.
	DetectProbs(weights []float64, faults []fault.Fault) []float64
}

// Analyzer is the PROTEST-analogue analytic estimator. It retains its
// internal arrays between runs, so one Analyzer can serve thousands of
// analyses without allocation; it is not safe for concurrent use.
type Analyzer struct {
	c *circuit.Circuit

	weights []float64
	p       []float64 // P(gate output = 1)
	obs     []float64 // stem observability

	revOrder []int   // reverse topological order
	cones    [][]int // forward cone per input position (topo-sorted), lazy
	// incremental bookkeeping
	incremental bool
	analyses    int
}

// NewAnalyzer creates an analyzer for c. Incremental signal-probability
// updates (used by the optimizer's PREPARE step) are enabled by default.
func NewAnalyzer(c *circuit.Circuit) *Analyzer {
	n := c.NumGates()
	topo := c.TopoOrder()
	rev := make([]int, n)
	for i, g := range topo {
		rev[n-1-i] = g
	}
	return &Analyzer{
		c:           c,
		weights:     make([]float64, c.NumInputs()),
		p:           make([]float64, n),
		obs:         make([]float64, n),
		revOrder:    rev,
		incremental: true,
	}
}

// Circuit returns the analyzed circuit.
func (a *Analyzer) Circuit() *circuit.Circuit { return a.c }

// SetIncremental toggles the cone-limited signal-probability fast path.
// With it disabled every Run recomputes all gates (the ablation
// baseline).
func (a *Analyzer) SetIncremental(on bool) { a.incremental = on }

// Analyses returns the number of full or partial analysis passes run,
// for performance accounting (the paper's Table 5 measures exactly
// this loop).
func (a *Analyzer) Analyses() int { return a.analyses }

// Run computes signal probabilities and observabilities for the given
// input weights. weights[i] is P(input i = 1).
func (a *Analyzer) Run(weights []float64) {
	if len(weights) != a.c.NumInputs() {
		panic(fmt.Sprintf("testability: Run: got %d weights, want %d", len(weights), a.c.NumInputs()))
	}
	a.analyses++
	changed := -1
	nChanged := 0
	for i, w := range weights {
		if a.weights[i] != w {
			changed, nChanged = i, nChanged+1
		}
	}
	copy(a.weights, weights)
	if a.incremental && nChanged == 1 && a.analyses > 1 {
		a.updateSignalCone(changed)
	} else {
		a.signalFull()
	}
	a.observabilities()
}

func (a *Analyzer) signalFull() {
	c := a.c
	for pos, g := range c.Inputs {
		a.p[g] = a.weights[pos]
	}
	for _, g := range c.TopoOrder() {
		gate := &c.Gates[g]
		if gate.Type == circuit.Input {
			continue
		}
		a.p[g] = prob.GateProb(gate.Type, gate.Fanin, a.p)
	}
}

// updateSignalCone recomputes probabilities only in the forward cone of
// the changed input. Cones are computed lazily and cached.
func (a *Analyzer) updateSignalCone(inputPos int) {
	c := a.c
	if a.cones == nil {
		a.cones = make([][]int, c.NumInputs())
	}
	cone := a.cones[inputPos]
	if cone == nil {
		cone = c.ForwardCone(c.Inputs[inputPos])
		// Sort by topological position (ForwardCone returns sorted by
		// index; re-sort by level order using positions in TopoOrder).
		pos := make(map[int]int, c.NumGates())
		for i, g := range c.TopoOrder() {
			pos[g] = i
		}
		for i := 1; i < len(cone); i++ {
			for j := i; j > 0 && pos[cone[j-1]] > pos[cone[j]]; j-- {
				cone[j-1], cone[j] = cone[j], cone[j-1]
			}
		}
		a.cones[inputPos] = cone
	}
	a.p[c.Inputs[inputPos]] = a.weights[inputPos]
	for _, g := range cone {
		gate := &c.Gates[g]
		if gate.Type == circuit.Input {
			continue
		}
		a.p[g] = prob.GateProb(gate.Type, gate.Fanin, a.p)
	}
}

// observabilities computes COP-style stem observabilities in reverse
// topological order:
//
//	obs(PO) = 1
//	obs(g)  = 1 - Π_{(h,j) ∈ fanout(g)} (1 - sens(h,j)·obs(h))
//
// where sens(h,j) is the probability that the side inputs of h hold
// non-controlling values (1 for XOR-family and single-input gates).
func (a *Analyzer) observabilities() {
	c := a.c
	for _, g := range a.revOrder {
		if c.IsOutput(g) {
			a.obs[g] = 1
			continue
		}
		noObs := 1.0
		for _, pin := range c.Fanout(g) {
			term := a.sensitization(pin.Gate, pin.Pin) * a.obs[pin.Gate]
			noObs *= 1 - term
		}
		a.obs[g] = 1 - noObs
	}
}

// sensitization returns the probability that a value change on input
// pin `pin` of gate h propagates to h's output, under independence.
func (a *Analyzer) sensitization(h, pin int) float64 {
	gate := &a.c.Gates[h]
	switch gate.Type {
	case circuit.And, circuit.Nand:
		s := 1.0
		for k, f := range gate.Fanin {
			if k != pin {
				s *= a.p[f]
			}
		}
		return s
	case circuit.Or, circuit.Nor:
		s := 1.0
		for k, f := range gate.Fanin {
			if k != pin {
				s *= 1 - a.p[f]
			}
		}
		return s
	case circuit.Xor, circuit.Xnor, circuit.Not, circuit.Buf:
		return 1
	}
	return 0 // Input/Const gates have no sensitizable pins
}

// SignalProb returns P(gate g = 1) from the last Run.
func (a *Analyzer) SignalProb(g int) float64 { return a.p[g] }

// Observability returns the stem observability of gate g from the last
// Run.
func (a *Analyzer) Observability(g int) float64 { return a.obs[g] }

// DetectProb estimates the detection probability of fault f using the
// state of the last Run: activation × (branch sensitization ×)
// observability.
func (a *Analyzer) DetectProb(f fault.Fault) float64 {
	if f.IsStem() {
		act := a.p[f.Gate]
		if f.Stuck == 1 {
			act = 1 - act
		}
		return act * a.obs[f.Gate]
	}
	d := a.c.Gates[f.Gate].Fanin[f.Pin]
	act := a.p[d]
	if f.Stuck == 1 {
		act = 1 - act
	}
	return act * a.sensitization(f.Gate, f.Pin) * a.obs[f.Gate]
}

// DetectProbsInto fills out[i] with the estimate for faults[i].
func (a *Analyzer) DetectProbsInto(faults []fault.Fault, out []float64) {
	for i, f := range faults {
		out[i] = a.DetectProb(f)
	}
}

// DetectProbs implements Estimator: Run followed by per-fault queries.
func (a *Analyzer) DetectProbs(weights []float64, faults []fault.Fault) []float64 {
	a.Run(weights)
	out := make([]float64, len(faults))
	a.DetectProbsInto(faults, out)
	return out
}

// MonteCarlo is a sampling estimator: it fault-simulates 64·Words
// weighted random patterns without fault dropping and reports detection
// frequencies. Only meaningful for probabilities well above
// 1/(64·Words).
type MonteCarlo struct {
	Circuit *circuit.Circuit
	Words   int
	Seed    uint64
}

// DetectProbs implements Estimator.
func (m *MonteCarlo) DetectProbs(weights []float64, faults []fault.Fault) []float64 {
	return sim.EstimateDetectProbs(m.Circuit, faults, weights, m.Words, m.Seed)
}

// Exact is the BDD-backed exact estimator (Parker–McCluskey). Viable for
// small circuits only; it is the ground truth in tests.
type Exact struct {
	Circuit *circuit.Circuit
}

// DetectProbs implements Estimator.
func (e *Exact) DetectProbs(weights []float64, faults []fault.Fault) []float64 {
	return prob.ExactDetectProbs(e.Circuit, faults, weights)
}

var (
	_ Estimator = (*Analyzer)(nil)
	_ Estimator = (*MonteCarlo)(nil)
	_ Estimator = (*Exact)(nil)
)
