package testability

import (
	"math"
	"testing"

	"optirand/internal/circuit"
	"optirand/internal/fault"
)

// TestStafanAgreesWithExactOnTree: with enough samples, the counting
// estimator converges to the exact detection probabilities on a tree.
func TestStafanAgreesWithExactOnTree(t *testing.T) {
	c := tree(t)
	u := fault.New(c)
	w := []float64{0.5, 0.5, 0.5, 0.5}
	st := &Stafan{Circuit: c, Words: 1500, Seed: 7}
	got := st.DetectProbs(w, u.Reps)
	want := (&Exact{Circuit: c}).DetectProbs(w, u.Reps)
	for i := range got {
		if math.Abs(got[i]-want[i]) > 0.02 {
			t.Errorf("fault %v: stafan=%v exact=%v", u.Reps[i].Describe(c), got[i], want[i])
		}
	}
}

// TestStafanControllabilityBeatsCOPOnReconvergence: on a circuit where
// COP's independence assumption is wrong, STAFAN's *measured* signal
// probabilities are exact up to sampling noise. (Observability remains
// heuristic for both.)
func TestStafanControllabilityBeatsCOP(t *testing.T) {
	// o = AND(n, g2) where n = NOT a, g2 = OR(n, b): P(o=1) = P(n & (n|b)) = P(n) = 0.5.
	// COP computes P(n)·P(n|b) = 0.5·0.75 = 0.375 — wrong.
	b := circuit.NewBuilder("recon")
	a := b.Input("a")
	x := b.Input("b")
	n := b.Not("n", a)
	g2 := b.Or("g2", n, x)
	o := b.And("o", n, g2)
	b.Output("o", o)
	c := b.MustBuild()

	w := []float64{0.5, 0.5}
	u := fault.New(c)
	oStuck0 := fault.Fault{Gate: o, Pin: fault.StemPin, Stuck: 0}
	_ = u

	cop := NewAnalyzer(c)
	copP := cop.DetectProbs(w, []fault.Fault{oStuck0})[0]
	st := &Stafan{Circuit: c, Words: 1000, Seed: 11}
	stP := st.DetectProbs(w, []fault.Fault{oStuck0})[0]

	// True detection probability of o s-a-0 is P(o=1) = 0.5 (o is a PO).
	if math.Abs(stP-0.5) > 0.02 {
		t.Errorf("stafan estimate %v, want ~0.5", stP)
	}
	if math.Abs(copP-0.375) > 1e-9 {
		t.Errorf("COP estimate %v, expected its characteristic 0.375 bias", copP)
	}
}

// TestStafanDeterministicAndBounded: same seed, same numbers; all in
// [0,1].
func TestStafanDeterministicAndBounded(t *testing.T) {
	c := randCircuit(3, 6, 25)
	u := fault.New(c)
	w := make([]float64, c.NumInputs())
	for i := range w {
		w[i] = 0.3
	}
	a := (&Stafan{Circuit: c, Words: 64, Seed: 5}).DetectProbs(w, u.Reps)
	b := (&Stafan{Circuit: c, Words: 64, Seed: 5}).DetectProbs(w, u.Reps)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault %d: %v vs %v", i, a[i], b[i])
		}
		if a[i] < 0 || a[i] > 1 || math.IsNaN(a[i]) {
			t.Fatalf("fault %d: out of range %v", i, a[i])
		}
	}
}

// TestStafanDefaultWords: zero Words falls back to the default.
func TestStafanDefaultWords(t *testing.T) {
	c := tree(t)
	u := fault.New(c)
	st := &Stafan{Circuit: c, Seed: 1}
	probs := st.DetectProbs([]float64{0.5, 0.5, 0.5, 0.5}, u.Reps[:1])
	if len(probs) != 1 || probs[0] <= 0 {
		t.Errorf("probs = %v", probs)
	}
}
