package testability

import (
	"math"
	"testing"

	"optirand/internal/circuit"
	"optirand/internal/fault"
	"optirand/internal/prng"
)

func tree(t *testing.T) *circuit.Circuit {
	t.Helper()
	b := circuit.NewBuilder("tree")
	in := b.Inputs("x", 4)
	g1 := b.And("g1", in[0], in[1])
	g2 := b.Or("g2", in[2], in[3])
	o := b.Nand("o", g1, g2)
	b.Output("o", o)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestExactOnTree: on a fanout-free circuit the analytic estimator must
// equal the exact (BDD) detection probabilities for every fault.
func TestExactOnTree(t *testing.T) {
	c := tree(t)
	u := fault.New(c)
	weightSets := [][]float64{
		{0.5, 0.5, 0.5, 0.5},
		{0.2, 0.8, 0.4, 0.9},
		{0.05, 0.95, 0.5, 0.35},
	}
	a := NewAnalyzer(c)
	ex := &Exact{Circuit: c}
	for _, w := range weightSets {
		got := a.DetectProbs(w, u.Reps)
		want := ex.DetectProbs(w, u.Reps)
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-12 {
				t.Errorf("weights %v fault %v: analyzer=%v exact=%v",
					w, u.Reps[i].Describe(c), got[i], want[i])
			}
		}
	}
}

// TestSignalAndObsKnown checks hand-computed values on a 2-AND circuit.
func TestSignalAndObsKnown(t *testing.T) {
	b := circuit.NewBuilder("and2")
	x := b.Input("x")
	y := b.Input("y")
	g := b.And("g", x, y)
	b.Output("o", g)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	a := NewAnalyzer(c)
	a.Run([]float64{0.5, 0.25})
	if p := a.SignalProb(g); math.Abs(p-0.125) > 1e-12 {
		t.Errorf("P(g) = %v, want 0.125", p)
	}
	if o := a.Observability(g); o != 1 {
		t.Errorf("obs(g) = %v, want 1 (primary output)", o)
	}
	// obs(x) = P(y=1) * obs(g) = 0.25
	if o := a.Observability(x); math.Abs(o-0.25) > 1e-12 {
		t.Errorf("obs(x) = %v, want 0.25", o)
	}
	// x s-a-0 detected iff x=1 and y=1: p = 0.5*0.25.
	p := a.DetectProb(fault.Fault{Gate: x, Pin: fault.StemPin, Stuck: 0})
	if math.Abs(p-0.125) > 1e-12 {
		t.Errorf("p(x s-a-0) = %v, want 0.125", p)
	}
	// g s-a-1 detected iff g=0: p = 1 - 0.125.
	p = a.DetectProb(fault.Fault{Gate: g, Pin: fault.StemPin, Stuck: 1})
	if math.Abs(p-0.875) > 1e-12 {
		t.Errorf("p(g s-a-1) = %v, want 0.875", p)
	}
}

// TestIncrementalMatchesFull: single-weight updates through the cone
// fast path must give identical results to full recomputation.
func TestIncrementalMatchesFull(t *testing.T) {
	c := randCircuit(3, 8, 40)
	u := fault.New(c)
	inc := NewAnalyzer(c)
	full := NewAnalyzer(c)
	full.SetIncremental(false)

	rng := prng.New(5)
	w := make([]float64, c.NumInputs())
	for i := range w {
		w[i] = rng.Float64()
	}
	inc.Run(w)
	full.Run(w)
	for step := 0; step < 50; step++ {
		i := rng.Intn(len(w))
		w[i] = rng.Float64()
		inc.Run(w)
		full.Run(w)
		for _, f := range u.Reps {
			a, b := inc.DetectProb(f), full.DetectProb(f)
			if math.Abs(a-b) > 1e-12 {
				t.Fatalf("step %d fault %v: incremental=%v full=%v", step, f.Describe(c), a, b)
			}
		}
	}
}

// TestEstimatorTracksExact: on random reconvergent circuits the
// analytic estimate will not match the exact value — the independence
// assumption can even assign positive probability to faults that
// reconvergence makes undetectable (PROTEST shares this limitation;
// the paper only claims exact-0/1 *signal* probabilities as redundancy
// proofs). What must hold is the converse direction: faults the exact
// analysis finds easy must not be estimated as near-undetectable,
// since that would derail the optimizer's hard-fault selection.
func TestEstimatorTracksExact(t *testing.T) {
	for seed := uint64(0); seed < 5; seed++ {
		c := randCircuit(seed, 6, 25)
		u := fault.New(c)
		w := make([]float64, c.NumInputs())
		for i := range w {
			w[i] = 0.5
		}
		a := NewAnalyzer(c)
		est := a.DetectProbs(w, u.Reps)
		exact := (&Exact{Circuit: c}).DetectProbs(w, u.Reps)
		for i := range est {
			if exact[i] > 0.4 && est[i] < 0.02 {
				t.Errorf("seed %d fault %v: exact=%v but estimate=%v (gross underestimate)",
					seed, u.Reps[i].Describe(c), exact[i], est[i])
			}
		}
	}
}

// TestMonteCarloAgreesWithExact on a small tree.
func TestMonteCarloAgreesWithExact(t *testing.T) {
	c := tree(t)
	u := fault.New(c)
	w := []float64{0.5, 0.5, 0.5, 0.5}
	mc := &MonteCarlo{Circuit: c, Words: 500, Seed: 9}
	got := mc.DetectProbs(w, u.Reps)
	want := (&Exact{Circuit: c}).DetectProbs(w, u.Reps)
	for i := range got {
		if math.Abs(got[i]-want[i]) > 0.03 {
			t.Errorf("fault %v: MC=%v exact=%v", u.Reps[i].Describe(c), got[i], want[i])
		}
	}
}

// TestDetectProbRange: estimates are probabilities.
func TestDetectProbRange(t *testing.T) {
	c := randCircuit(7, 6, 30)
	u := fault.New(c)
	a := NewAnalyzer(c)
	rng := prng.New(2)
	w := make([]float64, c.NumInputs())
	for trial := 0; trial < 10; trial++ {
		for i := range w {
			w[i] = rng.Float64()
		}
		probs := a.DetectProbs(w, u.All)
		for i, p := range probs {
			if p < 0 || p > 1 || math.IsNaN(p) {
				t.Fatalf("trial %d fault %v: p=%v", trial, u.All[i], p)
			}
		}
	}
}

// TestWideEqualityHardFault: the paper's motivating structure. For a
// k-bit equality comparator (AND of k XNORs) at weights 0.5, the fault
// "equality output s-a-0" has detection probability 2^-k: the analyzer
// must report exactly that (the cone is a tree).
func TestWideEqualityHardFault(t *testing.T) {
	const k = 24
	b := circuit.NewBuilder("eq24")
	as := b.Inputs("a", k)
	bs := b.Inputs("b", k)
	xn := make([]int, k)
	for i := 0; i < k; i++ {
		xn[i] = b.Xnor("", as[i], bs[i])
	}
	eq := b.And("eq", xn...)
	b.Output("eq", eq)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	a := NewAnalyzer(c)
	w := make([]float64, c.NumInputs())
	for i := range w {
		w[i] = 0.5
	}
	a.Run(w)
	p := a.DetectProb(fault.Fault{Gate: eq, Pin: fault.StemPin, Stuck: 0})
	want := math.Pow(2, -24)
	if math.Abs(p-want)/want > 1e-9 {
		t.Errorf("p(eq s-a-0) = %v, want 2^-24 = %v", p, want)
	}
	// At optimized weights 0.9 the per-bit match probability is
	// 0.9^2+0.1^2 = 0.82 and the fault probability rises by ~5 orders
	// of magnitude — the entire point of the paper.
	for i := range w {
		w[i] = 0.9
	}
	a.Run(w)
	p2 := a.DetectProb(fault.Fault{Gate: eq, Pin: fault.StemPin, Stuck: 0})
	want2 := math.Pow(0.82, 24)
	if math.Abs(p2-want2)/want2 > 1e-9 {
		t.Errorf("p(eq s-a-0 | w=0.9) = %v, want %v", p2, want2)
	}
	if p2/p < 1e4 {
		t.Errorf("weighting gain = %v, expected > 10^4", p2/p)
	}
}

func randCircuit(seed uint64, nIn, nGates int) *circuit.Circuit {
	rng := prng.New(seed)
	b := circuit.NewBuilder("rand")
	ids := b.Inputs("x", nIn)
	types := []circuit.GateType{circuit.And, circuit.Nand, circuit.Or,
		circuit.Nor, circuit.Xor, circuit.Xnor, circuit.Not}
	for i := 0; i < nGates; i++ {
		ty := types[rng.Intn(len(types))]
		if ty == circuit.Not {
			ids = append(ids, b.Add(ty, "", ids[rng.Intn(len(ids))]))
			continue
		}
		fan := make([]int, 2+rng.Intn(2))
		for j := range fan {
			fan[j] = ids[rng.Intn(len(ids))]
		}
		ids = append(ids, b.Add(ty, "", fan...))
	}
	b.Output("", ids[len(ids)-1])
	b.Output("", ids[len(ids)-2])
	c, err := b.Build()
	if err != nil {
		panic(err)
	}
	return c
}
