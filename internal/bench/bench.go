// Package bench reads and writes combinational netlists in the ISCAS
// "bench" text format:
//
//	# comment
//	INPUT(G1)
//	OUTPUT(G17)
//	G17 = NAND(G1, G8)
//	G8  = NOT(G1)
//
// Extensions over the classic format: CONST0/CONST1 gates (written with
// empty argument lists) and n-ary XOR/XNOR. Gate definitions may appear
// in any order; the parser resolves forward references.
package bench

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"optirand/internal/circuit"
)

var typeByName = map[string]circuit.GateType{
	"BUF":    circuit.Buf,
	"BUFF":   circuit.Buf,
	"NOT":    circuit.Not,
	"INV":    circuit.Not,
	"AND":    circuit.And,
	"NAND":   circuit.Nand,
	"OR":     circuit.Or,
	"NOR":    circuit.Nor,
	"XOR":    circuit.Xor,
	"XNOR":   circuit.Xnor,
	"CONST0": circuit.Const0,
	"CONST1": circuit.Const1,
}

// ParseError describes a syntax or semantic error with its line number.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("bench: line %d: %s", e.Line, e.Msg)
}

type rawGate struct {
	name   string
	typ    circuit.GateType
	fanin  []string
	line   int
	isIn   bool
	defGot bool
}

// Parse reads a netlist in bench format. The circuit name is taken from
// the first "# name: ..." comment if present, else name is "bench".
func Parse(r io.Reader) (*circuit.Circuit, error) {
	name := "bench"
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)

	gates := make(map[string]*rawGate)
	var order []string   // first-mention order, for stable gate numbering
	var outputs []string // output names in declaration order
	var inputs []string  // input names in declaration order

	touch := func(n string, line int) *rawGate {
		g, ok := gates[n]
		if !ok {
			g = &rawGate{name: n, line: line}
			gates[n] = g
			order = append(order, n)
		}
		return g
	}

	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			c := strings.TrimSpace(strings.TrimPrefix(line, "#"))
			if strings.HasPrefix(c, "name:") {
				if n := strings.TrimSpace(strings.TrimPrefix(c, "name:")); n != "" {
					name = n
				}
			}
			continue
		}
		up := strings.ToUpper(line)
		switch {
		case strings.HasPrefix(up, "INPUT(") || strings.HasPrefix(up, "INPUT ("):
			arg, err := parenArg(line, lineno)
			if err != nil {
				return nil, err
			}
			g := touch(arg, lineno)
			if g.isIn {
				return nil, &ParseError{lineno, fmt.Sprintf("input %q declared twice", arg)}
			}
			g.isIn = true
			g.typ = circuit.Input
			g.defGot = true
			inputs = append(inputs, arg)
		case strings.HasPrefix(up, "OUTPUT(") || strings.HasPrefix(up, "OUTPUT ("):
			arg, err := parenArg(line, lineno)
			if err != nil {
				return nil, err
			}
			touch(arg, lineno)
			outputs = append(outputs, arg)
		default:
			lhs, rhs, ok := strings.Cut(line, "=")
			if !ok {
				return nil, &ParseError{lineno, fmt.Sprintf("cannot parse %q", line)}
			}
			gname := strings.TrimSpace(lhs)
			if gname == "" {
				return nil, &ParseError{lineno, "empty gate name"}
			}
			tname, args, err := splitCall(strings.TrimSpace(rhs), lineno)
			if err != nil {
				return nil, err
			}
			typ, ok := typeByName[strings.ToUpper(tname)]
			if !ok {
				return nil, &ParseError{lineno, fmt.Sprintf("unknown gate type %q", tname)}
			}
			g := touch(gname, lineno)
			if g.defGot {
				return nil, &ParseError{lineno, fmt.Sprintf("gate %q defined twice", gname)}
			}
			g.defGot = true
			g.typ = typ
			g.fanin = args
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("bench: read: %w", err)
	}

	// Resolve names to indices in first-mention order.
	index := make(map[string]int, len(order))
	for i, n := range order {
		index[n] = i
	}
	cgates := make([]circuit.Gate, len(order))
	for i, n := range order {
		g := gates[n]
		if !g.defGot {
			return nil, &ParseError{g.line, fmt.Sprintf("signal %q is used but never defined", n)}
		}
		cg := circuit.Gate{Name: n, Type: g.typ}
		for _, f := range g.fanin {
			fi, ok := index[f]
			if !ok {
				return nil, &ParseError{g.line, fmt.Sprintf("gate %q: unknown fanin %q", n, f)}
			}
			cg.Fanin = append(cg.Fanin, fi)
		}
		cgates[i] = cg
	}
	cin := make([]int, len(inputs))
	for i, n := range inputs {
		cin[i] = index[n]
	}
	cout := make([]int, len(outputs))
	for i, n := range outputs {
		cout[i] = index[n]
	}
	return circuit.New(name, cgates, cin, cout)
}

// ParseString parses a netlist held in a string.
func ParseString(s string) (*circuit.Circuit, error) {
	return Parse(strings.NewReader(s))
}

func parenArg(line string, lineno int) (string, error) {
	open := strings.IndexByte(line, '(')
	close := strings.LastIndexByte(line, ')')
	if open < 0 || close < open {
		return "", &ParseError{lineno, fmt.Sprintf("malformed declaration %q", line)}
	}
	arg := strings.TrimSpace(line[open+1 : close])
	if arg == "" {
		return "", &ParseError{lineno, "empty argument"}
	}
	return arg, nil
}

func splitCall(rhs string, lineno int) (typ string, args []string, err error) {
	open := strings.IndexByte(rhs, '(')
	if open < 0 {
		// Bare type (CONST0 / CONST1).
		return strings.TrimSpace(rhs), nil, nil
	}
	close := strings.LastIndexByte(rhs, ')')
	if close < open {
		return "", nil, &ParseError{lineno, fmt.Sprintf("malformed gate call %q", rhs)}
	}
	typ = strings.TrimSpace(rhs[:open])
	inner := strings.TrimSpace(rhs[open+1 : close])
	if inner == "" {
		return typ, nil, nil
	}
	for _, a := range strings.Split(inner, ",") {
		a = strings.TrimSpace(a)
		if a == "" {
			return "", nil, &ParseError{lineno, fmt.Sprintf("empty fanin in %q", rhs)}
		}
		args = append(args, a)
	}
	return typ, args, nil
}

// Write emits the circuit in bench format. Gate names are used if
// present, otherwise synthesized as g<N>. The output is deterministic.
func Write(w io.Writer, c *circuit.Circuit) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# name: %s\n", c.Name)
	st := c.Stats()
	fmt.Fprintf(bw, "# %d inputs, %d outputs, %d gates, depth %d\n",
		st.Inputs, st.Outputs, st.Gates-st.Inputs, st.Depth)
	nameOf := func(g int) string { return c.GateName(g) }
	for _, g := range c.Inputs {
		fmt.Fprintf(bw, "INPUT(%s)\n", nameOf(g))
	}
	for _, g := range c.Outputs {
		fmt.Fprintf(bw, "OUTPUT(%s)\n", nameOf(g))
	}
	for _, g := range c.TopoOrder() {
		gate := &c.Gates[g]
		if gate.Type == circuit.Input {
			continue
		}
		names := make([]string, len(gate.Fanin))
		for i, f := range gate.Fanin {
			names[i] = nameOf(f)
		}
		fmt.Fprintf(bw, "%s = %s(%s)\n", nameOf(g), gate.Type, strings.Join(names, ", "))
	}
	return bw.Flush()
}

// String renders the circuit in bench format.
func String(c *circuit.Circuit) string {
	var sb strings.Builder
	if err := Write(&sb, c); err != nil {
		panic(err) // strings.Builder never errors
	}
	return sb.String()
}

// SortedSignalNames returns all gate names in the circuit, sorted; it is
// a convenience for golden tests and diagnostics.
func SortedSignalNames(c *circuit.Circuit) []string {
	names := make([]string, 0, c.NumGates())
	for g := 0; g < c.NumGates(); g++ {
		names = append(names, c.GateName(g))
	}
	sort.Strings(names)
	return names
}
