package bench

import (
	"strings"
	"testing"
)

const c17 = `
# name: c17
# the classic 6-NAND example from the ISCAS'85 set
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
`

func TestParseC17(t *testing.T) {
	c, err := ParseString(c17)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if c.Name != "c17" {
		t.Errorf("Name = %q, want c17", c.Name)
	}
	if c.NumInputs() != 5 || c.NumOutputs() != 2 || c.NumGates() != 11 {
		t.Errorf("got %d inputs, %d outputs, %d gates", c.NumInputs(), c.NumOutputs(), c.NumGates())
	}
	// Known truth vector: all inputs 1 -> G10=NAND(1,1)=0, G11=0,
	// G16=NAND(1,0)=1, G19=NAND(0,1)=1, G22=NAND(0,1)=1, G23=NAND(1,1)=0.
	out := c.EvalOutputs([]bool{true, true, true, true, true})
	if out[0] != true || out[1] != false {
		t.Errorf("EvalOutputs(all ones) = %v, want [true false]", out)
	}
}

func TestForwardReferences(t *testing.T) {
	// Definition order reversed relative to topological order.
	src := `
INPUT(a)
INPUT(b)
OUTPUT(o)
o = NOT(m)
m = AND(a, b)
`
	c, err := ParseString(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	out := c.EvalOutputs([]bool{true, true})
	if out[0] != false {
		t.Errorf("NOT(AND(1,1)) = %v, want false", out[0])
	}
}

func TestConstGates(t *testing.T) {
	src := `
INPUT(a)
OUTPUT(o)
one = CONST1
o = AND(a, one)
`
	c, err := ParseString(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if got := c.EvalOutputs([]bool{true})[0]; got != true {
		t.Errorf("AND(1, CONST1) = %v", got)
	}
	if got := c.EvalOutputs([]bool{false})[0]; got != false {
		t.Errorf("AND(0, CONST1) = %v", got)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"unknown type", "INPUT(a)\nOUTPUT(o)\no = FROB(a)\n"},
		{"undefined signal", "INPUT(a)\nOUTPUT(o)\no = AND(a, ghost)\n"},
		{"double definition", "INPUT(a)\nINPUT(b)\nOUTPUT(o)\no = AND(a, b)\no = OR(a, b)\n"},
		{"double input", "INPUT(a)\nINPUT(a)\nOUTPUT(a)\n"},
		{"garbage line", "INPUT(a)\nOUTPUT(a)\nwhat is this\n"},
		{"empty fanin", "INPUT(a)\nOUTPUT(o)\no = AND(a, )\n"},
		{"unbalanced paren", "INPUT(a\n"},
		{"never defined", "INPUT(a)\nOUTPUT(o)\n"},
		{"cycle", "INPUT(a)\nOUTPUT(o)\no = AND(a, p)\np = BUF(o)\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseString(tc.src); err == nil {
				t.Errorf("Parse accepted %q", tc.src)
			}
		})
	}
}

func TestParseErrorHasLine(t *testing.T) {
	_, err := ParseString("INPUT(a)\nOUTPUT(o)\no = FROB(a)\n")
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("error type = %T, want *ParseError", err)
	}
	if pe.Line != 3 {
		t.Errorf("Line = %d, want 3", pe.Line)
	}
	if !strings.Contains(pe.Error(), "line 3") {
		t.Errorf("Error() = %q", pe.Error())
	}
}

// TestRoundTrip: Write then Parse must reproduce an equivalent circuit.
func TestRoundTrip(t *testing.T) {
	orig, err := ParseString(c17)
	if err != nil {
		t.Fatal(err)
	}
	text := String(orig)
	back, err := ParseString(text)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, text)
	}
	if back.NumInputs() != orig.NumInputs() || back.NumOutputs() != orig.NumOutputs() ||
		back.NumGates() != orig.NumGates() {
		t.Fatalf("round trip changed structure: %d/%d/%d vs %d/%d/%d",
			back.NumInputs(), back.NumOutputs(), back.NumGates(),
			orig.NumInputs(), orig.NumOutputs(), orig.NumGates())
	}
	// Exhaustive functional equivalence over all 32 input patterns.
	n := orig.NumInputs()
	in := make([]bool, n)
	for v := 0; v < 1<<n; v++ {
		for i := range in {
			in[i] = v>>i&1 == 1
		}
		a := orig.EvalOutputs(in)
		b := back.EvalOutputs(in)
		for k := range a {
			if a[k] != b[k] {
				t.Fatalf("pattern %05b: output %d differs: %v vs %v", v, k, a[k], b[k])
			}
		}
	}
}

func TestWriteDeterministic(t *testing.T) {
	c, err := ParseString(c17)
	if err != nil {
		t.Fatal(err)
	}
	if String(c) != String(c) {
		t.Error("Write output not deterministic")
	}
}

func TestAliasesAndNaryXor(t *testing.T) {
	src := `
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(o)
n = INV(a)
bb = BUFF(b)
o = XOR(n, bb, c)
`
	c, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	// o = !a ^ b ^ c
	for v := 0; v < 8; v++ {
		a, b2, c2 := v&1 == 1, v&2 == 2, v&4 == 4
		want := (!a != b2) != c2
		got := c.EvalOutputs([]bool{a, b2, c2})[0]
		if got != want {
			t.Errorf("pattern %03b: got %v want %v", v, got, want)
		}
	}
}

func TestSortedSignalNames(t *testing.T) {
	c, err := ParseString(c17)
	if err != nil {
		t.Fatal(err)
	}
	names := SortedSignalNames(c)
	if len(names) != c.NumGates() {
		t.Fatalf("got %d names, want %d", len(names), c.NumGates())
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] > names[i] {
			t.Fatalf("names not sorted: %q > %q", names[i-1], names[i])
		}
	}
}
