package engine

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"optirand/internal/fault"
	"optirand/internal/gen"
	"optirand/internal/sim"
)

// testSweep builds a small multi-circuit × multi-weighting ×
// multi-repetition grid over generated benchmark circuits.
func testSweep(t *testing.T) *Sweep {
	t.Helper()
	sweep := &Sweep{
		BaseSeed:    1987,
		Repetitions: 3,
		Patterns:    320,
		CurveStep:   100,
	}
	for _, name := range []string{"c432", "c880", "c1908"} {
		b, ok := gen.ByName(name)
		if !ok {
			t.Fatalf("missing benchmark %s", name)
		}
		c := b.Build()
		faults := fault.New(c).Reps
		n := c.NumInputs()
		uniform := make([]float64, n)
		skewed := make([]float64, n)
		for i := range uniform {
			uniform[i] = 0.5
			skewed[i] = 0.1 + 0.8*float64(i)/float64(n)
		}
		sweep.Circuits = append(sweep.Circuits, SweepCircuit{
			Name:    name,
			Circuit: c,
			Faults:  faults,
			Weightings: []Weighting{
				{Name: "uniform", Sets: [][]float64{uniform}},
				{Name: "skewed", Sets: [][]float64{skewed}},
				{Name: "mixture", Sets: [][]float64{uniform, skewed}},
			},
		})
	}
	return sweep
}

// stripElapsed projects results onto their deterministic content.
func stripElapsed(results []TaskResult) []TaskResult {
	out := make([]TaskResult, len(results))
	for i, r := range results {
		r.Elapsed = 0
		out[i] = r
	}
	return out
}

// TestRunWorkerCountInvariance runs the same sweep at several pool
// sizes (including nested campaign-level sharding) and demands
// positionally identical results.
func TestRunWorkerCountInvariance(t *testing.T) {
	tasks := testSweep(t).Tasks()
	if len(tasks) != 3*3*3 {
		t.Fatalf("grid expansion: got %d tasks, want 27", len(tasks))
	}
	ref, err := Run(context.Background(), tasks, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 5, 32, -1} {
		got, err := Run(context.Background(), tasks, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(stripElapsed(ref), stripElapsed(got)) {
			t.Fatalf("workers=%d: results differ from serial run", workers)
		}
	}
	// Nested parallelism: campaign-level sharding on top of the pool.
	nested := testSweep(t)
	nested.SimWorkers = 3
	nestedTasks := nested.Tasks()
	got, err := Run(context.Background(), nestedTasks, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		if !reflect.DeepEqual(ref[i].Campaign, got[i].Campaign) {
			t.Fatalf("task %s: nested-parallel campaign differs", ref[i].Task.Label)
		}
	}
}

// TestRunRepeatable is the engine-level seeding property test: a sweep
// re-expanded and re-run must reproduce itself exactly (run under
// -race to certify the pool).
func TestRunRepeatable(t *testing.T) {
	ref, err := Run(context.Background(), testSweep(t).Tasks(), 4)
	if err != nil {
		t.Fatal(err)
	}
	for rep := 0; rep < 2; rep++ {
		got, err := Run(context.Background(), testSweep(t).Tasks(), 4)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref {
			if ref[i].Task.Label != got[i].Task.Label ||
				ref[i].Task.Seed != got[i].Task.Seed ||
				!reflect.DeepEqual(ref[i].Campaign, got[i].Campaign) {
				t.Fatalf("rep %d, task %s: sweep is not reproducible", rep, ref[i].Task.Label)
			}
		}
	}
}

// TestTaskSeedIdentity pins the seeding contract: seeds depend on task
// identity, not on grid shape or position.
func TestTaskSeedIdentity(t *testing.T) {
	if TaskSeed(1, 2, 3) != TaskSeed(1, 2, 3) {
		t.Fatal("TaskSeed is not a pure function")
	}
	if TaskSeed(1, 2, 3) == TaskSeed(1, 3, 2) {
		t.Error("TaskSeed ignores coordinate order")
	}
	if TaskSeed(1, 2, 3) == TaskSeed(2, 2, 3) {
		t.Error("TaskSeed ignores the base seed")
	}

	// Dropping a circuit from the sweep must not reseed the others.
	full := testSweep(t)
	reduced := testSweep(t)
	reduced.Circuits = reduced.Circuits[1:]
	seeds := map[string]uint64{}
	for _, task := range full.Tasks() {
		seeds[task.Label] = task.Seed
	}
	for _, task := range reduced.Tasks() {
		if seeds[task.Label] != task.Seed {
			t.Fatalf("task %s: seed changed when the grid shrank", task.Label)
		}
	}

	// All seeds in a grid are distinct.
	seen := map[uint64]string{}
	for label, seed := range seeds {
		if prev, dup := seen[seed]; dup {
			t.Fatalf("tasks %s and %s share seed %d", prev, label, seed)
		}
		seen[seed] = label
	}
}

// TestSweepPatternOverride checks the per-circuit pattern budget.
func TestSweepPatternOverride(t *testing.T) {
	s := testSweep(t)
	s.Circuits[1].Patterns = 64
	for _, task := range s.Tasks() {
		want := s.Patterns
		if strings.HasPrefix(task.Label, s.Circuits[1].Name+"/") {
			want = 64
		}
		if task.Patterns != want {
			t.Fatalf("task %s: patterns = %d, want %d", task.Label, task.Patterns, want)
		}
	}
}

// TestRunValidation rejects malformed tasks before running anything.
func TestRunValidation(t *testing.T) {
	b, _ := gen.ByName("c432")
	c := b.Build()
	bad := []*Task{
		{Label: "nil-circuit", WeightSets: [][]float64{{0.5}}},
		{Label: "no-weights", Circuit: c},
		{Label: "short-weights", Circuit: c, WeightSets: [][]float64{{0.5, 0.5}}},
	}
	for _, task := range bad {
		if _, err := Run(context.Background(), []*Task{task}, 1); err == nil {
			t.Errorf("task %s: expected validation error", task.Label)
		}
	}
}

// TestRunEachMatchesRun proves the streaming contract: collecting
// RunEach deliveries by index reproduces Run's positional slice for
// every pool size, and fn is called exactly once per task.
func TestRunEachMatchesRun(t *testing.T) {
	tasks := testSweep(t).Tasks()
	ref, err := Run(context.Background(), tasks, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4, 16} {
		got := make([]TaskResult, len(tasks))
		calls := 0
		err := Local{Workers: workers}.RunEach(context.Background(), tasks, func(i int, r TaskResult) {
			calls++
			if got[i].Campaign != nil {
				t.Fatalf("workers=%d: slot %d delivered twice", workers, i)
			}
			got[i] = r
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if calls != len(tasks) {
			t.Fatalf("workers=%d: %d deliveries, want %d", workers, calls, len(tasks))
		}
		if !reflect.DeepEqual(stripElapsed(ref), stripElapsed(got)) {
			t.Fatalf("workers=%d: streamed merge differs from Run", workers)
		}
	}
}

// TestRunContextCancellation proves the pool abandons queued work
// promptly and returns ctx.Err(), serial and parallel.
func TestRunContextCancellation(t *testing.T) {
	tasks := testSweep(t).Tasks()

	// Already-cancelled context: nothing runs at all.
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(cancelled, tasks, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled serial run: err = %v, want context.Canceled", err)
	}
	if _, err := Run(cancelled, tasks, 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled parallel run: err = %v, want context.Canceled", err)
	}

	// Mid-batch cancellation: cancel from inside the delivery callback
	// and demand an early exit with ctx.Err().
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		delivered := 0
		err := Local{Workers: workers}.RunEach(ctx, tasks, func(int, TaskResult) {
			delivered++
			if delivered == 2 {
				cancel()
			}
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		// The pool may finish campaigns already in flight (one per
		// worker) but must not run the whole grid.
		if delivered >= len(tasks) {
			t.Fatalf("workers=%d: %d deliveries after mid-batch cancel (queued work not abandoned)", workers, delivered)
		}
	}
}

// TestTaskSchedulingKnobInvariance proves the new intra-campaign
// scheduling knobs — pattern-range sharding and the shared/auto
// good-machine modes — cannot change a task's campaign: every
// combination reproduces the plain serial execution. (That they stay
// out of the wire identity is pinned by
// wire.TestSchedulingKnobsExcludedFromIdentity.)
func TestTaskSchedulingKnobInvariance(t *testing.T) {
	base := testSweep(t).Tasks()
	ref, err := Run(context.Background(), base, 1)
	if err != nil {
		t.Fatal(err)
	}
	configure := func(simWorkers, simShards int, gm sim.GoodMachine) []*Task {
		tasks := make([]*Task, len(base))
		for i, src := range base {
			cp := *src
			cp.SimWorkers = simWorkers
			cp.SimShards = simShards
			cp.GoodMachine = gm
			tasks[i] = &cp
		}
		return tasks
	}
	cases := []struct {
		name                  string
		simWorkers, simShards int
		gm                    sim.GoodMachine
	}{
		{"pattern-shards", 0, 3, sim.GoodMachineReplay},
		{"shared-goodmachine", 3, 0, sim.GoodMachineShared},
		{"auto-goodmachine", 3, 0, sim.GoodMachineAuto},
		{"shards-override-workers", 4, 2, sim.GoodMachineShared},
	}
	for _, tc := range cases {
		got, err := Run(context.Background(), configure(tc.simWorkers, tc.simShards, tc.gm), 2)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		for i := range got {
			if !reflect.DeepEqual(ref[i].Campaign, got[i].Campaign) {
				t.Fatalf("%s: task %d (%s) diverged from serial", tc.name, i, base[i].Label)
			}
		}
	}
}
