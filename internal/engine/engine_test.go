package engine

import (
	"reflect"
	"strings"
	"testing"

	"optirand/internal/fault"
	"optirand/internal/gen"
)

// testSweep builds a small multi-circuit × multi-weighting ×
// multi-repetition grid over generated benchmark circuits.
func testSweep(t *testing.T) *Sweep {
	t.Helper()
	sweep := &Sweep{
		BaseSeed:    1987,
		Repetitions: 3,
		Patterns:    320,
		CurveStep:   100,
	}
	for _, name := range []string{"c432", "c880", "c1908"} {
		b, ok := gen.ByName(name)
		if !ok {
			t.Fatalf("missing benchmark %s", name)
		}
		c := b.Build()
		faults := fault.New(c).Reps
		n := c.NumInputs()
		uniform := make([]float64, n)
		skewed := make([]float64, n)
		for i := range uniform {
			uniform[i] = 0.5
			skewed[i] = 0.1 + 0.8*float64(i)/float64(n)
		}
		sweep.Circuits = append(sweep.Circuits, SweepCircuit{
			Name:    name,
			Circuit: c,
			Faults:  faults,
			Weightings: []Weighting{
				{Name: "uniform", Sets: [][]float64{uniform}},
				{Name: "skewed", Sets: [][]float64{skewed}},
				{Name: "mixture", Sets: [][]float64{uniform, skewed}},
			},
		})
	}
	return sweep
}

// stripElapsed projects results onto their deterministic content.
func stripElapsed(results []TaskResult) []TaskResult {
	out := make([]TaskResult, len(results))
	for i, r := range results {
		r.Elapsed = 0
		out[i] = r
	}
	return out
}

// TestRunWorkerCountInvariance runs the same sweep at several pool
// sizes (including nested campaign-level sharding) and demands
// positionally identical results.
func TestRunWorkerCountInvariance(t *testing.T) {
	tasks := testSweep(t).Tasks()
	if len(tasks) != 3*3*3 {
		t.Fatalf("grid expansion: got %d tasks, want 27", len(tasks))
	}
	ref, err := Run(tasks, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 5, 32, -1} {
		got, err := Run(tasks, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(stripElapsed(ref), stripElapsed(got)) {
			t.Fatalf("workers=%d: results differ from serial run", workers)
		}
	}
	// Nested parallelism: campaign-level sharding on top of the pool.
	nested := testSweep(t)
	nested.SimWorkers = 3
	nestedTasks := nested.Tasks()
	got, err := Run(nestedTasks, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		if !reflect.DeepEqual(ref[i].Campaign, got[i].Campaign) {
			t.Fatalf("task %s: nested-parallel campaign differs", ref[i].Task.Label)
		}
	}
}

// TestRunRepeatable is the engine-level seeding property test: a sweep
// re-expanded and re-run must reproduce itself exactly (run under
// -race to certify the pool).
func TestRunRepeatable(t *testing.T) {
	ref, err := Run(testSweep(t).Tasks(), 4)
	if err != nil {
		t.Fatal(err)
	}
	for rep := 0; rep < 2; rep++ {
		got, err := Run(testSweep(t).Tasks(), 4)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref {
			if ref[i].Task.Label != got[i].Task.Label ||
				ref[i].Task.Seed != got[i].Task.Seed ||
				!reflect.DeepEqual(ref[i].Campaign, got[i].Campaign) {
				t.Fatalf("rep %d, task %s: sweep is not reproducible", rep, ref[i].Task.Label)
			}
		}
	}
}

// TestTaskSeedIdentity pins the seeding contract: seeds depend on task
// identity, not on grid shape or position.
func TestTaskSeedIdentity(t *testing.T) {
	if TaskSeed(1, 2, 3) != TaskSeed(1, 2, 3) {
		t.Fatal("TaskSeed is not a pure function")
	}
	if TaskSeed(1, 2, 3) == TaskSeed(1, 3, 2) {
		t.Error("TaskSeed ignores coordinate order")
	}
	if TaskSeed(1, 2, 3) == TaskSeed(2, 2, 3) {
		t.Error("TaskSeed ignores the base seed")
	}

	// Dropping a circuit from the sweep must not reseed the others.
	full := testSweep(t)
	reduced := testSweep(t)
	reduced.Circuits = reduced.Circuits[1:]
	seeds := map[string]uint64{}
	for _, task := range full.Tasks() {
		seeds[task.Label] = task.Seed
	}
	for _, task := range reduced.Tasks() {
		if seeds[task.Label] != task.Seed {
			t.Fatalf("task %s: seed changed when the grid shrank", task.Label)
		}
	}

	// All seeds in a grid are distinct.
	seen := map[uint64]string{}
	for label, seed := range seeds {
		if prev, dup := seen[seed]; dup {
			t.Fatalf("tasks %s and %s share seed %d", prev, label, seed)
		}
		seen[seed] = label
	}
}

// TestSweepPatternOverride checks the per-circuit pattern budget.
func TestSweepPatternOverride(t *testing.T) {
	s := testSweep(t)
	s.Circuits[1].Patterns = 64
	for _, task := range s.Tasks() {
		want := s.Patterns
		if strings.HasPrefix(task.Label, s.Circuits[1].Name+"/") {
			want = 64
		}
		if task.Patterns != want {
			t.Fatalf("task %s: patterns = %d, want %d", task.Label, task.Patterns, want)
		}
	}
}

// TestRunValidation rejects malformed tasks before running anything.
func TestRunValidation(t *testing.T) {
	b, _ := gen.ByName("c432")
	c := b.Build()
	bad := []*Task{
		{Label: "nil-circuit", WeightSets: [][]float64{{0.5}}},
		{Label: "no-weights", Circuit: c},
		{Label: "short-weights", Circuit: c, WeightSets: [][]float64{{0.5, 0.5}}},
	}
	for _, task := range bad {
		if _, err := Run([]*Task{task}, 1); err == nil {
			t.Errorf("task %s: expected validation error", task.Label)
		}
	}
}
