package engine

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"testing"

	"optirand/internal/gen"
)

// TestSweepEachTaskMatchesTasks proves the generator and the
// materialized expansion yield identical tasks in identical order.
func TestSweepEachTaskMatchesTasks(t *testing.T) {
	sweep := testSweep(t)
	want := sweep.Tasks()
	if n := sweep.NumTasks(); n != len(want) {
		t.Fatalf("NumTasks = %d, Tasks yields %d", n, len(want))
	}
	i := 0
	err := sweep.EachTask(func(got int, task *Task) error {
		if got != i {
			t.Fatalf("EachTask index %d, want %d", got, i)
		}
		if !reflect.DeepEqual(task, want[i]) {
			t.Fatalf("task %d differs between EachTask and Tasks", i)
		}
		i++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if i != len(want) {
		t.Fatalf("EachTask yielded %d tasks, want %d", i, len(want))
	}
}

// TestSweepEachTaskStopsOnError proves the generator propagates fn's
// first error and stops generating.
func TestSweepEachTaskStopsOnError(t *testing.T) {
	sweep := testSweep(t)
	boom := errors.New("boom")
	calls := 0
	err := sweep.EachTask(func(i int, _ *Task) error {
		calls++
		if i == 4 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if calls != 5 {
		t.Fatalf("fn called %d times after error at index 4, want 5", calls)
	}
}

// TestSliceSourceRoundTrip pins the adapter: a materialized list seen
// through the TaskSource seam is itself.
func TestSliceSourceRoundTrip(t *testing.T) {
	tasks := testSweep(t).Tasks()
	src := SliceSource(tasks)
	if src.NumTasks() != len(tasks) {
		t.Fatalf("NumTasks = %d, want %d", src.NumTasks(), len(tasks))
	}
	err := src.EachTask(func(i int, task *Task) error {
		if task != tasks[i] {
			t.Fatalf("task %d is not the slice's pointer", i)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRunSourceMatchesRun proves windowed streamed execution is
// bit-identical and positionally identical to the materialized run,
// for windows smaller than, equal to, and larger than the grid, on
// both the serial and pooled local backend.
func TestRunSourceMatchesRun(t *testing.T) {
	sweep := testSweep(t)
	tasks := sweep.Tasks()
	ref, err := Run(context.Background(), tasks, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		for _, window := range []int{1, 5, len(tasks), 4 * len(tasks), 0} {
			got := make([]TaskResult, sweep.NumTasks())
			seen := 0
			err := RunSource(context.Background(), Local{Workers: workers}, sweep, window, func(i int, r TaskResult) {
				got[i] = r
				seen++
			})
			if err != nil {
				t.Fatalf("workers=%d window=%d: %v", workers, window, err)
			}
			if seen != len(tasks) {
				t.Fatalf("workers=%d window=%d: delivered %d of %d", workers, window, seen, len(tasks))
			}
			if !reflect.DeepEqual(stripElapsed(ref), stripElapsed(got)) {
				t.Fatalf("workers=%d window=%d: streamed results differ from materialized run", workers, window)
			}
		}
	}
}

// TestRunSourceValidatesBeforeRunning proves a malformed task anywhere
// in the source fails the run before any campaign executes.
func TestRunSourceValidatesBeforeRunning(t *testing.T) {
	sweep := testSweep(t)
	// Break the last cell: weight-set length mismatch.
	last := &sweep.Circuits[len(sweep.Circuits)-1]
	last.Weightings[len(last.Weightings)-1].Sets = [][]float64{{0.5}}
	delivered := 0
	err := RunSource(context.Background(), Local{}, sweep, 4, func(int, TaskResult) { delivered++ })
	if err == nil {
		t.Fatal("want validation error")
	}
	if delivered != 0 {
		t.Fatalf("%d results delivered despite validation failure", delivered)
	}
}

// TestRunSourceCancellation proves a cancelled context stops window
// submission promptly and surfaces ctx.Err().
func TestRunSourceCancellation(t *testing.T) {
	sweep := testSweep(t)
	ctx, cancel := context.WithCancel(context.Background())
	delivered := 0
	err := RunSource(ctx, Local{Workers: 2}, sweep, 3, func(int, TaskResult) {
		delivered++
		if delivered == 2 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if delivered >= sweep.NumTasks() {
		t.Fatalf("all %d tasks delivered despite cancellation", delivered)
	}
}

// TestSweepEachTaskConstantMemory pins the tentpole's memory claim on
// the generation side: streaming a million-task grid must not
// accumulate heap, while materializing even a fifth of it measurably
// does. (Execution-side windowing is RunSource's bounded buffer by
// construction; BENCH_sweep.json measures both.)
func TestSweepEachTaskConstantMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("million-task generation sweep")
	}
	b, ok := gen.ByName("c432")
	if !ok {
		t.Fatal("missing benchmark c432")
	}
	c := b.Build()
	n := c.NumInputs()
	uniform := make([]float64, n)
	for i := range uniform {
		uniform[i] = 0.5
	}
	sweep := &Sweep{
		BaseSeed:    7,
		Repetitions: 250000,
		Patterns:    64,
		Circuits: []SweepCircuit{{
			Name:    "c432",
			Circuit: c,
			Weightings: []Weighting{
				{Name: "w0", Sets: [][]float64{uniform}},
				{Name: "w1", Sets: [][]float64{uniform}},
				{Name: "w2", Sets: [][]float64{uniform}},
				{Name: "w3", Sets: [][]float64{uniform}},
			},
		}},
	}
	const grid = 1000000
	if sweep.NumTasks() != grid {
		t.Fatalf("grid = %d, want %d", sweep.NumTasks(), grid)
	}

	heap := func() uint64 {
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return ms.HeapAlloc
	}

	before := heap()
	count := 0
	if err := sweep.EachTask(func(int, *Task) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	streamedGrowth := int64(heap()) - int64(before)
	if count != grid {
		t.Fatalf("streamed %d tasks, want %d", count, grid)
	}
	// One retained task at a time: post-GC heap growth must be noise,
	// not O(grid). 8 MB of slack is ~25x GC jitter and ~1/30 of what
	// materializing this grid costs.
	const slack = 8 << 20
	if streamedGrowth > slack {
		t.Fatalf("streamed generation grew the heap by %d bytes (want < %d)", streamedGrowth, slack)
	}

	// Reference point: materializing a 200k-task slice of the same
	// grid retains at least ~100 bytes per task.
	sweep.Repetitions = 50000
	before = heap()
	tasks := sweep.Tasks()
	materializedGrowth := int64(heap()) - int64(before)
	if len(tasks) != 200000 {
		t.Fatalf("materialized %d tasks, want 200000", len(tasks))
	}
	if materializedGrowth < int64(len(tasks))*100 {
		t.Fatalf("materialized growth %d bytes implausibly small", materializedGrowth)
	}
	if streamedGrowth*4 > materializedGrowth {
		t.Fatalf("streamed growth %d not clearly below materialized growth %d", streamedGrowth, materializedGrowth)
	}
	runtime.KeepAlive(tasks)
}
