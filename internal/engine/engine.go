// Package engine orchestrates fleets of fault-simulation campaigns:
// multi-circuit × multi-weighting × multi-seed sweeps fanned out over a
// bounded worker pool, with a second, nested level of parallelism
// available inside each campaign (fault-list sharding, see
// sim.RunCampaignWorkers).
//
// Two properties make the engine safe to scale:
//
//   - Deterministic seeding. Every task's PRNG seed is derived from the
//     sweep's base seed and the task's own identity (circuit name,
//     weighting name, repetition index) via TaskSeed, never from
//     execution order. Adding circuits, reordering tasks, or changing
//     the worker count cannot change any individual campaign.
//
//   - Deterministic merging. Results are returned positionally
//     (result i belongs to task i) and each campaign is bit-identical
//     for every worker count, so an engine run is reproducible
//     end-to-end regardless of scheduling.
//
// The package is the single seam for scaling work: execution is
// abstracted behind the Backend interface, whose contract is exactly
// the two properties above. Local is the in-process pool; the dist
// package provides queue-backed and remote-service backends that the
// wire package's deterministic serialization makes possible. Sharding
// a sweep across processes, batching tasks per circuit, or backing Run
// with a network service all slot in behind the same Task/Backend
// contract.
package engine

import (
	"context"
	"fmt"
	"hash/fnv"
	"runtime"
	"time"

	"optirand/internal/adapt"
	"optirand/internal/circuit"
	"optirand/internal/fault"
	"optirand/internal/prng"
	"optirand/internal/sim"
)

// Task is one fault-simulation campaign: a circuit, a fault list, one
// or more weight sets (one = plain weighted campaign, several = the
// §5.3 mixture rotation), a pattern budget, and a seed.
type Task struct {
	// Label identifies the task in reports ("c2670/optimized#3").
	Label string
	// Circuit is the netlist under test.
	Circuit *circuit.Circuit
	// Faults is the campaign's fault list (typically the collapsed
	// representatives).
	Faults []fault.Fault
	// WeightSets holds the per-input 1-probabilities; with several
	// sets, 64-pattern batches rotate through them.
	WeightSets [][]float64
	// Patterns is the pattern budget.
	Patterns int
	// Seed makes the campaign reproducible. Derive it with TaskSeed so
	// it depends on task identity, not execution order.
	Seed uint64
	// CurveStep > 0 samples the coverage curve every CurveStep
	// patterns.
	CurveStep int
	// Adaptive, when non-nil, runs the campaign as a block-adaptive
	// closed loop (see internal/adapt): blocks of patterns alternate
	// with re-weighting at block boundaries, under the config's
	// strategy. Unlike the scheduling knobs below it CHANGES the
	// result, so it is part of task identity and travels over the wire.
	Adaptive *adapt.Config
	// SimWorkers shards the fault list inside the campaign (<= 0 keeps
	// the campaign serial). Task-level and campaign-level parallelism
	// compose; for many small tasks prefer task-level only.
	SimWorkers int
	// SimShards > 1 shards the campaign's PATTERN stream into
	// contiguous batch ranges instead of sharding the fault list — the
	// right cut for small-fault/large-pattern campaigns. Overrides
	// SimWorkers when set. Like SimWorkers, it is a scheduling knob:
	// results are bit-identical for every value, and it does not
	// travel over the wire.
	SimShards int
	// GoodMachine selects the good-machine strategy for fault-sharded
	// campaigns (replay per worker, shared per batch, or an automatic
	// cost-based pick). A scheduling knob like SimWorkers: every mode
	// is bit-identical, and it does not travel over the wire.
	GoodMachine sim.GoodMachine
}

// TaskResult pairs a task with its campaign outcome.
type TaskResult struct {
	Task     *Task
	Campaign *sim.CampaignResult
	Elapsed  time.Duration
}

// Validate reports the first structural problem of t, if any. Every
// Backend must validate all tasks before starting any of them.
func (t *Task) Validate() error {
	if t.Circuit == nil {
		return fmt.Errorf("engine: task %q: nil circuit", t.Label)
	}
	if len(t.WeightSets) == 0 {
		return fmt.Errorf("engine: task %q: no weight sets", t.Label)
	}
	for k, ws := range t.WeightSets {
		if len(ws) != t.Circuit.NumInputs() {
			return fmt.Errorf("engine: task %q: weight set %d has %d entries, circuit has %d inputs",
				t.Label, k, len(ws), t.Circuit.NumInputs())
		}
	}
	if t.Adaptive != nil {
		if err := t.Adaptive.Validate(len(t.WeightSets)); err != nil {
			return fmt.Errorf("engine: task %q: %w", t.Label, err)
		}
	}
	return nil
}

// Execute runs the campaign in this process and reports the result.
// It is the unit of work every Backend ultimately performs, directly
// (Local) or on the far side of a wire (a remote service worker).
func (t *Task) Execute() TaskResult {
	start := time.Now()
	simWorkers := t.SimWorkers
	if simWorkers <= 0 {
		simWorkers = 1
	}
	cfg := sim.CampaignConfig{
		Patterns:      t.Patterns,
		CurveStep:     t.CurveStep,
		Workers:       simWorkers,
		PatternShards: t.SimShards,
		GoodMachine:   t.GoodMachine,
	}
	var res *sim.CampaignResult
	if t.Adaptive != nil {
		res = adapt.Run(t.Circuit, t.Faults, t.WeightSets, t.Seed, *t.Adaptive, cfg)
	} else {
		res = sim.RunCampaignConfig(t.Circuit, t.Faults, t.WeightSets, t.Seed, cfg)
	}
	return TaskResult{Task: t, Campaign: res, Elapsed: time.Since(start)}
}

// Backend executes task lists. Implementations must honor the engine's
// two contracts: results are positional (result i belongs to tasks[i],
// whatever the completion order or placement), and every task's
// campaign is bit-identical to a serial in-process run — so swapping
// backends (in-process pool, multi-process work queue, remote service)
// can never change a reported number. All tasks must be validated
// before any is started.
//
// Run must honor ctx: when the context is cancelled, still-queued work
// is abandoned promptly and Run returns ctx.Err(). Individual
// campaigns are not interruptible — a task a worker is mid-campaign on
// completes (its result is discarded), which bounds the cancellation
// latency by one campaign, not by the batch.
type Backend interface {
	Run(ctx context.Context, tasks []*Task) ([]TaskResult, error)
}

// StreamBackend is a Backend that can additionally deliver per-task
// results as they complete, before the whole batch is done — the
// execution contract behind streaming sweeps. fn is called serially
// from the submitting goroutine (implementations must not require it
// to be concurrency-safe), in completion order, with the task's batch
// index; the index mapping is exactly the positional contract of Run,
// so collecting RunEach results by index reproduces Run's slice. The
// contract holds across the network too: the dist package implements
// it in-process (Dispatcher) and over one streaming service request
// per batch (Service, consuming the daemon's per-task NDJSON sweep
// response).
type StreamBackend interface {
	Backend
	RunEach(ctx context.Context, tasks []*Task, fn func(i int, r TaskResult)) error
}

// Local is the in-process backend: a bounded pool of worker goroutines
// executing campaigns in this process. Workers <= 0 selects GOMAXPROCS.
// It is the reference implementation every other Backend is measured
// against.
type Local struct {
	Workers int
}

var _ StreamBackend = Local{}

// indexedResult pairs a completed task's result with its batch index.
type indexedResult struct {
	i int
	r TaskResult
}

// Run implements Backend on the in-process pool.
func (l Local) Run(ctx context.Context, tasks []*Task) ([]TaskResult, error) {
	results := make([]TaskResult, len(tasks))
	err := l.RunEach(ctx, tasks, func(i int, r TaskResult) {
		results[i] = r
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// RunEach implements StreamBackend on the in-process pool: fn observes
// each campaign as it completes. On cancellation the pool stops
// issuing work and RunEach returns ctx.Err(); workers already
// mid-campaign finish in the background (campaigns are not
// interruptible) and their results are discarded.
func (l Local) RunEach(ctx context.Context, tasks []*Task, fn func(i int, r TaskResult)) error {
	for _, t := range tasks {
		if err := t.Validate(); err != nil {
			return err
		}
	}
	if len(tasks) == 0 {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	workers := l.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}
	if workers <= 1 {
		for i, t := range tasks {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(i, t.Execute())
		}
		return nil
	}

	idx := make(chan int)
	// Buffered to len(tasks): a worker finishing after cancellation
	// must never block on a channel nobody drains.
	done := make(chan indexedResult, len(tasks))
	for w := 0; w < workers; w++ {
		go func() {
			for i := range idx {
				done <- indexedResult{i, tasks[i].Execute()}
			}
		}()
	}
	go func() {
		defer close(idx)
		for i := range tasks {
			// Checked before the select: with a worker ready and the
			// context already cancelled both cases would be viable and
			// Go picks randomly — the explicit check keeps "abandoned
			// promptly" deterministic.
			if ctx.Err() != nil {
				return
			}
			select {
			case idx <- i:
			case <-ctx.Done():
				return
			}
		}
	}()
	for n := 0; n < len(tasks); n++ {
		select {
		case res := <-done:
			fn(res.i, res.r)
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}

// Run executes every task on an in-process pool of workers goroutines
// (<= 0 selects GOMAXPROCS). It is shorthand for Local{workers}.Run —
// see Backend for the execution and cancellation contract.
func Run(ctx context.Context, tasks []*Task, workers int) ([]TaskResult, error) {
	return Local{Workers: workers}.Run(ctx, tasks)
}

// TaskSeed derives a per-task seed from a base seed and the task's
// identity coordinates by chaining SplitMix64 steps. The derivation is
// a pure function of its arguments, so a task keeps its seed when the
// sweep grows, shrinks, or is reordered.
func TaskSeed(base uint64, coords ...uint64) uint64 {
	h := prng.New(base).Uint64()
	for _, c := range coords {
		h = prng.New(h ^ (c + 0x9e3779b97f4a7c15)).Uint64()
	}
	return h
}

// HashName folds a string into a TaskSeed coordinate (FNV-1a).
func HashName(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// Weighting names one prepared weight configuration for a circuit.
type Weighting struct {
	// Name identifies the configuration ("uniform", "optimized", …).
	Name string
	// Sets is the configuration's weight-set list (usually length 1).
	Sets [][]float64
	// Adaptive, when non-nil, runs the configuration's campaigns as
	// block-adaptive closed loops (copied to Task.Adaptive).
	Adaptive *adapt.Config
}

// SweepCircuit is one circuit of a sweep together with its fault list
// and the weightings to campaign with.
type SweepCircuit struct {
	Name       string
	Circuit    *circuit.Circuit
	Faults     []fault.Fault
	Weightings []Weighting
	// Patterns overrides Sweep.Patterns for this circuit when > 0.
	Patterns int
}

// Sweep describes a multi-circuit × multi-weighting × multi-seed
// campaign grid.
type Sweep struct {
	// BaseSeed roots every task seed (see TaskSeed).
	BaseSeed uint64
	// Repetitions is the number of independently seeded campaigns per
	// (circuit, weighting) cell; values < 1 mean 1.
	Repetitions int
	// Patterns is the default per-campaign pattern budget.
	Patterns int
	// CurveStep, SimWorkers, SimShards, and GoodMachine are copied into
	// every task.
	CurveStep   int
	SimWorkers  int
	SimShards   int
	GoodMachine sim.GoodMachine
	Circuits    []SweepCircuit
}

// TaskSource streams a task list without requiring it to be
// materialized — the engine's seam for sweeps whose grids are too
// large to hold as a []*Task. Task i of the source is the task that
// would occupy slot i of the materialized list, so positional results
// collected from a streamed run reproduce a materialized run exactly.
//
// EachTask calls fn once per task in positional order and stops at the
// first error, which it returns. Every *Task handed to fn is freshly
// assembled and remains valid after fn returns (tasks are small
// structs referencing the source's shared circuits and fault lists),
// so a caller may retain a bounded window of them; retaining all of
// them just rebuilds the materialized list.
type TaskSource interface {
	NumTasks() int
	EachTask(fn func(i int, t *Task) error) error
}

// SliceSource adapts a materialized task list to the TaskSource seam.
type SliceSource []*Task

// NumTasks implements TaskSource.
func (s SliceSource) NumTasks() int { return len(s) }

// EachTask implements TaskSource.
func (s SliceSource) EachTask(fn func(i int, t *Task) error) error {
	for i, t := range s {
		if err := fn(i, t); err != nil {
			return err
		}
	}
	return nil
}

var (
	_ TaskSource = (*Sweep)(nil)
	_ TaskSource = SliceSource(nil)
)

// NumTasks returns the grid's task count without expanding it.
func (s *Sweep) NumTasks() int {
	reps := s.Repetitions
	if reps < 1 {
		reps = 1
	}
	n := 0
	for _, sc := range s.Circuits {
		n += len(sc.Weightings) * reps
	}
	return n
}

// EachTask streams the grid's tasks in circuit-major, weighting-middle,
// repetition-minor order — the generator form of Tasks, implementing
// TaskSource. Each task's seed is TaskSeed(BaseSeed, HashName(circuit),
// HashName(weighting), rep), a pure function of task identity, so the
// streamed and materialized expansions are identical task for task.
// Memory is constant in grid size: one task exists per fn call unless
// the caller retains it.
func (s *Sweep) EachTask(fn func(i int, t *Task) error) error {
	reps := s.Repetitions
	if reps < 1 {
		reps = 1
	}
	i := 0
	for _, sc := range s.Circuits {
		patterns := s.Patterns
		if sc.Patterns > 0 {
			patterns = sc.Patterns
		}
		for _, wt := range sc.Weightings {
			for r := 0; r < reps; r++ {
				t := &Task{
					Label:       fmt.Sprintf("%s/%s#%d", sc.Name, wt.Name, r),
					Circuit:     sc.Circuit,
					Faults:      sc.Faults,
					WeightSets:  wt.Sets,
					Patterns:    patterns,
					Seed:        TaskSeed(s.BaseSeed, HashName(sc.Name), HashName(wt.Name), uint64(r)),
					CurveStep:   s.CurveStep,
					Adaptive:    wt.Adaptive,
					SimWorkers:  s.SimWorkers,
					SimShards:   s.SimShards,
					GoodMachine: s.GoodMachine,
				}
				if err := fn(i, t); err != nil {
					return err
				}
				i++
			}
		}
	}
	return nil
}

// Tasks expands the grid into the materialized task list — EachTask
// collected into a slice. Prefer EachTask (or RunSource) for grids
// whose size makes a []*Task worth avoiding.
func (s *Sweep) Tasks() []*Task {
	tasks := make([]*Task, 0, s.NumTasks())
	s.EachTask(func(_ int, t *Task) error { //nolint:errcheck // fn never errors
		tasks = append(tasks, t)
		return nil
	})
	return tasks
}

// DefaultSourceWindow is the RunSource window when the caller passes
// one <= 0: large enough to keep a worker fleet busy and amortize
// per-window overhead, small enough that client memory stays constant
// in grid size.
const DefaultSourceWindow = 256

// RunSource executes a streamed task source on b in bounded windows of
// at most window tasks (<= 0 selects DefaultSourceWindow): at no point
// are more than window tasks materialized, whatever the source's size.
// fn observes every task's result with its source-positional index —
// collecting by index reproduces the materialized Run slice — and is
// called serially from this goroutine; within a window delivery is the
// backend's RunEach streaming order (completion order) when b is a
// StreamBackend, positional otherwise.
//
// The whole source is validated (one streaming pass, nothing retained)
// before any task executes, preserving the Backend contract; execution
// is bit-identical to running the materialized list because windowing
// is pure scheduling. On cancellation RunSource abandons unstarted
// windows and returns ctx.Err().
func RunSource(ctx context.Context, b Backend, src TaskSource, window int, fn func(i int, r TaskResult)) error {
	if window <= 0 {
		window = DefaultSourceWindow
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := src.EachTask(func(_ int, t *Task) error { return t.Validate() }); err != nil {
		return err
	}
	sb, streaming := b.(StreamBackend)
	buf := make([]*Task, 0, window)
	base := 0
	flush := func() error {
		if len(buf) == 0 {
			return nil
		}
		var err error
		if streaming {
			err = sb.RunEach(ctx, buf, func(j int, r TaskResult) { fn(base+j, r) })
		} else {
			var results []TaskResult
			if results, err = b.Run(ctx, buf); err == nil {
				for j, r := range results {
					fn(base+j, r)
				}
			}
		}
		base += len(buf)
		buf = buf[:0]
		return err
	}
	err := src.EachTask(func(_ int, t *Task) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		buf = append(buf, t)
		if len(buf) >= window {
			return flush()
		}
		return nil
	})
	if err != nil {
		return err
	}
	return flush()
}
