package engine

import "testing"

// TestTaskSeedGolden pins TaskSeed (and the HashName coordinates it is
// fed) to golden values. Distributed backends rely on task identity →
// seed being a frozen pure function: a wire task executed on any
// worker, in any process, this year or next, must replay exactly the
// pattern stream the submitting sweep meant. A refactor that changes
// these values silently reseeds every distributed task and breaks
// cached-result addressing, so a failure here is a wire-compatibility
// event, not a test to update casually.
func TestTaskSeedGolden(t *testing.T) {
	hashes := map[string]uint64{
		"":          0xcbf29ce484222325, // FNV-1a offset basis
		"s1":        0x08d8ff07b578d149,
		"uniform":   0x246ba30e3d002a93,
		"c7552":     0x9c7363db205b31d9,
		"optimized": 0xe6a504a96b75331e,
	}
	for s, want := range hashes {
		if got := HashName(s); got != want {
			t.Errorf("HashName(%q) = %#x, want %#x", s, got, want)
		}
	}

	seeds := []struct {
		base   uint64
		coords []uint64
		want   uint64
	}{
		{base: 0, coords: nil, want: 0xe220a8397b1dcdaf},
		{base: 1, coords: nil, want: 0x910a2dec89025cc1},
		{base: 1987, coords: nil, want: 0xede44cd25f8647c8},
		{base: 1987, coords: []uint64{HashName("s1")}, want: 0x1e448afe07fdab1e},
		{base: 1987, coords: []uint64{HashName("s1"), HashName("uniform"), 0},
			want: 0x4437854e1128f97c},
		{base: 1987, coords: []uint64{HashName("s1"), HashName("uniform"), 1},
			want: 0x10f034ee96b2dc40},
		{base: 1987, coords: []uint64{HashName("c7552"), HashName("optimized"), 4},
			want: 0x5e843c894b4b323f},
		{base: ^uint64(0), coords: []uint64{HashName(""), 0}, want: 0x75c4576c0fcc1bc9},
	}
	for _, c := range seeds {
		if got := TaskSeed(c.base, c.coords...); got != c.want {
			t.Errorf("TaskSeed(%#x, %#x) = %#x, want %#x", c.base, c.coords, got, c.want)
		}
	}
}
