package lfsr

import "fmt"

// MISR is a multiple-input signature register: the response-compaction
// half of a BILBO-style self-test module ([Wu86]/[Wu87], paper §5.2).
// Each clock XORs one parallel output vector of the circuit under test
// into the feedback shift; after N patterns the register holds a
// signature whose mismatch against the fault-free signature flags a
// detected fault. For a maximal-length feedback polynomial the
// asymptotic aliasing probability is 2^-n.
type MISR struct {
	n     int
	taps  uint64
	state uint64
}

// NewMISR returns an n-bit MISR with a primitive feedback polynomial
// from the built-in table, initialized to zero.
func NewMISR(n int) *MISR {
	taps, ok := primitivePolys[n]
	if !ok {
		panic(fmt.Sprintf("lfsr: no primitive polynomial tabulated for MISR length %d", n))
	}
	return &MISR{n: n, taps: taps}
}

// Len returns the register width.
func (m *MISR) Len() int { return m.n }

// Reset clears the register.
func (m *MISR) Reset() { m.state = 0 }

// Signature returns the current register contents.
func (m *MISR) Signature() uint64 { return m.state }

// Clock shifts once and XORs the input vector (low Len() bits) into the
// register.
func (m *MISR) Clock(inputs uint64) {
	fb := parity64(m.state & m.taps)
	m.state = (m.state>>1 | fb<<uint(m.n-1)) ^ (inputs & (1<<uint(m.n) - 1))
}

// ClockWord feeds 64 patterns of up to 64 circuit outputs: outs[k] is
// the 64-pattern word of output k (bit j = pattern j), exactly as the
// parallel simulator produces them; patterns selects how many of the 64
// lanes are fed (low bits first).
func (m *MISR) ClockWord(outs []uint64, patterns int) {
	if patterns > 64 {
		patterns = 64
	}
	for j := 0; j < patterns; j++ {
		var vec uint64
		for k, w := range outs {
			if k >= m.n {
				break
			}
			vec |= (w >> uint(j) & 1) << uint(k)
		}
		m.Clock(vec)
	}
}

// AliasingBound returns the asymptotic probability that a faulty
// response sequence maps to the fault-free signature: 2^-Len().
func (m *MISR) AliasingBound() float64 {
	return 1 / float64(uint64(1)<<uint(m.n))
}
