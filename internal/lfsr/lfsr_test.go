package lfsr

import (
	"math"
	"math/bits"
	"testing"
)

// TestMaximalPeriods: every tabulated polynomial up to 20 bits must give
// period 2^n - 1 (the definition of primitivity we rely on).
func TestMaximalPeriods(t *testing.T) {
	for n := 2; n <= 20; n++ {
		if _, ok := primitivePolys[n]; !ok {
			continue
		}
		l := New(n)
		want := uint64(1)<<uint(n) - 1
		if got := l.Period(); got != want {
			t.Errorf("n=%d: period %d, want %d", n, got, want)
		}
	}
}

// TestAllStatesVisited: a maximal LFSR visits every non-zero state.
func TestAllStatesVisited(t *testing.T) {
	l := New(8)
	seen := make(map[uint64]bool)
	for i := 0; i < 255; i++ {
		if seen[l.State()] {
			t.Fatalf("state %x repeated at step %d", l.State(), i)
		}
		seen[l.State()] = true
		l.Step()
	}
	if len(seen) != 255 {
		t.Errorf("visited %d states, want 255", len(seen))
	}
	if seen[0] {
		t.Error("visited the all-zero lock-up state")
	}
}

func TestSeedZeroReplaced(t *testing.T) {
	l := New(8)
	l.Seed(0)
	if l.State() == 0 {
		t.Error("Seed(0) left the lock-up state in place")
	}
}

func TestUnknownLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(23) did not panic")
		}
	}()
	New(23)
}

// TestOutputBalance: over a full period, a maximal LFSR outputs
// 2^(n-1) ones and 2^(n-1)-1 zeros.
func TestOutputBalance(t *testing.T) {
	l := New(10)
	ones := 0
	period := 1<<10 - 1
	for i := 0; i < period; i++ {
		ones += int(l.Step())
	}
	if ones != 1<<9 {
		t.Errorf("ones = %d, want %d", ones, 1<<9)
	}
}

func TestWordPacksSteps(t *testing.T) {
	a, b := New(16), New(16)
	w := a.Word()
	for k := 0; k < 64; k++ {
		if bit := b.Step(); w>>uint(k)&1 != bit {
			t.Fatalf("Word bit %d mismatch", k)
		}
	}
}

func TestQuantizeWeight(t *testing.T) {
	cases := map[float64]float64{
		0.0: 1.0 / 16, 0.01: 1.0 / 16, 0.5: 0.5, 0.93: 15.0 / 16,
		1.0: 15.0 / 16, 0.25: 0.25, 0.3: 5.0 / 16,
	}
	for in, want := range cases {
		if got := QuantizeWeight(in); math.Abs(got-want) > 1e-12 {
			t.Errorf("QuantizeWeight(%v) = %v, want %v", in, got, want)
		}
	}
}

// TestWeightedSourceDensities: the hardware weighting model must hit
// each programmed k/16 probability closely.
func TestWeightedSourceDensities(t *testing.T) {
	weights := []float64{1.0 / 16, 0.25, 0.5, 0.75, 15.0 / 16}
	ws := NewWeightedSource(weights, 7)
	q := ws.Weights()
	counts := make([]int, len(weights))
	const words = 3000
	dst := make([]uint64, len(weights))
	for w := 0; w < words; w++ {
		ws.NextWords(dst)
		for i, v := range dst {
			counts[i] += bits.OnesCount64(v)
		}
	}
	for i := range weights {
		got := float64(counts[i]) / (64 * words)
		if math.Abs(got-q[i]) > 0.01 {
			t.Errorf("input %d: density %v, want %v", i, got, q[i])
		}
	}
}

// TestWeightedSourceDeterminism: same seed, same stream.
func TestWeightedSourceDeterminism(t *testing.T) {
	w := []float64{0.3, 0.7}
	a := NewWeightedSource(w, 42)
	b := NewWeightedSource(w, 42)
	da, db := make([]uint64, 2), make([]uint64, 2)
	for i := 0; i < 50; i++ {
		a.NextWords(da)
		b.NextWords(db)
		if da[0] != db[0] || da[1] != db[1] {
			t.Fatalf("streams diverged at word %d", i)
		}
	}
}

// TestWeightedSourceInputIndependence: different inputs' streams must
// be (statistically) independent — joint ones-density of two inputs at
// 0.5 is ~0.25.
func TestWeightedSourceInputIndependence(t *testing.T) {
	ws := NewWeightedSource([]float64{0.5, 0.5}, 3)
	dst := make([]uint64, 2)
	both, total := 0, 0
	for w := 0; w < 2000; w++ {
		ws.NextWords(dst)
		both += bits.OnesCount64(dst[0] & dst[1])
		total += 64
	}
	got := float64(both) / float64(total)
	if math.Abs(got-0.25) > 0.01 {
		t.Errorf("joint density %v, want 0.25", got)
	}
}
