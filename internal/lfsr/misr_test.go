package lfsr

import (
	"testing"

	"optirand/internal/prng"
)

func TestMISRBasics(t *testing.T) {
	m := NewMISR(16)
	if m.Len() != 16 {
		t.Errorf("Len = %d", m.Len())
	}
	if m.Signature() != 0 {
		t.Error("fresh MISR not zeroed")
	}
	m.Clock(0xabcd)
	if m.Signature() == 0 {
		t.Error("signature unchanged after Clock")
	}
	m.Reset()
	if m.Signature() != 0 {
		t.Error("Reset did not clear")
	}
	if got := m.AliasingBound(); got != 1.0/65536 {
		t.Errorf("AliasingBound = %v", got)
	}
}

func TestMISRUnknownLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewMISR(23) did not panic")
		}
	}()
	NewMISR(23)
}

// TestMISRDeterministic: the same response stream yields the same
// signature; a one-bit difference yields a different one (no aliasing
// for this particular pair).
func TestMISRDeterministic(t *testing.T) {
	stream := make([]uint64, 200)
	rng := prng.New(5)
	for i := range stream {
		stream[i] = rng.Uint64() & 0xffff
	}
	sig := func(s []uint64) uint64 {
		m := NewMISR(16)
		for _, v := range s {
			m.Clock(v)
		}
		return m.Signature()
	}
	if sig(stream) != sig(stream) {
		t.Error("signature not deterministic")
	}
	mutated := append([]uint64(nil), stream...)
	mutated[100] ^= 1
	if sig(stream) == sig(mutated) {
		t.Error("single-bit stream difference aliased")
	}
}

// TestMISRLinearity: signatures are linear over GF(2): sig(a XOR b)
// with zero start equals sig(a) XOR sig(b) (both from zero state).
func TestMISRLinearity(t *testing.T) {
	rng := prng.New(9)
	a := make([]uint64, 64)
	b := make([]uint64, 64)
	x := make([]uint64, 64)
	for i := range a {
		a[i] = rng.Uint64() & 0xffff
		b[i] = rng.Uint64() & 0xffff
		x[i] = a[i] ^ b[i]
	}
	sig := func(s []uint64) uint64 {
		m := NewMISR(16)
		for _, v := range s {
			m.Clock(v)
		}
		return m.Signature()
	}
	if sig(x) != sig(a)^sig(b) {
		t.Error("MISR not linear over GF(2)")
	}
}

// TestMISRClockWordMatchesSerial: the 64-pattern word interface must
// equal per-pattern clocking.
func TestMISRClockWordMatchesSerial(t *testing.T) {
	rng := prng.New(3)
	outs := make([]uint64, 10) // 10 circuit outputs, 64 patterns each
	for i := range outs {
		outs[i] = rng.Uint64()
	}
	a := NewMISR(16)
	a.ClockWord(outs, 64)

	b := NewMISR(16)
	for j := 0; j < 64; j++ {
		var vec uint64
		for k, w := range outs {
			vec |= (w >> uint(j) & 1) << uint(k)
		}
		b.Clock(vec)
	}
	if a.Signature() != b.Signature() {
		t.Errorf("ClockWord %x != serial %x", a.Signature(), b.Signature())
	}
	// Partial batch: only the low `patterns` lanes count.
	p := NewMISR(16)
	p.ClockWord(outs, 10)
	q := NewMISR(16)
	for j := 0; j < 10; j++ {
		var vec uint64
		for k, w := range outs {
			vec |= (w >> uint(j) & 1) << uint(k)
		}
		q.Clock(vec)
	}
	if p.Signature() != q.Signature() {
		t.Error("partial ClockWord differs from serial")
	}
}

// TestMISRAliasingRate: random stream pairs alias at roughly 2^-n; for
// an 8-bit MISR over many trials the rate must be near 1/256.
func TestMISRAliasingRate(t *testing.T) {
	rng := prng.New(31)
	const trials = 8000
	alias := 0
	for trial := 0; trial < trials; trial++ {
		a := NewMISR(8)
		b := NewMISR(8)
		for k := 0; k < 20; k++ {
			va := rng.Uint64() & 0xff
			vb := rng.Uint64() & 0xff
			a.Clock(va)
			b.Clock(vb)
		}
		if a.Signature() == b.Signature() {
			alias++
		}
	}
	rate := float64(alias) / trials
	if rate > 3.0/256 || rate < 0.05/256 {
		t.Errorf("aliasing rate %v, expected near 1/256", rate)
	}
}
