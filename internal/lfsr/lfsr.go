// Package lfsr models the on-chip pattern-generation hardware of a
// weighted-random-pattern self test: linear feedback shift registers
// with primitive feedback polynomials, and weighting networks that
// derive biased bit streams from them (probabilities k/2^m), as used by
// BILBO-style self-test modules ([Wu86]/[Wu87], paper §5.2).
//
// The software generators in internal/prng are the mathematical ideal;
// this package is the hardware-faithful counterpart used by the BIST
// example and the weighted-generation tests.
package lfsr

import (
	"fmt"
	"math"
)

// primitivePolys maps register length n to the tap mask of a primitive
// feedback polynomial over GF(2). For p(x) = x^n + x^a + … + 1 the mask
// sets bits {0, a, …}: with the right-shifting update
//
//	state' = state>>1 | parity(state & taps)<<(n-1)
//
// this realizes the reciprocal polynomial of p, which is primitive iff
// p is. Bit 0 is always set (the x^n term), which also makes the state
// map invertible — the sequence is purely periodic with period 2^n - 1.
// Source: standard tables (Bardell/McAnney/Savir, "Built-In Test for
// VLSI"; Xilinx XAPP052 for the long registers).
var primitivePolys = map[int]uint64{
	2:  0x3,                // x^2 + x + 1
	3:  0x3,                // x^3 + x + 1
	4:  0x3,                // x^4 + x + 1
	5:  0x5,                // x^5 + x^2 + 1
	6:  0x3,                // x^6 + x + 1
	7:  0x3,                // x^7 + x + 1
	8:  0x1d,               // x^8 + x^4 + x^3 + x^2 + 1
	9:  0x11,               // x^9 + x^4 + 1
	10: 0x9,                // x^10 + x^3 + 1
	11: 0x5,                // x^11 + x^2 + 1
	12: 0x53,               // x^12 + x^6 + x^4 + x + 1
	13: 0x1b,               // x^13 + x^4 + x^3 + x + 1
	14: 0x2b,               // x^14 + x^5 + x^3 + x + 1
	15: 0x3,                // x^15 + x + 1
	16: 0x2d,               // x^16 + x^5 + x^3 + x^2 + 1
	17: 0x9,                // x^17 + x^3 + 1
	18: 0x81,               // x^18 + x^7 + 1
	19: 0x27,               // x^19 + x^5 + x^2 + x + 1
	20: 0x9,                // x^20 + x^3 + 1
	24: 0xc20001,           // x^24 + x^23 + x^22 + x^17 + 1
	32: 0x400007,           // x^32 + x^22 + x^2 + x + 1
	48: 0x800000300001,     // x^48 + x^47 + x^21 + x^20 + 1
	64: 0xb000000000000001, // x^64 + x^63 + x^61 + x^60 + 1
}

// LFSR is a Fibonacci linear feedback shift register of n ≤ 64 bits.
// The zero state is forbidden (it is the lock-up state); New seeds with
// all-ones by default.
type LFSR struct {
	n     int
	taps  uint64
	state uint64
}

// New returns an n-bit LFSR with a primitive feedback polynomial from
// the built-in table. It panics if no polynomial is tabulated for n.
func New(n int) *LFSR {
	taps, ok := primitivePolys[n]
	if !ok {
		panic(fmt.Sprintf("lfsr: no primitive polynomial tabulated for length %d", n))
	}
	return &LFSR{n: n, taps: taps, state: 1<<uint(n) - 1}
}

// NewWithTaps returns an n-bit LFSR with an explicit tap mask; the
// period is maximal only if the mask encodes a primitive polynomial.
func NewWithTaps(n int, taps uint64) *LFSR {
	if n < 2 || n > 64 {
		panic("lfsr: length out of range")
	}
	return &LFSR{n: n, taps: taps, state: 1<<uint(n) - 1}
}

// Len returns the register length in bits.
func (l *LFSR) Len() int { return l.n }

// State returns the current register contents.
func (l *LFSR) State() uint64 { return l.state }

// Seed sets the register contents; the all-zero state is replaced by
// all-ones.
func (l *LFSR) Seed(s uint64) {
	s &= 1<<uint(l.n) - 1
	if s == 0 {
		s = 1<<uint(l.n) - 1
	}
	l.state = s
}

// Step advances one clock and returns the shifted-out bit.
func (l *LFSR) Step() uint64 {
	out := l.state & 1
	fb := parity64(l.state & l.taps)
	l.state = l.state>>1 | fb<<uint(l.n-1)
	return out
}

// Word returns 64 successive output bits, bit k holding the output of
// clock k — one simulator pattern word.
func (l *LFSR) Word() uint64 {
	var w uint64
	for k := 0; k < 64; k++ {
		w |= l.Step() << uint(k)
	}
	return w
}

// Period measures the register's period by stepping until the seed
// state recurs (intended for tests on short registers).
func (l *LFSR) Period() uint64 {
	start := l.state
	var count uint64
	for {
		l.Step()
		count++
		if l.state == start {
			return count
		}
		if count == math.MaxUint64 {
			return count
		}
	}
}

func parity64(v uint64) uint64 {
	v ^= v >> 32
	v ^= v >> 16
	v ^= v >> 8
	v ^= v >> 4
	v ^= v >> 2
	v ^= v >> 1
	return v & 1
}

// WeightResolution is the number of bits the weighting network combines:
// programmable probabilities are multiples of 1/2^WeightResolution.
const WeightResolution = 4

// QuantizeWeight rounds an ideal probability to the nearest value the
// weighting network can produce: k/16 for k in 1..15 (0 and 1 are not
// produced — a stuck input would make its stuck-at faults untestable).
func QuantizeWeight(p float64) float64 {
	k := math.Round(p * 16)
	if k < 1 {
		k = 1
	}
	if k > 15 {
		k = 15
	}
	return k / 16
}

// WeightedSource produces per-input pattern words with probabilities
// quantized to the 1/16 grid, the way BIST weighting hardware derives
// biased streams: four independent equiprobable streams per input are
// combined by an AND/OR tree selected from the binary expansion of k.
//
// Stream derivation from one physical LFSR uses spaced output phases;
// this model gives each input its own maximal-length register seeded
// differently, which preserves the statistical property that matters
// (independent equiprobable source bits).
type WeightedSource struct {
	regs    []*LFSR
	weights []float64 // quantized
}

// NewWeightedSource builds a source for the given ideal weights; they
// are quantized with QuantizeWeight.
func NewWeightedSource(weights []float64, seed uint64) *WeightedSource {
	ws := &WeightedSource{
		regs:    make([]*LFSR, len(weights)),
		weights: make([]float64, len(weights)),
	}
	for i, p := range weights {
		ws.weights[i] = QuantizeWeight(p)
		r := New(32)
		r.Seed(seed*0x9e3779b97f4a7c15 + uint64(i)*0x100000001b3 + 1)
		ws.regs[i] = r
	}
	return ws
}

// Weights returns the quantized per-input probabilities.
func (ws *WeightedSource) Weights() []float64 {
	out := make([]float64, len(ws.weights))
	copy(out, ws.weights)
	return out
}

// NextWords fills dst[i] with the next 64 patterns of input i.
func (ws *WeightedSource) NextWords(dst []uint64) {
	if len(dst) != len(ws.regs) {
		panic("lfsr: NextWords: length mismatch")
	}
	for i := range dst {
		k := int(math.Round(ws.weights[i] * 16))
		dst[i] = ws.compareWord(i, k)
	}
}

// compareWord builds a Bernoulli(k/16) word exactly the way weighting
// hardware does: WeightResolution equiprobable bit planes form a
// uniform 4-bit nibble per pattern; the output bit is the magnitude
// comparison nibble < k, evaluated bitwise from the MSB plane down
// (lt accumulates decided-below positions, eq tracks still-equal ones).
// P(nibble < k) = k/16 exactly.
func (ws *WeightedSource) compareWord(i, k int) uint64 {
	r := ws.regs[i]
	planes := [WeightResolution]uint64{}
	for j := range planes {
		planes[j] = r.Word()
	}
	var lt uint64
	eq := ^uint64(0)
	for j := WeightResolution - 1; j >= 0; j-- {
		plane := planes[j]
		kj := uint64(0)
		if k>>uint(j)&1 == 1 {
			kj = ^uint64(0)
		}
		lt |= eq & ^plane & kj
		eq &= ^(plane ^ kj)
	}
	return lt
}
