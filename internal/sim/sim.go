// Package sim provides 64-way bit-parallel logic simulation and
// event-driven stuck-at fault simulation (parallel-pattern single-fault
// propagation, PPSF, with fault dropping).
//
// One simulator word carries 64 independent input patterns; bit k of
// every signal word belongs to pattern k. The fault simulator reuses the
// good-machine values and propagates only the difference cone of each
// fault, which keeps per-fault cost proportional to the disturbed region
// rather than the whole circuit.
package sim

import (
	"fmt"

	"optirand/internal/circuit"
	"optirand/internal/fault"
)

// Simulator evaluates the fault-free ("good") machine for 64 patterns at
// a time.
type Simulator struct {
	c   *circuit.Circuit
	val []uint64
}

// NewSimulator returns a simulator for c with all values zero.
func NewSimulator(c *circuit.Circuit) *Simulator {
	return &Simulator{c: c, val: make([]uint64, c.NumGates())}
}

// Circuit returns the simulated circuit.
func (s *Simulator) Circuit() *circuit.Circuit { return s.c }

// SetInputWord assigns the 64-pattern word of the primary input at
// position pos (index into Circuit().Inputs).
func (s *Simulator) SetInputWord(pos int, w uint64) {
	s.val[s.c.Inputs[pos]] = w
}

// SetInputs assigns all primary input words. len(words) must equal the
// number of primary inputs.
func (s *Simulator) SetInputs(words []uint64) {
	if len(words) != len(s.c.Inputs) {
		panic(fmt.Sprintf("sim: SetInputs: got %d words, want %d", len(words), len(s.c.Inputs)))
	}
	for pos, w := range words {
		s.val[s.c.Inputs[pos]] = w
	}
}

// Run evaluates every gate in topological order.
func (s *Simulator) Run() {
	for _, g := range s.c.TopoOrder() {
		gate := &s.c.Gates[g]
		if gate.Type == circuit.Input {
			continue
		}
		s.val[g] = evalWord(gate.Type, gate.Fanin, s.val)
	}
}

// Value returns the 64-pattern word currently on gate g's output.
func (s *Simulator) Value(g int) uint64 { return s.val[g] }

// OutputWord returns the word of the i-th primary output.
func (s *Simulator) OutputWord(i int) uint64 { return s.val[s.c.Outputs[i]] }

// evalWord computes a gate function over 64 patterns. fanin values are
// read from val.
func evalWord(t circuit.GateType, fanin []int, val []uint64) uint64 {
	switch t {
	case circuit.Buf:
		return val[fanin[0]]
	case circuit.Not:
		return ^val[fanin[0]]
	case circuit.And, circuit.Nand:
		w := ^uint64(0)
		for _, f := range fanin {
			w &= val[f]
		}
		if t == circuit.Nand {
			return ^w
		}
		return w
	case circuit.Or, circuit.Nor:
		var w uint64
		for _, f := range fanin {
			w |= val[f]
		}
		if t == circuit.Nor {
			return ^w
		}
		return w
	case circuit.Xor, circuit.Xnor:
		var w uint64
		for _, f := range fanin {
			w ^= val[f]
		}
		if t == circuit.Xnor {
			return ^w
		}
		return w
	case circuit.Const0:
		return 0
	case circuit.Const1:
		return ^uint64(0)
	}
	panic(fmt.Sprintf("sim: evalWord: unexpected gate type %v", t))
}

// FaultSimulator propagates single stuck-at faults against the current
// good-machine state of an embedded Simulator.
type FaultSimulator struct {
	sim *Simulator
	c   *circuit.Circuit

	fval    []uint64 // faulty value per gate, valid iff fEpoch == epoch
	fEpoch  []uint32
	qEpoch  []uint32 // queued-this-round marker
	epoch   uint32
	buckets [][]int // worklist bucketed by level
	touched []int   // gates whose faulty value differs this round
}

// NewFaultSimulator wraps a good-machine simulator. The caller drives
// the good machine (SetInputs + Run) and then queries DetectWord per
// fault for the same 64 patterns.
func NewFaultSimulator(s *Simulator) *FaultSimulator {
	c := s.Circuit()
	return &FaultSimulator{
		sim:     s,
		c:       c,
		fval:    make([]uint64, c.NumGates()),
		fEpoch:  make([]uint32, c.NumGates()),
		qEpoch:  make([]uint32, c.NumGates()),
		buckets: make([][]int, c.Depth()+1),
	}
}

// Good returns the embedded good-machine simulator.
func (fs *FaultSimulator) Good() *Simulator { return fs.sim }

func (fs *FaultSimulator) value(g int) uint64 {
	if fs.fEpoch[g] == fs.epoch {
		return fs.fval[g]
	}
	return fs.sim.val[g]
}

func (fs *FaultSimulator) enqueue(g int) {
	if fs.qEpoch[g] != fs.epoch {
		fs.qEpoch[g] = fs.epoch
		lvl := fs.c.Level(g)
		fs.buckets[lvl] = append(fs.buckets[lvl], g)
	}
}

func (fs *FaultSimulator) setFaulty(g int, w uint64) {
	if fs.fEpoch[g] != fs.epoch {
		fs.fEpoch[g] = fs.epoch
		fs.touched = append(fs.touched, g)
	}
	fs.fval[g] = w
}

// evalFaulty computes gate g's output in the faulty machine, with input
// pin forcePin (if >= 0) forced to forceVal.
func (fs *FaultSimulator) evalFaulty(g int, forcePin int, forceVal uint64) uint64 {
	gate := &fs.c.Gates[g]
	in := func(pin int) uint64 {
		if pin == forcePin {
			return forceVal
		}
		return fs.value(gate.Fanin[pin])
	}
	switch gate.Type {
	case circuit.Buf:
		return in(0)
	case circuit.Not:
		return ^in(0)
	case circuit.And, circuit.Nand:
		w := ^uint64(0)
		for pin := range gate.Fanin {
			w &= in(pin)
		}
		if gate.Type == circuit.Nand {
			return ^w
		}
		return w
	case circuit.Or, circuit.Nor:
		var w uint64
		for pin := range gate.Fanin {
			w |= in(pin)
		}
		if gate.Type == circuit.Nor {
			return ^w
		}
		return w
	case circuit.Xor, circuit.Xnor:
		var w uint64
		for pin := range gate.Fanin {
			w ^= in(pin)
		}
		if gate.Type == circuit.Xnor {
			return ^w
		}
		return w
	case circuit.Const0:
		return 0
	case circuit.Const1:
		return ^uint64(0)
	case circuit.Input:
		return fs.sim.val[g] // inputs hold their applied word
	}
	panic(fmt.Sprintf("sim: evalFaulty: unexpected gate type %v", gate.Type))
}

// DetectWord returns the mask of patterns (bits) in the current 64-slot
// batch that detect fault f: patterns where at least one primary output
// differs between good and faulty machine. The good machine must have
// been Run for the batch first.
func (fs *FaultSimulator) DetectWord(f fault.Fault) uint64 {
	fs.epoch++
	if fs.epoch == 0 { // uint32 wrap: invalidate all markers
		for i := range fs.fEpoch {
			fs.fEpoch[i] = 0
			fs.qEpoch[i] = 0
		}
		fs.epoch = 1
	}
	fs.touched = fs.touched[:0]

	forced := uint64(0)
	if f.Stuck == 1 {
		forced = ^uint64(0)
	}
	if f.IsStem() {
		g := f.Gate
		if forced == fs.sim.val[g] {
			return 0 // fault never activated in this batch
		}
		fs.setFaulty(g, forced)
		for _, p := range fs.c.Fanout(g) {
			fs.enqueue(p.Gate)
		}
	} else {
		g := f.Gate
		nv := fs.evalFaulty(g, f.Pin, forced)
		if nv == fs.sim.val[g] {
			return 0
		}
		fs.setFaulty(g, nv)
		for _, p := range fs.c.Fanout(g) {
			fs.enqueue(p.Gate)
		}
	}

	// Propagate strictly in level order; every update flows forward.
	for lvl := 0; lvl < len(fs.buckets); lvl++ {
		bucket := fs.buckets[lvl]
		for _, g := range bucket {
			if fs.fEpoch[g] == fs.epoch {
				continue // value already forced (fault site)
			}
			nv := fs.evalFaulty(g, -1, 0)
			if nv != fs.sim.val[g] {
				fs.setFaulty(g, nv)
				for _, p := range fs.c.Fanout(g) {
					fs.enqueue(p.Gate)
				}
			}
		}
		fs.buckets[lvl] = bucket[:0]
	}

	var detect uint64
	for _, g := range fs.touched {
		if fs.c.IsOutput(g) {
			detect |= fs.fval[g] ^ fs.sim.val[g]
		}
	}
	return detect
}
