// Package sim provides 64-way bit-parallel logic simulation and
// event-driven stuck-at fault simulation (parallel-pattern single-fault
// propagation, PPSF, with fault dropping).
//
// One simulator word carries 64 independent input patterns; bit k of
// every signal word belongs to pattern k. The fault simulator reuses the
// good-machine values and propagates only the difference cone of each
// fault, which keeps per-fault cost proportional to the disturbed region
// rather than the whole circuit.
//
// Both kernels run on a compiled circuit representation (see
// compiled.go): CSR-packed fanin/fanout arrays, a levelized order, and
// per-gate opcodes, built once per circuit structure and shared by
// every simulator of that circuit. The hot loops are flat — no
// closures, no per-event method lookups — and allocation-free in
// steady state; compiled_test.go pins both properties.
//
// On top of the single-word kernels here, wide.go batches W=4/8 words
// per gate visit (RunWide/DetectWords) so one opcode dispatch, one CSR
// walk, and one worklist drain amortize across W pattern batches; the
// campaign loops run on the wide entry points, and this file's
// single-word paths remain as the W=1 degenerate case and the
// differential anchor. Both widths share two propagation shortcuts
// compiled into the gate flags: diff-word propagation through linear
// (parity-transparent) gates, which composes toggle masks instead of
// gathering fanins, and the flagSureOut dominator cut, which ends a
// sole-live-difference chase as soon as its detection is decided.
package sim

import (
	"fmt"

	"optirand/internal/circuit"
	"optirand/internal/fault"
)

// Simulator evaluates the fault-free ("good") machine for 64 patterns at
// a time.
type Simulator struct {
	c   *circuit.Circuit
	cc  *Compiled
	val []uint64
	// runGen counts completed Run calls. Fault simulators use it to
	// refresh their faulty-value mirrors lazily, once per batch.
	runGen uint64
	// wide holds the W-lane good-machine state (see wide.go), allocated
	// on first wide use so narrow-only users never pay for it.
	wide *simWide
}

// NewSimulator returns a simulator for c with all values zero.
func NewSimulator(c *circuit.Circuit) *Simulator {
	cc := compiledFor(c)
	return &Simulator{
		c:   c,
		cc:  cc,
		val: make([]uint64, cc.nGates),
	}
}

// NewSimulatorLanes is NewSimulator with the wide-kernel word width W
// forced to lanes (4 or 8) instead of the compiler's choice. Every
// width is bit-identical; forcing exists for the per-width benchmarks
// and the differential suite.
func NewSimulatorLanes(c *circuit.Circuit, lanes int) *Simulator {
	if lanes != 4 && lanes != 8 {
		panic(fmt.Sprintf("sim: NewSimulatorLanes: width %d not supported (want 4 or 8)", lanes))
	}
	cc := compiledForLanes(c, lanes)
	return &Simulator{
		c:   c,
		cc:  cc,
		val: make([]uint64, cc.nGates),
	}
}

// Circuit returns the simulated circuit.
func (s *Simulator) Circuit() *circuit.Circuit { return s.c }

// Lanes returns the wide-kernel word width W the circuit was compiled
// for — the number of 64-pattern words each RunWide/DetectWords call
// carries.
func (s *Simulator) Lanes() int { return s.cc.lanes }

// SetInputWord assigns the 64-pattern word of the primary input at
// position pos (index into Circuit().Inputs).
func (s *Simulator) SetInputWord(pos int, w uint64) {
	s.val[s.cc.inputs[pos]] = w
}

// SetInputs assigns all primary input words. len(words) must equal the
// number of primary inputs.
func (s *Simulator) SetInputs(words []uint64) {
	if len(words) != len(s.cc.inputs) {
		panic(fmt.Sprintf("sim: SetInputs: got %d words, want %d", len(words), len(s.cc.inputs)))
	}
	for pos, w := range words {
		s.val[s.cc.inputs[pos]] = w
	}
}

// Run evaluates every gate in topological order.
func (s *Simulator) Run() {
	cc := s.cc
	val := s.val
	nodes := cc.nodes
	for _, gi := range cc.order {
		g := int(gi)
		nd := &nodes[g]
		val[g] = evalGate(nd.op, nd.inv, cc.fanin[nd.faninAt:nd.faninAt+int32(nd.faninN)], val)
	}
	s.runGen++
}

// Value returns the 64-pattern word currently on gate g's output.
func (s *Simulator) Value(g int) uint64 { return s.val[g] }

// OutputWord returns the word of the i-th primary output.
func (s *Simulator) OutputWord(i int) uint64 { return s.val[s.cc.outputs[i]] }

// FaultSimulator propagates single stuck-at faults against the current
// good-machine state of an embedded Simulator. Several FaultSimulators
// may share one Simulator: DetectWord only reads the good machine, so
// as long as nothing mutates it concurrently (SetInputs/Run), shared
// fault simulators may run DetectWord in parallel — the shared
// good-machine campaign mode is built on exactly that.
type FaultSimulator struct {
	sim *Simulator
	cc  *Compiled

	// fval mirrors the good-machine values except on the gates of the
	// current fault's difference cone (listed in touched). The mirror
	// makes faulty gate evaluation identical to good evaluation — one
	// indexed load per fanin, no per-fanin validity check — at the
	// cost of an O(gates) copy once per batch (goodGen tracks it) and
	// an O(cone) repair after each fault.
	fval    []uint64
	goodGen uint64 // sim.runGen the mirror was last refreshed at

	// qEpoch[g] is the last round gate g was enqueued in — the
	// worklist membership test, one generation counter instead of a
	// clear-per-round bitmap.
	qEpoch []uint32
	// gEpoch[g] is meaningful for fused macro sinks only (see
	// fuseXorMacros): the last round g was enqueued from a physical
	// pin, i.e. by a fault inside its macro. Such visits must gather
	// the sink's fanins — its tog word only ever carries macro-edge
	// (fused-input) toggles, which never fire on those rounds.
	gEpoch []uint32
	epoch  uint32
	// queue is the flat propagation worklist: level l's entries live
	// in queue[levelStart[l] : levelStart[l]+qLen[l]]. Every level's
	// segment is sized to its gate population (Compiled.levelStart),
	// so enqueueing is a single indexed store.
	queue   []int32
	qLen    []int32
	touched []int32 // gates whose faulty value differs this round
	// pending counts enqueued-but-undrained gates; the drain walks
	// levels upward until it reaches zero, so trailing empty levels
	// are never scanned and no per-enqueue maximum is maintained.
	pending int

	// tog[g] accumulates, while gate g sits enqueued, the XOR of the
	// toggle masks (faulty XOR good) of the changed fanins that
	// enqueued it — one contribution per consuming pin, so a driver
	// read twice by a parity gate cancels itself. For linear gates
	// (flagLinear) that accumulated word IS the output toggle, and the
	// drain evaluates them as good^tog with no fanin gather: the
	// diff-word path.
	tog []uint64

	// Forced-pin activation scratch for gates with duplicated drivers:
	// identity fanin indices over gathered values, so even that rare
	// path flows through the same evalGate truth source.
	actIdx []int32
	actVal []uint64

	// wide holds the W-lane mirror/toggle state (see wide.go),
	// allocated on first DetectWords use.
	wide *fsWide
}

// NewFaultSimulator wraps a good-machine simulator. The caller drives
// the good machine (SetInputs + Run) and then queries DetectWord per
// fault for the same 64 patterns.
func NewFaultSimulator(s *Simulator) *FaultSimulator {
	cc := s.cc
	fs := &FaultSimulator{
		sim:    s,
		cc:     cc,
		fval:   make([]uint64, cc.nGates),
		qEpoch: make([]uint32, cc.nGates),
		gEpoch: make([]uint32, cc.nGates),
		queue:  make([]int32, cc.nGates),
		qLen:   make([]int32, cc.depth+1),
		tog:    make([]uint64, cc.nGates),
		actIdx: make([]int32, cc.maxFanin),
		actVal: make([]uint64, cc.maxFanin),
	}
	for i := range fs.actIdx {
		fs.actIdx[i] = int32(i)
	}
	// goodGen 0 == runGen 0 would skip the first refresh; force it.
	fs.goodGen = ^uint64(0)
	return fs
}

// Good returns the embedded good-machine simulator.
func (fs *FaultSimulator) Good() *Simulator { return fs.sim }

// enqueueFanout queues every observable consumer of gate g (the
// compiled fanout CSR holds exactly those), accumulating g's toggle
// mask into each consumer's tog word — per consuming pin, so the
// parity cancellation of duplicated drivers falls out of the CSR shape.
func (fs *FaultSimulator) enqueueFanout(g int32) {
	cc := fs.cc
	nd := &cc.nodes[g]
	tg := fs.fval[g] ^ fs.sim.val[g]
	epoch := fs.epoch
	qEpoch, queue, qLen, tog := fs.qEpoch, fs.queue, fs.qLen, fs.tog
	n := 0
	for _, e := range cc.fanout[nd.fanoutAt : nd.fanoutAt+int32(nd.fanoutN)] {
		p := e & edgeIndexMask // macro edges carry the sink in the low bits
		if qEpoch[p] == epoch {
			tog[p] ^= tg // another toggled pin on an already-queued gate
			continue
		}
		qEpoch[p] = epoch
		tog[p] = tg
		pn := &cc.nodes[p]
		if e >= 0 && pn.flags&flagMacroSink != 0 {
			fs.gEpoch[p] = epoch // physical pin into a fused sink: force a gather
		}
		ls := pn.levelSlot
		lvl := int32(uint32(ls))
		queue[int32(ls>>32)+qLen[lvl]] = p
		qLen[lvl]++
		n++
	}
	fs.pending += n
}

// DetectWord returns the mask of patterns (bits) in the current 64-slot
// batch that detect fault f: patterns where at least one primary output
// differs between good and faulty machine. The good machine must have
// been Run for the batch first. Allocation-free in steady state.
func (fs *FaultSimulator) DetectWord(f fault.Fault) uint64 {
	cc := fs.cc
	good := fs.sim.val
	site := int32(f.Gate)
	// The fault effect enters the circuit at the site gate's output
	// (for a branch fault, the forced pin changes only that gate's own
	// evaluation). If no primary output lies in its forward cone the
	// effect is unobservable for every pattern — skip the propagation.
	if !cc.reachesOut[site] {
		return 0
	}
	if fs.goodGen != fs.sim.runGen {
		copy(fs.fval, good)
		fs.goodGen = fs.sim.runGen
	}

	fs.touched = fs.touched[:0]
	fval := fs.fval

	forced := uint64(0)
	if f.Stuck == 1 {
		forced = ^uint64(0)
	}
	var nv uint64
	if f.IsStem() {
		nv = forced
	} else {
		// Activation of a branch fault: evaluate the site gate with pin
		// f.Pin forced. Nothing else of the faulty machine differs yet,
		// so the mirror holds good-machine words everywhere — poking
		// the driver's mirrored value forces exactly this pin, through
		// the same evalGate call shape as propagation. A driver feeding
		// the gate on several pins would leak onto its siblings, so
		// those (rare, precompiled) gates gather operands instead.
		g := int(site)
		nd := &cc.nodes[g]
		lo, hi := nd.faninAt, nd.faninAt+int32(nd.faninN)
		if !cc.dupFanin[g] {
			drv := cc.fanin[lo+int32(f.Pin)]
			save := fval[drv]
			fval[drv] = forced
			nv = evalGate(nd.op, nd.inv, cc.fanin[lo:hi], fval)
			fval[drv] = save
		} else {
			n := int(hi - lo)
			for k := lo; k < hi; k++ {
				fs.actVal[k-lo] = good[cc.fanin[k]]
			}
			fs.actVal[f.Pin] = forced
			nv = evalGate(nd.op, nd.inv, fs.actIdx[:n], fs.actVal)
		}
	}
	if nv == good[site] {
		return 0 // fault never activated in this batch
	}
	var detect uint64
	fval[site] = nv
	fs.touched = append(fs.touched, site)

	// One epoch per propagation round: the chase stamps every gate it
	// evaluates into qEpoch so later shortcuts can tell a fresh gate
	// from one whose value already absorbed applied fanin toggles, and
	// the drain reuses the same stamps for queue dedup — so a
	// chase-settled gate is never re-queued (and never has toggles
	// double-counted into it).
	fs.epoch++
	if fs.epoch == 0 { // uint32 wrap: invalidate all stamps
		for i := range fs.qEpoch {
			fs.qEpoch[i] = 0
		}
		for i := range fs.gEpoch {
			fs.gEpoch[i] = 0
		}
		fs.epoch = 1
	}
	epoch := fs.epoch

	// Chain fast path: while the difference frontier stays narrow
	// (see chase), follow it directly — level order is respected by
	// construction and the worklist machinery is never engaged.
	// Fanout-free chains and die-at-the-stem splits dominate these
	// netlists, so most propagation resolves right here; the drain
	// below also re-enters this path whenever its frontier narrows
	// back to one gate. The chase also owns the sole-live-difference
	// shortcuts: detection at outputs and sureOut dominators, and the
	// gather-free pass-through at linear consumers.
	a, b, live := fs.chase(site, nv^good[site], &detect)

	if live && detect != ^uint64(0) {
		// The frontier fans out: fall back to levelized worklist
		// propagation. Every update flows forward, so enqueues land
		// only on levels above the one being drained (fanout edges
		// strictly increase level) and a level's segment is complete —
		// its count stable — by the time the loop reaches it. The
		// drain walks upward until nothing is pending; everything
		// enqueued is strictly downstream of the frontier, so the scan
		// starts just above it, and no frontier gate can re-enter the
		// queue (that would need a cycle).
		fs.enqueueFanout(a)
		if b >= 0 {
			// A two-gate frontier: chase returns the lower-level gate
			// first, so the drain's start level covers both. b may
			// consume a, but its chase stamp keeps a's dispatch from
			// re-queueing it — b's value is final and its own fanout
			// is dispatched right here.
			fs.enqueueFanout(b)
		}
		lvl := int32(uint32(cc.nodes[a].levelSlot))
		for fs.pending > 0 {
			lvl++
			n := fs.qLen[lvl]
			if n == 0 {
				continue
			}
			fs.qLen[lvl] = 0
			fs.pending -= int(n)
			base := cc.levelStart[lvl]
			last := int32(-1)
			for _, gi := range fs.queue[base : base+n] {
				g := int(gi)
				nd := &cc.nodes[g]
				var nv uint64
				if nd.flags&flagLinear != 0 &&
					(nd.flags&flagMacroSink == 0 || fs.gEpoch[g] != epoch) {
					// Diff-word visit: the toggles accumulated at
					// enqueue time compose linearly through a parity
					// gate, so its new value needs no fanin gather. A
					// macro sink reached on a physical pin this round
					// (gEpoch) gathers instead — the fault is inside
					// its macro and tog carries nothing.
					nv = good[g] ^ fs.tog[g]
				} else {
					nv = evalGate(nd.op, nd.inv, cc.fanin[nd.faninAt:nd.faninAt+int32(nd.faninN)], fval)
				}
				if nv != good[g] {
					fval[g] = nv
					fs.touched = append(fs.touched, gi)
					if cc.isOut[g] {
						detect |= nv ^ good[g]
					}
					fs.enqueueFanout(gi)
					last = gi
				}
			}
			// Once every pattern of the batch detects, propagating
			// further cannot change the result: stop, discarding
			// whatever is still queued.
			if detect == ^uint64(0) {
				for fs.pending > 0 {
					lvl++
					fs.pending -= int(fs.qLen[lvl])
					fs.qLen[lvl] = 0
				}
				break
			}
			// Chain re-entry: if exactly one gate is pending and the
			// last change has a single consumer, that consumer IS the
			// pending gate (every enqueued-undrained gate is in the
			// union of changed gates' consumers, which pending == 1
			// collapses to one). Pop it without touching the worklist
			// again and chase the chain; if the chase ends at a new
			// fan-out point, resume the drain from its level.
			if fs.pending == 1 && last >= 0 && cc.nodes[last].fanoutN == 1 {
				p := cc.fanout[cc.nodes[last].fanoutAt] & edgeIndexMask
				nd := &cc.nodes[p]
				pl := int32(uint32(nd.levelSlot))
				fs.qLen[pl] = 0
				fs.pending = 0
				var nv uint64
				if nd.flags&flagLinear != 0 &&
					(nd.flags&flagMacroSink == 0 || fs.gEpoch[p] != epoch) {
					nv = good[p] ^ fs.tog[p]
				} else {
					nv = evalGate(nd.op, nd.inv, cc.fanin[nd.faninAt:nd.faninAt+int32(nd.faninN)], fval)
				}
				if nv == good[p] {
					break // the only live difference died
				}
				fval[p] = nv
				fs.touched = append(fs.touched, p)
				var alive bool
				a, b, alive = fs.chase(p, nv^good[p], &detect)
				if !alive || detect == ^uint64(0) {
					break
				}
				fs.enqueueFanout(a)
				if b >= 0 {
					fs.enqueueFanout(b)
				}
				lvl = int32(uint32(cc.nodes[a].levelSlot))
			}
		}
	}

	// Repair the mirror.
	for _, gi := range fs.touched {
		fval[gi] = good[gi]
	}
	return detect
}

// chase follows the difference frontier while it stays narrow: one
// gate with one observable consumer (the fanout-free-chain case), or
// one gate with two consumers of which at most one keeps the
// difference alive (a stem whose other branch dies at a
// non-sensitized gate — the dominant stem shape in these netlists).
// Detections accumulate into *detect.
//
// The chase runs under the sole-live-difference invariant — every
// changed gate except the frontier has had all its consumers settle —
// which licenses three shortcuts the general drain cannot take:
//
//   - sureOut cut (dominator shortcut): a frontier carrying toggle
//     curT into a flagSureOut gate contributes exactly curT to the
//     detect mask and nothing downstream can add patterns beyond it
//     (every later toggle of a single source is a subset of curT), so
//     the round ends on the spot — primary outputs and the dominators
//     of fanout-free parity chains both stop here.
//   - linear pass-through: a single-pin linear consumer's new value is
//     good^curT by construction — no fanin gather. The shortcut is
//     only taken for gates not yet evaluated this round (no qEpoch
//     stamp): a gate the chase already gathered has absorbed the
//     applied toggles of its fanins, so re-walking an edge into it
//     (reconvergence through a sibling) would double-count — those
//     gates re-gather instead, which is exact against the mirror.
//   - parity self-cancellation: a linear consumer reading the frontier
//     on both pins receives curT^curT = 0 — the difference dies
//     without evaluating anything.
//
// It returns the one or two gates of the final frontier (b == -1 for
// none; a is the lower-level gate) and whether the difference is still
// live; callers must have applied the initial frontier's value to the
// mirror already, and must fall back to worklist propagation when two
// gates return.
func (fs *FaultSimulator) chase(g int32, curT uint64, detect *uint64) (a, b int32, live bool) {
	cc := fs.cc
	fval := fs.fval
	good := fs.sim.val
	frontier := g
	nd := &cc.nodes[g]
	qEpoch, epoch := fs.qEpoch, fs.epoch
	// evalToggle evaluates gate p against the mirror, applies a changed
	// value, and returns the new toggle mask (0 if the difference died).
	// The qEpoch stamp records that p's value now reflects every toggle
	// applied to the mirror — even a dead difference absorbed its fanin
	// edges, so pass-throughs must not re-walk them.
	evalToggle := func(p int32, pn *gateNode) uint64 {
		qEpoch[p] = epoch
		nv := evalGate(pn.op, pn.inv, cc.fanin[pn.faninAt:pn.faninAt+int32(pn.faninN)], fval)
		if nv == good[p] {
			return 0
		}
		fval[p] = nv
		fs.touched = append(fs.touched, p)
		return nv ^ good[p]
	}
	for {
		if nd.flags&flagSureOut != 0 &&
			(cc.isOut[frontier] || qEpoch[cc.fanout[nd.fanoutAt]&edgeIndexMask] != epoch) {
			// Dominator cut: detection decided. A non-output sure gate
			// has exactly one consumer, the head of a fresh linear
			// chain to an output — but if that consumer was already
			// evaluated this round (a reconvergent sibling that
			// settled), its value absorbed this edge and the chain
			// claim is void: fall through and re-gather it instead.
			*detect |= curT
			return frontier, -1, false
		}
		switch nd.fanoutN {
		case 0:
			return frontier, -1, false // ran off the end of the cone
		case 1:
			e := cc.fanout[nd.fanoutAt]
			p := e & edgeIndexMask
			pn := &cc.nodes[p]
			// The single edge is toggle-transparent when the consumer
			// is linear — except a fused macro sink reached on a
			// physical pin (the fault is inside its macro), which must
			// gather its fanins like any nonlinear gate.
			if pn.flags&flagLinear != 0 && (e < 0 || pn.flags&flagMacroSink == 0) {
				if qEpoch[p] != epoch {
					qEpoch[p] = epoch
					fval[p] = good[p] ^ curT // linear pass-through
					fs.touched = append(fs.touched, p)
					frontier, nd = p, pn
					continue
				}
				if e < 0 {
					// A macro edge into a sink already queued this
					// round: its physical fanins do not carry this
					// toggle, so a gather here would drop it — hand the
					// frontier to the worklist, whose enqueue composes
					// macro-edge toggles into the sink's tog word.
					return frontier, -1, true
				}
			}
			t := evalToggle(p, pn)
			if t == 0 {
				return frontier, -1, false // the only live difference died
			}
			frontier, nd, curT = p, pn, t
		case 2:
			e1, e2 := cc.fanout[nd.fanoutAt], cc.fanout[nd.fanoutAt+1]
			if e1 < 0 || e2 < 0 {
				// Macro edges on a split frontier: hand both to the
				// worklist, whose enqueue dispatches tagged edges
				// exactly (tog for sinks, queue for the rest).
				return frontier, -1, true
			}
			p1, p2 := e1, e2
			if p1 == p2 {
				// One consumer reading the stem on two pins.
				pn := &cc.nodes[p1]
				if pn.flags&flagLinear != 0 {
					return frontier, -1, false // curT^curT: parity cancels
				}
				t := evalToggle(p1, pn)
				if t == 0 {
					return frontier, -1, false
				}
				frontier, nd, curT = p1, pn, t
				continue
			}
			n1, n2 := &cc.nodes[p1], &cc.nodes[p2]
			if int32(uint32(n1.levelSlot)) > int32(uint32(n2.levelSlot)) {
				p1, p2, n1, n2 = p2, p1, n2, n1
			}
			// Evaluating p2 here is sound only if none of its fanins
			// can still change — i.e. nothing strictly downstream of
			// p1 (level ≥ l1+1, excluding p1 itself) feeds it. That
			// holds exactly when l2 ≤ l1+1; wider splits go to the
			// levelized worklist, which re-settles everything in
			// order.
			if int32(uint32(n2.levelSlot)) > int32(uint32(n1.levelSlot))+1 {
				return frontier, -1, true
			}
			// p2 may consume p1 itself, so p1 settles first (equal
			// levels cannot feed each other).
			var t1 uint64
			if n1.flags&flagLinear != 0 && qEpoch[p1] != epoch {
				qEpoch[p1] = epoch
				t1 = curT
				fval[p1] = good[p1] ^ curT
				fs.touched = append(fs.touched, p1)
			} else {
				t1 = evalToggle(p1, n1)
			}
			var t2 uint64
			if n2.flags&flagLinear != 0 && t1 == 0 && qEpoch[p2] != epoch {
				// The pass-through is only safe while the frontier is
				// still p2's sole toggled fanin — if p1 changed too,
				// p2 may consume it, so gather instead.
				t2 = curT
				fval[p2] = good[p2] ^ curT
				fs.touched = append(fs.touched, p2)
			} else {
				t2 = evalToggle(p2, n2)
			}
			switch {
			case t1 != 0 && t2 != 0:
				// Two live differences: the sole-live shortcuts are
				// off the table (their cones may reconverge and
				// cancel), and these frontier gates are never visited
				// again, so record their own output detections here.
				if cc.isOut[p1] {
					*detect |= t1
				}
				if cc.isOut[p2] {
					*detect |= t2
				}
				return p1, p2, true
			case t1 != 0:
				frontier, nd, curT = p1, n1, t1
			case t2 != 0:
				frontier, nd, curT = p2, n2, t2
			default:
				return frontier, -1, false // both branches died
			}
		default:
			return frontier, -1, true
		}
	}
}
