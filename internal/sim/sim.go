// Package sim provides 64-way bit-parallel logic simulation and
// event-driven stuck-at fault simulation (parallel-pattern single-fault
// propagation, PPSF, with fault dropping).
//
// One simulator word carries 64 independent input patterns; bit k of
// every signal word belongs to pattern k. The fault simulator reuses the
// good-machine values and propagates only the difference cone of each
// fault, which keeps per-fault cost proportional to the disturbed region
// rather than the whole circuit.
//
// Both kernels run on a compiled circuit representation (see
// compiled.go): CSR-packed fanin/fanout arrays, a levelized order, and
// per-gate opcodes, built once per circuit structure and shared by
// every simulator of that circuit. The hot loops are flat — no
// closures, no per-event method lookups — and allocation-free in
// steady state; compiled_test.go pins both properties.
package sim

import (
	"fmt"

	"optirand/internal/circuit"
	"optirand/internal/fault"
)

// Simulator evaluates the fault-free ("good") machine for 64 patterns at
// a time.
type Simulator struct {
	c   *circuit.Circuit
	cc  *Compiled
	val []uint64
	// runGen counts completed Run calls. Fault simulators use it to
	// refresh their faulty-value mirrors lazily, once per batch.
	runGen uint64
}

// NewSimulator returns a simulator for c with all values zero.
func NewSimulator(c *circuit.Circuit) *Simulator {
	cc := compiledFor(c)
	return &Simulator{
		c:   c,
		cc:  cc,
		val: make([]uint64, cc.nGates),
	}
}

// Circuit returns the simulated circuit.
func (s *Simulator) Circuit() *circuit.Circuit { return s.c }

// SetInputWord assigns the 64-pattern word of the primary input at
// position pos (index into Circuit().Inputs).
func (s *Simulator) SetInputWord(pos int, w uint64) {
	s.val[s.cc.inputs[pos]] = w
}

// SetInputs assigns all primary input words. len(words) must equal the
// number of primary inputs.
func (s *Simulator) SetInputs(words []uint64) {
	if len(words) != len(s.cc.inputs) {
		panic(fmt.Sprintf("sim: SetInputs: got %d words, want %d", len(words), len(s.cc.inputs)))
	}
	for pos, w := range words {
		s.val[s.cc.inputs[pos]] = w
	}
}

// Run evaluates every gate in topological order.
func (s *Simulator) Run() {
	cc := s.cc
	val := s.val
	nodes := cc.nodes
	for _, gi := range cc.order {
		g := int(gi)
		nd := &nodes[g]
		val[g] = evalGate(nd.op, nd.inv, cc.fanin[nd.faninAt:nd.faninAt+int32(nd.faninN)], val)
	}
	s.runGen++
}

// Value returns the 64-pattern word currently on gate g's output.
func (s *Simulator) Value(g int) uint64 { return s.val[g] }

// OutputWord returns the word of the i-th primary output.
func (s *Simulator) OutputWord(i int) uint64 { return s.val[s.cc.outputs[i]] }

// FaultSimulator propagates single stuck-at faults against the current
// good-machine state of an embedded Simulator. Several FaultSimulators
// may share one Simulator: DetectWord only reads the good machine, so
// as long as nothing mutates it concurrently (SetInputs/Run), shared
// fault simulators may run DetectWord in parallel — the shared
// good-machine campaign mode is built on exactly that.
type FaultSimulator struct {
	sim *Simulator
	cc  *Compiled

	// fval mirrors the good-machine values except on the gates of the
	// current fault's difference cone (listed in touched). The mirror
	// makes faulty gate evaluation identical to good evaluation — one
	// indexed load per fanin, no per-fanin validity check — at the
	// cost of an O(gates) copy once per batch (goodGen tracks it) and
	// an O(cone) repair after each fault.
	fval    []uint64
	goodGen uint64 // sim.runGen the mirror was last refreshed at

	// qEpoch[g] is the last round gate g was enqueued in — the
	// worklist membership test, one generation counter instead of a
	// clear-per-round bitmap.
	qEpoch []uint32
	epoch  uint32
	// queue is the flat propagation worklist: level l's entries live
	// in queue[levelStart[l] : levelStart[l]+qLen[l]]. Every level's
	// segment is sized to its gate population (Compiled.levelStart),
	// so enqueueing is a single indexed store.
	queue   []int32
	qLen    []int32
	touched []int32 // gates whose faulty value differs this round
	// pending counts enqueued-but-undrained gates; the drain walks
	// levels upward until it reaches zero, so trailing empty levels
	// are never scanned and no per-enqueue maximum is maintained.
	pending int

	// Forced-pin activation scratch for gates with duplicated drivers:
	// identity fanin indices over gathered values, so even that rare
	// path flows through the same evalGate truth source.
	actIdx []int32
	actVal []uint64
}

// NewFaultSimulator wraps a good-machine simulator. The caller drives
// the good machine (SetInputs + Run) and then queries DetectWord per
// fault for the same 64 patterns.
func NewFaultSimulator(s *Simulator) *FaultSimulator {
	cc := s.cc
	fs := &FaultSimulator{
		sim:    s,
		cc:     cc,
		fval:   make([]uint64, cc.nGates),
		qEpoch: make([]uint32, cc.nGates),
		queue:  make([]int32, cc.nGates),
		qLen:   make([]int32, cc.depth+1),
		actIdx: make([]int32, cc.maxFanin),
		actVal: make([]uint64, cc.maxFanin),
	}
	for i := range fs.actIdx {
		fs.actIdx[i] = int32(i)
	}
	// goodGen 0 == runGen 0 would skip the first refresh; force it.
	fs.goodGen = ^uint64(0)
	return fs
}

// Good returns the embedded good-machine simulator.
func (fs *FaultSimulator) Good() *Simulator { return fs.sim }

// enqueueFanout queues every observable consumer of gate g (the
// compiled fanout CSR holds exactly those).
func (fs *FaultSimulator) enqueueFanout(nd *gateNode) {
	cc := fs.cc
	epoch := fs.epoch
	qEpoch, queue, qLen := fs.qEpoch, fs.queue, fs.qLen
	n := 0
	for _, p := range cc.fanout[nd.fanoutAt : nd.fanoutAt+int32(nd.fanoutN)] {
		if qEpoch[p] == epoch {
			continue // already queued this round
		}
		qEpoch[p] = epoch
		ls := cc.nodes[p].levelSlot
		lvl := int32(uint32(ls))
		queue[int32(ls>>32)+qLen[lvl]] = p
		qLen[lvl]++
		n++
	}
	fs.pending += n
}

// DetectWord returns the mask of patterns (bits) in the current 64-slot
// batch that detect fault f: patterns where at least one primary output
// differs between good and faulty machine. The good machine must have
// been Run for the batch first. Allocation-free in steady state.
func (fs *FaultSimulator) DetectWord(f fault.Fault) uint64 {
	cc := fs.cc
	good := fs.sim.val
	site := int32(f.Gate)
	// The fault effect enters the circuit at the site gate's output
	// (for a branch fault, the forced pin changes only that gate's own
	// evaluation). If no primary output lies in its forward cone the
	// effect is unobservable for every pattern — skip the propagation.
	if !cc.reachesOut[site] {
		return 0
	}
	if fs.goodGen != fs.sim.runGen {
		copy(fs.fval, good)
		fs.goodGen = fs.sim.runGen
	}

	fs.touched = fs.touched[:0]
	fval := fs.fval

	forced := uint64(0)
	if f.Stuck == 1 {
		forced = ^uint64(0)
	}
	var nv uint64
	if f.IsStem() {
		nv = forced
	} else {
		// Activation of a branch fault: evaluate the site gate with pin
		// f.Pin forced. Nothing else of the faulty machine differs yet,
		// so the mirror holds good-machine words everywhere — poking
		// the driver's mirrored value forces exactly this pin, through
		// the same evalGate call shape as propagation. A driver feeding
		// the gate on several pins would leak onto its siblings, so
		// those (rare, precompiled) gates gather operands instead.
		g := int(site)
		nd := &cc.nodes[g]
		lo, hi := nd.faninAt, nd.faninAt+int32(nd.faninN)
		if !cc.dupFanin[g] {
			drv := cc.fanin[lo+int32(f.Pin)]
			save := fval[drv]
			fval[drv] = forced
			nv = evalGate(nd.op, nd.inv, cc.fanin[lo:hi], fval)
			fval[drv] = save
		} else {
			n := int(hi - lo)
			for k := lo; k < hi; k++ {
				fs.actVal[k-lo] = good[cc.fanin[k]]
			}
			fs.actVal[f.Pin] = forced
			nv = evalGate(nd.op, nd.inv, fs.actIdx[:n], fs.actVal)
		}
	}
	if nv == good[site] {
		return 0 // fault never activated in this batch
	}
	var detect uint64
	fval[site] = nv
	fs.touched = append(fs.touched, site)
	if cc.isOut[site] {
		detect = nv ^ good[site]
	}

	// Chain fast path: while the difference frontier stays narrow
	// (see chase), follow it directly — level order is respected by
	// construction and the worklist machinery is never engaged.
	// Fanout-free chains and die-at-the-stem splits dominate these
	// netlists, so most propagation resolves right here; the drain
	// below also re-enters this path whenever its frontier narrows
	// back to one gate.
	frontier, second, live := fs.chase(&cc.nodes[site], good, &detect)

	if live && detect != ^uint64(0) {
		// The frontier fans out: fall back to levelized worklist
		// propagation. Every update flows forward, so enqueues land
		// only on levels above the one being drained (fanout edges
		// strictly increase level) and a level's segment is complete —
		// its count stable — by the time the loop reaches it. The
		// drain walks upward until nothing is pending; everything
		// enqueued is strictly downstream of the frontier, so the scan
		// starts just above it, and no frontier gate can re-enter the
		// queue (that would need a cycle).
		fs.epoch++
		if fs.epoch == 0 { // uint32 wrap: invalidate all queue markers
			for i := range fs.qEpoch {
				fs.qEpoch[i] = 0
			}
			fs.epoch = 1
		}
		fs.enqueueFanout(frontier)
		if second != nil {
			// A two-gate frontier: chase returns the lower-level node
			// first, so the drain's start level covers both.
			fs.enqueueFanout(second)
		}
		lvl := int32(uint32(frontier.levelSlot))
		for fs.pending > 0 {
			lvl++
			n := fs.qLen[lvl]
			if n == 0 {
				continue
			}
			fs.qLen[lvl] = 0
			fs.pending -= int(n)
			base := cc.levelStart[lvl]
			var last *gateNode
			for _, gi := range fs.queue[base : base+n] {
				g := int(gi)
				nd := &cc.nodes[g]
				nv := evalGate(nd.op, nd.inv, cc.fanin[nd.faninAt:nd.faninAt+int32(nd.faninN)], fval)
				if nv != good[g] {
					fval[g] = nv
					fs.touched = append(fs.touched, gi)
					if cc.isOut[g] {
						detect |= nv ^ good[g]
					}
					fs.enqueueFanout(nd)
					last = nd
				}
			}
			// Once every pattern of the batch detects, propagating
			// further cannot change the result: stop, discarding
			// whatever is still queued.
			if detect == ^uint64(0) {
				for fs.pending > 0 {
					lvl++
					fs.pending -= int(fs.qLen[lvl])
					fs.qLen[lvl] = 0
				}
				break
			}
			// Chain re-entry: if exactly one gate is pending and the
			// last change has a single consumer, that consumer IS the
			// pending gate (every enqueued-undrained gate is in the
			// union of changed gates' consumers, which pending == 1
			// collapses to one). Pop it without touching the worklist
			// again and chase the chain; if the chase ends at a new
			// fan-out point, resume the drain from its level.
			if fs.pending == 1 && last != nil && last.fanoutN == 1 {
				p := cc.fanout[last.fanoutAt]
				nd := &cc.nodes[p]
				pl := int32(uint32(nd.levelSlot))
				fs.qLen[pl] = 0
				fs.pending = 0
				nv := evalGate(nd.op, nd.inv, cc.fanin[nd.faninAt:nd.faninAt+int32(nd.faninN)], fval)
				if nv == good[p] {
					break // the only live difference died
				}
				fval[p] = nv
				fs.touched = append(fs.touched, p)
				if cc.isOut[p] {
					detect |= nv ^ good[p]
				}
				var alive bool
				frontier, second, alive = fs.chase(nd, good, &detect)
				if !alive || detect == ^uint64(0) {
					break
				}
				fs.enqueueFanout(frontier)
				if second != nil {
					fs.enqueueFanout(second)
				}
				lvl = int32(uint32(frontier.levelSlot))
			}
		}
	}

	// Repair the mirror.
	for _, gi := range fs.touched {
		fval[gi] = good[gi]
	}
	return detect
}

// chase follows the difference frontier while it stays narrow: one
// gate with one observable consumer (the fanout-free-chain case), or
// one gate with two consumers of which at most one keeps the
// difference alive (a stem whose other branch dies at a
// non-sensitized gate — the dominant stem shape in these netlists).
// Detections accumulate into *detect. It returns the one or two nodes
// of the final frontier and whether the difference is still live;
// callers must have applied the initial frontier's value to the
// mirror already, and must fall back to worklist propagation when two
// nodes return.
func (fs *FaultSimulator) chase(frontier *gateNode, good []uint64, detect *uint64) (a, b *gateNode, live bool) {
	cc := fs.cc
	fval := fs.fval
	// applyEval evaluates gate p against the mirror and applies a
	// changed value, reporting whether the difference survived.
	applyEval := func(p int32, nd *gateNode) bool {
		nv := evalGate(nd.op, nd.inv, cc.fanin[nd.faninAt:nd.faninAt+int32(nd.faninN)], fval)
		if nv == good[p] {
			return false
		}
		fval[p] = nv
		fs.touched = append(fs.touched, p)
		if cc.isOut[p] {
			*detect |= nv ^ good[p]
		}
		return true
	}
	for {
		switch frontier.fanoutN {
		case 0:
			return frontier, nil, false // ran off the end of the cone
		case 1:
			p := cc.fanout[frontier.fanoutAt]
			nd := &cc.nodes[p]
			if !applyEval(p, nd) {
				return frontier, nil, false // the only live difference died
			}
			frontier = nd
		case 2:
			p1, p2 := cc.fanout[frontier.fanoutAt], cc.fanout[frontier.fanoutAt+1]
			if p1 == p2 {
				// One consumer reading the stem on two pins.
				nd := &cc.nodes[p1]
				if !applyEval(p1, nd) {
					return frontier, nil, false
				}
				frontier = nd
				continue
			}
			n1, n2 := &cc.nodes[p1], &cc.nodes[p2]
			if int32(uint32(n1.levelSlot)) > int32(uint32(n2.levelSlot)) {
				p1, p2, n1, n2 = p2, p1, n2, n1
			}
			// Evaluating p2 here is sound only if none of its fanins
			// can still change — i.e. nothing strictly downstream of
			// p1 (level ≥ l1+1, excluding p1 itself) feeds it. That
			// holds exactly when l2 ≤ l1+1; wider splits go to the
			// levelized worklist, which re-settles everything in
			// order.
			if int32(uint32(n2.levelSlot)) > int32(uint32(n1.levelSlot))+1 {
				return frontier, nil, true
			}
			// p2 may consume p1 itself, so p1 settles first (equal
			// levels cannot feed each other).
			ch1 := applyEval(p1, n1)
			ch2 := applyEval(p2, n2)
			switch {
			case ch1 && ch2:
				return n1, n2, true // genuine two-gate frontier
			case ch1:
				frontier = n1
			case ch2:
				frontier = n2
			default:
				return frontier, nil, false // both branches died
			}
		default:
			return frontier, nil, true
		}
	}
}
