package sim

import (
	"fmt"

	"optirand/internal/fault"
)

// This file is the wide-word half of the simulation kernels: W=4/8
// 64-pattern words per gate visit (W is chosen at compile time, see
// Compiled.lanes), laid out as contiguous [W]uint64 lane groups in
// flat slices — gate g's words live at [g*W, (g+1)*W) — so the
// straight-line bitwise loops auto-vectorize and one opcode dispatch,
// one CSR fanin walk, and one worklist drain amortize across W pattern
// batches. RunWide and DetectWords are the wide counterparts of Run
// and DetectWord; the campaign loops in campaign.go run on them, and
// the single-word kernels remain as the W=1 degenerate case.
//
// The propagation structure mirrors sim.go exactly — activation,
// chain chase with the linear pass-through and sureOut dominator cut,
// levelized drain with diff-word visits and chain re-entry — except
// that "changed" means any lane differs. The mirror holds per-lane
// correct values throughout, so per-lane results are automatically
// exact for every lane, for the same reason the 64 pattern bits inside
// one word are: union-cone propagation over independent columns.

// evalLanes8 evaluates one gate over 8-word lane groups: val is a flat
// lane array (gate g at [g*8, (g+1)*8)) and the result lands in out.
// Semantically it is evalGate applied per lane; the fixed-size array
// pointers let the compiler drop bounds checks and vectorize.
func evalLanes8(op uint8, inv uint64, fanin []int32, val []uint64, out *[8]uint64) {
	switch op {
	case opAnd2:
		a := (*[8]uint64)(val[int(fanin[0])*8:])
		b := (*[8]uint64)(val[int(fanin[1])*8:])
		for i := range out {
			out[i] = (a[i] & b[i]) ^ inv
		}
	case opOr2:
		a := (*[8]uint64)(val[int(fanin[0])*8:])
		b := (*[8]uint64)(val[int(fanin[1])*8:])
		for i := range out {
			out[i] = (a[i] | b[i]) ^ inv
		}
	case opXor2:
		a := (*[8]uint64)(val[int(fanin[0])*8:])
		b := (*[8]uint64)(val[int(fanin[1])*8:])
		for i := range out {
			out[i] = a[i] ^ b[i] ^ inv
		}
	case opBuf:
		a := (*[8]uint64)(val[int(fanin[0])*8:])
		for i := range out {
			out[i] = a[i] ^ inv
		}
	case opAnd:
		for i := range out {
			out[i] = ^uint64(0)
		}
		for _, f := range fanin {
			a := (*[8]uint64)(val[int(f)*8:])
			for i := range out {
				out[i] &= a[i]
			}
		}
		for i := range out {
			out[i] ^= inv
		}
	case opOr:
		for i := range out {
			out[i] = 0
		}
		for _, f := range fanin {
			a := (*[8]uint64)(val[int(f)*8:])
			for i := range out {
				out[i] |= a[i]
			}
		}
		for i := range out {
			out[i] ^= inv
		}
	case opXor:
		for i := range out {
			out[i] = 0
		}
		for _, f := range fanin {
			a := (*[8]uint64)(val[int(f)*8:])
			for i := range out {
				out[i] ^= a[i]
			}
		}
		for i := range out {
			out[i] ^= inv
		}
	case opConst:
		for i := range out {
			out[i] = inv // the constant's value is entirely in inv
		}
	}
}

// evalLanes4 is evalLanes8 over 4-word lane groups.
func evalLanes4(op uint8, inv uint64, fanin []int32, val []uint64, out *[4]uint64) {
	switch op {
	case opAnd2:
		a := (*[4]uint64)(val[int(fanin[0])*4:])
		b := (*[4]uint64)(val[int(fanin[1])*4:])
		for i := range out {
			out[i] = (a[i] & b[i]) ^ inv
		}
	case opOr2:
		a := (*[4]uint64)(val[int(fanin[0])*4:])
		b := (*[4]uint64)(val[int(fanin[1])*4:])
		for i := range out {
			out[i] = (a[i] | b[i]) ^ inv
		}
	case opXor2:
		a := (*[4]uint64)(val[int(fanin[0])*4:])
		b := (*[4]uint64)(val[int(fanin[1])*4:])
		for i := range out {
			out[i] = a[i] ^ b[i] ^ inv
		}
	case opBuf:
		a := (*[4]uint64)(val[int(fanin[0])*4:])
		for i := range out {
			out[i] = a[i] ^ inv
		}
	case opAnd:
		for i := range out {
			out[i] = ^uint64(0)
		}
		for _, f := range fanin {
			a := (*[4]uint64)(val[int(f)*4:])
			for i := range out {
				out[i] &= a[i]
			}
		}
		for i := range out {
			out[i] ^= inv
		}
	case opOr:
		for i := range out {
			out[i] = 0
		}
		for _, f := range fanin {
			a := (*[4]uint64)(val[int(f)*4:])
			for i := range out {
				out[i] |= a[i]
			}
		}
		for i := range out {
			out[i] ^= inv
		}
	case opXor:
		for i := range out {
			out[i] = 0
		}
		for _, f := range fanin {
			a := (*[4]uint64)(val[int(f)*4:])
			for i := range out {
				out[i] ^= a[i]
			}
		}
		for i := range out {
			out[i] ^= inv
		}
	case opConst:
		for i := range out {
			out[i] = inv
		}
	}
}

// evalLanesGate dispatches a gate evaluation to the compiled width,
// writing the w result words into out's first w slots. The w branch is
// perfectly predicted (constant per circuit); everything else is the
// specialized straight-line code above.
func evalLanesGate(w int, op uint8, inv uint64, fanin []int32, val []uint64, out *[8]uint64) {
	if w == 8 {
		evalLanes8(op, inv, fanin, val, out)
	} else {
		evalLanes4(op, inv, fanin, val, (*[4]uint64)(out[:4]))
	}
}

// simWide is the good machine's lane state, allocated on first wide
// use (wideState).
type simWide struct {
	val []uint64 // nGates*W lane words, gate g at [g*W, (g+1)*W)
	// runGen counts completed RunWide calls, independently of the
	// narrow counter — each width's mirrors refresh against their own
	// generation.
	runGen uint64
}

func (s *Simulator) wideState() *simWide {
	if s.wide == nil {
		s.wide = &simWide{val: make([]uint64, s.cc.nGates*s.cc.lanes)}
	}
	return s.wide
}

// SetInputLane assigns the 64-pattern word of primary input pos in
// lane l — batch l of the wide group.
func (s *Simulator) SetInputLane(pos, lane int, w uint64) {
	sw := s.wideState()
	sw.val[int(s.cc.inputs[pos])*s.cc.lanes+lane] = w
}

// SetInputsLane assigns all primary input words of lane l. len(words)
// must equal the number of primary inputs.
func (s *Simulator) SetInputsLane(lane int, words []uint64) {
	if len(words) != len(s.cc.inputs) {
		panic(fmt.Sprintf("sim: SetInputsLane: got %d words, want %d", len(words), len(s.cc.inputs)))
	}
	sw := s.wideState()
	w := s.cc.lanes
	for pos, word := range words {
		sw.val[int(s.cc.inputs[pos])*w+lane] = word
	}
}

// RunWide evaluates every gate in topological order over all W lanes —
// one opcode dispatch and one CSR walk per gate for W batches.
func (s *Simulator) RunWide() {
	cc := s.cc
	sw := s.wideState()
	val := sw.val
	nodes := cc.nodes
	if cc.lanes == 8 {
		for _, gi := range cc.order {
			g := int(gi)
			nd := &nodes[g]
			evalLanes8(nd.op, nd.inv, cc.fanin[nd.faninAt:nd.faninAt+int32(nd.faninN)], val, (*[8]uint64)(val[g*8:]))
		}
	} else {
		for _, gi := range cc.order {
			g := int(gi)
			nd := &nodes[g]
			evalLanes4(nd.op, nd.inv, cc.fanin[nd.faninAt:nd.faninAt+int32(nd.faninN)], val, (*[4]uint64)(val[g*4:]))
		}
	}
	sw.runGen++
}

// ValueLane returns the lane-l word currently on gate g's output (as
// of the last RunWide).
func (s *Simulator) ValueLane(g, lane int) uint64 {
	return s.wideState().val[g*s.cc.lanes+lane]
}

// OutputLane returns the lane-l word of the i-th primary output.
func (s *Simulator) OutputLane(i, lane int) uint64 {
	return s.wideState().val[int(s.cc.outputs[i])*s.cc.lanes+lane]
}

// fsWide is a fault simulator's lane state: the wide mirror, the
// per-gate toggle-group accumulators of the diff-word path, and the
// duplicated-driver activation scratch, allocated on first
// DetectWords use.
type fsWide struct {
	fval    []uint64 // nGates*W mirror of the wide good machine
	tog     []uint64 // nGates*W toggle accumulators (see FaultSimulator.tog)
	actVal  []uint64 // maxFanin*W gathered activation operands
	goodGen uint64   // simWide.runGen the mirror was last refreshed at
}

func (fs *FaultSimulator) wideState() *fsWide {
	if fs.wide == nil {
		cc := fs.cc
		fs.wide = &fsWide{
			fval:   make([]uint64, cc.nGates*cc.lanes),
			tog:    make([]uint64, cc.nGates*cc.lanes),
			actVal: make([]uint64, cc.maxFanin*cc.lanes),
			// goodGen 0 == runGen 0 would skip the first refresh.
			goodGen: ^uint64(0),
		}
	}
	return fs.wide
}

// allLanesFull reports that every lane's detect mask is saturated.
func allLanesFull(det []uint64) bool {
	for _, d := range det {
		if d != ^uint64(0) {
			return false
		}
	}
	return true
}

// enqueueFanoutWide is enqueueFanout over lane groups: gate g's toggle
// group accumulates into each linear consumer's tog group, once per
// consuming pin (non-linear consumers gather from the mirror and never
// read tog, so their accumulation is skipped). The two width-
// specialized bodies use array-pointer casts so the lane loops compile
// to straight-line, bounds-check-free code.
func (fs *FaultSimulator) enqueueFanoutWide(g int32) {
	cc := fs.cc
	fw := fs.wide
	nd := &cc.nodes[g]
	epoch := fs.epoch
	qEpoch, queue, qLen := fs.qEpoch, fs.queue, fs.qLen
	nodes := cc.nodes
	fanout := cc.fanout[nd.fanoutAt : nd.fanoutAt+int32(nd.fanoutN)]
	n := 0
	if cc.lanes == 8 {
		fg := (*[8]uint64)(fw.fval[int(g)*8 : int(g)*8+8])
		gg := (*[8]uint64)(fs.sim.wide.val[int(g)*8 : int(g)*8+8])
		var tg [8]uint64
		for l := 0; l < 8; l++ {
			tg[l] = fg[l] ^ gg[l]
		}
		for _, e := range fanout {
			p := e & edgeIndexMask // macro edges carry the sink in the low bits
			pn := &nodes[p]
			if qEpoch[p] == epoch {
				if pn.flags&flagLinear != 0 {
					tp := (*[8]uint64)(fw.tog[int(p)*8 : int(p)*8+8])
					for l := 0; l < 8; l++ {
						tp[l] ^= tg[l]
					}
				}
				continue
			}
			qEpoch[p] = epoch
			if e >= 0 && pn.flags&flagMacroSink != 0 {
				fs.gEpoch[p] = epoch // physical pin into a fused sink: force a gather
			}
			if pn.flags&flagLinear != 0 {
				*(*[8]uint64)(fw.tog[int(p)*8 : int(p)*8+8]) = tg
			}
			ls := pn.levelSlot
			lvl := int32(uint32(ls))
			queue[int32(ls>>32)+qLen[lvl]] = p
			qLen[lvl]++
			n++
		}
	} else {
		fg := (*[4]uint64)(fw.fval[int(g)*4 : int(g)*4+4])
		gg := (*[4]uint64)(fs.sim.wide.val[int(g)*4 : int(g)*4+4])
		var tg [4]uint64
		for l := 0; l < 4; l++ {
			tg[l] = fg[l] ^ gg[l]
		}
		for _, e := range fanout {
			p := e & edgeIndexMask
			pn := &nodes[p]
			if qEpoch[p] == epoch {
				if pn.flags&flagLinear != 0 {
					tp := (*[4]uint64)(fw.tog[int(p)*4 : int(p)*4+4])
					for l := 0; l < 4; l++ {
						tp[l] ^= tg[l]
					}
				}
				continue
			}
			qEpoch[p] = epoch
			if e >= 0 && pn.flags&flagMacroSink != 0 {
				fs.gEpoch[p] = epoch
			}
			if pn.flags&flagLinear != 0 {
				*(*[4]uint64)(fw.tog[int(p)*4 : int(p)*4+4]) = tg
			}
			ls := pn.levelSlot
			lvl := int32(uint32(ls))
			queue[int32(ls>>32)+qLen[lvl]] = p
			qLen[lvl]++
			n++
		}
	}
	fs.pending += n
}

// evalApplyWide evaluates gate p over the wide mirror; if any lane
// differs from good it applies the new group, stores the toggle lanes
// into t, appends p to touched, and returns true. On false, t holds
// zeros. The qEpoch stamp records that p's value now reflects every
// toggle applied to the mirror (see the narrow evalToggle).
func (fs *FaultSimulator) evalApplyWide(p int32, pn *gateNode, t *[8]uint64) bool {
	cc := fs.cc
	w := cc.lanes
	fs.qEpoch[p] = fs.epoch
	fval := fs.wide.fval
	var nv [8]uint64
	evalLanesGate(w, pn.op, pn.inv, cc.fanin[pn.faninAt:pn.faninAt+int32(pn.faninN)], fval, &nv)
	gg := fs.sim.wide.val[int(p)*w:]
	any := uint64(0)
	for l := 0; l < w; l++ {
		t[l] = nv[l] ^ gg[l]
		any |= t[l]
	}
	if any == 0 {
		return false
	}
	copy(fval[int(p)*w:int(p)*w+w], nv[:w])
	fs.touched = append(fs.touched, p)
	return true
}

// DetectWords fills det[:W] with the per-lane detection masks of fault
// f against the current wide good-machine state: det[l] is what
// DetectWord would return for the 64 patterns of lane l. The good
// machine must have been RunWide for the group first (len(det) must be
// at least W). Allocation-free in steady state after the first call.
func (fs *FaultSimulator) DetectWords(f fault.Fault, det []uint64) {
	cc := fs.cc
	w := cc.lanes
	det = det[:w]
	for l := range det {
		det[l] = 0
	}
	site := int32(f.Gate)
	if !cc.reachesOut[site] {
		return
	}
	sw := fs.sim.wide
	if sw == nil {
		panic("sim: DetectWords: RunWide has not been called on the good machine")
	}
	good := sw.val
	fw := fs.wideState()
	if fw.goodGen != sw.runGen {
		copy(fw.fval, good)
		fw.goodGen = sw.runGen
	}

	fs.touched = fs.touched[:0]
	fval := fw.fval

	forced := uint64(0)
	if f.Stuck == 1 {
		forced = ^uint64(0)
	}
	var nv [8]uint64
	g := int(site)
	nd := &cc.nodes[g]
	if f.IsStem() {
		for l := 0; l < w; l++ {
			nv[l] = forced
		}
	} else {
		// Branch-fault activation, exactly as in DetectWord but over
		// lane groups: poke the driver's mirrored group (or gather for
		// duplicated drivers) and evaluate the site gate once.
		lo, hi := nd.faninAt, nd.faninAt+int32(nd.faninN)
		if !cc.dupFanin[g] {
			drv := int(cc.fanin[lo+int32(f.Pin)])
			dg := fval[drv*w : drv*w+w]
			var save [8]uint64
			copy(save[:w], dg)
			for l := 0; l < w; l++ {
				dg[l] = forced
			}
			evalLanesGate(w, nd.op, nd.inv, cc.fanin[lo:hi], fval, &nv)
			copy(dg, save[:w])
		} else {
			n := int(hi - lo)
			for k := 0; k < n; k++ {
				src := int(cc.fanin[lo+int32(k)])
				copy(fw.actVal[k*w:k*w+w], good[src*w:src*w+w])
			}
			for l := 0; l < w; l++ {
				fw.actVal[int(f.Pin)*w+l] = forced
			}
			evalLanesGate(w, nd.op, nd.inv, fs.actIdx[:n], fw.actVal, &nv)
		}
	}
	var curT [8]uint64
	any := uint64(0)
	sg := good[g*w : g*w+w]
	for l := 0; l < w; l++ {
		curT[l] = nv[l] ^ sg[l]
		any |= curT[l]
	}
	if any == 0 {
		return // fault never activated in any lane of this group
	}
	copy(fval[g*w:g*w+w], nv[:w])
	fs.touched = append(fs.touched, site)

	// One epoch per round, stamped by the chase and reused by the drain
	// for queue dedup — exactly as in DetectWord.
	fs.epoch++
	if fs.epoch == 0 { // uint32 wrap: invalidate all stamps
		for i := range fs.qEpoch {
			fs.qEpoch[i] = 0
		}
		for i := range fs.gEpoch {
			fs.gEpoch[i] = 0
		}
		fs.epoch = 1
	}
	epoch := fs.epoch

	a, b, live := fs.chaseWide(site, &curT, det)

	if live && !allLanesFull(det) {
		fs.enqueueFanoutWide(a)
		if b >= 0 {
			fs.enqueueFanoutWide(b)
		}
		lvl := int32(uint32(cc.nodes[a].levelSlot))
		var tmp [8]uint64
		for fs.pending > 0 {
			lvl++
			n := fs.qLen[lvl]
			if n == 0 {
				continue
			}
			fs.qLen[lvl] = 0
			fs.pending -= int(n)
			base := cc.levelStart[lvl]
			last := int32(-1)
			for _, gi := range fs.queue[base : base+n] {
				pd := &cc.nodes[gi]
				gg := good[int(gi)*w:]
				any := uint64(0)
				if pd.flags&flagLinear != 0 &&
					(pd.flags&flagMacroSink == 0 || fs.gEpoch[gi] != epoch) {
					// Diff-word visit: the accumulated toggle group IS
					// the output toggle — no fanin gather, and the new
					// group lands in the mirror directly (an unqueued
					// gate's mirror holds good values, so there is
					// nothing to preserve). A macro sink reached on a
					// physical pin this round (gEpoch) gathers instead,
					// as in DetectWord.
					tg := fw.tog[int(gi)*w : int(gi)*w+w]
					for l := 0; l < w; l++ {
						any |= tg[l]
					}
					if any == 0 {
						continue
					}
					pf := fval[int(gi)*w : int(gi)*w+w]
					for l := 0; l < w; l++ {
						pf[l] = gg[l] ^ tg[l]
					}
					if cc.isOut[gi] {
						for l := 0; l < w; l++ {
							det[l] |= tg[l]
						}
					}
				} else {
					evalLanesGate(w, pd.op, pd.inv, cc.fanin[pd.faninAt:pd.faninAt+int32(pd.faninN)], fval, &tmp)
					for l := 0; l < w; l++ {
						any |= tmp[l] ^ gg[l]
					}
					if any == 0 {
						continue
					}
					copy(fval[int(gi)*w:int(gi)*w+w], tmp[:w])
					if cc.isOut[gi] {
						for l := 0; l < w; l++ {
							det[l] |= tmp[l] ^ gg[l]
						}
					}
				}
				fs.touched = append(fs.touched, gi)
				fs.enqueueFanoutWide(gi)
				last = gi
			}
			if allLanesFull(det) {
				for fs.pending > 0 {
					lvl++
					fs.pending -= int(fs.qLen[lvl])
					fs.qLen[lvl] = 0
				}
				break
			}
			// Chain re-entry, as in DetectWord.
			if fs.pending == 1 && last >= 0 && cc.nodes[last].fanoutN == 1 {
				p := cc.fanout[cc.nodes[last].fanoutAt] & edgeIndexMask
				pd := &cc.nodes[p]
				pl := int32(uint32(pd.levelSlot))
				fs.qLen[pl] = 0
				fs.pending = 0
				gg := good[int(p)*w:]
				any := uint64(0)
				if pd.flags&flagLinear != 0 &&
					(pd.flags&flagMacroSink == 0 || fs.gEpoch[p] != epoch) {
					tg := fw.tog[int(p)*w:]
					for l := 0; l < w; l++ {
						tmp[l] = gg[l] ^ tg[l]
						any |= tg[l]
					}
				} else {
					evalLanesGate(w, pd.op, pd.inv, cc.fanin[pd.faninAt:pd.faninAt+int32(pd.faninN)], fval, &tmp)
					for l := 0; l < w; l++ {
						any |= tmp[l] ^ gg[l]
					}
				}
				if any == 0 {
					break // the only live difference died
				}
				copy(fval[int(p)*w:int(p)*w+w], tmp[:w])
				fs.touched = append(fs.touched, p)
				for l := 0; l < w; l++ {
					curT[l] = tmp[l] ^ gg[l]
				}
				var alive bool
				a, b, alive = fs.chaseWide(p, &curT, det)
				if !alive || allLanesFull(det) {
					break
				}
				fs.enqueueFanoutWide(a)
				if b >= 0 {
					fs.enqueueFanoutWide(b)
				}
				lvl = int32(uint32(cc.nodes[a].levelSlot))
			}
		}
	}

	// Repair the mirror.
	for _, gi := range fs.touched {
		copy(fval[int(gi)*w:int(gi)*w+w], good[int(gi)*w:int(gi)*w+w])
	}
}

// chaseWide is chase over lane groups: the frontier carries a toggle
// group (curT, first W slots), "live" means any lane differs, and the
// sole-live-difference shortcuts — the sureOut dominator cut, the
// linear pass-through, parity self-cancellation — apply per lane for
// the same reasons they apply per bit (lanes are independent columns
// and the frontier is each lane's only live difference or a dead one).
// Returns the one or two gates of the final frontier (b == -1 for
// none; a is the lower-level gate) and whether any lane is still live.
func (fs *FaultSimulator) chaseWide(g int32, curT *[8]uint64, det []uint64) (a, b int32, live bool) {
	cc := fs.cc
	w := cc.lanes
	fw := fs.wide
	fval := fw.fval
	good := fs.sim.wide.val
	frontier := g
	nd := &cc.nodes[g]
	qEpoch, epoch := fs.qEpoch, fs.epoch
	for {
		if nd.flags&flagSureOut != 0 &&
			(cc.isOut[frontier] || qEpoch[cc.fanout[nd.fanoutAt]&edgeIndexMask] != epoch) {
			// Dominator cut, guarded against a settled chain head
			// exactly as in the narrow chase.
			for l := 0; l < w; l++ {
				det[l] |= curT[l]
			}
			return frontier, -1, false
		}
		switch nd.fanoutN {
		case 0:
			return frontier, -1, false // ran off the end of the cone
		case 1:
			e := cc.fanout[nd.fanoutAt]
			p := e & edgeIndexMask
			pn := &cc.nodes[p]
			// Toggle transparency of the single edge, as in the narrow
			// chase: linear consumers pass the group through — except a
			// fused macro sink reached on a physical pin, which gathers.
			if pn.flags&flagLinear != 0 && (e < 0 || pn.flags&flagMacroSink == 0) {
				if qEpoch[p] != epoch {
					// Linear pass-through: the toggle group survives
					// unchanged, no gather. Skipped for gates already
					// evaluated this round (their value absorbed the
					// applied toggles — re-walking the edge would
					// double-count; see the narrow chase).
					qEpoch[p] = epoch
					gg := good[int(p)*w:]
					pf := fval[int(p)*w : int(p)*w+w]
					for l := 0; l < w; l++ {
						pf[l] = gg[l] ^ curT[l]
					}
					fs.touched = append(fs.touched, p)
					frontier, nd = p, pn
					continue
				}
				if e < 0 {
					// Macro edge into a sink already queued this round:
					// a gather would drop the toggle (see the narrow
					// chase) — hand the frontier to the worklist.
					return frontier, -1, true
				}
			}
			if !fs.evalApplyWide(p, pn, curT) {
				return frontier, -1, false // the only live difference died
			}
			frontier, nd = p, pn
		case 2:
			e1, e2 := cc.fanout[nd.fanoutAt], cc.fanout[nd.fanoutAt+1]
			if e1 < 0 || e2 < 0 {
				// Macro edges on a split frontier go to the worklist,
				// as in the narrow chase.
				return frontier, -1, true
			}
			p1, p2 := e1, e2
			if p1 == p2 {
				// One consumer reading the stem on two pins.
				pn := &cc.nodes[p1]
				if pn.flags&flagLinear != 0 {
					return frontier, -1, false // curT^curT: parity cancels
				}
				if !fs.evalApplyWide(p1, pn, curT) {
					return frontier, -1, false
				}
				frontier, nd = p1, pn
				continue
			}
			n1, n2 := &cc.nodes[p1], &cc.nodes[p2]
			if int32(uint32(n1.levelSlot)) > int32(uint32(n2.levelSlot)) {
				p1, p2, n1, n2 = p2, p1, n2, n1
			}
			// Same level guard as the narrow chase: p2's fanins must
			// all be settled before it is evaluated here.
			if int32(uint32(n2.levelSlot)) > int32(uint32(n1.levelSlot))+1 {
				return frontier, -1, true
			}
			var t1, t2 [8]uint64
			var ch1, ch2 bool
			if n1.flags&flagLinear != 0 && qEpoch[p1] != epoch {
				qEpoch[p1] = epoch
				t1 = *curT
				gg := good[int(p1)*w:]
				pf := fval[int(p1)*w : int(p1)*w+w]
				for l := 0; l < w; l++ {
					pf[l] = gg[l] ^ curT[l]
				}
				fs.touched = append(fs.touched, p1)
				ch1 = true
			} else {
				ch1 = fs.evalApplyWide(p1, n1, &t1)
			}
			if n2.flags&flagLinear != 0 && !ch1 && qEpoch[p2] != epoch {
				// Pass-through only while the frontier is still p2's
				// sole toggled fanin (p2 may consume p1).
				qEpoch[p2] = epoch
				t2 = *curT
				gg := good[int(p2)*w:]
				pf := fval[int(p2)*w : int(p2)*w+w]
				for l := 0; l < w; l++ {
					pf[l] = gg[l] ^ curT[l]
				}
				fs.touched = append(fs.touched, p2)
				ch2 = true
			} else {
				ch2 = fs.evalApplyWide(p2, n2, &t2)
			}
			switch {
			case ch1 && ch2:
				// Two live differences: sole-live shortcuts end here;
				// record these gates' own output detections since the
				// drain never revisits them.
				if cc.isOut[p1] {
					for l := 0; l < w; l++ {
						det[l] |= t1[l]
					}
				}
				if cc.isOut[p2] {
					for l := 0; l < w; l++ {
						det[l] |= t2[l]
					}
				}
				return p1, p2, true
			case ch1:
				*curT = t1
				frontier, nd = p1, n1
			case ch2:
				*curT = t2
				frontier, nd = p2, n2
			default:
				return frontier, -1, false // both branches died
			}
		default:
			return frontier, -1, true
		}
	}
}
