package sim

import (
	"testing"

	"optirand/internal/fault"
	"optirand/internal/gen"
)

// uniformWeights returns the 0.5 vector for c.
func uniformWeights(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 0.5
	}
	return w
}

// shardCounts are the pattern-shard counts every equivalence test
// exercises: serial, even, odd/prime (uneven batch ranges), and far
// more shards than any test's batch count (clamping).
func shardCounts() []int {
	return []int{1, 2, 3, 5, 8, 64}
}

// TestRunCampaignPatternShardsEquivalence asserts that pattern-range
// sharding is bit-identical to the serial campaign on every generated
// benchmark circuit, for every tested shard count.
func TestRunCampaignPatternShardsEquivalence(t *testing.T) {
	const (
		nPatterns = 960 // 15 batches
		curveStep = 200
		seed      = 1987
	)
	for _, b := range gen.Benchmarks() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			c := b.Build()
			faults := fault.New(c).Reps
			weights := uniformWeights(c.NumInputs())
			ref := RunCampaign(c, faults, weights, nPatterns, seed, curveStep)
			for _, sh := range shardCounts() {
				got := RunCampaignPatternShards(c, faults, weights, nPatterns, seed, curveStep, sh)
				equalCampaigns(t, b.Name, ref, got)
				if t.Failed() {
					t.Fatalf("shards=%d diverged from serial", sh)
				}
			}
		})
	}
}

// TestPatternShardsPartialFinalBatch pins the partial-final-batch
// mask: a budget that is not a multiple of 64 puts a short batch at
// the end of the LAST range, and budgets shorter than one batch
// degenerate to a single range.
func TestPatternShardsPartialFinalBatch(t *testing.T) {
	b, _ := gen.ByName("c880")
	c := b.Build()
	faults := fault.New(c).Reps
	weights := uniformWeights(c.NumInputs())
	for _, n := range []int{77, 130, 63, 64, 65, 1} {
		ref := RunCampaign(c, faults, weights, n, 11, 10)
		for _, sh := range []int{2, 3, 7} {
			got := RunCampaignPatternShards(c, faults, weights, n, 11, 10, sh)
			equalCampaigns(t, "partial-batch", ref, got)
			if t.Failed() {
				t.Fatalf("n=%d shards=%d diverged", n, sh)
			}
		}
	}
}

// TestPatternShardsMoreShardsThanBatches: shard counts beyond the
// batch count clamp to one range per batch.
func TestPatternShardsMoreShardsThanBatches(t *testing.T) {
	b, _ := gen.ByName("c432")
	c := b.Build()
	faults := fault.New(c).Reps
	weights := uniformWeights(c.NumInputs())
	ref := RunCampaign(c, faults, weights, 100, 5, 0) // 2 batches
	got := RunCampaignPatternShards(c, faults, weights, 100, 5, 0, 7)
	equalCampaigns(t, "clamped-shards", ref, got)
}

// TestPatternShardsEdgeCases covers the degenerate inputs: empty
// fault lists and zero/negative budgets.
func TestPatternShardsEdgeCases(t *testing.T) {
	b, _ := gen.ByName("c432")
	c := b.Build()
	faults := fault.New(c).Reps
	weights := uniformWeights(c.NumInputs())
	cases := []struct {
		name     string
		faults   []fault.Fault
		patterns int
	}{
		{"empty-faults", nil, 100},
		{"zero-patterns", faults, 0},
		{"negative-patterns", faults, -3},
		{"tiny-fault-list", faults[:2], 200},
	}
	for _, tc := range cases {
		ref := RunCampaign(c, tc.faults, weights, tc.patterns, 3, 10)
		for _, sh := range []int{2, 5} {
			got := RunCampaignPatternShards(c, tc.faults, weights, tc.patterns, 3, 10, sh)
			equalCampaigns(t, tc.name, ref, got)
		}
	}
}

// TestPatternShardsDroppingAcrossRanges makes the cross-range drop
// handshake do real work — a long stream where almost every fault is
// detected in the first range, so later ranges drop nearly the whole
// list through the shared atomic map — and checks bit-identity. Run
// under -race this also certifies the handshake.
func TestPatternShardsDroppingAcrossRanges(t *testing.T) {
	b, _ := gen.ByName("c1908")
	c := b.Build()
	faults := fault.New(c).Reps
	weights := uniformWeights(c.NumInputs())
	const n = 4096
	ref := RunCampaign(c, faults, weights, n, 7, 512)
	for _, sh := range []int{2, 4, 16} {
		got := RunCampaignPatternShards(c, faults, weights, n, 7, 512, sh)
		equalCampaigns(t, "drop-handshake", ref, got)
	}
}

// TestSharedGoodMachineEquivalence asserts the shared-good-machine
// mode (one good simulation per batch, DetectWord fanned out over
// fault shards with a per-batch barrier) is bit-identical to the
// serial campaign, including with mixtures and for the Auto pick.
func TestSharedGoodMachineEquivalence(t *testing.T) {
	for _, name := range []string{"s1", "c880", "c2670"} {
		b, ok := gen.ByName(name)
		if !ok {
			t.Fatalf("missing benchmark %s", name)
		}
		c := b.Build()
		faults := fault.New(c).Reps
		weights := uniformWeights(c.NumInputs())
		ref := RunCampaign(c, faults, weights, 960, 1987, 200)
		for _, w := range []int{2, 3, 7} {
			for _, mode := range []GoodMachine{GoodMachineShared, GoodMachineAuto} {
				got := RunCampaignConfig(c, faults, [][]float64{weights}, 1987, CampaignConfig{
					Patterns: 960, CurveStep: 200, Workers: w, GoodMachine: mode,
				})
				equalCampaigns(t, name, ref, got)
				if t.Failed() {
					t.Fatalf("workers=%d mode=%d diverged", w, mode)
				}
			}
		}
	}

	// Mixture rotation through the shared good machine.
	b, _ := gen.ByName("s1")
	c := b.Build()
	faults := fault.New(c).Reps
	n := c.NumInputs()
	mk := func(p float64) []float64 {
		w := make([]float64, n)
		for i := range w {
			w[i] = p
		}
		return w
	}
	sets := [][]float64{mk(0.5), mk(0.8), mk(0.2)}
	ref := RunCampaignMixture(c, faults, sets, 2000, 11, 256)
	got := RunCampaignConfig(c, faults, sets, 11, CampaignConfig{
		Patterns: 2000, CurveStep: 256, Workers: 4, GoodMachine: GoodMachineShared,
	})
	equalCampaigns(t, "s1-mixture-shared", ref, got)
}

// TestRunCampaignConfigMatrix sweeps the whole scheduling matrix on
// one circuit: every combination must reproduce the serial result.
func TestRunCampaignConfigMatrix(t *testing.T) {
	b, _ := gen.ByName("c880")
	c := b.Build()
	faults := fault.New(c).Reps
	weights := uniformWeights(c.NumInputs())
	ref := RunCampaign(c, faults, weights, 500, 3, 100)
	for _, cfg := range []CampaignConfig{
		{Workers: 1},
		{Workers: 4},
		{Workers: 4, GoodMachine: GoodMachineShared},
		{Workers: 4, GoodMachine: GoodMachineAuto},
		{PatternShards: 4},
		{PatternShards: 4, Workers: 4}, // shards override fault-shard workers
	} {
		cfg.Patterns, cfg.CurveStep = 500, 100
		got := RunCampaignConfig(c, faults, [][]float64{weights}, 3, cfg)
		equalCampaigns(t, "config-matrix", ref, got)
		if t.Failed() {
			t.Fatalf("config %+v diverged", cfg)
		}
	}
}

// TestPickShared pins the Auto heuristic's shape: never shared for a
// single worker, always shared when explicitly requested with
// several, and monotone in circuit size for Auto.
func TestPickShared(t *testing.T) {
	big, _ := gen.ByName("s2") // 5000+ gates: duplicated good sims dominate
	small, _ := gen.ByName("c432")
	bc, sc := big.Build(), small.Build()
	if pickShared(bc, 1, GoodMachineShared) {
		t.Error("shared mode with one worker should fall back to the serial path")
	}
	if !pickShared(bc, 4, GoodMachineShared) {
		t.Error("explicit shared mode with several workers must engage")
	}
	if pickShared(bc, 4, GoodMachineReplay) {
		t.Error("replay mode must never engage the shared path")
	}
	if !pickShared(bc, 8, GoodMachineAuto) {
		t.Errorf("auto should pick shared for %d lines × 8 workers", bc.NumLines())
	}
	if pickShared(sc, 2, GoodMachineAuto) {
		t.Errorf("auto should keep replay for %d lines × 2 workers", sc.NumLines())
	}
}
