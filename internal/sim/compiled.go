package sim

import (
	"fmt"
	"sync"

	"optirand/internal/circuit"
)

// This file is the compiled circuit representation behind the
// simulation kernels: the gate graph is flattened once per circuit
// into CSR-packed fanin/fanout arrays, a levelized evaluation order,
// and per-gate opcodes, so the hot loops of Simulator.Run and
// FaultSimulator.DetectWord touch nothing but flat slices — no
// per-gate method lookups, closures, or pointer-chasing through Gate
// structs, and no steady-state allocations.

// Opcode bases. Together with a per-gate 64-bit inversion mask they
// are the package's single gate-evaluation truth source: every
// word-parallel evaluation — good machine, faulty machine, forced-pin
// fault activation — reduces to evalGate over one of these bases.
// Inverting types fold into the mask (NAND = opAnd + inverted output,
// NOT = opBuf + inverted, CONST1 = opConst + inverted), and the
// dominant two-input shape of each n-ary function gets a fused opcode
// with no reduction loop — which is what lets eleven gate types share
// a handful of straight-line cases.
const (
	opAnd2  uint8 = iota // exactly two fanins, conjunction
	opOr2                // exactly two fanins, disjunction
	opXor2               // exactly two fanins, parity
	opBuf                // one fanin, identity
	opAnd                // n-ary conjunction
	opOr                 // n-ary disjunction
	opXor                // n-ary parity
	opConst              // no fanin; the value is the inversion mask
)

// opcode compiles a gate type (with its fanin count) to its opcode
// base and inversion mask. Input gates are never evaluated (their
// words are applied, not computed), so they have no opcode.
func opcode(t circuit.GateType, nFanin int) (op uint8, inv uint64) {
	two := func(wide, fused uint8) uint8 {
		if nFanin == 2 {
			return fused
		}
		return wide
	}
	switch t {
	case circuit.Buf:
		return opBuf, 0
	case circuit.Not:
		return opBuf, ^uint64(0)
	case circuit.And:
		return two(opAnd, opAnd2), 0
	case circuit.Nand:
		return two(opAnd, opAnd2), ^uint64(0)
	case circuit.Or:
		return two(opOr, opOr2), 0
	case circuit.Nor:
		return two(opOr, opOr2), ^uint64(0)
	case circuit.Xor:
		return two(opXor, opXor2), 0
	case circuit.Xnor:
		return two(opXor, opXor2), ^uint64(0)
	case circuit.Const0:
		return opConst, 0
	case circuit.Const1:
		return opConst, ^uint64(0)
	}
	panic(fmt.Sprintf("sim: opcode: unexpected gate type %v", t))
}

// evalGate computes a gate function over the 64-pattern words that
// fanin indexes into val. It is the single evaluation truth source of
// the package (see the opcode constants): the good machine passes its
// value array, the faulty machine its mirrored overlay, and forced-pin
// activation an identity-indexed gather — one switch owns the boolean
// semantics for all three.
// The fused straight-line opcodes live here so the whole function
// stays within the compiler's inlining budget — the n-ary reductions
// (loops disqualify a function from inlining) are delegated to
// evalGateWide. Each opcode's semantics is defined in exactly one
// place across the pair.
func evalGate(op uint8, inv uint64, fanin []int32, val []uint64) uint64 {
	if op <= opXor2 {
		a, b := val[fanin[0]], val[fanin[1]]
		switch op {
		case opAnd2:
			return (a & b) ^ inv
		case opOr2:
			return (a | b) ^ inv
		}
		return a ^ b ^ inv
	}
	return evalGateWide(op, inv, fanin, val)
}

// evalGateWide evaluates the single-input and n-ary reduction opcodes
// (see evalGate).
// Kept out of line so that evalGate itself stays inlinable — folding
// the loops back in would push it over the budget and reinstate a
// function call on the dominant two-input path.
//
//go:noinline
func evalGateWide(op uint8, inv uint64, fanin []int32, val []uint64) uint64 {
	var w uint64
	switch op {
	case opBuf:
		w = val[fanin[0]]
	case opAnd:
		w = ^uint64(0)
		for _, f := range fanin {
			w &= val[f]
		}
	case opOr:
		for _, f := range fanin {
			w |= val[f]
		}
	case opXor:
		for _, f := range fanin {
			w ^= val[f]
		}
	case opConst:
		// The constant's value is entirely in inv.
	}
	return w ^ inv
}

// Per-gate propagation flags (gateNode.flags). Both are properties of
// the circuit structure alone, computed once at compile time, and both
// exist to let the kernels skip work without changing a single result
// bit.
const (
	// flagLinear marks toggle-transparent gates: BUF/NOT and n-ary
	// XOR/XNOR. For these, faulty XOR good on the output is the XOR of
	// faulty XOR good over the fanins — inversion masks cancel — so
	// fault propagation can compose toggle masks linearly instead of
	// gathering fanin values (the diff-word path).
	flagLinear uint8 = 1 << iota
	// flagSureOut marks gates where a sole live fault difference IS the
	// final detection: the toggle mask reaching such a gate equals the
	// campaign-visible detect contribution exactly, so propagation can
	// stop there. True for primary outputs (every further toggle a
	// single source can produce is a subset of the one already
	// observed) and, inductively, for any gate whose single observable
	// consumer reads it on one pin and is a linear gate that is itself
	// sure — the fanout-free parity chains that dominate c499-class
	// cones, with the chain's last sure gate acting as the cone's
	// dominator.
	flagSureOut
	// flagMacroSink marks the output NAND of a fused four-NAND XOR
	// macro (see fuseXorMacros). The sink also carries flagLinear —
	// along its tagged macro edges it is exactly an XOR of the macro
	// inputs — but when a fault INSIDE the macro reaches it on a
	// physical pin, its NAND semantics are not linear in that pin, so
	// the kernels force a fanin gather for such visits.
	flagMacroSink
)

// Fanout CSR entries with the sign bit set are macro edges: fused
// diff-word shortcuts carrying a macro input's toggle straight to the
// macro's sink gate, skipping the internal NANDs (see fuseXorMacros).
// The low 31 bits hold the sink's gate index; plain entries are
// unchanged by the mask.
const (
	macroEdgeFlag int32 = -1 << 31
	edgeIndexMask int32 = 1<<31 - 1
)

// gateNode packs the per-gate static data the hot loops touch — the
// opcode, inversion mask, CSR spans, and packed level/worklist-slot —
// into one self-contained 32-byte record, so visiting a gate costs
// one cache line of metadata instead of a line per parallel array.
type gateNode struct {
	inv       uint64
	levelSlot uint64 // levelStart[level] in the high 32 bits, level in the low 32
	faninAt   int32
	fanoutAt  int32
	faninN    uint16
	fanoutN   uint16
	op        uint8
	flags     uint8 // flagLinear | flagSureOut
	_         [2]byte
}

// Compiled is the immutable flat form of one circuit structure. It
// holds no scratch state, so one Compiled is shared — concurrently —
// by every Simulator and FaultSimulator of a circuit, across
// campaigns, engine workers, and dist requests (see compiledFor).
type Compiled struct {
	nGates   int
	maxFanin int
	depth    int
	// lanes is the compile-time word width W of the wide kernels: each
	// wide gate visit evaluates lanes 64-pattern words, laid out as
	// contiguous [W]uint64 groups in flat slices (gate g's words at
	// [g*W, (g+1)*W)). Chosen by chooseLanes from the circuit shape;
	// the narrow kernels are the W=1 degenerate case and ignore it.
	lanes int

	// CSR fanin values: gate g reads
	// fanin[nodes[g].faninAt : nodes[g].faninAt+nodes[g].faninN].
	fanin []int32
	// CSR fanout, pre-filtered to consumers whose cone reaches a
	// primary output (one entry per consuming pin, spans addressed
	// through nodes like fanin). Consumers outside that cone are
	// dropped at compile time — their values may flip, but nothing
	// observable ever depends on them, so fault propagation is
	// bit-identical without ever visiting them.
	fanout []int32

	order []int32 // levelized topological order, non-input gates only
	// levelStart[l] is the first slot of level l in a fault
	// simulator's flat worklist: levels partition the gates, so giving
	// every level a segment sized to its gate count makes enqueueing a
	// plain indexed store — no growth checks, no slice headers.
	levelStart []int32
	// nodes is the packed per-gate metadata (see gateNode) — the
	// single source of each gate's opcode, inversion mask, CSR spans,
	// and level/worklist slot.
	nodes []gateNode

	// dupFanin[g] reports that some driver feeds gate g on more than
	// one pin. Branch-fault activation normally forces a pin by poking
	// the driver's mirrored value; with a duplicated driver that would
	// force the sibling pins too, so those (rare) gates take a
	// gathered-operand activation instead.
	dupFanin []bool

	inputs  []int32 // gate index of each primary input, in input order
	outputs []int32 // observed gate indices
	isOut   []bool  // gate is a primary output

	// reachesOut[g] reports whether gate g's forward cone (including g
	// itself) contains a primary output — the static cone-of-influence
	// membership the fault simulator uses to cut dead propagation: a
	// fault effect entering a gate with reachesOut false can never be
	// observed, so it is neither propagated nor scanned.
	reachesOut []bool
}

// chooseLanes picks the wide kernels' word width W for a circuit.
// The wide fault simulator's working set is three lane arrays (good
// values, mirror, toggles) of nGates*W words, and a gather touches
// W*fanin words per visit — so W=8 is right while that stays
// comfortably inside a core's L2 and fanins are ordinary, and W=4 is
// the fallback for big netlists or extreme-fanin shapes where the
// wider gathers would thrash. Every width is bit-identical; this is
// purely a cost model.
func chooseLanes(nGates, maxFanin int) int {
	if nGates <= 1<<13 && maxFanin <= 16 {
		return 8
	}
	return 4
}

// Compile flattens c with the automatically chosen lane width. It is
// pure and deterministic; prefer compiledFor, which caches compiles by
// structural fingerprint.
func Compile(c *circuit.Circuit) *Compiled {
	return compileLanes(c, 0)
}

// compileLanes is Compile with a forced wide-kernel width (4 or 8);
// lanes == 0 selects chooseLanes. Forcing exists for the per-width
// benchmarks and differential tests.
func compileLanes(c *circuit.Circuit, lanes int) *Compiled {
	n := c.NumGates()
	cc := &Compiled{
		nGates:     n,
		depth:      c.Depth(),
		isOut:      make([]bool, n),
		reachesOut: make([]bool, n),
		dupFanin:   make([]bool, n),
	}
	// Build-time scratch; everything the kernels need lands in nodes.
	op := make([]uint8, n)
	inv := make([]uint64, n)
	level := make([]int32, n)
	faninStart := make([]int32, n+1)
	fanoutStart := make([]int32, n+1)
	nFanin := 0
	for g := 0; g < n; g++ {
		gate := &c.Gates[g]
		if gate.Type != circuit.Input {
			op[g], inv[g] = opcode(gate.Type, len(gate.Fanin))
		}
		if len(gate.Fanin) > cc.maxFanin {
			cc.maxFanin = len(gate.Fanin)
		}
		for i, f := range gate.Fanin {
			for _, e := range gate.Fanin[:i] {
				if e == f {
					cc.dupFanin[g] = true
				}
			}
		}
		nFanin += len(gate.Fanin)
		level[g] = int32(c.Level(g))
	}
	cc.fanin = make([]int32, 0, nFanin)
	for g := 0; g < n; g++ {
		faninStart[g] = int32(len(cc.fanin))
		for _, f := range c.Gates[g].Fanin {
			cc.fanin = append(cc.fanin, int32(f))
		}
	}
	faninStart[n] = int32(len(cc.fanin))

	cc.inputs = make([]int32, len(c.Inputs))
	for i, g := range c.Inputs {
		cc.inputs[i] = int32(g)
	}
	cc.outputs = make([]int32, len(c.Outputs))
	for i, g := range c.Outputs {
		cc.outputs[i] = int32(g)
		cc.isOut[g] = true
	}

	order := c.TopoOrder()
	cc.order = make([]int32, 0, n-len(c.Inputs))
	for _, g := range order {
		if c.Gates[g].Type != circuit.Input {
			cc.order = append(cc.order, int32(g))
		}
	}

	// reachesOut: reverse topological sweep over the forward edges.
	for i := len(order) - 1; i >= 0; i-- {
		g := order[i]
		r := cc.isOut[g]
		for _, p := range c.Fanout(g) {
			r = r || cc.reachesOut[p.Gate]
		}
		cc.reachesOut[g] = r
	}

	// Fanout lists, observable consumers only (see the fanout field
	// comment) — built as per-gate slices first so XOR-macro fusion can
	// rewrite them before they are flattened into the CSR.
	fanoutLists := make([][]int32, n)
	for g := 0; g < n; g++ {
		for _, p := range c.Fanout(g) {
			if cc.reachesOut[p.Gate] {
				fanoutLists[g] = append(fanoutLists[g], int32(p.Gate))
			}
		}
	}
	macroSink := fuseXorMacros(c, cc, order, op, inv, fanoutLists)

	cc.fanout = make([]int32, 0, nFanin)
	for g := 0; g < n; g++ {
		fanoutStart[g] = int32(len(cc.fanout))
		cc.fanout = append(cc.fanout, fanoutLists[g]...)
	}
	fanoutStart[n] = int32(len(cc.fanout))

	// levelStart: prefix sums of the per-level gate counts.
	cc.levelStart = make([]int32, cc.depth+2)
	for g := 0; g < n; g++ {
		cc.levelStart[level[g]+1]++
	}
	for l := 1; l < len(cc.levelStart); l++ {
		cc.levelStart[l] += cc.levelStart[l-1]
	}
	cc.nodes = make([]gateNode, n)
	for g := 0; g < n; g++ {
		faninN := faninStart[g+1] - faninStart[g]
		fanoutN := fanoutStart[g+1] - fanoutStart[g]
		if faninN > 0xffff || fanoutN > 0xffff {
			panic(fmt.Sprintf("sim: Compile: gate %d has %d fanins / %d observable fanouts; the compiled node caps both at 65535", g, faninN, fanoutN))
		}
		cc.nodes[g] = gateNode{
			inv:       inv[g],
			levelSlot: uint64(cc.levelStart[level[g]])<<32 | uint64(uint32(level[g])),
			faninAt:   faninStart[g],
			fanoutAt:  fanoutStart[g],
			faninN:    uint16(faninN),
			fanoutN:   uint16(fanoutN),
			op:        op[g],
		}
		// Linearity is a pure function of the opcode base: BUF/NOT and
		// the XOR family. Input gates keep op 0 but are never evaluated
		// or consumed as propagation targets, and they are excluded here
		// so the flag means exactly "toggle-transparent evaluated gate".
		if gate := &c.Gates[g]; gate.Type != circuit.Input {
			if o := op[g]; o == opBuf || o == opXor2 || o == opXor {
				cc.nodes[g].flags |= flagLinear
			}
		}
		// A fused macro sink is linear along its tagged macro edges
		// (it computes the XOR of the macro inputs); flagMacroSink
		// records that physical-pin visits must gather instead.
		if macroSink[g] {
			cc.nodes[g].flags |= flagLinear | flagMacroSink
		}
	}

	// flagSureOut: reverse topological sweep. A primary output is sure;
	// a gate whose single observable fanout entry (one consumer, one
	// pin) is a linear gate that is itself sure is sure too — a toggle
	// entering such a chain arrives at its output unchanged, whatever
	// the side inputs hold, because single-pin parity gates propagate
	// toggles unconditionally. The flag is only VALID for a sole live
	// difference (the kernels' chase paths); with several live
	// differences, reconvergence between their cones could cancel
	// toggles inside the chain's side inputs.
	for i := len(order) - 1; i >= 0; i-- {
		g := order[i]
		nd := &cc.nodes[g]
		if cc.isOut[g] {
			nd.flags |= flagSureOut
			continue
		}
		if nd.fanoutN == 1 {
			e := cc.fanout[nd.fanoutAt]
			p := e & edgeIndexMask
			// The single edge is toggle-transparent when the consumer is
			// linear — except a fused macro sink reached on a physical
			// pin, whose NAND semantics are only linear along tagged
			// macro edges. Macro inputs whose sole observable consumer
			// is their sink thus extend sure chains across the macro.
			if pf := cc.nodes[p].flags; pf&flagLinear != 0 && pf&flagSureOut != 0 &&
				(e < 0 || pf&flagMacroSink == 0) {
				nd.flags |= flagSureOut
			}
		}
	}

	cc.lanes = lanes
	if cc.lanes == 0 {
		cc.lanes = chooseLanes(n, cc.maxFanin)
	}
	return cc
}

// fuseXorMacros detects the four-NAND expansion of XOR —
//
//	n1 = NAND(a, b); n2 = NAND(a, n1); n3 = NAND(b, n1); n4 = NAND(n2, n3)
//
// with n1's observable fanout exactly {n2, n3}, n2's and n3's exactly
// {n4}, and none of n1..n3 a primary output — and rewires fault
// propagation to treat the whole block as the single XOR it computes:
// the edges a→{n1,n2} and b→{n1,n3} are dropped from a's and b's
// observable fanout lists and replaced by one tagged macro edge each,
// straight to n4 (sink index | macroEdgeFlag). n4 keeps its physical
// fanins {n2, n3} and gains flagLinear|flagMacroSink.
//
// The payoff is on NAND-expanded parity meshes (the c1355 class): a
// fault difference crossing K fused XORs updates K sink gates through
// the diff-word path instead of evaluating 4K NANDs, restoring the
// toggle-composition shortcut the expansion had destroyed.
//
// Soundness rests on a strict round separation. The internal gates'
// only drivers are a, b, and n1, so with the a→internal and b→internal
// edges gone, no fault OUTSIDE the macro can ever reach n1..n3: on
// external rounds the internals keep their good values and the sink's
// toggle is exactly Δa^Δb, which is what the macro edges deliver.
// Conversely a fault AT n1..n3 (or on one of their pins) propagates
// through the internals' own untouched fanout edges and is gathered at
// the sink from its physical fanins, which then hold exactly the
// faulty internal values — and on such rounds a and b never change
// (the circuit is acyclic), so no macro edge fires. Faults at n4's own
// pins force the physical fanins it kept. Either way every value is
// bit-identical to the unfused propagation.
//
// Detection runs on the pristine lists before any rewiring; the
// conditions above make claimed gates mutually exclusive between
// macros (an internal's constrained fanout cannot double as another
// macro's input or sink), and the topological scan order composes
// macros into trees: a sink's own fanout may well be another macro's
// input edge, fused in a later step of the same scan.
func fuseXorMacros(c *circuit.Circuit, cc *Compiled, order []int, op []uint8, inv []uint64, fanoutLists [][]int32) []bool {
	n := cc.nGates
	macroSink := make([]bool, n)
	internal := make([]bool, n)
	isNand2 := func(g int32) bool {
		gate := &c.Gates[g]
		return gate.Type != circuit.Input && op[g] == opAnd2 && inv[g] == ^uint64(0) &&
			len(gate.Fanin) == 2 && !cc.dupFanin[g]
	}
	type macro struct{ a, b, n1, n2, n3, n4 int32 }
	var macros []macro
	for _, gi := range order {
		n4 := int32(gi)
		if !isNand2(n4) || !cc.reachesOut[n4] || internal[n4] {
			continue
		}
		f4 := c.Gates[n4].Fanin
		n2, n3 := int32(f4[0]), int32(f4[1])
		if !isNand2(n2) || !isNand2(n3) || cc.isOut[n2] || cc.isOut[n3] ||
			internal[n2] || internal[n3] || macroSink[n2] || macroSink[n3] {
			continue
		}
		if len(fanoutLists[n2]) != 1 || fanoutLists[n2][0] != n4 ||
			len(fanoutLists[n3]) != 1 || fanoutLists[n3][0] != n4 {
			continue
		}
		// n2 = NAND(a, n1) and n3 = NAND(b, n1) share exactly the
		// middle NAND; pin order is free on both.
		f2, f3 := c.Gates[n2].Fanin, c.Gates[n3].Fanin
		for i2 := 0; i2 < 2; i2++ {
			n1 := int32(f2[i2])
			a := int32(f2[1-i2])
			var b int32 = -1
			if int32(f3[0]) == n1 {
				b = int32(f3[1])
			} else if int32(f3[1]) == n1 {
				b = int32(f3[0])
			}
			if b < 0 || a == b || internal[n1] || macroSink[n1] ||
				!isNand2(n1) || cc.isOut[n1] {
				continue
			}
			f1 := c.Gates[n1].Fanin
			if !(int32(f1[0]) == a && int32(f1[1]) == b) &&
				!(int32(f1[0]) == b && int32(f1[1]) == a) {
				continue
			}
			l1 := fanoutLists[n1]
			if len(l1) != 2 || (l1[0] != n2 || l1[1] != n3) && (l1[0] != n3 || l1[1] != n2) {
				continue
			}
			internal[n1], internal[n2], internal[n3] = true, true, true
			macroSink[n4] = true
			macros = append(macros, macro{a, b, n1, n2, n3, n4})
			break
		}
	}

	drop := func(list []int32, x int32) []int32 {
		for i, e := range list {
			if e == x {
				return append(list[:i], list[i+1:]...)
			}
		}
		panic(fmt.Sprintf("sim: fuseXorMacros: edge to gate %d missing from a macro input's fanout", x))
	}
	for _, m := range macros {
		fanoutLists[m.a] = append(drop(drop(fanoutLists[m.a], m.n1), m.n2), m.n4|macroEdgeFlag)
		fanoutLists[m.b] = append(drop(drop(fanoutLists[m.b], m.n1), m.n3), m.n4|macroEdgeFlag)
	}
	return macroSink
}

// compiledCacheMax bounds the process-wide compile cache. Test suites
// churn through thousands of throwaway circuits; when the bound is
// hit the cache is simply cleared — compiles are cheap relative to
// any campaign, only re-compiling a hot circuit costs anything, and a
// workload hot on >64 distinct circuits is already dominated by
// simulation time.
const compiledCacheMax = 64

var compiledCache = struct {
	sync.Mutex
	m map[string]*Compiled
}{m: make(map[string]*Compiled, 16)}

// compiledFor returns the shared compiled form of c, keyed by the
// circuit's canonical structural fingerprint — so engine workers and
// dist requests that decode their own *circuit.Circuit copies of one
// netlist all land on a single compile.
func compiledFor(c *circuit.Circuit) *Compiled {
	return compiledForLanes(c, 0)
}

// compiledForLanes is compiledFor with a forced lane width; width 0
// (the automatic choice) and each forced width get distinct cache
// entries, so benchmark runs that pin W never evict or alias the
// production artifact.
func compiledForLanes(c *circuit.Circuit, lanes int) *Compiled {
	fp := c.Fingerprint()
	if lanes != 0 {
		fp = fmt.Sprintf("%s#w%d", fp, lanes)
	}
	compiledCache.Lock()
	cc := compiledCache.m[fp]
	compiledCache.Unlock()
	if cc != nil {
		return cc
	}
	// Compile outside the lock: a duplicate concurrent compile of the
	// same circuit is idempotent and cheaper than serializing distinct
	// circuits' compiles behind one mutex.
	cc = compileLanes(c, lanes)
	compiledCache.Lock()
	if prior, ok := compiledCache.m[fp]; ok {
		cc = prior // keep the first one so callers share one artifact
	} else {
		if len(compiledCache.m) >= compiledCacheMax {
			compiledCache.m = make(map[string]*Compiled, 16)
		}
		compiledCache.m[fp] = cc
	}
	compiledCache.Unlock()
	return cc
}
