package sim

import (
	"fmt"
	"sync"

	"optirand/internal/circuit"
)

// This file is the compiled circuit representation behind the
// simulation kernels: the gate graph is flattened once per circuit
// into CSR-packed fanin/fanout arrays, a levelized evaluation order,
// and per-gate opcodes, so the hot loops of Simulator.Run and
// FaultSimulator.DetectWord touch nothing but flat slices — no
// per-gate method lookups, closures, or pointer-chasing through Gate
// structs, and no steady-state allocations.

// Opcode bases. Together with a per-gate 64-bit inversion mask they
// are the package's single gate-evaluation truth source: every
// word-parallel evaluation — good machine, faulty machine, forced-pin
// fault activation — reduces to evalGate over one of these bases.
// Inverting types fold into the mask (NAND = opAnd + inverted output,
// NOT = opBuf + inverted, CONST1 = opConst + inverted), and the
// dominant two-input shape of each n-ary function gets a fused opcode
// with no reduction loop — which is what lets eleven gate types share
// a handful of straight-line cases.
const (
	opAnd2  uint8 = iota // exactly two fanins, conjunction
	opOr2                // exactly two fanins, disjunction
	opXor2               // exactly two fanins, parity
	opBuf                // one fanin, identity
	opAnd                // n-ary conjunction
	opOr                 // n-ary disjunction
	opXor                // n-ary parity
	opConst              // no fanin; the value is the inversion mask
)

// opcode compiles a gate type (with its fanin count) to its opcode
// base and inversion mask. Input gates are never evaluated (their
// words are applied, not computed), so they have no opcode.
func opcode(t circuit.GateType, nFanin int) (op uint8, inv uint64) {
	two := func(wide, fused uint8) uint8 {
		if nFanin == 2 {
			return fused
		}
		return wide
	}
	switch t {
	case circuit.Buf:
		return opBuf, 0
	case circuit.Not:
		return opBuf, ^uint64(0)
	case circuit.And:
		return two(opAnd, opAnd2), 0
	case circuit.Nand:
		return two(opAnd, opAnd2), ^uint64(0)
	case circuit.Or:
		return two(opOr, opOr2), 0
	case circuit.Nor:
		return two(opOr, opOr2), ^uint64(0)
	case circuit.Xor:
		return two(opXor, opXor2), 0
	case circuit.Xnor:
		return two(opXor, opXor2), ^uint64(0)
	case circuit.Const0:
		return opConst, 0
	case circuit.Const1:
		return opConst, ^uint64(0)
	}
	panic(fmt.Sprintf("sim: opcode: unexpected gate type %v", t))
}

// evalGate computes a gate function over the 64-pattern words that
// fanin indexes into val. It is the single evaluation truth source of
// the package (see the opcode constants): the good machine passes its
// value array, the faulty machine its mirrored overlay, and forced-pin
// activation an identity-indexed gather — one switch owns the boolean
// semantics for all three.
// The fused straight-line opcodes live here so the whole function
// stays within the compiler's inlining budget — the n-ary reductions
// (loops disqualify a function from inlining) are delegated to
// evalGateWide. Each opcode's semantics is defined in exactly one
// place across the pair.
func evalGate(op uint8, inv uint64, fanin []int32, val []uint64) uint64 {
	if op <= opXor2 {
		a, b := val[fanin[0]], val[fanin[1]]
		switch op {
		case opAnd2:
			return (a & b) ^ inv
		case opOr2:
			return (a | b) ^ inv
		}
		return a ^ b ^ inv
	}
	return evalGateWide(op, inv, fanin, val)
}

// evalGateWide evaluates the single-input and n-ary reduction opcodes
// (see evalGate).
// Kept out of line so that evalGate itself stays inlinable — folding
// the loops back in would push it over the budget and reinstate a
// function call on the dominant two-input path.
//
//go:noinline
func evalGateWide(op uint8, inv uint64, fanin []int32, val []uint64) uint64 {
	var w uint64
	switch op {
	case opBuf:
		w = val[fanin[0]]
	case opAnd:
		w = ^uint64(0)
		for _, f := range fanin {
			w &= val[f]
		}
	case opOr:
		for _, f := range fanin {
			w |= val[f]
		}
	case opXor:
		for _, f := range fanin {
			w ^= val[f]
		}
	case opConst:
		// The constant's value is entirely in inv.
	}
	return w ^ inv
}

// gateNode packs the per-gate static data the hot loops touch — the
// opcode, inversion mask, CSR spans, and packed level/worklist-slot —
// into one self-contained 32-byte record, so visiting a gate costs
// one cache line of metadata instead of a line per parallel array.
type gateNode struct {
	inv       uint64
	levelSlot uint64 // levelStart[level] in the high 32 bits, level in the low 32
	faninAt   int32
	fanoutAt  int32
	faninN    uint16
	fanoutN   uint16
	op        uint8
	_         [3]byte
}

// Compiled is the immutable flat form of one circuit structure. It
// holds no scratch state, so one Compiled is shared — concurrently —
// by every Simulator and FaultSimulator of a circuit, across
// campaigns, engine workers, and dist requests (see compiledFor).
type Compiled struct {
	nGates   int
	maxFanin int
	depth    int

	// CSR fanin values: gate g reads
	// fanin[nodes[g].faninAt : nodes[g].faninAt+nodes[g].faninN].
	fanin []int32
	// CSR fanout, pre-filtered to consumers whose cone reaches a
	// primary output (one entry per consuming pin, spans addressed
	// through nodes like fanin). Consumers outside that cone are
	// dropped at compile time — their values may flip, but nothing
	// observable ever depends on them, so fault propagation is
	// bit-identical without ever visiting them.
	fanout []int32

	order []int32 // levelized topological order, non-input gates only
	// levelStart[l] is the first slot of level l in a fault
	// simulator's flat worklist: levels partition the gates, so giving
	// every level a segment sized to its gate count makes enqueueing a
	// plain indexed store — no growth checks, no slice headers.
	levelStart []int32
	// nodes is the packed per-gate metadata (see gateNode) — the
	// single source of each gate's opcode, inversion mask, CSR spans,
	// and level/worklist slot.
	nodes []gateNode

	// dupFanin[g] reports that some driver feeds gate g on more than
	// one pin. Branch-fault activation normally forces a pin by poking
	// the driver's mirrored value; with a duplicated driver that would
	// force the sibling pins too, so those (rare) gates take a
	// gathered-operand activation instead.
	dupFanin []bool

	inputs  []int32 // gate index of each primary input, in input order
	outputs []int32 // observed gate indices
	isOut   []bool  // gate is a primary output

	// reachesOut[g] reports whether gate g's forward cone (including g
	// itself) contains a primary output — the static cone-of-influence
	// membership the fault simulator uses to cut dead propagation: a
	// fault effect entering a gate with reachesOut false can never be
	// observed, so it is neither propagated nor scanned.
	reachesOut []bool
}

// Compile flattens c. It is pure and deterministic; prefer
// compiledFor, which caches compiles by structural fingerprint.
func Compile(c *circuit.Circuit) *Compiled {
	n := c.NumGates()
	cc := &Compiled{
		nGates:     n,
		depth:      c.Depth(),
		isOut:      make([]bool, n),
		reachesOut: make([]bool, n),
		dupFanin:   make([]bool, n),
	}
	// Build-time scratch; everything the kernels need lands in nodes.
	op := make([]uint8, n)
	inv := make([]uint64, n)
	level := make([]int32, n)
	faninStart := make([]int32, n+1)
	fanoutStart := make([]int32, n+1)
	nFanin := 0
	for g := 0; g < n; g++ {
		gate := &c.Gates[g]
		if gate.Type != circuit.Input {
			op[g], inv[g] = opcode(gate.Type, len(gate.Fanin))
		}
		if len(gate.Fanin) > cc.maxFanin {
			cc.maxFanin = len(gate.Fanin)
		}
		for i, f := range gate.Fanin {
			for _, e := range gate.Fanin[:i] {
				if e == f {
					cc.dupFanin[g] = true
				}
			}
		}
		nFanin += len(gate.Fanin)
		level[g] = int32(c.Level(g))
	}
	cc.fanin = make([]int32, 0, nFanin)
	for g := 0; g < n; g++ {
		faninStart[g] = int32(len(cc.fanin))
		for _, f := range c.Gates[g].Fanin {
			cc.fanin = append(cc.fanin, int32(f))
		}
	}
	faninStart[n] = int32(len(cc.fanin))

	cc.inputs = make([]int32, len(c.Inputs))
	for i, g := range c.Inputs {
		cc.inputs[i] = int32(g)
	}
	cc.outputs = make([]int32, len(c.Outputs))
	for i, g := range c.Outputs {
		cc.outputs[i] = int32(g)
		cc.isOut[g] = true
	}

	order := c.TopoOrder()
	cc.order = make([]int32, 0, n-len(c.Inputs))
	for _, g := range order {
		if c.Gates[g].Type != circuit.Input {
			cc.order = append(cc.order, int32(g))
		}
	}

	// reachesOut: reverse topological sweep over the forward edges.
	for i := len(order) - 1; i >= 0; i-- {
		g := order[i]
		r := cc.isOut[g]
		for _, p := range c.Fanout(g) {
			r = r || cc.reachesOut[p.Gate]
		}
		cc.reachesOut[g] = r
	}

	// Fanout CSR, observable consumers only (see the field comment).
	cc.fanout = make([]int32, 0, nFanin)
	for g := 0; g < n; g++ {
		fanoutStart[g] = int32(len(cc.fanout))
		for _, p := range c.Fanout(g) {
			if cc.reachesOut[p.Gate] {
				cc.fanout = append(cc.fanout, int32(p.Gate))
			}
		}
	}
	fanoutStart[n] = int32(len(cc.fanout))

	// levelStart: prefix sums of the per-level gate counts.
	cc.levelStart = make([]int32, cc.depth+2)
	for g := 0; g < n; g++ {
		cc.levelStart[level[g]+1]++
	}
	for l := 1; l < len(cc.levelStart); l++ {
		cc.levelStart[l] += cc.levelStart[l-1]
	}
	cc.nodes = make([]gateNode, n)
	for g := 0; g < n; g++ {
		faninN := faninStart[g+1] - faninStart[g]
		fanoutN := fanoutStart[g+1] - fanoutStart[g]
		if faninN > 0xffff || fanoutN > 0xffff {
			panic(fmt.Sprintf("sim: Compile: gate %d has %d fanins / %d observable fanouts; the compiled node caps both at 65535", g, faninN, fanoutN))
		}
		cc.nodes[g] = gateNode{
			inv:       inv[g],
			levelSlot: uint64(cc.levelStart[level[g]])<<32 | uint64(uint32(level[g])),
			faninAt:   faninStart[g],
			fanoutAt:  fanoutStart[g],
			faninN:    uint16(faninN),
			fanoutN:   uint16(fanoutN),
			op:        op[g],
		}
	}
	return cc
}

// compiledCacheMax bounds the process-wide compile cache. Test suites
// churn through thousands of throwaway circuits; when the bound is
// hit the cache is simply cleared — compiles are cheap relative to
// any campaign, only re-compiling a hot circuit costs anything, and a
// workload hot on >64 distinct circuits is already dominated by
// simulation time.
const compiledCacheMax = 64

var compiledCache = struct {
	sync.Mutex
	m map[string]*Compiled
}{m: make(map[string]*Compiled, 16)}

// compiledFor returns the shared compiled form of c, keyed by the
// circuit's canonical structural fingerprint — so engine workers and
// dist requests that decode their own *circuit.Circuit copies of one
// netlist all land on a single compile.
func compiledFor(c *circuit.Circuit) *Compiled {
	fp := c.Fingerprint()
	compiledCache.Lock()
	cc := compiledCache.m[fp]
	compiledCache.Unlock()
	if cc != nil {
		return cc
	}
	// Compile outside the lock: a duplicate concurrent compile of the
	// same circuit is idempotent and cheaper than serializing distinct
	// circuits' compiles behind one mutex.
	cc = Compile(c)
	compiledCache.Lock()
	if prior, ok := compiledCache.m[fp]; ok {
		cc = prior // keep the first one so callers share one artifact
	} else {
		if len(compiledCache.m) >= compiledCacheMax {
			compiledCache.m = make(map[string]*Compiled, 16)
		}
		compiledCache.m[fp] = cc
	}
	compiledCache.Unlock()
	return cc
}
