package sim

import (
	"testing"

	"optirand/internal/circuit"
	"optirand/internal/fault"
	"optirand/internal/gen"
	"optirand/internal/prng"
)

// wideWidths enumerates the kernel configurations under differential
// test: the compiler's automatic choice plus both forced widths.
var wideWidths = []int{0, 4, 8}

func newSimAt(c *circuit.Circuit, lanes int) *Simulator {
	if lanes == 0 {
		return NewSimulator(c)
	}
	return NewSimulatorLanes(c, lanes)
}

// checkWideMatches drives nGroups lane groups of random patterns
// through the wide kernel at every width and asserts, per lane,
// bit-identity of DetectWords against both the frozen LegacyKernel and
// the narrow (W=1) DetectWord path for every fault in faults.
func checkWideMatches(t *testing.T, c *circuit.Circuit, faults []fault.Fault, seed uint64, nGroups int) {
	t.Helper()
	narrow := NewSimulator(c)
	nfs := NewFaultSimulator(narrow)
	lk := NewLegacyKernel(c)
	for _, lanes := range wideWidths {
		s := newSimAt(c, lanes)
		fs := NewFaultSimulator(s)
		w := s.Lanes()
		rng := prng.New(seed)
		words := make([]uint64, c.NumInputs())
		group := make([][]uint64, w)
		for l := range group {
			group[l] = make([]uint64, c.NumInputs())
		}
		var det [8]uint64
		for gi := 0; gi < nGroups; gi++ {
			for l := 0; l < w; l++ {
				for i := range group[l] {
					group[l][i] = rng.Uint64()
				}
				s.SetInputsLane(l, group[l])
			}
			s.RunWide()
			// Good machine: every lane must equal a narrow run.
			for l := 0; l < w; l++ {
				copy(words, group[l])
				narrow.SetInputs(words)
				narrow.Run()
				lk.SetInputs(words)
				lk.Run()
				for g := 0; g < c.NumGates(); g++ {
					if got, want := s.ValueLane(g, l), narrow.Value(g); got != want {
						t.Fatalf("w=%d group %d lane %d gate %d: RunWide %x narrow %x", w, gi, l, g, got, want)
					}
				}
				for _, f := range faults {
					fs.DetectWords(f, det[:])
					nw := nfs.DetectWord(f)
					lw := lk.DetectWord(f)
					if nw != lw {
						t.Fatalf("w=%d group %d lane %d fault %v: narrow %x legacy %x", w, gi, l, f.Describe(c), nw, lw)
					}
					if det[l] != lw {
						t.Fatalf("w=%d group %d lane %d fault %v: DetectWords %x legacy %x", w, gi, l, f.Describe(c), det[l], lw)
					}
				}
			}
		}
	}
}

// someFaults picks up to n faults from the full universe with a
// deterministic stride, always keeping both polarities of the first
// and last sites.
func someFaults(all []fault.Fault, n int) []fault.Fault {
	if len(all) <= n {
		return all
	}
	out := make([]fault.Fault, 0, n)
	step := len(all) / n
	for i := 0; i < len(all) && len(out) < n; i += step {
		out = append(out, all[i])
	}
	out = append(out, all[len(all)-1])
	return out
}

// TestWideMatchesLegacy is the wide-kernel differential fuzz suite on
// the curated parity-heavy benchmarks: DetectWords at W=auto/4/8 must
// equal LegacyKernel and the narrow kernel bit-for-bit on every lane.
// c499/c1355 exercise the diff-word linear path and the sureOut chain
// dominators end to end.
func TestWideMatchesLegacy(t *testing.T) {
	for _, name := range []string{"c432", "c499", "c880", "c1355"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			b, ok := gen.ByName(name)
			if !ok {
				t.Fatalf("benchmark %q missing from registry", name)
			}
			c := b.Build()
			faults := fault.New(c).All
			if testing.Short() || len(faults) > 600 {
				faults = someFaults(faults, 300)
			}
			checkWideMatches(t, c, faults, xw_seed(name), 2)
		})
	}
}

// xw_seed derives a per-circuit seed so the suites do not share
// pattern streams.
func xw_seed(name string) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(name); i++ {
		h = (h ^ uint64(name[i])) * 1099511628211
	}
	return h
}

// TestWideMatchesLegacyRandom fuzzes the wide kernels on random
// circuits (odd fanins, duplicate pins, dangling cones, XOR trees)
// with random fault subsets and random seeds — the shapes where the
// chase shortcuts (linear pass-through, settlement stamps, sureOut
// chains) have historically been wrong before release.
func TestWideMatchesLegacyRandom(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		c := randomCircuit(seed, 6, 40)
		checkWideMatches(t, c, fault.New(c).All, seed*131+7, 1)
	}
	// Larger, deeper instances with fewer seeds.
	for seed := uint64(100); seed < 103; seed++ {
		c := randomCircuit(seed, 8, 120)
		checkWideMatches(t, c, someFaults(fault.New(c).All, 120), seed, 1)
	}
}

// siblingCircuit reproduces the frontier shape that once over-detected:
// a stem feeding both a linear gate p1 and p1's own linear consumer p2
// (reconvergent XNOR), with p1 fanning out further so the chase hands
// off to the worklist while p2 is already settled. The fix stamps
// chase-settled gates so the hand-off cannot re-enqueue p2 with a
// double-counted toggle.
func siblingCircuit() *circuit.Circuit {
	b := circuit.NewBuilder("sibling")
	s := b.Input("s")
	x1 := b.Input("x1")
	x2 := b.Input("x2")
	p1 := b.Xor("p1", s, x1)
	p2 := b.Xnor("p2", p1, x2, s) // consumes both the stem and p1
	q1 := b.And("q1", p1, x2)
	q2 := b.Or("q2", p1, x1)
	b.Output("o1", p2)
	b.Output("o2", q1)
	b.Output("o3", q2)
	return b.MustBuild()
}

// triangleCircuit reproduces the second settlement shape: f feeds p1
// and p2, p1 feeds p2, and p2's toggles cancel (Xor(f, Buf(f))), so p2
// settles dead during the chase; the chase then advances to p1 whose
// only consumer is the already-settled p2. A naive linear pass-through
// would revive the dead difference.
func triangleCircuit() *circuit.Circuit {
	b := circuit.NewBuilder("triangle")
	f := b.Input("f")
	x := b.Input("x")
	p1 := b.Buf("p1", f)
	p2 := b.Xor("p2", f, p1)
	// Keep p2 observable and mix in an unrelated input downstream so
	// good values are nondegenerate.
	o := b.Xor("o", p2, x)
	b.Output("o", o)
	return b.MustBuild()
}

// TestChaseSettlementRegressions pins the two reconvergence shapes
// above (plus their NAND-expanded variants via random trials) across
// every kernel width.
func TestChaseSettlementRegressions(t *testing.T) {
	for _, build := range []func() *circuit.Circuit{siblingCircuit, triangleCircuit} {
		c := build()
		checkWideMatches(t, c, fault.New(c).All, 42, 2)
	}
}

// TestRunWideZeroAllocs pins the wide good-machine path: after warm-up,
// RunWide and lane loading must not allocate at either forced width.
func TestRunWideZeroAllocs(t *testing.T) {
	b, _ := gen.ByName("c880")
	c := b.Build()
	for _, lanes := range []int{4, 8} {
		s := NewSimulatorLanes(c, lanes)
		rng := prng.New(11)
		words := make([]uint64, c.NumInputs())
		for i := range words {
			words[i] = rng.Uint64()
		}
		for l := 0; l < lanes; l++ {
			s.SetInputsLane(l, words)
		}
		s.RunWide()
		if n := testing.AllocsPerRun(50, func() {
			for l := 0; l < lanes; l++ {
				s.SetInputsLane(l, words)
			}
			s.RunWide()
		}); n != 0 {
			t.Errorf("w=%d: RunWide allocates %.1f times per run, want 0", lanes, n)
		}
	}
}

// TestDetectWordsZeroAllocs pins the wide fault path on c880 (general
// logic) and c499 (parity cones — the diff-word/sureOut path): zero
// steady-state allocations per fault-list pass.
func TestDetectWordsZeroAllocs(t *testing.T) {
	for _, name := range []string{"c880", "c499"} {
		bm, _ := gen.ByName(name)
		c := bm.Build()
		faults := fault.New(c).Reps
		s := NewSimulator(c)
		fs := NewFaultSimulator(s)
		w := s.Lanes()
		rng := prng.New(13)
		words := make([]uint64, c.NumInputs())
		for l := 0; l < w; l++ {
			for i := range words {
				words[i] = rng.Uint64()
			}
			s.SetInputsLane(l, words)
		}
		s.RunWide()
		var det [8]uint64
		for _, f := range faults { // warm the worklist buckets and lane state
			fs.DetectWords(f, det[:])
		}
		if n := testing.AllocsPerRun(20, func() {
			for _, f := range faults {
				fs.DetectWords(f, det[:])
			}
		}); n != 0 {
			t.Errorf("%s: DetectWords allocates %.1f times per fault-list pass, want 0", name, n)
		}
	}
}

// TestEvalLanesOpcodeEdges unit-tests the lane evaluators against the
// scalar evalGate reference, per lane, across every opcode at the
// shapes the fused fast paths shadow: 0-fanin constants, 1-fanin
// buffers, 2-input fused ops, and 3/4-input n-ary reductions, under
// zero, full, and random inversion masks — including duplicated pins.
func TestEvalLanesOpcodeEdges(t *testing.T) {
	type shape struct {
		op    uint8
		fanin []int32
	}
	shapes := []shape{
		{opConst, nil},
		{opBuf, []int32{2}},
		{opAnd2, []int32{0, 3}},
		{opOr2, []int32{1, 2}},
		{opXor2, []int32{3, 3}}, // duplicated pin
		{opAnd, []int32{0, 1, 2}},
		{opOr, []int32{0, 1, 2, 3}},
		{opXor, []int32{0, 1, 2, 3}},
		{opXor, []int32{2, 2, 1}}, // duplicated pin in a reduction
	}
	rng := prng.New(99)
	invs := []uint64{0, ^uint64(0), rng.Uint64()}
	const nVals = 4 // gate ids 0..3 referenced by the shapes
	for _, w := range []int{4, 8} {
		val := make([]uint64, nVals*w)
		for i := range val {
			val[i] = rng.Uint64()
		}
		lane := make([]uint64, nVals)
		for _, sh := range shapes {
			for _, inv := range invs {
				var out [8]uint64
				evalLanesGate(w, sh.op, inv, sh.fanin, val, &out)
				for l := 0; l < w; l++ {
					for g := 0; g < nVals; g++ {
						lane[g] = val[g*w+l]
					}
					want := evalGate(sh.op, inv, sh.fanin, lane)
					if out[l] != want {
						t.Errorf("w=%d op=%d inv=%x lane=%d fanin=%v: lanes %x scalar %x",
							w, sh.op, inv, l, sh.fanin, out[l], want)
					}
				}
			}
		}
	}
}

// TestEvalGateWideReductions covers the n-ary scalar reductions at the
// edges the 2-input fused path shadows, against hand-computed truth.
func TestEvalGateWideReductions(t *testing.T) {
	val := []uint64{0b1100, 0b1010, 0b1111, 0}
	cases := []struct {
		op    uint8
		inv   uint64
		fanin []int32
		want  uint64
	}{
		{opConst, 0, nil, 0},
		{opConst, ^uint64(0), nil, ^uint64(0)},
		{opBuf, 0, []int32{0}, 0b1100},
		{opBuf, ^uint64(0), []int32{1}, ^uint64(0b1010)},
		{opAnd, 0, []int32{0, 1, 2}, 0b1000},
		{opAnd, ^uint64(0), []int32{0, 1, 3}, ^uint64(0)},
		{opOr, 0, []int32{0, 1, 3}, 0b1110},
		{opXor, 0, []int32{0, 1, 2}, 0b1001},
		{opXor, 0, []int32{0, 0, 1}, 0b1010}, // duplicate pins cancel
	}
	for _, tc := range cases {
		if got := evalGateWide(tc.op, tc.inv, tc.fanin, val); got != tc.want {
			t.Errorf("op=%d inv=%x fanin=%v: got %x want %x", tc.op, tc.inv, tc.fanin, got, tc.want)
		}
	}
}

// xorNandBlock appends the four-NAND expansion of XOR(a, x) — the
// shape fuseXorMacros detects (and the one gen uses for the C1355
// analogue).
func xorNandBlock(b *circuit.Builder, prefix string, a, x int) int {
	n1 := b.Nand(prefix+"n1", a, x)
	n2 := b.Nand(prefix+"n2", a, n1)
	n3 := b.Nand(prefix+"n3", n1, x)
	return b.Nand(prefix+"n4", n2, n3)
}

// countMacroSinks compiles c at the automatic width and counts fused
// XOR-macro sinks.
func countMacroSinks(c *circuit.Circuit) int {
	cc := compiledFor(c)
	n := 0
	for i := range cc.nodes {
		if cc.nodes[i].flags&flagMacroSink != 0 {
			n++
		}
	}
	return n
}

// TestXorMacroFusion pins the compile-time XOR-macro fusion: the
// canonical shapes must fuse (or, when spoiled, must not), and fused
// propagation must stay bit-identical to the legacy and narrow kernels
// over the full fault universe — including faults at the macro's
// internal NANDs and on their pins, which exercise the physical-pin
// gather (gEpoch) path.
func TestXorMacroFusion(t *testing.T) {
	cases := []struct {
		name  string
		sinks int
		build func() *circuit.Circuit
	}{
		{"single", 1, func() *circuit.Circuit {
			b := circuit.NewBuilder("xm-single")
			a, x := b.Input("a"), b.Input("x")
			b.Output("o", xorNandBlock(b, "m.", a, x))
			return b.MustBuild()
		}},
		{"tree", 3, func() *circuit.Circuit {
			// Two leaf macros feeding a root macro; one leaf sink is
			// also a primary output, so its toggle both detects and
			// rides a macro edge onward.
			b := circuit.NewBuilder("xm-tree")
			in := b.Inputs("x", 4)
			s1 := xorNandBlock(b, "l.", in[0], in[1])
			s2 := xorNandBlock(b, "r.", in[2], in[3])
			b.Output("t", s1)
			b.Output("o", xorNandBlock(b, "u.", s1, s2))
			return b.MustBuild()
		}},
		{"sideload", 1, func() *circuit.Circuit {
			// A macro input with extra observable fanout: its list mixes
			// a plain edge with the tagged macro edge.
			b := circuit.NewBuilder("xm-side")
			a, x, y := b.Input("a"), b.Input("x"), b.Input("y")
			b.Output("o", xorNandBlock(b, "m.", a, x))
			b.Output("s", b.And("side", a, y))
			return b.MustBuild()
		}},
		{"spoiled", 0, func() *circuit.Circuit {
			// The middle NAND leaks to an extra observable consumer, so
			// the block is not a closed macro and must not fuse.
			b := circuit.NewBuilder("xm-spoiled")
			a, x := b.Input("a"), b.Input("x")
			n1 := b.Nand("n1", a, x)
			n2 := b.Nand("n2", a, n1)
			n3 := b.Nand("n3", n1, x)
			b.Output("o", b.Nand("n4", n2, n3))
			b.Output("leak", b.Buf("leak", n1))
			return b.MustBuild()
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			c := tc.build()
			if got := countMacroSinks(c); got != tc.sinks {
				t.Fatalf("fused %d macro sinks, want %d", got, tc.sinks)
			}
			checkWideMatches(t, c, fault.New(c).All, xw_seed(tc.name), 2)
		})
	}
}

// TestXorMacroFusionC1355 asserts the fusion actually lands on the
// NAND-expanded parity mesh it exists for: every 4-NAND XOR block of
// the C1355 analogue must fuse.
func TestXorMacroFusionC1355(t *testing.T) {
	b, ok := gen.ByName("c1355")
	if !ok {
		t.Fatal("benchmark c1355 missing from registry")
	}
	c := b.Build()
	got := countMacroSinks(c)
	// The analogue expands every XOR of the c499-class mesh; anything
	// below three figures means the detector regressed.
	if got < 100 {
		t.Fatalf("fused %d macro sinks on the c1355 analogue, want >= 100", got)
	}
	if c499, ok := gen.ByName("c499"); ok {
		if n := countMacroSinks(c499.Build()); n != 0 {
			t.Errorf("fused %d macro sinks on the c499 analogue, want 0 (its XORs are native)", n)
		}
	}
}
