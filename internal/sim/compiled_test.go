package sim

import (
	"testing"

	"optirand/internal/circuit"
	"optirand/internal/fault"
	"optirand/internal/gen"
	"optirand/internal/prng"
)

// applyBatch drives one 64-pattern batch through both kernels.
func applyBatch(s *Simulator, lk *LegacyKernel, words []uint64) {
	s.SetInputs(words)
	s.Run()
	lk.SetInputs(words)
	lk.Run()
}

// TestCompiledMatchesLegacy is the differential suite: on every
// generated benchmark circuit, the compiled kernel's good-machine
// values and per-fault detection masks must equal the frozen pre-PR
// kernel's, over the full uncollapsed fault universe.
func TestCompiledMatchesLegacy(t *testing.T) {
	for _, b := range gen.Benchmarks() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			c := b.Build()
			u := fault.New(c)
			s := NewSimulator(c)
			lk := NewLegacyKernel(c)
			rng := prng.New(2026)
			words := make([]uint64, c.NumInputs())
			for trial := 0; trial < 2; trial++ {
				for i := range words {
					words[i] = rng.Uint64()
				}
				applyBatch(s, lk, words)
				for g := 0; g < c.NumGates(); g++ {
					if s.Value(g) != lk.Value(g) {
						t.Fatalf("good machine diverges at gate %d: compiled %x legacy %x",
							g, s.Value(g), lk.Value(g))
					}
				}
				fs := NewFaultSimulator(s)
				for _, f := range u.All {
					if got, want := fs.DetectWord(f), lk.DetectWord(f); got != want {
						t.Fatalf("fault %v: compiled mask %x, legacy mask %x", f.Describe(c), got, want)
					}
				}
			}
		})
	}
}

// TestCompiledMatchesLegacyRandom repeats the differential check on
// random circuits (odd fanins, dangling gates, XOR trees) that the
// curated benchmarks do not cover.
func TestCompiledMatchesLegacyRandom(t *testing.T) {
	for seed := uint64(0); seed < 12; seed++ {
		c := randomCircuit(seed, 6, 40)
		u := fault.New(c)
		s := NewSimulator(c)
		fs := NewFaultSimulator(s)
		lk := NewLegacyKernel(c)
		rng := prng.New(seed * 31)
		words := make([]uint64, c.NumInputs())
		for i := range words {
			words[i] = rng.Uint64()
		}
		applyBatch(s, lk, words)
		for _, f := range u.All {
			if got, want := fs.DetectWord(f), lk.DetectWord(f); got != want {
				t.Fatalf("seed %d fault %v: compiled %x legacy %x", seed, f.Describe(c), got, want)
			}
		}
	}
}

// TestCompiledCacheShared: two independently built copies of one
// netlist structure must land on one compiled artifact, and circuits
// differing only in names must share it too.
func TestCompiledCacheShared(t *testing.T) {
	b, _ := gen.ByName("c880")
	c1, c2 := b.Build(), b.Build()
	if c1 == c2 {
		t.Fatal("Build returned a shared circuit; the test needs independent copies")
	}
	if c1.Fingerprint() != c2.Fingerprint() {
		t.Fatal("independently built copies disagree on fingerprint")
	}
	if compiledFor(c1) != compiledFor(c2) {
		t.Error("independently built copies did not share one compiled artifact")
	}
	other, _ := gen.ByName("c432")
	if compiledFor(other.Build()) == compiledFor(c1) {
		t.Error("different structures shared a compiled artifact")
	}
}

// TestDetectWordZeroAllocs pins the steady-state allocation contract:
// after a warm-up pass over the fault list, neither the good-machine
// Run nor DetectWord may allocate.
func TestDetectWordZeroAllocs(t *testing.T) {
	b, _ := gen.ByName("c880")
	c := b.Build()
	faults := fault.New(c).Reps
	s := NewSimulator(c)
	fs := NewFaultSimulator(s)
	rng := prng.New(7)
	words := make([]uint64, c.NumInputs())
	for i := range words {
		words[i] = rng.Uint64()
	}
	s.SetInputs(words)
	s.Run()
	for _, f := range faults { // warm the worklist buckets
		fs.DetectWord(f)
	}

	if n := testing.AllocsPerRun(50, func() {
		s.SetInputs(words)
		s.Run()
	}); n != 0 {
		t.Errorf("Simulator.Run allocates %.1f times per run, want 0", n)
	}
	if n := testing.AllocsPerRun(50, func() {
		for _, f := range faults {
			fs.DetectWord(f)
		}
	}); n != 0 {
		t.Errorf("DetectWord allocates %.1f times per fault-list pass, want 0", n)
	}
}

// kernelBenchSetup builds one warmed batch for a benchmark circuit.
func kernelBenchSetup(b *testing.B, name string) (*circuit.Circuit, []fault.Fault, []uint64) {
	b.Helper()
	bm, ok := gen.ByName(name)
	if !ok {
		b.Fatalf("missing benchmark %s", name)
	}
	c := bm.Build()
	faults := fault.New(c).Reps
	rng := prng.New(1987)
	words := make([]uint64, c.NumInputs())
	for i := range words {
		words[i] = rng.Uint64()
	}
	return c, faults, words
}

// BenchmarkDetectWords measures the wide detection kernel at the
// compiler-chosen width: one iteration is a full fault-list pass
// against a fixed W-lane group, i.e. W 64-pattern batches.
func BenchmarkDetectWords(b *testing.B) {
	for _, name := range []string{"c880", "c2670", "c499", "c1355"} {
		b.Run(name, func(b *testing.B) {
			c, faults, words := kernelBenchSetup(b, name)
			s := NewSimulator(c)
			fs := NewFaultSimulator(s)
			rng := prng.New(1987)
			for l := 0; l < s.Lanes(); l++ {
				for i := range words {
					words[i] = rng.Uint64()
				}
				s.SetInputsLane(l, words)
			}
			s.RunWide()
			var det [8]uint64
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, f := range faults {
					fs.DetectWords(f, det[:])
				}
			}
		})
	}
}

// BenchmarkDetectWord measures the compiled detection kernel: one
// iteration is a full fault-list pass against a fixed batch.
func BenchmarkDetectWord(b *testing.B) {
	for _, name := range []string{"c880", "c2670", "c6288", "c499", "c1355"} {
		b.Run(name, func(b *testing.B) {
			c, faults, words := kernelBenchSetup(b, name)
			s := NewSimulator(c)
			fs := NewFaultSimulator(s)
			s.SetInputs(words)
			s.Run()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, f := range faults {
					fs.DetectWord(f)
				}
			}
		})
	}
}

// BenchmarkDetectWordLegacy is the identical measurement on the
// frozen pre-PR kernel — the old-vs-new comparison of BENCH_sim.
func BenchmarkDetectWordLegacy(b *testing.B) {
	for _, name := range []string{"c880", "c2670", "c6288"} {
		b.Run(name, func(b *testing.B) {
			c, faults, words := kernelBenchSetup(b, name)
			lk := NewLegacyKernel(c)
			lk.SetInputs(words)
			lk.Run()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, f := range faults {
					lk.DetectWord(f)
				}
			}
		})
	}
}

// BenchmarkGoodRun measures the compiled good-machine evaluation.
func BenchmarkGoodRun(b *testing.B) {
	c, _, words := kernelBenchSetup(b, "c6288")
	s := NewSimulator(c)
	s.SetInputs(words)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Run()
	}
}

// BenchmarkGoodRunLegacy measures the pre-PR good-machine evaluation.
func BenchmarkGoodRunLegacy(b *testing.B) {
	c, _, words := kernelBenchSetup(b, "c6288")
	lk := NewLegacyKernel(c)
	lk.SetInputs(words)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lk.Run()
	}
}
