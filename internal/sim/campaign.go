package sim

import (
	"math/bits"
	"runtime"
	"sync"

	"optirand/internal/circuit"
	"optirand/internal/fault"
	"optirand/internal/prng"
)

// CoveragePoint is one sample of a fault-coverage curve.
type CoveragePoint struct {
	Patterns int
	Detected int
	Coverage float64 // Detected / TotalFaults
}

// CampaignResult reports a random-test fault-simulation campaign.
type CampaignResult struct {
	TotalFaults int
	Detected    int
	Patterns    int
	// FirstDetected[i] is the 1-based pattern count at which fault i of
	// the campaign's fault list was first detected, or 0 if never.
	FirstDetected []int
	// Curve samples coverage after each 64-pattern batch boundary
	// requested via curveStep (always includes the final point).
	Curve []CoveragePoint
}

// Coverage returns the final fault coverage in [0,1].
func (r *CampaignResult) Coverage() float64 {
	if r.TotalFaults == 0 {
		return 1
	}
	return float64(r.Detected) / float64(r.TotalFaults)
}

// batchGen fills one word per primary input with the patterns of batch
// batchNo (64 patterns per batch). Implementations must be pure
// functions of batchNo so that independent replays of the stream are
// identical — that property is what makes fault-sharded parallel
// campaigns bit-identical to serial ones.
type batchGen func(batchNo int, dst []uint64)

// runShard simulates the batch stream against the faults selected by
// shard (indices into faults), filling firstDetected at those indices.
// Detected faults are dropped from further simulation; the shard stops
// early once every one of its faults is detected. runShard takes
// ownership of shard (it is compacted in place as faults drop) and of
// its simulators and generator, so shards run concurrently without
// sharing.
func runShard(c *circuit.Circuit, faults []fault.Fault, shard []int,
	firstDetected []int, gen batchGen, nPatterns int) {

	s := NewSimulator(c)
	fs := NewFaultSimulator(s)
	words := make([]uint64, c.NumInputs())
	alive := shard

	applied := 0
	for b := 0; applied < nPatterns && len(alive) > 0; b++ {
		batch := 64
		if rem := nPatterns - applied; rem < batch {
			batch = rem
		}
		batchMask := ^uint64(0)
		if batch < 64 {
			batchMask = (uint64(1) << uint(batch)) - 1
		}
		gen(b, words)
		s.SetInputs(words)
		s.Run()

		kept := alive[:0]
		for _, fi := range alive {
			det := fs.DetectWord(faults[fi]) & batchMask
			if det == 0 {
				kept = append(kept, fi)
				continue
			}
			firstDetected[fi] = applied + bits.TrailingZeros64(det) + 1
		}
		alive = kept
		applied += batch
	}
}

// assembleResult reconstructs the full campaign report from the
// per-fault first-detection indices by replaying the serial batch
// bookkeeping (fault dropping, early exit once every fault is detected,
// curve sampling). It is a pure function of its arguments, so serial
// and parallel campaigns that agree on firstDetected produce identical
// results.
func assembleResult(total, nPatterns, curveStep int, firstDetected []int) *CampaignResult {
	res := &CampaignResult{
		TotalFaults:   total,
		Patterns:      nPatterns,
		FirstDetected: firstDetected,
	}
	if nPatterns <= 0 || total == 0 {
		res.Curve = append(res.Curve, CoveragePoint{0, 0, res.Coverage()})
		return res
	}

	// Detections per 64-pattern batch.
	nBatches := (nPatterns + 63) / 64
	perBatch := make([]int, nBatches)
	for _, fd := range firstDetected {
		if fd > 0 {
			perBatch[(fd-1)/64]++
		}
	}

	alive := total
	nextSample := curveStep
	applied := 0
	for b := 0; applied < nPatterns && alive > 0; b++ {
		batch := 64
		if rem := nPatterns - applied; rem < batch {
			batch = rem
		}
		res.Detected += perBatch[b]
		alive -= perBatch[b]
		applied += batch
		if curveStep > 0 && (applied >= nextSample || applied == nPatterns) {
			res.Curve = append(res.Curve, CoveragePoint{applied, res.Detected, res.Coverage()})
			for nextSample <= applied {
				nextSample += curveStep
			}
		}
	}
	if applied < nPatterns {
		applied = nPatterns // all faults detected early; remaining patterns are free
	}
	last := CoveragePoint{applied, res.Detected, res.Coverage()}
	if len(res.Curve) == 0 || res.Curve[len(res.Curve)-1] != last {
		res.Curve = append(res.Curve, last)
	}
	res.Patterns = applied
	return res
}

// normWorkers resolves a worker-count request: values <= 0 select
// GOMAXPROCS, and the count never exceeds the fault-list length (an
// empty shard would be pure overhead).
func normWorkers(workers, nFaults int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > nFaults {
		workers = nFaults
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// runCampaign shards the fault list across workers goroutines, each
// replaying the identical batch stream (newGen returns a fresh,
// deterministic generator per worker) with per-shard fault dropping,
// and assembles the merged result. Results are bit-identical for every
// worker count.
func runCampaign(c *circuit.Circuit, faults []fault.Fault, newGen func() batchGen,
	nPatterns, curveStep, workers int) *CampaignResult {

	firstDetected := make([]int, len(faults))
	if nPatterns <= 0 || len(faults) == 0 {
		return assembleResult(len(faults), nPatterns, curveStep, firstDetected)
	}
	workers = normWorkers(workers, len(faults))
	if workers == 1 {
		shard := make([]int, len(faults))
		for i := range shard {
			shard[i] = i
		}
		runShard(c, faults, shard, firstDetected, newGen(), nPatterns)
		return assembleResult(len(faults), nPatterns, curveStep, firstDetected)
	}

	var wg sync.WaitGroup
	n := len(faults)
	for w := 0; w < workers; w++ {
		lo, hi := w*n/workers, (w+1)*n/workers
		shard := make([]int, hi-lo)
		for i := range shard {
			shard[i] = lo + i
		}
		gen := newGen()
		wg.Add(1)
		go func() {
			defer wg.Done()
			runShard(c, faults, shard, firstDetected, gen, nPatterns)
		}()
	}
	wg.Wait()
	return assembleResult(len(faults), nPatterns, curveStep, firstDetected)
}

// weightedGen returns a batchGen factory replaying the weighted random
// stream of seed: batch b of every generator returned carries the same
// 64 patterns.
func weightedGen(weights []float64, seed uint64) func() batchGen {
	return func() batchGen {
		rng := prng.New(seed)
		return func(_ int, dst []uint64) { rng.WeightedWords(dst, weights) }
	}
}

// mixtureGen is weightedGen drawing batch b from weightSets[b%k].
func mixtureGen(weightSets [][]float64, seed uint64) func() batchGen {
	return func() batchGen {
		rng := prng.New(seed)
		return func(b int, dst []uint64) { rng.WeightedWords(dst, weightSets[b%len(weightSets)]) }
	}
}

// RunCampaign simulates nPatterns weighted random patterns against the
// fault list and reports coverage. weights[i] is the probability that
// primary input i is 1 in each pattern; seed makes the run reproducible.
// Detected faults are dropped from further simulation. curveStep > 0
// requests a coverage sample roughly every curveStep patterns (rounded
// up to 64-pattern batches); curveStep == 0 records only the final
// point.
func RunCampaign(c *circuit.Circuit, faults []fault.Fault, weights []float64,
	nPatterns int, seed uint64, curveStep int) *CampaignResult {

	return runCampaign(c, faults, weightedGen(weights, seed), nPatterns, curveStep, 1)
}

// RunCampaignWorkers is RunCampaign with the fault list sharded across
// a pool of workers goroutines (<= 0 selects GOMAXPROCS). Every worker
// replays the identical pattern stream from seed against its shard, so
// the result — coverage, FirstDetected, curve — is bit-identical to the
// serial campaign for every worker count.
func RunCampaignWorkers(c *circuit.Circuit, faults []fault.Fault, weights []float64,
	nPatterns int, seed uint64, curveStep, workers int) *CampaignResult {

	return runCampaign(c, faults, weightedGen(weights, seed), nPatterns, curveStep, workers)
}

// RunCampaignSource is RunCampaign with an external pattern source:
// next is called once per 64-pattern batch and must fill one word per
// primary input. It serves hardware-model sources (weighted LFSRs) and
// replayed pattern sets. The source is a single stateful stream, so
// this variant always runs serially.
func RunCampaignSource(c *circuit.Circuit, faults []fault.Fault, next func(dst []uint64),
	nPatterns int, curveStep int) *CampaignResult {

	newGen := func() batchGen {
		return func(_ int, dst []uint64) { next(dst) }
	}
	return runCampaign(c, faults, newGen, nPatterns, curveStep, 1)
}

// RunCampaignMixture is RunCampaign drawing each 64-pattern batch from
// the weight sets in rotation — the application mode of the paper §5.3
// extension where a partitioned fault set gets one distribution per
// part. weightSets must be non-empty and each set must cover all
// primary inputs.
func RunCampaignMixture(c *circuit.Circuit, faults []fault.Fault, weightSets [][]float64,
	nPatterns int, seed uint64, curveStep int) *CampaignResult {

	return RunCampaignMixtureWorkers(c, faults, weightSets, nPatterns, seed, curveStep, 1)
}

// RunCampaignMixtureWorkers is RunCampaignMixture with the fault list
// sharded across workers goroutines (<= 0 selects GOMAXPROCS); results
// are bit-identical to the serial mixture campaign.
func RunCampaignMixtureWorkers(c *circuit.Circuit, faults []fault.Fault, weightSets [][]float64,
	nPatterns int, seed uint64, curveStep, workers int) *CampaignResult {

	if len(weightSets) == 0 {
		panic("sim: RunCampaignMixture: no weight sets")
	}
	if len(weightSets) == 1 {
		return runCampaign(c, faults, weightedGen(weightSets[0], seed), nPatterns, curveStep, workers)
	}
	return runCampaign(c, faults, mixtureGen(weightSets, seed), nPatterns, curveStep, workers)
}

// EstimateDetectProbs estimates the detection probability of each fault
// by Monte-Carlo simulation of `words` 64-pattern batches (64*words
// patterns total) with the given input weights. No fault dropping: every
// fault sees every pattern. This is the sampling cross-check for the
// analytic estimator in internal/testability; it is only meaningful for
// probabilities well above 1/(64*words).
func EstimateDetectProbs(c *circuit.Circuit, faults []fault.Fault, weights []float64,
	words int, seed uint64) []float64 {

	s := NewSimulator(c)
	fs := NewFaultSimulator(s)
	rng := prng.New(seed)
	in := make([]uint64, c.NumInputs())
	count := make([]int, len(faults))

	for w := 0; w < words; w++ {
		rng.WeightedWords(in, weights)
		s.SetInputs(in)
		s.Run()
		for i, f := range faults {
			count[i] += bits.OnesCount64(fs.DetectWord(f))
		}
	}
	probs := make([]float64, len(faults))
	total := float64(64 * words)
	for i, n := range count {
		probs[i] = float64(n) / total
	}
	return probs
}

// ExactDetectProbs computes detection probabilities by exhaustive
// enumeration of all 2^n input patterns under the product distribution
// given by weights. Only usable for small n (it refuses n > 24). It is
// the ground truth for estimator tests.
func ExactDetectProbs(c *circuit.Circuit, faults []fault.Fault, weights []float64) []float64 {
	n := c.NumInputs()
	if n > 24 {
		panic("sim: ExactDetectProbs: too many inputs for enumeration")
	}
	s := NewSimulator(c)
	fs := NewFaultSimulator(s)
	probs := make([]float64, len(faults))
	in := make([]uint64, n)

	total := 1 << uint(n)
	// Enumerate patterns in batches of 64 using the low 6 bits as the
	// in-word pattern index.
	for base := 0; base < total; base += 64 {
		batch := total - base
		if batch > 64 {
			batch = 64
		}
		for i := 0; i < n; i++ {
			var w uint64
			for k := 0; k < batch; k++ {
				v := base + k
				if v>>uint(i)&1 == 1 {
					w |= 1 << uint(k)
				}
			}
			in[i] = w
		}
		s.SetInputs(in)
		s.Run()
		for fi, f := range faults {
			det := fs.DetectWord(f)
			for k := 0; k < batch; k++ {
				if det>>uint(k)&1 == 0 {
					continue
				}
				v := base + k
				pr := 1.0
				for i := 0; i < n; i++ {
					if v>>uint(i)&1 == 1 {
						pr *= weights[i]
					} else {
						pr *= 1 - weights[i]
					}
				}
				probs[fi] += pr
			}
		}
	}
	return probs
}
