package sim

import (
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"

	"optirand/internal/circuit"
	"optirand/internal/fault"
	"optirand/internal/prng"
)

// CoveragePoint is one sample of a fault-coverage curve.
type CoveragePoint struct {
	Patterns int
	Detected int
	Coverage float64 // Detected / TotalFaults
	// Round is the adaptive round that generated the batch ending at
	// this sample; 0 for non-adaptive campaigns.
	Round int
	// WeightSet identifies the weight set that generated that batch:
	// the rotation index b%k for mixture campaigns, the round's
	// weight-set id (bandit arm or re-optimization version) for
	// adaptive ones, 0 for single-set campaigns.
	WeightSet int
}

// RoundStat records one block of an adaptive campaign: the weight set
// it ran under and the cumulative state at its boundary.
type RoundStat struct {
	Round     int // 0-based block index
	WeightSet int // weight-set id used for the block (arm index or re-opt version)
	Patterns  int // cumulative patterns applied after the block
	Detected  int // cumulative detections after the block
	Coverage  float64
	// Reoptimized reports that a residual re-optimization ran at this
	// block's boundary and produced the NEXT block's weights.
	Reoptimized bool
}

// AdaptiveInfo records the provenance of a block-adaptive campaign
// (see internal/adapt): one RoundStat per executed block plus the
// loop's termination condition. It is part of the campaign result
// proper — a pure function of (circuit, faults, config, seed), never
// of scheduling — so it travels over the wire and caches with the
// rest of the report.
type AdaptiveInfo struct {
	// Strategy is the re-weighting rule ("reopt" or "bandit").
	Strategy string
	// Rounds holds one entry per executed block, in order.
	Rounds []RoundStat
	// Reopts counts residual re-optimizations that produced new weights.
	Reopts int
	// ArmPulls[a] counts blocks run under bandit arm a (nil for reopt).
	ArmPulls []int
	// Stalled reports termination by stall detection (consecutive
	// zero-detection blocks) before the pattern budget ran out.
	Stalled bool
	// TargetHit reports termination by reaching the target coverage.
	TargetHit bool
}

// CampaignResult reports a random-test fault-simulation campaign.
type CampaignResult struct {
	TotalFaults int
	Detected    int
	Patterns    int
	// FirstDetected[i] is the 1-based pattern count at which fault i of
	// the campaign's fault list was first detected, or 0 if never.
	FirstDetected []int
	// Curve samples coverage after each 64-pattern batch boundary
	// requested via curveStep (always includes the final point).
	Curve []CoveragePoint
	// Adaptive carries round provenance for block-adaptive campaigns;
	// nil for open-loop ones.
	Adaptive *AdaptiveInfo
}

// Coverage returns the final fault coverage in [0,1].
func (r *CampaignResult) Coverage() float64 {
	if r.TotalFaults == 0 {
		return 1
	}
	return float64(r.Detected) / float64(r.TotalFaults)
}

// batchGen fills one word per primary input with the patterns of batch
// batchNo (64 patterns per batch). Implementations must be pure
// functions of batchNo so that independent replays of the stream are
// identical — that property is what makes fault-sharded parallel
// campaigns bit-identical to serial ones.
type batchGen func(batchNo int, dst []uint64)

// loadLaneGroup fills the good machine's lanes with up to W
// consecutive batches of the stream starting at batch *b / pattern
// *applied, advancing both. It returns the number of lanes filled (m)
// and writes each lane's valid-pattern mask into masks (0 for unused
// lanes — their stale values are harmless because every extraction
// masks per lane). Lane l of the group always starts at pattern
// groupBase + l*64: only the campaign's final batch can be partial.
func loadLaneGroup(s *Simulator, gen batchGen, b *int, applied *int, nPatterns int,
	words []uint64, masks *[8]uint64) int {

	w := s.Lanes()
	m := 0
	for ; m < w && *applied < nPatterns; m++ {
		batch := 64
		if rem := nPatterns - *applied; rem < batch {
			batch = rem
		}
		masks[m] = ^uint64(0)
		if batch < 64 {
			masks[m] = (uint64(1) << uint(batch)) - 1
		}
		gen(*b, words)
		s.SetInputsLane(m, words)
		*b++
		*applied += batch
	}
	for l := m; l < w; l++ {
		masks[l] = 0
	}
	return m
}

// firstLaneDetection extracts the earliest detecting pattern index
// from a wide detection group: lanes are consecutive batches, so the
// first non-empty lane (after masking) holds the first detection. 0
// means no detection in the group — exactly the serial per-batch
// bookkeeping, which is what keeps wide campaigns bit-identical.
func firstLaneDetection(det []uint64, masks *[8]uint64, m, groupBase int) int {
	for l := 0; l < m; l++ {
		if d := det[l] & masks[l]; d != 0 {
			return groupBase + l*64 + bits.TrailingZeros64(d) + 1
		}
	}
	return 0
}

// runShard simulates the batch stream against the faults selected by
// shard (indices into faults), filling firstDetected at those indices.
// Detected faults are dropped from further simulation; the shard stops
// early once every one of its faults is detected. runShard takes
// ownership of shard (it is compacted in place as faults drop) and of
// its simulators and generator, so shards run concurrently without
// sharing. The stream runs through the wide kernels, W batches per
// group (dropping happens at group granularity; first detections are
// per pattern either way, so results match the serial batch loop
// exactly).
func runShard(c *circuit.Circuit, faults []fault.Fault, shard []int,
	firstDetected []int, gen batchGen, nPatterns int) {

	s := NewSimulator(c)
	fs := NewFaultSimulator(s)
	w := s.Lanes()
	words := make([]uint64, c.NumInputs())
	var det, masks [8]uint64
	alive := shard

	applied, b := 0, 0
	for applied < nPatterns && len(alive) > 0 {
		groupBase := applied
		m := loadLaneGroup(s, gen, &b, &applied, nPatterns, words, &masks)
		s.RunWide()

		kept := alive[:0]
		for _, fi := range alive {
			fs.DetectWords(faults[fi], det[:w])
			first := firstLaneDetection(det[:w], &masks, m, groupBase)
			if first == 0 {
				kept = append(kept, fi)
				continue
			}
			firstDetected[fi] = first
		}
		alive = kept
	}
}

// assembleResult reconstructs the full campaign report from the
// per-fault first-detection indices by replaying the serial batch
// bookkeeping (fault dropping, early exit once every fault is detected,
// curve sampling). It is a pure function of its arguments, so serial
// and parallel campaigns that agree on firstDetected produce identical
// results.
func assembleResult(total, nPatterns, curveStep int, firstDetected []int) *CampaignResult {
	res := &CampaignResult{
		TotalFaults:   total,
		Patterns:      nPatterns,
		FirstDetected: firstDetected,
	}
	if nPatterns <= 0 || total == 0 {
		res.Curve = append(res.Curve, CoveragePoint{Patterns: 0, Detected: 0, Coverage: res.Coverage()})
		return res
	}

	// Detections per 64-pattern batch.
	nBatches := (nPatterns + 63) / 64
	perBatch := make([]int, nBatches)
	for _, fd := range firstDetected {
		if fd > 0 {
			perBatch[(fd-1)/64]++
		}
	}

	alive := total
	nextSample := curveStep
	applied := 0
	for b := 0; applied < nPatterns && alive > 0; b++ {
		batch := 64
		if rem := nPatterns - applied; rem < batch {
			batch = rem
		}
		res.Detected += perBatch[b]
		alive -= perBatch[b]
		applied += batch
		if curveStep > 0 && (applied >= nextSample || applied == nPatterns) {
			res.Curve = append(res.Curve, CoveragePoint{Patterns: applied, Detected: res.Detected, Coverage: res.Coverage()})
			for nextSample <= applied {
				nextSample += curveStep
			}
		}
	}
	if applied < nPatterns {
		applied = nPatterns // all faults detected early; remaining patterns are free
	}
	last := CoveragePoint{Patterns: applied, Detected: res.Detected, Coverage: res.Coverage()}
	if len(res.Curve) == 0 || res.Curve[len(res.Curve)-1] != last {
		res.Curve = append(res.Curve, last)
	}
	res.Patterns = applied
	return res
}

// attributeMixture stamps each curve point with the weight set that
// generated the batch ending at that sample: batch b of a k-set
// mixture draws from set b%k. Attribution is a pure function of the
// assembled result (a point at P patterns closes batch (P-1)/64), so
// every execution strategy of one campaign agrees on it. Single-set
// campaigns (k <= 1) keep the zero attribution.
func attributeMixture(res *CampaignResult, k int) *CampaignResult {
	if k <= 1 {
		return res
	}
	for i := range res.Curve {
		if p := res.Curve[i].Patterns; p > 0 {
			res.Curve[i].WeightSet = ((p - 1) / 64) % k
		}
	}
	return res
}

// normWorkers resolves a worker-count request: values <= 0 select
// GOMAXPROCS, and the count never exceeds the fault-list length (an
// empty shard would be pure overhead).
func normWorkers(workers, nFaults int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > nFaults {
		workers = nFaults
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// runCampaign shards the fault list across workers goroutines, each
// replaying the identical batch stream (newGen returns a fresh,
// deterministic generator per worker) with per-shard fault dropping,
// and assembles the merged result. Results are bit-identical for every
// worker count.
func runCampaign(c *circuit.Circuit, faults []fault.Fault, newGen func() batchGen,
	nPatterns, curveStep, workers int) *CampaignResult {

	firstDetected := make([]int, len(faults))
	if nPatterns <= 0 || len(faults) == 0 {
		return assembleResult(len(faults), nPatterns, curveStep, firstDetected)
	}
	workers = normWorkers(workers, len(faults))
	if workers == 1 {
		shard := make([]int, len(faults))
		for i := range shard {
			shard[i] = i
		}
		runShard(c, faults, shard, firstDetected, newGen(), nPatterns)
		return assembleResult(len(faults), nPatterns, curveStep, firstDetected)
	}

	var wg sync.WaitGroup
	n := len(faults)
	for w := 0; w < workers; w++ {
		lo, hi := w*n/workers, (w+1)*n/workers
		shard := make([]int, hi-lo)
		for i := range shard {
			shard[i] = lo + i
		}
		gen := newGen()
		wg.Add(1)
		go func() {
			defer wg.Done()
			runShard(c, faults, shard, firstDetected, gen, nPatterns)
		}()
	}
	wg.Wait()
	return assembleResult(len(faults), nPatterns, curveStep, firstDetected)
}

// GoodMachine selects how fault-sharded parallel campaigns obtain
// their good-machine values. Every mode is bit-identical to the serial
// campaign; the choice is purely a cost trade.
type GoodMachine uint8

const (
	// GoodMachineReplay duplicates the good simulation per worker: each
	// fault-shard worker owns a simulator pair and replays the whole
	// pattern stream. Zero cross-worker state, zero synchronization —
	// the right default when per-fault cone propagation dominates.
	GoodMachineReplay GoodMachine = iota
	// GoodMachineShared runs ONE good simulation per 64-pattern batch
	// and fans DetectWord out across fault-shard workers against it,
	// with a barrier per batch. It buys back the duplicated good-machine
	// work of replay mode — a win on fanout-heavy circuits where the
	// good simulation is not negligible next to the fault cones.
	GoodMachineShared
	// GoodMachineAuto picks between the two by a simple cost model:
	// shared when the good-machine work replay mode would duplicate
	// per batch clears a fixed threshold, replay otherwise.
	GoodMachineAuto
)

// sharedGoodMachineThreshold is the Auto cutover: replay mode is kept
// unless it would duplicate at least this many word-operations of
// good-machine work per batch (gates + fanin edges, summed over the
// extra workers) — enough to dwarf the two goroutine barriers per
// batch that shared mode pays instead.
const sharedGoodMachineThreshold = 1 << 14

// pickShared resolves a GoodMachine mode against the campaign shape.
func pickShared(c *circuit.Circuit, workers int, mode GoodMachine) bool {
	if workers <= 1 {
		return false // shared and replay coincide; take the simpler path
	}
	switch mode {
	case GoodMachineShared:
		return true
	case GoodMachineAuto:
		return (workers-1)*c.NumLines() >= sharedGoodMachineThreshold
	}
	return false
}

// CampaignConfig bundles the scheduling knobs of a campaign. None of
// them can change a result — every combination is bit-identical to
// the serial path — so none of them is part of a task's wire identity.
type CampaignConfig struct {
	// Patterns is the pattern budget.
	Patterns int
	// CurveStep > 0 samples the coverage curve every CurveStep patterns.
	CurveStep int
	// Workers shards the fault list across goroutines (<= 0 selects
	// GOMAXPROCS, 1 is serial). Ignored when PatternShards > 1.
	Workers int
	// PatternShards > 1 shards the pattern stream into contiguous
	// batch ranges instead of sharding the fault list — the right cut
	// for small-fault/large-pattern workloads where fault shards would
	// be too narrow to pay for their duplicated good machines.
	PatternShards int
	// GoodMachine selects the good-machine strategy for fault-sharded
	// campaigns (see the mode constants). The zero value is replay.
	GoodMachine GoodMachine
}

// RunCampaignConfig is the general campaign entry point: weightSets
// behaves as in RunCampaignMixture (one set = plain weighted stream,
// several = the §5.3 batch rotation), and cfg selects the scheduling.
// Every configuration returns bit-identical results.
func RunCampaignConfig(c *circuit.Circuit, faults []fault.Fault, weightSets [][]float64,
	seed uint64, cfg CampaignConfig) *CampaignResult {

	if len(weightSets) == 0 {
		panic("sim: RunCampaignConfig: no weight sets")
	}
	var newGen func() batchGen
	if len(weightSets) == 1 {
		newGen = weightedGen(weightSets[0], seed)
	} else {
		newGen = mixtureGen(weightSets, seed)
	}
	if cfg.PatternShards > 1 {
		res := runCampaignPatternShards(c, faults, newGen, cfg.Patterns, cfg.CurveStep, cfg.PatternShards)
		return attributeMixture(res, len(weightSets))
	}
	workers := normWorkers(cfg.Workers, len(faults))
	if pickShared(c, workers, cfg.GoodMachine) {
		return attributeMixture(runCampaignShared(c, faults, newGen, cfg.Patterns, cfg.CurveStep, workers), len(weightSets))
	}
	return attributeMixture(runCampaign(c, faults, newGen, cfg.Patterns, cfg.CurveStep, cfg.Workers), len(weightSets))
}

// runCampaignShared is the shared-good-machine campaign: one good
// simulation per batch, DetectWord fanned out over fault-shard
// workers, a barrier per batch. firstDetected entries are written by
// exactly one worker each (shards partition the fault list), and the
// pattern stream is generated once instead of once per worker.
func runCampaignShared(c *circuit.Circuit, faults []fault.Fault, newGen func() batchGen,
	nPatterns, curveStep, workers int) *CampaignResult {

	firstDetected := make([]int, len(faults))
	if nPatterns <= 0 || len(faults) == 0 {
		return assembleResult(len(faults), nPatterns, curveStep, firstDetected)
	}

	good := NewSimulator(c)
	fss := make([]*FaultSimulator, workers)
	shards := make([][]int, workers)
	n := len(faults)
	for w := 0; w < workers; w++ {
		fss[w] = NewFaultSimulator(good)
		lo, hi := w*n/workers, (w+1)*n/workers
		shard := make([]int, hi-lo)
		for i := range shard {
			shard[i] = lo + i
		}
		shards[w] = shard
	}

	// Persistent workers, one per fault shard: the per-group barrier is
	// two channel handoffs (dispatch + WaitGroup), not a goroutine
	// spawn — and wide groups mean one barrier per W batches instead
	// of one per batch, shaving exactly the cost this mode exists to
	// shave.
	type sharedGroup struct {
		groupBase int
		m         int
		masks     [8]uint64
	}
	lanes := good.Lanes()
	var wg sync.WaitGroup
	work := make([]chan sharedGroup, workers)
	for w := range fss {
		work[w] = make(chan sharedGroup)
		go func(w int) {
			var det [8]uint64
			for grp := range work[w] {
				kept := shards[w][:0]
				for _, fi := range shards[w] {
					fss[w].DetectWords(faults[fi], det[:lanes])
					first := firstLaneDetection(det[:lanes], &grp.masks, grp.m, grp.groupBase)
					if first == 0 {
						kept = append(kept, fi)
						continue
					}
					firstDetected[fi] = first
				}
				shards[w] = kept
				wg.Done()
			}
		}(w)
	}
	defer func() {
		for _, ch := range work {
			close(ch)
		}
	}()

	gen := newGen()
	words := make([]uint64, c.NumInputs())
	alive := n
	applied, b := 0, 0
	for applied < nPatterns && alive > 0 {
		grp := sharedGroup{groupBase: applied}
		grp.m = loadLaneGroup(good, gen, &b, &applied, nPatterns, words, &grp.masks)
		good.RunWide()

		// The good machine is frozen for the group; workers only read
		// it while propagating their own fault overlays.
		for w := range fss {
			if len(shards[w]) == 0 {
				continue
			}
			wg.Add(1)
			work[w] <- grp
		}
		wg.Wait()
		alive = 0
		for w := range shards {
			alive += len(shards[w])
		}
	}
	return assembleResult(len(faults), nPatterns, curveStep, firstDetected)
}

// atomicMinDetection lowers *addr to d unless an earlier (smaller,
// non-zero) detection index is already recorded; 0 means "not yet
// detected". Pattern ranges are disjoint, so whatever the store
// interleaving, the surviving value is the global minimum — the index
// the serial campaign would have reported.
func atomicMinDetection(addr *int64, d int64) {
	for {
		cur := atomic.LoadInt64(addr)
		if cur != 0 && cur <= d {
			return
		}
		if atomic.CompareAndSwapInt64(addr, cur, d) {
			return
		}
	}
}

// runPatternRange simulates batches [loBatch, hiBatch) of the stream
// against the full fault list, recording first detections into the
// shared firstDet array (atomic min). Fault dropping works across
// range boundaries through firstDet itself: once an EARLIER range has
// detected a fault, its global first-detection index is settled
// (indices in this range are strictly larger) and the fault is
// dropped here; a detection by a LATER range must not drop it — this
// range could still find an earlier one.
func runPatternRange(c *circuit.Circuit, faults []fault.Fault, gen batchGen,
	loBatch, hiBatch, nPatterns int, firstDet []int64) {

	s := NewSimulator(c)
	fs := NewFaultSimulator(s)
	w := s.Lanes()
	words := make([]uint64, c.NumInputs())
	var det, masks [8]uint64
	// Generators are stateful streams: reach the range's first batch by
	// generating and discarding its predecessors. Pattern generation is
	// cheap next to simulating the range.
	for b := 0; b < loBatch; b++ {
		gen(b, words)
	}

	alive := make([]int, len(faults))
	for i := range alive {
		alive[i] = i
	}
	rangeStart := int64(loBatch * 64)
	for b := loBatch; b < hiBatch && len(alive) > 0; {
		// Fill up to W lanes with the range's next batches. Only the
		// whole campaign's final batch can be partial, and it is the
		// last batch of any range holding it — so lane l always starts
		// at pattern groupBase + l*64.
		groupBase := b * 64
		m := 0
		for ; m < w && b < hiBatch; m++ {
			batch := 64
			if rem := nPatterns - b*64; rem < batch {
				batch = rem // partial final batch of the whole campaign
			}
			masks[m] = ^uint64(0)
			if batch < 64 {
				masks[m] = (uint64(1) << uint(batch)) - 1
			}
			gen(b, words)
			s.SetInputsLane(m, words)
			b++
		}
		for l := m; l < w; l++ {
			masks[l] = 0
		}
		s.RunWide()

		kept := alive[:0]
		for _, fi := range alive {
			if v := atomic.LoadInt64(&firstDet[fi]); v != 0 && v <= rangeStart {
				continue // settled by an earlier range: drop
			}
			fs.DetectWords(faults[fi], det[:w])
			first := firstLaneDetection(det[:w], &masks, m, groupBase)
			if first == 0 {
				kept = append(kept, fi)
				continue
			}
			// Detected in this range: later batches here can only give
			// larger indices, so the fault drops locally too.
			atomicMinDetection(&firstDet[fi], int64(first))
		}
		alive = kept
	}
}

// runCampaignPatternShards shards the pattern stream into contiguous
// batch ranges, one goroutine per range, each simulating the full
// fault list over its range. FirstDetected merges as the per-fault
// minimum across ranges (the atomic handshake in runPatternRange),
// and assembleResult rebuilds the rest — so the report is
// bit-identical to the serial campaign for every shard count.
func runCampaignPatternShards(c *circuit.Circuit, faults []fault.Fault, newGen func() batchGen,
	nPatterns, curveStep, shards int) *CampaignResult {

	firstDetected := make([]int, len(faults))
	if nPatterns <= 0 || len(faults) == 0 {
		return assembleResult(len(faults), nPatterns, curveStep, firstDetected)
	}
	nBatches := (nPatterns + 63) / 64
	if shards > nBatches {
		shards = nBatches // an empty range would be pure overhead
	}
	if shards <= 1 {
		shard := make([]int, len(faults))
		for i := range shard {
			shard[i] = i
		}
		runShard(c, faults, shard, firstDetected, newGen(), nPatterns)
		return assembleResult(len(faults), nPatterns, curveStep, firstDetected)
	}

	firstDet := make([]int64, len(faults))
	var wg sync.WaitGroup
	for sh := 0; sh < shards; sh++ {
		lo, hi := sh*nBatches/shards, (sh+1)*nBatches/shards
		gen := newGen()
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			runPatternRange(c, faults, gen, lo, hi, nPatterns, firstDet)
		}(lo, hi)
	}
	wg.Wait()
	for i, v := range firstDet {
		firstDetected[i] = int(v)
	}
	return assembleResult(len(faults), nPatterns, curveStep, firstDetected)
}

// RunCampaignPatternShards is RunCampaign with the PATTERN stream
// sharded into contiguous batch ranges instead of the fault list —
// the right cut for small-fault/large-pattern workloads. Each of the
// shards goroutines replays the seeded stream to its range and
// simulates every fault over it; per-fault first detections merge as
// the minimum across ranges, with a detected-index handshake so a
// fault settled by an earlier range is dropped by later ones. The
// result is bit-identical to the serial campaign for every shard
// count.
func RunCampaignPatternShards(c *circuit.Circuit, faults []fault.Fault, weights []float64,
	nPatterns int, seed uint64, curveStep, shards int) *CampaignResult {

	return runCampaignPatternShards(c, faults, weightedGen(weights, seed), nPatterns, curveStep, shards)
}

// weightedGen returns a batchGen factory replaying the weighted random
// stream of seed: batch b of every generator returned carries the same
// 64 patterns.
func weightedGen(weights []float64, seed uint64) func() batchGen {
	return func() batchGen {
		rng := prng.New(seed)
		return func(_ int, dst []uint64) { rng.WeightedWords(dst, weights) }
	}
}

// mixtureGen is weightedGen drawing batch b from weightSets[b%k].
func mixtureGen(weightSets [][]float64, seed uint64) func() batchGen {
	return func() batchGen {
		rng := prng.New(seed)
		return func(b int, dst []uint64) { rng.WeightedWords(dst, weightSets[b%len(weightSets)]) }
	}
}

// RunCampaign simulates nPatterns weighted random patterns against the
// fault list and reports coverage. weights[i] is the probability that
// primary input i is 1 in each pattern; seed makes the run reproducible.
// Detected faults are dropped from further simulation. curveStep > 0
// requests a coverage sample roughly every curveStep patterns (rounded
// up to 64-pattern batches); curveStep == 0 records only the final
// point.
func RunCampaign(c *circuit.Circuit, faults []fault.Fault, weights []float64,
	nPatterns int, seed uint64, curveStep int) *CampaignResult {

	return runCampaign(c, faults, weightedGen(weights, seed), nPatterns, curveStep, 1)
}

// RunCampaignWorkers is RunCampaign with the fault list sharded across
// a pool of workers goroutines (<= 0 selects GOMAXPROCS). Every worker
// replays the identical pattern stream from seed against its shard, so
// the result — coverage, FirstDetected, curve — is bit-identical to the
// serial campaign for every worker count.
func RunCampaignWorkers(c *circuit.Circuit, faults []fault.Fault, weights []float64,
	nPatterns int, seed uint64, curveStep, workers int) *CampaignResult {

	return runCampaign(c, faults, weightedGen(weights, seed), nPatterns, curveStep, workers)
}

// RunCampaignSource is RunCampaign with an external pattern source:
// next is called once per 64-pattern batch and must fill one word per
// primary input. It serves hardware-model sources (weighted LFSRs) and
// replayed pattern sets. The source is a single stateful stream, so
// this variant always runs serially.
func RunCampaignSource(c *circuit.Circuit, faults []fault.Fault, next func(dst []uint64),
	nPatterns int, curveStep int) *CampaignResult {

	newGen := func() batchGen {
		return func(_ int, dst []uint64) { next(dst) }
	}
	return runCampaign(c, faults, newGen, nPatterns, curveStep, 1)
}

// RunCampaignMixture is RunCampaign drawing each 64-pattern batch from
// the weight sets in rotation — the application mode of the paper §5.3
// extension where a partitioned fault set gets one distribution per
// part. weightSets must be non-empty and each set must cover all
// primary inputs.
func RunCampaignMixture(c *circuit.Circuit, faults []fault.Fault, weightSets [][]float64,
	nPatterns int, seed uint64, curveStep int) *CampaignResult {

	return RunCampaignMixtureWorkers(c, faults, weightSets, nPatterns, seed, curveStep, 1)
}

// RunCampaignMixtureWorkers is RunCampaignMixture with the fault list
// sharded across workers goroutines (<= 0 selects GOMAXPROCS); results
// are bit-identical to the serial mixture campaign.
func RunCampaignMixtureWorkers(c *circuit.Circuit, faults []fault.Fault, weightSets [][]float64,
	nPatterns int, seed uint64, curveStep, workers int) *CampaignResult {

	if len(weightSets) == 0 {
		panic("sim: RunCampaignMixture: no weight sets")
	}
	if len(weightSets) == 1 {
		return runCampaign(c, faults, weightedGen(weightSets[0], seed), nPatterns, curveStep, workers)
	}
	res := runCampaign(c, faults, mixtureGen(weightSets, seed), nPatterns, curveStep, workers)
	return attributeMixture(res, len(weightSets))
}

// EstimateDetectProbs estimates the detection probability of each fault
// by Monte-Carlo simulation of `words` 64-pattern batches (64*words
// patterns total) with the given input weights. No fault dropping: every
// fault sees every pattern. This is the sampling cross-check for the
// analytic estimator in internal/testability; it is only meaningful for
// probabilities well above 1/(64*words).
func EstimateDetectProbs(c *circuit.Circuit, faults []fault.Fault, weights []float64,
	words int, seed uint64) []float64 {

	s := NewSimulator(c)
	fs := NewFaultSimulator(s)
	lanes := s.Lanes()
	rng := prng.New(seed)
	in := make([]uint64, c.NumInputs())
	count := make([]int, len(faults))
	var det [8]uint64

	// Wide groups of up to W batches; unused lanes of a final short
	// group hold stale values and are simply not counted.
	for done := 0; done < words; {
		m := lanes
		if rem := words - done; rem < m {
			m = rem
		}
		for l := 0; l < m; l++ {
			rng.WeightedWords(in, weights)
			s.SetInputsLane(l, in)
		}
		s.RunWide()
		for i, f := range faults {
			fs.DetectWords(f, det[:lanes])
			for l := 0; l < m; l++ {
				count[i] += bits.OnesCount64(det[l])
			}
		}
		done += m
	}
	probs := make([]float64, len(faults))
	total := float64(64 * words)
	for i, n := range count {
		probs[i] = float64(n) / total
	}
	return probs
}

// ExactDetectProbs computes detection probabilities by exhaustive
// enumeration of all 2^n input patterns under the product distribution
// given by weights. Only usable for small n (it refuses n > 24). It is
// the ground truth for estimator tests.
func ExactDetectProbs(c *circuit.Circuit, faults []fault.Fault, weights []float64) []float64 {
	n := c.NumInputs()
	if n > 24 {
		panic("sim: ExactDetectProbs: too many inputs for enumeration")
	}
	s := NewSimulator(c)
	fs := NewFaultSimulator(s)
	probs := make([]float64, len(faults))
	in := make([]uint64, n)

	total := 1 << uint(n)
	// Enumerate patterns in batches of 64 using the low 6 bits as the
	// in-word pattern index.
	for base := 0; base < total; base += 64 {
		batch := total - base
		if batch > 64 {
			batch = 64
		}
		for i := 0; i < n; i++ {
			var w uint64
			for k := 0; k < batch; k++ {
				v := base + k
				if v>>uint(i)&1 == 1 {
					w |= 1 << uint(k)
				}
			}
			in[i] = w
		}
		s.SetInputs(in)
		s.Run()
		for fi, f := range faults {
			det := fs.DetectWord(f)
			for k := 0; k < batch; k++ {
				if det>>uint(k)&1 == 0 {
					continue
				}
				v := base + k
				pr := 1.0
				for i := 0; i < n; i++ {
					if v>>uint(i)&1 == 1 {
						pr *= weights[i]
					} else {
						pr *= 1 - weights[i]
					}
				}
				probs[fi] += pr
			}
		}
	}
	return probs
}
