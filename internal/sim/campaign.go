package sim

import (
	"math/bits"

	"optirand/internal/circuit"
	"optirand/internal/fault"
	"optirand/internal/prng"
)

// CoveragePoint is one sample of a fault-coverage curve.
type CoveragePoint struct {
	Patterns int
	Detected int
	Coverage float64 // Detected / TotalFaults
}

// CampaignResult reports a random-test fault-simulation campaign.
type CampaignResult struct {
	TotalFaults int
	Detected    int
	Patterns    int
	// FirstDetected[i] is the 1-based pattern count at which fault i of
	// the campaign's fault list was first detected, or 0 if never.
	FirstDetected []int
	// Curve samples coverage after each 64-pattern batch boundary
	// requested via curveStep (always includes the final point).
	Curve []CoveragePoint
}

// Coverage returns the final fault coverage in [0,1].
func (r *CampaignResult) Coverage() float64 {
	if r.TotalFaults == 0 {
		return 1
	}
	return float64(r.Detected) / float64(r.TotalFaults)
}

// RunCampaign simulates nPatterns weighted random patterns against the
// fault list and reports coverage. weights[i] is the probability that
// primary input i is 1 in each pattern; seed makes the run reproducible.
// Detected faults are dropped from further simulation. curveStep > 0
// requests a coverage sample roughly every curveStep patterns (rounded
// up to 64-pattern batches); curveStep == 0 records only the final
// point.
func RunCampaign(c *circuit.Circuit, faults []fault.Fault, weights []float64,
	nPatterns int, seed uint64, curveStep int) *CampaignResult {

	res := &CampaignResult{
		TotalFaults:   len(faults),
		Patterns:      nPatterns,
		FirstDetected: make([]int, len(faults)),
	}
	if nPatterns <= 0 || len(faults) == 0 {
		res.Curve = append(res.Curve, CoveragePoint{0, 0, res.Coverage()})
		return res
	}

	s := NewSimulator(c)
	fs := NewFaultSimulator(s)
	rng := prng.New(seed)
	words := make([]uint64, c.NumInputs())

	alive := make([]int, len(faults)) // indices into faults
	for i := range alive {
		alive[i] = i
	}

	nextSample := curveStep
	applied := 0
	for applied < nPatterns && len(alive) > 0 {
		batch := 64
		if rem := nPatterns - applied; rem < batch {
			batch = rem
		}
		batchMask := ^uint64(0)
		if batch < 64 {
			batchMask = (uint64(1) << uint(batch)) - 1
		}
		rng.WeightedWords(words, weights)
		s.SetInputs(words)
		s.Run()

		kept := alive[:0]
		for _, fi := range alive {
			det := fs.DetectWord(faults[fi]) & batchMask
			if det == 0 {
				kept = append(kept, fi)
				continue
			}
			first := bits.TrailingZeros64(det)
			res.FirstDetected[fi] = applied + first + 1
			res.Detected++
		}
		alive = kept
		applied += batch

		if curveStep > 0 && (applied >= nextSample || applied == nPatterns) {
			res.Curve = append(res.Curve, CoveragePoint{applied, res.Detected, res.Coverage()})
			for nextSample <= applied {
				nextSample += curveStep
			}
		}
	}
	if applied < nPatterns {
		applied = nPatterns // all faults detected early; remaining patterns are free
	}
	last := CoveragePoint{applied, res.Detected, res.Coverage()}
	if len(res.Curve) == 0 || res.Curve[len(res.Curve)-1] != last {
		res.Curve = append(res.Curve, last)
	}
	res.Patterns = applied
	return res
}

// RunCampaignSource is RunCampaign with an external pattern source:
// next is called once per 64-pattern batch and must fill one word per
// primary input. It serves hardware-model sources (weighted LFSRs) and
// replayed pattern sets.
func RunCampaignSource(c *circuit.Circuit, faults []fault.Fault, next func(dst []uint64),
	nPatterns int, curveStep int) *CampaignResult {

	res := &CampaignResult{
		TotalFaults:   len(faults),
		Patterns:      nPatterns,
		FirstDetected: make([]int, len(faults)),
	}
	if nPatterns <= 0 || len(faults) == 0 {
		res.Curve = append(res.Curve, CoveragePoint{0, 0, res.Coverage()})
		return res
	}
	s := NewSimulator(c)
	fs := NewFaultSimulator(s)
	words := make([]uint64, c.NumInputs())
	alive := make([]int, len(faults))
	for i := range alive {
		alive[i] = i
	}
	nextSample := curveStep
	applied := 0
	for applied < nPatterns && len(alive) > 0 {
		batch := 64
		if rem := nPatterns - applied; rem < batch {
			batch = rem
		}
		batchMask := ^uint64(0)
		if batch < 64 {
			batchMask = (uint64(1) << uint(batch)) - 1
		}
		next(words)
		s.SetInputs(words)
		s.Run()
		kept := alive[:0]
		for _, fi := range alive {
			det := fs.DetectWord(faults[fi]) & batchMask
			if det == 0 {
				kept = append(kept, fi)
				continue
			}
			res.FirstDetected[fi] = applied + bits.TrailingZeros64(det) + 1
			res.Detected++
		}
		alive = kept
		applied += batch
		if curveStep > 0 && (applied >= nextSample || applied == nPatterns) {
			res.Curve = append(res.Curve, CoveragePoint{applied, res.Detected, res.Coverage()})
			for nextSample <= applied {
				nextSample += curveStep
			}
		}
	}
	if applied < nPatterns {
		applied = nPatterns
	}
	last := CoveragePoint{applied, res.Detected, res.Coverage()}
	if len(res.Curve) == 0 || res.Curve[len(res.Curve)-1] != last {
		res.Curve = append(res.Curve, last)
	}
	res.Patterns = applied
	return res
}

// RunCampaignMixture is RunCampaign drawing each 64-pattern batch from
// the weight sets in rotation — the application mode of the paper §5.3
// extension where a partitioned fault set gets one distribution per
// part. weightSets must be non-empty and each set must cover all
// primary inputs.
func RunCampaignMixture(c *circuit.Circuit, faults []fault.Fault, weightSets [][]float64,
	nPatterns int, seed uint64, curveStep int) *CampaignResult {

	if len(weightSets) == 0 {
		panic("sim: RunCampaignMixture: no weight sets")
	}
	if len(weightSets) == 1 {
		return RunCampaign(c, faults, weightSets[0], nPatterns, seed, curveStep)
	}
	res := &CampaignResult{
		TotalFaults:   len(faults),
		Patterns:      nPatterns,
		FirstDetected: make([]int, len(faults)),
	}
	if nPatterns <= 0 || len(faults) == 0 {
		res.Curve = append(res.Curve, CoveragePoint{0, 0, res.Coverage()})
		return res
	}
	s := NewSimulator(c)
	fs := NewFaultSimulator(s)
	rng := prng.New(seed)
	words := make([]uint64, c.NumInputs())
	alive := make([]int, len(faults))
	for i := range alive {
		alive[i] = i
	}
	nextSample := curveStep
	applied := 0
	for batchNo := 0; applied < nPatterns && len(alive) > 0; batchNo++ {
		batch := 64
		if rem := nPatterns - applied; rem < batch {
			batch = rem
		}
		batchMask := ^uint64(0)
		if batch < 64 {
			batchMask = (uint64(1) << uint(batch)) - 1
		}
		rng.WeightedWords(words, weightSets[batchNo%len(weightSets)])
		s.SetInputs(words)
		s.Run()
		kept := alive[:0]
		for _, fi := range alive {
			det := fs.DetectWord(faults[fi]) & batchMask
			if det == 0 {
				kept = append(kept, fi)
				continue
			}
			res.FirstDetected[fi] = applied + bits.TrailingZeros64(det) + 1
			res.Detected++
		}
		alive = kept
		applied += batch
		if curveStep > 0 && (applied >= nextSample || applied == nPatterns) {
			res.Curve = append(res.Curve, CoveragePoint{applied, res.Detected, res.Coverage()})
			for nextSample <= applied {
				nextSample += curveStep
			}
		}
	}
	if applied < nPatterns {
		applied = nPatterns
	}
	last := CoveragePoint{applied, res.Detected, res.Coverage()}
	if len(res.Curve) == 0 || res.Curve[len(res.Curve)-1] != last {
		res.Curve = append(res.Curve, last)
	}
	res.Patterns = applied
	return res
}

// EstimateDetectProbs estimates the detection probability of each fault
// by Monte-Carlo simulation of `words` 64-pattern batches (64*words
// patterns total) with the given input weights. No fault dropping: every
// fault sees every pattern. This is the sampling cross-check for the
// analytic estimator in internal/testability; it is only meaningful for
// probabilities well above 1/(64*words).
func EstimateDetectProbs(c *circuit.Circuit, faults []fault.Fault, weights []float64,
	words int, seed uint64) []float64 {

	s := NewSimulator(c)
	fs := NewFaultSimulator(s)
	rng := prng.New(seed)
	in := make([]uint64, c.NumInputs())
	count := make([]int, len(faults))

	for w := 0; w < words; w++ {
		rng.WeightedWords(in, weights)
		s.SetInputs(in)
		s.Run()
		for i, f := range faults {
			count[i] += bits.OnesCount64(fs.DetectWord(f))
		}
	}
	probs := make([]float64, len(faults))
	total := float64(64 * words)
	for i, n := range count {
		probs[i] = float64(n) / total
	}
	return probs
}

// ExactDetectProbs computes detection probabilities by exhaustive
// enumeration of all 2^n input patterns under the product distribution
// given by weights. Only usable for small n (it refuses n > 24). It is
// the ground truth for estimator tests.
func ExactDetectProbs(c *circuit.Circuit, faults []fault.Fault, weights []float64) []float64 {
	n := c.NumInputs()
	if n > 24 {
		panic("sim: ExactDetectProbs: too many inputs for enumeration")
	}
	s := NewSimulator(c)
	fs := NewFaultSimulator(s)
	probs := make([]float64, len(faults))
	in := make([]uint64, n)

	total := 1 << uint(n)
	// Enumerate patterns in batches of 64 using the low 6 bits as the
	// in-word pattern index.
	for base := 0; base < total; base += 64 {
		batch := total - base
		if batch > 64 {
			batch = 64
		}
		for i := 0; i < n; i++ {
			var w uint64
			for k := 0; k < batch; k++ {
				v := base + k
				if v>>uint(i)&1 == 1 {
					w |= 1 << uint(k)
				}
			}
			in[i] = w
		}
		s.SetInputs(in)
		s.Run()
		for fi, f := range faults {
			det := fs.DetectWord(f)
			for k := 0; k < batch; k++ {
				if det>>uint(k)&1 == 0 {
					continue
				}
				v := base + k
				pr := 1.0
				for i := 0; i < n; i++ {
					if v>>uint(i)&1 == 1 {
						pr *= weights[i]
					} else {
						pr *= 1 - weights[i]
					}
				}
				probs[fi] += pr
			}
		}
	}
	return probs
}
