package sim

import (
	"reflect"
	"runtime"
	"testing"

	"optirand/internal/fault"
	"optirand/internal/gen"
)

// workerCounts are the pool sizes every equivalence test exercises:
// serial, even, odd/prime (shards of uneven length), and whatever this
// machine would pick by default.
func workerCounts() []int {
	return []int{1, 2, 7, runtime.GOMAXPROCS(0)}
}

// equalCampaigns fails the test unless a and b are identical in every
// field — coverage, first-detection indices, curve, pattern counts.
func equalCampaigns(t *testing.T, label string, a, b *CampaignResult) {
	t.Helper()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("%s: campaign results differ\nserial:   %+v\nparallel: %+v", label, a, b)
	}
}

// TestRunCampaignWorkersEquivalence asserts that the fault-sharded
// parallel campaign is bit-identical to the serial one on every
// generated benchmark circuit, for every tested worker count.
func TestRunCampaignWorkersEquivalence(t *testing.T) {
	const (
		nPatterns = 960
		curveStep = 200
		seed      = 1987
	)
	for _, b := range gen.Benchmarks() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			c := b.Build()
			faults := fault.New(c).Reps
			weights := make([]float64, c.NumInputs())
			for i := range weights {
				weights[i] = 0.5
			}
			ref := RunCampaign(c, faults, weights, nPatterns, seed, curveStep)
			for _, w := range workerCounts() {
				got := RunCampaignWorkers(c, faults, weights, nPatterns, seed, curveStep, w)
				equalCampaigns(t, b.Name, ref, got)
				if t.Failed() {
					t.Fatalf("workers=%d diverged from serial", w)
				}
			}
		})
	}
}

// TestRunCampaignWorkersSkewedWeights repeats the equivalence check
// with a non-uniform weight vector (the optimized-test regime) on the
// two paper circuits whose campaigns are most sensitive to it.
func TestRunCampaignWorkersSkewedWeights(t *testing.T) {
	for _, name := range []string{"s1", "c2670"} {
		b, ok := gen.ByName(name)
		if !ok {
			t.Fatalf("missing benchmark %s", name)
		}
		c := b.Build()
		faults := fault.New(c).Reps
		weights := make([]float64, c.NumInputs())
		for i := range weights {
			weights[i] = 0.05 + 0.9*float64(i%8)/7
		}
		ref := RunCampaign(c, faults, weights, 1500, 7, 128)
		for _, w := range workerCounts() {
			got := RunCampaignWorkers(c, faults, weights, 1500, 7, 128, w)
			equalCampaigns(t, name, ref, got)
		}
	}
}

// TestRunCampaignMixtureWorkersEquivalence covers the §5.3 mixture
// rotation: parallel mixture campaigns must match serial ones.
func TestRunCampaignMixtureWorkersEquivalence(t *testing.T) {
	b, _ := gen.ByName("s1")
	c := b.Build()
	faults := fault.New(c).Reps
	n := c.NumInputs()
	mkWeights := func(p float64) []float64 {
		w := make([]float64, n)
		for i := range w {
			w[i] = p
		}
		return w
	}
	sets := [][]float64{mkWeights(0.5), mkWeights(0.8), mkWeights(0.2)}
	ref := RunCampaignMixture(c, faults, sets, 2000, 11, 256)
	for _, w := range workerCounts() {
		got := RunCampaignMixtureWorkers(c, faults, sets, 2000, 11, 256, w)
		equalCampaigns(t, "s1-mixture", ref, got)
	}
}

// TestRunCampaignWorkersRepeatable is the seeding property test: the
// same seed must give the identical CampaignResult across repeated
// parallel runs (run it under -race to also certify the sharding is
// data-race free).
func TestRunCampaignWorkersRepeatable(t *testing.T) {
	b, _ := gen.ByName("c6288")
	c := b.Build()
	faults := fault.New(c).Reps
	weights := make([]float64, c.NumInputs())
	for i := range weights {
		weights[i] = 0.5
	}
	var ref *CampaignResult
	for rep := 0; rep < 3; rep++ {
		got := RunCampaignWorkers(c, faults, weights, 640, 42, 100, 4)
		if ref == nil {
			ref = got
			continue
		}
		equalCampaigns(t, "c6288-repeat", ref, got)
	}
}

// TestRunCampaignWorkersEdgeCases pins the degenerate inputs the
// parallel path must handle exactly like the serial one: empty fault
// lists, zero/negative pattern budgets, more workers than faults, and
// budgets that are not multiples of the 64-pattern batch.
func TestRunCampaignWorkersEdgeCases(t *testing.T) {
	b, _ := gen.ByName("c880")
	c := b.Build()
	faults := fault.New(c).Reps
	weights := make([]float64, c.NumInputs())
	for i := range weights {
		weights[i] = 0.5
	}
	cases := []struct {
		name     string
		faults   []fault.Fault
		patterns int
	}{
		{"empty-faults", nil, 100},
		{"zero-patterns", faults, 0},
		{"negative-patterns", faults, -5},
		{"tiny-fault-list", faults[:3], 100},
		{"odd-budget", faults, 77},
	}
	for _, tc := range cases {
		ref := RunCampaign(c, tc.faults, weights, tc.patterns, 3, 10)
		for _, w := range []int{1, 2, 7, 64} {
			got := RunCampaignWorkers(c, tc.faults, weights, tc.patterns, 3, 10, w)
			equalCampaigns(t, tc.name, ref, got)
		}
	}
}
