package sim

import (
	"optirand/internal/circuit"
	"optirand/internal/fault"
)

// EvalOutputsWithFault is the scalar reference semantics of a faulty
// machine: it evaluates the circuit for one input assignment with fault
// f injected, returning the primary output values. It is deliberately
// simple (full re-evaluation) and is used as ground truth in tests of
// the event-driven fault simulator and of probability estimators.
func EvalOutputsWithFault(c *circuit.Circuit, f fault.Fault, inputs []bool) []bool {
	val := make([]bool, c.NumGates())
	for pos, g := range c.Inputs {
		val[g] = inputs[pos]
	}
	forced := f.Stuck == 1
	scratch := make([]bool, 0, 8)
	for _, g := range c.TopoOrder() {
		gate := &c.Gates[g]
		if gate.Type != circuit.Input {
			scratch = scratch[:0]
			for pin, d := range gate.Fanin {
				v := val[d]
				if !f.IsStem() && f.Gate == g && f.Pin == pin {
					v = forced
				}
				scratch = append(scratch, v)
			}
			val[g] = circuit.EvalGate(gate.Type, scratch)
		}
		if f.IsStem() && f.Gate == g {
			val[g] = forced
		}
	}
	out := make([]bool, len(c.Outputs))
	for i, g := range c.Outputs {
		out[i] = val[g]
	}
	return out
}

// DetectsScalar reports whether the input assignment detects fault f,
// using the scalar reference machines.
func DetectsScalar(c *circuit.Circuit, f fault.Fault, inputs []bool) bool {
	good := c.EvalOutputs(inputs)
	bad := EvalOutputsWithFault(c, f, inputs)
	for i := range good {
		if good[i] != bad[i] {
			return true
		}
	}
	return false
}
