package sim

import (
	"math"
	"testing"
	"testing/quick"

	"optirand/internal/bench"
	"optirand/internal/circuit"
	"optirand/internal/fault"
	"optirand/internal/prng"
)

const c17Src = `
# name: c17
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
`

func mustC17(t *testing.T) *circuit.Circuit {
	t.Helper()
	c, err := bench.ParseString(c17Src)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func randomCircuit(seed uint64, nIn, nGates int) *circuit.Circuit {
	rng := prng.New(seed)
	b := circuit.NewBuilder("rand")
	ids := b.Inputs("x", nIn)
	types := []circuit.GateType{circuit.And, circuit.Nand, circuit.Or,
		circuit.Nor, circuit.Xor, circuit.Xnor, circuit.Not, circuit.Buf}
	for i := 0; i < nGates; i++ {
		t := types[rng.Intn(len(types))]
		var g int
		if t == circuit.Not || t == circuit.Buf {
			g = b.Add(t, "", ids[rng.Intn(len(ids))])
		} else {
			k := 2 + rng.Intn(3)
			fan := make([]int, k)
			for j := range fan {
				fan[j] = ids[rng.Intn(len(ids))]
			}
			g = b.Add(t, "", fan...)
		}
		ids = append(ids, g)
	}
	// Expose the last few gates (and any dangling ones) as outputs.
	for i := 0; i < 4 && i < len(ids); i++ {
		b.Output("", ids[len(ids)-1-i])
	}
	return b.MustBuild()
}

// TestParallelMatchesScalar: the 64-way word simulator must agree with
// the scalar reference evaluator on every bit lane.
func TestParallelMatchesScalar(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		c := randomCircuit(seed, 6, 30)
		s := NewSimulator(c)
		rng := prng.New(seed + 100)
		words := make([]uint64, c.NumInputs())
		for i := range words {
			words[i] = rng.Uint64()
		}
		s.SetInputs(words)
		s.Run()
		in := make([]bool, c.NumInputs())
		for bit := 0; bit < 64; bit++ {
			for i := range in {
				in[i] = words[i]>>uint(bit)&1 == 1
			}
			want := c.Eval(in)
			for g := 0; g < c.NumGates(); g++ {
				got := s.Value(g)>>uint(bit)&1 == 1
				if got != want[g] {
					t.Fatalf("seed %d bit %d gate %d: parallel=%v scalar=%v", seed, bit, g, got, want[g])
				}
			}
		}
	}
}

// TestFaultSimMatchesScalar: DetectWord must agree bit-for-bit with the
// brute-force two-machine scalar reference, for every fault.
func TestFaultSimMatchesScalar(t *testing.T) {
	cases := []*circuit.Circuit{mustC17(t)}
	for seed := uint64(0); seed < 6; seed++ {
		cases = append(cases, randomCircuit(seed, 5, 25))
	}
	for _, c := range cases {
		u := fault.New(c)
		s := NewSimulator(c)
		fs := NewFaultSimulator(s)
		rng := prng.New(7)
		words := make([]uint64, c.NumInputs())
		for trial := 0; trial < 4; trial++ {
			for i := range words {
				words[i] = rng.Uint64()
			}
			s.SetInputs(words)
			s.Run()
			in := make([]bool, c.NumInputs())
			for _, f := range u.All {
				det := fs.DetectWord(f)
				for bit := 0; bit < 64; bit++ {
					for i := range in {
						in[i] = words[i]>>uint(bit)&1 == 1
					}
					want := DetectsScalar(c, f, in)
					got := det>>uint(bit)&1 == 1
					if got != want {
						t.Fatalf("circuit %s fault %v bit %d: event-driven=%v scalar=%v",
							c.Name, f.Describe(c), bit, got, want)
					}
				}
			}
		}
	}
}

// TestFaultSimStateIsolation: interleaving different faults must not
// leak state between DetectWord calls.
func TestFaultSimStateIsolation(t *testing.T) {
	c := mustC17(t)
	u := fault.New(c)
	s := NewSimulator(c)
	fs := NewFaultSimulator(s)
	rng := prng.New(3)
	words := make([]uint64, c.NumInputs())
	for i := range words {
		words[i] = rng.Uint64()
	}
	s.SetInputs(words)
	s.Run()
	first := make([]uint64, len(u.All))
	for i, f := range u.All {
		first[i] = fs.DetectWord(f)
	}
	// Reverse order must give identical masks.
	for i := len(u.All) - 1; i >= 0; i-- {
		if got := fs.DetectWord(u.All[i]); got != first[i] {
			t.Fatalf("fault %v: mask changed on re-query: %x vs %x",
				u.All[i].Describe(c), got, first[i])
		}
	}
}

func TestCampaignC17FullCoverage(t *testing.T) {
	c := mustC17(t)
	u := fault.New(c)
	w := make([]float64, c.NumInputs())
	for i := range w {
		w[i] = 0.5
	}
	res := RunCampaign(c, u.Reps, w, 1000, 1, 0)
	if res.Coverage() != 1.0 {
		t.Errorf("c17 coverage after 1000 random patterns = %v, want 1.0", res.Coverage())
	}
	for i, fd := range res.FirstDetected {
		if fd == 0 {
			t.Errorf("fault %v never detected", u.Reps[i].Describe(c))
		}
		if fd < 1 || fd > 1000 {
			t.Errorf("fault %v FirstDetected = %d out of range", u.Reps[i].Describe(c), fd)
		}
	}
}

func TestCampaignDeterminism(t *testing.T) {
	c := mustC17(t)
	u := fault.New(c)
	w := []float64{0.5, 0.5, 0.5, 0.5, 0.5}
	a := RunCampaign(c, u.Reps, w, 256, 42, 64)
	b := RunCampaign(c, u.Reps, w, 256, 42, 64)
	if a.Detected != b.Detected || len(a.Curve) != len(b.Curve) {
		t.Fatalf("campaign not deterministic: %+v vs %+v", a, b)
	}
	for i := range a.Curve {
		if a.Curve[i] != b.Curve[i] {
			t.Fatalf("curve differs at %d: %+v vs %+v", i, a.Curve[i], b.Curve[i])
		}
	}
}

func TestCampaignCurveMonotone(t *testing.T) {
	c := mustC17(t)
	u := fault.New(c)
	w := []float64{0.5, 0.5, 0.5, 0.5, 0.5}
	res := RunCampaign(c, u.Reps, w, 512, 9, 64)
	prev := CoveragePoint{}
	for _, p := range res.Curve {
		if p.Patterns < prev.Patterns || p.Detected < prev.Detected {
			t.Fatalf("coverage curve not monotone: %+v after %+v", p, prev)
		}
		prev = p
	}
}

func TestCampaignZeroPatterns(t *testing.T) {
	c := mustC17(t)
	u := fault.New(c)
	w := []float64{0.5, 0.5, 0.5, 0.5, 0.5}
	res := RunCampaign(c, u.Reps, w, 0, 1, 0)
	if res.Detected != 0 {
		t.Errorf("detected %d faults with zero patterns", res.Detected)
	}
}

func TestCampaignWeightExtremes(t *testing.T) {
	// With all weights 1, only patterns of all ones are applied; for
	// c17 that detects some but not all faults, and the campaign must
	// terminate anyway.
	c := mustC17(t)
	u := fault.New(c)
	w := []float64{1, 1, 1, 1, 1}
	res := RunCampaign(c, u.Reps, w, 128, 1, 0)
	if res.Coverage() >= 1.0 {
		t.Errorf("constant patterns achieved full coverage (%v), impossible for c17", res.Coverage())
	}
	if res.Coverage() <= 0 {
		t.Errorf("constant all-ones pattern detected nothing")
	}
}

// TestExactDetectProbsMatchesEnumeration cross-checks the batched
// enumerator against direct per-pattern scalar detection.
func TestExactDetectProbsMatchesEnumeration(t *testing.T) {
	c := mustC17(t)
	u := fault.New(c)
	weights := []float64{0.3, 0.5, 0.7, 0.2, 0.9}
	got := ExactDetectProbs(c, u.Reps, weights)
	n := c.NumInputs()
	in := make([]bool, n)
	for fi, f := range u.Reps {
		want := 0.0
		for v := 0; v < 1<<uint(n); v++ {
			pr := 1.0
			for i := 0; i < n; i++ {
				if v>>uint(i)&1 == 1 {
					in[i] = true
					pr *= weights[i]
				} else {
					in[i] = false
					pr *= 1 - weights[i]
				}
			}
			if DetectsScalar(c, f, in) {
				want += pr
			}
		}
		if math.Abs(got[fi]-want) > 1e-12 {
			t.Errorf("fault %v: ExactDetectProbs=%v enumeration=%v", f.Describe(c), got[fi], want)
		}
	}
}

// TestMonteCarloApproachesExact: sampling estimates converge to the
// exact detection probabilities.
func TestMonteCarloApproachesExact(t *testing.T) {
	c := mustC17(t)
	u := fault.New(c)
	weights := []float64{0.5, 0.5, 0.5, 0.5, 0.5}
	exact := ExactDetectProbs(c, u.Reps, weights)
	est := EstimateDetectProbs(c, u.Reps, weights, 400, 5) // 25600 patterns
	for i := range exact {
		if math.Abs(exact[i]-est[i]) > 0.02 {
			t.Errorf("fault %v: exact=%v sampled=%v", u.Reps[i].Describe(c), exact[i], est[i])
		}
	}
}

// TestDetectWordQuick drives random circuits, random faults and random
// patterns through quick.Check.
func TestDetectWordQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40}
	f := func(seed uint64, faultPick uint, word uint64) bool {
		c := randomCircuit(seed%16, 5, 20)
		u := fault.New(c)
		flt := u.All[int(faultPick%uint(len(u.All)))]
		s := NewSimulator(c)
		fs := NewFaultSimulator(s)
		words := make([]uint64, c.NumInputs())
		rng := prng.New(word)
		for i := range words {
			words[i] = rng.Uint64()
		}
		s.SetInputs(words)
		s.Run()
		det := fs.DetectWord(flt)
		in := make([]bool, c.NumInputs())
		for bit := 0; bit < 64; bit += 7 {
			for i := range in {
				in[i] = words[i]>>uint(bit)&1 == 1
			}
			if DetectsScalar(c, flt, in) != (det>>uint(bit)&1 == 1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
