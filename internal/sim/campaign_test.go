package sim

import (
	"testing"

	"optirand/internal/bench"
	"optirand/internal/circuit"
	"optirand/internal/fault"
	"optirand/internal/prng"
)

func campaignCircuit(t *testing.T) *circuit.Circuit {
	t.Helper()
	c, err := bench.ParseString(c17Src)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestMixtureSingleSetEqualsPlainCampaign: a one-set mixture must be
// byte-identical to RunCampaign.
func TestMixtureSingleSetEqualsPlainCampaign(t *testing.T) {
	c := campaignCircuit(t)
	u := fault.New(c)
	w := []float64{0.5, 0.5, 0.5, 0.5, 0.5}
	a := RunCampaign(c, u.Reps, w, 500, 3, 128)
	b := RunCampaignMixture(c, u.Reps, [][]float64{w}, 500, 3, 128)
	if a.Detected != b.Detected || a.Patterns != b.Patterns {
		t.Fatalf("single-set mixture differs: %+v vs %+v", a, b)
	}
	for i := range a.FirstDetected {
		if a.FirstDetected[i] != b.FirstDetected[i] {
			t.Fatalf("FirstDetected differs at %d", i)
		}
	}
}

// TestMixtureIdenticalSetsEqualsPlain: a mixture of identical sets uses
// the same per-batch draw sequence, hence identical results.
func TestMixtureIdenticalSetsEqualsPlain(t *testing.T) {
	c := campaignCircuit(t)
	u := fault.New(c)
	w := []float64{0.5, 0.5, 0.5, 0.5, 0.5}
	a := RunCampaign(c, u.Reps, w, 512, 7, 0)
	b := RunCampaignMixture(c, u.Reps, [][]float64{w, w, w}, 512, 7, 0)
	if a.Detected != b.Detected {
		t.Fatalf("identical-set mixture differs: %d vs %d detected", a.Detected, b.Detected)
	}
}

func TestMixturePanicsOnEmpty(t *testing.T) {
	c := campaignCircuit(t)
	u := fault.New(c)
	defer func() {
		if recover() == nil {
			t.Error("empty weight-set list did not panic")
		}
	}()
	RunCampaignMixture(c, u.Reps, nil, 100, 1, 0)
}

func TestMixtureZeroPatterns(t *testing.T) {
	c := campaignCircuit(t)
	u := fault.New(c)
	w := []float64{0.5, 0.5, 0.5, 0.5, 0.5}
	res := RunCampaignMixture(c, u.Reps, [][]float64{w, w}, 0, 1, 0)
	if res.Detected != 0 || len(res.Curve) != 1 {
		t.Errorf("zero-pattern mixture: %+v", res)
	}
}

// TestSourceCampaignMatchesPRNG: RunCampaignSource fed by the same
// word stream as RunCampaign must produce identical results.
func TestSourceCampaignMatchesPRNG(t *testing.T) {
	c := campaignCircuit(t)
	u := fault.New(c)
	w := []float64{0.5, 0.5, 0.5, 0.5, 0.5}
	const n = 700
	a := RunCampaign(c, u.Reps, w, n, 11, 64)
	rng := prng.New(11)
	b := RunCampaignSource(c, u.Reps, func(dst []uint64) {
		rng.WeightedWords(dst, w)
	}, n, 64)
	if a.Detected != b.Detected || a.Patterns != b.Patterns {
		t.Fatalf("source campaign differs: %+v vs %+v", a, b)
	}
	for i := range a.FirstDetected {
		if a.FirstDetected[i] != b.FirstDetected[i] {
			t.Fatalf("FirstDetected differs at fault %d: %d vs %d",
				i, a.FirstDetected[i], b.FirstDetected[i])
		}
	}
	for i := range a.Curve {
		if a.Curve[i] != b.Curve[i] {
			t.Fatalf("curve differs at %d", i)
		}
	}
}

func TestSourceCampaignZeroPatterns(t *testing.T) {
	c := campaignCircuit(t)
	u := fault.New(c)
	res := RunCampaignSource(c, u.Reps, func([]uint64) {
		t.Error("source called despite zero patterns")
	}, 0, 0)
	if res.Detected != 0 {
		t.Errorf("detected %d", res.Detected)
	}
}

// TestCampaignPartialBatch: pattern counts that are not multiples of 64
// must mask the out-of-range bits (a fault detectable only by patterns
// beyond the budget must not be counted).
func TestCampaignPartialBatch(t *testing.T) {
	c := campaignCircuit(t)
	u := fault.New(c)
	w := []float64{0.5, 0.5, 0.5, 0.5, 0.5}
	for _, n := range []int{1, 3, 63, 65, 100} {
		res := RunCampaign(c, u.Reps, w, n, 5, 0)
		if res.Patterns != n {
			t.Errorf("n=%d: Patterns=%d", n, res.Patterns)
		}
		for i, fd := range res.FirstDetected {
			if fd > n {
				t.Errorf("n=%d: fault %d first detected at %d > budget", n, i, fd)
			}
		}
	}
}

// TestCampaignFirstDetectedConsistent: a fault's FirstDetected pattern,
// replayed in isolation, must indeed detect the fault.
func TestCampaignFirstDetectedConsistent(t *testing.T) {
	c := campaignCircuit(t)
	u := fault.New(c)
	w := []float64{0.3, 0.7, 0.5, 0.4, 0.6}
	const n = 512
	res := RunCampaign(c, u.Reps, w, n, 21, 0)
	// Regenerate the same pattern stream.
	rng := prng.New(21)
	words := make([][]uint64, 0)
	for applied := 0; applied < n; applied += 64 {
		batch := make([]uint64, c.NumInputs())
		rng.WeightedWords(batch, w)
		words = append(words, batch)
	}
	in := make([]bool, c.NumInputs())
	for fi, fd := range res.FirstDetected {
		if fd == 0 {
			continue
		}
		batch, bit := (fd-1)/64, (fd-1)%64
		for i := range in {
			in[i] = words[batch][i]>>uint(bit)&1 == 1
		}
		if !DetectsScalar(c, u.Reps[fi], in) {
			t.Errorf("fault %v: FirstDetected=%d does not actually detect it",
				u.Reps[fi].Describe(c), fd)
		}
	}
}

func TestExactDetectProbsRefusesWideCircuits(t *testing.T) {
	b := circuit.NewBuilder("wide")
	ins := b.Inputs("x", 25)
	b.Output("o", b.And("o", ins...))
	c := b.MustBuild()
	defer func() {
		if recover() == nil {
			t.Error("ExactDetectProbs accepted 25 inputs")
		}
	}()
	ExactDetectProbs(c, fault.New(c).Reps, make([]float64, 25))
}
