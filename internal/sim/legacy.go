package sim

import (
	"fmt"

	"optirand/internal/circuit"
	"optirand/internal/fault"
)

// LegacyKernel is the frozen pre-compile fault-simulation kernel: the
// interpreter that walked circuit.Gate structs directly, with
// per-gate closure evaluation and per-event Fanout/Level method
// lookups. It is retained verbatim (modulo renaming) as the
// differential-testing baseline and the reference point for the
// BENCH_sim speedup trajectory — every production path runs on the
// compiled kernel in sim.go. Do not grow it.
type LegacyKernel struct {
	c   *circuit.Circuit
	val []uint64

	fval    []uint64
	fEpoch  []uint32
	qEpoch  []uint32
	epoch   uint32
	buckets [][]int
	touched []int
}

// NewLegacyKernel returns the pre-compile kernel for c: good machine
// and fault propagation in one object.
func NewLegacyKernel(c *circuit.Circuit) *LegacyKernel {
	return &LegacyKernel{
		c:       c,
		val:     make([]uint64, c.NumGates()),
		fval:    make([]uint64, c.NumGates()),
		fEpoch:  make([]uint32, c.NumGates()),
		qEpoch:  make([]uint32, c.NumGates()),
		buckets: make([][]int, c.Depth()+1),
	}
}

// SetInputs assigns all primary input words.
func (lk *LegacyKernel) SetInputs(words []uint64) {
	if len(words) != len(lk.c.Inputs) {
		panic(fmt.Sprintf("sim: LegacyKernel.SetInputs: got %d words, want %d", len(words), len(lk.c.Inputs)))
	}
	for pos, w := range words {
		lk.val[lk.c.Inputs[pos]] = w
	}
}

// Run evaluates the good machine in topological order.
func (lk *LegacyKernel) Run() {
	for _, g := range lk.c.TopoOrder() {
		gate := &lk.c.Gates[g]
		if gate.Type == circuit.Input {
			continue
		}
		lk.val[g] = legacyEvalWord(gate.Type, gate.Fanin, lk.val)
	}
}

// Value returns the good-machine word on gate g.
func (lk *LegacyKernel) Value(g int) uint64 { return lk.val[g] }

// legacyEvalWord is the pre-compile good-machine gate switch.
func legacyEvalWord(t circuit.GateType, fanin []int, val []uint64) uint64 {
	switch t {
	case circuit.Buf:
		return val[fanin[0]]
	case circuit.Not:
		return ^val[fanin[0]]
	case circuit.And, circuit.Nand:
		w := ^uint64(0)
		for _, f := range fanin {
			w &= val[f]
		}
		if t == circuit.Nand {
			return ^w
		}
		return w
	case circuit.Or, circuit.Nor:
		var w uint64
		for _, f := range fanin {
			w |= val[f]
		}
		if t == circuit.Nor {
			return ^w
		}
		return w
	case circuit.Xor, circuit.Xnor:
		var w uint64
		for _, f := range fanin {
			w ^= val[f]
		}
		if t == circuit.Xnor {
			return ^w
		}
		return w
	case circuit.Const0:
		return 0
	case circuit.Const1:
		return ^uint64(0)
	}
	panic(fmt.Sprintf("sim: legacyEvalWord: unexpected gate type %v", t))
}

func (lk *LegacyKernel) value(g int) uint64 {
	if lk.fEpoch[g] == lk.epoch {
		return lk.fval[g]
	}
	return lk.val[g]
}

func (lk *LegacyKernel) enqueue(g int) {
	if lk.qEpoch[g] != lk.epoch {
		lk.qEpoch[g] = lk.epoch
		lvl := lk.c.Level(g)
		lk.buckets[lvl] = append(lk.buckets[lvl], g)
	}
}

func (lk *LegacyKernel) setFaulty(g int, w uint64) {
	if lk.fEpoch[g] != lk.epoch {
		lk.fEpoch[g] = lk.epoch
		lk.touched = append(lk.touched, g)
	}
	lk.fval[g] = w
}

// evalFaulty is the pre-compile faulty-machine gate switch, with its
// original per-pin closure.
func (lk *LegacyKernel) evalFaulty(g int, forcePin int, forceVal uint64) uint64 {
	gate := &lk.c.Gates[g]
	in := func(pin int) uint64 {
		if pin == forcePin {
			return forceVal
		}
		return lk.value(gate.Fanin[pin])
	}
	switch gate.Type {
	case circuit.Buf:
		return in(0)
	case circuit.Not:
		return ^in(0)
	case circuit.And, circuit.Nand:
		w := ^uint64(0)
		for pin := range gate.Fanin {
			w &= in(pin)
		}
		if gate.Type == circuit.Nand {
			return ^w
		}
		return w
	case circuit.Or, circuit.Nor:
		var w uint64
		for pin := range gate.Fanin {
			w |= in(pin)
		}
		if gate.Type == circuit.Nor {
			return ^w
		}
		return w
	case circuit.Xor, circuit.Xnor:
		var w uint64
		for pin := range gate.Fanin {
			w ^= in(pin)
		}
		if gate.Type == circuit.Xnor {
			return ^w
		}
		return w
	case circuit.Const0:
		return 0
	case circuit.Const1:
		return ^uint64(0)
	case circuit.Input:
		return lk.val[g]
	}
	panic(fmt.Sprintf("sim: LegacyKernel.evalFaulty: unexpected gate type %v", gate.Type))
}

// DetectWord is the pre-compile detection kernel; semantically
// identical to FaultSimulator.DetectWord by the differential suite.
func (lk *LegacyKernel) DetectWord(f fault.Fault) uint64 {
	lk.epoch++
	if lk.epoch == 0 {
		for i := range lk.fEpoch {
			lk.fEpoch[i] = 0
			lk.qEpoch[i] = 0
		}
		lk.epoch = 1
	}
	lk.touched = lk.touched[:0]

	forced := uint64(0)
	if f.Stuck == 1 {
		forced = ^uint64(0)
	}
	if f.IsStem() {
		g := f.Gate
		if forced == lk.val[g] {
			return 0
		}
		lk.setFaulty(g, forced)
		for _, p := range lk.c.Fanout(g) {
			lk.enqueue(p.Gate)
		}
	} else {
		g := f.Gate
		nv := lk.evalFaulty(g, f.Pin, forced)
		if nv == lk.val[g] {
			return 0
		}
		lk.setFaulty(g, nv)
		for _, p := range lk.c.Fanout(g) {
			lk.enqueue(p.Gate)
		}
	}

	for lvl := 0; lvl < len(lk.buckets); lvl++ {
		bucket := lk.buckets[lvl]
		for _, g := range bucket {
			if lk.fEpoch[g] == lk.epoch {
				continue
			}
			nv := lk.evalFaulty(g, -1, 0)
			if nv != lk.val[g] {
				lk.setFaulty(g, nv)
				for _, p := range lk.c.Fanout(g) {
					lk.enqueue(p.Gate)
				}
			}
		}
		lk.buckets[lvl] = bucket[:0]
	}

	var detect uint64
	for _, g := range lk.touched {
		if lk.c.IsOutput(g) {
			detect |= lk.fval[g] ^ lk.val[g]
		}
	}
	return detect
}
