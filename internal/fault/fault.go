// Package fault defines the single stuck-at fault model used throughout
// the library: a fault forces one circuit line (a gate-output stem or a
// gate-input branch) permanently to 0 or to 1.
//
// The package generates the full fault universe of a circuit and
// collapses it into structural equivalence classes. Per the paper's
// requirement ("F ... must contain all stuck-at-0 and stuck-at-1 faults
// at the primary inputs"), primary-input stem faults are always chosen
// as class representatives when present.
package fault

import (
	"fmt"

	"optirand/internal/circuit"
)

// Fault is a single stuck-at fault. Pin == StemPin addresses the output
// stem of Gate; Pin >= 0 addresses input pin Pin of Gate (the branch of
// the driving line into that gate).
type Fault struct {
	Gate  int
	Pin   int
	Stuck uint8 // 0 or 1
}

// StemPin is the Pin value identifying a gate-output stem fault.
const StemPin = -1

// IsStem reports whether the fault sits on a gate output.
func (f Fault) IsStem() bool { return f.Pin == StemPin }

// Driver returns the gate whose output carries the faulted signal: the
// gate itself for stem faults, the fanin gate for branch faults.
func (f Fault) Driver(c *circuit.Circuit) int {
	if f.IsStem() {
		return f.Gate
	}
	return c.Gates[f.Gate].Fanin[f.Pin]
}

// Describe renders the fault with signal names, e.g. "G17 s-a-1" or
// "G17->G22.0 s-a-0" for a branch.
func (f Fault) Describe(c *circuit.Circuit) string {
	if f.IsStem() {
		return fmt.Sprintf("%s s-a-%d", c.GateName(f.Gate), f.Stuck)
	}
	d := c.Gates[f.Gate].Fanin[f.Pin]
	return fmt.Sprintf("%s->%s.%d s-a-%d", c.GateName(d), c.GateName(f.Gate), f.Pin, f.Stuck)
}

// String implements fmt.Stringer without circuit context.
func (f Fault) String() string {
	if f.IsStem() {
		return fmt.Sprintf("g%d s-a-%d", f.Gate, f.Stuck)
	}
	return fmt.Sprintf("g%d.%d s-a-%d", f.Gate, f.Pin, f.Stuck)
}

// Universe holds the full stuck-at fault list of a circuit together with
// its equivalence-collapsed form.
type Universe struct {
	Circuit *circuit.Circuit
	// All is the complete uncollapsed fault list: two faults per stem
	// and two per branch (branches only at fanout stems; a single-fanout
	// branch is structurally identical to its stem).
	All []Fault
	// Classes partitions All into structural equivalence classes.
	Classes [][]Fault
	// Reps holds one representative per class, primary-input stem
	// faults preferred. This is the fault model F of the paper.
	Reps []Fault
}

// New builds the fault universe of c and collapses it.
func New(c *circuit.Circuit) *Universe {
	u := &Universe{Circuit: c}
	u.build()
	u.collapse()
	return u
}

// id maps a fault site to a dense index: site = stem(g) or branch(g,pin),
// two faults (sa0, sa1) per site.
type siteTable struct {
	c        *circuit.Circuit
	stemBase []int // stem site index per gate
	pinBase  []int // first branch site index per gate (its pin 0)
	nSites   int
}

func newSiteTable(c *circuit.Circuit) *siteTable {
	t := &siteTable{c: c,
		stemBase: make([]int, c.NumGates()),
		pinBase:  make([]int, c.NumGates()),
	}
	n := 0
	for g := 0; g < c.NumGates(); g++ {
		t.stemBase[g] = n
		n++
	}
	for g := 0; g < c.NumGates(); g++ {
		t.pinBase[g] = n
		n += len(c.Gates[g].Fanin)
	}
	t.nSites = n
	return t
}

func (t *siteTable) stem(g int) int        { return t.stemBase[g] }
func (t *siteTable) branch(g, pin int) int { return t.pinBase[g] + pin }

// faultID returns a dense fault index (2 per site).
func (t *siteTable) faultID(f Fault) int {
	if f.IsStem() {
		return 2*t.stem(f.Gate) + int(f.Stuck)
	}
	return 2*t.branch(f.Gate, f.Pin) + int(f.Stuck)
}

func (u *Universe) build() {
	c := u.Circuit
	for g := 0; g < c.NumGates(); g++ {
		switch c.Gates[g].Type {
		case circuit.Const0:
			// s-a-0 on a constant-0 line does not change the circuit.
			u.All = append(u.All, Fault{g, StemPin, 1})
			continue
		case circuit.Const1:
			u.All = append(u.All, Fault{g, StemPin, 0})
			continue
		}
		u.All = append(u.All, Fault{g, StemPin, 0}, Fault{g, StemPin, 1})
	}
	for g := 0; g < c.NumGates(); g++ {
		for pin, d := range c.Gates[g].Fanin {
			if c.FanoutCount(d) == 1 {
				// Sole consumer: the branch is the stem; skip duplicates.
				continue
			}
			u.All = append(u.All, Fault{g, pin, 0}, Fault{g, pin, 1})
		}
	}
}

// disjoint-set union over fault IDs.
type dsu struct{ parent []int }

func newDSU(n int) *dsu {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return &dsu{parent: p}
}

func (d *dsu) find(x int) int {
	for d.parent[x] != x {
		d.parent[x] = d.parent[d.parent[x]]
		x = d.parent[x]
	}
	return x
}

func (d *dsu) union(a, b int) {
	ra, rb := d.find(a), d.find(b)
	if ra != rb {
		d.parent[ra] = rb
	}
}

// collapse merges structurally equivalent faults:
//
//   - AND:  any input s-a-0 ≡ output s-a-0   (NAND: ≡ output s-a-1)
//   - OR:   any input s-a-1 ≡ output s-a-1   (NOR:  ≡ output s-a-0)
//   - NOT:  input s-a-v ≡ output s-a-(1-v);  BUF: input s-a-v ≡ output s-a-v
//   - a stem with exactly one consumer ≡ the branch at that consumer
//     (the branch faults are not even generated in that case; the rule
//     applies when relating a driver's stem to a sole fanout pin)
func (u *Universe) collapse() {
	c := u.Circuit
	t := newSiteTable(c)
	d := newDSU(2 * t.nSites)

	// lineFault returns the fault id of the line feeding pin `pin` of
	// gate g, stuck at v: the branch if it exists, else the driver stem.
	lineFault := func(g, pin int, v uint8) int {
		drv := c.Gates[g].Fanin[pin]
		if c.FanoutCount(drv) == 1 {
			return 2*t.stem(drv) + int(v)
		}
		return 2*t.branch(g, pin) + int(v)
	}

	for g := 0; g < c.NumGates(); g++ {
		gate := &c.Gates[g]
		out := func(v uint8) int { return 2*t.stem(g) + int(v) }
		switch gate.Type {
		case circuit.And:
			for pin := range gate.Fanin {
				d.union(lineFault(g, pin, 0), out(0))
			}
		case circuit.Nand:
			for pin := range gate.Fanin {
				d.union(lineFault(g, pin, 0), out(1))
			}
		case circuit.Or:
			for pin := range gate.Fanin {
				d.union(lineFault(g, pin, 1), out(1))
			}
		case circuit.Nor:
			for pin := range gate.Fanin {
				d.union(lineFault(g, pin, 1), out(0))
			}
		case circuit.Not:
			d.union(lineFault(g, 0, 0), out(1))
			d.union(lineFault(g, 0, 1), out(0))
		case circuit.Buf:
			d.union(lineFault(g, 0, 0), out(0))
			d.union(lineFault(g, 0, 1), out(1))
		}
	}

	classOf := make(map[int][]Fault)
	for _, f := range u.All {
		root := d.find(t.faultID(f))
		classOf[root] = append(classOf[root], f)
	}
	// Deterministic class order: by position of first member in All.
	firstPos := make(map[int]int)
	for i, f := range u.All {
		root := d.find(t.faultID(f))
		if _, ok := firstPos[root]; !ok {
			firstPos[root] = i
		}
	}
	roots := make([]int, 0, len(classOf))
	for root := range classOf {
		roots = append(roots, root)
	}
	// insertion sort by firstPos (len is moderate; avoids sort import churn)
	for i := 1; i < len(roots); i++ {
		for j := i; j > 0 && firstPos[roots[j-1]] > firstPos[roots[j]]; j-- {
			roots[j-1], roots[j] = roots[j], roots[j-1]
		}
	}
	u.Classes = u.Classes[:0]
	u.Reps = u.Reps[:0]
	for _, root := range roots {
		class := classOf[root]
		u.Classes = append(u.Classes, class)
		u.Reps = append(u.Reps, u.pickRep(class))
	}
}

// pickRep chooses the class representative: a primary-input stem fault
// if the class contains one (the paper requires PI faults in F), else a
// stem fault, else the first member.
func (u *Universe) pickRep(class []Fault) Fault {
	c := u.Circuit
	best := class[0]
	bestRank := rank(c, best)
	for _, f := range class[1:] {
		if r := rank(c, f); r < bestRank {
			best, bestRank = f, r
		}
	}
	return best
}

func rank(c *circuit.Circuit, f Fault) int {
	if f.IsStem() && c.Gates[f.Gate].Type == circuit.Input {
		return 0
	}
	if f.IsStem() {
		return 1
	}
	return 2
}

// PIStemFaults returns the stuck-at faults at the primary inputs of c,
// two per input, in input order.
func PIStemFaults(c *circuit.Circuit) []Fault {
	fs := make([]Fault, 0, 2*c.NumInputs())
	for _, g := range c.Inputs {
		fs = append(fs, Fault{g, StemPin, 0}, Fault{g, StemPin, 1})
	}
	return fs
}
