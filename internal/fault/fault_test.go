package fault

import (
	"testing"

	"optirand/internal/circuit"
)

func andOrCircuit(t *testing.T) *circuit.Circuit {
	t.Helper()
	b := circuit.NewBuilder("andor")
	a := b.Input("a")
	x := b.Input("b")
	y := b.Input("c")
	g1 := b.And("g1", a, x)
	g2 := b.Or("g2", g1, y)
	b.Output("o", g2)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestUniverseCounts(t *testing.T) {
	c := andOrCircuit(t)
	u := New(c)
	// 5 gates -> 10 stem faults. All fanouts are single, so no branch
	// faults are generated.
	if got := len(u.All); got != 10 {
		t.Errorf("len(All) = %d, want 10", got)
	}
	// Equivalences: a/b s-a-0 ≡ g1 s-a-0 (AND); g1 s-a-1 ≡ g2 s-a-1 ≡
	// c s-a-1 (OR, single fanout). Classes:
	//   {a0,b0,g1_0}, {a1}, {b1}, {g1_1,c1,g2_1}, {c0}, {g2_0}
	if got := len(u.Reps); got != 6 {
		t.Errorf("len(Reps) = %d, want 6: %v", got, u.Classes)
	}
}

func TestPIRepresentativePreference(t *testing.T) {
	c := andOrCircuit(t)
	u := New(c)
	for _, class := range u.Classes {
		hasPI := false
		for _, f := range class {
			if f.IsStem() && c.Gates[f.Gate].Type == circuit.Input {
				hasPI = true
			}
		}
		if !hasPI {
			continue
		}
		rep := u.Reps[indexOfClass(u, class)]
		if !rep.IsStem() || c.Gates[rep.Gate].Type != circuit.Input {
			t.Errorf("class %v has PI fault but rep %v is not a PI stem", class, rep)
		}
	}
}

func indexOfClass(u *Universe, class []Fault) int {
	for i := range u.Classes {
		if &u.Classes[i][0] == &class[0] {
			return i
		}
	}
	return -1
}

func TestBranchFaultsAtFanoutStems(t *testing.T) {
	b := circuit.NewBuilder("fanout")
	a := b.Input("a")
	x := b.Input("b")
	n := b.Not("n", a) // n fans out to two gates
	g1 := b.And("g1", n, x)
	g2 := b.Or("g2", n, x)
	b.Output("o1", g1)
	b.Output("o2", g2)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	u := New(c)
	branches := 0
	for _, f := range u.All {
		if !f.IsStem() {
			branches++
			if f.Driver(c) != n && f.Driver(c) != x {
				t.Errorf("unexpected branch fault %v", f.Describe(c))
			}
		}
	}
	// n and b each drive two pins -> 4 branch sites -> 8 branch faults.
	if branches != 8 {
		t.Errorf("branch faults = %d, want 8", branches)
	}
}

func TestConstGateFaults(t *testing.T) {
	b := circuit.NewBuilder("const")
	a := b.Input("a")
	one := b.Const1("one")
	g := b.And("g", a, one)
	b.Output("o", g)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	u := New(c)
	for _, f := range u.All {
		if f.Gate == one && f.IsStem() && f.Stuck == 1 {
			t.Error("generated s-a-1 on a CONST1 output (undetectable by construction)")
		}
	}
}

// TestEquivalenceIsSemantic: every pair of faults in one equivalence
// class must be detected by exactly the same input patterns (that is the
// definition of fault equivalence). Verified exhaustively.
func TestEquivalenceIsSemantic(t *testing.T) {
	circuits := []*circuit.Circuit{andOrCircuit(t), nandTree(t), xorMix(t)}
	for _, c := range circuits {
		u := New(c)
		n := c.NumInputs()
		in := make([]bool, n)
		for _, class := range u.Classes {
			if len(class) < 2 {
				continue
			}
			ref := class[0]
			for v := 0; v < 1<<uint(n); v++ {
				for i := range in {
					in[i] = v>>uint(i)&1 == 1
				}
				want := detectsScalar(c, ref, in)
				for _, f := range class[1:] {
					if got := detectsScalar(c, f, in); got != want {
						t.Fatalf("circuit %s: faults %v and %v in one class disagree on pattern %b",
							c.Name, ref.Describe(c), f.Describe(c), v)
					}
				}
			}
		}
	}
}

// detectsScalar re-implements single-pattern fault detection without
// importing internal/sim (which would create an import cycle in tests).
func detectsScalar(c *circuit.Circuit, f Fault, inputs []bool) bool {
	eval := func(inject bool) []bool {
		val := make([]bool, c.NumGates())
		for pos, g := range c.Inputs {
			val[g] = inputs[pos]
		}
		forced := f.Stuck == 1
		var scratch []bool
		for _, g := range c.TopoOrder() {
			gate := &c.Gates[g]
			if gate.Type != circuit.Input {
				scratch = scratch[:0]
				for pin, d := range gate.Fanin {
					v := val[d]
					if inject && !f.IsStem() && f.Gate == g && f.Pin == pin {
						v = forced
					}
					scratch = append(scratch, v)
				}
				val[g] = circuit.EvalGate(gate.Type, scratch)
			}
			if inject && f.IsStem() && f.Gate == g {
				val[g] = forced
			}
		}
		out := make([]bool, len(c.Outputs))
		for i, g := range c.Outputs {
			out[i] = val[g]
		}
		return out
	}
	good, bad := eval(false), eval(true)
	for i := range good {
		if good[i] != bad[i] {
			return true
		}
	}
	return false
}

func nandTree(t *testing.T) *circuit.Circuit {
	t.Helper()
	b := circuit.NewBuilder("nandtree")
	in := b.Inputs("x", 4)
	g1 := b.Nand("g1", in[0], in[1])
	g2 := b.Nand("g2", in[2], in[3])
	g3 := b.Nand("g3", g1, g2)
	b.Output("o", g3)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func xorMix(t *testing.T) *circuit.Circuit {
	t.Helper()
	b := circuit.NewBuilder("xormix")
	in := b.Inputs("x", 4)
	g1 := b.Xor("g1", in[0], in[1])
	g2 := b.Nor("g2", in[2], in[3])
	g3 := b.And("g3", g1, g2)
	n := b.Not("n", g1) // g1 fans out: branch faults appear
	g4 := b.Or("g4", n, in[3])
	b.Output("o1", g3)
	b.Output("o2", g4)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestClassesPartitionAll(t *testing.T) {
	c := xorMix(t)
	u := New(c)
	seen := make(map[Fault]int)
	for _, class := range u.Classes {
		for _, f := range class {
			seen[f]++
		}
	}
	if len(seen) != len(u.All) {
		t.Errorf("classes cover %d faults, universe has %d", len(seen), len(u.All))
	}
	for f, n := range seen {
		if n != 1 {
			t.Errorf("fault %v appears in %d classes", f, n)
		}
	}
	if len(u.Reps) != len(u.Classes) {
		t.Errorf("reps/classes mismatch: %d vs %d", len(u.Reps), len(u.Classes))
	}
}

func TestPIStemFaults(t *testing.T) {
	c := andOrCircuit(t)
	fs := PIStemFaults(c)
	if len(fs) != 6 {
		t.Fatalf("len = %d, want 6", len(fs))
	}
	for i, f := range fs {
		if !f.IsStem() {
			t.Errorf("fault %d is not a stem fault", i)
		}
		if c.Gates[f.Gate].Type != circuit.Input {
			t.Errorf("fault %d not at a PI", i)
		}
		if int(f.Stuck) != i%2 {
			t.Errorf("fault %d stuck=%d, want alternating", i, f.Stuck)
		}
	}
}

func TestDescribeAndString(t *testing.T) {
	c := xorMix(t)
	u := New(c)
	for _, f := range u.All {
		if f.Describe(c) == "" || f.String() == "" {
			t.Fatalf("empty description for %v", f)
		}
	}
}
