package wire_test

import (
	"testing"

	"optirand/internal/engine"
	"optirand/internal/fault"
	"optirand/internal/gen"
	"optirand/internal/wire"
)

// seedTaskJSON serializes one real task — the richest valid input the
// decoder sees in production — as a fuzz seed.
func seedTaskJSON(tb testing.TB) []byte {
	tb.Helper()
	b, ok := gen.ByName("c432")
	if !ok {
		tb.Fatal("missing benchmark c432")
	}
	c := b.Build()
	weights := make([]float64, c.NumInputs())
	for i := range weights {
		weights[i] = 0.5
	}
	t := &engine.Task{
		Circuit:    c,
		Faults:     fault.New(c).Reps,
		WeightSets: [][]float64{weights},
		Seed:       1987,
		Patterns:   64,
	}
	data, err := wire.JSON.Marshal(wire.FromTask(t))
	if err != nil {
		tb.Fatal(err)
	}
	return data
}

// FuzzTaskDecode hammers the wire task decoder with arbitrary bytes:
// whatever arrives, decode and Build must return errors, never panic
// — this is the daemon's first line against a hostile or corrupted
// request body.
func FuzzTaskDecode(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"circuit_ref":"deadbeef","faults_ref":"deadbeef"}`))
	f.Add([]byte(`{"weights":[0.5],"seed":1,"patterns":-1}`))
	f.Add([]byte(`[1,2,3]`))
	f.Add(seedTaskJSON(f))
	f.Fuzz(func(t *testing.T, data []byte) {
		var wt wire.Task
		if err := wire.JSON.Unmarshal(data, &wt); err != nil {
			return
		}
		// By-ref tasks resolve against an empty store first, like the
		// daemon does; both paths must fail closed.
		_ = wt.Resolve(func(string) ([]byte, bool) { return nil, false })
		if built, err := wt.Build(); err == nil && built != nil {
			// A task that builds must also re-serialize: the identity
			// hash is defined over this round trip.
			_ = wire.FromTask(built).IdentityHash()
		}
	})
}

// FuzzCircuitDecode hammers the wire circuit decoder: arbitrary JSON
// must decode-and-build to an error or a structurally valid circuit,
// never a panic or an out-of-range gate graph.
func FuzzCircuitDecode(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"inputs":1,"gates":[{"op":"and","in":[0,0]}],"outputs":[0]}`))
	f.Add([]byte(`{"inputs":-5,"gates":[{"op":"xor","in":[99]}]}`))
	b, ok := gen.ByName("c432")
	if !ok {
		f.Fatal("missing benchmark c432")
	}
	circJSON, err := wire.JSON.Marshal(wire.FromCircuit(b.Build()))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(circJSON)
	f.Fuzz(func(t *testing.T, data []byte) {
		var wc wire.Circuit
		if err := wire.JSON.Unmarshal(data, &wc); err != nil {
			return
		}
		if c, err := wc.Build(); err == nil && c != nil {
			// Anything that builds must survive its own blob round trip.
			blob, hash := wc.Blob()
			rt, err := wire.DecodeCircuitBlob(blob)
			if err != nil {
				t.Fatalf("built circuit fails its own blob round trip: %v", err)
			}
			blob2, hash2 := rt.Blob()
			if hash2 != hash || len(blob2) != len(blob) {
				t.Fatalf("blob round trip changed the content address: %s -> %s", hash, hash2)
			}
		}
	})
}
