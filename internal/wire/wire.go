// Package wire defines the versioned, deterministic serialization of
// the library's distributable objects: circuits, fault lists, weight
// sets, campaign tasks, campaign results, and optimization requests.
// It is the boundary that lets the execution engine leave the process:
// everything a remote worker needs to reproduce a campaign bit for bit
// travels through these types.
//
// # Determinism
//
// Encoding the same value always yields the same bytes. The JSON codec
// relies on Go's struct-field ordering and shortest-round-trip float
// formatting (every float64 survives encode/decode exactly), and the
// wire types contain no maps, so the byte stream is a pure function of
// the value. That property is load-bearing: task identity hashes
// (Task.IdentityHash) are computed over canonical JSON bytes, and the
// content-addressed result cache in the dist package keys on them.
//
// # Version policy
//
// Every top-level wire type carries a format version (the "v" field),
// stamped by its From* constructor and checked by Build/decode.
// Version bumps when an incompatible change lands:
//
//   - removing or re-typing a field,
//   - changing the meaning of an existing field, or
//   - changing gate-type names (they are serialized symbolically, not
//     as enum ordinals, precisely so internal renumbering cannot
//     silently change the format).
//
// Adding a new optional field is compatible and does not bump the
// version. Decoders reject any version other than their own Version
// constant: within one stacked-PR codebase there is exactly one
// writer, so cross-version reading is deliberately out of scope until
// a real migration needs it.
//
// Two codecs are provided (Codecs): JSON for the HTTP service and
// anything human-inspectable, gob for dense same-binary transport.
// Both must round-trip losslessly; the golden tests in wire_test.go
// hold them to that over all twelve generated benchmark circuits.
package wire

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"fmt"
)

// Version is the wire-format version this package reads and writes
// for open-loop values. Version 2 re-typed Task.Circuit to a pointer
// and added the content-addressed by-ref task form
// (CircuitRef/FaultsRef): a task may reference its circuit and fault
// list by canonical SHA-256 instead of carrying them inline, and
// decoders must resolve those references against a blob store before
// building. A version-1 decoder rejects every version-2 task — by-ref
// or inline — outright.
const Version = 2

// VersionAdaptive is the wire-format version stamped on tasks and
// results that carry adaptive-campaign fields (Task.Adaptive,
// CampaignResult.Adaptive). An adaptive task run open-loop would be a
// silent semantic change — the worst possible failure for a
// determinism contract — so the adaptive fields deliberately ride a
// version bump instead of the usual optional-field compatibility: a
// version-2 decoder (an old daemon) REJECTS an adaptive task with a
// version error rather than executing it without the control loop.
// Non-adaptive values keep Version, so their canonical bytes, identity
// hashes, caches, and journals are untouched by the addition.
const VersionAdaptive = 3

// Circuit is the wire form of a combinational network. Gate order is
// the circuit's own gate order; fanins are gate indices, so the
// structure reconstructs exactly (names included) and re-derives
// fanout/levels/topological order on Build.
type Circuit struct {
	V       int    `json:"v"`
	Name    string `json:"name"`
	Gates   []Gate `json:"gates"`
	Inputs  []int  `json:"inputs"`
	Outputs []int  `json:"outputs"`
}

// Gate is one node of a wire Circuit. Type is the symbolic gate-type
// name ("AND", "XNOR", …), never the internal enum ordinal.
type Gate struct {
	Name  string `json:"name,omitempty"`
	Type  string `json:"type"`
	Fanin []int  `json:"fanin,omitempty"`
}

// Fault is the wire form of a stuck-at fault. Pin -1 addresses the
// output stem of Gate, Pin >= 0 the branch into input pin Pin.
type Fault struct {
	Gate  int   `json:"gate"`
	Pin   int   `json:"pin"`
	Stuck uint8 `json:"stuck"`
}

// Task is the wire form of one fault-simulation campaign: everything a
// worker anywhere needs to reproduce the campaign bit for bit. It
// deliberately carries no scheduling knobs (worker counts, shard
// sizes): those are execution details of whichever backend runs the
// task, and results are bit-identical across all of them, so they do
// not belong to task identity.
//
// The circuit and fault list travel in one of two forms: inline
// (Circuit / Faults) or by content address (CircuitRef / FaultsRef,
// the canonical SHA-256 of the corresponding blob — see Circuit.Hash
// and FaultsBlob). By-ref tasks must be resolved against a blob store
// (Resolve) before Build; IdentityHash is defined over the by-ref
// canonical form, so the two spellings of one task hash identically
// and hit the same cache entries.
type Task struct {
	V          int         `json:"v"`
	Label      string      `json:"label,omitempty"`
	Circuit    *Circuit    `json:"circuit,omitempty"`
	CircuitRef string      `json:"circuit_ref,omitempty"`
	Faults     []Fault     `json:"faults,omitempty"`
	FaultsRef  string      `json:"faults_ref,omitempty"`
	WeightSets [][]float64 `json:"weight_sets"`
	Patterns   int         `json:"patterns"`
	Seed       uint64      `json:"seed"`
	CurveStep  int         `json:"curve_step,omitempty"`
	// Adaptive, when present, makes the task a block-adaptive campaign
	// (wire version VersionAdaptive). It is part of IdentityHash: an
	// adaptive campaign and its open-loop twin are different campaigns
	// and must never share a cache entry.
	Adaptive *AdaptiveSpec `json:"adaptive,omitempty"`
}

// AdaptiveSpec is the wire form of an adaptive campaign's control-loop
// config (internal/adapt's Config). Everything here changes results,
// so everything here is task identity.
type AdaptiveSpec struct {
	Strategy       string  `json:"strategy"`
	BlockPatterns  int     `json:"block_patterns,omitempty"`
	StallRounds    int     `json:"stall_rounds,omitempty"`
	TargetCoverage float64 `json:"target_coverage,omitempty"`
	Epsilon        float64 `json:"epsilon,omitempty"`
	ReoptMaxSweeps int     `json:"reopt_max_sweeps,omitempty"`
}

// CoveragePoint is one sample of a coverage curve. Round and WeightSet
// attribute the sample's batch to the adaptive round and weight set
// that generated it; both are optional fields that encode away for
// open-loop single-set campaigns, keeping their canonical bytes
// unchanged.
type CoveragePoint struct {
	Patterns  int     `json:"patterns"`
	Detected  int     `json:"detected"`
	Coverage  float64 `json:"coverage"`
	Round     int     `json:"round,omitempty"`
	WeightSet int     `json:"weight_set,omitempty"`
}

// RoundStat is the wire form of one adaptive round's provenance.
type RoundStat struct {
	Round       int     `json:"round"`
	WeightSet   int     `json:"weight_set"`
	Patterns    int     `json:"patterns"`
	Detected    int     `json:"detected"`
	Coverage    float64 `json:"coverage"`
	Reoptimized bool    `json:"reoptimized,omitempty"`
}

// AdaptiveInfo is the wire form of an adaptive campaign's round
// provenance (sim.AdaptiveInfo).
type AdaptiveInfo struct {
	Strategy  string      `json:"strategy"`
	Rounds    []RoundStat `json:"rounds"`
	Reopts    int         `json:"reopts,omitempty"`
	ArmPulls  []int       `json:"arm_pulls,omitempty"`
	Stalled   bool        `json:"stalled,omitempty"`
	TargetHit bool        `json:"target_hit,omitempty"`
}

// CampaignResult is the wire form of a campaign report. Results of
// adaptive campaigns carry Adaptive and the VersionAdaptive stamp.
type CampaignResult struct {
	V             int             `json:"v"`
	TotalFaults   int             `json:"total_faults"`
	Detected      int             `json:"detected"`
	Patterns      int             `json:"patterns"`
	FirstDetected []int           `json:"first_detected"`
	Curve         []CoveragePoint `json:"curve"`
	Adaptive      *AdaptiveInfo   `json:"adaptive,omitempty"`
}

// OptimizeRequest asks the service to run the paper's OPTIMIZE
// procedure for a circuit and fault list. Zero-valued fields select
// the core package's documented defaults.
type OptimizeRequest struct {
	V          int     `json:"v"`
	Circuit    Circuit `json:"circuit"`
	Faults     []Fault `json:"faults"`
	Confidence float64 `json:"confidence,omitempty"`
	Quantize   float64 `json:"quantize,omitempty"`
	MaxSweeps  int     `json:"max_sweeps,omitempty"`
	Workers    int     `json:"workers,omitempty"`
}

// OptimizeResult is the wire form of an optimization report.
type OptimizeResult struct {
	V                  int       `json:"v"`
	Weights            []float64 `json:"weights"`
	InitialN           float64   `json:"initial_n"`
	FinalN             float64   `json:"final_n"`
	Sweeps             int       `json:"sweeps"`
	Analyses           int       `json:"analyses"`
	SuspectedRedundant int       `json:"suspected_redundant"`
}

// SweepRequest submits a batch of tasks; the service answers with one
// result per task, positionally.
type SweepRequest struct {
	V     int    `json:"v"`
	Tasks []Task `json:"tasks"`
}

// SweepResponse returns the batch results. Results[i] answers
// SweepRequest.Tasks[i]; CacheHits counts tasks served from the
// service's content-addressed result cache.
type SweepResponse struct {
	V         int              `json:"v"`
	Results   []CampaignResult `json:"results"`
	CacheHits int              `json:"cache_hits"`
}

// SweepEvent is one line of a streaming (NDJSON) sweep response: the
// service emits one event per task as it completes — in completion
// order, carrying the task's request index — then a trailer event
// with Done set and the batch's cache-hit count. A service-side
// failure travels as an event with Error set; the stream ends there.
//
// ElapsedNS is the task's own execution time on the service, in
// nanoseconds — not time since the batch started — so a streaming
// client reports per-task Elapsed consistent with local backends. It
// is zero for cache-served tasks (no execution happened) and absent
// from events written by older daemons (an optional field: no version
// bump, per the package policy).
type SweepEvent struct {
	V         int             `json:"v"`
	Index     int             `json:"index"`
	Result    *CampaignResult `json:"result,omitempty"`
	Cached    bool            `json:"cached,omitempty"`
	ElapsedNS int64           `json:"elapsed_ns,omitempty"`
	Error     string          `json:"error,omitempty"`
	Done      bool            `json:"done,omitempty"`
	CacheHits int             `json:"cache_hits,omitempty"`
}

// Health is the GET /v1/healthz payload: cheap liveness plus the
// daemon's role in a federated tree. Deliberately version-free —
// load balancers and federation health checkers must be able to read
// it from any daemon generation, and a liveness probe that rejects
// its peer over a format version would defeat its purpose. It is also
// never compressed: the payload is tiny and probers should not need
// content negotiation.
type Health struct {
	// Status is "ok" on a serving daemon.
	Status string `json:"status"`
	// Role is the daemon's place in a tree: "front" (routes to
	// upstream leaves), "leaf" (an operator-applied label on fleet
	// members), or "standalone".
	Role string `json:"role"`
	// Ready reports whether the daemon is accepting work. A draining
	// daemon may answer liveness with Ready false; federation fronts
	// route around it.
	Ready bool `json:"ready"`
	// UptimeSeconds is the daemon's time since start.
	UptimeSeconds float64 `json:"uptime_seconds"`
}

// CheckVersion rejects any wire version other than Version (see the
// package comment for the policy). Envelopes and open-loop values use
// it directly; values that may legitimately carry VersionAdaptive
// (tasks, campaign results) go through checkValueVersion instead.
func CheckVersion(v int) error {
	if v != Version {
		return fmt.Errorf("wire: version %d not supported (want %d)", v, Version)
	}
	return nil
}

// checkValueVersion enforces the version/payload pairing of a value
// that may be adaptive: open-loop values must carry Version, adaptive
// ones VersionAdaptive. A mismatch either way is rejected — in
// particular an adaptive payload under the open-loop version, which
// an old decoder would otherwise misread as a plain campaign.
func checkValueVersion(v int, adaptive bool) error {
	want := Version
	if adaptive {
		want = VersionAdaptive
	}
	if v != want {
		if adaptive {
			return fmt.Errorf("wire: adaptive value carries version %d (want %d)", v, want)
		}
		return CheckVersion(v)
	}
	return nil
}

// Codec is one self-contained encoding of the wire types. Marshal must
// be deterministic: equal values encode to equal bytes.
type Codec struct {
	Name      string
	Marshal   func(v any) ([]byte, error)
	Unmarshal func(data []byte, v any) error
}

// JSON is the primary codec: deterministic, human-inspectable, and the
// body format of the HTTP service.
var JSON = Codec{
	Name:    "json",
	Marshal: json.Marshal,
	Unmarshal: func(data []byte, v any) error {
		return json.Unmarshal(data, v)
	},
}

// Gob is the dense binary codec for same-binary transport (work files,
// process pools sharing one build).
var Gob = Codec{
	Name: "gob",
	Marshal: func(v any) ([]byte, error) {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(v); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	},
	Unmarshal: func(data []byte, v any) error {
		return gob.NewDecoder(bytes.NewReader(data)).Decode(v)
	},
}

// Codecs lists every supported codec.
var Codecs = []Codec{JSON, Gob}
