package wire

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"optirand/internal/adapt"
	"optirand/internal/engine"
	"optirand/internal/fault"
	"optirand/internal/gen"
	"optirand/internal/sim"
)

// goldenCircuitHash pins the canonical JSON bytes of every generated
// benchmark circuit. A mismatch means the wire format changed: either
// bump Version (incompatible change) or revert (accidental drift). The
// values were produced by hashing JSON.Marshal(FromCircuit(b.Build())).
var goldenCircuitHash = map[string]string{
	"s1":    "bf959f1d96b408a699a6d9194f8adfa0f920c701ec7a961e38391c0a56b65cd1",
	"s2":    "f4db8d6013fe82aeb1c06eb405994da0cd776562a8f5c2a4d35bedce2ba60b49",
	"c432":  "c86cd02c277b018ae62df0dae6c3a3126425484347b8759caf25edaa5588f229",
	"c499":  "a4ca458268073217b1f67de25ef0cb23544b33ce589f700524c70f08c8e6424e",
	"c880":  "60f836c7a4cfcaa3fd75787192235f3bd89879332da546be4b1218ad417bc1cc",
	"c1355": "ffe53437f8bfcaca4d609f1ae00e1c2072988b6e1ffbb3ac14c54a3c6884fce3",
	"c1908": "8bc71e5b25fd75b82d5cb51699cdf686c7d39d8d95148ef9a6b446ad71a5a1d6",
	"c2670": "9116a701947977faf921b959b947812deb1506a9c9af533c126c0a646df70d96",
	"c3540": "a6e0ce4854645aa58989ebf0a6d2b923462b90b150dd6d5b0bd24c219b321b99",
	"c5315": "94a407937f5f2c13c7637dda781e202dc242a1b8f7befd80b8104009c9c04dd6",
	"c6288": "f26fc0e147e2047d656d67e0098c02631b1d3fee3402e927d932a3833249020a",
	"c7552": "8141351b6a404fb8b8b2c216ef1f49e9b3d03675dfac977f98b47a6b642c5dfa",
}

// TestCircuitRoundTripAllBenchmarks proves circuit → wire → circuit is
// lossless for all twelve generated benchmark circuits, under both
// codecs, and that the canonical JSON bytes match the goldens.
func TestCircuitRoundTripAllBenchmarks(t *testing.T) {
	bs := gen.Benchmarks()
	if len(bs) != 12 {
		t.Fatalf("expected 12 benchmark circuits, found %d", len(bs))
	}
	for _, b := range bs {
		c := b.Build()
		w := FromCircuit(c)

		canonical, err := JSON.Marshal(w)
		if err != nil {
			t.Fatalf("%s: marshal: %v", b.Name, err)
		}
		sum := sha256.Sum256(canonical)
		if got, want := hex.EncodeToString(sum[:]), goldenCircuitHash[b.Name]; got != want {
			t.Errorf("%s: canonical wire bytes changed: hash %s, golden %s", b.Name, got, want)
		}

		for _, codec := range Codecs {
			data, err := codec.Marshal(w)
			if err != nil {
				t.Fatalf("%s/%s: marshal: %v", b.Name, codec.Name, err)
			}
			var back Circuit
			if err := codec.Unmarshal(data, &back); err != nil {
				t.Fatalf("%s/%s: unmarshal: %v", b.Name, codec.Name, err)
			}
			rc, err := back.Build()
			if err != nil {
				t.Fatalf("%s/%s: rebuild: %v", b.Name, codec.Name, err)
			}
			if rc.Name != c.Name ||
				!reflect.DeepEqual(rc.Gates, c.Gates) ||
				!reflect.DeepEqual(rc.Inputs, c.Inputs) ||
				!reflect.DeepEqual(rc.Outputs, c.Outputs) {
				t.Fatalf("%s/%s: reconstructed circuit differs structurally", b.Name, codec.Name)
			}

			// Marshal must be deterministic: re-encoding the decoded
			// value reproduces the bytes.
			again, err := codec.Marshal(&back)
			if err != nil {
				t.Fatalf("%s/%s: re-marshal: %v", b.Name, codec.Name, err)
			}
			if string(again) != string(data) {
				t.Fatalf("%s/%s: codec is not deterministic", b.Name, codec.Name)
			}
		}
	}
}

// TestCircuitRoundTripBehavior goes beyond structure: a campaign run on
// a reconstructed circuit must be bit-identical to one on the original.
func TestCircuitRoundTripBehavior(t *testing.T) {
	for _, name := range []string{"s1", "c432", "c1908"} {
		b, ok := gen.ByName(name)
		if !ok {
			t.Fatalf("missing benchmark %s", name)
		}
		c := b.Build()
		var back Circuit
		data, _ := JSON.Marshal(FromCircuit(c))
		if err := JSON.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		rc, err := back.Build()
		if err != nil {
			t.Fatal(err)
		}
		faults := fault.New(c).Reps
		rfaults := fault.New(rc).Reps
		if !reflect.DeepEqual(faults, rfaults) {
			t.Fatalf("%s: fault universe differs after round trip", name)
		}
		weights := make([]float64, c.NumInputs())
		for i := range weights {
			weights[i] = 0.5
		}
		ref := sim.RunCampaign(c, faults, weights, 512, 1987, 128)
		got := sim.RunCampaign(rc, rfaults, weights, 512, 1987, 128)
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("%s: campaign on reconstructed circuit differs", name)
		}
	}
}

// testTask builds a small but representative wire task.
func testTask(t *testing.T) *Task {
	t.Helper()
	b, ok := gen.ByName("c432")
	if !ok {
		t.Fatal("missing benchmark c432")
	}
	c := b.Build()
	faults := fault.New(c).Reps
	n := c.NumInputs()
	uniform := make([]float64, n)
	skewed := make([]float64, n)
	for i := range uniform {
		uniform[i] = 0.5
		skewed[i] = 0.05 + 0.9*float64(i)/float64(n)
	}
	return &Task{
		V:          Version,
		Label:      "c432/mixture#0",
		Circuit:    FromCircuit(c),
		Faults:     FromFaults(faults),
		WeightSets: [][]float64{uniform, skewed},
		Patterns:   320,
		Seed:       0xdeadbeefcafe,
		CurveStep:  100,
	}
}

// TestTaskRoundTrip proves a task survives both codecs and that the
// rebuilt engine task reproduces the original campaign bit for bit.
func TestTaskRoundTrip(t *testing.T) {
	w := testTask(t)
	ref, err := w.Build()
	if err != nil {
		t.Fatal(err)
	}
	refRes := ref.Execute()

	for _, codec := range Codecs {
		data, err := codec.Marshal(w)
		if err != nil {
			t.Fatalf("%s: marshal: %v", codec.Name, err)
		}
		var back Task
		if err := codec.Unmarshal(data, &back); err != nil {
			t.Fatalf("%s: unmarshal: %v", codec.Name, err)
		}
		task, err := back.Build()
		if err != nil {
			t.Fatalf("%s: build: %v", codec.Name, err)
		}
		if task.Label != ref.Label || task.Patterns != ref.Patterns ||
			task.Seed != ref.Seed || task.CurveStep != ref.CurveStep ||
			!reflect.DeepEqual(task.WeightSets, ref.WeightSets) ||
			!reflect.DeepEqual(task.Faults, ref.Faults) {
			t.Fatalf("%s: rebuilt task differs", codec.Name)
		}
		res := task.Execute()
		if !reflect.DeepEqual(res.Campaign, refRes.Campaign) {
			t.Fatalf("%s: campaign of rebuilt task differs", codec.Name)
		}
	}
}

// TestCampaignResultRoundTrip checks the result type under both codecs.
func TestCampaignResultRoundTrip(t *testing.T) {
	task, err := testTask(t).Build()
	if err != nil {
		t.Fatal(err)
	}
	ref := task.Execute().Campaign
	w := FromCampaign(ref)
	for _, codec := range Codecs {
		data, err := codec.Marshal(w)
		if err != nil {
			t.Fatalf("%s: marshal: %v", codec.Name, err)
		}
		var back CampaignResult
		if err := codec.Unmarshal(data, &back); err != nil {
			t.Fatalf("%s: unmarshal: %v", codec.Name, err)
		}
		res, err := back.Build()
		if err != nil {
			t.Fatalf("%s: build: %v", codec.Name, err)
		}
		if !reflect.DeepEqual(res, ref) {
			t.Fatalf("%s: campaign result differs after round trip", codec.Name)
		}
	}
}

// TestIdentityHash checks the content-address properties the result
// cache depends on: stable under relabeling, sensitive to every
// identity coordinate.
func TestIdentityHash(t *testing.T) {
	base := testTask(t)
	h := base.IdentityHash()
	if len(h) != 64 {
		t.Fatalf("hash length %d, want 64 hex chars", len(h))
	}

	relabeled := *base
	relabeled.Label = "some/other/name#9"
	if relabeled.IdentityHash() != h {
		t.Error("label must not affect task identity")
	}

	mutations := map[string]func(*Task){
		"seed":     func(w *Task) { w.Seed++ },
		"patterns": func(w *Task) { w.Patterns++ },
		"curve":    func(w *Task) { w.CurveStep++ },
		"weights":  func(w *Task) { w.WeightSets = copyWeightSets(w.WeightSets); w.WeightSets[0][0] = 0.25 },
		"faults":   func(w *Task) { w.Faults = append([]Fault(nil), w.Faults[:len(w.Faults)-1]...) },
		"circuit": func(w *Task) {
			c := *w.Circuit
			c.Name = "renamed"
			w.Circuit = &c
		},
	}
	for name, mutate := range mutations {
		m := *base
		mutate(&m)
		if m.IdentityHash() == h {
			t.Errorf("mutation %q did not change the identity hash", name)
		}
	}

	// The content-addressed spelling is the canonical form IdentityHash
	// is defined over: a by-ref task must hash identically to its
	// inline original, or the daemon's result cache would split on
	// transport spelling.
	ref, circuitBlob, faultsBlob := base.ByRef()
	if ref.IdentityHash() != h {
		t.Error("by-ref task hashes differently from its inline form")
	}
	if circuitBlob == nil || faultsBlob == nil {
		t.Fatal("ByRef returned no blobs for an inline task")
	}
	if HashBytes(circuitBlob) != ref.CircuitRef || HashBytes(faultsBlob) != ref.FaultsRef {
		t.Error("blob content addresses do not match the refs the task carries")
	}
}

// TestTaskByRefResolveRoundTrip proves the content-addressed spelling
// is lossless: ByRef then Resolve reproduces the inline task exactly,
// and the rebuilt engine task runs the identical campaign.
func TestTaskByRefResolveRoundTrip(t *testing.T) {
	base := testTask(t)
	ref, circuitBlob, faultsBlob := base.ByRef()
	if ref.Circuit != nil || ref.Faults != nil {
		t.Fatal("by-ref task still carries inline payloads")
	}

	// A by-ref task must not build before resolution.
	if _, err := ref.Build(); err == nil || !strings.Contains(err.Error(), "unresolved") {
		t.Fatalf("unresolved by-ref task built, err=%v", err)
	}

	blobs := map[string][]byte{ref.CircuitRef: circuitBlob, ref.FaultsRef: faultsBlob}
	resolved := ref
	if err := resolved.Resolve(func(h string) ([]byte, bool) { d, ok := blobs[h]; return d, ok }); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resolved.Circuit, base.Circuit) || !reflect.DeepEqual(resolved.Faults, base.Faults) {
		t.Fatal("resolved task differs from the inline original")
	}

	refTask, err := resolved.Build()
	if err != nil {
		t.Fatal(err)
	}
	inlineTask, err := base.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(refTask.Execute().Campaign, inlineTask.Execute().Campaign) {
		t.Fatal("campaign of resolved by-ref task differs from inline")
	}

	// A missing blob is a typed, retryable error naming the hash.
	missing := ref
	err = missing.Resolve(func(string) ([]byte, bool) { return nil, false })
	var unresolved *UnresolvedRefError
	if !errors.As(err, &unresolved) || unresolved.Hash != ref.CircuitRef {
		t.Fatalf("missing blob: err=%v, want *UnresolvedRefError for the circuit ref", err)
	}

	// Carrying both spellings of one component is ambiguous.
	both := *base
	both.CircuitRef = ref.CircuitRef
	if _, err := both.Build(); err == nil || !strings.Contains(err.Error(), "both") {
		t.Fatalf("task with inline circuit and circuit ref accepted, err=%v", err)
	}
}

// TestVersionNegotiationOldDecoder replays the version-1 decoder's
// logic (decode, then reject any v != 1) against current tasks: a
// version-2 task — by-ref especially — must be rejected outright by
// the version check, before the old decoder could trip over fields it
// does not know. This is the negotiation contract the client's inline
// fallback depends on: an old daemon says "version 2 not supported",
// it never half-interprets a by-ref task as an empty circuit.
func TestVersionNegotiationOldDecoder(t *testing.T) {
	const oldVersion = Version - 1
	// oldDecode is what a version-1 Task.Build did first: version-gate
	// the value before looking at any payload field.
	oldDecode := func(data []byte) error {
		var v struct {
			V int `json:"v"`
		}
		if err := json.Unmarshal(data, &v); err != nil {
			return err
		}
		if v.V != oldVersion {
			return fmt.Errorf("wire: version %d not supported (want %d)", v.V, oldVersion)
		}
		return nil
	}

	inline := testTask(t)
	byref, _, _ := inline.ByRef()
	for name, task := range map[string]*Task{"inline": inline, "by-ref": &byref} {
		data, err := JSON.Marshal(task)
		if err != nil {
			t.Fatal(err)
		}
		if err := oldDecode(data); err == nil || !strings.Contains(err.Error(), "version") {
			t.Errorf("%s v%d task accepted by a v%d decoder, err=%v", name, Version, oldVersion, err)
		}
	}
}

// TestVersionRejected proves decoders refuse foreign format versions.
func TestVersionRejected(t *testing.T) {
	w := testTask(t)
	w.V = Version + 1
	if _, err := w.Build(); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("future-version task accepted, err=%v", err)
	}
	c := FromCircuit(mustCircuit(t).Build())
	c.V = 0
	if _, err := c.Build(); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("zero-version circuit accepted, err=%v", err)
	}
	r := &CampaignResult{V: Version - 1}
	if _, err := r.Build(); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("old-version result accepted, err=%v", err)
	}
}

func mustCircuit(t *testing.T) *gen.Benchmark {
	t.Helper()
	b, ok := gen.ByName("c432")
	if !ok {
		t.Fatal("missing benchmark c432")
	}
	return &b
}

// TestBuildRejectsCorruptWire checks structural validation of hostile
// or truncated wire data.
func TestBuildRejectsCorruptWire(t *testing.T) {
	w := testTask(t)

	badType := *w
	bc := *w.Circuit
	bc.Gates = append([]Gate(nil), w.Circuit.Gates...)
	bc.Gates[0].Type = "FLUX"
	badType.Circuit = &bc
	if _, err := badType.Build(); err == nil {
		t.Error("unknown gate type accepted")
	}

	badFault := *w
	badFault.Faults = append([]Fault(nil), w.Faults...)
	badFault.Faults[0].Gate = len(w.Circuit.Gates) + 7
	if _, err := badFault.Build(); err == nil {
		t.Error("out-of-range fault accepted")
	}

	badStuck := *w
	badStuck.Faults = append([]Fault(nil), w.Faults...)
	badStuck.Faults[0].Stuck = 2
	if _, err := badStuck.Build(); err == nil {
		t.Error("stuck-at-2 fault accepted")
	}

	badWeights := *w
	badWeights.WeightSets = [][]float64{{0.5}}
	if _, err := badWeights.Build(); err == nil {
		t.Error("short weight set accepted")
	}
}

// TestSchedulingKnobsExcludedFromIdentity: the engine's intra-campaign
// scheduling knobs (fault-shard workers, pattern shards, good-machine
// mode) cannot change results, so they must not change a task's
// content address either.
func TestSchedulingKnobsExcludedFromIdentity(t *testing.T) {
	b, _ := gen.ByName("c432")
	c := b.Build()
	faults := fault.New(c).Reps
	weights := make([]float64, c.NumInputs())
	for i := range weights {
		weights[i] = 0.5
	}
	task := &engine.Task{
		Label: "plain", Circuit: c, Faults: faults,
		WeightSets: [][]float64{weights}, Patterns: 128, Seed: 9,
	}
	knobbed := *task
	knobbed.Label = "knobbed"
	knobbed.SimWorkers = 8
	knobbed.SimShards = 4
	knobbed.GoodMachine = sim.GoodMachineShared
	if FromTask(task).IdentityHash() != FromTask(&knobbed).IdentityHash() {
		t.Fatal("scheduling knobs leaked into the task's wire identity")
	}
}

// adaptiveTestTask returns testTask upgraded to an adaptive bandit
// campaign (the two weight sets become the arms).
func adaptiveTestTask(t *testing.T) *engine.Task {
	t.Helper()
	wt := testTask(t)
	et, err := wt.Build()
	if err != nil {
		t.Fatal(err)
	}
	et.Adaptive = &adapt.Config{
		Strategy:       adapt.StrategyBandit,
		BlockPatterns:  128,
		StallRounds:    2,
		TargetCoverage: 0.97,
		Epsilon:        0.1,
	}
	return et
}

// TestAdaptiveTaskRoundTrip: an adaptive task survives both codecs,
// carries VersionAdaptive, and its rebuilt form executes to the same
// campaign — including the round provenance — as the original.
func TestAdaptiveTaskRoundTrip(t *testing.T) {
	et := adaptiveTestTask(t)
	w := FromTask(et)
	if w.V != VersionAdaptive {
		t.Fatalf("adaptive task stamped v%d, want %d", w.V, VersionAdaptive)
	}
	for _, codec := range Codecs {
		data, err := codec.Marshal(w)
		if err != nil {
			t.Fatalf("%s: %v", codec.Name, err)
		}
		var back Task
		if err := codec.Unmarshal(data, &back); err != nil {
			t.Fatalf("%s: %v", codec.Name, err)
		}
		rebuilt, err := back.Build()
		if err != nil {
			t.Fatalf("%s: %v", codec.Name, err)
		}
		if !reflect.DeepEqual(rebuilt.Adaptive, et.Adaptive) {
			t.Fatalf("%s: adaptive config did not survive: %+v vs %+v", codec.Name, rebuilt.Adaptive, et.Adaptive)
		}
		if !reflect.DeepEqual(rebuilt.Execute().Campaign, et.Execute().Campaign) {
			t.Fatalf("%s: rebuilt adaptive task executes differently", codec.Name)
		}
	}
}

// TestAdaptiveResultRoundTrip: an adaptive campaign report — rounds,
// arm pulls, attributed curve — survives the wire exactly.
func TestAdaptiveResultRoundTrip(t *testing.T) {
	res := adaptiveTestTask(t).Execute().Campaign
	if res.Adaptive == nil || len(res.Adaptive.Rounds) == 0 {
		t.Fatalf("want an adaptive result with rounds, got %+v", res.Adaptive)
	}
	w := FromCampaign(res)
	if w.V != VersionAdaptive {
		t.Fatalf("adaptive result stamped v%d, want %d", w.V, VersionAdaptive)
	}
	for _, codec := range Codecs {
		data, err := codec.Marshal(w)
		if err != nil {
			t.Fatalf("%s: %v", codec.Name, err)
		}
		var back CampaignResult
		if err := codec.Unmarshal(data, &back); err != nil {
			t.Fatalf("%s: %v", codec.Name, err)
		}
		rebuilt, err := back.Build()
		if err != nil {
			t.Fatalf("%s: %v", codec.Name, err)
		}
		if !reflect.DeepEqual(rebuilt, res) {
			t.Fatalf("%s: adaptive result did not round-trip:\n%+v\nvs\n%+v", codec.Name, rebuilt, res)
		}
	}
}

// TestAdaptiveVersionNegotiation proves an old (version-2) daemon
// cleanly rejects adaptive tasks instead of silently running them
// open-loop: the adaptive stamp fails the old decoder's version gate
// before any payload field is interpreted. It also pins the other
// directions: the current decoder rejects an adaptive payload
// smuggled under v2 and a v3 stamp with no adaptive payload.
func TestAdaptiveVersionNegotiation(t *testing.T) {
	w := FromTask(adaptiveTestTask(t))

	// The version-2 decoder's first move, replayed byte for byte:
	// version-gate before payload.
	oldDecode := func(data []byte) error {
		var v struct {
			V int `json:"v"`
		}
		if err := json.Unmarshal(data, &v); err != nil {
			return err
		}
		if v.V != Version {
			return fmt.Errorf("wire: version %d not supported (want %d)", v.V, Version)
		}
		return nil
	}
	data, err := JSON.Marshal(w)
	if err != nil {
		t.Fatal(err)
	}
	if err := oldDecode(data); err == nil || !strings.Contains(err.Error(), "version 3") {
		t.Fatalf("old daemon accepted an adaptive task (err=%v) — it would run open-loop", err)
	}

	// Adaptive payload under the open-loop version: malformed, rejected.
	smuggled := *w
	smuggled.V = Version
	if _, err := smuggled.Build(); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("v2-stamped adaptive task accepted, err=%v", err)
	}

	// VersionAdaptive without the payload that justifies it: rejected.
	bare := testTask(t)
	bare.V = VersionAdaptive
	if _, err := bare.Build(); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("v3-stamped open-loop task accepted, err=%v", err)
	}

	// Same pairing rule for results.
	res := &CampaignResult{V: Version, Adaptive: &AdaptiveInfo{Strategy: "reopt"}}
	if _, err := res.Build(); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("v2-stamped adaptive result accepted, err=%v", err)
	}
}

// TestAdaptiveIdentityHash: the adaptive config is part of task
// identity — an adaptive campaign must never share a cache entry with
// its open-loop twin or with a differently configured loop — while
// open-loop tasks hash exactly as before the field existed.
func TestAdaptiveIdentityHash(t *testing.T) {
	et := adaptiveTestTask(t)
	open := *et
	open.Adaptive = nil
	h := FromTask(et).IdentityHash()
	if h == FromTask(&open).IdentityHash() {
		t.Fatal("adaptive task shares identity with its open-loop twin")
	}
	tweaked := *et
	cfg := *et.Adaptive
	cfg.BlockPatterns = 256
	tweaked.Adaptive = &cfg
	if h == FromTask(&tweaked).IdentityHash() {
		t.Fatal("different adaptive configs share a task identity")
	}
	// The by-ref spelling hashes identically, like every task.
	ref, _, _ := FromTask(et).ByRef()
	if ref.IdentityHash() != h {
		t.Fatal("adaptive by-ref task hashes differently from inline")
	}
}
