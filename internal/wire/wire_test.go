package wire

import (
	"crypto/sha256"
	"encoding/hex"
	"reflect"
	"strings"
	"testing"

	"optirand/internal/fault"
	"optirand/internal/gen"
	"optirand/internal/sim"
)

// goldenCircuitHash pins the canonical JSON bytes of every generated
// benchmark circuit. A mismatch means the wire format changed: either
// bump Version (incompatible change) or revert (accidental drift). The
// values were produced by hashing JSON.Marshal(FromCircuit(b.Build())).
var goldenCircuitHash = map[string]string{
	"s1":    "ce6b96885b9e1e0a86bd7a2660bb1d707290070656dbfd332abb48013a23c7fd",
	"s2":    "321cfdb5830104a8fe6b906a1fb9c2a91c3cf3b9a5962b5fdebc07cd9474a5b2",
	"c432":  "d804f3c509aee9390d6187f025e60ab0236b35a3b7b93f737d6d6a3b3e483207",
	"c499":  "0b0419b6c1e1474984df5d8753cef9d53abea323843fa031807481eddc5452e3",
	"c880":  "1584ba35e60282815a5f00362cf8a168373c2282b53030fa5dd6ff837f29261c",
	"c1355": "955525acc8963931c534ff7481e61c1ae50e0b0103cf651a4aaac60d14808952",
	"c1908": "2c8fe3773070fc91c09aa0a9fcf6626ec3176fbb17736377548c1d9f193441b2",
	"c2670": "0c49f63a503253aa73f5bb13ae92d60d934fdfd59a8a8066fcbb27c4df8962ad",
	"c3540": "18d57461f06da24cd1f658db7a612fcacb393cb0ee55115411a47d0b6acb1ecf",
	"c5315": "87b37b0446e494631494403ab6d6cdfa011f98061b4a3f600e8a9be16a7570f2",
	"c6288": "8ebb78ed288f6257db66eb0a627ab9ffed2383e76bcbf4f4b29e6a32139aaedc",
	"c7552": "aa87b4f5686f818c73f01c249661647333153d17d3ca4e673332a4c6e764a7c8",
}

// TestCircuitRoundTripAllBenchmarks proves circuit → wire → circuit is
// lossless for all twelve generated benchmark circuits, under both
// codecs, and that the canonical JSON bytes match the goldens.
func TestCircuitRoundTripAllBenchmarks(t *testing.T) {
	bs := gen.Benchmarks()
	if len(bs) != 12 {
		t.Fatalf("expected 12 benchmark circuits, found %d", len(bs))
	}
	for _, b := range bs {
		c := b.Build()
		w := FromCircuit(c)

		canonical, err := JSON.Marshal(w)
		if err != nil {
			t.Fatalf("%s: marshal: %v", b.Name, err)
		}
		sum := sha256.Sum256(canonical)
		if got, want := hex.EncodeToString(sum[:]), goldenCircuitHash[b.Name]; got != want {
			t.Errorf("%s: canonical wire bytes changed: hash %s, golden %s", b.Name, got, want)
		}

		for _, codec := range Codecs {
			data, err := codec.Marshal(w)
			if err != nil {
				t.Fatalf("%s/%s: marshal: %v", b.Name, codec.Name, err)
			}
			var back Circuit
			if err := codec.Unmarshal(data, &back); err != nil {
				t.Fatalf("%s/%s: unmarshal: %v", b.Name, codec.Name, err)
			}
			rc, err := back.Build()
			if err != nil {
				t.Fatalf("%s/%s: rebuild: %v", b.Name, codec.Name, err)
			}
			if rc.Name != c.Name ||
				!reflect.DeepEqual(rc.Gates, c.Gates) ||
				!reflect.DeepEqual(rc.Inputs, c.Inputs) ||
				!reflect.DeepEqual(rc.Outputs, c.Outputs) {
				t.Fatalf("%s/%s: reconstructed circuit differs structurally", b.Name, codec.Name)
			}

			// Marshal must be deterministic: re-encoding the decoded
			// value reproduces the bytes.
			again, err := codec.Marshal(&back)
			if err != nil {
				t.Fatalf("%s/%s: re-marshal: %v", b.Name, codec.Name, err)
			}
			if string(again) != string(data) {
				t.Fatalf("%s/%s: codec is not deterministic", b.Name, codec.Name)
			}
		}
	}
}

// TestCircuitRoundTripBehavior goes beyond structure: a campaign run on
// a reconstructed circuit must be bit-identical to one on the original.
func TestCircuitRoundTripBehavior(t *testing.T) {
	for _, name := range []string{"s1", "c432", "c1908"} {
		b, ok := gen.ByName(name)
		if !ok {
			t.Fatalf("missing benchmark %s", name)
		}
		c := b.Build()
		var back Circuit
		data, _ := JSON.Marshal(FromCircuit(c))
		if err := JSON.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		rc, err := back.Build()
		if err != nil {
			t.Fatal(err)
		}
		faults := fault.New(c).Reps
		rfaults := fault.New(rc).Reps
		if !reflect.DeepEqual(faults, rfaults) {
			t.Fatalf("%s: fault universe differs after round trip", name)
		}
		weights := make([]float64, c.NumInputs())
		for i := range weights {
			weights[i] = 0.5
		}
		ref := sim.RunCampaign(c, faults, weights, 512, 1987, 128)
		got := sim.RunCampaign(rc, rfaults, weights, 512, 1987, 128)
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("%s: campaign on reconstructed circuit differs", name)
		}
	}
}

// testTask builds a small but representative wire task.
func testTask(t *testing.T) *Task {
	t.Helper()
	b, ok := gen.ByName("c432")
	if !ok {
		t.Fatal("missing benchmark c432")
	}
	c := b.Build()
	faults := fault.New(c).Reps
	n := c.NumInputs()
	uniform := make([]float64, n)
	skewed := make([]float64, n)
	for i := range uniform {
		uniform[i] = 0.5
		skewed[i] = 0.05 + 0.9*float64(i)/float64(n)
	}
	return &Task{
		V:          Version,
		Label:      "c432/mixture#0",
		Circuit:    *FromCircuit(c),
		Faults:     FromFaults(faults),
		WeightSets: [][]float64{uniform, skewed},
		Patterns:   320,
		Seed:       0xdeadbeefcafe,
		CurveStep:  100,
	}
}

// TestTaskRoundTrip proves a task survives both codecs and that the
// rebuilt engine task reproduces the original campaign bit for bit.
func TestTaskRoundTrip(t *testing.T) {
	w := testTask(t)
	ref, err := w.Build()
	if err != nil {
		t.Fatal(err)
	}
	refRes := ref.Execute()

	for _, codec := range Codecs {
		data, err := codec.Marshal(w)
		if err != nil {
			t.Fatalf("%s: marshal: %v", codec.Name, err)
		}
		var back Task
		if err := codec.Unmarshal(data, &back); err != nil {
			t.Fatalf("%s: unmarshal: %v", codec.Name, err)
		}
		task, err := back.Build()
		if err != nil {
			t.Fatalf("%s: build: %v", codec.Name, err)
		}
		if task.Label != ref.Label || task.Patterns != ref.Patterns ||
			task.Seed != ref.Seed || task.CurveStep != ref.CurveStep ||
			!reflect.DeepEqual(task.WeightSets, ref.WeightSets) ||
			!reflect.DeepEqual(task.Faults, ref.Faults) {
			t.Fatalf("%s: rebuilt task differs", codec.Name)
		}
		res := task.Execute()
		if !reflect.DeepEqual(res.Campaign, refRes.Campaign) {
			t.Fatalf("%s: campaign of rebuilt task differs", codec.Name)
		}
	}
}

// TestCampaignResultRoundTrip checks the result type under both codecs.
func TestCampaignResultRoundTrip(t *testing.T) {
	task, err := testTask(t).Build()
	if err != nil {
		t.Fatal(err)
	}
	ref := task.Execute().Campaign
	w := FromCampaign(ref)
	for _, codec := range Codecs {
		data, err := codec.Marshal(w)
		if err != nil {
			t.Fatalf("%s: marshal: %v", codec.Name, err)
		}
		var back CampaignResult
		if err := codec.Unmarshal(data, &back); err != nil {
			t.Fatalf("%s: unmarshal: %v", codec.Name, err)
		}
		res, err := back.Build()
		if err != nil {
			t.Fatalf("%s: build: %v", codec.Name, err)
		}
		if !reflect.DeepEqual(res, ref) {
			t.Fatalf("%s: campaign result differs after round trip", codec.Name)
		}
	}
}

// TestIdentityHash checks the content-address properties the result
// cache depends on: stable under relabeling, sensitive to every
// identity coordinate.
func TestIdentityHash(t *testing.T) {
	base := testTask(t)
	h := base.IdentityHash()
	if len(h) != 64 {
		t.Fatalf("hash length %d, want 64 hex chars", len(h))
	}

	relabeled := *base
	relabeled.Label = "some/other/name#9"
	if relabeled.IdentityHash() != h {
		t.Error("label must not affect task identity")
	}

	mutations := map[string]func(*Task){
		"seed":     func(w *Task) { w.Seed++ },
		"patterns": func(w *Task) { w.Patterns++ },
		"curve":    func(w *Task) { w.CurveStep++ },
		"weights":  func(w *Task) { w.WeightSets = copyWeightSets(w.WeightSets); w.WeightSets[0][0] = 0.25 },
		"faults":   func(w *Task) { w.Faults = append([]Fault(nil), w.Faults[:len(w.Faults)-1]...) },
		"circuit":  func(w *Task) { w.Circuit.Name = "renamed" },
	}
	for name, mutate := range mutations {
		m := *base
		mutate(&m)
		if m.IdentityHash() == h {
			t.Errorf("mutation %q did not change the identity hash", name)
		}
	}
}

// TestVersionRejected proves decoders refuse foreign format versions.
func TestVersionRejected(t *testing.T) {
	w := testTask(t)
	w.V = Version + 1
	if _, err := w.Build(); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("future-version task accepted, err=%v", err)
	}
	c := FromCircuit(mustCircuit(t).Build())
	c.V = 0
	if _, err := c.Build(); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("zero-version circuit accepted, err=%v", err)
	}
	r := &CampaignResult{V: Version - 1}
	if _, err := r.Build(); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("old-version result accepted, err=%v", err)
	}
}

func mustCircuit(t *testing.T) *gen.Benchmark {
	t.Helper()
	b, ok := gen.ByName("c432")
	if !ok {
		t.Fatal("missing benchmark c432")
	}
	return &b
}

// TestBuildRejectsCorruptWire checks structural validation of hostile
// or truncated wire data.
func TestBuildRejectsCorruptWire(t *testing.T) {
	w := testTask(t)

	badType := *w
	badType.Circuit.Gates = append([]Gate(nil), w.Circuit.Gates...)
	badType.Circuit.Gates[0].Type = "FLUX"
	if _, err := badType.Build(); err == nil {
		t.Error("unknown gate type accepted")
	}

	badFault := *w
	badFault.Faults = append([]Fault(nil), w.Faults...)
	badFault.Faults[0].Gate = len(w.Circuit.Gates) + 7
	if _, err := badFault.Build(); err == nil {
		t.Error("out-of-range fault accepted")
	}

	badStuck := *w
	badStuck.Faults = append([]Fault(nil), w.Faults...)
	badStuck.Faults[0].Stuck = 2
	if _, err := badStuck.Build(); err == nil {
		t.Error("stuck-at-2 fault accepted")
	}

	badWeights := *w
	badWeights.WeightSets = [][]float64{{0.5}}
	if _, err := badWeights.Build(); err == nil {
		t.Error("short weight set accepted")
	}
}
