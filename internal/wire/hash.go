package wire

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// IdentityHash returns the content address of the task: the SHA-256 of
// its canonical JSON encoding with the display label cleared. Two tasks
// share a hash exactly when they must produce bit-identical campaigns —
// same circuit, fault list, weight sets, pattern budget, seed, and
// curve sampling — whatever they are called and however they are
// scheduled. The dist package's result cache keys on it.
func (t *Task) IdentityHash() string {
	id := *t
	id.Label = ""
	data, err := JSON.Marshal(&id)
	if err != nil {
		// The wire types contain only marshalable fields; failure here
		// is a programming error, not an input condition.
		panic(fmt.Sprintf("wire: canonical task encoding failed: %v", err))
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}
