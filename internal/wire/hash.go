package wire

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// HashBytes returns the hex SHA-256 of data — the content-address
// function shared by every blob kind (circuits, fault lists) and by
// task identity. Addresses are comparable across processes because
// they are computed over canonical wire bytes.
func HashBytes(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// mustMarshal encodes a wire value canonically. The wire types contain
// only marshalable fields; failure is a programming error, not an
// input condition.
func mustMarshal(v any) []byte {
	data, err := JSON.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("wire: canonical encoding failed: %v", err))
	}
	return data
}

// Blob returns the circuit's canonical bytes and their content
// address. The address is what a by-ref Task carries as CircuitRef
// and what the blob store files the bytes under.
func (w *Circuit) Blob() (data []byte, hash string) {
	data = mustMarshal(w)
	return data, HashBytes(data)
}

// Hash returns the circuit's content address without retaining the
// canonical bytes.
func (w *Circuit) Hash() string {
	_, h := w.Blob()
	return h
}

// DecodeCircuitBlob reconstructs a circuit blob stored by Blob,
// rejecting foreign wire versions.
func DecodeCircuitBlob(data []byte) (*Circuit, error) {
	var c Circuit
	if err := JSON.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("wire: bad circuit blob: %w", err)
	}
	if err := CheckVersion(c.V); err != nil {
		return nil, err
	}
	return &c, nil
}

// FaultsBlob returns a fault list's canonical bytes and their content
// address (the by-ref Task's FaultsRef). Fault lists carry no version
// field of their own: they are only meaningful inside a versioned
// Task, whose version gates decoding.
func FaultsBlob(fs []Fault) (data []byte, hash string) {
	data = mustMarshal(fs)
	return data, HashBytes(data)
}

// DecodeFaultsBlob reconstructs a fault-list blob stored by
// FaultsBlob.
func DecodeFaultsBlob(data []byte) ([]Fault, error) {
	var fs []Fault
	if err := JSON.Unmarshal(data, &fs); err != nil {
		return nil, fmt.Errorf("wire: bad fault-list blob: %w", err)
	}
	return fs, nil
}

// IdentityHash returns the content address of the task: the SHA-256 of
// its canonical JSON encoding with the display label cleared and the
// circuit and fault list replaced by their content addresses. Two
// tasks share a hash exactly when they must produce bit-identical
// campaigns — same circuit, fault list, weight sets, pattern budget,
// seed, and curve sampling — whatever they are called, however they
// are scheduled, and whichever spelling (inline or by-ref) they
// travel in. The dist package's result cache keys on it.
func (t *Task) IdentityHash() string {
	id := *t
	id.Label = ""
	if id.Circuit != nil {
		id.CircuitRef = id.Circuit.Hash()
		id.Circuit = nil
	}
	if id.Faults != nil {
		_, id.FaultsRef = FaultsBlob(id.Faults)
		id.Faults = nil
	}
	return HashBytes(mustMarshal(&id))
}
