package wire

import (
	"fmt"

	"optirand/internal/adapt"
	"optirand/internal/circuit"
	"optirand/internal/engine"
	"optirand/internal/fault"
	"optirand/internal/sim"
)

// gateTypes maps every gate type to its symbolic wire name and back.
// The wire names are frozen by the format version: renaming one is an
// incompatible change (see the package comment).
var gateTypes = []circuit.GateType{
	circuit.Input, circuit.Buf, circuit.Not,
	circuit.And, circuit.Nand, circuit.Or, circuit.Nor,
	circuit.Xor, circuit.Xnor, circuit.Const0, circuit.Const1,
}

var gateTypeByName = func() map[string]circuit.GateType {
	m := make(map[string]circuit.GateType, len(gateTypes))
	for _, t := range gateTypes {
		m[t.String()] = t
	}
	return m
}()

// FromCircuit captures c in wire form.
func FromCircuit(c *circuit.Circuit) *Circuit {
	w := &Circuit{
		V:       Version,
		Name:    c.Name,
		Gates:   make([]Gate, len(c.Gates)),
		Inputs:  append([]int(nil), c.Inputs...),
		Outputs: append([]int(nil), c.Outputs...),
	}
	for i := range c.Gates {
		g := &c.Gates[i]
		w.Gates[i] = Gate{
			Name:  g.Name,
			Type:  g.Type.String(),
			Fanin: append([]int(nil), g.Fanin...),
		}
	}
	return w
}

// Build reconstructs the circuit, re-deriving fanout, levels and
// topological order and re-running full structural validation.
func (w *Circuit) Build() (*circuit.Circuit, error) {
	if err := CheckVersion(w.V); err != nil {
		return nil, err
	}
	gates := make([]circuit.Gate, len(w.Gates))
	for i := range w.Gates {
		g := &w.Gates[i]
		t, ok := gateTypeByName[g.Type]
		if !ok {
			return nil, fmt.Errorf("wire: circuit %s: gate %d: unknown gate type %q", w.Name, i, g.Type)
		}
		// Always allocate (never nil), matching circuit.Builder's
		// output so reconstructed circuits compare DeepEqual to
		// originals even for fanin-less gates.
		fanin := make([]int, len(g.Fanin))
		copy(fanin, g.Fanin)
		gates[i] = circuit.Gate{Name: g.Name, Type: t, Fanin: fanin}
	}
	return circuit.New(w.Name,
		gates,
		append([]int(nil), w.Inputs...),
		append([]int(nil), w.Outputs...))
}

// FromFaults captures a fault list in wire form.
func FromFaults(fs []fault.Fault) []Fault {
	out := make([]Fault, len(fs))
	for i, f := range fs {
		out[i] = Fault{Gate: f.Gate, Pin: f.Pin, Stuck: f.Stuck}
	}
	return out
}

// BuildFaults reconstructs a fault list, validating every fault
// against the circuit it targets.
func BuildFaults(ws []Fault, c *circuit.Circuit) ([]fault.Fault, error) {
	out := make([]fault.Fault, len(ws))
	for i, w := range ws {
		if w.Gate < 0 || w.Gate >= c.NumGates() {
			return nil, fmt.Errorf("wire: fault %d: gate %d out of range", i, w.Gate)
		}
		if w.Pin != fault.StemPin && (w.Pin < 0 || w.Pin >= len(c.Gates[w.Gate].Fanin)) {
			return nil, fmt.Errorf("wire: fault %d: pin %d out of range for gate %d", i, w.Pin, w.Gate)
		}
		if w.Stuck > 1 {
			return nil, fmt.Errorf("wire: fault %d: stuck value %d", i, w.Stuck)
		}
		out[i] = fault.Fault{Gate: w.Gate, Pin: w.Pin, Stuck: w.Stuck}
	}
	return out, nil
}

// copyInts copies an int slice, preserving the nil/empty distinction
// (reflect.DeepEqual separates them, and the equivalence suites compare
// reconstructed results against in-process ones with DeepEqual).
func copyInts(s []int) []int {
	if s == nil {
		return nil
	}
	out := make([]int, len(s))
	copy(out, s)
	return out
}

// copyWeightSets deep-copies a weight-set list.
func copyWeightSets(sets [][]float64) [][]float64 {
	out := make([][]float64, len(sets))
	for i, s := range sets {
		out[i] = append([]float64(nil), s...)
	}
	return out
}

// FromAdaptiveConfig captures an adaptive control-loop config in wire
// form (nil stays nil).
func FromAdaptiveConfig(cfg *adapt.Config) *AdaptiveSpec {
	if cfg == nil {
		return nil
	}
	return &AdaptiveSpec{
		Strategy:       cfg.Strategy,
		BlockPatterns:  cfg.BlockPatterns,
		StallRounds:    cfg.StallRounds,
		TargetCoverage: cfg.TargetCoverage,
		Epsilon:        cfg.Epsilon,
		ReoptMaxSweeps: cfg.ReoptMaxSweeps,
	}
}

// Build reconstructs the adaptive config (nil stays nil).
func (s *AdaptiveSpec) Build() *adapt.Config {
	if s == nil {
		return nil
	}
	return &adapt.Config{
		Strategy:       s.Strategy,
		BlockPatterns:  s.BlockPatterns,
		StallRounds:    s.StallRounds,
		TargetCoverage: s.TargetCoverage,
		Epsilon:        s.Epsilon,
		ReoptMaxSweeps: s.ReoptMaxSweeps,
	}
}

// FromTask captures an engine task in wire form — the inline
// spelling. Scheduling knobs (Task.SimWorkers, Task.SimShards,
// Task.GoodMachine) are intentionally
// dropped: they cannot change the result, so they are not part of the
// task's wire identity. Use ByRef to convert to the content-addressed
// spelling. Adaptive tasks are stamped VersionAdaptive so that old
// decoders reject them instead of running them open-loop.
func FromTask(t *engine.Task) *Task {
	v := Version
	if t.Adaptive != nil {
		v = VersionAdaptive
	}
	return &Task{
		V:          v,
		Label:      t.Label,
		Circuit:    FromCircuit(t.Circuit),
		Faults:     FromFaults(t.Faults),
		WeightSets: copyWeightSets(t.WeightSets),
		Patterns:   t.Patterns,
		Seed:       t.Seed,
		CurveStep:  t.CurveStep,
		Adaptive:   FromAdaptiveConfig(t.Adaptive),
	}
}

// ByRef returns the task's content-addressed spelling: the circuit
// and fault list are replaced by their blob addresses, and the blobs
// themselves are returned for uploading. The by-ref task hashes
// identically to t (IdentityHash is defined over this form) and
// rebuilds identically once Resolve restores the blobs. A task
// already by-ref comes back unchanged with nil blobs.
func (t *Task) ByRef() (ref Task, circuitBlob, faultsBlob []byte) {
	ref = *t
	if ref.Circuit != nil {
		circuitBlob, ref.CircuitRef = ref.Circuit.Blob()
		ref.Circuit = nil
	}
	if ref.Faults != nil {
		faultsBlob, ref.FaultsRef = FaultsBlob(ref.Faults)
		ref.Faults = nil
	}
	return ref, circuitBlob, faultsBlob
}

// UnresolvedRefError reports a by-ref task whose blob the resolver
// does not hold. It is deliberately a distinct type: the service maps
// it to a distinct HTTP status so clients can re-upload the blob and
// retry instead of failing the batch.
type UnresolvedRefError struct {
	Kind string // "circuit" or "faults"
	Hash string
}

func (e *UnresolvedRefError) Error() string {
	return fmt.Sprintf("wire: unknown %s ref %s (upload the blob and retry)", e.Kind, e.Hash)
}

// Resolve rewrites a by-ref task into inline form by fetching its
// blobs through lookup (a blob store, keyed by content address).
// Inline tasks pass through untouched; a missing blob is reported as
// an *UnresolvedRefError. Resolve does not re-verify the blob hashes:
// the blob store verifies on Put, which is the trust boundary.
func (t *Task) Resolve(lookup func(hash string) ([]byte, bool)) error {
	if t.Circuit == nil && t.CircuitRef != "" {
		data, ok := lookup(t.CircuitRef)
		if !ok {
			return &UnresolvedRefError{Kind: "circuit", Hash: t.CircuitRef}
		}
		c, err := DecodeCircuitBlob(data)
		if err != nil {
			return err
		}
		t.Circuit = c
		t.CircuitRef = ""
	}
	if t.Faults == nil && t.FaultsRef != "" {
		data, ok := lookup(t.FaultsRef)
		if !ok {
			return &UnresolvedRefError{Kind: "faults", Hash: t.FaultsRef}
		}
		fs, err := DecodeFaultsBlob(data)
		if err != nil {
			return err
		}
		t.Faults = fs
		t.FaultsRef = ""
	}
	return nil
}

// Build reconstructs the engine task (with SimWorkers unset; the
// executing backend chooses its own intra-campaign sharding) and
// validates it. By-ref tasks must be Resolved first; a task carrying
// both spellings of one component is ambiguous and rejected.
func (t *Task) Build() (*engine.Task, error) {
	if err := checkValueVersion(t.V, t.Adaptive != nil); err != nil {
		return nil, err
	}
	if t.Circuit != nil && t.CircuitRef != "" {
		return nil, fmt.Errorf("wire: task %q carries both an inline circuit and circuit ref %s", t.Label, t.CircuitRef)
	}
	if t.Faults != nil && t.FaultsRef != "" {
		return nil, fmt.Errorf("wire: task %q carries both inline faults and faults ref %s", t.Label, t.FaultsRef)
	}
	if t.Circuit == nil {
		if t.CircuitRef != "" {
			return nil, fmt.Errorf("wire: task %q: unresolved circuit ref %s (resolve against a blob store before building)", t.Label, t.CircuitRef)
		}
		return nil, fmt.Errorf("wire: task %q has no circuit", t.Label)
	}
	if t.FaultsRef != "" && t.Faults == nil {
		return nil, fmt.Errorf("wire: task %q: unresolved faults ref %s (resolve against a blob store before building)", t.Label, t.FaultsRef)
	}
	c, err := t.Circuit.Build()
	if err != nil {
		return nil, err
	}
	faults, err := BuildFaults(t.Faults, c)
	if err != nil {
		return nil, err
	}
	task := &engine.Task{
		Label:      t.Label,
		Circuit:    c,
		Faults:     faults,
		WeightSets: copyWeightSets(t.WeightSets),
		Patterns:   t.Patterns,
		Seed:       t.Seed,
		CurveStep:  t.CurveStep,
		Adaptive:   t.Adaptive.Build(),
	}
	if err := task.Validate(); err != nil {
		return nil, err
	}
	return task, nil
}

// fromAdaptiveInfo captures adaptive round provenance in wire form
// (nil stays nil).
func fromAdaptiveInfo(a *sim.AdaptiveInfo) *AdaptiveInfo {
	if a == nil {
		return nil
	}
	w := &AdaptiveInfo{
		Strategy:  a.Strategy,
		Rounds:    make([]RoundStat, len(a.Rounds)),
		Reopts:    a.Reopts,
		ArmPulls:  copyInts(a.ArmPulls),
		Stalled:   a.Stalled,
		TargetHit: a.TargetHit,
	}
	for i, rs := range a.Rounds {
		w.Rounds[i] = RoundStat(rs)
	}
	return w
}

// build reconstructs adaptive round provenance (nil stays nil).
func (w *AdaptiveInfo) build() *sim.AdaptiveInfo {
	if w == nil {
		return nil
	}
	a := &sim.AdaptiveInfo{
		Strategy:  w.Strategy,
		Reopts:    w.Reopts,
		ArmPulls:  copyInts(w.ArmPulls),
		Stalled:   w.Stalled,
		TargetHit: w.TargetHit,
	}
	if w.Rounds != nil {
		a.Rounds = make([]sim.RoundStat, len(w.Rounds))
		for i, rs := range w.Rounds {
			a.Rounds[i] = sim.RoundStat(rs)
		}
	}
	return a
}

// FromCampaign captures a campaign report in wire form. Adaptive
// reports carry the VersionAdaptive stamp (see FromTask).
func FromCampaign(r *sim.CampaignResult) *CampaignResult {
	v := Version
	if r.Adaptive != nil {
		v = VersionAdaptive
	}
	w := &CampaignResult{
		V:             v,
		TotalFaults:   r.TotalFaults,
		Detected:      r.Detected,
		Patterns:      r.Patterns,
		FirstDetected: copyInts(r.FirstDetected),
		Curve:         make([]CoveragePoint, len(r.Curve)),
		Adaptive:      fromAdaptiveInfo(r.Adaptive),
	}
	for i, p := range r.Curve {
		w.Curve[i] = CoveragePoint(p)
	}
	return w
}

// Build reconstructs the campaign report.
func (w *CampaignResult) Build() (*sim.CampaignResult, error) {
	if err := checkValueVersion(w.V, w.Adaptive != nil); err != nil {
		return nil, err
	}
	r := &sim.CampaignResult{
		TotalFaults:   w.TotalFaults,
		Detected:      w.Detected,
		Patterns:      w.Patterns,
		FirstDetected: copyInts(w.FirstDetected),
		Curve:         make([]sim.CoveragePoint, len(w.Curve)),
		Adaptive:      w.Adaptive.build(),
	}
	for i, p := range w.Curve {
		r.Curve[i] = sim.CoveragePoint(p)
	}
	return r, nil
}
