package bdd

import (
	"math"
	"testing"
	"testing/quick"

	"optirand/internal/circuit"
)

func TestTerminals(t *testing.T) {
	m := NewManager(2)
	if m.Const(true) != True || m.Const(false) != False {
		t.Error("Const terminals wrong")
	}
	if m.Not(True) != False || m.Not(False) != True {
		t.Error("Not on terminals wrong")
	}
}

func TestVarSemantics(t *testing.T) {
	m := NewManager(3)
	x := m.Var(1)
	if !m.Eval(x, []bool{false, true, false}) {
		t.Error("Var(1) false when x1=1")
	}
	if m.Eval(x, []bool{true, false, true}) {
		t.Error("Var(1) true when x1=0")
	}
}

func TestHashConsing(t *testing.T) {
	m := NewManager(2)
	a := m.And(m.Var(0), m.Var(1))
	b := m.And(m.Var(1), m.Var(0))
	if a != b {
		t.Error("AND not canonical under operand order")
	}
	size := m.Size()
	_ = m.And(m.Var(0), m.Var(1))
	if m.Size() != size {
		t.Error("repeated operation created new nodes")
	}
}

// TestBooleanAlgebraQuick checks BDD ops against direct boolean
// evaluation on random 4-variable assignments.
func TestBooleanAlgebraQuick(t *testing.T) {
	m := NewManager(4)
	x := []Ref{m.Var(0), m.Var(1), m.Var(2), m.Var(3)}
	f := m.Or(m.And(x[0], x[1]), m.Xor(x[2], x[3]))
	g := m.And(m.Not(x[0]), m.Or(x[1], x[3]))
	check := func(a0, a1, a2, a3 bool) bool {
		assign := []bool{a0, a1, a2, a3}
		wantF := (a0 && a1) || (a2 != a3)
		wantG := !a0 && (a1 || a3)
		return m.Eval(f, assign) == wantF &&
			m.Eval(g, assign) == wantG &&
			m.Eval(m.And(f, g), assign) == (wantF && wantG) &&
			m.Eval(m.Or(f, g), assign) == (wantF || wantG) &&
			m.Eval(m.Xor(f, g), assign) == (wantF != wantG) &&
			m.Eval(m.Ite(f, g, m.Not(g)), assign) == (map[bool]bool{true: wantG, false: !wantG}[wantF])
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestProbSimple(t *testing.T) {
	m := NewManager(2)
	and := m.And(m.Var(0), m.Var(1))
	or := m.Or(m.Var(0), m.Var(1))
	xor := m.Xor(m.Var(0), m.Var(1))
	w := []float64{0.3, 0.6}
	if p := m.Prob(and, w); math.Abs(p-0.18) > 1e-12 {
		t.Errorf("P(and) = %v, want 0.18", p)
	}
	if p := m.Prob(or, w); math.Abs(p-(0.3+0.6-0.18)) > 1e-12 {
		t.Errorf("P(or) = %v", p)
	}
	if p := m.Prob(xor, w); math.Abs(p-(0.3*0.4+0.7*0.6)) > 1e-12 {
		t.Errorf("P(xor) = %v", p)
	}
}

// TestProbMatchesEnumeration: weighted counting must equal brute-force
// enumeration for random functions.
func TestProbMatchesEnumeration(t *testing.T) {
	const n = 5
	m := NewManager(n)
	x := make([]Ref, n)
	for i := range x {
		x[i] = m.Var(i)
	}
	// A non-trivial function mixing all ops.
	f := m.Xor(m.And(x[0], m.Or(x[1], m.Not(x[2]))), m.And(x[3], m.Xor(x[4], x[0])))
	w := []float64{0.1, 0.25, 0.5, 0.8, 0.95}
	want := 0.0
	assign := make([]bool, n)
	for v := 0; v < 1<<n; v++ {
		pr := 1.0
		for i := 0; i < n; i++ {
			assign[i] = v>>uint(i)&1 == 1
			if assign[i] {
				pr *= w[i]
			} else {
				pr *= 1 - w[i]
			}
		}
		if m.Eval(f, assign) {
			want += pr
		}
	}
	if got := m.Prob(f, w); math.Abs(got-want) > 1e-12 {
		t.Errorf("Prob = %v, enumeration = %v", got, want)
	}
}

func TestSatCount(t *testing.T) {
	m := NewManager(3)
	// x0 AND x1 has 2 satisfying assignments over 3 vars.
	f := m.And(m.Var(0), m.Var(1))
	if got := m.SatCount(f); math.Abs(got-2) > 1e-9 {
		t.Errorf("SatCount = %v, want 2", got)
	}
	if got := m.SatCount(True); math.Abs(got-8) > 1e-9 {
		t.Errorf("SatCount(True) = %v, want 8", got)
	}
	if got := m.SatCount(False); got != 0 {
		t.Errorf("SatCount(False) = %v, want 0", got)
	}
}

func TestSupport(t *testing.T) {
	m := NewManager(4)
	f := m.And(m.Var(0), m.Var(3))
	sup := m.Support(f)
	if len(sup) != 2 || sup[0] != 0 || sup[1] != 3 {
		t.Errorf("Support = %v, want [0 3]", sup)
	}
	if len(m.Support(True)) != 0 {
		t.Error("Support(True) not empty")
	}
}

func TestXorCancellation(t *testing.T) {
	m := NewManager(3)
	f := m.Xor(m.Var(0), m.Var(1))
	if m.Xor(f, f) != False {
		t.Error("f XOR f != False")
	}
	if m.Xor(f, False) != f {
		t.Error("f XOR False != f")
	}
}

func TestFromCircuitMatchesEval(t *testing.T) {
	b := circuit.NewBuilder("mix")
	in := b.Inputs("x", 5)
	g1 := b.Nand("g1", in[0], in[1])
	g2 := b.Xor("g2", g1, in[2], in[3])
	g3 := b.Nor("g3", g2, in[4])
	g4 := b.Xnor("g4", g1, g3)
	b.Output("o1", g3)
	b.Output("o2", g4)
	c := b.MustBuild()

	m := NewManager(c.NumInputs())
	refs := FromCircuit(m, c)
	assign := make([]bool, 5)
	for v := 0; v < 32; v++ {
		for i := range assign {
			assign[i] = v>>uint(i)&1 == 1
		}
		want := c.Eval(assign)
		for g := 0; g < c.NumGates(); g++ {
			if got := m.Eval(refs[g], assign); got != want[g] {
				t.Fatalf("pattern %05b gate %d: bdd=%v eval=%v", v, g, got, want[g])
			}
		}
	}
}

func TestVarOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Var out of range did not panic")
		}
	}()
	NewManager(2).Var(2)
}

func TestProbWeightMismatchPanics(t *testing.T) {
	m := NewManager(2)
	defer func() {
		if recover() == nil {
			t.Error("Prob with wrong weight count did not panic")
		}
	}()
	m.Prob(m.Var(0), []float64{0.5})
}
