// Package bdd implements reduced ordered binary decision diagrams with
// hash-consing and an operation cache, plus weighted model counting.
//
// The library uses BDDs as the exact reference for signal and fault
// detection probabilities (the Parker–McCluskey computation [McPa75]):
// for independent inputs with P(x_i = 1) = w_i, the probability that a
// boolean function is true is the weighted count of its BDD. The
// underlying problem is #P-hard, so exact evaluation is reserved for
// validation on small-to-medium cones; the estimators in
// internal/testability are the production path.
package bdd

import (
	"fmt"
	"math"

	"optirand/internal/circuit"
)

// Ref is a reference to a BDD node. The constants False and True are the
// terminal nodes; all other refs index internal nodes of a Manager.
type Ref int32

// Terminal nodes.
const (
	False Ref = 0
	True  Ref = 1
)

type node struct {
	varIdx int32 // variable level (smaller = closer to root)
	lo, hi Ref
}

// Manager owns the node store for one variable ordering. It is not safe
// for concurrent use.
type Manager struct {
	nVars  int
	nodes  []node
	unique map[node]Ref
	cache  map[opKey]Ref
}

type opKey struct {
	op   uint8
	a, b Ref
}

const (
	opAnd uint8 = iota
	opOr
	opXor
)

// NewManager creates a manager for functions over nVars variables, with
// the natural variable order x0 < x1 < … .
func NewManager(nVars int) *Manager {
	m := &Manager{
		nVars:  nVars,
		nodes:  make([]node, 2), // slots for the terminals
		unique: make(map[node]Ref),
		cache:  make(map[opKey]Ref),
	}
	m.nodes[False] = node{varIdx: int32(nVars), lo: False, hi: False}
	m.nodes[True] = node{varIdx: int32(nVars), lo: True, hi: True}
	return m
}

// NumVars returns the number of variables.
func (m *Manager) NumVars() int { return m.nVars }

// Size returns the number of live nodes, including the two terminals.
func (m *Manager) Size() int { return len(m.nodes) }

// mk returns the canonical node (v, lo, hi), applying the reduction
// rules.
func (m *Manager) mk(v int32, lo, hi Ref) Ref {
	if lo == hi {
		return lo
	}
	key := node{varIdx: v, lo: lo, hi: hi}
	if r, ok := m.unique[key]; ok {
		return r
	}
	r := Ref(len(m.nodes))
	m.nodes = append(m.nodes, key)
	m.unique[key] = r
	return r
}

// Var returns the BDD of the single variable x_i.
func (m *Manager) Var(i int) Ref {
	if i < 0 || i >= m.nVars {
		panic(fmt.Sprintf("bdd: Var(%d) out of range [0,%d)", i, m.nVars))
	}
	return m.mk(int32(i), False, True)
}

// Const returns the terminal for b.
func (m *Manager) Const(b bool) Ref {
	if b {
		return True
	}
	return False
}

// Not returns the complement of f. Complement edges are not used; NOT is
// implemented as XOR with True, which the cache keeps cheap.
func (m *Manager) Not(f Ref) Ref { return m.Xor(f, True) }

// And returns the conjunction of f and g.
func (m *Manager) And(f, g Ref) Ref { return m.apply(opAnd, f, g) }

// Or returns the disjunction of f and g.
func (m *Manager) Or(f, g Ref) Ref { return m.apply(opOr, f, g) }

// Xor returns the exclusive or of f and g.
func (m *Manager) Xor(f, g Ref) Ref { return m.apply(opXor, f, g) }

func (m *Manager) apply(op uint8, f, g Ref) Ref {
	switch op {
	case opAnd:
		if f == False || g == False {
			return False
		}
		if f == True {
			return g
		}
		if g == True {
			return f
		}
		if f == g {
			return f
		}
	case opOr:
		if f == True || g == True {
			return True
		}
		if f == False {
			return g
		}
		if g == False {
			return f
		}
		if f == g {
			return f
		}
	case opXor:
		if f == g {
			return False
		}
		if f == False {
			return g
		}
		if g == False {
			return f
		}
	}
	// Normalize operand order; all three ops are commutative.
	if f > g {
		f, g = g, f
	}
	key := opKey{op, f, g}
	if r, ok := m.cache[key]; ok {
		return r
	}
	fn, gn := m.nodes[f], m.nodes[g]
	v := fn.varIdx
	if gn.varIdx < v {
		v = gn.varIdx
	}
	fLo, fHi := f, f
	if fn.varIdx == v {
		fLo, fHi = fn.lo, fn.hi
	}
	gLo, gHi := g, g
	if gn.varIdx == v {
		gLo, gHi = gn.lo, gn.hi
	}
	r := m.mk(v, m.apply(op, fLo, gLo), m.apply(op, fHi, gHi))
	m.cache[key] = r
	return r
}

// Ite returns if-then-else(f, g, h) = f·g + ¬f·h.
func (m *Manager) Ite(f, g, h Ref) Ref {
	return m.Or(m.And(f, g), m.And(m.Not(f), h))
}

// Prob returns the probability that the function is true when variable
// x_i is independently true with probability weights[i]
// (Parker–McCluskey). len(weights) must equal NumVars.
func (m *Manager) Prob(f Ref, weights []float64) float64 {
	if len(weights) != m.nVars {
		panic(fmt.Sprintf("bdd: Prob: got %d weights, want %d", len(weights), m.nVars))
	}
	memo := make(map[Ref]float64)
	var rec func(r Ref) float64
	rec = func(r Ref) float64 {
		switch r {
		case False:
			return 0
		case True:
			return 1
		}
		if p, ok := memo[r]; ok {
			return p
		}
		n := m.nodes[r]
		w := weights[n.varIdx]
		p := (1-w)*rec(n.lo) + w*rec(n.hi)
		memo[r] = p
		return p
	}
	return rec(f)
}

// SatCount returns the number of satisfying assignments of f over all
// NumVars variables, as a float64 (exact for counts below 2^53).
func (m *Manager) SatCount(f Ref) float64 {
	w := make([]float64, m.nVars)
	for i := range w {
		w[i] = 0.5
	}
	return m.Prob(f, w) * math.Pow(2, float64(m.nVars))
}

// Eval evaluates the function under a complete variable assignment.
func (m *Manager) Eval(f Ref, assign []bool) bool {
	for f != True && f != False {
		n := m.nodes[f]
		if assign[n.varIdx] {
			f = n.hi
		} else {
			f = n.lo
		}
	}
	return f == True
}

// Support returns the indices of variables the function depends on, in
// increasing order.
func (m *Manager) Support(f Ref) []int {
	seen := make(map[Ref]bool)
	vars := make(map[int32]bool)
	var rec func(r Ref)
	rec = func(r Ref) {
		if r == True || r == False || seen[r] {
			return
		}
		seen[r] = true
		n := m.nodes[r]
		vars[n.varIdx] = true
		rec(n.lo)
		rec(n.hi)
	}
	rec(f)
	out := make([]int, 0, len(vars))
	for v := int32(0); v < int32(m.nVars); v++ {
		if vars[v] {
			out = append(out, int(v))
		}
	}
	return out
}

// FromCircuit builds the BDDs of every gate of c over its primary
// inputs (variable i = input position i). Returns the per-gate refs.
// The node count can explode for multiplier-like circuits; callers
// validating estimators should stick to small cones.
func FromCircuit(m *Manager, c *circuit.Circuit) []Ref {
	if m.nVars != c.NumInputs() {
		panic("bdd: FromCircuit: manager variable count != circuit inputs")
	}
	refs := make([]Ref, c.NumGates())
	for pos, g := range c.Inputs {
		refs[g] = m.Var(pos)
	}
	for _, g := range c.TopoOrder() {
		gate := &c.Gates[g]
		switch gate.Type {
		case circuit.Input:
			continue
		case circuit.Const0:
			refs[g] = False
		case circuit.Const1:
			refs[g] = True
		case circuit.Buf:
			refs[g] = refs[gate.Fanin[0]]
		case circuit.Not:
			refs[g] = m.Not(refs[gate.Fanin[0]])
		case circuit.And, circuit.Nand:
			r := True
			for _, f := range gate.Fanin {
				r = m.And(r, refs[f])
			}
			if gate.Type == circuit.Nand {
				r = m.Not(r)
			}
			refs[g] = r
		case circuit.Or, circuit.Nor:
			r := False
			for _, f := range gate.Fanin {
				r = m.Or(r, refs[f])
			}
			if gate.Type == circuit.Nor {
				r = m.Not(r)
			}
			refs[g] = r
		case circuit.Xor, circuit.Xnor:
			r := False
			for _, f := range gate.Fanin {
				r = m.Xor(r, refs[f])
			}
			if gate.Type == circuit.Xnor {
				r = m.Not(r)
			}
			refs[g] = r
		}
	}
	return refs
}
