package prng

import (
	"math"
	"math/bits"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
	a.Seed(42)
	c := New(42)
	if a.Uint64() != c.Uint64() {
		t.Error("Seed did not reset the stream")
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d collisions between different seeds", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	seen := make([]bool, 10)
	for i := 0; i < 10000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d", v)
		}
		seen[v] = true
	}
	for v, ok := range seen {
		if !ok {
			t.Errorf("value %d never drawn", v)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestWordExtremes(t *testing.T) {
	r := New(5)
	if w := r.Word(0); w != 0 {
		t.Errorf("Word(0) = %x", w)
	}
	if w := r.Word(1); w != ^uint64(0) {
		t.Errorf("Word(1) = %x", w)
	}
	if w := r.Word(-0.5); w != 0 {
		t.Errorf("Word(-0.5) = %x", w)
	}
	if w := r.Word(1.5); w != ^uint64(0) {
		t.Errorf("Word(1.5) = %x", w)
	}
}

// TestWordBias: the fraction of ones in Word(p) must track p for a
// spread of probabilities, including the hardware-style 1/16 grid.
func TestWordBias(t *testing.T) {
	r := New(99)
	const words = 4000 // 256k bits per probe
	for _, p := range []float64{0.05, 0.1, 1.0 / 16, 0.25, 0.5, 0.65, 0.9, 15.0 / 16} {
		ones := 0
		for i := 0; i < words; i++ {
			ones += bits.OnesCount64(r.Word(p))
		}
		got := float64(ones) / (64 * words)
		if math.Abs(got-p) > 0.01 {
			t.Errorf("Word(%v): one-density = %v", p, got)
		}
	}
}

// TestWordBitIndependence: adjacent bits from the two-per-call fast path
// must be uncorrelated.
func TestWordBitIndependence(t *testing.T) {
	r := New(123)
	const words = 20000
	both, single := 0, 0
	for i := 0; i < words; i++ {
		w := r.Word(0.3)
		for b := 0; b < 64; b += 2 {
			lo := w>>uint(b)&1 == 1
			hi := w>>uint(b+1)&1 == 1
			if lo {
				single++
			}
			if lo && hi {
				both++
			}
		}
	}
	pLo := float64(single) / (32 * words)
	pBoth := float64(both) / (32 * words)
	// Under independence pBoth ≈ pLo * 0.3.
	if math.Abs(pBoth-pLo*0.3) > 0.01 {
		t.Errorf("adjacent-bit correlation: P(lo)=%v P(both)=%v", pLo, pBoth)
	}
}

func TestWeightedWords(t *testing.T) {
	r := New(8)
	dst := make([]uint64, 3)
	r.WeightedWords(dst, []float64{0, 1, 0.5})
	if dst[0] != 0 || dst[1] != ^uint64(0) {
		t.Errorf("WeightedWords = %x", dst)
	}
}

func TestWeightedWordsMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("length mismatch did not panic")
		}
	}()
	New(1).WeightedWords(make([]uint64, 2), []float64{0.5})
}

func TestSplitIndependence(t *testing.T) {
	r := New(77)
	s := r.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if r.Uint64() == s.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("split stream collides with parent %d times", same)
	}
}

func TestZeroValueUsable(t *testing.T) {
	var r SplitMix64
	if r.Uint64() == r.Uint64() {
		t.Error("zero-value generator does not advance")
	}
}
