// Package prng provides the deterministic pseudo-random sources used
// throughout the library: a SplitMix64 generator and Bernoulli bit
// sources that fill 64-bit pattern words with weighted random bits.
//
// All experiment randomness flows through this package so that every
// reported number is reproducible from a seed.
package prng

import "math"

// SplitMix64 is a tiny, fast, high-quality 64-bit PRNG (Steele et al.,
// "Fast Splittable Pseudorandom Number Generators", OOPSLA 2014). The
// zero value is a valid generator seeded with 0.
type SplitMix64 struct {
	state uint64
}

// New returns a SplitMix64 seeded with seed.
func New(seed uint64) *SplitMix64 { return &SplitMix64{state: seed} }

// Seed resets the generator state.
func (r *SplitMix64) Seed(seed uint64) { r.state = seed }

// Uint64 returns the next 64 pseudo-random bits.
func (r *SplitMix64) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform float in [0,1) with 53 bits of precision.
func (r *SplitMix64) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0,n). It panics if n <= 0.
func (r *SplitMix64) Intn(n int) int {
	if n <= 0 {
		panic("prng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Split returns a new generator whose stream is statistically
// independent of the receiver's, for per-worker determinism.
func (r *SplitMix64) Split() *SplitMix64 {
	return New(r.Uint64() ^ 0x5851f42d4c957f2d)
}

// Bernoulli returns true with probability p.
func (r *SplitMix64) Bernoulli(p float64) bool {
	return r.Float64() < p
}

// Word returns a 64-bit word whose bits are independent Bernoulli(p)
// draws. p is clamped to [0,1]. Common cases are specialized: p==0.5
// costs one PRNG call; p==0 and p==1 cost none.
func (r *SplitMix64) Word(p float64) uint64 {
	switch {
	case p <= 0:
		return 0
	case p >= 1:
		return ^uint64(0)
	case p == 0.5:
		return r.Uint64()
	}
	// Threshold comparison per bit on 32-bit uniforms, two bits per
	// PRNG call. Exact to 2^-32, far below estimator error elsewhere.
	thr := uint64(math.Round(p * (1 << 32)))
	var w uint64
	for i := 0; i < 64; i += 2 {
		u := r.Uint64()
		if u&0xffffffff < thr {
			w |= 1 << uint(i)
		}
		if u>>32 < thr {
			w |= 1 << uint(i+1)
		}
	}
	return w
}

// WeightedWords fills dst[i] with Bernoulli(weights[i]) words. dst and
// weights must have equal length.
func (r *SplitMix64) WeightedWords(dst []uint64, weights []float64) {
	if len(dst) != len(weights) {
		panic("prng: WeightedWords length mismatch")
	}
	for i, p := range weights {
		dst[i] = r.Word(p)
	}
}
