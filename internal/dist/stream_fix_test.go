package dist

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"optirand/internal/engine"
	"optirand/internal/sim"
	"optirand/internal/wire"
)

// fakeStreamDaemon is an httptest daemon whose /v1/sweep handler is
// fully scripted — the instrument for pinning wire-level client
// behavior (event timing fields, stream pacing) that a real server
// cannot produce deterministically.
func fakeStreamDaemon(t *testing.T, handler func(w http.ResponseWriter, n int)) *Client {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/sweep" {
			http.NotFound(w, r)
			return
		}
		var req wire.SweepRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", ndjsonContentType)
		handler(w, len(req.Tasks))
	}))
	t.Cleanup(ts.Close)
	cl := NewClient(ts.URL)
	cl.DisableIntern = true
	return cl
}

// emitEvent writes one NDJSON event and flushes it to the peer.
func emitEvent(w http.ResponseWriter, ev *wire.SweepEvent) {
	json.NewEncoder(w).Encode(ev) //nolint:errcheck
	if f, ok := w.(http.Flusher); ok {
		f.Flush()
	}
}

// TestServiceRunEachPerTaskElapsed pins the streamed-task timing fix:
// each delivered TaskResult carries the task's own service-side
// execution time from the event's elapsed_ns — not time since the
// batch started, which grew monotonically with stream position.
func TestServiceRunEachPerTaskElapsed(t *testing.T) {
	tasks := testTasks(t)[:4]
	res := tasks[0].Execute().Campaign
	wres := wire.FromCampaign(res)

	// Scripted per-task elapsed values — deliberately non-monotonic, so
	// any batch-relative clock would disagree on every index.
	want := []time.Duration{90 * time.Millisecond, 10 * time.Millisecond, 0, 40 * time.Millisecond}
	cl := fakeStreamDaemon(t, func(w http.ResponseWriter, n int) {
		for i := 0; i < n; i++ {
			emitEvent(w, &wire.SweepEvent{
				V:         wire.Version,
				Index:     i,
				Result:    wres,
				ElapsedNS: want[i].Nanoseconds(),
			})
		}
		emitEvent(w, &wire.SweepEvent{V: wire.Version, Index: -1, Done: true})
	})

	got := make([]time.Duration, len(tasks))
	err := Service{Client: cl}.RunEach(context.Background(), tasks, func(i int, r engine.TaskResult) {
		got[i] = r.Elapsed
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("per-task Elapsed = %v, want the event values %v", got, want)
	}
}

// TestServiceElapsedOverWire proves the real daemon round trip: a
// served sweep reports nonzero per-task execution time for executed
// tasks and zero for cache-served ones (no execution happened).
func TestServiceElapsedOverWire(t *testing.T) {
	tasks := testTasks(t)[:4]
	cl := startService(t, ServerOptions{Workers: 2, CacheSize: 64})
	svc := Service{Client: cl}

	for _, temp := range []string{"cold", "warm"} {
		err := svc.RunEach(context.Background(), tasks, func(i int, r engine.TaskResult) {
			if temp == "cold" && r.Elapsed <= 0 {
				t.Errorf("cold: task %d Elapsed = %v, want > 0", i, r.Elapsed)
			}
			if temp == "warm" && r.Elapsed != 0 {
				t.Errorf("warm: cache-served task %d Elapsed = %v, want 0", i, r.Elapsed)
			}
		})
		if err != nil {
			t.Fatalf("%s: %v", temp, err)
		}
	}
}

// TestCacheLoadCountsResident pins the restore-accounting fix: loading
// a snapshot bigger than the cache's bound reports the warm set
// actually resident, not the snapshot's size.
func TestCacheLoadCountsResident(t *testing.T) {
	res := testTasks(t)[0].Execute().Campaign
	path := filepath.Join(t.TempDir(), "results.gob")

	big := NewCache(5)
	for _, k := range []string{"a", "b", "c", "d", "e"} {
		big.Put(k, res) // recency ends most-recent-first: e d c b a
	}
	if err := big.Save(path); err != nil {
		t.Fatal(err)
	}

	small := NewCache(2)
	n, err := small.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("Load reported %d restored entries into a 2-entry cache, want 2", n)
	}
	if got := small.Stats().Loaded; got != 2 {
		t.Fatalf("Stats().Loaded = %d, want 2", got)
	}
	if got := small.Stats().Entries; got != 2 {
		t.Fatalf("resident entries = %d, want 2", got)
	}
	// The survivors are the snapshot's most-recent entries.
	for _, k := range []string{"e", "d"} {
		if _, ok := small.Get(k); !ok {
			t.Fatalf("most-recent snapshot entry %q not resident after load", k)
		}
	}
	for _, k := range []string{"c", "b", "a"} {
		if _, ok := small.Get(k); ok {
			t.Fatalf("overflow snapshot entry %q resident after load", k)
		}
	}
}

// TestSweepStreamOutlivesTimeout pins the long-stream half of the
// timeout fix: a streamed sweep whose total duration exceeds the HTTP
// client's Timeout succeeds as long as events keep arriving inside it.
func TestSweepStreamOutlivesTimeout(t *testing.T) {
	tasks := testTasks(t)[:6]
	res := tasks[0].Execute().Campaign
	wres := wire.FromCampaign(res)

	const gap = 150 * time.Millisecond // per event; 6 events = 900ms total
	cl := fakeStreamDaemon(t, func(w http.ResponseWriter, n int) {
		for i := 0; i < n; i++ {
			time.Sleep(gap)
			emitEvent(w, &wire.SweepEvent{V: wire.Version, Index: i, Result: wres})
		}
		emitEvent(w, &wire.SweepEvent{V: wire.Version, Index: -1, Done: true})
	})
	cl.HTTP.Timeout = 500 * time.Millisecond // < total, > per-event gap

	start := time.Now()
	delivered := 0
	_, err := cl.SweepEach(context.Background(), tasks, func(int, *sim.CampaignResult, bool, time.Duration) {
		delivered++
	})
	if err != nil {
		t.Fatalf("stream making progress died at Timeout: %v (after %v)", err, time.Since(start))
	}
	if delivered != len(tasks) {
		t.Fatalf("delivered %d of %d", delivered, len(tasks))
	}
	if total := time.Since(start); total <= cl.HTTP.Timeout {
		t.Fatalf("stream finished in %v, inside Timeout %v — the test proved nothing", total, cl.HTTP.Timeout)
	}
}

// TestSweepStreamStallSurfacesDeadline pins the other half: a stream
// that stops producing events fails within the inactivity bound, and
// the error names the deadline instead of a bare "context canceled".
func TestSweepStreamStallSurfacesDeadline(t *testing.T) {
	tasks := testTasks(t)[:3]
	res := tasks[0].Execute().Campaign
	wres := wire.FromCampaign(res)

	stalled := make(chan struct{})
	cl := fakeStreamDaemon(t, func(w http.ResponseWriter, _ int) {
		emitEvent(w, &wire.SweepEvent{V: wire.Version, Index: 0, Result: wres})
		<-stalled // wedge: no further events, no trailer
	})
	defer close(stalled)
	cl.HTTP.Timeout = 200 * time.Millisecond

	start := time.Now()
	delivered := 0
	_, err := cl.SweepEach(context.Background(), tasks, func(int, *sim.CampaignResult, bool, time.Duration) {
		delivered++
	})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("stalled stream reported success")
	}
	if !strings.Contains(err.Error(), "no event within") {
		t.Fatalf("stall error does not name the inactivity deadline: %v", err)
	}
	if !strings.Contains(err.Error(), fmt.Sprint(cl.HTTP.Timeout)) {
		t.Fatalf("stall error does not state the configured bound: %v", err)
	}
	if delivered != 1 {
		t.Fatalf("delivered %d events before the stall, want 1", delivered)
	}
	if elapsed > 10*cl.HTTP.Timeout {
		t.Fatalf("stall detected after %v, far beyond the %v bound", elapsed, cl.HTTP.Timeout)
	}
}

// TestSweepStreamCallerCancellation proves the watchdog does not
// swallow a genuine caller cancellation: the parent context's error
// still surfaces as itself.
func TestSweepStreamCallerCancellation(t *testing.T) {
	tasks := testTasks(t)[:3]
	res := tasks[0].Execute().Campaign
	wres := wire.FromCampaign(res)

	wedged := make(chan struct{})
	cl := fakeStreamDaemon(t, func(w http.ResponseWriter, _ int) {
		emitEvent(w, &wire.SweepEvent{V: wire.Version, Index: 0, Result: wres})
		<-wedged
	})
	defer close(wedged)
	cl.HTTP.Timeout = time.Hour // watchdog far away; the caller hangs up first

	ctx, cancel := context.WithCancel(context.Background())
	_, err := cl.SweepEach(ctx, tasks, func(int, *sim.CampaignResult, bool, time.Duration) {
		cancel() // hang up after the first delivery
	})
	if err == nil || !strings.Contains(err.Error(), context.Canceled.Error()) {
		t.Fatalf("caller cancellation surfaced as %v, want context.Canceled", err)
	}
}
