package dist

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"optirand/internal/core"
	"optirand/internal/engine"
	"optirand/internal/fault"
	"optirand/internal/gen"
	"optirand/internal/wire"
)

// startService spins the daemon's handler up on an in-process HTTP
// server and returns a client for it.
func startService(t *testing.T, opts ServerOptions) *Client {
	t.Helper()
	srv := NewServer(opts)
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return NewClient(ts.URL)
}

// TestServiceSweepEquivalence is the end-to-end contract of the PR: a
// sweep executed through the daemon — remote backend, several worker
// counts, shuffled shard order, cold and warm cache — produces results
// bit-identical to the in-process engine.Run.
func TestServiceSweepEquivalence(t *testing.T) {
	tasks := testTasks(t)
	ref, err := engine.Run(context.Background(), tasks, 1)
	if err != nil {
		t.Fatal(err)
	}

	cl := startService(t, ServerOptions{Workers: 3, SimWorkers: 2, CacheSize: 256})

	// Cold cache, several client fan-out widths.
	for _, workers := range []int{1, 4} {
		d := NewDispatcher(RemoteExecutor(cl), Options{Workers: workers})
		got, err := d.Run(context.Background(), tasks)
		d.Close()
		if err != nil {
			t.Fatalf("remote workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(campaigns(ref), campaigns(got)) {
			t.Fatalf("remote workers=%d: daemon results differ from engine.Run", workers)
		}
	}

	// Shuffled submission order: positional merging must undo it.
	perm := make([]*engine.Task, len(tasks))
	for i, task := range tasks {
		perm[(i*7+3)%len(tasks)] = task
	}
	d := RemoteBackend(cl, 5)
	defer d.Close()
	got, err := d.Run(context.Background(), perm)
	if err != nil {
		t.Fatal(err)
	}
	for i := range perm {
		want := ref[indexOf(t, tasks, perm[i])].Campaign
		if !reflect.DeepEqual(want, got[i].Campaign) {
			t.Fatalf("shuffled slot %d: result does not follow its task", i)
		}
	}

	// Warm cache: the whole sweep must now be served from cache, and
	// byte-identically.
	results, hits, err := cl.Sweep(context.Background(), tasks)
	if err != nil {
		t.Fatal(err)
	}
	if hits != len(tasks) {
		t.Fatalf("warm sweep: %d cache hits, want %d", hits, len(tasks))
	}
	if !reflect.DeepEqual(campaigns(ref), results) {
		t.Fatal("warm sweep results differ from engine.Run")
	}
}

func indexOf(t *testing.T, tasks []*engine.Task, task *engine.Task) int {
	t.Helper()
	for i := range tasks {
		if tasks[i] == task {
			return i
		}
	}
	t.Fatal("task not found")
	return -1
}

// TestServiceSweepEndpointCold checks /v1/sweep itself (not the
// per-campaign executor) against the in-process reference on a cold
// cache, exercising the server-side fleet.
func TestServiceSweepEndpointCold(t *testing.T) {
	tasks := testTasks(t)
	ref, err := engine.Run(context.Background(), tasks, 1)
	if err != nil {
		t.Fatal(err)
	}
	cl := startService(t, ServerOptions{Workers: 4, CacheSize: 256})
	results, hits, err := cl.Sweep(context.Background(), tasks)
	if err != nil {
		t.Fatal(err)
	}
	if hits != 0 {
		t.Fatalf("cold sweep reported %d cache hits", hits)
	}
	if !reflect.DeepEqual(campaigns(ref), results) {
		t.Fatal("cold sweep results differ from engine.Run")
	}
}

// TestServiceCampaignCacheHeader checks the per-request cache
// temperature header and payload identity across temperatures.
func TestServiceCampaignCacheHeader(t *testing.T) {
	task := testTasks(t)[0]
	cl := startService(t, ServerOptions{Workers: 2, CacheSize: 16})

	cold, cached, err := cl.Campaign(context.Background(), task)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("first request reported a cache hit")
	}
	warm, cached, err := cl.Campaign(context.Background(), task)
	if err != nil {
		t.Fatal(err)
	}
	if !cached {
		t.Fatal("second request missed the cache")
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Fatal("cache changed the campaign payload")
	}
	if !reflect.DeepEqual(task.Execute().Campaign, cold) {
		t.Fatal("daemon campaign differs from in-process execution")
	}
}

// TestServiceCacheDisabled proves CacheSize < 0 turns caching off.
func TestServiceCacheDisabled(t *testing.T) {
	task := testTasks(t)[0]
	cl := startService(t, ServerOptions{Workers: 2, CacheSize: -1})
	for i := 0; i < 2; i++ {
		if _, cached, err := cl.Campaign(context.Background(), task); err != nil {
			t.Fatal(err)
		} else if cached {
			t.Fatal("cache hit with caching disabled")
		}
	}
}

// TestServiceOptimize checks /v1/optimize against the in-process
// optimizer: identical weights and test lengths.
func TestServiceOptimize(t *testing.T) {
	b, ok := gen.ByName("s1")
	if !ok {
		t.Fatal("missing benchmark s1")
	}
	c := b.Build()
	faults := fault.New(c).Reps
	opts := core.Options{Quantize: 0.05, MaxSweeps: 4}
	ref, err := core.Optimize(c, faults, opts)
	if err != nil {
		t.Fatal(err)
	}

	cl := startService(t, ServerOptions{Workers: 2})
	got, err := cl.Optimize(context.Background(), &wire.OptimizeRequest{
		Circuit:   *wire.FromCircuit(c),
		Faults:    wire.FromFaults(faults),
		Quantize:  0.05,
		MaxSweeps: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref.Weights, got.Weights) {
		t.Fatal("service weights differ from in-process optimization")
	}
	if got.InitialN != ref.InitialN || got.FinalN != ref.FinalN || got.Sweeps != ref.Sweeps {
		t.Fatalf("service lengths differ: got (%g, %g, %d), want (%g, %g, %d)",
			got.InitialN, got.FinalN, got.Sweeps, ref.InitialN, ref.FinalN, ref.Sweeps)
	}
}

// TestServiceRejectsBadRequests covers the failure surface: malformed
// JSON, wrong wire version, corrupt circuits, wrong method.
func TestServiceRejectsBadRequests(t *testing.T) {
	cl := startService(t, ServerOptions{Workers: 1})

	post := func(path, body string) int {
		resp, err := http.Post(cl.BaseURL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post("/v1/campaign", "{"); code != http.StatusBadRequest {
		t.Errorf("malformed JSON: status %d", code)
	}
	if code := post("/v1/sweep", `{"v":99,"tasks":[]}`); code != http.StatusBadRequest {
		t.Errorf("bad version: status %d", code)
	}
	if code := post("/v1/campaign", `{"v":1,"circuit":{"v":1,"name":"x","gates":[{"type":"WARP"}],"inputs":[],"outputs":[]},"faults":[],"weight_sets":[[]],"patterns":1,"seed":1}`); code != http.StatusBadRequest {
		t.Errorf("corrupt circuit: status %d", code)
	}
	resp, err := http.Get(cl.BaseURL + "/v1/campaign")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET campaign: status %d", resp.StatusCode)
	}
}

// TestServiceStats checks the observability endpoint.
func TestServiceStats(t *testing.T) {
	task := testTasks(t)[0]
	cl := startService(t, ServerOptions{Workers: 2, SimWorkers: 1, CacheSize: 8})
	if _, _, err := cl.Campaign(context.Background(), task); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cl.Campaign(context.Background(), task); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(cl.BaseURL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats statsResponse
	if err := wire.JSON.Unmarshal(readAll(t, resp), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.WireVersion != wire.Version {
		t.Fatalf("wire version %d, want %d", stats.WireVersion, wire.Version)
	}
	if stats.Cache == nil || stats.Cache.Hits != 1 || stats.Cache.Entries != 1 {
		t.Fatalf("cache stats %+v, want 1 hit / 1 entry", stats.Cache)
	}
}

func readAll(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestServiceMidBatchCancel proves context cancellation propagates
// through the remote stack against a live daemon: the submitting
// dispatcher returns ctx.Err() mid-batch, queued requests are
// abandoned, and the client/daemon pair stays healthy for the next
// batch.
func TestServiceMidBatchCancel(t *testing.T) {
	tasks := testTasks(t)
	cl := startService(t, ServerOptions{Workers: 2, CacheSize: -1})
	d := NewDispatcher(RemoteExecutor(cl), Options{Workers: 1})
	defer d.Close()

	ctx, cancel := context.WithCancel(context.Background())
	delivered := 0
	err := d.RunEach(ctx, tasks, func(int, engine.TaskResult) {
		delivered++
		if delivered == 1 {
			cancel() // first campaign landed: hang up mid-batch
		}
	})
	cancel()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if delivered >= len(tasks) {
		t.Fatalf("%d campaigns delivered after mid-batch cancel (queued requests not abandoned)", delivered)
	}

	// The connection pool and the daemon must both survive the
	// abandonment: a fresh batch still matches the local reference.
	ref, err := engine.Run(context.Background(), tasks[:2], 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := d.Run(context.Background(), tasks[:2])
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(campaigns(ref), campaigns(got)) {
		t.Fatal("post-cancel batch differs from the local reference")
	}
}

// TestServiceClientContextCancel proves a single blocking /v1/sweep
// call aborts with the context.
func TestServiceClientContextCancel(t *testing.T) {
	tasks := testTasks(t)
	cl := startService(t, ServerOptions{Workers: 1, CacheSize: -1})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := cl.Sweep(ctx, tasks); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
