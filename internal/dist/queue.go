package dist

import "sync"

// queue is the dispatcher's work queue: an unbounded FIFO shared by
// every concurrently submitted batch and drained by the worker fleet.
// Requeued items (failed attempts) go to the back, so a flaky task
// naturally migrates to whichever worker frees up next.
type queue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []*workItem
	closed bool
}

func newQueue() *queue {
	q := &queue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push appends it and wakes one worker. Push on a closed queue is a
// no-op (the batch that owns the item has already been failed).
func (q *queue) push(it *workItem) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	q.items = append(q.items, it)
	q.cond.Signal()
}

// pop blocks until an item is available or the queue closes; the
// second result is false exactly when the queue is closed and drained.
func (q *queue) pop() (*workItem, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		return nil, false
	}
	it := q.items[0]
	q.items[0] = nil
	q.items = q.items[1:]
	return it, true
}

// len reports the number of queued (not yet popped) items.
func (q *queue) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// close wakes every worker; pending items are dropped.
func (q *queue) close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.items = nil
	q.cond.Broadcast()
}
