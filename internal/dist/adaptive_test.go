package dist

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"optirand/internal/adapt"
	"optirand/internal/engine"
)

// adaptiveTask returns one of the grid's mixture tasks upgraded to a
// closed-loop bandit campaign.
func adaptiveTask(t *testing.T) *engine.Task {
	t.Helper()
	for _, task := range testTasks(t) {
		if len(task.WeightSets) > 1 {
			task.Adaptive = &adapt.Config{
				Strategy:      adapt.StrategyBandit,
				BlockPatterns: 128,
			}
			return task
		}
	}
	t.Fatal("no mixture task in the grid")
	return nil
}

// TestServiceAdaptiveEquivalence runs an adaptive campaign through
// the daemon — cold and warm cache — and demands bytes identical to
// in-process execution, round provenance included. The warm pass also
// exercises the cache's deep copy of the adaptive report.
func TestServiceAdaptiveEquivalence(t *testing.T) {
	task := adaptiveTask(t)
	ref := task.Execute().Campaign
	if ref.Adaptive == nil || len(ref.Adaptive.Rounds) < 2 {
		t.Fatalf("reference is not meaningfully adaptive: %+v", ref.Adaptive)
	}

	cl := startService(t, ServerOptions{Workers: 2, CacheSize: 64})
	cold, _, err := cl.Campaign(context.Background(), task)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref, cold) {
		t.Fatal("remote adaptive campaign differs from in-process execution")
	}
	warm, _, err := cl.Campaign(context.Background(), task)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref, warm) {
		t.Fatal("cached adaptive campaign differs from in-process execution")
	}
	// Mutating the first answer must not bleed into the cache.
	cold.Adaptive.Rounds[0].Detected = -1
	cold.Adaptive.ArmPulls[0] = -1
	again, _, err := cl.Campaign(context.Background(), task)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref, again) {
		t.Fatal("cached adaptive report aliased a caller's copy")
	}
}

// TestServiceOldDaemonAdaptiveRejection proves the failure mode the
// version bump exists for: a daemon predating adaptive campaigns
// refuses the task outright — a permanent, diagnosable error — rather
// than decoding the fields it knows and silently running the campaign
// open-loop. The fake daemon replays the version-2 per-task gate: on
// /v1/campaign the body IS the task, so its `v` — stamped
// VersionAdaptive for closed-loop work — is the first thing checked.
func TestServiceOldDaemonAdaptiveRejection(t *testing.T) {
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/v1/blobs/") {
			http.NotFound(w, r) // old daemons predate interning too
			return
		}
		var wt struct {
			V int `json:"v"`
		}
		if err := json.NewDecoder(r.Body).Decode(&wt); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if wt.V != 2 {
			http.Error(w, fmt.Sprintf("task 0: wire: version %d not supported (want 2)", wt.V),
				http.StatusBadRequest)
			return
		}
		t.Error("an adaptive task passed an old daemon's version gate")
		http.Error(w, "unreachable", http.StatusInternalServerError)
	})
	ts := httptest.NewServer(handler)
	t.Cleanup(ts.Close)
	cl := NewClient(ts.URL)

	res, _, err := cl.Campaign(context.Background(), adaptiveTask(t))
	if err == nil {
		t.Fatalf("old daemon returned a result for an adaptive task: %+v", res)
	}
	if !IsPermanent(err) {
		t.Fatalf("version rejection should be permanent (no retry can help), got %v", err)
	}
	if !strings.Contains(err.Error(), "version 3") {
		t.Fatalf("rejection does not name the version mismatch: %v", err)
	}
}

// TestServiceStatsAdaptive checks /v1/stats grows an adaptive section
// whose counters move when the daemon executes closed-loop campaigns.
func TestServiceStatsAdaptive(t *testing.T) {
	before := adapt.GlobalStats() // counters are process-wide
	cl := startService(t, ServerOptions{Workers: 1, CacheSize: -1})
	if _, _, err := cl.Campaign(context.Background(), adaptiveTask(t)); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(cl.BaseURL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Adaptive == nil {
		t.Fatal("/v1/stats has no adaptive section")
	}
	if stats.Adaptive.Campaigns <= before.Campaigns {
		t.Fatalf("adaptive campaign counter did not move: %d -> %d", before.Campaigns, stats.Adaptive.Campaigns)
	}
	if stats.Adaptive.Rounds <= before.Rounds || stats.Adaptive.ArmPulls <= before.ArmPulls {
		t.Fatalf("round/arm counters did not move: %+v vs %+v", before, stats.Adaptive)
	}
}
