package dist

import (
	"compress/gzip"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"optirand/internal/engine"
	"optirand/internal/sim"
	"optirand/internal/wire"
)

// TestBlobStore covers the content-addressed store's contract:
// hash-verified puts, LRU-by-bytes eviction, probe without recency,
// and the counters /v1/stats reports.
func TestBlobStore(t *testing.T) {
	blob := func(s string) (string, []byte) {
		data := []byte(s)
		return wire.HashBytes(data), data
	}

	s := NewBlobStore(64) // tiny budget to force eviction
	h1, d1 := blob("circuit-one-bytes-00000000")
	h2, d2 := blob("circuit-two-bytes-11111111")
	h3, d3 := blob("circuit-three-bytes-222222")

	if err := s.Put(h1, d1); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("deadbeef", d1); err == nil {
		t.Fatal("hash-mismatched blob accepted")
	}
	if got, ok := s.Get(h1); !ok || string(got) != string(d1) {
		t.Fatal("stored blob not returned")
	}
	if _, ok := s.Get(h2); ok {
		t.Fatal("missing blob returned")
	}

	// Two ~26-byte blobs fit the 64-byte budget; a third evicts the
	// least recently used. h1 was touched by Get after h2's Put... so
	// insert h2, re-touch h1, then h3 must evict h2.
	if err := s.Put(h2, d2); err != nil {
		t.Fatal(err)
	}
	s.Get(h1)
	if err := s.Put(h3, d3); err != nil {
		t.Fatal(err)
	}
	if s.Has(h2) {
		t.Fatal("LRU blob not evicted")
	}
	if !s.Has(h1) || !s.Has(h3) {
		t.Fatal("recently used blobs evicted")
	}

	// A blob larger than the whole budget is rejected outright.
	hBig, dBig := blob(strings.Repeat("x", 65))
	if err := s.Put(hBig, dBig); err == nil || !strings.Contains(err.Error(), "budget") {
		t.Fatalf("oversized blob: err=%v", err)
	}

	st := s.Stats()
	if st.Entries != 2 || st.Evictions != 1 || st.Bytes > 64 {
		t.Fatalf("stats %+v: want 2 entries, 1 eviction, <= 64 bytes", st)
	}
}

// TestCachePersistence proves the result cache round-trips through
// its gob snapshot: same entries, same recency order, counted in
// stats; and that a missing snapshot is a cold start, not an error.
func TestCachePersistence(t *testing.T) {
	task := testTasks(t)[0]
	res := task.Execute().Campaign
	dir := t.TempDir()
	path := filepath.Join(dir, "results.gob")

	c := NewCache(2)
	c.Put("a", res)
	c.Put("b", res)
	c.Put("c", res) // evicts "a"; recency now c, b
	c.Get("b")      // recency now b, c
	if err := c.Save(path); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().Persists; got != 1 {
		t.Fatalf("persists = %d, want 1", got)
	}

	back := NewCache(2)
	n, err := back.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("loaded %d entries, want 2", n)
	}
	if got := back.Stats().Loaded; got != 2 {
		t.Fatalf("loaded counter = %d, want 2", got)
	}
	got, ok := back.Get("b")
	if !ok || !reflect.DeepEqual(got, res) {
		t.Fatal("loaded cache returns different bytes")
	}
	// Recency survived the round trip: inserting one more entry must
	// evict "c" (least recent), not "b".
	back.Put("d", res)
	if _, ok := back.Get("b"); !ok {
		t.Fatal("most-recent entry evicted after load")
	}
	if _, ok := back.Get("c"); ok {
		t.Fatal("least-recent entry survived eviction after load")
	}

	// Missing snapshot: cold start, no error.
	cold := NewCache(2)
	if n, err := cold.Load(filepath.Join(dir, "absent.gob")); n != 0 || err != nil {
		t.Fatalf("missing snapshot: n=%d err=%v", n, err)
	}

	// Corrupt snapshot: a real error, not a silent warm set.
	bad := filepath.Join(dir, "bad.gob")
	os.WriteFile(bad, []byte("not a gob"), 0o644)
	if _, err := cold.Load(bad); err == nil {
		t.Fatal("corrupt snapshot loaded without error")
	}
}

// refSpy wraps a handler and records, per /v1/sweep and /v1/campaign
// request, whether any task arrived by-ref and how many bytes the
// request body carried.
type refSpy struct {
	next http.Handler

	mu         sync.Mutex
	sweeps     int
	byRef      int
	inline     int
	gzipBodies int
}

func (s *refSpy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodPost && (r.URL.Path == "/v1/sweep" || r.URL.Path == "/v1/campaign") {
		body, _ := io.ReadAll(r.Body)
		r.Body.Close()
		gzipped := strings.Contains(r.Header.Get("Content-Encoding"), "gzip")
		plain := body
		if gzipped {
			zr, err := gzip.NewReader(strings.NewReader(string(body)))
			if err == nil {
				plain, _ = io.ReadAll(zr)
			}
		}
		s.mu.Lock()
		s.sweeps++
		if gzipped {
			s.gzipBodies++
		}
		if strings.Contains(string(plain), `"circuit_ref"`) {
			s.byRef++
		}
		if strings.Contains(string(plain), `"gates"`) {
			s.inline++
		}
		s.mu.Unlock()
		r.Body = io.NopCloser(strings.NewReader(string(body)))
	}
	s.next.ServeHTTP(w, r)
}

// TestServiceInterning is the transport tentpole's happy path: a
// sweep client uploads each circuit and fault list once, references
// them by hash in every task, produces bytes identical to the inline
// transport, and recovers transparently (re-upload + retry) when the
// daemon loses its blobs.
func TestServiceInterning(t *testing.T) {
	tasks := testTasks(t)
	ref, err := engine.Run(context.Background(), tasks, 1)
	if err != nil {
		t.Fatal(err)
	}

	srv := NewServer(ServerOptions{Workers: 3, CacheSize: 256})
	spy := &refSpy{next: srv}
	ts := httptest.NewServer(spy)
	t.Cleanup(func() { ts.Close(); srv.Close() })
	cl := NewClient(ts.URL)

	results, _, err := cl.Sweep(context.Background(), tasks)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(campaigns(ref), results) {
		t.Fatal("interned sweep differs from engine.Run")
	}
	spy.mu.Lock()
	byRef, inline := spy.byRef, spy.inline
	spy.mu.Unlock()
	if byRef == 0 {
		t.Fatal("no request traveled by-ref (interning never engaged)")
	}
	if inline != 0 {
		t.Fatal("an interned sweep still carried an inline circuit")
	}

	// The daemon's blob store holds one circuit and one fault-list
	// blob per distinct circuit (3 circuits in testTasks).
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Blobs == nil || stats.Blobs.Entries != 6 {
		t.Fatalf("blob stats %+v, want 6 entries", stats.Blobs)
	}

	// Blob loss recovery: point the same client (which believes its
	// blobs are resident) at a fresh daemon with an empty store. The
	// by-ref sweep answers 422, the client re-uploads and retries —
	// invisibly to the caller.
	srv2 := NewServer(ServerOptions{Workers: 2, CacheSize: -1})
	ts2 := httptest.NewServer(srv2)
	t.Cleanup(func() { ts2.Close(); srv2.Close() })
	cl.BaseURL = ts2.URL
	results2, _, err := cl.Sweep(context.Background(), tasks[:4])
	if err != nil {
		t.Fatalf("sweep after blob loss: %v", err)
	}
	if !reflect.DeepEqual(campaigns(ref[:4]), results2) {
		t.Fatal("post-recovery sweep differs from engine.Run")
	}
}

// TestServiceStreamingSweep proves the NDJSON sweep path end to end:
// per-task delivery with correct indices and cache temperatures, a
// positional merge identical to the serial reference, and the Service
// backend (whole-batch Run/RunEach) built on it.
func TestServiceStreamingSweep(t *testing.T) {
	tasks := testTasks(t)
	ref, err := engine.Run(context.Background(), tasks, 1)
	if err != nil {
		t.Fatal(err)
	}
	cl := startService(t, ServerOptions{Workers: 3, SimWorkers: 2, CacheSize: 256})

	for _, temp := range []string{"cold", "warm"} {
		got := make([]*sim.CampaignResult, len(tasks))
		cachedCount := 0
		calls := 0
		hits, err := cl.SweepEach(context.Background(), tasks, func(i int, res *sim.CampaignResult, cached bool, _ time.Duration) {
			calls++
			if got[i] != nil {
				t.Fatalf("%s: slot %d delivered twice", temp, i)
			}
			got[i] = res
			if cached {
				cachedCount++
			}
		})
		if err != nil {
			t.Fatalf("%s: %v", temp, err)
		}
		if calls != len(tasks) {
			t.Fatalf("%s: %d deliveries, want %d", temp, calls, len(tasks))
		}
		if !reflect.DeepEqual(campaigns(ref), got) {
			t.Fatalf("%s: streamed sweep differs from engine.Run", temp)
		}
		if temp == "cold" && (hits != 0 || cachedCount != 0) {
			t.Fatalf("cold: %d trailer hits, %d cached deliveries, want 0", hits, cachedCount)
		}
		if temp == "warm" && (hits != len(tasks) || cachedCount != len(tasks)) {
			t.Fatalf("warm: %d trailer hits, %d cached deliveries, want %d", hits, cachedCount, len(tasks))
		}
	}

	// The Service backend: one /v1/sweep per batch, same bytes.
	svc := Service{Client: cl}
	got, err := svc.Run(context.Background(), tasks)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(campaigns(ref), campaigns(got)) {
		t.Fatal("Service.Run differs from engine.Run")
	}
}

// oldDaemon simulates a daemon predating the transport PR: no
// /v1/blobs routes (404), no NDJSON streaming (batch JSON sweeps
// only). Everything else forwards to a real server — which, because
// the client must fall back to inline tasks, never sees a ref.
func oldDaemon(t *testing.T, opts ServerOptions) (*Client, *refSpy) {
	t.Helper()
	srv := NewServer(opts)
	spy := &refSpy{next: srv}
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/v1/blobs/") {
			http.NotFound(w, r)
			return
		}
		r.Header.Del("Accept") // an old daemon knows nothing of NDJSON
		spy.ServeHTTP(w, r)
	})
	ts := httptest.NewServer(handler)
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return NewClient(ts.URL), spy
}

// TestServiceOldDaemonFallback proves the negotiation downgrades
// cleanly: against a daemon without blob endpoints the client falls
// back to inline tasks (after one failed upload, remembered for the
// connection's lifetime), and SweepEach degrades to whole-batch
// delivery when the daemon answers plain JSON — same bytes on every
// path.
func TestServiceOldDaemonFallback(t *testing.T) {
	tasks := testTasks(t)[:6]
	ref, err := engine.Run(context.Background(), tasks, 1)
	if err != nil {
		t.Fatal(err)
	}
	cl, spy := oldDaemon(t, ServerOptions{Workers: 2, CacheSize: 64})

	results, _, err := cl.Sweep(context.Background(), tasks)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(campaigns(ref), results) {
		t.Fatal("inline-fallback sweep differs from engine.Run")
	}
	spy.mu.Lock()
	byRef, inline := spy.byRef, spy.inline
	spy.mu.Unlock()
	if byRef != 0 {
		t.Fatal("a by-ref task reached an old daemon")
	}
	if inline == 0 {
		t.Fatal("no inline task observed")
	}
	if got := cl.blobsSupported(); got != -1 {
		t.Fatalf("blob support = %d after fallback, want -1 (remembered)", got)
	}

	// Streaming degrades to batch delivery: every result still lands
	// exactly once, positionally identical.
	got := make([]*sim.CampaignResult, len(tasks))
	if _, err := cl.SweepEach(context.Background(), tasks, func(i int, res *sim.CampaignResult, _ bool, _ time.Duration) {
		got[i] = res
	}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(campaigns(ref), got) {
		t.Fatal("batch-fallback SweepEach differs from engine.Run")
	}
}

// TestServiceGzipNegotiation proves request compression engages only
// after the daemon advertises it and only above the size threshold:
// the first (discovery) request is plain, later large bodies travel
// gzipped, and the daemon decodes them to byte-identical results.
func TestServiceGzipNegotiation(t *testing.T) {
	tasks := testTasks(t)[:2]
	ref, err := engine.Run(context.Background(), tasks, 1)
	if err != nil {
		t.Fatal(err)
	}

	srv := NewServer(ServerOptions{Workers: 2, CacheSize: -1})
	spy := &refSpy{next: srv}
	ts := httptest.NewServer(spy)
	t.Cleanup(func() { ts.Close(); srv.Close() })
	cl := NewClient(ts.URL)
	cl.DisableIntern = true // keep bodies large so the threshold is met

	// First exchange: the client has not seen the advertisement yet.
	first, _, err := cl.Campaign(context.Background(), tasks[0])
	if err != nil {
		t.Fatal(err)
	}
	spy.mu.Lock()
	afterFirst := spy.gzipBodies
	spy.mu.Unlock()
	if afterFirst != 0 {
		t.Fatal("first request compressed before the daemon advertised support")
	}

	// Second exchange: large inline body, now compressed.
	second, _, err := cl.Campaign(context.Background(), tasks[0])
	if err != nil {
		t.Fatal(err)
	}
	spy.mu.Lock()
	afterSecond := spy.gzipBodies
	spy.mu.Unlock()
	if afterSecond == 0 {
		t.Fatal("large request body not compressed after advertisement")
	}
	if !reflect.DeepEqual(first, second) || !reflect.DeepEqual(ref[0].Campaign, second) {
		t.Fatal("compressed request produced different bytes")
	}

	// Small bodies stay plain: an interned warm task is far below the
	// threshold.
	cl2 := NewClient(ts.URL)
	if _, _, err := cl2.Campaign(context.Background(), tasks[1]); err != nil { // learn gzip + upload blobs
		t.Fatal(err)
	}
	spy.mu.Lock()
	before := spy.gzipBodies
	spy.mu.Unlock()
	if _, _, err := cl2.Campaign(context.Background(), tasks[1]); err != nil { // warm: tiny by-ref body
		t.Fatal(err)
	}
	spy.mu.Lock()
	after := spy.gzipBodies
	spy.mu.Unlock()
	if after != before {
		t.Fatal("tiny by-ref request body was compressed despite the threshold")
	}
}

// TestServicePersistedCacheRestart proves the daemon's warm set
// survives a restart: results are byte-identical and served from the
// reloaded cache, with the load counted in /v1/stats.
func TestServicePersistedCacheRestart(t *testing.T) {
	tasks := testTasks(t)[:6]
	ref, err := engine.Run(context.Background(), tasks, 1)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()

	srv1 := NewServer(ServerOptions{Workers: 2, CacheSize: 64, CacheDir: dir})
	ts1 := httptest.NewServer(srv1)
	cl1 := NewClient(ts1.URL)
	cold, hits, err := cl1.Sweep(context.Background(), tasks)
	if err != nil {
		t.Fatal(err)
	}
	if hits != 0 {
		t.Fatalf("cold sweep reported %d cache hits", hits)
	}
	ts1.Close()
	srv1.Close() // persists the snapshot

	srv2 := NewServer(ServerOptions{Workers: 2, CacheSize: 64, CacheDir: dir})
	ts2 := httptest.NewServer(srv2)
	t.Cleanup(func() { ts2.Close(); srv2.Close() })
	cl2 := NewClient(ts2.URL)
	warm, hits, err := cl2.Sweep(context.Background(), tasks)
	if err != nil {
		t.Fatal(err)
	}
	if hits != len(tasks) {
		t.Fatalf("restarted daemon answered %d/%d from cache", hits, len(tasks))
	}
	if !reflect.DeepEqual(cold, warm) || !reflect.DeepEqual(campaigns(ref), warm) {
		t.Fatal("post-restart sweep differs from the pre-restart bytes")
	}

	resp, err := http.Get(ts2.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Cache == nil || stats.Cache.Loaded != uint64(len(tasks)) {
		t.Fatalf("cache stats %+v, want %d loaded entries", stats.Cache, len(tasks))
	}
}

// TestServiceJournalRestartResume proves the journal tier end to end
// over the wire: a daemon started with JournalDir and NO result cache
// journals every completed sweep result, and a restarted daemon on the
// same directory answers the whole sweep from the journal —
// byte-identical, zero re-execution, counted as hits, and visible in
// /v1/stats.
func TestServiceJournalRestartResume(t *testing.T) {
	tasks := testTasks(t)[:6]
	ref, err := engine.Run(context.Background(), tasks, 1)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()

	// CacheSize: -1 — caching off, so the restarted daemon can only
	// answer from the journal, not from a reloaded snapshot.
	srv1 := NewServer(ServerOptions{Workers: 2, CacheSize: -1, JournalDir: dir})
	ts1 := httptest.NewServer(srv1)
	cl1 := NewClient(ts1.URL)
	cold, hits, err := cl1.Sweep(context.Background(), tasks)
	if err != nil {
		t.Fatal(err)
	}
	if hits != 0 {
		t.Fatalf("cold sweep reported %d hits", hits)
	}
	ts1.Close()
	srv1.Close()

	srv2 := NewServer(ServerOptions{Workers: 2, CacheSize: -1, JournalDir: dir})
	ts2 := httptest.NewServer(srv2)
	t.Cleanup(func() { ts2.Close(); srv2.Close() })
	cl2 := NewClient(ts2.URL)
	warm, hits, err := cl2.Sweep(context.Background(), tasks)
	if err != nil {
		t.Fatal(err)
	}
	if hits != len(tasks) {
		t.Fatalf("restarted daemon answered %d/%d from the journal", hits, len(tasks))
	}
	if !reflect.DeepEqual(cold, warm) || !reflect.DeepEqual(campaigns(ref), warm) {
		t.Fatal("post-restart sweep differs from the pre-restart bytes")
	}

	resp, err := http.Get(ts2.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.JournalDir != dir {
		t.Fatalf("stats journal_dir = %q, want %q", stats.JournalDir, dir)
	}
	if stats.Journal == nil || stats.Journal.Entries != len(tasks) {
		t.Fatalf("journal stats %+v, want %d entries", stats.Journal, len(tasks))
	}
	if stats.Journal.Replays != uint64(len(tasks)) {
		t.Fatalf("journal stats count %d replays, want %d", stats.Journal.Replays, len(tasks))
	}
}

// TestServiceStatsCounters checks the new observability surface:
// singleflight coalescing and blob counters reported by /v1/stats.
func TestServiceStatsCounters(t *testing.T) {
	task := testTasks(t)[0]
	cl := startService(t, ServerOptions{Workers: 1, CacheSize: -1})

	// A sweep containing the same task twice: the duplicate coalesces
	// onto the first's flight (no cache involved — caching is off).
	results, _, err := cl.Sweep(context.Background(), []*engine.Task{task, task})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(results[0], results[1]) {
		t.Fatal("coalesced duplicate returned different bytes")
	}

	resp, err := http.Get(cl.BaseURL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Dispatcher == nil || stats.Dispatcher.Coalesced == 0 {
		t.Fatalf("dispatcher stats %+v, want coalesced > 0", stats.Dispatcher)
	}
	if stats.Blobs == nil || stats.Blobs.Entries == 0 || stats.Blobs.Puts == 0 {
		t.Fatalf("blob stats %+v, want interned circuit blobs", stats.Blobs)
	}
	if stats.Cache != nil {
		t.Fatalf("cache stats %+v reported with caching disabled", stats.Cache)
	}
}

// streamingSweepRaw issues one raw NDJSON /v1/sweep request with the
// given Accept-Encoding (empty = none) against a live server and
// returns the response headers and raw body bytes.
func streamingSweepRaw(t *testing.T, baseURL string, tasks []*engine.Task, acceptEncoding string) (http.Header, []byte) {
	t.Helper()
	wts := make([]wire.Task, len(tasks))
	for i, task := range tasks {
		wts[i] = *wire.FromTask(task)
	}
	body, err := wire.JSON.Marshal(&wire.SweepRequest{V: wire.Version, Tasks: wts})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, baseURL+"/v1/sweep", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", ndjsonContentType)
	if acceptEncoding != "" {
		req.Header.Set("Accept-Encoding", acceptEncoding)
	}
	// DisableCompression keeps the transport from negotiating (and
	// transparently inflating) gzip behind the test's back.
	client := &http.Client{Transport: &http.Transport{DisableCompression: true}}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep: %s: %s", resp.Status, raw)
	}
	return resp.Header, raw
}

// decodeSweepStream parses an NDJSON event stream, returning the
// per-task events slotted by index (events arrive in completion
// order, which legitimately differs between runs) plus the trailer.
func decodeSweepStream(t *testing.T, r io.Reader, nTasks int) (events []*wire.SweepEvent, trailer wire.SweepEvent) {
	t.Helper()
	events = make([]*wire.SweepEvent, nTasks)
	dec := json.NewDecoder(r)
	for {
		var ev wire.SweepEvent
		if err := dec.Decode(&ev); err != nil {
			t.Fatalf("stream decode: %v", err)
		}
		if ev.Index < 0 {
			for i, e := range events {
				if e == nil {
					t.Fatalf("no event for task %d before the trailer", i)
				}
			}
			return events, ev
		}
		if ev.Index >= nTasks || events[ev.Index] != nil {
			t.Fatalf("bad or duplicate event index %d", ev.Index)
		}
		cp := ev
		events[ev.Index] = &cp
	}
}

// TestStreamingSweepGzipNegotiation covers the flush-aware gzip layer
// of NDJSON sweeps: a client advertising gzip gets a compressed
// stream that inflates to the same events a plain client receives,
// and the compressed stream is materially smaller — the bytes the
// plain streaming path was leaving on the table.
func TestStreamingSweepGzipNegotiation(t *testing.T) {
	tasks := testTasks(t)
	cl := startService(t, ServerOptions{Workers: 2, CacheSize: 256})

	plainHdr, plain := streamingSweepRaw(t, cl.BaseURL, tasks, "")
	if enc := plainHdr.Get("Content-Encoding"); enc != "" {
		t.Fatalf("plain client got Content-Encoding %q", enc)
	}
	plainEvents, plainTrailer := decodeSweepStream(t, strings.NewReader(string(plain)), len(tasks))
	if !plainTrailer.Done {
		t.Fatalf("plain stream: done=%v", plainTrailer.Done)
	}

	zHdr, zBody := streamingSweepRaw(t, cl.BaseURL, tasks, "gzip")
	if enc := zHdr.Get("Content-Encoding"); enc != "gzip" {
		t.Fatalf("gzip client got Content-Encoding %q", enc)
	}
	zr, err := gzip.NewReader(strings.NewReader(string(zBody)))
	if err != nil {
		t.Fatal(err)
	}
	zEvents, zTrailer := decodeSweepStream(t, zr, len(tasks))
	if !zTrailer.Done {
		t.Fatalf("gzip stream: done=%v", zTrailer.Done)
	}

	// Same results either way (the second request is answered from
	// cache, which cannot change bytes), and a real size win.
	for i := range plainEvents {
		a, err := plainEvents[i].Result.Build()
		if err != nil {
			t.Fatal(err)
		}
		b, err := zEvents[i].Result.Build()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("event %d differs between plain and gzip streams", i)
		}
	}
	if len(zBody) >= len(plain) {
		t.Fatalf("gzip stream (%d bytes) not smaller than plain (%d bytes)", len(zBody), len(plain))
	}

	// The standard client path (transparent decompression) still
	// round-trips through SweepEach.
	got := make([]*sim.CampaignResult, len(tasks))
	if _, err := cl.SweepEach(context.Background(), tasks, func(i int, res *sim.CampaignResult, _ bool, _ time.Duration) {
		got[i] = res
	}); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		want, err := plainEvents[i].Result.Build()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got[i], want) {
			t.Fatalf("SweepEach result %d differs from raw stream", i)
		}
	}
}

// TestStreamEncoderFlushDelivery proves the compressed stream stays
// per-event deliverable: an event written and flushed while the
// stream is still open must be decodable on the reading side — gzip's
// Flush emits the sync block that makes it so. Without the flush the
// decoder would block on the pipe, and the test would time out.
func TestStreamEncoderFlushDelivery(t *testing.T) {
	pr, pw := io.Pipe()
	enc := newStreamEncoder(pw, nil, true)
	emitted := make(chan struct{})
	go func() {
		defer close(emitted)
		enc.emit(&wire.SweepEvent{V: wire.Version, Index: 7, Cached: true})
	}()

	zr, err := gzip.NewReader(pr)
	if err != nil {
		t.Fatal(err)
	}
	var ev wire.SweepEvent
	if err := json.NewDecoder(zr).Decode(&ev); err != nil {
		t.Fatalf("mid-stream decode: %v", err)
	}
	if ev.Index != 7 || !ev.Cached {
		t.Fatalf("decoded %+v", ev)
	}
	// Tear down reader-first (close() flushes the gzip trailer into
	// the pipe, which would block forever against a parked reader),
	// and join the emitter before touching the shared writer.
	pr.Close()
	<-emitted
	enc.close()
	pw.Close()
}

// serverStats fetches /v1/stats.
func serverStats(t *testing.T, baseURL string) statsResponse {
	t.Helper()
	resp, err := http.Get(baseURL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestServerPeriodicSnapshot covers the crash-safety follow-on: with
// SnapshotInterval set, the daemon persists its warm set while
// RUNNING (no graceful shutdown involved), counts the snapshot in
// /v1/stats, and a sibling daemon pointed at the directory restores
// it.
func TestServerPeriodicSnapshot(t *testing.T) {
	dir := t.TempDir()
	tasks := testTasks(t)[:2]
	cl := startService(t, ServerOptions{
		Workers:          1,
		CacheSize:        64,
		CacheDir:         dir,
		SnapshotInterval: 5 * time.Millisecond,
	})
	if _, _, err := cl.Campaign(context.Background(), tasks[0]); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(10 * time.Second)
	var persists uint64
	for time.Now().Before(deadline) {
		if st := serverStats(t, cl.BaseURL); st.Cache != nil && st.Cache.Persists > 0 {
			persists = st.Cache.Persists
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if persists == 0 {
		t.Fatal("no periodic snapshot happened while the server was running")
	}
	if st := serverStats(t, cl.BaseURL); st.SnapshotInterval == "" {
		t.Error("stats does not report the snapshot interval")
	}

	// The on-disk snapshot is live before any shutdown: a fresh cache
	// (and a fresh daemon) can restore the result.
	fresh := NewCache(64)
	n, err := fresh.Load(filepath.Join(dir, cacheSnapshotFile))
	if err != nil {
		t.Fatal(err)
	}
	if n < 1 {
		t.Fatalf("snapshot holds %d entries, want >= 1", n)
	}

	// A clean tick (nothing new) must not write again.
	before := serverStats(t, cl.BaseURL).Cache.Persists
	time.Sleep(50 * time.Millisecond)
	after := serverStats(t, cl.BaseURL).Cache.Persists
	if after != before {
		t.Errorf("clean ticks wrote %d extra snapshots", after-before)
	}
}
