package dist

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"

	"optirand/internal/sim"
)

// Journal is an append-only on-disk log of completed campaign results
// keyed by task content address (wire identity hash) — the durability
// half of resumable sweeps. As a sweep's results land they are
// appended; a process that dies mid-sweep reopens the journal and
// replays the journaled results instead of recomputing them, executing
// only the residue. Because the key is the task's content address, a
// journaled result is by construction byte-identical to what a fresh
// execution would produce, so a resumed sweep merges bit-identically
// with an uninterrupted one — and journals may be shared across sweeps
// (a key from one sweep correctly answers the same task in another).
//
// # File format and crash tolerance
//
// The file is a magic+version header followed by self-contained
// records: a 4-byte big-endian payload length, the payload (one
// gob-encoded journalEntry per record, each with its own encoder so
// records decode independently), and the payload's CRC-32. Appends are
// single contiguous writes, so a crash mid-append leaves a short final
// record: OpenJournal detects the torn tail and truncates the file to
// the last whole record, losing at most the one result that was being
// written. A record that is fully present but fails its CRC is not a
// torn append — it is corruption, and OpenJournal rejects the file
// rather than silently replaying damaged results.
//
// Appends go through the OS page cache without per-record fsync: a
// process crash loses nothing (the kernel owns the pages), a machine
// crash loses at most the unflushed tail, which the torn-record path
// absorbs on reopen.
//
// The in-memory footprint is one index entry (key and file offset) per
// record — results themselves stay on disk and are decoded on demand
// by Get, so resuming a half-done million-task sweep does not load
// half a million results into memory.
//
// A Journal is safe for concurrent use.
type Journal struct {
	mu      sync.Mutex
	f       JournalIO
	path    string
	index   map[string]recordPos
	end     int64 // append offset
	appends uint64
	replays uint64
	err     error // sticky append failure; Append reports it thereafter
}

// JournalIO is the journal's file-layer seam: the exact subset of
// *os.File the journal uses. It exists so fault-injection harnesses
// (internal/chaos) can wrap the real file and exercise the journal's
// crash tolerance — torn writes, bit flips, ENOSPC — deterministically,
// without a filesystem that actually fails.
type JournalIO interface {
	io.ReaderAt
	io.WriterAt
	Truncate(size int64) error
	Stat() (os.FileInfo, error)
	Sync() error
	Close() error
}

// recordPos locates one record's payload inside the journal file.
type recordPos struct {
	off int64 // payload offset
	n   int   // payload length
}

// journalEntry is the gob payload of one record.
type journalEntry struct {
	Key string
	Res sim.CampaignResult
}

// journalMagic identifies (and versions) a journal file; a future
// format change bumps the trailing version byte, and OpenJournal
// rejects files it cannot have written.
var journalMagic = []byte("optirand-journal\x01")

// recordHeaderLen is the per-record framing overhead: the payload
// length prefix plus the trailing CRC-32.
const recordHeaderLen = 4

// journalCRC is the record checksum (CRC-32/IEEE over the payload).
func journalCRC(payload []byte) uint32 {
	return crc32.ChecksumIEEE(payload)
}

// OpenJournal opens (creating if absent) the journal at path, scans
// its records to rebuild the key index, truncates a torn final record
// (the residue of a crash mid-append), and positions for appending.
// A file with a foreign header or a corrupt interior record is
// rejected — better to fail a resume loudly than to replay damage.
func OpenJournal(path string) (*Journal, error) {
	return OpenJournalIO(path, nil)
}

// OpenJournalIO is OpenJournal with the file handle passed through
// wrap first (nil means use the file directly) — the seam chaos
// harnesses use to inject file-layer faults into an otherwise real
// journal. Production callers use OpenJournal.
func OpenJournalIO(path string, wrap func(JournalIO) JournalIO) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("dist: open journal: %w", err)
	}
	var fio JournalIO = f
	if wrap != nil {
		fio = wrap(f)
	}
	j := &Journal{f: fio, path: path, index: make(map[string]recordPos)}
	if err := j.scan(); err != nil {
		fio.Close()
		return nil, err
	}
	return j, nil
}

// scan reads the header and every record, building the index and
// truncating a torn tail.
func (j *Journal) scan() error {
	info, err := j.f.Stat()
	if err != nil {
		return fmt.Errorf("dist: journal %s: %w", j.path, err)
	}
	size := info.Size()
	if size == 0 {
		// Fresh file: stamp the header.
		if _, err := j.f.WriteAt(journalMagic, 0); err != nil {
			return fmt.Errorf("dist: journal %s: write header: %w", j.path, err)
		}
		j.end = int64(len(journalMagic))
		return nil
	}
	header := make([]byte, len(journalMagic))
	if _, err := io.ReadFull(io.NewSectionReader(j.f, 0, size), header); err != nil || !bytes.Equal(header, journalMagic) {
		return fmt.Errorf("dist: journal %s: not an optirand journal (bad or truncated header)", j.path)
	}
	r := bufReaderAt{f: j.f, size: size}
	off := int64(len(journalMagic))
	for off < size {
		var lenBuf [4]byte
		if !r.read(off, lenBuf[:]) {
			return j.truncateTail(off) // torn: length prefix incomplete
		}
		n := int64(binary.BigEndian.Uint32(lenBuf[:]))
		payloadOff := off + 4
		recEnd := payloadOff + n + recordHeaderLen
		if recEnd > size || n == 0 {
			return j.truncateTail(off) // torn: record extends past EOF
		}
		payload := make([]byte, n)
		var crcBuf [4]byte
		if !r.read(payloadOff, payload) || !r.read(payloadOff+n, crcBuf[:]) {
			return j.truncateTail(off)
		}
		if binary.BigEndian.Uint32(crcBuf[:]) != journalCRC(payload) {
			// The record is fully present yet damaged: corruption, not a
			// torn append. Refuse to resume from it.
			return fmt.Errorf("dist: journal %s: record at offset %d fails its checksum (journal corrupt)", j.path, off)
		}
		key, err := decodeJournalKey(payload)
		if err != nil {
			return fmt.Errorf("dist: journal %s: record at offset %d: %w", j.path, off, err)
		}
		if _, dup := j.index[key]; !dup {
			// Equal keys hold equal results by the identity contract;
			// the first record wins so Get never depends on append races.
			j.index[key] = recordPos{off: payloadOff, n: int(n)}
		}
		off = recEnd
	}
	j.end = off
	return nil
}

// truncateTail discards a torn final record so the journal ends on the
// last whole entry.
func (j *Journal) truncateTail(validEnd int64) error {
	if err := j.f.Truncate(validEnd); err != nil {
		return fmt.Errorf("dist: journal %s: truncate torn record: %w", j.path, err)
	}
	j.end = validEnd
	return nil
}

// bufReaderAt wraps bounded ReadAt calls for the scan loop.
type bufReaderAt struct {
	f    io.ReaderAt
	size int64
}

func (r bufReaderAt) read(off int64, dst []byte) bool {
	if off+int64(len(dst)) > r.size {
		return false
	}
	_, err := r.f.ReadAt(dst, off)
	return err == nil
}

// decodeJournalKey extracts a record's key without retaining its
// result (the scan keeps offsets, not payloads).
func decodeJournalKey(payload []byte) (string, error) {
	var e journalEntry
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&e); err != nil {
		return "", fmt.Errorf("bad record payload: %w", err)
	}
	return e.Key, nil
}

// Len reports the number of distinct journaled results.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.index)
}

// Path reports the journal's file path.
func (j *Journal) Path() string { return j.path }

// Has reports whether key is journaled.
func (j *Journal) Has(key string) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	_, ok := j.index[key]
	return ok
}

// Get returns the journaled result for key, decoded fresh from disk —
// every call yields an independent copy, so replayed results are as
// immutable as cached ones. The error is non-nil only for an I/O or
// decode failure on a record the open-time scan checksummed, i.e.
// the file changed underneath us.
func (j *Journal) Get(key string) (*sim.CampaignResult, bool, error) {
	j.mu.Lock()
	pos, ok := j.index[key]
	if ok {
		j.replays++
	}
	f := j.f
	j.mu.Unlock()
	if !ok {
		return nil, false, nil
	}
	payload := make([]byte, pos.n)
	if _, err := f.ReadAt(payload, pos.off); err != nil {
		return nil, false, fmt.Errorf("dist: journal %s: read record: %w", j.path, err)
	}
	var e journalEntry
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&e); err != nil {
		return nil, false, fmt.Errorf("dist: journal %s: decode record: %w", j.path, err)
	}
	return &e.Res, true, nil
}

// Append journals one completed result under its task content address.
// The record is framed and written as one contiguous write, so a crash
// leaves at most a torn tail the next OpenJournal truncates. Appending
// an already-journaled key is a no-op (the existing record already
// holds the identical bytes). A write failure is sticky: the journal
// stops accepting appends and every later Append reports the original
// error, but replay of what was journaled keeps working — durability
// degrades, execution does not stop.
func (j *Journal) Append(key string, res *sim.CampaignResult) error {
	if res == nil {
		return errors.New("dist: journal: nil result")
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&journalEntry{Key: key, Res: *res}); err != nil {
		return fmt.Errorf("dist: journal: encode record: %w", err)
	}
	payload := buf.Bytes()
	rec := make([]byte, 0, 4+len(payload)+4)
	rec = binary.BigEndian.AppendUint32(rec, uint32(len(payload)))
	rec = append(rec, payload...)
	rec = binary.BigEndian.AppendUint32(rec, journalCRC(payload))

	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	if _, ok := j.index[key]; ok {
		return nil
	}
	if _, err := j.f.WriteAt(rec, j.end); err != nil {
		j.err = fmt.Errorf("dist: journal %s: append: %w", j.path, err)
		return j.err
	}
	j.index[key] = recordPos{off: j.end + 4, n: len(payload)}
	j.end += int64(len(rec))
	j.appends++
	return nil
}

// Err reports the sticky append failure, if any.
func (j *Journal) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// JournalStats is a point-in-time journal counter snapshot. Entries is
// the number of distinct journaled results, Appends the results
// written by this process, Replays the Get hits served.
type JournalStats struct {
	Entries int    `json:"entries"`
	Appends uint64 `json:"appends"`
	Replays uint64 `json:"replays"`
	Error   string `json:"error,omitempty"`
}

// Stats snapshots the counters.
func (j *Journal) Stats() JournalStats {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JournalStats{Entries: len(j.index), Appends: j.appends, Replays: j.replays}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	return st
}

// Close releases the journal's file handle. Appended records are
// already in the OS page cache; Close additionally syncs them so a
// cleanly closed journal survives machine failure too.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	syncErr := j.f.Sync()
	closeErr := j.f.Close()
	j.f = nil
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}
