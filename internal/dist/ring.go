package dist

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
)

// ringReplicas is the default number of virtual points each node
// contributes to a Ring. More points smooth the key distribution
// across nodes; the hash positions depend only on the node's name, so
// the count trades balance against Lookup table size, never mapping
// stability.
const ringReplicas = 64

// Ring is a consistent-hash ring: it maps content-address keys (task
// route keys, circuit fingerprints) to named nodes such that
//
//   - the mapping is a pure function of the current node set — two
//     rings holding the same nodes agree on every key, whatever order
//     the nodes were added or how often they left and rejoined — and
//
//   - removing a node remaps only the keys it owned; every other key
//     keeps its node. That minimal-disruption property is what keeps
//     each leaf daemon's compiled-circuit/blob/result-cache working
//     set hot across fleet membership changes.
//
// Each node occupies replicas pseudo-random points on a 64-bit hash
// circle (SHA-256 of "name#i"); a key belongs to the node owning the
// first point at or clockwise after the key's own hash. Ring is not
// safe for concurrent use; the Federation serializes access.
type Ring struct {
	replicas int
	points   []ringPoint // sorted ascending by hash
	nodes    map[string]bool
}

// ringPoint is one virtual node position on the hash circle.
type ringPoint struct {
	hash uint64
	node string
}

// NewRing returns an empty ring with the given virtual points per
// node (<= 0 selects the default).
func NewRing(replicas int) *Ring {
	if replicas <= 0 {
		replicas = ringReplicas
	}
	return &Ring{replicas: replicas, nodes: make(map[string]bool)}
}

// ringHash positions a string on the hash circle. SHA-256 rather than
// a fast non-cryptographic hash: ring hashes happen once per
// membership change and once per task, and the keys being placed are
// themselves hex SHA-256 content addresses, so uniformity matters
// more than speed.
func ringHash(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// Add inserts node's virtual points. Adding a present node is a
// no-op, so a leaf rejoining after an outage lands on exactly the
// points it held before — deterministic re-entry.
func (r *Ring) Add(node string) {
	if r.nodes[node] {
		return
	}
	r.nodes[node] = true
	for i := 0; i < r.replicas; i++ {
		r.points = append(r.points, ringPoint{
			hash: ringHash(node + "#" + strconv.Itoa(i)),
			node: node,
		})
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].hash < r.points[b].hash })
}

// Remove deletes node's virtual points; keys it owned fall through to
// their clockwise successors. Removing an absent node is a no-op.
func (r *Ring) Remove(node string) {
	if !r.nodes[node] {
		return
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Has reports whether node is currently on the ring.
func (r *Ring) Has(node string) bool { return r.nodes[node] }

// Len returns the number of nodes on the ring.
func (r *Ring) Len() int { return len(r.nodes) }

// Nodes returns the current node set in sorted order.
func (r *Ring) Nodes() []string {
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Lookup returns the node owning key — the first virtual point at or
// clockwise after the key's hash, wrapping at the top of the circle.
// ok is false exactly when the ring is empty.
func (r *Ring) Lookup(key string) (node string, ok bool) {
	if len(r.points) == 0 {
		return "", false
	}
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: the key sits past the last point
	}
	return r.points[i].node, true
}
