package dist

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"optirand/internal/engine"
	"optirand/internal/fault"
	"optirand/internal/gen"
	"optirand/internal/sim"
)

// testTasks expands a small circuits × weightings × seeds grid into
// engine tasks (27 tasks over three generated circuits).
func testTasks(t *testing.T) []*engine.Task {
	t.Helper()
	sweep := &engine.Sweep{
		BaseSeed:    1987,
		Repetitions: 3,
		Patterns:    320,
		CurveStep:   100,
	}
	for _, name := range []string{"c432", "c880", "c1908"} {
		b, ok := gen.ByName(name)
		if !ok {
			t.Fatalf("missing benchmark %s", name)
		}
		c := b.Build()
		faults := fault.New(c).Reps
		n := c.NumInputs()
		uniform := make([]float64, n)
		skewed := make([]float64, n)
		for i := range uniform {
			uniform[i] = 0.5
			skewed[i] = 0.1 + 0.8*float64(i)/float64(n)
		}
		sweep.Circuits = append(sweep.Circuits, engine.SweepCircuit{
			Name:    name,
			Circuit: c,
			Faults:  faults,
			Weightings: []engine.Weighting{
				{Name: "uniform", Sets: [][]float64{uniform}},
				{Name: "skewed", Sets: [][]float64{skewed}},
				{Name: "mixture", Sets: [][]float64{uniform, skewed}},
			},
		})
	}
	return sweep.Tasks()
}

// campaigns projects results onto their deterministic payload.
func campaigns(results []engine.TaskResult) []*sim.CampaignResult {
	out := make([]*sim.CampaignResult, len(results))
	for i, r := range results {
		out[i] = r.Campaign
	}
	return out
}

// TestDispatcherMatchesEngineRun proves the queue-backed backend is
// bit-identical to the in-process pool for several fleet sizes.
func TestDispatcherMatchesEngineRun(t *testing.T) {
	tasks := testTasks(t)
	ref, err := engine.Run(tasks, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3, 16} {
		d := NewDispatcher(LocalExecutor, Options{Workers: workers})
		got, err := d.Run(tasks)
		d.Close()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(campaigns(ref), campaigns(got)) {
			t.Fatalf("workers=%d: dispatcher results differ from engine.Run", workers)
		}
	}
}

// TestDispatcherRetryRequeue proves failed attempts requeue and merge
// without a trace: an executor that fails every first attempt still
// produces results bit-identical to the serial reference.
func TestDispatcherRetryRequeue(t *testing.T) {
	tasks := testTasks(t)
	ref, err := engine.Run(tasks, 1)
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	seen := make(map[*engine.Task]int)
	flaky := func(task *engine.Task) (*sim.CampaignResult, error) {
		mu.Lock()
		seen[task]++
		n := seen[task]
		mu.Unlock()
		if n == 1 {
			return nil, fmt.Errorf("injected worker failure for %s", task.Label)
		}
		return LocalExecutor(task)
	}

	d := NewDispatcher(flaky, Options{Workers: 4, MaxAttempts: 3})
	defer d.Close()
	got, err := d.Run(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(campaigns(ref), campaigns(got)) {
		t.Fatal("results differ after retry/requeue")
	}
	for task, n := range seen {
		if n != 2 {
			t.Fatalf("task %s executed %d times, want 2 (1 failure + 1 success)", task.Label, n)
		}
	}
}

// TestDispatcherPermanentFailure proves attempt exhaustion fails the
// batch with a descriptive error.
func TestDispatcherPermanentFailure(t *testing.T) {
	tasks := testTasks(t)[:3]
	broken := func(task *engine.Task) (*sim.CampaignResult, error) {
		return nil, fmt.Errorf("backend down")
	}
	d := NewDispatcher(broken, Options{Workers: 2, MaxAttempts: 2})
	defer d.Close()
	if _, err := d.Run(tasks); err == nil {
		t.Fatal("expected batch failure")
	} else if want := "after 2 attempts"; !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not mention %q", err, want)
	}
}

// TestDispatcherPermanentErrorFailsFast proves errors marked with
// Permanent (deterministic rejections, e.g. HTTP 4xx) are not
// retried: each task executes at most once.
func TestDispatcherPermanentErrorFailsFast(t *testing.T) {
	tasks := testTasks(t)[:4]
	var execs atomic.Int64
	rejecting := func(task *engine.Task) (*sim.CampaignResult, error) {
		execs.Add(1)
		return nil, Permanent(fmt.Errorf("wire: version 9 not supported"))
	}
	d := NewDispatcher(rejecting, Options{Workers: 1, MaxAttempts: 3})
	defer d.Close()
	if _, err := d.Run(tasks); err == nil {
		t.Fatal("expected batch failure")
	} else if !IsPermanent(err) {
		t.Fatalf("permanence not preserved through the batch error: %v", err)
	}
	// The first permanent failure dooms the batch, which abandons its
	// still-queued items: with one worker, exactly one execution.
	if got := execs.Load(); got != 1 {
		t.Fatalf("%d executions, want 1 (no retries, queued items skipped after batch failure)", got)
	}
}

// TestDispatcherContextCancel proves a cancelled submitter gets its
// error immediately and its queued items are skipped instead of
// executed — the fleet stops spending compute on abandoned batches.
func TestDispatcherContextCancel(t *testing.T) {
	tasks := testTasks(t)
	started := make(chan struct{})
	block := make(chan struct{})
	var execs atomic.Int64
	slow := func(task *engine.Task) (*sim.CampaignResult, error) {
		if execs.Add(1) == 1 {
			close(started)
			<-block // hold the single worker mid-campaign
		}
		return LocalExecutor(task)
	}
	d := NewDispatcher(slow, Options{Workers: 1})
	defer d.Close()

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, _, err := d.RunCached(ctx, tasks)
		errc <- err
	}()
	<-started
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	close(block)

	// A fresh batch drains behind the abandoned items; when it
	// finishes, only the held item and this sentinel have executed.
	if _, err := d.Run(tasks[:1]); err != nil {
		t.Fatal(err)
	}
	if got := execs.Load(); got != 2 {
		t.Fatalf("%d executions, want 2 (abandoned queue items must be skipped)", got)
	}
}

// TestDispatcherCache proves repeated tasks are served from the
// content-addressed cache — zero new executions, identical bytes.
func TestDispatcherCache(t *testing.T) {
	tasks := testTasks(t)
	var execs atomic.Int64
	counting := func(task *engine.Task) (*sim.CampaignResult, error) {
		execs.Add(1)
		return LocalExecutor(task)
	}
	d := NewDispatcher(counting, Options{Workers: 4, Cache: NewCache(64)})
	defer d.Close()

	cold, cached, err := d.RunCached(context.Background(), tasks)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range cached {
		if c {
			t.Fatalf("task %d reported cached on a cold cache", i)
		}
	}
	if got := execs.Load(); got != int64(len(tasks)) {
		t.Fatalf("cold run executed %d tasks, want %d", got, len(tasks))
	}

	warm, cached, err := d.RunCached(context.Background(), tasks)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range cached {
		if !c {
			t.Fatalf("task %d missed a warm cache", i)
		}
	}
	if got := execs.Load(); got != int64(len(tasks)) {
		t.Fatalf("warm run executed %d extra tasks", got-int64(len(tasks)))
	}
	if !reflect.DeepEqual(campaigns(cold), campaigns(warm)) {
		t.Fatal("cached results differ from executed results")
	}

	// Relabeling and rescheduling must not defeat the content address.
	relabeled := make([]*engine.Task, len(tasks))
	for i, task := range tasks {
		cp := *task
		cp.Label = fmt.Sprintf("renamed#%d", i)
		cp.SimWorkers = 7
		relabeled[len(tasks)-1-i] = &cp
	}
	_, cached, err = d.RunCached(context.Background(), relabeled)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range cached {
		if !c {
			t.Fatalf("relabeled task %d missed the cache", i)
		}
	}
}

// TestDispatcherConcurrentBatches interleaves several Run calls on one
// fleet and checks positional integrity of every batch.
func TestDispatcherConcurrentBatches(t *testing.T) {
	tasks := testTasks(t)
	ref, err := engine.Run(tasks, 1)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDispatcher(LocalExecutor, Options{Workers: 3})
	defer d.Close()

	var wg sync.WaitGroup
	errs := make([]error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := d.Run(tasks)
			if err != nil {
				errs[g] = err
				return
			}
			if !reflect.DeepEqual(campaigns(ref), campaigns(got)) {
				errs[g] = fmt.Errorf("batch %d: results differ", g)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestCacheLRUEviction pins the eviction policy.
func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	mk := func(n int) *sim.CampaignResult {
		return &sim.CampaignResult{TotalFaults: n, FirstDetected: []int{n}}
	}
	c.Put("a", mk(1))
	c.Put("b", mk(2))
	if _, ok := c.Get("a"); !ok { // refresh a; b becomes LRU
		t.Fatal("a missing")
	}
	c.Put("c", mk(3)) // evicts b
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived eviction")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a evicted despite refresh")
	}
	if _, ok := c.Get("c"); !ok {
		t.Fatal("c missing")
	}
	st := c.Stats()
	if st.Entries != 2 {
		t.Fatalf("entries = %d, want 2", st.Entries)
	}
}

// TestCacheCopies proves cached results are isolated from caller
// mutation on both the Put and Get side.
func TestCacheCopies(t *testing.T) {
	c := NewCache(4)
	orig := &sim.CampaignResult{TotalFaults: 1, FirstDetected: []int{5}}
	c.Put("k", orig)
	orig.FirstDetected[0] = 99

	got1, _ := c.Get("k")
	if got1.FirstDetected[0] != 5 {
		t.Fatal("Put did not copy")
	}
	got1.FirstDetected[0] = 42
	got2, _ := c.Get("k")
	if got2.FirstDetected[0] != 5 {
		t.Fatal("Get did not copy")
	}
}
