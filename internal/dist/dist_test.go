package dist

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"optirand/internal/engine"
	"optirand/internal/fault"
	"optirand/internal/gen"
	"optirand/internal/sim"
	"optirand/internal/wire"
)

// testTasks expands a small circuits × weightings × seeds grid into
// engine tasks (27 tasks over three generated circuits).
func testTasks(t *testing.T) []*engine.Task {
	t.Helper()
	return testGrid(t).Tasks()
}

// testGrid is testTasks's grid in streamable (TaskSource) form.
func testGrid(t *testing.T) *engine.Sweep {
	t.Helper()
	sweep := &engine.Sweep{
		BaseSeed:    1987,
		Repetitions: 3,
		Patterns:    320,
		CurveStep:   100,
	}
	for _, name := range []string{"c432", "c880", "c1908"} {
		b, ok := gen.ByName(name)
		if !ok {
			t.Fatalf("missing benchmark %s", name)
		}
		c := b.Build()
		faults := fault.New(c).Reps
		n := c.NumInputs()
		uniform := make([]float64, n)
		skewed := make([]float64, n)
		for i := range uniform {
			uniform[i] = 0.5
			skewed[i] = 0.1 + 0.8*float64(i)/float64(n)
		}
		sweep.Circuits = append(sweep.Circuits, engine.SweepCircuit{
			Name:    name,
			Circuit: c,
			Faults:  faults,
			Weightings: []engine.Weighting{
				{Name: "uniform", Sets: [][]float64{uniform}},
				{Name: "skewed", Sets: [][]float64{skewed}},
				{Name: "mixture", Sets: [][]float64{uniform, skewed}},
			},
		})
	}
	return sweep
}

// campaigns projects results onto their deterministic payload.
func campaigns(results []engine.TaskResult) []*sim.CampaignResult {
	out := make([]*sim.CampaignResult, len(results))
	for i, r := range results {
		out[i] = r.Campaign
	}
	return out
}

// TestDispatcherMatchesEngineRun proves the queue-backed backend is
// bit-identical to the in-process pool for several fleet sizes.
func TestDispatcherMatchesEngineRun(t *testing.T) {
	tasks := testTasks(t)
	ref, err := engine.Run(context.Background(), tasks, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3, 16} {
		d := NewDispatcher(LocalExecutor, Options{Workers: workers})
		got, err := d.Run(context.Background(), tasks)
		d.Close()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(campaigns(ref), campaigns(got)) {
			t.Fatalf("workers=%d: dispatcher results differ from engine.Run", workers)
		}
	}
}

// TestDispatcherRetryRequeue proves failed attempts requeue and merge
// without a trace: an executor that fails every first attempt still
// produces results bit-identical to the serial reference.
func TestDispatcherRetryRequeue(t *testing.T) {
	tasks := testTasks(t)
	ref, err := engine.Run(context.Background(), tasks, 1)
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	seen := make(map[*engine.Task]int)
	flaky := func(_ context.Context, task *engine.Task) (*sim.CampaignResult, error) {
		mu.Lock()
		seen[task]++
		n := seen[task]
		mu.Unlock()
		if n == 1 {
			return nil, fmt.Errorf("injected worker failure for %s", task.Label)
		}
		return LocalExecutor(context.Background(), task)
	}

	d := NewDispatcher(flaky, Options{Workers: 4, MaxAttempts: 3})
	defer d.Close()
	got, err := d.Run(context.Background(), tasks)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(campaigns(ref), campaigns(got)) {
		t.Fatal("results differ after retry/requeue")
	}
	for task, n := range seen {
		if n != 2 {
			t.Fatalf("task %s executed %d times, want 2 (1 failure + 1 success)", task.Label, n)
		}
	}
}

// TestDispatcherPermanentFailure proves attempt exhaustion fails the
// batch with a descriptive error.
func TestDispatcherPermanentFailure(t *testing.T) {
	tasks := testTasks(t)[:3]
	broken := func(_ context.Context, task *engine.Task) (*sim.CampaignResult, error) {
		return nil, fmt.Errorf("backend down")
	}
	d := NewDispatcher(broken, Options{Workers: 2, MaxAttempts: 2})
	defer d.Close()
	if _, err := d.Run(context.Background(), tasks); err == nil {
		t.Fatal("expected batch failure")
	} else if want := "after 2 attempts"; !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not mention %q", err, want)
	}
}

// TestDispatcherPermanentErrorFailsFast proves errors marked with
// Permanent (deterministic rejections, e.g. HTTP 4xx) are not
// retried: each task executes at most once.
func TestDispatcherPermanentErrorFailsFast(t *testing.T) {
	tasks := testTasks(t)[:4]
	var execs atomic.Int64
	rejecting := func(_ context.Context, task *engine.Task) (*sim.CampaignResult, error) {
		execs.Add(1)
		return nil, Permanent(fmt.Errorf("wire: version 9 not supported"))
	}
	d := NewDispatcher(rejecting, Options{Workers: 1, MaxAttempts: 3})
	defer d.Close()
	if _, err := d.Run(context.Background(), tasks); err == nil {
		t.Fatal("expected batch failure")
	} else if !IsPermanent(err) {
		t.Fatalf("permanence not preserved through the batch error: %v", err)
	}
	// The first permanent failure dooms the batch, which abandons its
	// still-queued items: with one worker, exactly one execution.
	if got := execs.Load(); got != 1 {
		t.Fatalf("%d executions, want 1 (no retries, queued items skipped after batch failure)", got)
	}
}

// TestDispatcherContextCancel proves a cancelled submitter gets its
// error immediately and its queued items are skipped instead of
// executed — the fleet stops spending compute on abandoned batches.
func TestDispatcherContextCancel(t *testing.T) {
	tasks := testTasks(t)
	started := make(chan struct{})
	block := make(chan struct{})
	var execs atomic.Int64
	slow := func(_ context.Context, task *engine.Task) (*sim.CampaignResult, error) {
		if execs.Add(1) == 1 {
			close(started)
			<-block // hold the single worker mid-campaign
		}
		return LocalExecutor(context.Background(), task)
	}
	d := NewDispatcher(slow, Options{Workers: 1})
	defer d.Close()

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, _, err := d.RunCached(ctx, tasks)
		errc <- err
	}()
	<-started
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	close(block)

	// A fresh batch drains behind the abandoned items; when it
	// finishes, only the held item and this sentinel have executed.
	// (The sentinel is a task the cancelled batch also submitted: if
	// its queued item has not been popped yet, in-flight dedup makes
	// the live sentinel a waiter on it, and the skip logic must still
	// execute it — a queued task is only skipped when *every* batch
	// interested in it is gone.)
	if _, err := d.Run(context.Background(), tasks[1:2]); err != nil {
		t.Fatal(err)
	}
	if got := execs.Load(); got != 2 {
		t.Fatalf("%d executions, want 2 (abandoned queue items must be skipped)", got)
	}
}

// TestDispatcherCache proves repeated tasks are served from the
// content-addressed cache — zero new executions, identical bytes.
func TestDispatcherCache(t *testing.T) {
	tasks := testTasks(t)
	var execs atomic.Int64
	counting := func(_ context.Context, task *engine.Task) (*sim.CampaignResult, error) {
		execs.Add(1)
		return LocalExecutor(context.Background(), task)
	}
	d := NewDispatcher(counting, Options{Workers: 4, Cache: NewCache(64)})
	defer d.Close()

	cold, cached, err := d.RunCached(context.Background(), tasks)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range cached {
		if c {
			t.Fatalf("task %d reported cached on a cold cache", i)
		}
	}
	if got := execs.Load(); got != int64(len(tasks)) {
		t.Fatalf("cold run executed %d tasks, want %d", got, len(tasks))
	}

	warm, cached, err := d.RunCached(context.Background(), tasks)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range cached {
		if !c {
			t.Fatalf("task %d missed a warm cache", i)
		}
	}
	if got := execs.Load(); got != int64(len(tasks)) {
		t.Fatalf("warm run executed %d extra tasks", got-int64(len(tasks)))
	}
	if !reflect.DeepEqual(campaigns(cold), campaigns(warm)) {
		t.Fatal("cached results differ from executed results")
	}

	// Relabeling and rescheduling must not defeat the content address.
	relabeled := make([]*engine.Task, len(tasks))
	for i, task := range tasks {
		cp := *task
		cp.Label = fmt.Sprintf("renamed#%d", i)
		cp.SimWorkers = 7
		relabeled[len(tasks)-1-i] = &cp
	}
	_, cached, err = d.RunCached(context.Background(), relabeled)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range cached {
		if !c {
			t.Fatalf("relabeled task %d missed the cache", i)
		}
	}
}

// TestDispatcherConcurrentBatches interleaves several Run calls on one
// fleet and checks positional integrity of every batch.
func TestDispatcherConcurrentBatches(t *testing.T) {
	tasks := testTasks(t)
	ref, err := engine.Run(context.Background(), tasks, 1)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDispatcher(LocalExecutor, Options{Workers: 3})
	defer d.Close()

	var wg sync.WaitGroup
	errs := make([]error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := d.Run(context.Background(), tasks)
			if err != nil {
				errs[g] = err
				return
			}
			if !reflect.DeepEqual(campaigns(ref), campaigns(got)) {
				errs[g] = fmt.Errorf("batch %d: results differ", g)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestCacheLRUEviction pins the eviction policy.
func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	mk := func(n int) *sim.CampaignResult {
		return &sim.CampaignResult{TotalFaults: n, FirstDetected: []int{n}}
	}
	c.Put("a", mk(1))
	c.Put("b", mk(2))
	if _, ok := c.Get("a"); !ok { // refresh a; b becomes LRU
		t.Fatal("a missing")
	}
	c.Put("c", mk(3)) // evicts b
	if _, ok := c.Get("b"); ok {
		t.Fatal("b survived eviction")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a evicted despite refresh")
	}
	if _, ok := c.Get("c"); !ok {
		t.Fatal("c missing")
	}
	st := c.Stats()
	if st.Entries != 2 {
		t.Fatalf("entries = %d, want 2", st.Entries)
	}
}

// TestCacheCopies proves cached results are isolated from caller
// mutation on both the Put and Get side.
func TestCacheCopies(t *testing.T) {
	c := NewCache(4)
	orig := &sim.CampaignResult{TotalFaults: 1, FirstDetected: []int{5}}
	c.Put("k", orig)
	orig.FirstDetected[0] = 99

	got1, _ := c.Get("k")
	if got1.FirstDetected[0] != 5 {
		t.Fatal("Put did not copy")
	}
	got1.FirstDetected[0] = 42
	got2, _ := c.Get("k")
	if got2.FirstDetected[0] != 5 {
		t.Fatal("Get did not copy")
	}
}

// TestDispatcherSingleflight proves in-flight dedup: equal tasks
// submitted concurrently — across batches and within one — execute
// once, and every submitter receives the identical result. Run under
// -race to certify the flight table.
func TestDispatcherSingleflight(t *testing.T) {
	task := testTasks(t)[0]
	ref, err := engine.Run(context.Background(), []*engine.Task{task}, 1)
	if err != nil {
		t.Fatal(err)
	}

	var execs atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	blocking := func(_ context.Context, tk *engine.Task) (*sim.CampaignResult, error) {
		if execs.Add(1) == 1 {
			close(started)
		}
		<-release // hold every execution until all batches are queued
		return LocalExecutor(context.Background(), tk)
	}
	d := NewDispatcher(blocking, Options{Workers: 4})
	defer d.Close()

	const batches = 8
	var wg sync.WaitGroup
	errs := make([]error, batches)
	results := make([][]engine.TaskResult, batches)
	for g := 0; g < batches; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each batch holds the same task twice: dedup must also
			// coalesce duplicates inside one batch.
			cp := *task
			results[g], errs[g] = d.Run(context.Background(), []*engine.Task{task, &cp})
		}()
	}
	<-started
	// Hold the one execution until every duplicate has registered on
	// its flight (2 per batch, minus the executing leader), so no
	// batch can arrive after the flight resolved and re-execute.
	key := wire.FromTask(task).IdentityHash()
	for deadline := time.Now().Add(10 * time.Second); ; {
		d.fmu.Lock()
		waiters := 0
		if fl := d.inflight[key]; fl != nil {
			waiters = len(fl.waiters)
		}
		d.fmu.Unlock()
		if waiters == 2*batches-1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d waiters registered, want %d", waiters, 2*batches-1)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if got := execs.Load(); got != 1 {
		t.Fatalf("%d executions of one content address, want 1 (singleflight)", got)
	}
	for g := 0; g < batches; g++ {
		if errs[g] != nil {
			t.Fatalf("batch %d: %v", g, errs[g])
		}
		for slot, r := range results[g] {
			if !reflect.DeepEqual(ref[0].Campaign, r.Campaign) {
				t.Fatalf("batch %d slot %d: shared result differs from the reference", g, slot)
			}
		}
	}

	// Waiters must get their own copies: mutating one batch's result
	// cannot corrupt another's.
	results[0][0].Campaign.FirstDetected[0] = -1
	if results[1][0].Campaign.FirstDetected[0] == -1 {
		t.Fatal("singleflight shared one mutable result across batches")
	}
}

// TestDispatcherSingleflightFailure proves a permanently failing
// execution fails every batch waiting on it.
func TestDispatcherSingleflightFailure(t *testing.T) {
	task := testTasks(t)[0]
	release := make(chan struct{})
	broken := func(_ context.Context, tk *engine.Task) (*sim.CampaignResult, error) {
		<-release
		return nil, Permanent(fmt.Errorf("backend down"))
	}
	d := NewDispatcher(broken, Options{Workers: 2})
	defer d.Close()

	var wg sync.WaitGroup
	errs := make([]error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, errs[g] = d.Run(context.Background(), []*engine.Task{task})
		}()
	}
	// Batches that coalesced onto the blocked flight share its
	// failure; any that arrive after it resolved execute (and fail)
	// themselves — either way every submitter must see the error.
	close(release)
	wg.Wait()
	for g, err := range errs {
		if err == nil || !strings.Contains(err.Error(), "backend down") {
			t.Fatalf("batch %d: err = %v, want the shared execution failure", g, err)
		}
	}
}

// TestDispatcherRunEach proves the dispatcher's streaming contract:
// per-index delivery, exactly once, merging identical to Run — cold
// and warm cache.
func TestDispatcherRunEach(t *testing.T) {
	tasks := testTasks(t)
	ref, err := engine.Run(context.Background(), tasks, 1)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDispatcher(LocalExecutor, Options{Workers: 3, Cache: NewCache(64)})
	defer d.Close()

	for _, temp := range []string{"cold", "warm"} {
		got := make([]engine.TaskResult, len(tasks))
		calls := 0
		err := d.RunEach(context.Background(), tasks, func(i int, r engine.TaskResult) {
			calls++
			if got[i].Campaign != nil {
				t.Fatalf("%s: slot %d delivered twice", temp, i)
			}
			got[i] = r
		})
		if err != nil {
			t.Fatalf("%s: %v", temp, err)
		}
		if calls != len(tasks) {
			t.Fatalf("%s: %d deliveries, want %d", temp, calls, len(tasks))
		}
		if !reflect.DeepEqual(campaigns(ref), campaigns(got)) {
			t.Fatalf("%s: streamed merge differs from engine.Run", temp)
		}
	}
}

// TestDispatcherForeignCancelDoesNotFailLiveBatch pins the
// singleflight cancellation semantics: when the batch whose context an
// execution was bound to hangs up mid-attempt, the aborted attempt
// burns no retry budget and a live batch sharing the flight still gets
// its result — one submitter's cancellation can never surface as an
// error in another's.
func TestDispatcherForeignCancelDoesNotFailLiveBatch(t *testing.T) {
	task := testTasks(t)[0]
	ref, err := engine.Run(context.Background(), []*engine.Task{task}, 1)
	if err != nil {
		t.Fatal(err)
	}

	var calls atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	aborting := func(ctx context.Context, tk *engine.Task) (*sim.CampaignResult, error) {
		if calls.Add(1) == 1 {
			close(started)
			<-release
			// The first attempt was bound to the cancelled batch's
			// context: model the aborted network request.
			return nil, fmt.Errorf("request aborted: %w", ctx.Err())
		}
		return LocalExecutor(ctx, tk)
	}
	// MaxAttempts 1: under the old accounting the aborted attempt
	// would exhaust the budget and fail the live batch.
	d := NewDispatcher(aborting, Options{Workers: 1, MaxAttempts: 1})
	defer d.Close()

	ctxA, cancelA := context.WithCancel(context.Background())
	errA := make(chan error, 1)
	go func() {
		_, err := d.Run(ctxA, []*engine.Task{task})
		errA <- err
	}()
	<-started

	// A live second batch coalesces onto the executing flight.
	cp := *task
	resB := make(chan []engine.TaskResult, 1)
	errB := make(chan error, 1)
	go func() {
		r, err := d.Run(context.Background(), []*engine.Task{&cp})
		resB <- r
		errB <- err
	}()
	key := wire.FromTask(task).IdentityHash()
	for deadline := time.Now().Add(10 * time.Second); ; {
		d.fmu.Lock()
		waiters := 0
		if fl := d.inflight[key]; fl != nil {
			waiters = len(fl.waiters)
		}
		d.fmu.Unlock()
		if waiters == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("second batch never registered on the flight")
		}
		time.Sleep(time.Millisecond)
	}

	cancelA()
	if err := <-errA; !errors.Is(err, context.Canceled) {
		t.Fatalf("batch A: err = %v, want context.Canceled", err)
	}
	close(release) // the in-flight attempt now aborts with A's ctx error

	if err := <-errB; err != nil {
		t.Fatalf("batch B failed on A's cancellation: %v", err)
	}
	got := <-resB
	if !reflect.DeepEqual(ref[0].Campaign, got[0].Campaign) {
		t.Fatal("batch B's result differs from the reference after the retried attempt")
	}
	if n := calls.Load(); n != 2 {
		t.Fatalf("%d executions, want 2 (aborted attempt + retry under the live context)", n)
	}
}
