package dist

import (
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"

	"optirand/internal/core"
	"optirand/internal/engine"
	"optirand/internal/wire"
)

// cacheHeader reports per-request cache temperature to clients.
const cacheHeader = "X-Optirand-Cache"

// ServerOptions configures the service daemon.
type ServerOptions struct {
	// Workers is the size of the shared campaign worker fleet
	// (<= 0 selects GOMAXPROCS). All requests compete for this fleet,
	// so total campaign compute is bounded however many clients
	// connect.
	Workers int
	// SimWorkers shards fault lists inside each campaign (<= 0 keeps
	// campaigns serial). Results are bit-identical either way; this
	// only trades intra- against inter-campaign parallelism.
	SimWorkers int
	// CacheSize bounds the content-addressed result cache in entries
	// (0 selects 1024; < 0 disables caching).
	CacheSize int
	// MaxAttempts bounds executions per task (default 3).
	MaxAttempts int
}

// Server is the optimization service: an http.Handler exposing
//
//	POST /v1/optimize  wire.OptimizeRequest → wire.OptimizeResult
//	POST /v1/campaign  wire.Task            → wire.CampaignResult
//	POST /v1/sweep     wire.SweepRequest    → wire.SweepResponse
//	GET  /v1/stats     service + cache counters
//
// Campaign and sweep execution flows through one queue-backed
// dispatcher (bounded fleet, content-addressed cache), so a sweep
// answered by the daemon is bit-identical to the same sweep run
// in-process — any worker count, any shard order, cold or warm cache.
// The X-Optirand-Cache response header reports "hit" when a campaign
// was served entirely from cache.
type Server struct {
	opts  ServerOptions
	disp  *Dispatcher
	cache *Cache
	mux   *http.ServeMux
	// optSem bounds concurrent /v1/optimize runs to the fleet size:
	// optimization is the most expensive procedure in the system and
	// runs on request goroutines, so without the bound N clients would
	// mean N unbounded optimizer loops next to the campaign fleet.
	optSem chan struct{}
}

// NewServer starts the worker fleet and returns the handler. Call
// Close to stop the fleet.
func NewServer(opts ServerOptions) *Server {
	var cache *Cache
	if opts.CacheSize >= 0 {
		cache = NewCache(opts.CacheSize)
	}
	// Resolve the documented defaults up front so optSem and /v1/stats
	// see the effective values, not the zero-value requests.
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.SimWorkers <= 0 {
		opts.SimWorkers = 1
	}
	s := &Server{
		opts:  opts,
		cache: cache,
		disp: NewDispatcher(LocalExecutor, Options{
			Workers:     opts.Workers,
			MaxAttempts: opts.MaxAttempts,
			Cache:       cache,
		}),
		mux:    http.NewServeMux(),
		optSem: make(chan struct{}, opts.Workers),
	}
	s.mux.HandleFunc("POST /v1/optimize", s.handleOptimize)
	s.mux.HandleFunc("POST /v1/campaign", s.handleCampaign)
	s.mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Close stops the worker fleet. In-flight requests must finish first
// (shut the http.Server down before closing).
func (s *Server) Close() { s.disp.Close() }

// decode reads one JSON wire value from the request body.
func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(v); err != nil {
		http.Error(w, fmt.Sprintf("bad request body: %v", err), http.StatusBadRequest)
		return false
	}
	return true
}

// respond writes one JSON wire value.
func respond(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.Encode(v) //nolint:errcheck // the connection owns delivery
}

// buildTasks converts and validates a batch of wire tasks, applying
// the server's intra-campaign sharding policy.
func (s *Server) buildTasks(ws []wire.Task) ([]*engine.Task, error) {
	tasks := make([]*engine.Task, len(ws))
	for i := range ws {
		t, err := ws[i].Build()
		if err != nil {
			return nil, fmt.Errorf("task %d: %w", i, err)
		}
		t.SimWorkers = s.opts.SimWorkers
		tasks[i] = t
	}
	return tasks, nil
}

func (s *Server) handleCampaign(w http.ResponseWriter, r *http.Request) {
	var wt wire.Task
	if !decode(w, r, &wt) {
		return
	}
	tasks, err := s.buildTasks([]wire.Task{wt})
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	results, cached, err := s.disp.RunCached(r.Context(), tasks)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if cached[0] {
		w.Header().Set(cacheHeader, "hit")
	} else {
		w.Header().Set(cacheHeader, "miss")
	}
	respond(w, wire.FromCampaign(results[0].Campaign))
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req wire.SweepRequest
	if !decode(w, r, &req) {
		return
	}
	if err := wire.CheckVersion(req.V); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	tasks, err := s.buildTasks(req.Tasks)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	results, cached, err := s.disp.RunCached(r.Context(), tasks)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	resp := wire.SweepResponse{
		V:       wire.Version,
		Results: make([]wire.CampaignResult, len(results)),
	}
	for i, res := range results {
		resp.Results[i] = *wire.FromCampaign(res.Campaign)
		if cached[i] {
			resp.CacheHits++
		}
	}
	respond(w, &resp)
}

func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	var req wire.OptimizeRequest
	if !decode(w, r, &req) {
		return
	}
	if err := wire.CheckVersion(req.V); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	c, err := req.Circuit.Build()
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	faults, err := wire.BuildFaults(req.Faults, c)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// Wait for an optimizer slot; give up if the client does.
	select {
	case s.optSem <- struct{}{}:
		defer func() { <-s.optSem }()
	case <-r.Context().Done():
		http.Error(w, "client gone before an optimizer slot freed", http.StatusServiceUnavailable)
		return
	}
	res, err := core.Optimize(c, faults, core.Options{
		Confidence: req.Confidence,
		Quantize:   req.Quantize,
		MaxSweeps:  req.MaxSweeps,
		Workers:    req.Workers,
	})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	respond(w, &wire.OptimizeResult{
		V:                  wire.Version,
		Weights:            res.Weights,
		InitialN:           res.InitialN,
		FinalN:             res.FinalN,
		Sweeps:             res.Sweeps,
		Analyses:           res.Analyses,
		SuspectedRedundant: res.SuspectedRedundant,
	})
}

// statsResponse is the /v1/stats payload.
type statsResponse struct {
	WireVersion int         `json:"wire_version"`
	Workers     int         `json:"workers"`
	SimWorkers  int         `json:"sim_workers"`
	Cache       *CacheStats `json:"cache,omitempty"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := statsResponse{
		WireVersion: wire.Version,
		Workers:     s.opts.Workers,
		SimWorkers:  s.opts.SimWorkers,
	}
	if s.cache != nil {
		st := s.cache.Stats()
		resp.Cache = &st
	}
	respond(w, &resp)
}
