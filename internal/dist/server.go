package dist

import (
	"compress/gzip"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"optirand/internal/adapt"
	"optirand/internal/core"
	"optirand/internal/engine"
	"optirand/internal/wire"
)

// cacheHeader reports per-request cache temperature to clients.
const cacheHeader = "X-Optirand-Cache"

// gzipHeader advertises, on every response, that the service accepts
// gzip-compressed request bodies (Content-Encoding: gzip). Clients
// learn it from their first exchange and compress large bodies
// thereafter; a daemon predating the header simply never receives
// compressed requests.
const gzipHeader = "X-Optirand-Gzip"

// gzipThreshold is the body size (bytes) below which compression is
// skipped in both directions: tiny control requests and responses
// cost more to deflate than to send.
const gzipThreshold = 4 << 10

// ndjsonContentType is the streaming sweep response format: one
// wire.SweepEvent per line, flushed per task.
const ndjsonContentType = "application/x-ndjson"

// cacheSnapshotFile is the result-cache snapshot filename inside
// ServerOptions.CacheDir.
const cacheSnapshotFile = "results.gob"

// journalFile is the sweep-journal filename inside
// ServerOptions.JournalDir (and a Runner's WithJournal directory).
const journalFile = "sweep.journal"

// ServerOptions configures the service daemon.
type ServerOptions struct {
	// Workers is the size of the shared campaign worker fleet
	// (<= 0 selects GOMAXPROCS). All requests compete for this fleet,
	// so total campaign compute is bounded however many clients
	// connect.
	Workers int
	// SimWorkers shards fault lists inside each campaign (<= 0 keeps
	// campaigns serial). Results are bit-identical either way; this
	// only trades intra- against inter-campaign parallelism.
	SimWorkers int
	// CacheSize bounds the content-addressed result cache in entries
	// (0 selects 1024; < 0 disables caching).
	CacheSize int
	// CacheDir, when non-empty, persists the result cache: the daemon
	// loads CacheDir/results.gob on start and writes it back (atomic
	// temp-and-rename) on Close, so a restart keeps its warm set.
	// Ignored when caching is disabled.
	CacheDir string
	// SnapshotInterval, when > 0 with CacheDir set, additionally
	// persists the result cache periodically, so a crash (as opposed
	// to a graceful shutdown) loses at most one interval's worth of
	// warm results. Each tick snapshots only if the cache accumulated
	// at least SnapshotDirty new results since the last write (see
	// below); clean ticks cost nothing.
	SnapshotInterval time.Duration
	// SnapshotDirty is the minimum number of new results that makes a
	// snapshot tick write (default 1 — any change persists).
	SnapshotDirty int
	// JournalDir, when non-empty, journals every completed result to
	// JournalDir/sweep.journal (append-only, content-addressed) and
	// serves journaled tasks without re-executing — so a restarted
	// daemon resumes half-done sweeps from disk rather than recomputing
	// them. Unlike the cache snapshot (a bounded LRU written
	// periodically), the journal is unbounded and written per result. A
	// torn final record (crash mid-append) is truncated and absorbed on
	// open; a corrupt journal is refused — the daemon logs it and runs
	// without resume rather than replaying damage.
	JournalDir string
	// BlobBytes bounds the content-addressed blob store backing
	// /v1/blobs (<= 0 selects DefaultBlobStoreBytes).
	BlobBytes int64
	// MaxAttempts bounds executions per task (default 3).
	MaxAttempts int
	// RetryDelay is the base of the jittered exponential backoff
	// between a task's retry attempts (see Options.RetryDelay; 0
	// requeues immediately). Fronts should set it: a retry against a
	// fleet with every leaf down would otherwise burn MaxAttempts in
	// microseconds, before the health checker can restore anything.
	RetryDelay time.Duration
	// Upstreams, when non-empty, runs the daemon as a federation
	// front: instead of executing campaigns on a local worker fleet,
	// every task routes to the leaf daemon (another optirandd) that
	// owns the task's circuit on a consistent-hash ring, so each leaf
	// keeps a hot compiled-circuit/blob/result-cache working set. The
	// front's own dispatcher still provides the LRU result cache,
	// singleflight dedup, journal tier, and retry — a failed leaf is
	// marked out of the ring and the retry re-routes onto survivors.
	// Workers then bounds concurrent routed requests rather than local
	// campaigns.
	Upstreams []string
	// HealthInterval is the front's leaf health-check cadence
	// (0 selects 2s, < 0 disables the checker). Ignored without
	// Upstreams.
	HealthInterval time.Duration
	// QueueLimit is the admission-control watermark: when the
	// dispatcher's queue holds at least this many waiting tasks, new
	// campaign/sweep/optimize requests are shed with 429 Too Many
	// Requests and a Retry-After header instead of queueing without
	// bound. 0 disables admission control (the queue stays unbounded).
	// Shedding never touches requests already admitted — bounded
	// latency for accepted work, loud and retryable refusal for the
	// overflow.
	QueueLimit int
	// RetryAfterHint is the delay advertised in the Retry-After header
	// of shed (429) and draining (503) responses (rounded up to whole
	// seconds; 0 selects 1s). Clients cap it at their own RetryMaxDelay.
	RetryAfterHint time.Duration
	// Role overrides the role label reported by /v1/healthz and
	// /v1/stats. Defaults to "front" when Upstreams is set and
	// "standalone" otherwise; operators label fleet members "leaf".
	Role string
	// Logf, when non-nil, receives operational messages (cache
	// load/save outcomes, federation membership transitions). The
	// library never writes to stderr itself.
	Logf func(format string, args ...any)
}

// Server is the optimization service: an http.Handler exposing
//
//	POST /v1/optimize     wire.OptimizeRequest → wire.OptimizeResult
//	POST /v1/campaign     wire.Task            → wire.CampaignResult
//	POST /v1/sweep        wire.SweepRequest    → wire.SweepResponse,
//	                      or an NDJSON stream of wire.SweepEvent when
//	                      the client sends Accept: application/x-ndjson
//	PUT  /v1/blobs/{hash} upload a content-addressed blob
//	GET  /v1/blobs/{hash} fetch one (HEAD probes residency)
//	GET  /v1/stats        service, cache, blob, dispatcher, and (on
//	                      fronts) federation counters
//	GET  /v1/healthz      cheap liveness + role/readiness (version-free,
//	                      never gzipped; what federation fronts probe)
//
// Campaign and sweep execution flows through one queue-backed
// dispatcher (bounded fleet, content-addressed cache), so a sweep
// answered by the daemon is bit-identical to the same sweep run
// in-process — any worker count, any shard order, cold or warm cache,
// streamed or batched, inline or by-ref. Tasks may reference their
// circuit and fault list by content address (see wire.Task); the
// daemon resolves them against the blob store and answers a missing
// blob with 422 so the client re-uploads and retries. The
// X-Optirand-Cache response header reports "hit" when a campaign was
// served entirely from cache.
type Server struct {
	opts    ServerOptions
	disp    *Dispatcher
	cache   *Cache
	blobs   *BlobStore
	journal *Journal
	fed     *Federation
	role    string
	started time.Time
	mux     *http.ServeMux
	// optSem bounds concurrent /v1/optimize runs to the fleet size:
	// optimization is the most expensive procedure in the system and
	// runs on request goroutines, so without the bound N clients would
	// mean N unbounded optimizer loops next to the campaign fleet.
	optSem    chan struct{}
	snapStop  chan struct{}
	snapWG    sync.WaitGroup
	closeOnce sync.Once
	// draining flips once, on BeginDrain: admission refuses new work
	// with 503 and /v1/healthz reports Ready:false so fronts route
	// around this daemon while its in-flight requests finish.
	draining atomic.Bool
	// Overload shedding counters (see OverloadStats).
	shed429          atomic.Uint64
	shed503          atomic.Uint64
	retryAfterIssued atomic.Uint64
}

// NewServer starts the worker fleet and returns the handler. Call
// Close to stop the fleet (and, with CacheDir set, persist the result
// cache).
func NewServer(opts ServerOptions) *Server {
	var cache *Cache
	if opts.CacheSize >= 0 {
		cache = NewCache(opts.CacheSize)
	}
	// Resolve the documented defaults up front so optSem and /v1/stats
	// see the effective values, not the zero-value requests.
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.SimWorkers <= 0 {
		opts.SimWorkers = 1
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	var journal *Journal
	if opts.JournalDir != "" {
		if err := os.MkdirAll(opts.JournalDir, 0o755); err != nil {
			opts.Logf("journal dir %s unusable, resume disabled: %v", opts.JournalDir, err)
		} else if j, err := OpenJournal(filepath.Join(opts.JournalDir, journalFile)); err != nil {
			opts.Logf("journal unusable, resume disabled: %v", err)
		} else {
			journal = j
			if n := j.Len(); n > 0 {
				opts.Logf("resuming from %d journaled results in %s", n, j.Path())
			}
		}
	}
	// Role wiring: with upstreams the daemon is a federation front —
	// its executor routes every task to the owning leaf instead of
	// simulating locally, while the dispatcher in front of it keeps
	// providing the cache, singleflight, journal, and retry tiers
	// (retry being the leaf-failover path).
	exec := LocalExecutor
	role := opts.Role
	var fed *Federation
	if len(opts.Upstreams) > 0 {
		f, err := NewFederation(opts.Upstreams, FederationOptions{
			HealthInterval: opts.HealthInterval,
			Logf:           opts.Logf,
		})
		if err != nil {
			// Unreachable for a non-empty upstream list; degrade loudly
			// to local execution rather than panic in a constructor.
			opts.Logf("federation unusable, executing locally: %v", err)
		} else {
			fed = f
			exec = FederatedExecutor(f)
			if role == "" {
				role = RoleFront
			}
		}
	}
	if role == "" {
		role = RoleStandalone
	}
	s := &Server{
		opts:    opts,
		cache:   cache,
		blobs:   NewBlobStore(opts.BlobBytes),
		journal: journal,
		fed:     fed,
		role:    role,
		started: time.Now(),
		disp: NewDispatcher(exec, Options{
			Workers:     opts.Workers,
			MaxAttempts: opts.MaxAttempts,
			RetryDelay:  opts.RetryDelay,
			Cache:       cache,
			Journal:     journal,
		}),
		mux:    http.NewServeMux(),
		optSem: make(chan struct{}, opts.Workers),
	}
	if cache != nil && opts.CacheDir != "" {
		path := filepath.Join(opts.CacheDir, cacheSnapshotFile)
		if err := os.MkdirAll(opts.CacheDir, 0o755); err != nil {
			opts.Logf("cache dir %s unusable, persistence disabled: %v", opts.CacheDir, err)
			s.opts.CacheDir = ""
		} else if n, err := cache.Load(path); err != nil {
			if errors.Is(err, ErrSnapshotCorrupt) {
				// Corrupt bytes never become loadable; leave them aside
				// for forensics and reclaim the path for fresh snapshots.
				quarantined := path + ".corrupt"
				if rerr := os.Rename(path, quarantined); rerr != nil {
					opts.Logf("cache snapshot corrupt and could not be quarantined, starting cold: %v (rename: %v)", err, rerr)
				} else {
					opts.Logf("cache snapshot corrupt, quarantined to %s, starting cold: %v", quarantined, err)
				}
			} else {
				opts.Logf("cache snapshot %s unreadable, starting cold: %v", path, err)
			}
		} else if n > 0 {
			opts.Logf("restored %d cached results from %s", n, path)
		}
		if s.opts.CacheDir != "" && opts.SnapshotInterval > 0 {
			s.snapStop = make(chan struct{})
			s.snapWG.Add(1)
			// The dirty baseline is captured here, before any request
			// can run: results cached while the goroutine is still
			// being scheduled must count as unpersisted.
			go s.snapshotLoop(path, cache.Generation())
		}
	}
	s.mux.HandleFunc("POST /v1/optimize", s.handleOptimize)
	s.mux.HandleFunc("POST /v1/campaign", s.handleCampaign)
	s.mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("PUT /v1/blobs/{hash}", s.handleBlobPut)
	s.mux.HandleFunc("GET /v1/blobs/{hash}", s.handleBlobGet)
	return s
}

// handleHealthz answers the liveness probe: a tiny version-free JSON
// payload (status, role, readiness, uptime), never gzipped, no
// authentication — cheap enough for load balancers to hit every
// second, and the signal the federation health checker routes on.
// A draining daemon answers status "draining", Ready false: still
// alive (in-flight work is finishing), but fronts must stop routing
// new tasks to it.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status, ready := "ok", true
	if s.draining.Load() {
		status, ready = "draining", false
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(&wire.Health{ //nolint:errcheck // the connection owns delivery
		Status:        status,
		Role:          s.role,
		Ready:         ready,
		UptimeSeconds: time.Since(s.started).Seconds(),
	})
}

// BeginDrain puts the daemon into graceful-drain mode: /v1/healthz
// flips to status "draining" / Ready false (so federation fronts stop
// routing here within one health-check interval), and every NEW
// campaign, sweep, or optimize request is refused with 503 Service
// Unavailable plus a Retry-After header. Requests already admitted —
// including long NDJSON sweep streams — run to completion; pair with
// http.Server.Shutdown, which waits for exactly those. Idempotent.
func (s *Server) BeginDrain() {
	if !s.draining.Swap(true) {
		s.opts.Logf("draining: refusing new work, finishing in-flight requests")
	}
}

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// retryAfterSeconds is the advertised Retry-After delay in whole
// seconds (the header's delay-seconds form), at least 1.
func (s *Server) retryAfterSeconds() int {
	secs := int((s.opts.RetryAfterHint + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// admit applies admission control to one work-bearing request and
// reports whether it may proceed. Refusals carry a Retry-After header
// and are counted for /v1/stats:
//
//   - draining → 503 Service Unavailable (this daemon is going away;
//     try another, or this one after its restart)
//   - queue at or over the QueueLimit watermark → 429 Too Many
//     Requests (the daemon is alive but saturated; back off)
//
// Both are retryable by construction — the client's dispatcher floors
// its jittered backoff with the advertised delay (see RetryAfterError).
func (s *Server) admit(w http.ResponseWriter) bool {
	if s.draining.Load() {
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		s.shed503.Add(1)
		s.retryAfterIssued.Add(1)
		http.Error(w, "service draining: not accepting new work", http.StatusServiceUnavailable)
		return false
	}
	if limit := s.opts.QueueLimit; limit > 0 && s.disp.QueueDepth() >= limit {
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		s.shed429.Add(1)
		s.retryAfterIssued.Add(1)
		http.Error(w, fmt.Sprintf("queue full (%d waiting, limit %d)", s.disp.QueueDepth(), limit), http.StatusTooManyRequests)
		return false
	}
	return true
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	// Every response advertises gzip request support, so a client
	// learns it from its first exchange whatever endpoint that hits.
	w.Header().Set(gzipHeader, "1")
	s.mux.ServeHTTP(w, r)
}

// snapshotLoop persists the result cache every SnapshotInterval while
// the server runs, skipping ticks on which fewer than SnapshotDirty
// new results accumulated since the last write. Completed snapshots
// show up in /v1/stats as cache.persists.
func (s *Server) snapshotLoop(path string, lastGen uint64) {
	defer s.snapWG.Done()
	dirty := uint64(s.opts.SnapshotDirty)
	if dirty < 1 {
		dirty = 1
	}
	ticker := time.NewTicker(s.opts.SnapshotInterval)
	defer ticker.Stop()
	for {
		select {
		case <-s.snapStop:
			return
		case <-ticker.C:
			gen := s.cache.Generation()
			if gen-lastGen < dirty {
				continue
			}
			if err := s.cache.Save(path); err != nil {
				s.opts.Logf("periodic cache snapshot failed: %v", err)
				continue
			}
			lastGen = gen
			s.opts.Logf("periodic snapshot: persisted %d cached results", s.cache.Stats().Entries)
		}
	}
}

// Close stops the worker fleet and, when CacheDir is configured,
// persists the result cache snapshot. In-flight requests must finish
// first (shut the http.Server down before closing). Idempotent.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		if s.snapStop != nil {
			close(s.snapStop)
			s.snapWG.Wait()
		}
		s.disp.Close()
		if s.fed != nil {
			// After the dispatcher: no routed request can be in flight
			// once the fleet has drained.
			s.fed.Close()
		}
		if s.journal != nil {
			if err := s.journal.Close(); err != nil {
				s.opts.Logf("journal not cleanly closed: %v", err)
			}
		}
		if s.cache != nil && s.opts.CacheDir != "" {
			path := filepath.Join(s.opts.CacheDir, cacheSnapshotFile)
			if err := s.cache.Save(path); err != nil {
				s.opts.Logf("cache snapshot not persisted: %v", err)
			} else {
				s.opts.Logf("persisted %d cached results to %s", s.cache.Stats().Entries, path)
			}
		}
	})
}

// requestBody returns the request body, transparently inflating
// gzip-compressed requests (Content-Encoding: gzip).
func requestBody(r *http.Request) (io.Reader, error) {
	if !strings.Contains(r.Header.Get("Content-Encoding"), "gzip") {
		return r.Body, nil
	}
	zr, err := gzip.NewReader(r.Body)
	if err != nil {
		return nil, fmt.Errorf("bad gzip request body: %v", err)
	}
	return zr, nil
}

// decode reads one JSON wire value from the (possibly compressed)
// request body.
func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	body, err := requestBody(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return false
	}
	if err := json.NewDecoder(body).Decode(v); err != nil {
		http.Error(w, fmt.Sprintf("bad request body: %v", err), http.StatusBadRequest)
		return false
	}
	return true
}

// acceptsGzip reports whether the client can read a gzip response
// body. The Go http client advertises and transparently inflates it
// by default.
func acceptsGzip(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept-Encoding"), "gzip")
}

// writeBody delivers one response payload, compressing it when the
// client accepts gzip and the body clears the size threshold.
func writeBody(w http.ResponseWriter, r *http.Request, contentType string, body []byte) {
	w.Header().Set("Content-Type", contentType)
	if len(body) >= gzipThreshold && acceptsGzip(r) {
		w.Header().Set("Content-Encoding", "gzip")
		zw := gzip.NewWriter(w)
		zw.Write(body) //nolint:errcheck // the connection owns delivery
		zw.Close()     //nolint:errcheck
		return
	}
	w.Write(body) //nolint:errcheck
}

// respond writes one JSON wire value.
func respond(w http.ResponseWriter, r *http.Request, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeBody(w, r, "application/json", body)
}

// resolveTask rewrites a by-ref task to inline form against the blob
// store; the returned status is the HTTP status for err (422 for a
// missing blob — retryable after an upload — 400 for a corrupt one).
func (s *Server) resolveTask(wt *wire.Task) (status int, err error) {
	err = wt.Resolve(s.blobs.Get)
	if err == nil {
		return http.StatusOK, nil
	}
	var unresolved *wire.UnresolvedRefError
	if errors.As(err, &unresolved) {
		return http.StatusUnprocessableEntity, err
	}
	return http.StatusBadRequest, err
}

// buildTasks resolves, converts, and validates a batch of wire tasks,
// applying the server's intra-campaign sharding policy.
func (s *Server) buildTasks(ws []wire.Task) ([]*engine.Task, int, error) {
	tasks := make([]*engine.Task, len(ws))
	for i := range ws {
		if status, err := s.resolveTask(&ws[i]); err != nil {
			return nil, status, fmt.Errorf("task %d: %w", i, err)
		}
		t, err := ws[i].Build()
		if err != nil {
			return nil, http.StatusBadRequest, fmt.Errorf("task %d: %w", i, err)
		}
		t.SimWorkers = s.opts.SimWorkers
		tasks[i] = t
	}
	return tasks, http.StatusOK, nil
}

func (s *Server) handleBlobPut(w http.ResponseWriter, r *http.Request) {
	body, err := requestBody(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	data, err := io.ReadAll(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := s.blobs.Put(r.PathValue("hash"), data); err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, ErrBlobTooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		http.Error(w, err.Error(), status)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleBlobGet(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	if r.Method == http.MethodHead {
		// Residency probe: no body, and no recency bump — probing every
		// circuit of a sweep must not evict what the sweep still needs.
		if !s.blobs.Has(hash) {
			w.WriteHeader(http.StatusNotFound)
			return
		}
		w.WriteHeader(http.StatusOK)
		return
	}
	data, ok := s.blobs.Get(hash)
	if !ok {
		http.Error(w, fmt.Sprintf("unknown blob %s", hash), http.StatusNotFound)
		return
	}
	writeBody(w, r, "application/json", data)
}

func (s *Server) handleCampaign(w http.ResponseWriter, r *http.Request) {
	if !s.admit(w) {
		return
	}
	var wt wire.Task
	if !decode(w, r, &wt) {
		return
	}
	tasks, status, err := s.buildTasks([]wire.Task{wt})
	if err != nil {
		http.Error(w, err.Error(), status)
		return
	}
	results, cached, err := s.disp.RunCached(r.Context(), tasks)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if cached[0] {
		w.Header().Set(cacheHeader, "hit")
	} else {
		w.Header().Set(cacheHeader, "miss")
	}
	respond(w, r, wire.FromCampaign(results[0].Campaign))
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if !s.admit(w) {
		return
	}
	var req wire.SweepRequest
	if !decode(w, r, &req) {
		return
	}
	if err := wire.CheckVersion(req.V); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	tasks, status, err := s.buildTasks(req.Tasks)
	if err != nil {
		http.Error(w, err.Error(), status)
		return
	}
	if strings.Contains(r.Header.Get("Accept"), ndjsonContentType) {
		s.streamSweep(w, r, tasks)
		return
	}
	results, cached, err := s.disp.RunCached(r.Context(), tasks)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	resp := wire.SweepResponse{
		V:       wire.Version,
		Results: make([]wire.CampaignResult, len(results)),
	}
	for i, res := range results {
		resp.Results[i] = *wire.FromCampaign(res.Campaign)
		if cached[i] {
			resp.CacheHits++
		}
	}
	respond(w, r, &resp)
}

// streamEncoder writes NDJSON events with per-event delivery. When
// compressing, each event is followed by a gzip Flush — which emits a
// sync block the peer's decompressor can decode through — and then
// the HTTP flush, so compression recovers the stream's bytes without
// buffering away its timeliness.
type streamEncoder struct {
	enc     *json.Encoder
	zw      *gzip.Writer
	flusher http.Flusher
	wrote   bool
}

// newStreamEncoder stacks the NDJSON encoder over w, inserting a
// flush-aware gzip layer when compress is set. Call close when done.
func newStreamEncoder(w io.Writer, flusher http.Flusher, compress bool) *streamEncoder {
	e := &streamEncoder{flusher: flusher}
	if compress {
		e.zw = gzip.NewWriter(w)
		e.enc = json.NewEncoder(e.zw)
	} else {
		e.enc = json.NewEncoder(w)
	}
	return e
}

// emit writes one event and pushes it all the way to the peer.
func (e *streamEncoder) emit(ev *wire.SweepEvent) {
	e.wrote = true
	e.enc.Encode(ev) //nolint:errcheck // the connection owns delivery
	if e.zw != nil {
		e.zw.Flush() //nolint:errcheck
	}
	if e.flusher != nil {
		e.flusher.Flush()
	}
}

// close finishes the compression layer (writing the gzip trailer).
func (e *streamEncoder) close() {
	if e.zw != nil {
		e.zw.Close() //nolint:errcheck
	}
}

// streamSweep answers a sweep as an NDJSON stream: one wire.SweepEvent
// per task, written and flushed as the fleet completes it (cache hits
// first, then completion order), then a trailer with Done and the
// batch's cache-hit count. This is the wire half of the streaming
// contract: a remote engine.StreamBackend.RunEach observes per-task
// results across the network instead of waiting for the whole batch.
// When the client accepts gzip the stream is compressed flush-aware:
// every event ends with a gzip sync point, so per-event delivery
// survives compression and large streamed results recover most of
// their bytes.
func (s *Server) streamSweep(w http.ResponseWriter, r *http.Request, tasks []*engine.Task) {
	w.Header().Set("Content-Type", ndjsonContentType)
	compress := acceptsGzip(r)
	if compress {
		w.Header().Set("Content-Encoding", "gzip")
	}
	flusher, _ := w.(http.Flusher)
	enc := newStreamEncoder(w, flusher, compress)
	cacheHits := 0
	err := s.disp.RunEachCached(r.Context(), tasks, func(i int, res engine.TaskResult, cached bool) {
		if cached {
			cacheHits++
		}
		enc.emit(&wire.SweepEvent{
			V:         wire.Version,
			Index:     i,
			Result:    wire.FromCampaign(res.Campaign),
			Cached:    cached,
			ElapsedNS: res.Elapsed.Nanoseconds(),
		})
	})
	switch {
	case err != nil && !enc.wrote:
		// Nothing streamed yet (validation failed, or the batch failed
		// before its first completion): a plain HTTP error is still
		// expressible. The unused gzip layer never wrote its header,
		// but the advertised encoding must be withdrawn first.
		w.Header().Del("Content-Encoding")
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	case err != nil:
		enc.emit(&wire.SweepEvent{V: wire.Version, Index: -1, Error: err.Error()})
	default:
		enc.emit(&wire.SweepEvent{V: wire.Version, Index: -1, Done: true, CacheHits: cacheHits})
	}
	enc.close()
}

func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	if !s.admit(w) {
		return
	}
	var req wire.OptimizeRequest
	if !decode(w, r, &req) {
		return
	}
	if err := wire.CheckVersion(req.V); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	c, err := req.Circuit.Build()
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	faults, err := wire.BuildFaults(req.Faults, c)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// Wait for an optimizer slot; give up if the client does.
	select {
	case s.optSem <- struct{}{}:
		defer func() { <-s.optSem }()
	case <-r.Context().Done():
		http.Error(w, "client gone before an optimizer slot freed", http.StatusServiceUnavailable)
		return
	}
	res, err := core.Optimize(c, faults, core.Options{
		Confidence: req.Confidence,
		Quantize:   req.Quantize,
		MaxSweeps:  req.MaxSweeps,
		Workers:    req.Workers,
	})
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	respond(w, r, &wire.OptimizeResult{
		V:                  wire.Version,
		Weights:            res.Weights,
		InitialN:           res.InitialN,
		FinalN:             res.FinalN,
		Sweeps:             res.Sweeps,
		Analyses:           res.Analyses,
		SuspectedRedundant: res.SuspectedRedundant,
	})
}

// OverloadStats is the /v1/stats admission-control section: how often
// this daemon refused work and why. Shed429 counts queue-watermark
// refusals, Shed503 drain refusals, RetryAfterIssued the Retry-After
// headers written (every refusal carries one). Draining mirrors the
// current drain state, QueueDepth and QueueLimit the live watermark
// inputs — together a one-curl answer to "is this daemon refusing
// work, and is that load or shutdown?".
type OverloadStats struct {
	Draining         bool   `json:"draining"`
	QueueDepth       int    `json:"queue_depth"`
	QueueLimit       int    `json:"queue_limit,omitempty"`
	Shed429          uint64 `json:"shed_429"`
	Shed503          uint64 `json:"shed_503"`
	RetryAfterIssued uint64 `json:"retry_after_issued"`
}

// statsResponse is the /v1/stats payload.
type statsResponse struct {
	WireVersion int `json:"wire_version"`
	// Role is the daemon's place in a tree ("front", "leaf",
	// "standalone") and UptimeSeconds its age; on fronts, Federation
	// carries per-leaf route and health counters — together they make
	// a whole daemon tree debuggable from one curl per node.
	Role          string  `json:"role"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Workers       int     `json:"workers"`
	SimWorkers    int     `json:"sim_workers"`
	CacheDir      string  `json:"cache_dir,omitempty"`
	// SnapshotInterval reports the periodic cache-snapshot cadence
	// ("0s" when only shutdown persistence is active); completed
	// snapshots — periodic and shutdown alike — are counted in
	// cache.persists.
	SnapshotInterval string           `json:"snapshot_interval,omitempty"`
	JournalDir       string           `json:"journal_dir,omitempty"`
	Cache            *CacheStats      `json:"cache,omitempty"`
	Blobs            *BlobStats       `json:"blobs,omitempty"`
	Dispatcher       *DispatcherStats `json:"dispatcher,omitempty"`
	Journal          *JournalStats    `json:"journal,omitempty"`
	Federation       *FederationStats `json:"federation,omitempty"`
	Overload         *OverloadStats   `json:"overload,omitempty"`
	// Adaptive counts this process's block-adaptive campaign activity
	// (rounds executed, re-optimize invocations, bandit arm pulls) —
	// the adapt package's process-wide counters, so in-process library
	// use shows up here too.
	Adaptive *adapt.Stats `json:"adaptive,omitempty"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := statsResponse{
		WireVersion:   wire.Version,
		Role:          s.role,
		UptimeSeconds: time.Since(s.started).Seconds(),
		Workers:       s.opts.Workers,
		SimWorkers:    s.opts.SimWorkers,
		CacheDir:      s.opts.CacheDir,
	}
	if s.snapStop != nil { // the snapshot loop actually runs
		resp.SnapshotInterval = s.opts.SnapshotInterval.String()
	}
	if s.cache != nil {
		st := s.cache.Stats()
		resp.Cache = &st
	}
	bst := s.blobs.Stats()
	resp.Blobs = &bst
	dst := s.disp.Stats()
	resp.Dispatcher = &dst
	if s.journal != nil {
		resp.JournalDir = s.opts.JournalDir
		jst := s.journal.Stats()
		resp.Journal = &jst
	}
	if s.fed != nil {
		fst := s.fed.Stats()
		resp.Federation = &fst
	}
	resp.Overload = &OverloadStats{
		Draining:         s.draining.Load(),
		QueueDepth:       s.disp.QueueDepth(),
		QueueLimit:       s.opts.QueueLimit,
		Shed429:          s.shed429.Load(),
		Shed503:          s.shed503.Load(),
		RetryAfterIssued: s.retryAfterIssued.Load(),
	}
	ast := adapt.GlobalStats()
	resp.Adaptive = &ast
	respond(w, r, &resp)
}
