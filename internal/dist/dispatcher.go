package dist

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"runtime"
	"sync"
	"time"

	"optirand/internal/engine"
	"optirand/internal/wire"
)

// permanentError marks an executor failure that retrying cannot fix
// (a rejected request, a wire-version mismatch). The dispatcher fails
// the batch on the first one instead of burning MaxAttempts.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent wraps err so the dispatcher will not retry it.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// IsPermanent reports whether err (or anything it wraps) was marked
// with Permanent.
func IsPermanent(err error) bool {
	var p *permanentError
	return errors.As(err, &p)
}

// RetryAfterError is a retryable failure carrying the server's
// requested backoff — the client-side form of a 429/503 answer with a
// Retry-After header. The dispatcher honors After as a floor under its
// own jittered exponential backoff (never waiting less than the server
// asked), capped at Options.RetryMaxDelay so a hostile or misconfigured
// server cannot park a retry for an hour.
type RetryAfterError struct {
	After time.Duration
	Err   error
}

func (e *RetryAfterError) Error() string {
	return fmt.Sprintf("%v (server asks to retry after %v)", e.Err, e.After)
}
func (e *RetryAfterError) Unwrap() error { return e.Err }

// retryAfterHint extracts the server-requested backoff from err, or 0.
func retryAfterHint(err error) time.Duration {
	var ra *RetryAfterError
	if errors.As(err, &ra) {
		return ra.After
	}
	return 0
}

// maxRetryAfterHonor caps a server-requested Retry-After on
// dispatchers with no configured RetryMaxDelay, so even a
// zero-backoff (test) configuration cannot be parked indefinitely by
// a bad header.
const maxRetryAfterHonor = 30 * time.Second

// Options configures a Dispatcher.
type Options struct {
	// Workers is the size of the worker fleet draining the queue
	// (<= 0 selects GOMAXPROCS).
	Workers int
	// MaxAttempts bounds executions per task; a task whose every
	// attempt fails fails the whole batch (default 3). Attempts beyond
	// the first happen on whichever worker frees up, so a task is
	// retried away from a wedged worker, not pinned to it.
	MaxAttempts int
	// Cache, if non-nil, serves repeated tasks by content address
	// (wire identity hash) without executing or even enqueueing them,
	// and stores every fresh result. Caches may be shared between
	// dispatchers.
	Cache *Cache
	// Journal, if non-nil, is a second, persistent result tier behind
	// the cache: tasks it already holds are served without executing
	// (surviving process restarts, unlike the cache's bounded LRU), and
	// every fresh result is appended as it completes — a restarted
	// daemon resumes half-done sweeps instead of recomputing them.
	Journal *Journal
	// RetryDelay is the base delay before a failed attempt requeues.
	// Successive failures of one item back off exponentially (×2 per
	// attempt, capped by RetryMaxDelay) with uniform jitter over the
	// top half of each delay, so a burst of failures against one dead
	// executor neither hot-loops nor thunders back in lockstep. Zero
	// (the default) requeues immediately — right for in-process
	// executors, whose failures are deterministic, and for tests;
	// network executors should set it so a momentarily unreachable
	// service is not hammered MaxAttempts times in microseconds. The
	// wait never occupies a worker and never delays cancellation: the
	// item sits in a timer, the fleet keeps draining other work, and a
	// batch cancelled mid-backoff returns immediately (the delayed
	// requeue then finds no live waiter and is dropped).
	RetryDelay time.Duration
	// RetryMaxDelay caps the exponential backoff (0 selects
	// 32 × RetryDelay).
	RetryMaxDelay time.Duration
}

// Dispatcher is a queue-backed engine.Backend: Run submits a batch to
// the shared work queue, the persistent worker fleet executes items
// through the Executor (retrying failed attempts), and results merge
// positionally. Multiple Run calls may be in flight concurrently —
// their items interleave on one queue, which is what lets a service
// daemon bound its total compute with a single fleet.
//
// The dispatcher additionally coalesces duplicate work in flight
// (singleflight): tasks with equal content address (wire identity
// hash) that are queued or executing at the same time — within one
// batch or across concurrently submitted batches — execute once, and
// every submitter receives its own copy of the one result. Combined
// with the result cache this makes a thundering herd of identical
// sweeps cost one execution total.
type Dispatcher struct {
	exec        Executor
	q           *queue
	cache       *Cache
	journal     *Journal
	maxAttempts int
	retryDelay  time.Duration
	retryMax    time.Duration
	wg          sync.WaitGroup

	// fmu guards inflight, the singleflight table, and coalesced. Lock
	// order: fmu before any batch.mu (the worker checks batch
	// abandonment while holding fmu); never the reverse.
	fmu       sync.Mutex
	inflight  map[string]*flight
	coalesced uint64

	mu     sync.Mutex
	closed bool
}

var _ engine.StreamBackend = (*Dispatcher)(nil)

// NewDispatcher starts the worker fleet and returns the dispatcher.
// Call Close to stop the fleet; Run must not be called after (or
// concurrently with) Close.
func NewDispatcher(exec Executor, opts Options) *Dispatcher {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	maxAttempts := opts.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = 3
	}
	retryMax := opts.RetryMaxDelay
	if retryMax <= 0 {
		retryMax = 32 * opts.RetryDelay
	}
	d := &Dispatcher{
		exec:        exec,
		q:           newQueue(),
		cache:       opts.Cache,
		journal:     opts.Journal,
		maxAttempts: maxAttempts,
		retryDelay:  opts.RetryDelay,
		retryMax:    retryMax,
		inflight:    make(map[string]*flight),
	}
	for w := 0; w < workers; w++ {
		d.wg.Add(1)
		go d.worker()
	}
	return d
}

// Close stops the worker fleet after the queue drains of running
// items. Batches still waiting would never complete, so finish every
// Run before closing.
func (d *Dispatcher) Close() {
	d.mu.Lock()
	already := d.closed
	d.closed = true
	d.mu.Unlock()
	if already {
		return
	}
	d.q.close()
	d.wg.Wait()
}

// workItem is one queued task execution.
type workItem struct {
	task     *engine.Task
	key      string // content address (wire identity hash)
	idx      int    // slot in the batch's results
	attempts int
	batch    *batch
}

// flight is one in-progress execution of a content address: the leader
// is the queued item that will run it, waiters are duplicate
// submissions (from this or other batches) that share the outcome.
type flight struct {
	leader  *workItem
	waiters []*workItem
}

// event is one finished item: a result or a terminal error. Cache
// hits never travel as events — they are served inline at submission.
type event struct {
	idx int
	res engine.TaskResult
	err error
}

// batch tracks one Run call's outstanding items. events is buffered to
// the batch size, so workers delivering to an abandoned batch never
// block.
type batch struct {
	ctx    context.Context
	events chan event

	mu        sync.Mutex
	abandoned bool
}

// abandon marks the batch so workers stop spending compute on it.
func (b *batch) abandon() {
	b.mu.Lock()
	b.abandoned = true
	b.mu.Unlock()
}

func (b *batch) isAbandoned() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.abandoned
}

// complete delivers a finished item's result.
func (b *batch) complete(idx int, res engine.TaskResult) {
	b.events <- event{idx: idx, res: res}
}

// fail delivers a permanently failed item. It also abandons the batch:
// one failed item dooms the whole Run, so its still-queued siblings
// are skipped instead of executed.
func (b *batch) fail(idx int, err error) {
	b.abandon()
	b.events <- event{idx: idx, err: err}
}

// worker drains the queue until the dispatcher closes.
func (d *Dispatcher) worker() {
	defer d.wg.Done()
	for {
		it, ok := d.q.pop()
		if !ok {
			return
		}
		d.process(it)
	}
}

// liveCtx returns the context of a batch still waiting on it (the
// leader's, or failing that any waiter's). A batch whose context is
// already cancelled counts as dead even before its submitter marked
// it abandoned — executing (or requeueing) under a cancelled context
// would just spin. When every interested batch is dead the flight is
// resolved instead, returning ok=false together with the items to
// fail — checked and removed under one lock, so a duplicate submitted
// concurrently can never be attached to a flight that was just
// declared dead.
func (d *Dispatcher) liveCtx(it *workItem) (ctx context.Context, dead []*workItem, ok bool) {
	d.fmu.Lock()
	defer d.fmu.Unlock()
	items := d.flightItemsLocked(it)
	for _, w := range items {
		if !w.batch.isAbandoned() && w.batch.ctx.Err() == nil {
			return w.batch.ctx, nil, true
		}
	}
	d.removeFlightLocked(it)
	return nil, items, false
}

// resolveFlight removes it's flight from the singleflight table and
// returns every item sharing the outcome (the leader first).
func (d *Dispatcher) resolveFlight(it *workItem) []*workItem {
	d.fmu.Lock()
	defer d.fmu.Unlock()
	items := d.flightItemsLocked(it)
	d.removeFlightLocked(it)
	return items
}

func (d *Dispatcher) flightItemsLocked(it *workItem) []*workItem {
	items := []*workItem{it}
	if fl := d.inflight[it.key]; fl != nil && fl.leader == it {
		items = append(items, fl.waiters...)
	}
	return items
}

func (d *Dispatcher) removeFlightLocked(it *workItem) {
	if fl := d.inflight[it.key]; fl != nil && fl.leader == it {
		delete(d.inflight, it.key)
	}
}

// process executes one queued item and delivers the outcome to every
// batch waiting on its content address.
func (d *Dispatcher) process(it *workItem) {
	ctx, dead, ok := d.liveCtx(it)
	if !ok {
		// Every interested batch is cancelled or already failed;
		// don't spend compute on a result nobody will read. fail
		// prefers real errors over this sentinel, so it never
		// surfaces.
		for _, w := range dead {
			w.batch.fail(w.idx, context.Canceled)
		}
		return
	}
	start := time.Now()
	res, err := d.exec(ctx, it.task)
	if err != nil {
		if ctx.Err() != nil {
			// The batch whose context the execution was bound to hung
			// up mid-attempt; that is not the task's failure, so it
			// burns no attempt. Requeue: the next pop re-evaluates
			// liveness and either executes under a still-live
			// waiter's context or skips the item when every
			// interested batch is gone — a foreign cancellation can
			// never fail (or exhaust the attempts of) a live batch
			// sharing the flight.
			d.q.push(it)
			return
		}
		it.attempts++
		if it.attempts < d.maxAttempts && !IsPermanent(err) {
			// After the backoff — floored by any server-requested
			// Retry-After — the next free worker retries it.
			d.requeue(it, retryAfterHint(err))
			return
		}
		err = fmt.Errorf("dist: task %q failed after %d attempts: %w",
			it.task.Label, it.attempts, err)
		for _, w := range d.resolveFlight(it) {
			w.batch.fail(w.idx, err)
		}
		return
	}
	if d.cache != nil {
		// Stored before the flight resolves, so a duplicate arriving
		// in between hits the cache instead of re-executing.
		d.cache.Put(it.key, res)
	}
	if d.journal != nil {
		// Durability is best-effort: an append failure is sticky in the
		// journal and must not fail the execution that just succeeded.
		_ = d.journal.Append(it.key, res)
	}
	elapsed := time.Since(start)
	for i, w := range d.resolveFlight(it) {
		r := res
		if i > 0 {
			// Waiters get their own deep copy: sharing one result
			// across batches would let one caller's mutation corrupt
			// another's bytes.
			r = cloneCampaign(res)
		}
		w.batch.complete(w.idx, engine.TaskResult{
			Task:     w.task,
			Campaign: r,
			Elapsed:  elapsed,
		})
	}
}

// requeue returns a failed item to the queue after its backoff delay
// (immediately when Options.RetryDelay is zero and the server asked
// for nothing). The delay runs on a timer, not a worker: no fleet slot
// is held, and a batch cancelled mid-backoff is not made to wait — its
// Run returns on ctx.Done while the timer fires into liveCtx's
// dead-batch path (or a closed queue's no-op push) later.
//
// serverAfter is the failure's Retry-After hint (0 for none): it
// floors the jittered exponential schedule — the dispatcher never
// retries sooner than an overloaded server asked — and is capped at
// RetryMaxDelay (or maxRetryAfterHonor when no backoff is configured)
// so a bad header cannot park the item.
func (d *Dispatcher) requeue(it *workItem, serverAfter time.Duration) {
	delay := d.backoff(it.attempts)
	if serverAfter > delay {
		cap := d.retryMax
		if cap <= 0 {
			cap = maxRetryAfterHonor
		}
		delay = min(serverAfter, cap)
	}
	if delay <= 0 {
		d.q.push(it)
		return
	}
	time.AfterFunc(delay, func() { d.q.push(it) })
}

// backoff computes the jittered exponential delay before retry
// attempt number attempts (1-based count of failures so far): the
// base delay doubles per failure, capped, with the top half of each
// step jittered uniformly so synchronized failures spread out.
func (d *Dispatcher) backoff(attempts int) time.Duration {
	if d.retryDelay <= 0 {
		return 0
	}
	delay := d.retryDelay
	for i := 1; i < attempts && delay < d.retryMax; i++ {
		delay *= 2
	}
	if delay > d.retryMax {
		delay = d.retryMax
	}
	// Uniform over [delay/2, delay]: enough spread to break lockstep,
	// while the mean stays close to the nominal schedule. rand.Int64N
	// is process-global and locked — fine at retry frequency.
	return delay/2 + time.Duration(rand.Int64N(int64(delay/2)+1))
}

// Run implements engine.Backend: results are positional and
// bit-identical to an in-process engine.Run for every fleet size,
// retry schedule, and cache temperature. See RunCached for the
// cancellation contract.
func (d *Dispatcher) Run(ctx context.Context, tasks []*engine.Task) ([]engine.TaskResult, error) {
	results, _, err := d.RunCached(ctx, tasks)
	return results, err
}

// RunCached is Run, additionally reporting which slots were served
// from the result cache. When ctx is cancelled the call returns
// immediately with ctx's error and the batch is abandoned: its queued
// items are dropped unexecuted so a disconnected submitter stops
// consuming the fleet (the item a worker is mid-campaign on still
// completes — campaigns are not interruptible — unless another live
// batch shares it, its result is discarded).
func (d *Dispatcher) RunCached(ctx context.Context, tasks []*engine.Task) ([]engine.TaskResult, []bool, error) {
	results := make([]engine.TaskResult, len(tasks))
	cached := make([]bool, len(tasks))
	err := d.runEach(ctx, tasks, func(i int, r engine.TaskResult, fromCache bool) {
		results[i] = r
		cached[i] = fromCache
	})
	if err != nil {
		return nil, nil, err
	}
	return results, cached, nil
}

// RunEach implements engine.StreamBackend: fn observes each task's
// result as it lands — cache hits immediately at submission, executed
// tasks in completion order — while the batch is still running. fn is
// called serially from the calling goroutine; collecting by index
// reproduces Run's positional slice exactly.
func (d *Dispatcher) RunEach(ctx context.Context, tasks []*engine.Task, fn func(i int, r engine.TaskResult)) error {
	return d.runEach(ctx, tasks, func(i int, r engine.TaskResult, _ bool) {
		fn(i, r)
	})
}

// RunEachCached is RunEach, additionally reporting per delivery
// whether the result was served from the content-addressed cache — the
// streaming primitive behind the daemon's NDJSON sweep responses,
// which forward both the result and its cache temperature per task.
func (d *Dispatcher) RunEachCached(ctx context.Context, tasks []*engine.Task, fn func(i int, r engine.TaskResult, cached bool)) error {
	return d.runEach(ctx, tasks, fn)
}

// DispatcherStats is a point-in-time dispatcher counter snapshot.
// Coalesced counts task submissions that attached to an already
// queued or executing flight (singleflight dedup) instead of
// enqueueing their own execution.
type DispatcherStats struct {
	Coalesced uint64 `json:"coalesced"`
}

// Stats snapshots the counters.
func (d *Dispatcher) Stats() DispatcherStats {
	d.fmu.Lock()
	defer d.fmu.Unlock()
	return DispatcherStats{Coalesced: d.coalesced}
}

// QueueDepth reports how many submitted items are waiting for a
// worker (executing and backoff-parked items excluded) — the signal
// admission control sheds on: a depth past the watermark means every
// worker is busy and the backlog is growing.
func (d *Dispatcher) QueueDepth() int { return d.q.len() }

// runEach is the submission core shared by Run, RunCached and RunEach.
func (d *Dispatcher) runEach(ctx context.Context, tasks []*engine.Task, fn func(i int, r engine.TaskResult, cached bool)) error {
	d.mu.Lock()
	closed := d.closed
	d.mu.Unlock()
	if closed {
		return fmt.Errorf("dist: dispatcher is closed")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	for _, t := range tasks {
		if err := t.Validate(); err != nil {
			return err
		}
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if len(tasks) == 0 {
		return nil
	}

	b := &batch{ctx: ctx, events: make(chan event, len(tasks))}

	// Serve cache hits inline; enqueue the misses, coalescing items
	// whose content address is already queued or executing.
	pending := 0
	var enqueue []*workItem
	for i, t := range tasks {
		key := wire.FromTask(t).IdentityHash()
		if d.cache != nil {
			if res, ok := d.cache.Get(key); ok {
				fn(i, engine.TaskResult{Task: t, Campaign: res}, true)
				continue
			}
		}
		if d.journal != nil {
			// The journal is the persistent tier behind the LRU cache: a
			// hit means some earlier process already ran this task. Get
			// decodes a fresh copy per call, and a read failure simply
			// demotes the task to execution — recomputing is always
			// correct, replaying an unreadable record is not.
			if res, ok, err := d.journal.Get(key); err == nil && ok {
				if d.cache != nil {
					d.cache.Put(key, res)
				}
				fn(i, engine.TaskResult{Task: t, Campaign: res}, true)
				continue
			}
		}
		it := &workItem{task: t, key: key, idx: i, batch: b}
		pending++
		d.fmu.Lock()
		if fl := d.inflight[key]; fl != nil {
			fl.waiters = append(fl.waiters, it)
			d.coalesced++
			d.fmu.Unlock()
			continue
		}
		d.inflight[key] = &flight{leader: it}
		d.fmu.Unlock()
		enqueue = append(enqueue, it)
	}
	for _, it := range enqueue {
		d.q.push(it)
	}

	// Drain one event per pending item. The first real failure dooms
	// the batch (it was abandoned by fail), but every item still
	// delivers an event, so the loop always terminates; cancellation
	// sentinels from skipped siblings never mask the root cause.
	var firstErr, sentinel error
	for received := 0; received < pending; received++ {
		select {
		case ev := <-b.events:
			switch {
			case ev.err == nil:
				if firstErr == nil {
					fn(ev.idx, ev.res, false)
				}
			case errors.Is(ev.err, context.Canceled) && sentinel == nil:
				sentinel = ev.err
			case !errors.Is(ev.err, context.Canceled) && firstErr == nil:
				firstErr = ev.err
			}
		case <-ctx.Done():
			b.abandon()
			return ctx.Err()
		}
	}
	if firstErr != nil {
		return firstErr
	}
	return sentinel
}
