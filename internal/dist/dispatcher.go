package dist

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"optirand/internal/engine"
	"optirand/internal/wire"
)

// permanentError marks an executor failure that retrying cannot fix
// (a rejected request, a wire-version mismatch). The dispatcher fails
// the batch on the first one instead of burning MaxAttempts.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent wraps err so the dispatcher will not retry it.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// IsPermanent reports whether err (or anything it wraps) was marked
// with Permanent.
func IsPermanent(err error) bool {
	var p *permanentError
	return errors.As(err, &p)
}

// Options configures a Dispatcher.
type Options struct {
	// Workers is the size of the worker fleet draining the queue
	// (<= 0 selects GOMAXPROCS).
	Workers int
	// MaxAttempts bounds executions per task; a task whose every
	// attempt fails fails the whole batch (default 3). Attempts beyond
	// the first happen on whichever worker frees up, so a task is
	// retried away from a wedged worker, not pinned to it.
	MaxAttempts int
	// Cache, if non-nil, serves repeated tasks by content address
	// (wire identity hash) without executing or even enqueueing them,
	// and stores every fresh result. Caches may be shared between
	// dispatchers.
	Cache *Cache
}

// Dispatcher is a queue-backed engine.Backend: Run submits a batch to
// the shared work queue, the persistent worker fleet executes items
// through the Executor (retrying failed attempts), and results merge
// positionally. Multiple Run calls may be in flight concurrently —
// their items interleave on one queue, which is what lets a service
// daemon bound its total compute with a single fleet.
type Dispatcher struct {
	exec        Executor
	q           *queue
	cache       *Cache
	maxAttempts int
	wg          sync.WaitGroup

	mu     sync.Mutex
	closed bool
}

var _ engine.Backend = (*Dispatcher)(nil)

// NewDispatcher starts the worker fleet and returns the dispatcher.
// Call Close to stop the fleet; Run must not be called after (or
// concurrently with) Close.
func NewDispatcher(exec Executor, opts Options) *Dispatcher {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	maxAttempts := opts.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = 3
	}
	d := &Dispatcher{
		exec:        exec,
		q:           newQueue(),
		cache:       opts.Cache,
		maxAttempts: maxAttempts,
	}
	for w := 0; w < workers; w++ {
		d.wg.Add(1)
		go d.worker()
	}
	return d
}

// Close stops the worker fleet after the queue drains of running
// items. Batches still waiting would never complete, so finish every
// Run before closing.
func (d *Dispatcher) Close() {
	d.mu.Lock()
	already := d.closed
	d.closed = true
	d.mu.Unlock()
	if already {
		return
	}
	d.q.close()
	d.wg.Wait()
}

// workItem is one queued task execution.
type workItem struct {
	task     *engine.Task
	key      string // identity hash; "" when caching is off
	idx      int    // slot in the batch's results
	attempts int
	batch    *batch
}

// batch tracks one Run call's outstanding items.
type batch struct {
	mu      sync.Mutex
	results []engine.TaskResult
	cached  []bool
	err     error
	pending int
	done    chan struct{}
	// abandoned is set when the submitter stopped waiting (context
	// cancellation): queued items are skipped instead of executed.
	abandoned bool
}

// abandon marks the batch so workers stop spending compute on it.
func (b *batch) abandon() {
	b.mu.Lock()
	b.abandoned = true
	b.mu.Unlock()
}

func (b *batch) isAbandoned() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.abandoned
}

// complete stores a finished item's result.
func (b *batch) complete(idx int, res engine.TaskResult) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.results[idx] = res
	b.finishLocked()
}

// fail records a permanently failed item. The first failure dooms the
// whole batch (Run returns one error), so it also abandons the batch:
// its still-queued items are skipped instead of executed, and the
// submitter gets the error as soon as the fleet drains them.
func (b *batch) fail(idx int, err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.err == nil {
		b.err = err
	}
	b.abandoned = true
	b.finishLocked()
}

func (b *batch) finishLocked() {
	b.pending--
	if b.pending == 0 {
		close(b.done)
	}
}

// worker drains the queue until the dispatcher closes.
func (d *Dispatcher) worker() {
	defer d.wg.Done()
	for {
		it, ok := d.q.pop()
		if !ok {
			return
		}
		if it.batch.isAbandoned() {
			// The batch is cancelled or already failed; don't spend
			// compute on a result nobody will read. fail keeps the
			// first (real) error, so this sentinel never surfaces.
			it.batch.fail(it.idx, context.Canceled)
			continue
		}
		start := time.Now()
		res, err := d.exec(it.task)
		if err != nil {
			it.attempts++
			if it.attempts < d.maxAttempts && !IsPermanent(err) {
				d.q.push(it) // requeue: next free worker retries it
				continue
			}
			it.batch.fail(it.idx, fmt.Errorf("dist: task %q failed after %d attempts: %w",
				it.task.Label, it.attempts, err))
			continue
		}
		if d.cache != nil && it.key != "" {
			d.cache.Put(it.key, res)
		}
		it.batch.complete(it.idx, engine.TaskResult{
			Task:     it.task,
			Campaign: res,
			Elapsed:  time.Since(start),
		})
	}
}

// Run implements engine.Backend: results are positional and
// bit-identical to an in-process engine.Run for every fleet size,
// retry schedule, and cache temperature.
func (d *Dispatcher) Run(tasks []*engine.Task) ([]engine.TaskResult, error) {
	results, _, err := d.RunCached(context.Background(), tasks)
	return results, err
}

// RunCached is Run, additionally reporting which slots were served
// from the result cache. When ctx is cancelled the call returns
// immediately with ctx's error and the batch is abandoned: its queued
// items are dropped unexecuted so a disconnected submitter stops
// consuming the fleet (the item a worker is mid-campaign on still
// completes — campaigns are not interruptible).
func (d *Dispatcher) RunCached(ctx context.Context, tasks []*engine.Task) ([]engine.TaskResult, []bool, error) {
	d.mu.Lock()
	closed := d.closed
	d.mu.Unlock()
	if closed {
		return nil, nil, fmt.Errorf("dist: dispatcher is closed")
	}
	for _, t := range tasks {
		if err := t.Validate(); err != nil {
			return nil, nil, err
		}
	}

	b := &batch{
		results: make([]engine.TaskResult, len(tasks)),
		cached:  make([]bool, len(tasks)),
		pending: len(tasks),
		done:    make(chan struct{}),
	}
	if len(tasks) == 0 {
		return b.results, b.cached, nil
	}

	// Serve cache hits immediately; enqueue the misses.
	var misses []*workItem
	for i, t := range tasks {
		var key string
		if d.cache != nil {
			key = wire.FromTask(t).IdentityHash()
			if res, ok := d.cache.Get(key); ok {
				b.mu.Lock()
				b.results[i] = engine.TaskResult{Task: t, Campaign: res}
				b.cached[i] = true
				b.finishLocked()
				b.mu.Unlock()
				continue
			}
		}
		misses = append(misses, &workItem{task: t, key: key, idx: i, batch: b})
	}
	for _, it := range misses {
		d.q.push(it)
	}
	select {
	case <-b.done:
	case <-ctx.Done():
		b.abandon()
		return nil, nil, ctx.Err()
	}

	if b.err != nil {
		return nil, nil, b.err
	}
	return b.results, b.cached, nil
}
