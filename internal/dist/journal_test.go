package dist

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"optirand/internal/engine"
	"optirand/internal/sim"
	"optirand/internal/wire"
)

// journalResults runs the test grid serially and returns each task's
// key and result.
func journalResults(t *testing.T) ([]string, []*sim.CampaignResult) {
	t.Helper()
	tasks := testTasks(t)
	ref, err := engine.Run(context.Background(), tasks, 1)
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]string, len(tasks))
	for i, task := range tasks {
		keys[i] = wire.FromTask(task).IdentityHash()
	}
	return keys, campaigns(ref)
}

// TestJournalRoundTrip proves append → close → reopen → replay is
// lossless and that replayed results are independent copies.
func TestJournalRoundTrip(t *testing.T) {
	keys, results := journalResults(t)
	path := filepath.Join(t.TempDir(), "sweep.journal")

	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if j.Len() != 0 {
		t.Fatalf("fresh journal has %d entries", j.Len())
	}
	for i, key := range keys {
		if err := j.Append(key, results[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j, err = OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if j.Len() != len(keys) {
		t.Fatalf("reopened journal has %d entries, want %d", j.Len(), len(keys))
	}
	for i, key := range keys {
		got, ok, err := j.Get(key)
		if err != nil || !ok {
			t.Fatalf("Get(%d): ok=%v err=%v", i, ok, err)
		}
		if !reflect.DeepEqual(got, results[i]) {
			t.Fatalf("entry %d replayed differently than appended", i)
		}
		// Mutating a replayed copy must not reach the journal.
		got.Detected = ^got.Detected
		again, _, _ := j.Get(key)
		if !reflect.DeepEqual(again, results[i]) {
			t.Fatalf("entry %d: replayed copies share state", i)
		}
	}
	if _, ok, _ := j.Get("no-such-key"); ok {
		t.Fatal("Get hit on an absent key")
	}
	st := j.Stats()
	if st.Entries != len(keys) || st.Replays == 0 || st.Appends != 0 {
		t.Fatalf("stats after reopen = %+v", st)
	}
}

// TestJournalDuplicateAppend proves re-appending a journaled key is a
// no-op: same byte length, same entry count.
func TestJournalDuplicateAppend(t *testing.T) {
	keys, results := journalResults(t)
	path := filepath.Join(t.TempDir(), "sweep.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.Append(keys[0], results[0]); err != nil {
		t.Fatal(err)
	}
	size := fileSize(t, path)
	if err := j.Append(keys[0], results[1]); err != nil {
		t.Fatal(err)
	}
	if fileSize(t, path) != size {
		t.Fatal("duplicate append grew the journal")
	}
	if got, _, _ := j.Get(keys[0]); !reflect.DeepEqual(got, results[0]) {
		t.Fatal("duplicate append replaced the first record")
	}
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return info.Size()
}

// TestJournalTornFinalRecord proves a crash mid-append (a short final
// record) is absorbed on reopen: the whole records survive, the torn
// tail is truncated, and appending continues cleanly.
func TestJournalTornFinalRecord(t *testing.T) {
	keys, results := journalResults(t)
	path := filepath.Join(t.TempDir(), "sweep.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	const whole = 5
	for i := 0; i < whole+1; i++ {
		if err := j.Append(keys[i], results[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the final record at several depths: mid-CRC, mid-payload,
	// and a lone half-written length prefix.
	for _, cut := range []int64{3, 40, sizeOfRecord(t, path, whole) - 2} {
		torn := filepath.Join(t.TempDir(), "torn.journal")
		copyFile(t, path, torn)
		if err := os.Truncate(torn, fileSize(t, path)-cut); err != nil {
			t.Fatal(err)
		}
		j, err := OpenJournal(torn)
		if err != nil {
			t.Fatalf("cut=%d: reopen after torn append: %v", cut, err)
		}
		if j.Len() != whole {
			t.Fatalf("cut=%d: %d entries survived, want %d", cut, j.Len(), whole)
		}
		for i := 0; i < whole; i++ {
			got, ok, err := j.Get(keys[i])
			if err != nil || !ok || !reflect.DeepEqual(got, results[i]) {
				t.Fatalf("cut=%d: entry %d damaged by tail truncation", cut, i)
			}
		}
		// The journal must accept appends again — the torn task simply
		// re-executes and re-journals.
		if err := j.Append(keys[whole], results[whole]); err != nil {
			t.Fatalf("cut=%d: append after truncation: %v", cut, err)
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
		j, err = OpenJournal(torn)
		if err != nil {
			t.Fatal(err)
		}
		if j.Len() != whole+1 {
			t.Fatalf("cut=%d: re-journaled entry lost on reopen", cut)
		}
		j.Close()
	}
}

// sizeOfRecord walks the journal's framing to report record idx's full
// on-disk size (length prefix + payload + CRC).
func sizeOfRecord(t *testing.T, path string, idx int) int64 {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	off := int64(len(journalMagic))
	for i := 0; ; i++ {
		n := int64(data[off])<<24 | int64(data[off+1])<<16 | int64(data[off+2])<<8 | int64(data[off+3])
		size := 4 + n + 4
		if i == idx {
			return size
		}
		off += size
	}
}

func copyFile(t *testing.T, from, to string) {
	t.Helper()
	data, err := os.ReadFile(from)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(to, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestJournalCorruptionRejected proves damage that is not a torn tail
// fails the open loudly instead of replaying bad results: a flipped
// payload byte in an interior record, and a file that is not a journal
// at all.
func TestJournalCorruptionRejected(t *testing.T) {
	keys, results := journalResults(t)
	path := filepath.Join(t.TempDir(), "sweep.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := j.Append(keys[i], results[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip one byte inside the second record's payload.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	off := int64(len(journalMagic)) + sizeOfRecord(t, path, 0) + 4 + 10
	data[off] ^= 0xff
	corrupt := filepath.Join(t.TempDir(), "corrupt.journal")
	if err := os.WriteFile(corrupt, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenJournal(corrupt); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("corrupt journal opened: err = %v", err)
	}

	// A foreign file is rejected by its header.
	foreign := filepath.Join(t.TempDir(), "foreign.journal")
	if err := os.WriteFile(foreign, []byte("definitely not a journal, but long enough to read"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenJournal(foreign); err == nil || !strings.Contains(err.Error(), "not an optirand journal") {
		t.Fatalf("foreign file opened as journal: err = %v", err)
	}
}

// countingBackend wraps a Dispatcher over an executor that counts real
// executions — the instrument for proving residue-only re-execution.
func countingBackend(t *testing.T, executed *atomic.Int64) *Dispatcher {
	t.Helper()
	exec := func(ctx context.Context, task *engine.Task) (*sim.CampaignResult, error) {
		executed.Add(1)
		return LocalExecutor(ctx, task)
	}
	return NewDispatcher(exec, Options{Workers: 4})
}

// TestRunSourceJournalEquivalence proves a journaled streamed run is
// bit-identical to the serial engine baseline across window sizes, and
// that an immediate re-run replays everything without executing.
func TestRunSourceJournalEquivalence(t *testing.T) {
	grid := testGrid(t)
	tasks := grid.Tasks()
	ref, err := engine.Run(context.Background(), tasks, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, window := range []int{1, 4, len(tasks), 0} {
		path := filepath.Join(t.TempDir(), "sweep.journal")
		j, err := OpenJournal(path)
		if err != nil {
			t.Fatal(err)
		}
		var executed atomic.Int64
		d := countingBackend(t, &executed)

		got := make([]engine.TaskResult, grid.NumTasks())
		err = RunSource(context.Background(), d, grid, SourceOptions{Window: window, Journal: j}, func(i int, r engine.TaskResult) {
			got[i] = r
		})
		if err != nil {
			t.Fatalf("window=%d: %v", window, err)
		}
		if !reflect.DeepEqual(campaigns(ref), campaigns(got)) {
			t.Fatalf("window=%d: journaled streamed run differs from serial baseline", window)
		}
		if n := executed.Load(); n != int64(len(tasks)) {
			t.Fatalf("window=%d: cold run executed %d of %d", window, n, len(tasks))
		}

		// Second pass over the same journal: pure replay.
		executed.Store(0)
		again := make([]engine.TaskResult, grid.NumTasks())
		err = RunSource(context.Background(), d, grid, SourceOptions{Window: window, Journal: j}, func(i int, r engine.TaskResult) {
			again[i] = r
		})
		d.Close()
		if err != nil {
			t.Fatalf("window=%d: replay run: %v", window, err)
		}
		if n := executed.Load(); n != 0 {
			t.Fatalf("window=%d: replay run executed %d tasks", window, n)
		}
		if !reflect.DeepEqual(campaigns(ref), campaigns(again)) {
			t.Fatalf("window=%d: replayed results differ from baseline", window)
		}
		for i, r := range again {
			if r.Elapsed != 0 {
				t.Fatalf("window=%d: replayed result %d has nonzero Elapsed", window, i)
			}
		}
		j.Close()
	}
}

// TestRunSourceKillAndResume is the crash-restart e2e: a sweep killed
// mid-flight (context cancellation after a handful of deliveries) and
// restarted against the reopened journal produces results
// byte-identical to an uninterrupted run while re-executing only the
// unjournaled residue.
func TestRunSourceKillAndResume(t *testing.T) {
	grid := testGrid(t)
	tasks := grid.Tasks()
	total := len(tasks)
	ref, err := engine.Run(context.Background(), tasks, 1)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "sweep.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}

	// First incarnation: die after 5 deliveries.
	const killAfter = 5
	ctx, cancel := context.WithCancel(context.Background())
	var executed atomic.Int64
	d := countingBackend(t, &executed)
	delivered := 0
	err = RunSource(ctx, d, grid, SourceOptions{Window: 3, Journal: j}, func(int, engine.TaskResult) {
		delivered++
		if delivered == killAfter {
			cancel()
		}
	})
	cancel()
	d.Close()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("killed run: err = %v, want context.Canceled", err)
	}
	if delivered >= total {
		t.Fatalf("killed run delivered all %d tasks", delivered)
	}
	// Simulate process death: the journal is abandoned without Close.
	journaled := j.Len()
	if journaled == 0 {
		t.Fatal("nothing journaled before the kill")
	}

	// Second incarnation: reopen and resume.
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("reopen after kill: %v", err)
	}
	defer j2.Close()
	if j2.Len() != journaled {
		t.Fatalf("reopened journal has %d entries, first process wrote %d", j2.Len(), journaled)
	}
	executed.Store(0)
	d2 := countingBackend(t, &executed)
	defer d2.Close()
	merged := make([]engine.TaskResult, total)
	seen := 0
	err = RunSource(context.Background(), d2, grid, SourceOptions{Window: 3, Journal: j2}, func(i int, r engine.TaskResult) {
		merged[i] = r
		seen++
	})
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if seen != total {
		t.Fatalf("resumed run delivered %d of %d", seen, total)
	}
	if !reflect.DeepEqual(campaigns(ref), campaigns(merged)) {
		t.Fatal("resumed results differ from an uninterrupted run")
	}
	// Only the residue executed.
	if n := executed.Load(); n != int64(total-journaled) {
		t.Fatalf("resume executed %d tasks, want exactly the residue %d", executed.Load(), total-journaled)
	}
	// Replayed slots carry zero Elapsed (the work predates this run).
	replays := 0
	for _, r := range merged {
		if r.Elapsed == 0 {
			replays++
		}
	}
	if replays < journaled {
		t.Fatalf("%d zero-Elapsed replays, want >= %d journaled", replays, journaled)
	}
}

// TestDispatcherJournalTier proves the daemon-side integration: a
// dispatcher restarted with the same journal serves the whole batch
// from it — no executions — and reports the replays as cached.
func TestDispatcherJournalTier(t *testing.T) {
	tasks := testTasks(t)
	ref, err := engine.Run(context.Background(), tasks, 1)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "sweep.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	var executed atomic.Int64
	exec := func(ctx context.Context, task *engine.Task) (*sim.CampaignResult, error) {
		executed.Add(1)
		return LocalExecutor(ctx, task)
	}

	d := NewDispatcher(exec, Options{Workers: 4, Journal: j})
	got, err := d.Run(context.Background(), tasks)
	d.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(campaigns(ref), campaigns(got)) {
		t.Fatal("journaling dispatcher differs from engine.Run")
	}
	if n := executed.Load(); n != int64(len(tasks)) {
		t.Fatalf("cold dispatcher executed %d of %d", n, len(tasks))
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart the daemon": fresh dispatcher, no cache, reopened journal.
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	executed.Store(0)
	d2 := NewDispatcher(exec, Options{Workers: 4, Journal: j2})
	defer d2.Close()
	fromJournal := 0
	merged := make([]engine.TaskResult, len(tasks))
	err = d2.RunEachCached(context.Background(), tasks, func(i int, r engine.TaskResult, cached bool) {
		merged[i] = r
		if cached {
			fromJournal++
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := executed.Load(); n != 0 {
		t.Fatalf("restarted dispatcher executed %d tasks despite a full journal", n)
	}
	if fromJournal != len(tasks) {
		t.Fatalf("%d of %d deliveries marked cached", fromJournal, len(tasks))
	}
	if !reflect.DeepEqual(campaigns(ref), campaigns(merged)) {
		t.Fatal("journal-served results differ from baseline")
	}
	if st := j2.Stats(); st.Replays == 0 {
		t.Fatalf("journal stats show no replays: %+v", st)
	}
}
