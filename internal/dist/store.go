package dist

import (
	"container/list"
	"errors"
	"fmt"
	"sync"

	"optirand/internal/wire"
)

// ErrBlobTooLarge marks a Put whose blob exceeds the store's whole
// byte budget — it could never be resident, so the service answers
// 413 instead of a generic rejection.
var ErrBlobTooLarge = errors.New("blob exceeds the store byte budget")

// BlobStore is a bounded, concurrency-safe, content-addressed blob
// store: keys are canonical SHA-256 addresses (wire.HashBytes), values
// opaque byte blobs — circuit and fault-list wire encodings in
// practice. It backs the daemon's /v1/blobs endpoints, letting sweep
// clients upload a circuit once and reference it by hash in every
// task thereafter. Eviction is least-recently-used by total byte
// size, so a daemon serving many distinct circuits keeps the hot ones
// resident; an evicted blob is never an error, just a re-upload (the
// service answers unresolved refs with a retryable status).
type BlobStore struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	ll       *list.List // front = most recently used
	items    map[string]*list.Element

	puts, gets, hits, misses, evictions uint64
}

type blobEntry struct {
	hash string
	data []byte
}

// DefaultBlobStoreBytes is the default byte budget of a BlobStore —
// generous next to the benchmark circuits (tens of KB each) while
// bounding a daemon's memory against hostile or runaway uploads.
const DefaultBlobStoreBytes = 64 << 20

// NewBlobStore returns a store holding at most maxBytes of blob data
// (maxBytes <= 0 selects DefaultBlobStoreBytes).
func NewBlobStore(maxBytes int64) *BlobStore {
	if maxBytes <= 0 {
		maxBytes = DefaultBlobStoreBytes
	}
	return &BlobStore{
		maxBytes: maxBytes,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
	}
}

// Put stores data under hash after verifying the content address —
// the store's trust boundary: everything inside it is known to match
// its key, so resolvers need not re-hash on every Get. Oversized
// blobs (larger than the whole budget) and mismatched hashes are
// rejected; storing an existing blob refreshes its recency.
func (s *BlobStore) Put(hash string, data []byte) error {
	if got := wire.HashBytes(data); got != hash {
		return fmt.Errorf("dist: blob content hashes to %s, not %s", got, hash)
	}
	if int64(len(data)) > s.maxBytes {
		return fmt.Errorf("dist: blob %s is %d bytes, store budget is %d: %w", hash, len(data), s.maxBytes, ErrBlobTooLarge)
	}
	cp := append([]byte(nil), data...)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.puts++
	if el, ok := s.items[hash]; ok {
		s.ll.MoveToFront(el)
		return nil
	}
	s.items[hash] = s.ll.PushFront(&blobEntry{hash: hash, data: cp})
	s.bytes += int64(len(cp))
	for s.bytes > s.maxBytes {
		last := s.ll.Back()
		e := last.Value.(*blobEntry)
		s.ll.Remove(last)
		delete(s.items, e.hash)
		s.bytes -= int64(len(e.data))
		s.evictions++
	}
	return nil
}

// Get returns the blob stored under hash. The returned slice is the
// store's own copy; callers must treat it as read-only (resolvers
// decode it immediately, they never alias it into results).
func (s *BlobStore) Get(hash string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gets++
	el, ok := s.items[hash]
	if !ok {
		s.misses++
		return nil, false
	}
	s.hits++
	s.ll.MoveToFront(el)
	return el.Value.(*blobEntry).data, true
}

// Has reports whether hash is resident without touching recency — the
// probe clients use before deciding whether to upload.
func (s *BlobStore) Has(hash string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.items[hash]
	return ok
}

// BlobStats is a point-in-time blob store counter snapshot.
type BlobStats struct {
	Entries   int    `json:"entries"`
	Bytes     int64  `json:"bytes"`
	MaxBytes  int64  `json:"max_bytes"`
	Puts      uint64 `json:"puts"`
	Gets      uint64 `json:"gets"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
}

// Stats snapshots the counters.
func (s *BlobStore) Stats() BlobStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return BlobStats{
		Entries:   s.ll.Len(),
		Bytes:     s.bytes,
		MaxBytes:  s.maxBytes,
		Puts:      s.puts,
		Gets:      s.gets,
		Hits:      s.hits,
		Misses:    s.misses,
		Evictions: s.evictions,
	}
}
