package dist

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"optirand/internal/engine"
	"optirand/internal/sim"
	"optirand/internal/wire"
)

// TestParseRetryAfter pins the header grammar: delay-seconds only,
// anything else (absent, negative, HTTP-date) reads as no hint.
func TestParseRetryAfter(t *testing.T) {
	cases := []struct {
		in   string
		want time.Duration
	}{
		{"", 0},
		{"0", 0},
		{"7", 7 * time.Second},
		{" 3 ", 3 * time.Second},
		{"-2", 0},
		{"Wed, 21 Oct 2015 07:28:00 GMT", 0},
		{"nope", 0},
	}
	for _, c := range cases {
		if got := parseRetryAfter(c.in); got != c.want {
			t.Errorf("parseRetryAfter(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

// TestClassifyStatus pins the retry classification: 429/503 retryable
// (typed with the server's hint when present), 422 retryable for
// re-upload, other 4xx Permanent, 5xx plain retryable.
func TestClassifyStatus(t *testing.T) {
	he := &httpError{status: 0, msg: "x"}
	withHint := http.Header{"Retry-After": []string{"5"}}

	for _, status := range []int{http.StatusTooManyRequests, http.StatusServiceUnavailable} {
		err := classifyStatus(status, withHint, he)
		var ra *RetryAfterError
		if !errors.As(err, &ra) || ra.After != 5*time.Second {
			t.Fatalf("classifyStatus(%d, hint) = %v, want RetryAfterError{5s}", status, err)
		}
		if IsPermanent(err) {
			t.Fatalf("classifyStatus(%d) must stay retryable", status)
		}
		if err := classifyStatus(status, http.Header{}, he); IsPermanent(err) || errors.As(err, &ra) {
			t.Fatalf("classifyStatus(%d, no hint) = %v, want plain retryable", status, err)
		}
	}
	if err := classifyStatus(http.StatusNotFound, http.Header{}, he); !IsPermanent(err) {
		t.Fatal("404 must be Permanent")
	}
	if err := classifyStatus(http.StatusUnprocessableEntity, http.Header{}, he); IsPermanent(err) {
		t.Fatal("422 must stay retryable (the caller re-uploads the blob)")
	}
	if err := classifyStatus(http.StatusBadGateway, http.Header{}, he); IsPermanent(err) {
		t.Fatal("5xx must stay retryable")
	}
}

// TestDispatcherHonorsRetryAfter proves a RetryAfterError's hint
// floors the backoff: with a 2ms base (whose first-retry delay is
// ~1–2ms) and a 40ms server hint, the retry must wait the hint out.
func TestDispatcherHonorsRetryAfter(t *testing.T) {
	task := testTasks(t)[0]
	attempts := 0
	exec := func(ctx context.Context, tk *engine.Task) (*sim.CampaignResult, error) {
		attempts++
		if attempts == 1 {
			return nil, &RetryAfterError{After: 40 * time.Millisecond, Err: errors.New("shed")}
		}
		return LocalExecutor(ctx, tk)
	}
	d := NewDispatcher(exec, Options{Workers: 1, MaxAttempts: 3, RetryDelay: 2 * time.Millisecond})
	defer d.Close()

	start := time.Now()
	if _, err := d.Run(context.Background(), []*engine.Task{task}); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 35*time.Millisecond {
		t.Fatalf("retry fired after %v, want >= ~40ms (the server's Retry-After)", elapsed)
	}
}

// TestDispatcherCapsRetryAfter proves a hostile hint cannot park the
// client: a 10-minute Retry-After against a 2ms backoff (64ms cap)
// completes in well under a second.
func TestDispatcherCapsRetryAfter(t *testing.T) {
	task := testTasks(t)[0]
	attempts := 0
	exec := func(ctx context.Context, tk *engine.Task) (*sim.CampaignResult, error) {
		attempts++
		if attempts == 1 {
			return nil, &RetryAfterError{After: 10 * time.Minute, Err: errors.New("shed")}
		}
		return LocalExecutor(ctx, tk)
	}
	d := NewDispatcher(exec, Options{Workers: 1, MaxAttempts: 3, RetryDelay: 2 * time.Millisecond})
	defer d.Close()

	start := time.Now()
	if _, err := d.Run(context.Background(), []*engine.Task{task}); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("completion took %v: the 10-minute hint must be capped at RetryMaxDelay", elapsed)
	}
}

// TestCacheSnapshotChecksum proves a flipped bit in a snapshot is
// detected as typed corruption, and that pre-checksum plain-gob
// snapshots still load.
func TestCacheSnapshotChecksum(t *testing.T) {
	task := testTasks(t)[0]
	res, err := LocalExecutor(context.Background(), task)
	if err != nil {
		t.Fatal(err)
	}
	key := wire.FromTask(task).IdentityHash()

	dir := t.TempDir()
	path := filepath.Join(dir, "results.gob")
	c := NewCache(8)
	c.Put(key, res)
	if err := c.Save(path); err != nil {
		t.Fatal(err)
	}

	// Clean reload works.
	if n, err := NewCache(8).Load(path); err != nil || n != 1 {
		t.Fatalf("clean load = (%d, %v), want (1, nil)", n, err)
	}

	// Flip one bit deep in the payload: gob would likely still decode
	// something plausible; the checksum must refuse loudly instead.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-10] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewCache(8).Load(path); !errors.Is(err, ErrSnapshotCorrupt) {
		t.Fatalf("corrupt load error = %v, want ErrSnapshotCorrupt", err)
	}

	// Legacy layout (no magic, bare gob) still loads: old daemons'
	// snapshots are not orphaned by the format change.
	var snap cacheSnapshot
	snap.Version = cacheSnapshotVersion
	snap.Entries = []cacheSnapshotEntry{{Key: key, Res: *res}}
	var legacy bytes.Buffer
	if err := gob.NewEncoder(&legacy).Encode(&snap); err != nil {
		t.Fatal(err)
	}
	legacyPath := filepath.Join(dir, "legacy.gob")
	if err := os.WriteFile(legacyPath, legacy.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if n, err := NewCache(8).Load(legacyPath); err != nil || n != 1 {
		t.Fatalf("legacy load = (%d, %v), want (1, nil)", n, err)
	}
}

// TestServerQuarantinesCorruptSnapshot proves a daemon started over a
// corrupt snapshot renames it aside (.corrupt) and starts cold
// instead of crashing, retrying forever, or silently warming itself
// with damaged results.
func TestServerQuarantinesCorruptSnapshot(t *testing.T) {
	task := testTasks(t)[0]
	res, err := LocalExecutor(context.Background(), task)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, cacheSnapshotFile)
	c := NewCache(8)
	c.Put(wire.FromTask(task).IdentityHash(), res)
	if err := c.Save(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-10] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	srv := NewServer(ServerOptions{Workers: 1, CacheSize: 8, CacheDir: dir})
	if st := srv.cache.Stats(); st.Loaded != 0 {
		t.Fatalf("server warmed %d entries from a corrupt snapshot", st.Loaded)
	}
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Fatalf("quarantine file missing: %v", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("corrupt snapshot still in place (stat err %v): the next start would trip over it again", err)
	}
	// Close must write a fresh snapshot over the reclaimed path.
	srv.Close()
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("no fresh snapshot after Close: %v", err)
	}
}

// TestBlobGetVerifiesHash proves the client refuses blob bytes that
// do not hash to the address they were fetched by.
func TestBlobGetVerifiesHash(t *testing.T) {
	data := []byte(`{"v":"payload"}`)
	hash := wire.HashBytes(data)

	// An honest daemon answers the true bytes.
	srv := NewServer(ServerOptions{Workers: 1})
	defer srv.Close()
	if err := srv.blobs.Put(hash, data); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	cl := NewClient(ts.URL)
	got, err := cl.BlobGet(context.Background(), hash)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("BlobGet = (%q, %v), want the stored bytes", got, err)
	}

	// A lying daemon answers garbage under the same address: typed
	// corruption, not silent acceptance.
	liar := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("garbage")) //nolint:errcheck
	}))
	defer liar.Close()
	if _, err := NewClient(liar.URL).BlobGet(context.Background(), hash); !errors.Is(err, ErrBlobCorrupt) {
		t.Fatalf("BlobGet from a lying daemon = %v, want ErrBlobCorrupt", err)
	}
}

// TestServerDrainSheds proves BeginDrain flips healthz and sheds new
// work with 503 + Retry-After, counted in the overload stats.
func TestServerDrainSheds(t *testing.T) {
	srv := NewServer(ServerOptions{Workers: 1})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	cl := NewClient(ts.URL)

	h, err := cl.Healthz(context.Background())
	if err != nil || !h.Ready || h.Status != "ok" {
		t.Fatalf("healthz before drain = (%+v, %v), want ready/ok", h, err)
	}
	srv.BeginDrain()
	srv.BeginDrain() // idempotent
	h, err = cl.Healthz(context.Background())
	if err != nil || h.Ready || h.Status != "draining" {
		t.Fatalf("healthz during drain = (%+v, %v), want draining/not ready", h, err)
	}

	_, _, err = cl.Campaign(context.Background(), testTasks(t)[0])
	var ra *RetryAfterError
	if !errors.As(err, &ra) {
		t.Fatalf("campaign during drain = %v, want a RetryAfterError (503 + Retry-After)", err)
	}
	if IsPermanent(err) {
		t.Fatal("drain shedding must stay retryable: another daemon (or this one, restarted) can serve it")
	}
	if srv.shed503.Load() == 0 || srv.retryAfterIssued.Load() == 0 {
		t.Fatal("drain shed not counted in overload stats")
	}
}
