package dist

import (
	"context"

	"optirand/internal/engine"
	"optirand/internal/wire"
)

// SourceOptions configures RunSource.
type SourceOptions struct {
	// Window bounds how many tasks are materialized and in flight at
	// once (<= 0 selects engine.DefaultSourceWindow).
	Window int
	// Journal, if non-nil, makes the run resumable: tasks whose content
	// address is already journaled are replayed through fn without
	// executing, and every freshly executed result is appended as it
	// lands — so a killed run restarted with the same journal executes
	// only the residue.
	Journal *Journal
}

// RunSource executes a streamed task source on b in bounded windows,
// optionally journaling for resumability. It preserves engine.RunSource's
// contracts — positional indices, bit-identical-to-serial campaigns,
// validate-the-whole-source-before-running — and adds the journal
// consult per task: a hit is delivered immediately (with zero Elapsed,
// like a cache hit — the work happened in some earlier process), a
// miss joins the current window. Windows therefore hold only residue,
// so a mostly-journaled million-task resume submits almost nothing.
//
// A journal append failure does not stop the run (the journal's sticky
// error is inspectable via Journal.Err); a journal read failure does —
// replaying a result we cannot read would break the byte-identity
// contract.
func RunSource(ctx context.Context, b engine.Backend, src engine.TaskSource, opts SourceOptions, fn func(i int, r engine.TaskResult)) error {
	window := opts.Window
	if window <= 0 {
		window = engine.DefaultSourceWindow
	}
	if opts.Journal == nil {
		return engine.RunSource(ctx, b, src, window, fn)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	// Validate the entire source up front, as every backend does for a
	// materialized batch: a malformed grid cell fails the sweep before
	// any campaign runs (or any journal record is written). Generation
	// is cheap struct assembly, so this streaming pass costs no memory.
	if err := src.EachTask(func(_ int, t *engine.Task) error { return t.Validate() }); err != nil {
		return err
	}

	j := opts.Journal
	sb, streaming := b.(engine.StreamBackend)
	// The current window's residue: tasks plus their original source
	// indices and content addresses, in parallel.
	buf := make([]*engine.Task, 0, window)
	idxs := make([]int, 0, window)
	keys := make([]string, 0, window)

	flush := func() error {
		if len(buf) == 0 {
			return nil
		}
		deliver := func(k int, r engine.TaskResult) {
			// Journal before handing the result to fn: if fn panics or
			// the process dies right after, the completed work is on
			// disk. Append errors are sticky in the journal and must
			// not fail a long sweep mid-flight.
			_ = j.Append(keys[k], r.Campaign)
			fn(idxs[k], r)
		}
		if streaming {
			if err := sb.RunEach(ctx, buf, deliver); err != nil {
				return err
			}
		} else {
			results, err := b.Run(ctx, buf)
			if err != nil {
				return err
			}
			for k, r := range results {
				deliver(k, r)
			}
		}
		buf, idxs, keys = buf[:0], idxs[:0], keys[:0]
		return nil
	}

	err := src.EachTask(func(i int, t *engine.Task) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		key := wire.FromTask(t).IdentityHash()
		res, ok, jerr := j.Get(key)
		if jerr != nil {
			return jerr
		}
		if ok {
			fn(i, engine.TaskResult{Task: t, Campaign: res})
			return nil
		}
		buf = append(buf, t)
		idxs = append(idxs, i)
		keys = append(keys, key)
		if len(buf) == window {
			return flush()
		}
		return nil
	})
	if err != nil {
		return err
	}
	return flush()
}
