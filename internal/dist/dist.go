// Package dist distributes campaign execution: a persistent work queue
// feeding a bounded worker fleet, a content-addressed result cache, a
// retrying dispatcher, and an HTTP service with its client — all
// behind the engine.Backend seam.
//
// The layering:
//
//	engine.Backend            the contract (positional results,
//	                          bit-identical campaigns)
//	dist.Dispatcher           queue + workers + cache + retry; executes
//	                          tasks through a pluggable Executor
//	dist.LocalExecutor        runs campaigns in this process
//	dist.RemoteExecutor       runs campaigns on an optirandd service
//	dist.Server               the HTTP daemon side: /v1/optimize,
//	                          /v1/campaign, /v1/sweep over wire types
//
// Three properties carry the engine's equivalence contract across
// process and network boundaries:
//
//   - Tasks travel as wire.Task, whose deterministic serialization
//     contains everything needed to reproduce a campaign bit for bit
//     and nothing that couldn't (no scheduling knobs).
//
//   - Results merge positionally. The queue may reorder, retry, or
//     requeue work onto any worker; result i still lands in slot i,
//     and every execution of a task yields identical bytes, so retries
//     and worker failures are invisible in the output.
//
//   - The cache keys on wire.(*Task).IdentityHash — a content address
//     over canonical task bytes — so a cached answer is, by
//     construction, the same bytes a fresh execution would produce.
//     Warm and cold runs are indistinguishable except in latency.
package dist

import (
	"context"

	"optirand/internal/engine"
	"optirand/internal/sim"
)

// Executor runs one campaign task to completion, somewhere: in this
// process, in a worker process, or across the network. Implementations
// must be safe for concurrent use and must honor the determinism
// contract (equal tasks produce equal results). A returned error marks
// the attempt — not the task — as failed; the dispatcher requeues the
// task until Options.MaxAttempts is exhausted.
//
// ctx is the submitting batch's context (or, under in-flight dedup,
// the context of a batch still waiting on the task): network executors
// must bind their requests to it so a cancelled submitter aborts its
// in-flight I/O. In-process executors may ignore it — campaigns are
// not interruptible by design.
type Executor func(ctx context.Context, t *engine.Task) (*sim.CampaignResult, error)

// LocalExecutor runs the campaign on the calling goroutine. It is the
// executor behind the service daemon's worker fleet and the simplest
// way to put the dispatcher (queue, cache, retry) in front of
// in-process execution.
func LocalExecutor(_ context.Context, t *engine.Task) (*sim.CampaignResult, error) {
	return t.Execute().Campaign, nil
}

// cloneCampaign deep-copies a campaign result so cached values stay
// immutable whatever callers do with their copies.
func cloneCampaign(r *sim.CampaignResult) *sim.CampaignResult {
	if r == nil {
		return nil
	}
	cp := *r
	if r.FirstDetected != nil {
		cp.FirstDetected = make([]int, len(r.FirstDetected))
		copy(cp.FirstDetected, r.FirstDetected)
	}
	if r.Curve != nil {
		cp.Curve = make([]sim.CoveragePoint, len(r.Curve))
		copy(cp.Curve, r.Curve)
	}
	if r.Adaptive != nil {
		a := *r.Adaptive
		if r.Adaptive.Rounds != nil {
			a.Rounds = make([]sim.RoundStat, len(r.Adaptive.Rounds))
			copy(a.Rounds, r.Adaptive.Rounds)
		}
		if r.Adaptive.ArmPulls != nil {
			a.ArmPulls = make([]int, len(r.Adaptive.ArmPulls))
			copy(a.ArmPulls, r.Adaptive.ArmPulls)
		}
		cp.Adaptive = &a
	}
	return &cp
}
