package dist

import (
	"container/list"
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"optirand/internal/sim"
)

// Cache is a bounded, concurrency-safe, content-addressed result
// cache: keys are wire task identity hashes, values campaign results.
// Eviction is least-recently-used. Get and Put deep-copy, so cached
// results are immutable no matter what callers do with theirs — a
// cache hit returns exactly the bytes a fresh execution would.
// Save/Load spill the contents to disk (gob, atomic write), so a
// restarted daemon keeps its warm set.
type Cache struct {
	mu       sync.Mutex
	max      int
	ll       *list.List // front = most recently used
	items    map[string]*list.Element
	hits     uint64
	misses   uint64
	persists uint64
	loaded   uint64
	gen      uint64 // mutation counter: bumped by every Put
}

type cacheEntry struct {
	key string
	res *sim.CampaignResult
}

// NewCache returns a cache holding at most max results (max <= 0
// selects 1024).
func NewCache(max int) *Cache {
	if max <= 0 {
		max = 1024
	}
	return &Cache{
		max:   max,
		ll:    list.New(),
		items: make(map[string]*list.Element),
	}
}

// Get returns a copy of the cached result for key, if present.
// Stored results are immutable, so the O(#faults) clone happens after
// the lock is released: the critical section stays pointer-sized and
// concurrent cache hits don't serialize on the copy.
func (c *Cache) Get(key string) (*sim.CampaignResult, bool) {
	c.mu.Lock()
	el, ok := c.items[key]
	var res *sim.CampaignResult
	if ok {
		c.hits++
		c.ll.MoveToFront(el)
		res = el.Value.(*cacheEntry).res
	} else {
		c.misses++
	}
	c.mu.Unlock()
	if !ok {
		return nil, false
	}
	return cloneCampaign(res), true
}

// Put stores a copy of res under key, evicting the least recently used
// entry when full. Storing an existing key refreshes its recency. The
// clone is taken before the lock (see Get).
func (c *Cache) Put(key string, res *sim.CampaignResult) {
	cp := cloneCampaign(res)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gen++
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).res = cp
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, res: cp})
	for c.ll.Len() > c.max {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.items, last.Value.(*cacheEntry).key)
	}
}

// CacheStats is a point-in-time cache counter snapshot. Persists
// counts completed Save calls, Loaded the entries restored by Load —
// both zero on a cache that never touched disk.
type CacheStats struct {
	Entries  int    `json:"entries"`
	Hits     uint64 `json:"hits"`
	Misses   uint64 `json:"misses"`
	Persists uint64 `json:"persists"`
	Loaded   uint64 `json:"loaded"`
}

// Generation returns the cache's mutation count (Puts since
// creation, loads included). Snapshot schedulers compare generations
// to skip writing a snapshot nothing has changed under.
func (c *Cache) Generation() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gen
}

// Stats snapshots the counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:  c.ll.Len(),
		Hits:     c.hits,
		Misses:   c.misses,
		Persists: c.persists,
		Loaded:   c.loaded,
	}
}

// cacheSnapshot is the on-disk (gob) form of a cache: entries in
// most-recently-used-first order, versioned so a format change cannot
// be misread as a warm set. Results are stored as values — the deep
// copies the cache already holds — so a loaded cache is as immutable
// as a live one.
type cacheSnapshot struct {
	Version int
	Entries []cacheSnapshotEntry
}

type cacheSnapshotEntry struct {
	Key string
	Res sim.CampaignResult
}

// cacheSnapshotVersion gates Load: a snapshot written by a different
// snapshot layout is skipped (the daemon just starts cold).
const cacheSnapshotVersion = 1

// Save writes the cache's current contents to path atomically (temp
// file in the same directory, then rename), so a crash mid-write
// leaves either the old snapshot or the new one, never a torn file.
// Concurrent Get/Put during Save affect only whether they are
// included; the snapshot itself is taken under the lock.
func (c *Cache) Save(path string) error {
	c.mu.Lock()
	snap := cacheSnapshot{Version: cacheSnapshotVersion}
	snap.Entries = make([]cacheSnapshotEntry, 0, c.ll.Len())
	for el := c.ll.Front(); el != nil; el = el.Next() {
		e := el.Value.(*cacheEntry)
		snap.Entries = append(snap.Entries, cacheSnapshotEntry{Key: e.key, Res: *e.res})
	}
	c.mu.Unlock()

	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("dist: persist cache: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := gob.NewEncoder(tmp).Encode(&snap); err != nil {
		tmp.Close()
		return fmt.Errorf("dist: persist cache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("dist: persist cache: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("dist: persist cache: %w", err)
	}
	c.mu.Lock()
	c.persists++
	c.mu.Unlock()
	return nil
}

// Load restores a snapshot written by Save into the cache, preserving
// recency order and respecting the cache's own size bound (the
// least-recent overflow is dropped). A missing file is not an error —
// the daemon's first start has nothing to warm from — and returns 0.
// The returned count (mirrored in Stats().Loaded) is the entries still
// resident after the load — the warm set actually restored — not the
// snapshot's size.
func (c *Cache) Load(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, fmt.Errorf("dist: load cache: %w", err)
	}
	defer f.Close()
	var snap cacheSnapshot
	if err := gob.NewDecoder(f).Decode(&snap); err != nil {
		return 0, fmt.Errorf("dist: load cache %s: %w", path, err)
	}
	if snap.Version != cacheSnapshotVersion {
		return 0, fmt.Errorf("dist: load cache %s: snapshot version %d not supported (want %d)",
			path, snap.Version, cacheSnapshotVersion)
	}
	// Entries were saved most-recent-first; Put pushes to the front, so
	// inserting in reverse reproduces the saved recency order exactly.
	// A snapshot larger than this cache's bound is pre-trimmed to its
	// most-recent entries: inserting the overflow would only churn it
	// straight back out.
	c.mu.Lock()
	limit := c.max
	c.mu.Unlock()
	insert := snap.Entries
	if len(insert) > limit {
		insert = insert[:limit]
	}
	for i := len(insert) - 1; i >= 0; i-- {
		e := insert[i]
		res := e.Res
		c.Put(e.Key, &res)
	}
	// Report the warm set actually restored: only snapshot keys still
	// resident count — concurrent Puts (or an undersized cache) may
	// have evicted some before Load returns.
	n := 0
	c.mu.Lock()
	for _, e := range insert {
		if _, ok := c.items[e.Key]; ok {
			n++
		}
	}
	c.loaded += uint64(n)
	c.mu.Unlock()
	return n, nil
}
