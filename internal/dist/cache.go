package dist

import (
	"bytes"
	"container/list"
	"crypto/sha256"
	"encoding/gob"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"optirand/internal/sim"
)

// Cache is a bounded, concurrency-safe, content-addressed result
// cache: keys are wire task identity hashes, values campaign results.
// Eviction is least-recently-used. Get and Put deep-copy, so cached
// results are immutable no matter what callers do with theirs — a
// cache hit returns exactly the bytes a fresh execution would.
// Save/Load spill the contents to disk (gob, atomic write), so a
// restarted daemon keeps its warm set.
type Cache struct {
	mu       sync.Mutex
	max      int
	ll       *list.List // front = most recently used
	items    map[string]*list.Element
	hits     uint64
	misses   uint64
	persists uint64
	loaded   uint64
	gen      uint64 // mutation counter: bumped by every Put
}

type cacheEntry struct {
	key string
	res *sim.CampaignResult
}

// NewCache returns a cache holding at most max results (max <= 0
// selects 1024).
func NewCache(max int) *Cache {
	if max <= 0 {
		max = 1024
	}
	return &Cache{
		max:   max,
		ll:    list.New(),
		items: make(map[string]*list.Element),
	}
}

// Get returns a copy of the cached result for key, if present.
// Stored results are immutable, so the O(#faults) clone happens after
// the lock is released: the critical section stays pointer-sized and
// concurrent cache hits don't serialize on the copy.
func (c *Cache) Get(key string) (*sim.CampaignResult, bool) {
	c.mu.Lock()
	el, ok := c.items[key]
	var res *sim.CampaignResult
	if ok {
		c.hits++
		c.ll.MoveToFront(el)
		res = el.Value.(*cacheEntry).res
	} else {
		c.misses++
	}
	c.mu.Unlock()
	if !ok {
		return nil, false
	}
	return cloneCampaign(res), true
}

// Put stores a copy of res under key, evicting the least recently used
// entry when full. Storing an existing key refreshes its recency. The
// clone is taken before the lock (see Get).
func (c *Cache) Put(key string, res *sim.CampaignResult) {
	cp := cloneCampaign(res)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gen++
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).res = cp
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, res: cp})
	for c.ll.Len() > c.max {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.items, last.Value.(*cacheEntry).key)
	}
}

// CacheStats is a point-in-time cache counter snapshot. Persists
// counts completed Save calls, Loaded the entries restored by Load —
// both zero on a cache that never touched disk.
type CacheStats struct {
	Entries  int    `json:"entries"`
	Hits     uint64 `json:"hits"`
	Misses   uint64 `json:"misses"`
	Persists uint64 `json:"persists"`
	Loaded   uint64 `json:"loaded"`
}

// Generation returns the cache's mutation count (Puts since
// creation, loads included). Snapshot schedulers compare generations
// to skip writing a snapshot nothing has changed under.
func (c *Cache) Generation() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gen
}

// Stats snapshots the counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:  c.ll.Len(),
		Hits:     c.hits,
		Misses:   c.misses,
		Persists: c.persists,
		Loaded:   c.loaded,
	}
}

// cacheSnapshot is the on-disk (gob) form of a cache: entries in
// most-recently-used-first order, versioned so a format change cannot
// be misread as a warm set. Results are stored as values — the deep
// copies the cache already holds — so a loaded cache is as immutable
// as a live one.
type cacheSnapshot struct {
	Version int
	Entries []cacheSnapshotEntry
}

type cacheSnapshotEntry struct {
	Key string
	Res sim.CampaignResult
}

// cacheSnapshotVersion gates Load: a snapshot written by a different
// snapshot layout is skipped (the daemon just starts cold).
const cacheSnapshotVersion = 1

// cacheSnapMagic heads a checksummed snapshot file: magic, a SHA-256
// of the gob payload, then the payload. The hash turns silent disk
// corruption (a flipped bit that still gob-decodes into plausible but
// wrong results — the worst failure for a byte-identity contract)
// into a loud, typed ErrSnapshotCorrupt the daemon can quarantine.
// Files without the magic are read as the pre-checksum plain-gob
// layout, so existing snapshots keep loading.
var cacheSnapMagic = []byte("optirand-cachesnap\x01")

// ErrSnapshotCorrupt marks a cache snapshot whose bytes fail their
// checksum or cannot decode — damage, not version skew. Callers
// should quarantine the file (it will never load) and start cold;
// errors.Is reports it through Load's wrapping.
var ErrSnapshotCorrupt = errors.New("cache snapshot corrupt")

// Save writes the cache's current contents to path atomically (temp
// file in the same directory, then rename), so a crash mid-write
// leaves either the old snapshot or the new one, never a torn file.
// The payload is hashed (see cacheSnapMagic) so Load detects silent
// corruption instead of warming the cache with damaged results.
// Concurrent Get/Put during Save affect only whether they are
// included; the snapshot itself is taken under the lock.
func (c *Cache) Save(path string) error {
	c.mu.Lock()
	snap := cacheSnapshot{Version: cacheSnapshotVersion}
	snap.Entries = make([]cacheSnapshotEntry, 0, c.ll.Len())
	for el := c.ll.Front(); el != nil; el = el.Next() {
		e := el.Value.(*cacheEntry)
		snap.Entries = append(snap.Entries, cacheSnapshotEntry{Key: e.key, Res: *e.res})
	}
	c.mu.Unlock()

	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(&snap); err != nil {
		return fmt.Errorf("dist: persist cache: %w", err)
	}
	sum := sha256.Sum256(payload.Bytes())

	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("dist: persist cache: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	_, werr := tmp.Write(cacheSnapMagic)
	if werr == nil {
		_, werr = tmp.Write(sum[:])
	}
	if werr == nil {
		_, werr = tmp.Write(payload.Bytes())
	}
	if werr != nil {
		tmp.Close()
		return fmt.Errorf("dist: persist cache: %w", werr)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("dist: persist cache: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("dist: persist cache: %w", err)
	}
	c.mu.Lock()
	c.persists++
	c.mu.Unlock()
	return nil
}

// Load restores a snapshot written by Save into the cache, preserving
// recency order and respecting the cache's own size bound (the
// least-recent overflow is dropped). A missing file is not an error —
// the daemon's first start has nothing to warm from — and returns 0.
// The returned count (mirrored in Stats().Loaded) is the entries still
// resident after the load — the warm set actually restored — not the
// snapshot's size.
func (c *Cache) Load(path string) (int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, fmt.Errorf("dist: load cache: %w", err)
	}
	if bytes.HasPrefix(data, cacheSnapMagic) {
		// Checksummed layout: verify the payload hash before decoding a
		// single byte of it — a mismatch is corruption, typed so the
		// caller can quarantine the file rather than retry it forever.
		rest := data[len(cacheSnapMagic):]
		if len(rest) < sha256.Size {
			return 0, fmt.Errorf("dist: load cache %s: truncated checksum header: %w", path, ErrSnapshotCorrupt)
		}
		payload := rest[sha256.Size:]
		if sum := sha256.Sum256(payload); !bytes.Equal(sum[:], rest[:sha256.Size]) {
			return 0, fmt.Errorf("dist: load cache %s: payload fails its checksum: %w", path, ErrSnapshotCorrupt)
		}
		data = payload
	}
	var snap cacheSnapshot
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&snap); err != nil {
		return 0, fmt.Errorf("dist: load cache %s: %v: %w", path, err, ErrSnapshotCorrupt)
	}
	if snap.Version != cacheSnapshotVersion {
		return 0, fmt.Errorf("dist: load cache %s: snapshot version %d not supported (want %d)",
			path, snap.Version, cacheSnapshotVersion)
	}
	// Entries were saved most-recent-first; Put pushes to the front, so
	// inserting in reverse reproduces the saved recency order exactly.
	// A snapshot larger than this cache's bound is pre-trimmed to its
	// most-recent entries: inserting the overflow would only churn it
	// straight back out.
	c.mu.Lock()
	limit := c.max
	c.mu.Unlock()
	insert := snap.Entries
	if len(insert) > limit {
		insert = insert[:limit]
	}
	for i := len(insert) - 1; i >= 0; i-- {
		e := insert[i]
		res := e.Res
		c.Put(e.Key, &res)
	}
	// Report the warm set actually restored: only snapshot keys still
	// resident count — concurrent Puts (or an undersized cache) may
	// have evicted some before Load returns.
	n := 0
	c.mu.Lock()
	for _, e := range insert {
		if _, ok := c.items[e.Key]; ok {
			n++
		}
	}
	c.loaded += uint64(n)
	c.mu.Unlock()
	return n, nil
}
