package dist

import (
	"container/list"
	"sync"

	"optirand/internal/sim"
)

// Cache is a bounded, concurrency-safe, content-addressed result
// cache: keys are wire task identity hashes, values campaign results.
// Eviction is least-recently-used. Get and Put deep-copy, so cached
// results are immutable no matter what callers do with theirs — a
// cache hit returns exactly the bytes a fresh execution would.
type Cache struct {
	mu     sync.Mutex
	max    int
	ll     *list.List // front = most recently used
	items  map[string]*list.Element
	hits   uint64
	misses uint64
}

type cacheEntry struct {
	key string
	res *sim.CampaignResult
}

// NewCache returns a cache holding at most max results (max <= 0
// selects 1024).
func NewCache(max int) *Cache {
	if max <= 0 {
		max = 1024
	}
	return &Cache{
		max:   max,
		ll:    list.New(),
		items: make(map[string]*list.Element),
	}
}

// Get returns a copy of the cached result for key, if present.
// Stored results are immutable, so the O(#faults) clone happens after
// the lock is released: the critical section stays pointer-sized and
// concurrent cache hits don't serialize on the copy.
func (c *Cache) Get(key string) (*sim.CampaignResult, bool) {
	c.mu.Lock()
	el, ok := c.items[key]
	var res *sim.CampaignResult
	if ok {
		c.hits++
		c.ll.MoveToFront(el)
		res = el.Value.(*cacheEntry).res
	} else {
		c.misses++
	}
	c.mu.Unlock()
	if !ok {
		return nil, false
	}
	return cloneCampaign(res), true
}

// Put stores a copy of res under key, evicting the least recently used
// entry when full. Storing an existing key refreshes its recency. The
// clone is taken before the lock (see Get).
func (c *Cache) Put(key string, res *sim.CampaignResult) {
	cp := cloneCampaign(res)
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).res = cp
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, res: cp})
	for c.ll.Len() > c.max {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.items, last.Value.(*cacheEntry).key)
	}
}

// CacheStats is a point-in-time cache counter snapshot.
type CacheStats struct {
	Entries int    `json:"entries"`
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
}

// Stats snapshots the counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Entries: c.ll.Len(), Hits: c.hits, Misses: c.misses}
}
