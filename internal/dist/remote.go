package dist

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"optirand/internal/engine"
	"optirand/internal/sim"
	"optirand/internal/wire"
)

// Client talks to an optirandd service. Every request is bound to the
// caller's context, so cancelling it aborts the in-flight HTTP
// exchange; adjust HTTP.Timeout for the workload on top of that:
// campaigns are long requests by design, and a /v1/sweep answers only
// when its whole batch is done, so the right bound grows with grid
// size (0 disables the timeout entirely — the CLIs' -remote paths do
// that and leave interruption to context cancellation).
type Client struct {
	BaseURL string
	HTTP    *http.Client
}

// NewClient returns a client for addr, which may be a bare host:port
// (scheme defaults to http), with a 10-minute default timeout.
func NewClient(addr string) *Client {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return &Client{
		BaseURL: strings.TrimRight(addr, "/"),
		HTTP:    &http.Client{Timeout: 10 * time.Minute},
	}
}

// post sends one wire value and decodes the wire response.
func (cl *Client) post(ctx context.Context, path string, req, resp any) (http.Header, error) {
	body, err := wire.JSON.Marshal(req)
	if err != nil {
		return nil, err
	}
	httpClient := cl.HTTP
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	if ctx == nil {
		ctx = context.Background()
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, cl.BaseURL+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	httpReq.Header.Set("Content-Type", "application/json")
	r, err := httpClient.Do(httpReq)
	if err != nil {
		return nil, err
	}
	defer r.Body.Close()
	data, err := io.ReadAll(r.Body)
	if err != nil {
		return nil, err
	}
	if r.StatusCode != http.StatusOK {
		err := fmt.Errorf("dist: %s: %s: %s", path, r.Status, strings.TrimSpace(string(data)))
		if r.StatusCode >= 400 && r.StatusCode < 500 {
			// The service rejected the request (bad wire, version
			// mismatch): deterministic, retrying cannot help.
			err = Permanent(err)
		}
		return nil, err
	}
	if err := wire.JSON.Unmarshal(data, resp); err != nil {
		return nil, fmt.Errorf("dist: %s: bad response: %w", path, err)
	}
	return r.Header, nil
}

// Campaign runs one task on the service; cached reports whether the
// service answered from its result cache.
func (cl *Client) Campaign(ctx context.Context, t *engine.Task) (res *sim.CampaignResult, cached bool, err error) {
	var out wire.CampaignResult
	hdr, err := cl.post(ctx, "/v1/campaign", wire.FromTask(t), &out)
	if err != nil {
		return nil, false, err
	}
	r, err := out.Build()
	if err != nil {
		return nil, false, err
	}
	return r, hdr.Get(cacheHeader) == "hit", nil
}

// Sweep runs a task batch on the service in one request; results are
// positional, cacheHits counts tasks the service answered from cache.
func (cl *Client) Sweep(ctx context.Context, tasks []*engine.Task) (results []*sim.CampaignResult, cacheHits int, err error) {
	req := wire.SweepRequest{V: wire.Version, Tasks: make([]wire.Task, len(tasks))}
	for i, t := range tasks {
		req.Tasks[i] = *wire.FromTask(t)
	}
	var out wire.SweepResponse
	if _, err := cl.post(ctx, "/v1/sweep", &req, &out); err != nil {
		return nil, 0, err
	}
	if len(out.Results) != len(tasks) {
		return nil, 0, fmt.Errorf("dist: sweep returned %d results for %d tasks", len(out.Results), len(tasks))
	}
	results = make([]*sim.CampaignResult, len(out.Results))
	for i := range out.Results {
		if results[i], err = out.Results[i].Build(); err != nil {
			return nil, 0, err
		}
	}
	return results, out.CacheHits, nil
}

// Optimize runs the paper's OPTIMIZE procedure on the service.
func (cl *Client) Optimize(ctx context.Context, req *wire.OptimizeRequest) (*wire.OptimizeResult, error) {
	req.V = wire.Version
	var out wire.OptimizeResult
	if _, err := cl.post(ctx, "/v1/optimize", req, &out); err != nil {
		return nil, err
	}
	if err := wire.CheckVersion(out.V); err != nil {
		return nil, err
	}
	return &out, nil
}

// RemoteExecutor adapts a service client to the Executor seam: each
// task becomes one /v1/campaign request bound to the submitting
// batch's context (cancelling the batch aborts its in-flight
// requests). Put a Dispatcher in front of it for fan-out, client-side
// caching, in-flight dedup, and retry of transient network failures;
// the resulting backend is bit-identical to Local by the service's
// equivalence contract.
func RemoteExecutor(cl *Client) Executor {
	return func(ctx context.Context, t *engine.Task) (*sim.CampaignResult, error) {
		res, _, err := cl.Campaign(ctx, t)
		return res, err
	}
}

// RemoteBackend is the convenience composition clients actually use:
// a dispatcher of workers concurrent /v1/campaign requests through
// cl, retrying transient failures (deterministic rejections — 4xx —
// fail fast). Close it when done.
func RemoteBackend(cl *Client, workers int) *Dispatcher {
	return NewDispatcher(RemoteExecutor(cl), Options{Workers: workers})
}
