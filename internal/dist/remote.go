package dist

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"optirand/internal/circuit"
	"optirand/internal/engine"
	"optirand/internal/fault"
	"optirand/internal/sim"
	"optirand/internal/wire"
)

// Client talks to an optirandd service. Every request is bound to the
// caller's context, so cancelling it aborts the in-flight HTTP
// exchange; adjust HTTP.Timeout for the workload on top of that:
// campaigns are long requests by design, so the right bound grows
// with grid size (0 disables the timeout entirely — the CLIs' -remote
// paths do that and leave interruption to context cancellation).
// Streaming sweeps (SweepEach) are exempt from the whole-exchange
// reading of Timeout — a stream is as long as its grid — and treat it
// as a per-event inactivity bound instead; see SweepEach.
//
// # Transport negotiation
//
// The client adapts to its peer without configuration:
//
//   - Circuit interning. Unless DisableIntern is set, tasks travel
//     by content address: the first use of a circuit (and fault list)
//     probes HEAD /v1/blobs/{hash}, uploads the blob on a miss, and
//     every task thereafter references it by hash — cutting request
//     bytes by orders of magnitude for many-seed sweeps. A daemon
//     without blob endpoints answers the upload with 404, and the
//     client falls back to inline tasks for the connection's lifetime.
//     A daemon that evicted a blob answers 422, and the client
//     re-uploads and retries once, transparently.
//
//   - Gzip. Responses advertise gzip request support via a header;
//     once seen, the client compresses request bodies above a size
//     threshold (tiny control requests stay uncompressed). Response
//     bodies are compressed by the daemon under the same threshold
//     and inflated transparently by net/http.
//
//   - Streaming sweeps. SweepEach asks for an NDJSON response and
//     delivers each campaign as the daemon completes it; a daemon
//     that answers with a batch JSON body instead (an older build)
//     degrades to whole-batch delivery.
type Client struct {
	BaseURL string
	HTTP    *http.Client
	// DisableIntern forces every task to carry its circuit and fault
	// list inline, disabling blob negotiation entirely.
	DisableIntern bool

	// mu guards the negotiated-transport state below.
	mu sync.Mutex
	// blobSupport is the learned blob-endpoint capability: 0 unknown,
	// +1 supported, -1 unsupported (old daemon; stay inline).
	blobSupport int
	// uploaded records content addresses this client has verified
	// resident on the daemon (probe hit or successful upload).
	uploaded map[string]bool
	// gzipOK is set once any response advertises gzip request support.
	gzipOK bool
}

// NewClient returns a client for addr, which may be a bare host:port
// (scheme defaults to http), with a 10-minute default timeout.
func NewClient(addr string) *Client {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return &Client{
		BaseURL: strings.TrimRight(addr, "/"),
		HTTP:    &http.Client{Timeout: 10 * time.Minute},
	}
}

// httpError is a non-2xx service answer, keeping the status code so
// callers can distinguish retryable conditions (422 unresolved ref)
// from deterministic rejections.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

// isUnresolvedRef reports whether err is the daemon's "unknown blob
// ref" answer — the one 4xx that IS worth retrying, after re-uploading
// the blob (the daemon evicted it between negotiation and use).
func isUnresolvedRef(err error) bool {
	var he *httpError
	return errors.As(err, &he) && he.status == http.StatusUnprocessableEntity
}

// parseRetryAfter reads a Retry-After header's delay-seconds form
// (the one the daemon writes; HTTP-date is ignored). 0 means absent
// or unreadable.
func parseRetryAfter(h string) time.Duration {
	h = strings.TrimSpace(h)
	if h == "" {
		return 0
	}
	secs, err := strconv.Atoi(h)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// classifyStatus turns a non-2xx service answer into the right error
// shape for the retry machinery:
//
//   - 429 Too Many Requests and 503 Service Unavailable are load
//     shedding, not rejection: retryable, carrying the daemon's
//     Retry-After as a RetryAfterError so the dispatcher's backoff
//     honors it (capped at its RetryMaxDelay).
//   - 422 unresolved ref stays retryable — the caller re-uploads the
//     blob first (see withReupload).
//   - every other 4xx is deterministic rejection: Permanent, because
//     retrying an identical request cannot change the answer.
//   - 5xx is transient: plain retryable.
func classifyStatus(status int, header http.Header, base *httpError) error {
	switch {
	case status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable:
		if after := parseRetryAfter(header.Get("Retry-After")); after > 0 {
			return &RetryAfterError{After: after, Err: base}
		}
		return base
	case status >= 400 && status < 500 && status != http.StatusUnprocessableEntity:
		return Permanent(base)
	default:
		return base
	}
}

// do sends one HTTP request with the negotiated transport: the body is
// gzip-compressed when the daemon has advertised support and it clears
// the size threshold, and every response updates the gzip capability.
// The caller owns the response body.
func (cl *Client) do(ctx context.Context, method, path string, body []byte, header http.Header) (*http.Response, error) {
	return cl.doWith(ctx, cl.HTTP, method, path, body, header)
}

// doWith is do over an explicit http.Client — the seam that lets
// streaming requests run on a variant of cl.HTTP without its
// whole-exchange Timeout.
func (cl *Client) doWith(ctx context.Context, httpClient *http.Client, method, path string, body []byte, header http.Header) (*http.Response, error) {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	if ctx == nil {
		ctx = context.Background()
	}
	cl.mu.Lock()
	gzipOK := cl.gzipOK
	cl.mu.Unlock()
	var reader io.Reader
	compressed := false
	if body != nil {
		if gzipOK && len(body) >= gzipThreshold {
			var buf bytes.Buffer
			zw := gzip.NewWriter(&buf)
			if _, err := zw.Write(body); err == nil && zw.Close() == nil {
				reader = &buf
				compressed = true
			} else {
				reader = bytes.NewReader(body) // compression failed: send plain
			}
		} else {
			reader = bytes.NewReader(body)
		}
	}
	req, err := http.NewRequestWithContext(ctx, method, cl.BaseURL+path, reader)
	if err != nil {
		return nil, err
	}
	for k, vs := range header {
		req.Header[k] = vs
	}
	if compressed {
		req.Header.Set("Content-Encoding", "gzip")
	}
	resp, err := httpClient.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.Header.Get(gzipHeader) == "1" {
		cl.mu.Lock()
		cl.gzipOK = true
		cl.mu.Unlock()
	}
	return resp, nil
}

// post sends one wire value and decodes the wire response.
func (cl *Client) post(ctx context.Context, path string, req, resp any) (http.Header, error) {
	body, err := wire.JSON.Marshal(req)
	if err != nil {
		return nil, err
	}
	r, err := cl.do(ctx, http.MethodPost, path, body, http.Header{"Content-Type": []string{"application/json"}})
	if err != nil {
		return nil, err
	}
	defer r.Body.Close()
	data, err := io.ReadAll(r.Body)
	if err != nil {
		return nil, err
	}
	if r.StatusCode != http.StatusOK {
		he := &httpError{
			status: r.StatusCode,
			msg:    fmt.Sprintf("dist: %s: %s: %s", path, r.Status, strings.TrimSpace(string(data))),
		}
		return nil, classifyStatus(r.StatusCode, r.Header, he)
	}
	if err := wire.JSON.Unmarshal(data, resp); err != nil {
		return nil, fmt.Errorf("dist: %s: bad response: %w", path, err)
	}
	return r.Header, nil
}

// blobsSupported returns the learned blob capability (see Client).
func (cl *Client) blobsSupported() int {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.blobSupport
}

// markUploaded records a content address as resident on the daemon.
func (cl *Client) markUploaded(hash string) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	cl.blobSupport = 1
	if cl.uploaded == nil {
		cl.uploaded = make(map[string]bool)
	}
	cl.uploaded[hash] = true
}

// forgetUploads drops the residency knowledge so the next interning
// pass re-probes and re-uploads — the recovery step after the daemon
// reports an unresolved ref (its blob store evicted something we
// uploaded earlier).
func (cl *Client) forgetUploads() {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	cl.uploaded = nil
}

// ensureBlob makes hash resident on the daemon if it can: probe, then
// upload on a miss. It returns true when the daemon holds the blob,
// false when the task should stay inline — because the daemon has no
// blob endpoints (marked unsupported for the connection's lifetime)
// or because negotiation failed transiently (the main request will
// surface any real fault).
func (cl *Client) ensureBlob(ctx context.Context, hash string, blob []byte) bool {
	cl.mu.Lock()
	known := cl.uploaded[hash]
	cl.mu.Unlock()
	if known {
		return true
	}
	probe, err := cl.do(ctx, http.MethodHead, "/v1/blobs/"+hash, nil, nil)
	if err != nil {
		return false
	}
	probe.Body.Close()
	if probe.StatusCode == http.StatusOK {
		cl.markUploaded(hash)
		return true
	}
	// Probe missed — either the blob is absent or the daemon predates
	// blob endpoints (both answer 404). The upload disambiguates: a
	// blob-capable daemon accepts it, an old daemon 404s the route.
	put, err := cl.do(ctx, http.MethodPut, "/v1/blobs/"+hash, blob, nil)
	if err != nil {
		return false
	}
	if _, err := io.Copy(io.Discard, put.Body); err != nil {
		// The response body broke mid-drain: the exchange did not
		// complete cleanly, so do not trust its status line — leave the
		// blob un-marked and the task inline. (A dropped drain also
		// poisons connection reuse, which Close handles either way.)
		put.Body.Close()
		return false
	}
	put.Body.Close()
	switch {
	case put.StatusCode < 300:
		cl.markUploaded(hash)
		return true
	case put.StatusCode == http.StatusNotFound || put.StatusCode == http.StatusMethodNotAllowed:
		cl.mu.Lock()
		cl.blobSupport = -1
		cl.mu.Unlock()
	}
	return false
}

// ErrBlobCorrupt marks a blob GET whose body does not hash to the
// address it was fetched by — the daemon (or the path to it) served
// damaged bytes. Content addressing makes this check free and total:
// there is no corrupt blob a caller should ever accept.
var ErrBlobCorrupt = errors.New("blob bytes fail their content address")

// BlobGet fetches a blob by content address and verifies the bytes
// hash back to it before returning them. A 404 is reported as a
// Permanent httpError (the daemon does not hold the blob); a hash
// mismatch is ErrBlobCorrupt — the caller should discard the bytes
// and re-derive or re-upload, never retry the identical fetch alone.
func (cl *Client) BlobGet(ctx context.Context, hash string) ([]byte, error) {
	resp, err := cl.do(ctx, http.MethodGet, "/v1/blobs/"+hash, nil, nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("dist: blob %s: %w", hash, err)
	}
	if resp.StatusCode != http.StatusOK {
		he := &httpError{
			status: resp.StatusCode,
			msg:    fmt.Sprintf("dist: blob %s: %s: %s", hash, resp.Status, strings.TrimSpace(string(data))),
		}
		return nil, classifyStatus(resp.StatusCode, resp.Header, he)
	}
	if got := wire.HashBytes(data); got != hash {
		return nil, fmt.Errorf("dist: blob %s: body hashes to %s: %w", hash, got, ErrBlobCorrupt)
	}
	return data, nil
}

// internBlob is one negotiated blob: its content address and whether
// the daemon holds it.
type internBlob struct {
	ref      string
	resident bool
}

// faultsKey identifies a fault slice by backing storage, so the tasks
// of one sweep — which share their circuit's fault list — dedupe to
// one serialization.
type faultsKey struct {
	first *fault.Fault
	n     int
}

// internTasks converts engine tasks to wire form, interning circuit
// and fault-list blobs by content address where the daemon holds
// them. Tasks whose blobs cannot be negotiated stay inline — the
// by-ref and inline spellings hash and execute identically, so
// interning is purely a transport optimization. Each distinct circuit
// and fault list is serialized, hashed, and negotiated once per call,
// however many tasks share it (a many-seed sweep shares one circuit
// across the whole grid).
func (cl *Client) internTasks(ctx context.Context, tasks []*engine.Task) []wire.Task {
	wts := make([]wire.Task, len(tasks))
	for i, t := range tasks {
		wts[i] = *wire.FromTask(t)
	}
	if cl.DisableIntern || cl.blobsSupported() < 0 {
		return wts
	}
	circuits := make(map[*circuit.Circuit]internBlob)
	faultLists := make(map[faultsKey]internBlob)
	for i := range wts {
		if cl.blobsSupported() < 0 {
			break // learned mid-batch that the daemon is old: stay inline
		}
		cb, ok := circuits[tasks[i].Circuit]
		if !ok {
			blob, hash := wts[i].Circuit.Blob()
			cb = internBlob{ref: hash, resident: cl.ensureBlob(ctx, hash, blob)}
			circuits[tasks[i].Circuit] = cb
		}
		if cb.resident {
			wts[i].Circuit = nil
			wts[i].CircuitRef = cb.ref
		}
		if fs := tasks[i].Faults; len(fs) > 0 {
			k := faultsKey{first: &fs[0], n: len(fs)}
			fb, ok := faultLists[k]
			if !ok {
				blob, hash := wire.FaultsBlob(wts[i].Faults)
				fb = internBlob{ref: hash, resident: cl.ensureBlob(ctx, hash, blob)}
				faultLists[k] = fb
			}
			if fb.resident {
				wts[i].Faults = nil
				wts[i].FaultsRef = fb.ref
			}
		}
	}
	return wts
}

// withReupload runs attempt, and on the daemon's unresolved-ref
// answer (it evicted a blob the client thought resident) re-interns —
// re-uploading the missing blobs — and retries once.
func (cl *Client) withReupload(attempt func(retry bool) error) error {
	err := attempt(false)
	if err != nil && isUnresolvedRef(err) {
		cl.forgetUploads()
		err = attempt(true)
	}
	return err
}

// Campaign runs one task on the service; cached reports whether the
// service answered from its result cache. The task's circuit and
// fault list are interned by content address when the daemon supports
// it (see Client).
func (cl *Client) Campaign(ctx context.Context, t *engine.Task) (res *sim.CampaignResult, cached bool, err error) {
	var out wire.CampaignResult
	var hdr http.Header
	err = cl.withReupload(func(bool) error {
		wts := cl.internTasks(ctx, []*engine.Task{t})
		var err error
		hdr, err = cl.post(ctx, "/v1/campaign", &wts[0], &out)
		return err
	})
	if err != nil {
		return nil, false, err
	}
	r, err := out.Build()
	if err != nil {
		return nil, false, err
	}
	return r, hdr.Get(cacheHeader) == "hit", nil
}

// Sweep runs a task batch on the service in one request; results are
// positional, cacheHits counts tasks the service answered from cache.
func (cl *Client) Sweep(ctx context.Context, tasks []*engine.Task) (results []*sim.CampaignResult, cacheHits int, err error) {
	var out wire.SweepResponse
	err = cl.withReupload(func(bool) error {
		req := wire.SweepRequest{V: wire.Version, Tasks: cl.internTasks(ctx, tasks)}
		_, err := cl.post(ctx, "/v1/sweep", &req, &out)
		return err
	})
	if err != nil {
		return nil, 0, err
	}
	if len(out.Results) != len(tasks) {
		return nil, 0, fmt.Errorf("dist: sweep returned %d results for %d tasks", len(out.Results), len(tasks))
	}
	results = make([]*sim.CampaignResult, len(out.Results))
	for i := range out.Results {
		if results[i], err = out.Results[i].Build(); err != nil {
			return nil, 0, err
		}
	}
	return results, out.CacheHits, nil
}

// SweepEach runs a task batch as one streaming request: fn observes
// each task's result as the daemon completes it (cache hits first,
// then completion order), with its request index, cache temperature,
// and the task's own service-side execution time (zero for cache hits
// and for daemons too old to report it) — the network half of
// engine.StreamBackend.RunEach. fn is called serially from the calling
// goroutine; collecting by index reproduces Sweep's positional slice
// exactly. Against a daemon that does not stream (an older build
// answering plain JSON), every result is delivered when the batch
// response lands, with cache temperatures unknown (reported false).
// cacheHits counts cache-served tasks either way.
//
// The HTTP client's Timeout does not bound the whole stream — a sweep
// is as long as its grid, and a fixed exchange deadline would truncate
// large batches mid-stream. Instead it bounds inactivity: the request
// runs on a timeout-free variant of cl.HTTP, and the stream fails —
// naming the deadline as the cause — only when no event arrives for a
// whole Timeout. A stream making progress lives forever; a stalled one
// fails within Timeout.
func (cl *Client) SweepEach(ctx context.Context, tasks []*engine.Task, fn func(i int, res *sim.CampaignResult, cached bool, elapsed time.Duration)) (cacheHits int, err error) {
	err = cl.withReupload(func(bool) error {
		var err error
		cacheHits, err = cl.sweepEachOnce(ctx, tasks, fn)
		return err
	})
	return cacheHits, err
}

// streamHTTP returns cl.HTTP minus its whole-exchange Timeout (same
// Transport, so the connection pool is shared), plus that timeout for
// the caller to repurpose as the stream's inactivity bound.
func (cl *Client) streamHTTP() (*http.Client, time.Duration) {
	base := cl.HTTP
	if base == nil {
		base = http.DefaultClient
	}
	if base.Timeout == 0 {
		return base, 0
	}
	c := *base
	c.Timeout = 0
	return &c, base.Timeout
}

func (cl *Client) sweepEachOnce(ctx context.Context, tasks []*engine.Task, fn func(i int, res *sim.CampaignResult, cached bool, elapsed time.Duration)) (int, error) {
	if ctx == nil {
		ctx = context.Background()
	}

	// Streamed sweeps outlive any fixed exchange deadline, so the
	// configured Timeout becomes an inactivity watchdog instead: armed
	// before the request, re-armed on every event, firing by cancelling
	// the request with a cause that names the deadline. streamCause
	// translates the resulting transport error back into that cause so
	// a stalled stream fails with "no event within X", not a cryptic
	// "context canceled" — while a genuine caller cancellation (the
	// parent context) passes through untouched.
	httpClient, stall := cl.streamHTTP()
	var watchdog *time.Timer
	streamCause := func(err error) error { return err }
	if stall > 0 {
		sctx, cancel := context.WithCancelCause(ctx)
		defer cancel(nil)
		stallErr := fmt.Errorf("dist: sweep stream: no event within %v (inactivity deadline; stream stalled)", stall)
		watchdog = time.AfterFunc(stall, func() { cancel(stallErr) })
		defer watchdog.Stop()
		ctx = sctx
		streamCause = func(err error) error {
			if err != nil && errors.Is(context.Cause(sctx), stallErr) {
				return stallErr
			}
			return err
		}
	}

	req := wire.SweepRequest{V: wire.Version, Tasks: cl.internTasks(ctx, tasks)}
	body, err := wire.JSON.Marshal(&req)
	if err != nil {
		return 0, err
	}
	resp, err := cl.doWith(ctx, httpClient, http.MethodPost, "/v1/sweep", body, http.Header{
		"Content-Type": []string{"application/json"},
		"Accept":       []string{ndjsonContentType},
	})
	if err != nil {
		return 0, streamCause(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		he := &httpError{
			status: resp.StatusCode,
			msg:    fmt.Sprintf("dist: /v1/sweep: %s: %s", resp.Status, strings.TrimSpace(string(data))),
		}
		return 0, classifyStatus(resp.StatusCode, resp.Header, he)
	}

	if !strings.Contains(resp.Header.Get("Content-Type"), ndjsonContentType) {
		// The daemon answered in batch form: deliver everything at
		// once. Per-task cache temperature does not survive this path.
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			return 0, err
		}
		var out wire.SweepResponse
		if err := wire.JSON.Unmarshal(data, &out); err != nil {
			return 0, fmt.Errorf("dist: /v1/sweep: bad response: %w", err)
		}
		if len(out.Results) != len(tasks) {
			return 0, fmt.Errorf("dist: sweep returned %d results for %d tasks", len(out.Results), len(tasks))
		}
		for i := range out.Results {
			res, err := out.Results[i].Build()
			if err != nil {
				return 0, err
			}
			fn(i, res, false, 0)
		}
		return out.CacheHits, nil
	}

	dec := json.NewDecoder(resp.Body)
	seen := make([]bool, len(tasks))
	delivered := 0
	for {
		// Checked per event, not just per read: on a fast link the
		// whole stream may already sit in the decoder's buffer, and a
		// cancelled caller must still stop receiving promptly.
		if err := ctx.Err(); err != nil {
			return 0, streamCause(err)
		}
		var ev wire.SweepEvent
		if err := dec.Decode(&ev); err != nil {
			if cause := streamCause(err); cause != err {
				return 0, cause
			}
			if err == io.EOF {
				return 0, fmt.Errorf("dist: sweep stream ended after %d of %d results without a trailer", delivered, len(tasks))
			}
			return 0, fmt.Errorf("dist: sweep stream: %w", err)
		}
		if watchdog != nil {
			// An event arrived: the stream is alive, re-arm the bound.
			watchdog.Reset(stall)
		}
		if err := wire.CheckVersion(ev.V); err != nil {
			return 0, err
		}
		switch {
		case ev.Error != "":
			return 0, fmt.Errorf("dist: sweep: %s", ev.Error)
		case ev.Done:
			if delivered != len(tasks) {
				return 0, fmt.Errorf("dist: sweep stream delivered %d of %d results", delivered, len(tasks))
			}
			return ev.CacheHits, nil
		default:
			if ev.Index < 0 || ev.Index >= len(tasks) || ev.Result == nil {
				return 0, fmt.Errorf("dist: sweep stream: bad event (index %d of %d)", ev.Index, len(tasks))
			}
			if seen[ev.Index] {
				// A duplicate would also mask a missing slot behind the
				// trailer's delivered-count check, leaving a nil result.
				return 0, fmt.Errorf("dist: sweep stream: duplicate result for index %d", ev.Index)
			}
			seen[ev.Index] = true
			res, err := ev.Result.Build()
			if err != nil {
				return 0, err
			}
			delivered++
			fn(ev.Index, res, ev.Cached, time.Duration(ev.ElapsedNS))
		}
	}
}

// Optimize runs the paper's OPTIMIZE procedure on the service.
func (cl *Client) Optimize(ctx context.Context, req *wire.OptimizeRequest) (*wire.OptimizeResult, error) {
	req.V = wire.Version
	var out wire.OptimizeResult
	if _, err := cl.post(ctx, "/v1/optimize", req, &out); err != nil {
		return nil, err
	}
	if err := wire.CheckVersion(out.V); err != nil {
		return nil, err
	}
	return &out, nil
}

// RemoteExecutor adapts a service client to the Executor seam: each
// task becomes one /v1/campaign request bound to the submitting
// batch's context (cancelling the batch aborts its in-flight
// requests), with the circuit and fault list interned by content
// address when the daemon supports it. Put a Dispatcher in front of
// it for fan-out, client-side caching, in-flight dedup, and retry of
// transient network failures; the resulting backend is bit-identical
// to Local by the service's equivalence contract.
func RemoteExecutor(cl *Client) Executor {
	return func(ctx context.Context, t *engine.Task) (*sim.CampaignResult, error) {
		res, _, err := cl.Campaign(ctx, t)
		return res, err
	}
}

// RemoteBackend is the convenience composition clients actually use:
// a dispatcher of workers concurrent /v1/campaign requests through
// cl, retrying transient failures (deterministic rejections — 4xx —
// fail fast). Close it when done.
func RemoteBackend(cl *Client, workers int) *Dispatcher {
	return NewDispatcher(RemoteExecutor(cl), Options{Workers: workers})
}

// Service is the whole-batch remote backend: where RemoteExecutor
// turns every task into its own /v1/campaign request, Service submits
// each Run or RunEach batch as ONE /v1/sweep request and lets the
// daemon's dispatcher do the fan-out. RunEach consumes the daemon's
// NDJSON stream, so per-task results arrive across the network as
// they complete — the wire half of the streaming sweep contract.
// Results are bit-identical to every other backend by the service's
// equivalence contract.
//
// Compared to a Dispatcher over RemoteExecutor, Service trades
// client-side retry and client-side caching for a single round trip
// per batch: a failed batch fails as a unit (the daemon retries
// individual tasks internally per its MaxAttempts).
type Service struct {
	Client *Client
}

var _ engine.StreamBackend = Service{}

// Run implements engine.Backend as one /v1/sweep request.
func (s Service) Run(ctx context.Context, tasks []*engine.Task) ([]engine.TaskResult, error) {
	results := make([]engine.TaskResult, len(tasks))
	err := s.RunEach(ctx, tasks, func(i int, r engine.TaskResult) {
		results[i] = r
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// RunEach implements engine.StreamBackend as one streaming /v1/sweep
// request: fn observes each task's result as the daemon reports it.
func (s Service) RunEach(ctx context.Context, tasks []*engine.Task, fn func(i int, r engine.TaskResult)) error {
	for _, t := range tasks {
		if err := t.Validate(); err != nil {
			return err
		}
	}
	if len(tasks) == 0 {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	// Elapsed is the task's own service-side execution time, carried
	// per event — not time since the batch started — matching what
	// Local and Dispatcher report. Cache hits and pre-ElapsedNS daemons
	// report zero.
	_, err := s.Client.SweepEach(ctx, tasks, func(i int, res *sim.CampaignResult, _ bool, elapsed time.Duration) {
		fn(i, engine.TaskResult{Task: tasks[i], Campaign: res, Elapsed: elapsed})
	})
	if err != nil && ctx.Err() != nil {
		// The transport error is the symptom; the cancellation is the
		// cause, and the Backend contract reports it as ctx.Err().
		return ctx.Err()
	}
	return err
}
