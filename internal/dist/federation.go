package dist

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"optirand/internal/engine"
	"optirand/internal/sim"
	"optirand/internal/wire"
)

// Daemon roles, as reported by /v1/healthz and /v1/stats. A daemon
// cannot detect that it is someone's upstream, so "leaf" is an
// operator-applied label (optirandd -role leaf); "front" is implied
// by running with upstreams.
const (
	RoleStandalone = "standalone"
	RoleFront      = "front"
	RoleLeaf       = "leaf"
)

// FederationOptions configures a Federation.
type FederationOptions struct {
	// Replicas is the number of virtual ring points per leaf
	// (<= 0 selects the ring default). More points smooth the circuit
	// distribution across leaves.
	Replicas int
	// HealthInterval is the cadence of the background leaf health
	// checker (0 selects 2s; < 0 disables it — leaves then leave the
	// ring only on request failures and never rejoin, so disabling is
	// for tests that drive CheckNow themselves).
	HealthInterval time.Duration
	// HealthTimeout bounds each individual health probe (0 selects
	// 5s). A leaf that cannot answer /v1/healthz within it counts as
	// down.
	HealthTimeout time.Duration
	// LeafTimeout bounds each routed campaign request (0 selects the
	// leaf client default of 10 minutes; < 0 disables the timeout —
	// context cancellation still applies).
	LeafTimeout time.Duration
	// AllDownGrace bounds how long routing keeps failing retryably
	// once EVERY leaf is out of the ring. Within the grace the health
	// checker may restore a leaf, so attempts stay retryable; past it
	// the tree is considered dead and attempts fail Permanent (fast,
	// typed ErrNoLiveLeaves) instead of burning the retry budget
	// against an empty ring. 0 selects 2×HealthInterval+HealthTimeout
	// — two full probe rounds. With the health checker disabled
	// (HealthInterval < 0) nothing can restore membership, so an empty
	// ring is Permanent immediately regardless of the grace.
	AllDownGrace time.Duration
	// Logf, when non-nil, receives membership transitions (leaf down,
	// leaf rejoined). The library never writes to stderr itself.
	Logf func(format string, args ...any)
}

// leafState is the federation's view of one leaf daemon.
type leafState struct {
	url    string
	client *Client

	// The fields below are guarded by the Federation's mu.
	alive      bool
	downSince  time.Time
	lastErr    string
	routed     uint64 // campaign requests routed here
	failures   uint64 // routed requests that failed (and were requeued by the dispatcher)
	consecFail uint64 // routed failures since the last routed success — a live flap gauge
	probes     uint64 // health probes sent
	probeFail  uint64 // health probes that failed
}

// Federation routes content-addressed tasks to a fleet of leaf
// daemons over a consistent-hash ring keyed by each task's circuit
// fingerprint, so every leaf keeps a hot working set — compiled
// circuits, interned blobs, cached results — for the stable subset of
// circuits it owns. It is the execution core of a front daemon
// (optirandd -upstream): put a Dispatcher in front of its Executor
// (FederatedBackend, or the Server's own wiring) and the front gains
// the dispatcher's LRU result cache, in-flight singleflight dedup on
// task identity, and retry/requeue — which is exactly the failover
// path: a routed request that fails marks its leaf out of the ring
// synchronously, the dispatcher requeues the attempt, and the retry
// re-routes onto the surviving leaves.
//
// A background health checker probes every leaf's GET /v1/healthz on
// a fixed cadence: probes failing marks a leaf down (out of the
// ring), probes succeeding marks it back up. Because ring positions
// are a pure function of the leaf's URL, a rejoining leaf re-enters
// at exactly the points it held before — the circuits it owned come
// back to it, and its caches are warm for them.
//
// Results are byte-identical to local execution by construction: the
// ring only decides where a task runs, and every backend is bound to
// the engine's equivalence contract.
type Federation struct {
	opts FederationOptions

	mu     sync.Mutex
	ring   *Ring
	leaves map[string]*leafState
	order  []string // configured order, for stable stats listings
	// emptySince marks when the ring last became empty (every leaf
	// down); zero while any leaf is live. Routing failures past
	// AllDownGrace from this instant turn Permanent.
	emptySince time.Time

	stop     chan struct{}
	wg       sync.WaitGroup
	closeOne sync.Once
}

// NewFederation builds a federation over the given leaf base URLs
// (host:port or URL, as accepted by NewClient; duplicates collapse).
// Every leaf starts live and on the ring; the health checker then
// maintains membership. Close the federation when done.
func NewFederation(upstreams []string, opts FederationOptions) (*Federation, error) {
	if opts.HealthInterval == 0 {
		opts.HealthInterval = 2 * time.Second
	}
	if opts.HealthTimeout <= 0 {
		opts.HealthTimeout = 5 * time.Second
	}
	if opts.AllDownGrace <= 0 && opts.HealthInterval > 0 {
		// Two full probe rounds: long enough for a restarting fleet to
		// answer a probe, short enough that a dead tree fails in seconds.
		opts.AllDownGrace = 2*opts.HealthInterval + opts.HealthTimeout
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	f := &Federation{
		opts:   opts,
		ring:   NewRing(opts.Replicas),
		leaves: make(map[string]*leafState),
		stop:   make(chan struct{}),
	}
	for _, u := range upstreams {
		cl := NewClient(u)
		if opts.LeafTimeout != 0 {
			if opts.LeafTimeout < 0 {
				cl.HTTP.Timeout = 0
			} else {
				cl.HTTP.Timeout = opts.LeafTimeout
			}
		}
		if _, dup := f.leaves[cl.BaseURL]; dup {
			continue
		}
		f.leaves[cl.BaseURL] = &leafState{url: cl.BaseURL, client: cl, alive: true}
		f.order = append(f.order, cl.BaseURL)
		f.ring.Add(cl.BaseURL)
	}
	if len(f.leaves) == 0 {
		return nil, fmt.Errorf("dist: federation needs at least one upstream leaf")
	}
	if opts.HealthInterval > 0 {
		f.wg.Add(1)
		go f.healthLoop()
	}
	return f, nil
}

// Close stops the health checker. It does not wait for in-flight
// routed requests — close the dispatcher in front of the federation
// first.
func (f *Federation) Close() {
	f.closeOne.Do(func() {
		close(f.stop)
		f.wg.Wait()
	})
}

// Leaves returns the configured leaf URLs in configuration order.
func (f *Federation) Leaves() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.order...)
}

// RouteKey returns t's consistent-hash routing key: the circuit's
// structural fingerprint. Every task of one circuit — whatever its
// weights, seeds, or wire spelling (inline or CircuitRef) — shares a
// key and therefore a leaf, which is what keeps that leaf's compiled
// circuit, blobs, and cached results hot for it.
func RouteKey(t *engine.Task) string {
	return t.Circuit.Fingerprint()
}

// route picks the live leaf owning key, counting the routing
// decision. ok is false when no leaf is live.
func (f *Federation) route(key string) (*leafState, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	url, ok := f.ring.Lookup(key)
	if !ok {
		return nil, false
	}
	l := f.leaves[url]
	l.routed++
	return l, true
}

// markDown takes a leaf out of the ring after a failed request or
// probe. Idempotent; concurrent failures of in-flight requests to one
// dead leaf all land here, the first transition logs.
func (f *Federation) markDown(l *leafState, cause error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	l.lastErr = cause.Error()
	if !l.alive {
		return
	}
	l.alive = false
	l.downSince = time.Now()
	f.ring.Remove(l.url)
	if f.ring.Len() == 0 && f.emptySince.IsZero() {
		f.emptySince = time.Now()
	}
	f.opts.Logf("federation: leaf %s marked down (%d live): %v", l.url, f.ring.Len(), cause)
}

// markUp returns a recovered leaf to the ring — at exactly the
// virtual points it held before, so its circuits route back to it.
// The client's blob-residency knowledge is dropped: a leaf that died
// and came back may have restarted with an empty blob store, and
// re-probing is cheaper than a round of 422 re-upload retries.
func (f *Federation) markUp(l *leafState) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if l.alive {
		return
	}
	l.alive = true
	l.lastErr = ""
	l.downSince = time.Time{}
	l.consecFail = 0
	l.client.forgetUploads()
	f.ring.Add(l.url)
	f.emptySince = time.Time{}
	f.opts.Logf("federation: leaf %s rejoined (%d live)", l.url, f.ring.Len())
}

// healthLoop drives CheckNow on the configured cadence until Close.
func (f *Federation) healthLoop() {
	defer f.wg.Done()
	ticker := time.NewTicker(f.opts.HealthInterval)
	defer ticker.Stop()
	for {
		select {
		case <-f.stop:
			return
		case <-ticker.C:
			f.CheckNow(context.Background())
		}
	}
}

// CheckNow probes every leaf's /v1/healthz once, concurrently, and
// updates ring membership from the outcomes: an unready or
// unreachable leaf leaves the ring, a recovered one rejoins. The
// health loop calls it on a cadence; tests (and a front that wants a
// synchronous membership refresh) may call it directly.
func (f *Federation) CheckNow(ctx context.Context) {
	f.mu.Lock()
	leaves := make([]*leafState, 0, len(f.leaves))
	for _, url := range f.order {
		leaves = append(leaves, f.leaves[url])
	}
	f.mu.Unlock()
	var wg sync.WaitGroup
	for _, l := range leaves {
		wg.Add(1)
		go func(l *leafState) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, f.opts.HealthTimeout)
			defer cancel()
			h, err := l.client.Healthz(pctx)
			f.mu.Lock()
			l.probes++
			if err != nil {
				l.probeFail++
			}
			f.mu.Unlock()
			switch {
			case err != nil:
				f.markDown(l, err)
			case !h.Ready:
				f.markDown(l, fmt.Errorf("leaf reports not ready (status %q)", h.Status))
			default:
				f.markUp(l)
			}
		}(l)
	}
	wg.Wait()
}

// ErrNoLiveLeaves marks a federation routing failure caused by an
// empty ring — every configured leaf is down. Within the recovery
// grace (see FederationOptions.AllDownGrace) attempts carrying it are
// retryable; past the grace, or with the health checker disabled,
// they are additionally Permanent: test with errors.Is for the
// condition and IsPermanent for whether retrying can still help.
var ErrNoLiveLeaves = errors.New("no live leaves")

// noLeavesError builds the empty-ring routing error, deciding whether
// a retry can still help (see ErrNoLiveLeaves).
func (f *Federation) noLeavesError() error {
	f.mu.Lock()
	empty := f.emptySince
	n := len(f.leaves)
	f.mu.Unlock()
	err := fmt.Errorf("dist: federation: %w (of %d configured)", ErrNoLiveLeaves, n)
	if f.opts.HealthInterval < 0 {
		// No health checker: membership cannot recover on its own, so
		// burning the retry budget against an empty ring helps nobody.
		return Permanent(fmt.Errorf("%w; health checker disabled, membership cannot recover", err))
	}
	if !empty.IsZero() && time.Since(empty) > f.opts.AllDownGrace {
		return Permanent(fmt.Errorf("%w; every leaf down for %v (past the %v recovery grace)",
			err, time.Since(empty).Round(time.Millisecond), f.opts.AllDownGrace))
	}
	return err
}

// FederatedExecutor adapts a federation to the Executor seam: each
// task routes to the live leaf owning its circuit and becomes one
// /v1/campaign request there, with the circuit and fault list
// interned by content address against that leaf (the front probes and
// uploads blobs to the owning leaf transparently, so interning keeps
// paying across the tree). A failed request marks the leaf down
// before the error returns, so the dispatcher's requeued retry
// re-routes onto the survivors — the leaf-death failover path. When
// no leaf is live the attempt fails with ErrNoLiveLeaves: retryable
// while the health checker may still restore a leaf (within
// AllDownGrace), Permanent — fail fast, no retry spin — once the
// whole tree has been down past the grace or the checker is disabled.
func FederatedExecutor(f *Federation) Executor {
	return func(ctx context.Context, t *engine.Task) (*sim.CampaignResult, error) {
		l, ok := f.route(RouteKey(t))
		if !ok {
			return nil, f.noLeavesError()
		}
		res, _, err := l.client.Campaign(ctx, t)
		if err != nil && ctx.Err() == nil {
			f.mu.Lock()
			l.failures++
			l.consecFail++
			f.mu.Unlock()
			if !IsPermanent(err) {
				// Transport failures and leaf-side 5xx take the leaf out
				// of the ring so the retry lands elsewhere. Permanent
				// rejections (4xx) are the task's problem, not the
				// leaf's — it stays up.
				f.markDown(l, err)
			}
			return nil, fmt.Errorf("leaf %s: %w", l.url, err)
		}
		if err == nil {
			f.mu.Lock()
			l.consecFail = 0
			f.mu.Unlock()
		}
		return res, err
	}
}

// FederatedBackend is the convenience composition a front runs: a
// dispatcher fanning out up to workers concurrent routed requests
// through the federation, retrying failed attempts (which re-route
// around dead leaves) with the given backoff. The Server wires the
// same composition itself when ServerOptions.Upstreams is set, adding
// its result cache and journal tiers. Close the dispatcher, then the
// federation.
func FederatedBackend(f *Federation, workers int) *Dispatcher {
	return NewDispatcher(FederatedExecutor(f), Options{Workers: workers})
}

// FederationStats is a point-in-time snapshot of tree routing and
// health, listed per leaf in configuration order — the payload behind
// a front's /v1/stats federation section, so a whole tree is
// debuggable from one curl.
type FederationStats struct {
	Leaves     int         `json:"leaves"`
	Live       int         `json:"live"`
	Routed     uint64      `json:"routed"`
	Failures   uint64      `json:"failures"`
	PerLeaf    []LeafStats `json:"per_leaf"`
	RingPoints int         `json:"ring_points_per_leaf"`
}

// LeafStats is one leaf's slice of FederationStats. ConsecFailures is
// the routed failures since the leaf's last routed success (zeroed on
// success and on rejoin) — a live gauge of a flapping or dying leaf,
// where Failures only accumulates.
type LeafStats struct {
	URL            string  `json:"url"`
	Alive          bool    `json:"alive"`
	Routed         uint64  `json:"routed"`
	Failures       uint64  `json:"failures"`
	ConsecFailures uint64  `json:"consecutive_failures,omitempty"`
	Probes         uint64  `json:"probes"`
	ProbeFail      uint64  `json:"probe_failures"`
	LastError      string  `json:"last_error,omitempty"`
	DownFor        float64 `json:"down_seconds,omitempty"`
}

// Stats snapshots the federation's counters.
func (f *Federation) Stats() FederationStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := FederationStats{
		Leaves:     len(f.leaves),
		Live:       f.ring.Len(),
		RingPoints: f.ring.replicas,
	}
	for _, url := range f.order {
		l := f.leaves[url]
		ls := LeafStats{
			URL:            l.url,
			Alive:          l.alive,
			Routed:         l.routed,
			Failures:       l.failures,
			ConsecFailures: l.consecFail,
			Probes:         l.probes,
			ProbeFail:      l.probeFail,
			LastError:      l.lastErr,
		}
		if !l.alive && !l.downSince.IsZero() {
			ls.DownFor = time.Since(l.downSince).Seconds()
		}
		st.Routed += l.routed
		st.Failures += l.failures
		st.PerLeaf = append(st.PerLeaf, ls)
	}
	return st
}

// Healthz fetches the daemon's GET /v1/healthz liveness payload. The
// endpoint is deliberately version-free and uncompressed, so any
// load balancer — or an older client — can read it; a daemon
// predating it answers 404, which callers should treat as down.
func (cl *Client) Healthz(ctx context.Context) (*wire.Health, error) {
	resp, err := cl.do(ctx, http.MethodGet, "/v1/healthz", nil, nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, &httpError{
			status: resp.StatusCode,
			msg:    fmt.Sprintf("dist: /v1/healthz: %s", resp.Status),
		}
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("dist: /v1/healthz: %w", err)
	}
	var h wire.Health
	if err := wire.JSON.Unmarshal(data, &h); err != nil {
		return nil, fmt.Errorf("dist: /v1/healthz: bad payload: %w", err)
	}
	return &h, nil
}
