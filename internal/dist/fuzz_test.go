package dist

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"os"
	"path/filepath"
	"testing"

	"optirand/internal/sim"
)

// fuzzJournalBytes builds a real one-record journal in memory, the
// richest valid input the scanner sees in production.
func fuzzJournalBytes(tb testing.TB) []byte {
	tb.Helper()
	var payload bytes.Buffer
	res := sim.CampaignResult{TotalFaults: 7, Detected: 3, Patterns: 64}
	if err := gob.NewEncoder(&payload).Encode(&journalEntry{Key: "deadbeef", Res: res}); err != nil {
		tb.Fatal(err)
	}
	var out bytes.Buffer
	out.Write(journalMagic)
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(payload.Len()))
	out.Write(lenBuf[:])
	out.Write(payload.Bytes())
	binary.BigEndian.PutUint32(lenBuf[:], journalCRC(payload.Bytes()))
	out.Write(lenBuf[:])
	return out.Bytes()
}

// FuzzJournalScan hammers the journal open-time scanner with arbitrary
// file contents: whatever is on disk — foreign files, torn tails,
// flipped bits, hostile length prefixes — OpenJournal must return a
// journal or an error, never panic, over-allocate on a lying length
// field, or index a record whose Get cannot decode.
func FuzzJournalScan(f *testing.F) {
	real := fuzzJournalBytes(f)
	f.Add([]byte{})
	f.Add([]byte(journalMagic))
	f.Add(append(append([]byte{}, journalMagic...), 0x00, 0x00, 0x00, 0x08, 0x01, 0x02)) // torn record
	f.Add(real)
	f.Add(real[:len(real)-3]) // torn CRC
	flipped := append([]byte(nil), real...)
	flipped[len(flipped)-8] ^= 0x40 // corrupt payload interior
	f.Add(flipped)
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.journal")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		j, err := OpenJournal(path)
		if err != nil {
			return
		}
		// A journal that opened must be fully usable: every indexed
		// record decodes, and an append-then-reopen round trip works.
		if _, ok, err := j.Get("deadbeef"); ok && err != nil {
			t.Fatalf("indexed record fails to decode: %v", err)
		}
		res := &sim.CampaignResult{TotalFaults: 2, Detected: 1}
		if err := j.Append("fuzz-key", res); err != nil {
			t.Fatalf("append to opened journal: %v", err)
		}
		want := j.Len()
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
		j2, err := OpenJournal(path)
		if err != nil {
			t.Fatalf("reopen after append: %v", err)
		}
		defer j2.Close()
		if j2.Len() != want {
			t.Fatalf("reopen lost records: %d != %d", j2.Len(), want)
		}
		if _, ok, err := j2.Get("fuzz-key"); !ok || err != nil {
			t.Fatalf("appended record missing after reopen: ok=%v err=%v", ok, err)
		}
	})
}
