package dist

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"optirand/internal/engine"
	"optirand/internal/sim"
	"optirand/internal/wire"
)

// TestRingDeterministicMinimalDisruption pins the consistent-hash
// contract: removing a node moves only that node's keys, and a node
// that re-enters the ring restores the exact original mapping —
// positions are a pure function of the node name.
func TestRingDeterministicMinimalDisruption(t *testing.T) {
	nodes := []string{"http://leaf-a", "http://leaf-b", "http://leaf-c"}
	r := NewRing(0)
	for _, n := range nodes {
		r.Add(n)
	}
	keys := make([]string, 600)
	for i := range keys {
		keys[i] = fmt.Sprintf("circuit-fingerprint-%d", i)
	}
	before := make(map[string]string, len(keys))
	owned := make(map[string]int)
	for _, k := range keys {
		n, ok := r.Lookup(k)
		if !ok {
			t.Fatal("lookup failed on a populated ring")
		}
		before[k] = n
		owned[n]++
	}
	// Every node must own a real share of the keyspace — virtual
	// points exist precisely to smooth the distribution.
	for _, n := range nodes {
		if owned[n] < len(keys)/10 {
			t.Fatalf("node %s owns %d/%d keys; the ring is badly unbalanced: %v", n, owned[n], len(keys), owned)
		}
	}

	r.Remove("http://leaf-b")
	for _, k := range keys {
		n, _ := r.Lookup(k)
		if before[k] != "http://leaf-b" && n != before[k] {
			t.Fatalf("key %s moved %s -> %s though its owner stayed in the ring", k, before[k], n)
		}
		if before[k] == "http://leaf-b" && n == "http://leaf-b" {
			t.Fatalf("key %s still maps to the removed node", k)
		}
	}

	// Rejoin: byte-for-byte the original mapping.
	r.Add("http://leaf-b")
	for _, k := range keys {
		if n, _ := r.Lookup(k); n != before[k] {
			t.Fatalf("after rejoin key %s maps to %s, want %s", k, n, before[k])
		}
	}

	// Adding an existing node is a no-op, not a duplication.
	points := len(r.points)
	r.Add("http://leaf-b")
	if len(r.points) != points {
		t.Fatalf("re-adding a present node grew the ring %d -> %d points", points, len(r.points))
	}
}

// TestHealthzEndpoint proves GET /v1/healthz answers a version-free,
// never-gzipped liveness payload carrying the daemon's role.
func TestHealthzEndpoint(t *testing.T) {
	srv := NewServer(ServerOptions{Workers: 1, Role: RoleLeaf})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	// Ask for gzip explicitly: the endpoint must ignore it. (Setting
	// the header manually also disables the transport's transparent
	// decompression, so a gzipped body would fail the decode below.)
	req.Header.Set("Accept-Encoding", "gzip")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	if enc := resp.Header.Get("Content-Encoding"); enc != "" {
		t.Fatalf("healthz answered Content-Encoding %q; liveness must never be compressed", enc)
	}
	var h wire.Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Role != RoleLeaf || !h.Ready {
		t.Fatalf("healthz payload %+v, want ok/leaf/ready", h)
	}
	if h.UptimeSeconds < 0 {
		t.Fatalf("negative uptime %v", h.UptimeSeconds)
	}

	// The client helper reads the same payload.
	cl := NewClient(ts.Listener.Addr().String())
	got, err := cl.Healthz(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got.Role != RoleLeaf || !got.Ready {
		t.Fatalf("client healthz payload %+v, want leaf/ready", got)
	}
}

// TestFederationRouteAffinity proves every task of one circuit routes
// to the same leaf (the key is the circuit fingerprint), and that the
// federation's routing agrees with a bare ring over the leaf URLs.
func TestFederationRouteAffinity(t *testing.T) {
	var leaves []*httptest.Server
	var urls []string
	for i := 0; i < 3; i++ {
		srv := NewServer(ServerOptions{Workers: 1})
		defer srv.Close()
		ts := httptest.NewServer(srv)
		defer ts.Close()
		leaves = append(leaves, ts)
		urls = append(urls, ts.Listener.Addr().String())
	}
	f, err := NewFederation(urls, FederationOptions{HealthInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	ref := NewRing(0)
	for _, u := range f.Leaves() {
		ref.Add(u)
	}
	owner := make(map[string]string) // circuit name -> leaf URL
	for _, task := range testTasks(t) {
		key := RouteKey(task)
		l, ok := f.route(key)
		if !ok {
			t.Fatal("route failed with all leaves live")
		}
		want, _ := ref.Lookup(key)
		if l.url != want {
			t.Fatalf("federation routed %s to %s, ring says %s", task.Label, l.url, want)
		}
		name := task.Circuit.Name
		if prev, seen := owner[name]; seen && prev != l.url {
			t.Fatalf("circuit %s routed to both %s and %s; route affinity broken", name, prev, l.url)
		}
		owner[name] = l.url
	}
}

// TestFederatedBackendMatchesEngineRun runs the full grid through a
// dispatcher over a 3-leaf federation — cold, then warm — and demands
// byte-identity with the serial in-process reference.
func TestFederatedBackendMatchesEngineRun(t *testing.T) {
	tasks := testTasks(t)
	ref, err := engine.Run(context.Background(), tasks, 1)
	if err != nil {
		t.Fatal(err)
	}

	var urls []string
	for i := 0; i < 3; i++ {
		srv := NewServer(ServerOptions{Workers: 2, CacheSize: 256})
		defer srv.Close()
		ts := httptest.NewServer(srv)
		defer ts.Close()
		urls = append(urls, ts.Listener.Addr().String())
	}
	f, err := NewFederation(urls, FederationOptions{HealthInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	d := FederatedBackend(f, 4)
	defer d.Close()

	for _, pass := range []string{"cold", "warm"} {
		got, err := d.Run(context.Background(), tasks)
		if err != nil {
			t.Fatalf("%s: %v", pass, err)
		}
		if !reflect.DeepEqual(campaigns(ref), campaigns(got)) {
			t.Fatalf("%s: federated results differ from engine.Run", pass)
		}
	}
	st := f.Stats()
	if st.Live != 3 || st.Leaves != 3 {
		t.Fatalf("stats report %d/%d live leaves, want 3/3", st.Live, st.Leaves)
	}
	if st.Routed < uint64(len(tasks)) {
		t.Fatalf("stats report %d routed requests for %d tasks", st.Routed, len(tasks))
	}
}

// TestFederationFailoverAndRejoin kills the leaf that owns a circuit,
// proves the dispatcher's requeued retries re-route its tasks onto the
// survivor byte-identically, and then restarts the leaf on the same
// address: the next health check returns it to the ring at its old
// positions, and its circuit routes back to it.
func TestFederationFailoverAndRejoin(t *testing.T) {
	tasks := testTasks(t)
	ref, err := engine.Run(context.Background(), tasks, 1)
	if err != nil {
		t.Fatal(err)
	}

	// Two daemons on pinned listeners so one can be restarted on the
	// same address later.
	type daemon struct {
		addr    string
		srv     *Server
		httpSrv *http.Server
	}
	start := func(addr string) *daemon {
		srv := NewServer(ServerOptions{Workers: 2, CacheSize: 64})
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		d := &daemon{addr: ln.Addr().String(), srv: srv, httpSrv: &http.Server{Handler: srv}}
		go d.httpSrv.Serve(ln)
		return d
	}
	stop := func(d *daemon) {
		d.httpSrv.Close()
		d.srv.Close()
	}
	a, b := start("127.0.0.1:0"), start("127.0.0.1:0")
	defer stop(a)

	f, err := NewFederation([]string{a.addr, b.addr}, FederationOptions{HealthInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	// Find the leaf owning the first task's circuit and kill it before
	// any request flows — every task of that circuit must fail over.
	key := RouteKey(tasks[0])
	ownerURL, _ := f.ring.Lookup(key)
	victim, survivor := b, a
	if ownerURL == NewClient(a.addr).BaseURL {
		victim, survivor = a, b
	}
	stop(victim)
	defer stop(survivor)

	d := NewDispatcher(FederatedExecutor(f), Options{Workers: 4, MaxAttempts: 3})
	defer d.Close()
	got, err := d.Run(context.Background(), tasks)
	if err != nil {
		t.Fatalf("run with a dead leaf: %v", err)
	}
	if !reflect.DeepEqual(campaigns(ref), campaigns(got)) {
		t.Fatal("failover results differ from engine.Run")
	}
	st := f.Stats()
	if st.Live != 1 {
		t.Fatalf("%d live leaves after the kill, want 1", st.Live)
	}
	var victimStats *LeafStats
	for i := range st.PerLeaf {
		if st.PerLeaf[i].URL == NewClient(victim.addr).BaseURL {
			victimStats = &st.PerLeaf[i]
		}
	}
	if victimStats == nil || victimStats.Alive || victimStats.Failures == 0 {
		t.Fatalf("victim stats %+v, want dead with recorded failures", victimStats)
	}

	// Restart on the same address; an explicit health check readmits
	// the leaf, and the circuit it owned routes back to it.
	restarted := start(victim.addr)
	defer stop(restarted)
	f.CheckNow(context.Background())
	st = f.Stats()
	if st.Live != 2 {
		t.Fatalf("%d live leaves after the rejoin, want 2", st.Live)
	}
	if back, _ := f.ring.Lookup(key); back != ownerURL {
		t.Fatalf("after rejoin the circuit routes to %s, want its old owner %s", back, ownerURL)
	}
	rerun, err := d.Run(context.Background(), tasks)
	if err != nil {
		t.Fatalf("run after rejoin: %v", err)
	}
	if !reflect.DeepEqual(campaigns(ref), campaigns(rerun)) {
		t.Fatal("post-rejoin results differ from engine.Run")
	}
}

// TestFederationNoLiveLeaves proves the executor fails fast and typed
// — not panics, not hangs, not a retry spin — when every leaf is down
// and nothing can bring one back: with the health checker disabled,
// the empty-ring error is ErrNoLiveLeaves AND Permanent.
func TestFederationNoLiveLeaves(t *testing.T) {
	// A listener that is closed immediately: connection refused.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	f, err := NewFederation([]string{addr}, FederationOptions{HealthInterval: -1, HealthTimeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	f.CheckNow(context.Background())
	if st := f.Stats(); st.Live != 0 {
		t.Fatalf("%d live leaves with the only daemon down, want 0", st.Live)
	}

	exec := FederatedExecutor(f)
	_, err = exec(context.Background(), testTasks(t)[0])
	if !errors.Is(err, ErrNoLiveLeaves) {
		t.Fatalf("err = %v, want ErrNoLiveLeaves", err)
	}
	if !strings.Contains(err.Error(), "no live leaves") {
		t.Fatalf("err = %v, want a no-live-leaves message", err)
	}
	if !IsPermanent(err) {
		t.Fatal("with the health checker disabled nothing can restore membership: the error must be Permanent, not a retry spin")
	}
}

// TestFederationNoLiveLeavesGrace proves the same empty ring stays
// RETRYABLE while a running health checker could still restore a leaf
// (within AllDownGrace), and turns Permanent once the whole tree has
// been down past the grace.
func TestFederationNoLiveLeavesGrace(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	// A long interval keeps the background checker quiet for the test's
	// lifetime; the tiny grace is what we wait out.
	f, err := NewFederation([]string{addr}, FederationOptions{
		HealthInterval: time.Hour,
		HealthTimeout:  time.Second,
		AllDownGrace:   30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	f.CheckNow(context.Background())

	exec := FederatedExecutor(f)
	_, err = exec(context.Background(), testTasks(t)[0])
	if !errors.Is(err, ErrNoLiveLeaves) {
		t.Fatalf("err = %v, want ErrNoLiveLeaves", err)
	}
	if IsPermanent(err) {
		t.Fatal("within the grace the checker may restore a leaf: the error must stay retryable")
	}

	time.Sleep(50 * time.Millisecond) // wait out the grace
	_, err = exec(context.Background(), testTasks(t)[0])
	if !errors.Is(err, ErrNoLiveLeaves) {
		t.Fatalf("err = %v, want ErrNoLiveLeaves", err)
	}
	if !IsPermanent(err) {
		t.Fatal("past the grace the tree is dead: the error must be Permanent")
	}
}

// TestDispatcherRetryBackoff proves failed attempts wait out the
// jittered exponential backoff instead of hot-looping: with a 20ms
// base, two failures cost at least 10ms + 20ms (the jitter floors)
// before the third attempt succeeds.
func TestDispatcherRetryBackoff(t *testing.T) {
	task := testTasks(t)[0]
	ref, err := engine.Run(context.Background(), []*engine.Task{task}, 1)
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	attempts := 0
	flaky := func(ctx context.Context, tk *engine.Task) (*sim.CampaignResult, error) {
		mu.Lock()
		attempts++
		n := attempts
		mu.Unlock()
		if n <= 2 {
			return nil, fmt.Errorf("injected failure %d", n)
		}
		return LocalExecutor(ctx, tk)
	}
	d := NewDispatcher(flaky, Options{Workers: 2, MaxAttempts: 3, RetryDelay: 20 * time.Millisecond})
	defer d.Close()

	start := time.Now()
	got, err := d.Run(context.Background(), []*engine.Task{task})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(campaigns(ref), campaigns(got)) {
		t.Fatal("retried result differs from engine.Run")
	}
	if elapsed < 30*time.Millisecond {
		t.Fatalf("two retries completed in %v; the backoff (>= 10ms + 20ms) was not honored", elapsed)
	}

	// The backoff schedule itself: exponential, jittered within
	// [delay/2, delay], capped.
	capped := NewDispatcher(LocalExecutor, Options{RetryDelay: 10 * time.Millisecond, RetryMaxDelay: 40 * time.Millisecond})
	defer capped.Close()
	for attempt, want := range map[int][2]time.Duration{
		1:  {5 * time.Millisecond, 10 * time.Millisecond},
		2:  {10 * time.Millisecond, 20 * time.Millisecond},
		3:  {20 * time.Millisecond, 40 * time.Millisecond},
		10: {20 * time.Millisecond, 40 * time.Millisecond}, // capped
	} {
		for i := 0; i < 50; i++ {
			if got := capped.backoff(attempt); got < want[0] || got > want[1] {
				t.Fatalf("backoff(%d) = %v, want within [%v, %v]", attempt, got, want[0], want[1])
			}
		}
	}
	zero := NewDispatcher(LocalExecutor, Options{})
	defer zero.Close()
	if got := zero.backoff(5); got != 0 {
		t.Fatalf("backoff with no RetryDelay = %v, want 0 (immediate requeue)", got)
	}
}
