// Package report renders the experiment harness's output: fixed-width
// text tables in the style of the paper's Tables 1–5, with scientific
// notation matching the paper's "5.6*10^8" convention.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a simple fixed-width text table.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// Add appends one row; the cell count must match the column count.
func (t *Table) Add(cells ...string) {
	if len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("report: row has %d cells, table has %d columns", len(cells), len(t.Columns)))
	}
	t.rows = append(t.rows, cells)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	if t.Title != "" {
		fmt.Fprintln(w, t.Title)
	}
	line := strings.Repeat("-", total)
	fmt.Fprintln(w, line)
	for i, c := range t.Columns {
		fmt.Fprintf(w, "%-*s", widths[i]+2, c)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, line)
	for _, row := range t.rows {
		for i, cell := range row {
			fmt.Fprintf(w, "%-*s", widths[i]+2, cell)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, line)
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	t.Render(&sb)
	return sb.String()
}

// Sci formats a value in the paper's scientific style: "5.6*10^8".
// Non-finite values render as "inf"/"-"; values below 10 are printed
// plainly.
func Sci(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "inf"
	case math.IsNaN(v) || v < 0:
		return "-"
	case v == 0:
		return "0"
	case v < 10:
		return fmt.Sprintf("%.2g", v)
	}
	exp := math.Floor(math.Log10(v))
	mant := v / math.Pow(10, exp)
	if mant >= 9.95 { // rounding pushed the mantissa to 10.x
		mant = 1
		exp++
	}
	return fmt.Sprintf("%.1f*10^%d", mant, int(exp))
}

// Pct formats a fraction as a percentage with one decimal, e.g. "99.7 %".
func Pct(frac float64) string {
	return fmt.Sprintf("%.1f %%", 100*frac)
}

// Count formats an integer with thousands separators, matching the
// paper's "12,000" style.
func Count(n int) string {
	s := fmt.Sprintf("%d", n)
	if n < 0 {
		return s
	}
	var parts []string
	for len(s) > 3 {
		parts = append([]string{s[len(s)-3:]}, parts...)
		s = s[:len(s)-3]
	}
	parts = append([]string{s}, parts...)
	return strings.Join(parts, ",")
}
