package report

import (
	"math"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("Demo", "A", "Bee")
	tb.Add("1", "two")
	tb.Add("three", "4")
	out := tb.String()
	for _, want := range []string{"Demo", "A", "Bee", "three", "two"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title + rule + header + rule + 2 rows + rule.
	if len(lines) != 7 {
		t.Errorf("got %d lines, want 7:\n%s", len(lines), out)
	}
}

func TestTableCellCountPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("wrong cell count did not panic")
		}
	}()
	NewTable("x", "a", "b").Add("only-one")
}

func TestSci(t *testing.T) {
	cases := map[float64]string{
		5.6e8:         "5.6*10^8",
		2.0e11:        "2.0*10^11",
		1.9e3:         "1.9*10^3",
		0:             "0",
		3.5:           "3.5",
		math.Inf(1):   "inf",
		9.99e7:        "1.0*10^8", // mantissa rounds up to the next decade
		-1:            "-",
		math.NaN():    "-",
		12000:         "1.2*10^4",
		999999.999999: "1.0*10^6",
	}
	for in, want := range cases {
		if got := Sci(in); got != want {
			t.Errorf("Sci(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestPct(t *testing.T) {
	if got := Pct(0.807); got != "80.7 %" {
		t.Errorf("Pct = %q", got)
	}
	if got := Pct(1); got != "100.0 %" {
		t.Errorf("Pct(1) = %q", got)
	}
}

func TestCount(t *testing.T) {
	cases := map[int]string{
		0: "0", 7: "7", 999: "999", 1000: "1,000",
		12000: "12,000", 1234567: "1,234,567",
	}
	for in, want := range cases {
		if got := Count(in); got != want {
			t.Errorf("Count(%d) = %q, want %q", in, got, want)
		}
	}
}
