// Command faultsim runs a weighted random-pattern fault simulation
// campaign against a circuit and reports the achieved stuck-at fault
// coverage and the coverage curve.
//
// Usage:
//
//	faultsim -circuit s1 -n 12000                 # conventional test
//	faultsim -circuit s1 -n 12000 -weights w.txt  # weights from optgen
//	faultsim -bench design.bench -n 4096 -curve 512
//	faultsim -circuit c6288 -n 100000 -workers 8  # fault-sharded parallel run
//	faultsim -circuit c6288 -n 100000 -remote localhost:8417
//
// -workers shards the fault list across goroutines; every worker
// replays the identical seeded pattern stream, so results are
// bit-identical for any worker count (default GOMAXPROCS).
// -shards N instead shards the PATTERN stream into N contiguous batch
// ranges (the better cut for small fault lists with huge pattern
// budgets), and -goodmachine shared|auto runs one good simulation per
// batch instead of one per worker (a win on fanout-heavy circuits);
// every combination is bit-identical to the serial run.
//
// -remote routes the campaign to an optirandd service instead of
// running it in-process. Local and remote runs are one Runner
// constructor apart, and the backend contract makes the result
// bit-identical either way; repeated submissions of the same campaign
// are answered from the daemon's content-addressed cache.
//
// The weights file contains "input-name probability" lines as produced
// by optgen; missing inputs default to 0.5.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"

	"optirand"
	"optirand/internal/report"
)

var (
	flagBench    = flag.String("bench", "", "path to a .bench netlist")
	flagCircuit  = flag.String("circuit", "", "built-in benchmark name")
	flagN        = flag.Int("n", 10000, "number of random patterns")
	flagSeed     = flag.Uint64("seed", 1, "PRNG seed")
	flagWeights  = flag.String("weights", "", "weights file (optgen output); default all 0.5")
	flagCurve    = flag.Int("curve", 0, "print the coverage curve sampled every N patterns")
	flagUndet    = flag.Bool("undetected", false, "list faults left undetected")
	flagWorkers  = flag.Int("workers", runtime.GOMAXPROCS(0), "fault-simulation worker goroutines (results are identical for any count)")
	flagShards   = flag.Int("shards", 0, "shard the PATTERN stream into this many batch ranges instead of sharding the fault list (>1; results identical for any count)")
	flagGoodM    = flag.String("goodmachine", "replay", "good-machine strategy for fault-sharded runs: replay, shared, or auto (results identical)")
	flagRemote   = flag.String("remote", "", "optirandd address (host:port or URL); runs the campaign on the service instead of in-process")
	flagRemoteTO = flag.Duration("remotetimeout", 0, "request timeout against -remote (0 = none; campaigns are long requests by design)")
	flagJournal  = flag.String("journal", "", "journal completed results in this directory and resume from it: a re-run with identical parameters replays instead of recomputing")
)

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "faultsim: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	flag.Parse()
	var c *optirand.Circuit
	switch {
	case *flagBench != "":
		var err error
		c, err = optirand.ParseBenchFile(*flagBench)
		if err != nil {
			fatalf("%v", err)
		}
	case *flagCircuit != "":
		b, ok := optirand.BenchmarkByName(*flagCircuit)
		if !ok {
			fatalf("unknown circuit %q", *flagCircuit)
		}
		c = b.Build()
	default:
		fatalf("need -bench or -circuit")
	}

	weights := optirand.UniformWeights(c)
	if *flagWeights != "" {
		if err := loadWeights(c, *flagWeights, weights); err != nil {
			fatalf("%v", err)
		}
	}

	faults := optirand.CollapsedFaults(c)

	var goodMachine optirand.GoodMachineMode
	switch *flagGoodM {
	case "replay":
		goodMachine = optirand.GoodMachineReplay
	case "shared":
		goodMachine = optirand.GoodMachineShared
	case "auto":
		goodMachine = optirand.GoodMachineAuto
	default:
		fatalf("unknown -goodmachine %q (want replay, shared, or auto)", *flagGoodM)
	}

	// One Runner serves both execution modes; ^C cancels the campaign
	// (queued work is abandoned, the in-flight request aborts).
	opts := []optirand.Option{
		optirand.WithSeed(*flagSeed),
		optirand.WithSimWorkers(*flagWorkers),
		optirand.WithSimShards(*flagShards),
		optirand.WithGoodMachine(goodMachine),
	}
	if *flagRemote != "" {
		opts = append(opts, optirand.WithRemote(*flagRemote), optirand.WithRemoteTimeout(*flagRemoteTO))
	}
	if *flagJournal != "" {
		opts = append(opts, optirand.WithJournal(*flagJournal))
	}
	r := optirand.NewRunner(opts...)
	defer r.Close()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	// First ^C cancels ctx; unregistering then restores the default
	// signal disposition, so a second ^C terminates even while a
	// non-interruptible campaign is still finishing.
	go func() { <-ctx.Done(); stop() }()

	res, err := r.Campaign(ctx, optirand.CampaignSpec{
		Circuit:   c,
		Faults:    faults,
		Source:    optirand.Weights(weights),
		Patterns:  *flagN,
		Seed:      *flagSeed,
		CurveStep: *flagCurve,
	})
	if err != nil {
		fatalf("campaign: %v", err)
	}
	if *flagRemote != "" {
		fmt.Printf("remote %s: campaign answered by the service\n", *flagRemote)
	}
	fmt.Printf("circuit %s: %d collapsed faults, %s patterns\n",
		c.Name, len(faults), report.Count(res.Patterns))
	fmt.Printf("detected %d / %d faults: coverage %s\n",
		res.Detected, res.TotalFaults, report.Pct(res.Coverage()))
	if *flagCurve > 0 {
		t := report.NewTable("Coverage curve", "Patterns", "Detected", "Coverage")
		for _, p := range res.Curve {
			t.Add(report.Count(p.Patterns), fmt.Sprint(p.Detected), report.Pct(p.Coverage))
		}
		fmt.Print(t)
	}
	if *flagUndet {
		fmt.Println("undetected faults:")
		for i, fd := range res.FirstDetected {
			if fd == 0 {
				fmt.Printf("  %s\n", faults[i].Describe(c))
			}
		}
	}
}

func loadWeights(c *optirand.Circuit, path string, weights []float64) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	byName := make(map[string]int)
	for pos, g := range c.Inputs {
		byName[c.GateName(g)] = pos
	}
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return fmt.Errorf("%s:%d: want \"name probability\", got %q", path, line, text)
		}
		pos, ok := byName[fields[0]]
		if !ok {
			return fmt.Errorf("%s:%d: unknown input %q", path, line, fields[0])
		}
		w, err := strconv.ParseFloat(fields[1], 64)
		if err != nil || w < 0 || w > 1 {
			return fmt.Errorf("%s:%d: bad probability %q", path, line, fields[1])
		}
		weights[pos] = w
	}
	return sc.Err()
}
