// Command faultsim runs a weighted random-pattern fault simulation
// campaign against a circuit and reports the achieved stuck-at fault
// coverage and the coverage curve.
//
// Usage:
//
//	faultsim -circuit s1 -n 12000                 # conventional test
//	faultsim -circuit s1 -n 12000 -weights w.txt  # weights from optgen
//	faultsim -bench design.bench -n 4096 -curve 512
//	faultsim -circuit c6288 -n 100000 -workers 8  # fault-sharded parallel run
//	faultsim -circuit c6288 -n 100000 -remote localhost:8417
//	faultsim -circuit c880 -n 8192 -adaptive              # closed-loop campaign
//	faultsim -circuit c880 -n 8192 -adaptive -adaptive-strategy bandit
//
// -adaptive closes the loop between simulation and weights: the
// campaign runs in blocks, and at each block boundary the pattern
// source is re-weighted from the still-undetected fault residue —
// either by re-running the weight optimizer against the residue
// (reopt, the default) or by a deterministic multi-armed bandit over
// candidate weight sets (bandit). The schedule of updates is a pure
// function of the campaign seed, so adaptive runs stay bit-identical
// across worker counts and local/remote execution.
//
// -workers shards the fault list across goroutines; every worker
// replays the identical seeded pattern stream, so results are
// bit-identical for any worker count (default GOMAXPROCS).
// -shards N instead shards the PATTERN stream into N contiguous batch
// ranges (the better cut for small fault lists with huge pattern
// budgets), and -goodmachine shared|auto runs one good simulation per
// batch instead of one per worker (a win on fanout-heavy circuits);
// every combination is bit-identical to the serial run.
//
// -remote routes the campaign to an optirandd service instead of
// running it in-process. Local and remote runs are one Runner
// constructor apart, and the backend contract makes the result
// bit-identical either way; repeated submissions of the same campaign
// are answered from the daemon's content-addressed cache.
//
// The weights file contains "input-name probability" lines as produced
// by optgen; missing inputs default to 0.5.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"

	"optirand"
	"optirand/internal/report"
)

var (
	flagBench    = flag.String("bench", "", "path to a .bench netlist")
	flagCircuit  = flag.String("circuit", "", "built-in benchmark name")
	flagN        = flag.Int("n", 10000, "number of random patterns")
	flagSeed     = flag.Uint64("seed", 1, "PRNG seed")
	flagWeights  = flag.String("weights", "", "weights file (optgen output); default all 0.5")
	flagCurve    = flag.Int("curve", 0, "print the coverage curve sampled every N patterns")
	flagUndet    = flag.Bool("undetected", false, "list faults left undetected")
	flagWorkers  = flag.Int("workers", runtime.GOMAXPROCS(0), "fault-simulation worker goroutines (results are identical for any count)")
	flagShards   = flag.Int("shards", 0, "shard the PATTERN stream into this many batch ranges instead of sharding the fault list (>1; results identical for any count)")
	flagGoodM    = flag.String("goodmachine", "replay", "good-machine strategy for fault-sharded runs: replay, shared, or auto (results identical)")
	flagRemote   = flag.String("remote", "", "optirandd address (host:port or URL); runs the campaign on the service instead of in-process")
	flagRemoteTO = flag.Duration("remotetimeout", 0, "request timeout against -remote (0 = none; campaigns are long requests by design)")
	flagJournal  = flag.String("journal", "", "journal completed results in this directory and resume from it: a re-run with identical parameters replays instead of recomputing")

	flagAdaptive  = flag.Bool("adaptive", false, "close the loop: re-weight the pattern source at block boundaries from the still-undetected faults (deterministic; works locally and against -remote)")
	flagAdaStrat  = flag.String("adaptive-strategy", "reopt", "re-weighting strategy: reopt (re-optimize against the residue) or bandit (UCB over the mixture's weight sets)")
	flagAdaBlock  = flag.Int("adaptive-block", 0, "patterns per adaptive block, rounded to 64 (0 = default)")
	flagAdaStall  = flag.Int("adaptive-stall", 0, "stop after this many consecutive zero-detection blocks (0 = default)")
	flagAdaTarget = flag.Float64("adaptive-target", 0, "stop once this fault coverage is reached (0 = run the whole budget)")
)

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "faultsim: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	flag.Parse()
	var c *optirand.Circuit
	switch {
	case *flagBench != "":
		var err error
		c, err = optirand.ParseBenchFile(*flagBench)
		if err != nil {
			fatalf("%v", err)
		}
	case *flagCircuit != "":
		b, ok := optirand.BenchmarkByName(*flagCircuit)
		if !ok {
			fatalf("unknown circuit %q", *flagCircuit)
		}
		c = b.Build()
	default:
		fatalf("need -bench or -circuit")
	}

	weights := optirand.UniformWeights(c)
	if *flagWeights != "" {
		if err := loadWeights(c, *flagWeights, weights); err != nil {
			fatalf("%v", err)
		}
	}

	faults := optirand.CollapsedFaults(c)

	var goodMachine optirand.GoodMachineMode
	switch *flagGoodM {
	case "replay":
		goodMachine = optirand.GoodMachineReplay
	case "shared":
		goodMachine = optirand.GoodMachineShared
	case "auto":
		goodMachine = optirand.GoodMachineAuto
	default:
		fatalf("unknown -goodmachine %q (want replay, shared, or auto)", *flagGoodM)
	}

	// One Runner serves both execution modes; ^C cancels the campaign
	// (queued work is abandoned, the in-flight request aborts).
	opts := []optirand.Option{
		optirand.WithSeed(*flagSeed),
		optirand.WithSimWorkers(*flagWorkers),
		optirand.WithSimShards(*flagShards),
		optirand.WithGoodMachine(goodMachine),
	}
	if *flagRemote != "" {
		opts = append(opts, optirand.WithRemote(*flagRemote), optirand.WithRemoteTimeout(*flagRemoteTO))
	}
	if *flagJournal != "" {
		opts = append(opts, optirand.WithJournal(*flagJournal))
	}
	r := optirand.NewRunner(opts...)
	defer r.Close()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	// First ^C cancels ctx; unregistering then restores the default
	// signal disposition, so a second ^C terminates even while a
	// non-interruptible campaign is still finishing.
	go func() { <-ctx.Done(); stop() }()

	source := optirand.Weights(weights)
	if *flagAdaptive {
		var aopts []optirand.AdaptiveOption
		switch *flagAdaStrat {
		case "reopt":
			aopts = append(aopts, optirand.AdaptiveReopt())
		case "bandit":
			// The bandit needs arms to choose between: the base weights
			// plus the classic flat probe sets.
			source = optirand.Mixture(weights, flat(c, 0.25), flat(c, 0.5), flat(c, 0.75))
			aopts = append(aopts, optirand.AdaptiveBandit(0))
		default:
			fatalf("unknown -adaptive-strategy %q (want reopt or bandit)", *flagAdaStrat)
		}
		if *flagAdaBlock > 0 {
			aopts = append(aopts, optirand.AdaptiveBlock(*flagAdaBlock))
		}
		if *flagAdaStall > 0 {
			aopts = append(aopts, optirand.AdaptiveStall(*flagAdaStall))
		}
		if *flagAdaTarget > 0 {
			aopts = append(aopts, optirand.AdaptiveTarget(*flagAdaTarget))
		}
		source = optirand.Adaptive(source, aopts...)
	}

	res, err := r.Campaign(ctx, optirand.CampaignSpec{
		Circuit:   c,
		Faults:    faults,
		Source:    source,
		Patterns:  *flagN,
		Seed:      *flagSeed,
		CurveStep: *flagCurve,
	})
	if err != nil {
		fatalf("campaign: %v", err)
	}
	if *flagRemote != "" {
		fmt.Printf("remote %s: campaign answered by the service\n", *flagRemote)
	}
	fmt.Printf("circuit %s: %d collapsed faults, %s patterns\n",
		c.Name, len(faults), report.Count(res.Patterns))
	fmt.Printf("detected %d / %d faults: coverage %s\n",
		res.Detected, res.TotalFaults, report.Pct(res.Coverage()))
	if a := res.Adaptive; a != nil {
		why := "budget exhausted"
		switch {
		case a.TargetHit:
			why = "target coverage reached"
		case a.Stalled:
			why = "coverage stalled"
		}
		fmt.Printf("adaptive %s: %d rounds, %d re-optimizations (%s)\n", a.Strategy, len(a.Rounds), a.Reopts, why)
		t := report.NewTable("Adaptive rounds", "Round", "Set", "Patterns", "Detected", "Coverage", "Reweighted")
		for _, rs := range a.Rounds {
			re := ""
			if rs.Reoptimized {
				re = "yes"
			}
			t.Add(fmt.Sprint(rs.Round), fmt.Sprint(rs.WeightSet), report.Count(rs.Patterns),
				fmt.Sprint(rs.Detected), report.Pct(rs.Coverage), re)
		}
		fmt.Print(t)
	}
	if *flagCurve > 0 {
		t := report.NewTable("Coverage curve", "Patterns", "Detected", "Coverage")
		for _, p := range res.Curve {
			t.Add(report.Count(p.Patterns), fmt.Sprint(p.Detected), report.Pct(p.Coverage))
		}
		fmt.Print(t)
	}
	if *flagUndet {
		fmt.Println("undetected faults:")
		for i, fd := range res.FirstDetected {
			if fd == 0 {
				fmt.Printf("  %s\n", faults[i].Describe(c))
			}
		}
	}
}

// flat returns a weight set with every input pinned to p.
func flat(c *optirand.Circuit, p float64) []float64 {
	w := make([]float64, c.NumInputs())
	for i := range w {
		w[i] = p
	}
	return w
}

func loadWeights(c *optirand.Circuit, path string, weights []float64) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	byName := make(map[string]int)
	for pos, g := range c.Inputs {
		byName[c.GateName(g)] = pos
	}
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return fmt.Errorf("%s:%d: want \"name probability\", got %q", path, line, text)
		}
		pos, ok := byName[fields[0]]
		if !ok {
			return fmt.Errorf("%s:%d: unknown input %q", path, line, fields[0])
		}
		w, err := strconv.ParseFloat(fields[1], 64)
		if err != nil || w < 0 || w > 1 {
			return fmt.Errorf("%s:%d: bad probability %q", path, line, fields[1])
		}
		weights[pos] = w
	}
	return sc.Err()
}
